// Reproduces Figure 1's interface bandwidth claims: DRDRAM 1.6 GB/s, PCI
// 264 MB/s, North/South UPA 2.0 GB/s each, aggregate I/O > 4.8 GB/s, all
// meeting at the central crossbar with the DTE moving data among them.
#include "bench/bench_util.h"
#include "src/masm/assembler.h"
#include "src/soc/chip.h"

using namespace majc;
using namespace majc::bench;

namespace {

double gb_per_s(u64 bytes, Cycle cycles) {
  return static_cast<double>(bytes) / static_cast<double>(cycles) * kClockHz /
         1e9;
}

} // namespace

int main(int argc, char** argv) {
  Table table("Figure 1: interface peak bandwidths through the crossbar", argc, argv);
  constexpr u32 kBytes = 4u << 20;

  {
    soc::Majc5200 chip(masm::assemble_or_throw("halt\n"));
    // DRDRAM channel: saturate with a DTE memory-to-memory copy (reads and
    // writes share the channel, so the copy rate is half the channel rate).
    // Source and destination sit in different banks so row accesses overlap.
    const Cycle done = chip.dte().submit({0x200000, 0x600800, kBytes}, 0);
    table.row("DRDRAM channel (DTE copy r+w)", "1.6 GB/s",
        fmt("%.2f GB/s", gb_per_s(2ull * kBytes, done)));
  }
  {
    soc::Majc5200 chip(masm::assemble_or_throw("halt\n"));
    const Cycle done = chip.pci().stream(kBytes, true, 0);
    table.row("PCI (32-bit / 66 MHz)", "264 MB/s",
        fmt("%.0f MB/s", 1000.0 * gb_per_s(kBytes, done)));
  }
  {
    soc::Majc5200 chip(masm::assemble_or_throw("halt\n"));
    // UPA line rate, measured against the FIFO path (no DRAM behind it).
    const Cycle done = chip.nupa().push_fifo(std::vector<u8>(4096), 0);
    table.row("North UPA line rate (FIFO fill)", "2.0 GB/s",
        fmt("%.2f GB/s", gb_per_s(4096, done)));
  }
  {
    soc::Majc5200 chip(masm::assemble_or_throw("halt\n"));
    const Cycle done = chip.supa().stream(kBytes, false, 0);
    table.row("South UPA -> memory stream", "bounded by DRDRAM",
        fmt("%.2f GB/s", gb_per_s(kBytes, done)));
  }
  {
    // Aggregate I/O: the paper's ">4.8 GB/s" sums the interface peaks
    // (1.6 DRDRAM + 0.264 PCI + 2 x 2.0 UPA). Sum our measured rates the
    // same way, with each interface driven at its own saturation point.
    soc::Majc5200 chip(masm::assemble_or_throw("halt\n"));
    const Cycle dte_done = chip.dte().submit({0x200000, 0x600800, kBytes}, 0);
    const double dram = gb_per_s(2ull * kBytes, dte_done);
    soc::Majc5200 c2(masm::assemble_or_throw("halt\n"));
    const double pci = gb_per_s(kBytes, c2.pci().stream(kBytes, true, 0));
    const double nupa =
        gb_per_s(4096, c2.nupa().push_fifo(std::vector<u8>(4096), 0));
    const double supa = c2.memsys().config().upa_bytes_per_cycle * kClockHz /
                        1e9;  // line rate (memory-bound streams measured above)
    table.row("aggregate I/O (sum of interfaces)", "> 4.8 GB/s",
        fmt("%.2f GB/s", dram + pci + nupa + supa));
  }

  std::printf("\nSoC inventory (Fig. 1 blocks modelled): 2x MAJC CPU, shared\n"
              "dual-ported D$, per-CPU I$, memory controller + DRDRAM, PCI,\n"
              "North UPA (4 KB input FIFO) + South UPA, graphics preprocessor,\n"
              "data transfer engine, central crossbar.\n");
  return 0;
}
