// Reproduces Table 3: "Application Performance (From Simulators)" —
// single-CPU utilizations / throughputs for the paper's application set,
// composed from measured kernel costs (DESIGN.md §5.3).
#include "bench/bench_util.h"
#include "src/apps/workload.h"

using namespace majc;
using namespace majc::bench;

int main(int argc, char** argv) {
  Table table("Table 3: Application Performance (single MAJC-5200 CPU)", argc, argv);
  for (const auto& r : apps::run_all_apps()) {
    std::string measured;
    if (r.throughput_mb_s > 0) {
      measured = fmt("%.1f MB/s", r.throughput_mb_s);
    } else {
      measured = fmt("%.1f %%", 100.0 * r.utilization) + " (" +
                 fmt("%.1f %%", 100.0 * r.utilization_no_mem) + " no-mem)";
    }
    table.row(r.name, r.paper_claim, measured);
    std::printf("    model: %s\n", r.detail.c_str());
  }
  return 0;
}
