// Reproduces the §5 graphics claim: the GPP decompresses geometry and
// load-balances the two CPUs, which run transform + lighting; the pipeline
// "delivers a performance of between 60 and 90 million triangles per
// second". We report the pipeline rate at both endpoints of per-vertex CPU
// work: the full transform+diffuse-lighting kernel and the lean
// transform-only kernel (real pipelines sit between them).
#include "bench/bench_util.h"
#include "src/gpp/gpp.h"
#include "src/kernels/transform_light.h"

using namespace majc;
using namespace majc::bench;

int main(int argc, char** argv) {
  Table table("GPP geometry pipeline (paper SS5: 60-90 Mtriangles/s)", argc, argv);

  const gpp::Mesh mesh = gpp::make_test_mesh(60000, 42);
  const auto stream = gpp::compress(mesh);
  table.row("compressed geometry ratio", "~6x (Sun CG)",
      fmt("%.1fx", gpp::compression_ratio(mesh, stream)));

  const double lit_cpv = kernels::measure_tl_cycles_per_vertex(true);
  const double xf_cpv = kernels::measure_tl_cycles_per_vertex(false);
  table.row("CPU cycles/vertex (xform+light)", "(not stated)",
      fmt("%.1f cycles", lit_cpv));
  table.row("CPU cycles/vertex (xform only)", "(not stated)",
      fmt("%.1f cycles", xf_cpv));

  // Fresh crossbar state per pipeline run (port clocks are cumulative).
  mem::MemorySystem ms_lit({}), ms_xf({});
  gpp::Gpp g_lit(ms_lit), g_xf(ms_xf);
  const auto lit = g_lit.simulate_pipeline(stream, lit_cpv);
  const auto xf = g_xf.simulate_pipeline(stream, xf_cpv);
  table.row("pipeline rate (xform+light)", "60-90 Mtri/s",
      fmt("%.1f Mtri/s", lit.mtris_per_sec()));
  table.row("pipeline rate (xform only)", "60-90 Mtri/s",
      fmt("%.1f Mtri/s", xf.mtris_per_sec()));
  table.row("load balance (min/max CPU share)", "balanced",
      fmt("%.2f", lit.balance()));
  std::printf("\n%llu triangles, %llu vertices; CPU busy: %llu / %llu cycles\n",
              static_cast<unsigned long long>(lit.triangles),
              static_cast<unsigned long long>(lit.vertices),
              static_cast<unsigned long long>(lit.cpu_busy[0]),
              static_cast<unsigned long long>(lit.cpu_busy[1]));
  return 0;
}
