// Host-throughput smoke benchmark: how many simulated packets per host
// second the interpreters sustain. Runs guest workloads (IDCT, FIR, the
// mb_decode macroblock pipeline, and a dual-CPU sum-of-products chip run)
// under the instruction-accurate and cycle-accurate models, timing the run
// loop only — sim construction (dominated by zeroing guest memory) is kept
// off the clock so the numbers track the interpreter hot path.
//
// Output: a human-readable table on stdout and BENCH_host.json (see --out).
// With --baseline=<json from a previous run>, exits 1 if any baseline
// entry's MIPS regresses by more than --tolerance (default 0.30) — this is
// the CI perf-smoke gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/farm/farm.h"
#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/kernel.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/soc/chip.h"
#include "src/support/rng.h"
#include "src/trace/json.h"

namespace {

using namespace majc;

// Guest memory for benchmark runs: big enough for every workload (the chip
// workload's input block sits at 2 MB), small enough that the per-rep
// construction memset stays cheap.
constexpr std::size_t kMemBytes = 8u << 20;

struct Sample {
  u64 packets = 0;
  u64 instrs = 0;
  double secs = 0;  // run-loop time only
};

struct Result {
  std::string name;
  double packets_per_sec = 0;
  double mips = 0;
  u64 sim_packets = 0;  // per rep
  u64 sim_instrs = 0;
  int reps = 0;
};

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename RunOnce>
Result measure(const std::string& name, double min_secs, RunOnce run_once) {
  // Repeat whole guest runs until the accumulated *run-loop* time reaches
  // min_secs (bounded, so tiny workloads can't spin forever on
  // construction overhead).
  constexpr int kMaxReps = 2000;
  Result r;
  r.name = name;
  double secs = 0;
  u64 packets = 0;
  u64 instrs = 0;
  while (secs < min_secs && r.reps < kMaxReps) {
    const Sample s = run_once();
    secs += s.secs;
    packets += s.packets;
    instrs += s.instrs;
    r.sim_packets = s.packets;
    r.sim_instrs = s.instrs;
    ++r.reps;
  }
  if (secs > 0) {
    r.packets_per_sec = static_cast<double>(packets) / secs;
    r.mips = static_cast<double>(instrs) / secs / 1e6;
  }
  return r;
}

Sample run_functional(const sim::ProgramRef& prog,
                      const kernels::KernelSpec& spec, sim::ExecBackend be) {
  // Shared predecode (and, for the threaded backend, the per-Program
  // translation cache warmed once by the caller): construction per rep only
  // re-zeroes the arena, mirroring the farm's machine-reuse path.
  sim::FunctionalSim sim(prog, kMemBytes);
  sim.set_backend(be);
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());
  const auto t0 = Clock::now();
  const sim::RunResult res = sim.run(spec.max_packets);
  return {res.packets, res.instrs, since(t0)};
}

Sample run_cycle(const masm::Image& img, const kernels::KernelSpec& spec) {
  cpu::CycleSim sim(img, TimingConfig{}, kMemBytes);
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());
  const auto t0 = Clock::now();
  const cpu::CycleSim::Result res = sim.run(spec.max_packets);
  return {res.packets, res.instrs, since(t0)};
}

// Dual-CPU chip workload: the sum-of-products split by GETCPU (the shape
// test_dual_parallel validates), sized so both CPUs stream from DRDRAM.
constexpr u32 kSopTotal = 8192;
constexpr Addr kSopBase = 0x200000;

std::string sop_program() {
  const u32 per_cpu = kSopTotal / 2;
  std::string src = R"(
    .data
  partial: .space 8
    .code
    getcpu g20
    sethi g3, 0x20
    orlo g3, 0
  )";
  src += "    slli g21, g20, " +
         std::to_string(31 - __builtin_clz(per_cpu * 4)) + "\n";
  src += "    add g3, g3, g21\n";
  src += "    sethi g7, " + std::to_string(per_cpu >> 16) + "\n";
  src += "    orlo g7, " + std::to_string(per_cpu & 0xFFFF) + "\n";
  src += R"(
    setlo g6, 0
  lp:
    ldwi g4, g3, 0
    nop | madd g6, g4, g4
    addi g3, g3, 4
    addi g7, g7, -1
    bnz g7, lp
    sethi g8, %hi(partial)
    orlo g8, %lo(partial)
    slli g9, g20, 2
    stw g6, g8, g9
    membar
    halt
  )";
  return src;
}

Sample run_chip(const masm::Image& img) {
  soc::Majc5200 chip(img, TimingConfig{}, kMemBytes);
  SplitMix64 rng(404);
  for (u32 i = 0; i < kSopTotal; ++i) {
    chip.memory().write_u32(kSopBase + 4 * i, rng.next_below(1000));
  }
  const auto t0 = Clock::now();
  const soc::Majc5200::Result res = chip.run();
  Sample s{0, 0, since(t0)};
  for (u32 c = 0; c < soc::Majc5200::kNumCpus; ++c) {
    s.packets += res.packets[c];
    s.instrs += res.instrs[c];
  }
  return s;
}

/// Aggregate farm throughput: one rep = a fault-free cycle-mode campaign of
/// all 16 Table 1/2 kernels on the farm engine at host hardware concurrency.
/// The engine (compiled kernels, shared predecode) is built once by the
/// caller and kept off the clock, mirroring how sim construction is excluded
/// above; the engine's own wall measurement is the sample time.
farm::Engine make_farm_soak16() {
  using namespace kernels;
  farm::Engine eng;
  eng.add_kernel(make_biquad_spec());
  eng.add_kernel(make_fir_spec());
  eng.add_kernel(make_iir_spec());
  eng.add_kernel(make_cfir_spec());
  eng.add_kernel(make_lms_spec());
  eng.add_kernel(make_max_search_spec());
  eng.add_kernel(make_bitrev_spec());
  eng.add_kernel(make_fft_radix2_spec());
  eng.add_kernel(make_fft_radix4_spec());
  eng.add_kernel(make_idct_spec());
  eng.add_kernel(make_dct_quant_spec());
  eng.add_kernel(make_vld_spec());
  eng.add_kernel(make_motion_est_spec());
  eng.add_kernel(make_mb_decode_spec());
  eng.add_kernel(make_convolve_spec());
  eng.add_kernel(make_color_convert_spec());
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    farm::Job job;
    job.kernel = ki;
    eng.submit(job);
  }
  return eng;
}

Sample run_farm(const farm::Engine& eng) {
  farm::CampaignStats stats;
  (void)eng.run(/*workers=*/0, &stats);
  return {stats.total_packets, stats.total_instrs, stats.wall_secs};
}

void write_json(const std::string& path, const std::vector<Result>& results,
                double min_secs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_host_mips: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  // The writer emits keys in call order; "name" before "mips" is load-bearing
  // for parse_baseline below (and for existing checked-in baselines).
  trace::JsonWriter j(os);
  j.begin_object();
  j.kv("min_time_s", min_secs);
  j.key("results").begin_array();
  for (const Result& r : results) {
    j.begin_object();
    j.kv("name", r.name);
    j.kv("packets_per_sec", r.packets_per_sec);
    j.kv("mips", r.mips);
    j.kv("sim_packets", r.sim_packets);
    j.kv("sim_instrs", r.sim_instrs);
    j.kv("reps", r.reps);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  os << "\n";
}

struct BaselineEntry {
  double mips = 0;
  long reps = 0;
};

/// Minimal extraction of {name -> {mips, reps}} from a previous run's JSON
/// (the emitter above always writes "name" before "mips" before "reps" in
/// each entry). A baseline entry without a positive "reps" count is not
/// self-describing — it never names how much measurement backs it — so the
/// gate rejects it outright instead of trusting it.
std::map<std::string, BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_host_mips: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::map<std::string, BaselineEntry> out;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
    const std::size_t q1 = text.find('"', pos + 7);
    const std::size_t q2 = text.find('"', q1 + 1);
    const std::size_t m = text.find("\"mips\":", q2);
    if (q1 == std::string::npos || q2 == std::string::npos ||
        m == std::string::npos) {
      break;
    }
    const std::string name = text.substr(q1 + 1, q2 - q1 - 1);
    BaselineEntry e;
    e.mips = std::strtod(text.c_str() + m + 7, nullptr);
    // "reps" belongs to this entry only if it appears before the next entry.
    const std::size_t r = text.find("\"reps\":", m);
    const std::size_t next = text.find("\"name\":", q2);
    if (r != std::string::npos && (next == std::string::npos || r < next)) {
      e.reps = std::strtol(text.c_str() + r + 7, nullptr, 10);
    }
    if (e.reps <= 0) {
      std::fprintf(stderr,
                   "bench_host_mips: baseline entry \"%s\" has reps=%ld; a "
                   "baseline must record the rep count that produced it\n",
                   name.c_str(), e.reps);
      std::exit(2);
    }
    out[name] = e;
    pos = q2;
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_host.json";
  std::string baseline_path;
  double min_secs = 0.5;
  double tolerance = 0.30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--json-out=", 0) == 0) {  // alias for CI recipes
      out_path = arg.substr(11);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--min-time=", 0) == 0) {
      min_secs = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::strtod(arg.c_str() + 12, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_host_mips [--out=FILE | --json-out=FILE] "
                   "[--baseline=FILE] [--min-time=SECS] [--tolerance=FRAC]\n");
      return 2;
    }
  }

  struct KernelCase {
    const char* name;
    kernels::KernelSpec spec;
  };
  std::vector<KernelCase> cases;
  cases.push_back({"idct", kernels::make_idct_spec()});
  cases.push_back({"fir", kernels::make_fir_spec()});
  cases.push_back({"mb_decode", kernels::make_mb_decode_spec()});

  std::vector<Result> results;
  for (const KernelCase& c : cases) {
    const masm::Image img = masm::assemble_or_throw(c.spec.source);
    const sim::ProgramRef prog = sim::make_program(img);
    prog->threaded();  // translate once, off the clock (the farm's shape)
    results.push_back(measure(
        std::string(c.name) + "/functional", min_secs,
        [&] { return run_functional(prog, c.spec, sim::ExecBackend::kInterp); }));
    results.push_back(
        measure(std::string(c.name) + "/functional-threaded", min_secs, [&] {
          return run_functional(prog, c.spec, sim::ExecBackend::kThreaded);
        }));
    results.push_back(measure(std::string(c.name) + "/cycle", min_secs,
                              [&] { return run_cycle(img, c.spec); }));
  }
  {
    const masm::Image img = masm::assemble_or_throw(sop_program());
    results.push_back(measure("dual_sop/chip", min_secs,
                              [&] { return run_chip(img); }));
  }
  {
    const farm::Engine eng = make_farm_soak16();
    results.push_back(measure("farm/soak16", min_secs,
                              [&] { return run_farm(eng); }));
  }

  std::printf("%-24s %16s %10s %12s %6s\n", "workload", "packets/s", "MIPS",
              "packets/rep", "reps");
  for (const Result& r : results) {
    std::printf("%-24s %16.0f %10.2f %12llu %6d\n", r.name.c_str(),
                r.packets_per_sec, r.mips,
                static_cast<unsigned long long>(r.sim_packets), r.reps);
  }
  write_json(out_path, results, min_secs);
  std::printf("wrote %s\n", out_path.c_str());

  if (!baseline_path.empty()) {
    const auto base = parse_baseline(baseline_path);
    bool failed = false;
    for (const Result& r : results) {
      const auto it = base.find(r.name);
      if (it == base.end()) continue;
      const double floor_mips = it->second.mips * (1.0 - tolerance);
      if (r.mips < floor_mips) {
        std::fprintf(stderr,
                     "REGRESSION %s: %.2f MIPS < %.2f (baseline %.2f - %g%%)\n",
                     r.name.c_str(), r.mips, floor_mips, it->second.mips,
                     tolerance * 100);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("baseline check passed (tolerance %g%%)\n", tolerance * 100);
  }
  return 0;
}
