// Headline peak rates (paper §1/§6): 6.16 GFLOPS and 12.32 GOPS at 500 MHz
// across both CPUs, measured by running saturating burst kernels on the
// dual-CPU chip model.
#include "bench/bench_util.h"
#include "src/kernels/peak.h"
#include "src/soc/chip.h"

using namespace majc;
using namespace majc::bench;

namespace {

/// Run the burst on both CPUs of the chip; returns aggregate ops/second.
double dual_cpu_rate(const kernels::PeakSpec& spec, double per_iter) {
  soc::Majc5200 chip(masm::assemble_or_throw(spec.kernel.source));
  const auto res = chip.run();
  require(res.all_halted, "peak kernel did not halt");
  double rate = 0;
  for (u32 c = 0; c < 2; ++c) {
    const Addr ticks = chip.program().image().symbol("ticks");
    // Both CPUs share the image; per-CPU cycles come from their own clocks.
    (void)ticks;
    const Cycle cycles = chip.cpu(c).now();
    rate += per_iter * spec.iterations / static_cast<double>(cycles) * kClockHz;
  }
  return rate;
}

} // namespace

int main(int argc, char** argv) {
  Table table("Headline peak rates (dual-CPU MAJC-5200 at 500 MHz)", argc, argv);

  const auto fp = kernels::make_fp_peak_spec();
  const double gflops =
      dual_cpu_rate(fp, fp.flops_per_iteration) / 1e9;
  table.row("single-precision FP peak", "6.16 GFLOPS", fmt("%.2f GFLOPS", gflops));

  const auto simd = kernels::make_simd_peak_spec();
  const double gops =
      dual_cpu_rate(simd, simd.ops16_per_iteration) / 1e9;
  table.row("16-bit SIMD peak", "12.32 GOPS", fmt("%.2f GOPS", gops));

  std::printf(
      "\n(per-CPU: 3 FMA pipes x 2 flops + FU0 rsqrt/6 = 6.17 flops/cycle;\n"
      " 3 SIMD MAC pipes x 4 ops + FU0 pdiv x 2/6 = 12.33 ops/cycle)\n");
  return 0;
}
