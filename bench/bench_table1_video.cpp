// Reproduces Table 1: "Video/Image Processing Benchmarks (From Simulators)"
// on a single cycle-accurate MAJC CPU.
#include "bench/bench_util.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/idct.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"

using namespace majc;
using namespace majc::bench;
using namespace majc::kernels;

namespace {

double run(const KernelSpec& spec) {
  const KernelRun r = run_kernel(spec);
  if (!r.valid) {
    std::printf("!! %s failed validation: %s\n", spec.name.c_str(),
                r.message.c_str());
    return 0;
  }
  return static_cast<double>(r.kernel_cycles);
}

} // namespace

int main(int argc, char** argv) {
  Table table("Table 1: Video/Image Processing Benchmarks (single MAJC CPU)", argc, argv);

  table.row("8x8 IDCT", "304 cycles", cycles_str(run(make_idct_spec())));
  table.row("8x8 DCT + Quantization", "200 cycles",
      cycles_str(run(make_dct_quant_spec())));

  const double vld_cy = run(make_vld_spec());
  const double msym = kClockHz / (vld_cy / kVldSymbols) / 1e6;
  table.row("MPEG-2 VLD+IZZ+IQ", "27 MSymbols/s", fmt("%.1f MSymbols/s", msym));

  table.row("Motion Est. (+/-16 MV range)", "3000 cycles",
      cycles_str(run(make_motion_est_spec())));
  table.row("5x5 Convolution (512x512)", "1.65 Mcycles",
      cycles_str(run(make_convolve_spec())));
  table.row("512x512 Color Conversion", "0.9 Mcycles",
      cycles_str(run(make_color_convert_spec())));

  // Composed pipeline (not a paper row, but the integration its VLD and
  // IDCT numbers imply): full 4:2:0 macroblock, VLD+IZZ+IQ -> IDCT x6.
  const double mb = run(make_mb_decode_spec());
  table.row("  [composed] 4:2:0 macroblock decode", "(derived)",
      cycles_str(mb) + " (" + fmt("%.0f", mb / 6.0) + "/blk)");
  return 0;
}
