// Ablations of the design choices DESIGN.md calls out: the bypass network,
// gshare branch prediction, the non-blocking LSU, block prefetch, and the
// dual-ported shared D$. Each row reruns a representative kernel with the
// feature disabled.
#include "bench/bench_util.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/convolve.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/soc/chip.h"

using namespace majc;
using namespace majc::bench;
using namespace majc::kernels;

namespace {

double cy(const KernelSpec& spec, const TimingConfig& cfg) {
  const auto r = run_kernel(spec, cfg);
  require(r.valid, spec.name + " failed: " + r.message);
  return static_cast<double>(r.kernel_cycles);
}

void ablate(Table& table, const std::string& what, const KernelSpec& spec,
            const TimingConfig& off) {
  const double base = cy(spec, TimingConfig{});
  const double cost = cy(spec, off);
  table.row(what + " (" + spec.name + ")", "feature on",
      fmt("%.2fx slower off", cost / base));
}

} // namespace

namespace {

/// The paper's "two-scalar" claim: the complete FU0<->FU1 bypass lets a
/// serial dependence chain alternate between the two units at 1 IPC.
double two_scalar_cycles(TimingConfig cfg) {
  cfg.perfect_icache = true;  // isolate the bypass effect
  std::string src = "setlo g3, 1\nsetlo g4, 1\n";
  for (int i = 0; i < 200; ++i) {
    src += (i % 2 == 0) ? "add g4, g4, g3\n"          // FU0
                        : "nop | add g4, g4, g3\n";   // FU1
  }
  src += "halt\n";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  const auto res = sim.run();
  require(res.halted, "two-scalar microbench did not halt");
  return static_cast<double>(res.cycles);
}

/// Cold streaming read over 256 KB with four independent accumulator
/// streams (so overlapping misses can actually help): exposes the value of
/// non-blocking loads and of block prefetch.
double stream_cycles(const TimingConfig& cfg, bool with_prefetch) {
  std::string src = R"(
    sethi g3, 4
    orlo g3, 0
    sethi g7, 0
    orlo g7, 2048
    setlo g10, 0 | setlo g11, 0 | setlo g12, 0 | setlo g13, 0
    setlo g8, 128
  lp:
)";
  if (with_prefetch) {
    src += "  pref g0, g3, g8\n";
  }
  // Software-pipelined consumption: this iteration sums the values loaded
  // by the previous one, so the four line misses overlap when the LSU is
  // non-blocking.
  src += R"(
    ldwi g4, g3, 0
    ldwi g5, g3, 32
    ldwi g6, g3, 64
    ldwi g9, g3, 96
    nop | add g10, g10, g14 | add g11, g11, g15
    nop | add g12, g12, g16 | add g13, g13, g17
    nop | mov g14, g4 | mov g15, g5
    nop | mov g16, g6 | mov g17, g9
    addi g3, g3, 128
    addi g7, g7, -1
    bnz g7, lp
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  const auto res = sim.run();
  require(res.halted, "stream microbench did not halt");
  return static_cast<double>(res.cycles);
}

} // namespace

int main(int argc, char** argv) {
  Table table("Ablations: cost of disabling each MAJC-5200 design feature", argc, argv);

  {
    TimingConfig off;
    off.full_bypass = false;
    const double on_cy = two_scalar_cycles(TimingConfig{});
    const double off_cy = two_scalar_cycles(off);
    table.row("FU0<->FU1 bypass (two-scalar chain)", "feature on",
        fmt("%.2fx slower off", off_cy / on_cy));
    ablate(table, "bypass network", make_idct_spec(), off);
    ablate(table, "bypass network", make_fir_spec(), off);
  }
  {
    TimingConfig off;
    off.bpred_enabled = false;
    ablate(table, "gshare branch prediction", make_vld_spec(), off);
  }
  {
    TimingConfig on;
    TimingConfig off;
    off.nonblocking_loads = false;
    table.row("non-blocking loads (cold stream)", "feature on",
        fmt("%.2fx slower off",
            stream_cycles(off, false) / stream_cycles(on, false)));
    ablate(table, "non-blocking loads", make_bitrev_spec(), off);
  }
  {
    // Prefetch micro: a dependent single-stream walk where each line miss
    // is exposed unless a block prefetch (4 lines ahead) hides it.
    auto dep_stream = [&](bool pf) {
      std::string src = R"(
        sethi g3, 4
        orlo g3, 0
        sethi g7, 0
        orlo g7, 8192
        setlo g6, 0
        setlo g8, 128
      lp:
      )";
      if (pf) src += "  pref g0, g3, g8\n";
      src += R"(
        ldwi g4, g3, 0
        add g6, g6, g4
        addi g3, g3, 32
        addi g7, g7, -1
        bnz g7, lp
        halt
      )";
      cpu::CycleSim sim(masm::assemble_or_throw(src), TimingConfig{});
      const auto res = sim.run();
      require(res.halted, "prefetch micro did not halt");
      return static_cast<double>(res.cycles);
    };
    table.row("block prefetch (cold stream)", "prefetch on",
        fmt("%.2fx faster with pref", dep_stream(false) / dep_stream(true)));
  }
  {
    // Dual-ported D$: contention only shows with both CPUs hammering it.
    const char* src = R"(
      .data
    buf: .space 8192
      .code
      sethi g3, %hi(buf)
      orlo g3, %lo(buf)
      getcpu g4
      slli g4, g4, 7
      add g3, g3, g4      # distinct 128 B regions per CPU
      setlo g5, 20000
    lp:
      ldwi g6, g3, 0
      ldwi g7, g3, 4
      stwi g6, g3, 8
      addi g5, g5, -1
      bnz g5, lp
      halt
    )";
    auto run_chip = [&](bool dual) {
      TimingConfig cfg;
      cfg.dcache_dual_ported = dual;
      soc::Majc5200 chip(masm::assemble_or_throw(src), cfg);
      const auto res = chip.run();
      require(res.all_halted, "dual-port ablation did not halt");
      return static_cast<double>(res.cycles);
    };
    const double dual = run_chip(true);
    const double single = run_chip(false);
    table.row("dual-ported shared D$ (2-CPU loop)", "feature on",
        fmt("%.2fx slower off", single / dual));
  }
  {
    // Vertical microthreading (the MAJC feature beyond what MAJC-5200's
    // paper tables use): two contexts on one CPU hide miss latency on a
    // miss-bound walk with equal total work.
    auto walk = [&](u32 iters, u32 threads) {
      std::string src = R"(
        gettid g20
        sethi g3, 0x40
        orlo g3, 0
        slli g21, g20, 18
        slli g22, g20, 11
        add g3, g3, g21
        add g3, g3, g22
        setlo g6, 0
        sethi g7, )" + std::to_string(iters >> 16) +
                        "\norlo g7, " + std::to_string(iters & 0xFFFF) + R"(
      lp:
        ldwi g4, g3, 0
        add g6, g6, g4
        addi g3, g3, 32
        addi g7, g7, -1
        bnz g7, lp
        halt
      )";
      TimingConfig cfg;
      cfg.hw_threads = threads;
      cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
      const auto res = sim.run();
      require(res.halted, "microthreading walk did not halt");
      return static_cast<double>(res.cycles);
    };
    table.row("vertical microthreading (2 ctx)", "extension",
        fmt("%.2fx faster than 1 ctx", walk(4096, 1) / walk(2048, 2)));
  }
  {
    TimingConfig perfect;
    perfect.perfect_dcache = true;
    perfect.perfect_icache = true;
    const double base = cy(make_convolve_spec(), TimingConfig{});
    const double ideal = cy(make_convolve_spec(), perfect);
    table.row("memory effects (5x5 convolution)", "paper reports both",
        fmt("%.2fx of ideal", base / ideal));
  }
  return 0;
}
