// Reproduces Table 2: "Signal Processing Benchmarks (From Simulators)".
#include "bench/bench_util.h"
#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"

using namespace majc;
using namespace majc::bench;
using namespace majc::kernels;

namespace {

double run(const KernelSpec& spec) {
  const KernelRun r = run_kernel(spec);
  if (!r.valid) {
    std::printf("!! %s failed validation: %s\n", spec.name.c_str(),
                r.message.c_str());
    return 0;
  }
  return static_cast<double>(r.kernel_cycles);
}

} // namespace

int main(int argc, char** argv) {
  Table table("Table 2: Signal Processing Benchmarks (single MAJC CPU)", argc, argv);

  table.row("Cascade of eight 2nd-order biquads", "63 cycles",
      cycles_str(run(make_biquad_spec())));
  table.row("64-sample, 64-tap FIR", "2757 cycles", cycles_str(run(make_fir_spec())));
  table.row("64-sample, 16th-order IIR", "2021 cycles",
      cycles_str(run(make_iir_spec())));
  table.row("64-sample, 64-tap complex FIR", "8643 cycles",
      cycles_str(run(make_cfir_spec())));
  table.row("Single sample, 16th-order LMS", "64 cycles",
      cycles_str(run(make_lms_spec())));
  table.row("Max search, array of 40", "126 cycles",
      cycles_str(run(make_max_search_spec())));

  const double r2 = run(make_fft_radix2_spec());
  const double r4 = run(make_fft_radix4_spec());
  // The scanned paper truncates the FFT cycle counts; it asserts radix-4 is
  // the win the register file enables. We print both and the ratio.
  table.row("Radix-2 1024-pt complex FFT", "(truncated in scan)", cycles_str(r2));
  table.row("Radix-4 1024-pt complex FFT", "(truncated in scan)", cycles_str(r4));
  table.row("  radix-2 / radix-4 ratio", "~1.34 (26669/19889)",
      fmt("%.2f", r2 / r4));

  table.row("Bit reversal, 1024-pt", "2484 cycles", cycles_str(run(make_bitrev_spec())));
  return 0;
}
