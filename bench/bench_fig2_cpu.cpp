// Reproduces Figure 2's CPU microarchitecture facts as measurements: every
// documented latency, bypass delay and front-end property of the MAJC CPU,
// verified against the cycle model.
#include "bench/bench_util.h"
#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"

using namespace majc;
using namespace majc::bench;

namespace {

TimingConfig ideal() {
  TimingConfig cfg;
  cfg.perfect_icache = true;
  return cfg;
}

Cycle run_cycles(const std::string& src, const TimingConfig& cfg = ideal()) {
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  const auto res = sim.run();
  require(res.halted, "microbenchmark did not halt");
  return res.cycles;
}

i64 extra(const std::string& body, const std::string& baseline) {
  const std::string pre = "setlo g3, 3\nsetlo g4, 5\nsetlo g5, 7\nnop\nnop\n";
  return static_cast<i64>(run_cycles(pre + body + "halt\n")) -
         static_cast<i64>(run_cycles(pre + baseline + "halt\n"));
}

} // namespace

int main(int argc, char** argv) {
  Table table("Figure 2: CPU microarchitecture, measured", argc, argv);

  table.row("registers per CPU", "224 (96 global + 4x32 local)",
      fmt("%.0f", static_cast<double>(isa::kNumRegs)));
  table.row("packet width", "1-4 instructions",
      fmt("%.0f slots", static_cast<double>(isa::kMaxSlots)));

  table.row("ALU latency (same FU)", "1 cycle",
      fmt("%.0f cycles", 1.0 + extra("add g6, g3, g4\nadd g7, g6, g5\n",
                                     "add g6, g3, g4\nadd g7, g3, g5\n")));
  table.row("integer multiply", "2 cycles",
      fmt("%.0f cycles",
          1.0 + extra("nop | mul l0, g3, g4\nnop | add g7, l0, g5\n",
                      "nop | mul l0, g3, g4\nnop | add g7, g3, g5\n")));
  table.row("FP32 add/mul/FMA", "4 cycles",
      fmt("%.0f cycles",
          1.0 + extra("nop | fadd l0, g3, g4\nnop | fadd g7, l0, g5\n",
                      "nop | fadd l0, g3, g4\nnop | fadd g7, g3, g5\n")));
  table.row("FU0 divide / rsqrt (non-pipelined)", "6 cycles",
      fmt("%.0f cycles", 1.0 + extra("div g6, g3, g4\ndiv g7, g4, g3\n",
                                     "add g6, g3, g4\nadd g7, g4, g3\n")));

  {
    TimingConfig cfg = ideal();
    cfg.perfect_dcache = true;
    const std::string pre = "setlo g3, 4096\n";
    const Cycle dep =
        run_cycles(pre + "ldwi g6, g3, 0\nadd g7, g6, g6\nhalt\n", cfg);
    const Cycle ind =
        run_cycles(pre + "ldwi g6, g3, 0\nadd g7, g3, g3\nhalt\n", cfg);
    table.row("load-to-use (D$ hit)", "2 cycles",
        fmt("%.0f cycles", 1.0 + static_cast<double>(dep - ind)));
  }

  table.row("bypass FU1 -> FU0", "0 extra cycles",
      fmt("%.0f extra", static_cast<double>(
                            extra("nop | add g6, g3, g4\nadd g7, g6, g5\n",
                                  "nop | add g6, g3, g4\nadd g7, g3, g5\n"))));
  table.row("bypass FU0 -> FU1/2/3", "+1 cycle",
      fmt("%.0f extra", static_cast<double>(
                            extra("add g6, g3, g4\nnop | add g7, g6, g5\n",
                                  "add g6, g3, g4\nnop | add g7, g3, g5\n"))));
  table.row("cross-FU via Trap/WB (FU1->FU2)", "+2 cycles",
      fmt("%.0f extra",
          static_cast<double>(extra(
              "nop | add g6, g3, g4\nnop | nop | add g7, g6, g5\n",
              "nop | add g6, g3, g4\nnop | nop | add g7, g3, g5\n"))));

  {
    // gshare predictor on a biased loop: 4096 entries, 12 history bits.
    const char* loop = R"(
      setlo g3, 2000
    lp:
      addi g3, g3, -1
      bnz g3, lp
      halt
    )";
    cpu::CycleSim sim(masm::assemble_or_throw(loop), ideal());
    sim.run();
    table.row("gshare accuracy (biased loop)", "~100 %",
        fmt("%.1f %%", 100.0 * sim.cpu().predictor().accuracy()));
    table.row("predictor geometry", "4096 entries, 12-bit history",
        "4096 entries, 12-bit");
  }

  {
    // Issue-width histogram of a mixed program (header bits at work).
    const char* prog = R"(
      setlo g3, 100
    lp:
      addi g3, g3, -1 | add g8, g3, g3
      nop | add g9, g8, g8 | add g10, g8, g8 | add g11, g8, g8
      bnz g3, lp
      halt
    )";
    cpu::CycleSim sim(masm::assemble_or_throw(prog), ideal());
    sim.run();
    const auto& h = sim.cpu().stats().width_hist;
    std::printf("\nissue-width histogram (mixed loop): 1-wide %llu, 2-wide "
                "%llu, 3-wide %llu, 4-wide %llu (mean %.2f)\n",
                static_cast<unsigned long long>(h.bucket(1)),
                static_cast<unsigned long long>(h.bucket(2)),
                static_cast<unsigned long long>(h.bucket(3)),
                static_cast<unsigned long long>(h.bucket(4)), h.mean());
  }
  return 0;
}
