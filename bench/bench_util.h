// Shared table output for the benchmark harnesses: every bench prints the
// paper's row next to the measured value so EXPERIMENTS.md can quote the
// output verbatim, and every bench accepts --json=FILE to dump the same
// rows machine-readably (schema "majc-bench-v1") for CI and plotting.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/trace/json.h"

namespace majc::bench {

inline std::string cycles_str(double c) {
  char buf[64];
  if (c >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mcycles", c / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f cycles", c);
  }
  return buf;
}

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

/// One bench's result table. Rows print to stdout immediately (unchanged
/// output format); finish() additionally writes every row as JSON when the
/// program was invoked with --json=FILE.
class Table {
public:
  Table(std::string title, int argc = 0, char** argv = nullptr)
      : title_(std::move(title)) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) json_path_ = argv[i] + 7;
    }
    std::printf(
        "\n================================================================\n");
    std::printf("%s\n", title_.c_str());
    std::printf(
        "================================================================\n");
    std::printf("%-38s %18s %18s\n", "benchmark", "paper", "measured");
    std::printf(
        "----------------------------------------------------------------\n");
  }

  ~Table() { finish(); }

  void row(const std::string& name, const std::string& paper,
           const std::string& measured) {
    std::printf("%-38s %18s %18s\n", name.c_str(), paper.c_str(),
                measured.c_str());
    rows_.push_back({name, paper, measured, 0.0, "", false});
  }

  /// Row with an explicit numeric value + unit for the JSON dump (the
  /// printed `measured` string stays free-form).
  void row(const std::string& name, const std::string& paper,
           const std::string& measured, double value,
           const std::string& unit) {
    std::printf("%-38s %18s %18s\n", name.c_str(), paper.c_str(),
                measured.c_str());
    rows_.push_back({name, paper, measured, value, unit, true});
  }

  /// Free-form annotation: printed, and carried into the JSON dump.
  void note(const std::string& text) {
    std::printf("%s\n", text.c_str());
    notes_.push_back(text);
  }

  /// Write the JSON dump if --json=FILE was given. Idempotent (the
  /// destructor calls it too).
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (json_path_.empty()) return;
    std::ofstream os(json_path_, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path_.c_str());
      return;
    }
    trace::JsonWriter j(os);
    j.begin_object();
    j.kv("schema", "majc-bench-v1");
    j.kv("title", title_);
    j.key("rows").begin_array();
    for (const Row& r : rows_) {
      j.begin_object();
      j.kv("name", r.name);
      j.kv("paper", r.paper);
      j.kv("measured", r.measured);
      if (r.has_value) {
        j.kv("value", r.value);
        j.kv("unit", r.unit);
      }
      j.end_object();
    }
    j.end_array();
    j.key("notes").begin_array();
    for (const std::string& n : notes_) j.value(n);
    j.end_array();
    j.end_object();
    os << "\n";
  }

private:
  struct Row {
    std::string name, paper, measured;
    double value;
    std::string unit;
    bool has_value;
  };

  std::string title_;
  std::string json_path_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
  bool finished_ = false;
};

} // namespace majc::bench
