// Shared table formatting for the benchmark harnesses: every bench prints
// the paper's row next to the measured value so EXPERIMENTS.md can quote
// the output verbatim.
#pragma once

#include <cstdio>
#include <string>

namespace majc::bench {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
  std::printf("%-38s %18s %18s\n", "benchmark", "paper", "measured");
  std::printf("----------------------------------------------------------------\n");
}

inline void row(const std::string& name, const std::string& paper,
                const std::string& measured) {
  std::printf("%-38s %18s %18s\n", name.c_str(), paper.c_str(),
              measured.c_str());
}

inline std::string cycles_str(double c) {
  char buf[64];
  if (c >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mcycles", c / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f cycles", c);
  }
  return buf;
}

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

} // namespace majc::bench
