// Seeded fault-soak harness: storm the 16 Table 1/2 kernels with randomized
// fault-injection rates under the recoverable machine-check policies and
// assert every recovered run still computes the golden architectural
// outcome.
//
// Each (kernel, iteration) pair derives a FaultConfig from the base seed via
// SplitMix64 — correctable/uncorrectable DRAM rates, cache-fill parity
// rates, crossbar grant delay/drop rates — and alternates the
// machine-check policy between retry and poison-and-scrub. Faults cost
// time (refetches, re-arbitrations, scrub refills), never correctness:
// the kernel's validate() hook re-checks the outputs against the golden
// C++ model, so a run that "recovers" into wrong data fails loudly.
//
//   $ ./soak_faults                      # default: 2 iterations per kernel
//   $ ./soak_faults --runs=4 --seed=7    # longer storm, different stream
//   $ ./soak_faults --json=soak.json     # machine-readable results
//   $ ./soak_faults --jobs=1             # serial (default: all host cores)
//
// The storm runs on the farm engine (src/farm/): kernels are assembled and
// predecoded once, workers reuse per-thread machine arenas, and results
// aggregate in submission order — so stdout, the majc-soak-v1 JSON and the
// golden-equal assertions are byte-identical for any --jobs value (and
// unchanged from the pre-farm serial harness).
//
// Exit status: 0 when every run validated and halted, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/farm/farm.h"
#include "src/kernels/kernel.h"
#include "src/kernels/table12.h"
#include "src/trace/json.h"

using namespace majc;

namespace {

constexpr const char* kSoakSchema = "majc-soak-v1";

struct SoakRun {
  u64 iteration = 0;
  FaultConfig faults;
  kernels::KernelRun run;
  bool ok = false;
};

struct SoakKernel {
  const char* name = nullptr;
  kernels::KernelRun golden;
  std::vector<SoakRun> runs;
};

void write_recovery(trace::JsonWriter& j,
                    const kernels::KernelRun::Recovery& r) {
  j.key("recovery").begin_object();
  j.kv("ecc_corrected", r.ecc_corrected);
  j.kv("ecc_retried", r.ecc_retried);
  j.kv("ecc_poisoned", r.ecc_poisoned);
  j.kv("machine_checks", r.machine_checks);
  j.kv("fill_parity_retries", r.fill_parity_retries);
  j.kv("fill_machine_checks", r.fill_machine_checks);
  j.kv("xbar_delayed_grants", r.xbar_delayed_grants);
  j.kv("xbar_dropped_grants", r.xbar_dropped_grants);
  j.kv("traps_delivered", r.traps_delivered);
  j.end_object();
}

void write_json(std::ostream& os, u64 seed, u64 runs_per_kernel,
                const std::vector<SoakKernel>& kernels_out, u64 failures) {
  trace::JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kSoakSchema);
  j.kv("seed", seed);
  j.kv("runs_per_kernel", runs_per_kernel);
  j.key("kernels").begin_array();
  for (const SoakKernel& k : kernels_out) {
    j.begin_object();
    j.kv("name", k.name);
    j.key("golden").begin_object();
    j.kv("valid", k.golden.valid);
    j.kv("kernel_cycles", k.golden.kernel_cycles);
    j.kv("total_cycles", k.golden.total_cycles);
    j.end_object();
    j.key("runs").begin_array();
    for (const SoakRun& r : k.runs) {
      j.begin_object();
      j.kv("iteration", r.iteration);
      j.kv("fault_seed", r.faults.seed);
      j.kv("mc_policy", machine_check_policy_name(r.faults.mc_policy));
      j.kv("dram_correctable_rate", r.faults.dram_correctable_rate);
      j.kv("dram_uncorrectable_rate", r.faults.dram_uncorrectable_rate);
      j.kv("fill_parity_rate", r.faults.fill_parity_rate);
      j.kv("xbar_delay_rate", r.faults.xbar_delay_rate);
      j.kv("xbar_drop_rate", r.faults.xbar_drop_rate);
      j.kv("ok", r.ok);
      j.kv("valid", r.run.valid);
      j.kv("halted", r.run.halted);
      j.kv("reason", termination_reason_name(r.run.reason));
      j.kv("total_cycles", r.run.total_cycles);
      if (!r.run.message.empty()) j.kv("message", r.run.message);
      write_recovery(j, r.run.recovery);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.key("summary").begin_object();
  j.kv("total_runs", static_cast<u64>(kernels_out.size()) * runs_per_kernel);
  j.kv("failures", failures);
  j.end_object();
  j.end_object();
  os << "\n";
}

} // namespace

int main(int argc, char** argv) {
  u64 seed = 0x5eed50a4;  // default stream; override with --seed
  u64 runs_per_kernel = 2;
  unsigned jobs = 0;  // 0 = host hardware concurrency
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 0);
    } else if (std::strncmp(a, "--runs=", 7) == 0) {
      runs_per_kernel = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
    } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
      jobs = static_cast<unsigned>(std::strtoul(a + 2, nullptr, 10));
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json_path = a + 7;
    } else {
      std::fprintf(stderr,
                   "usage: soak_faults [--seed=S] [--runs=N] [--jobs=N] "
                   "[--json=FILE]\n");
      return 2;
    }
  }

  // Compile every kernel once (shared predecode), then submit the whole
  // storm — golden run + fault runs per kernel — as one campaign. Job
  // layout per kernel ki: index ki*(1+R) is the fault-free golden run,
  // ki*(1+R)+1+it is fault iteration `it`.
  const std::vector<kernels::NamedKernel>& kernels_in =
      kernels::table12_kernels();
  farm::Engine eng;
  for (const kernels::NamedKernel& nk : kernels_in) {
    eng.add_kernel(kernels::table12_spec(nk));
  }
  const u64 per_kernel = 1 + runs_per_kernel;
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    farm::Job golden;
    golden.kernel = ki;
    eng.submit(golden);
    for (u64 it = 0; it < runs_per_kernel; ++it) {
      farm::Job job;
      job.kernel = ki;
      job.iteration = it;
      job.cfg.faults = farm::derive_soak_faults(seed, ki, it);
      eng.submit(job);
    }
  }

  const std::vector<farm::JobResult> raw = eng.run(jobs);

  // Re-assemble the per-kernel view in submission order; the report below
  // is byte-identical to the original serial harness for any --jobs value.
  std::vector<SoakKernel> results;
  u64 failures = 0;
  for (std::size_t ki = 0; ki < kernels_in.size(); ++ki) {
    const kernels::NamedKernel& nk = kernels_in[ki];
    SoakKernel out;
    out.name = nk.name;
    out.golden = raw[ki * per_kernel].run;
    if (!out.golden.valid) {
      std::fprintf(stderr, "%-14s GOLDEN RUN INVALID: %s\n", nk.name,
                   out.golden.message.c_str());
      ++failures;
    }
    for (u64 it = 0; it < runs_per_kernel; ++it) {
      SoakRun sr;
      sr.iteration = it;
      sr.faults = farm::derive_soak_faults(seed, ki, it);
      sr.run = raw[ki * per_kernel + 1 + it].run;
      // Recovery must be invisible to architecture: the faulty run halts
      // and its outputs match the golden model exactly. Timing is allowed
      // (expected) to differ — that is the cost of recovery.
      sr.ok = sr.run.valid && sr.run.halted && out.golden.valid;
      if (!sr.ok) {
        ++failures;
        std::fprintf(stderr, "%-14s it=%llu policy=%s FAILED: %s\n", nk.name,
                     static_cast<unsigned long long>(it),
                     machine_check_policy_name(sr.faults.mc_policy),
                     sr.run.message.empty() ? termination_reason_name(
                                                  sr.run.reason)
                                            : sr.run.message.c_str());
      } else {
        const auto& rec = sr.run.recovery;
        std::printf(
            "%-14s it=%llu policy=%-6s ok  cycles %llu (golden %llu)  "
            "corrected %llu retried %llu poisoned %llu refetch %llu "
            "xbar %llu/%llu\n",
            nk.name, static_cast<unsigned long long>(it),
            machine_check_policy_name(sr.faults.mc_policy),
            static_cast<unsigned long long>(sr.run.total_cycles),
            static_cast<unsigned long long>(out.golden.total_cycles),
            static_cast<unsigned long long>(rec.ecc_corrected),
            static_cast<unsigned long long>(rec.ecc_retried),
            static_cast<unsigned long long>(rec.ecc_poisoned),
            static_cast<unsigned long long>(rec.fill_parity_retries),
            static_cast<unsigned long long>(rec.xbar_delayed_grants),
            static_cast<unsigned long long>(rec.xbar_dropped_grants));
      }
      out.runs.push_back(std::move(sr));
    }
    results.push_back(std::move(out));
  }

  if (json_path != nullptr) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    write_json(os, seed, runs_per_kernel, results, failures);
  }

  std::printf("soak: %zu kernels x %llu runs, %llu failure(s)\n",
              results.size(),
              static_cast<unsigned long long>(runs_per_kernel),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
