// Seeded host-chaos soak: storm the farm *engine* (not the guest) with
// injected worker exceptions, forced checkpoint preemptions and deadline
// kills on a deterministic schedule, and assert the resilience layer makes
// all of it invisible — the final aggregated campaign JSON from a chaotic
// multi-worker run is byte-identical to an undisturbed --jobs=1 baseline.
//
// This is the complement of soak_faults: that harness proves *guest* fault
// recovery preserves architectural results; this one proves *host* failure
// handling (retry, backoff, quarantine, preemption) preserves campaign
// output. Both lean on the same determinism spine: chaos decisions are pure
// functions of (seed, job, attempt, slice), retries replay deterministic
// guest outcomes, and the JSON carries no host-observational fields.
//
// The harness also pins the hung-job conversion: a kernel that spins
// forever (storing every iteration, so the cycle watchdog sees progress)
// under a JobPolicy host deadline comes back quickly as a structured
// deadline-exceeded result instead of pinning a worker or hanging CI.
//
//   $ ./chaos_soak                       # default: 2 fault seeds per kernel
//   $ ./chaos_soak --runs=1 --jobs=4     # CI smoke configuration
//   $ ./chaos_soak --chaos-seed=7        # different disturbance schedule
//
// Exit status: 0 when the chaotic JSON matches the baseline and the hung
// job converts; 1 on any divergence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/kernel.h"
#include "src/kernels/table12.h"

using namespace majc;

namespace {

/// An intentionally-hung guest: spins forever, storing each iteration so
/// the cycle watchdog keeps seeing forward progress and never fires. Only
/// the JobPolicy host deadline can end it.
kernels::KernelSpec make_spin_spec() {
  kernels::KernelSpec spec;
  spec.name = "spin_forever";
  spec.source = R"(
      .data
    buf: .space 4
      .code
      sethi g1, %hi(buf)
      orlo g1, %lo(buf)
    spin:
      stwi g0, g1, 0
      bz g0, spin
      halt
  )";
  spec.max_packets = 1ull << 62;  // never reached
  return spec;
}

/// Check the hung-job conversion: deadline-killed, classified, fast, not
/// quarantined (a host deadline says nothing about the guest; a bigger
/// budget might finish it).
int check_hung_job_conversion() {
  farm::Engine eng;
  eng.add_kernel(make_spin_spec());
  for (const farm::SimMode mode :
       {farm::SimMode::kCycle, farm::SimMode::kFunctional}) {
    farm::Job job;
    job.kernel = 0;
    job.mode = mode;
    job.policy.host_deadline_secs = 0.25;
    job.policy.slice_packets = 4096;
    job.policy.max_attempts = 3;  // deadline kills must NOT burn retries
    eng.submit(job);
  }

  const std::vector<farm::JobResult> res = eng.run(1);
  int bad = 0;
  for (std::size_t i = 0; i < res.size(); ++i) {
    const farm::JobResult& r = res[i];
    const char* mode = farm::sim_mode_name(eng.jobs()[i].mode);
    if (!r.done || r.run.reason != TerminationReason::kHostDeadline ||
        r.failure != farm::FailureClass::kDeadlineExceeded ||
        r.quarantined || r.attempts != 1) {
      std::fprintf(stderr,
                   "chaos_soak: hung %s job not converted: done=%d "
                   "reason=%s class=%s quarantined=%d attempts=%u\n",
                   mode, r.done, termination_reason_name(r.run.reason),
                   farm::failure_class_name(r.failure), r.quarantined,
                   r.attempts);
      ++bad;
    } else {
      std::printf("chaos_soak: hung %-10s job -> %s/%s in %.2fs (ok)\n",
                  mode, termination_reason_name(r.run.reason),
                  farm::failure_class_name(r.failure), r.host_secs);
    }
  }
  return bad;
}

} // namespace

int main(int argc, char** argv) {
  u64 seed = 0x5eed50a4;        // fault-derivation stream (same as soak)
  u64 chaos_seed = 0xc4a05;     // host-disturbance schedule
  u64 runs_per_kernel = 2;
  unsigned jobs = 0;  // 0 = host hardware concurrency
  sim::ExecBackend backend = sim::ExecBackend::kThreaded;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 0);
    } else if (std::strncmp(a, "--chaos-seed=", 13) == 0) {
      chaos_seed = std::strtoull(a + 13, nullptr, 0);
    } else if (std::strncmp(a, "--runs=", 7) == 0) {
      runs_per_kernel = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
    } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
      jobs = static_cast<unsigned>(std::strtoul(a + 2, nullptr, 10));
    } else if (std::strcmp(a, "--backend=interp") == 0) {
      backend = sim::ExecBackend::kInterp;
    } else if (std::strcmp(a, "--backend=threaded") == 0) {
      backend = sim::ExecBackend::kThreaded;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json_path = a + 7;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--seed=S] [--chaos-seed=S] [--runs=N] "
                   "[--jobs=N] [--backend=interp|threaded] [--json=FILE]\n");
      return 2;
    }
  }

  // The campaign under test: every Table 1/2 kernel, both sim modes, with
  // per-job fault seeds — sliced + retryable so chaos has slice boundaries
  // to strike at and a retry budget to absorb the hits.
  farm::Engine eng;
  for (const kernels::NamedKernel& nk : kernels::table12_kernels()) {
    eng.add_kernel(kernels::table12_spec(nk));
  }
  farm::JobPolicy policy;
  policy.slice_packets = 4096;
  policy.max_attempts = 3;
  policy.backoff_base_us = 50;  // exercise the deterministic backoff path
  policy.backoff_seed = chaos_seed;
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    for (u64 it = 0; it < runs_per_kernel; ++it) {
      farm::Job job;
      job.kernel = ki;
      job.iteration = it;
      job.policy = policy;
      job.cfg.faults = farm::derive_soak_faults(seed, ki, it);
      job.mode = farm::SimMode::kCycle;
      eng.submit(job);
      job.mode = farm::SimMode::kFunctional;
      job.backend = backend;  // functional legs honour --backend
      eng.submit(job);
    }
  }

  // Undisturbed --jobs=1 baseline.
  farm::Engine::RunOptions base_opts;
  base_opts.workers = 1;
  const std::string baseline =
      farm::campaign_json(eng, eng.run(base_opts), seed);

  // The storm: every disturbance the resilience layer is supposed to
  // absorb, on a schedule that is a pure function of (chaos_seed, job,
  // attempt, slice) — identical for any worker count or host load.
  farm::ChaosPlan chaos;
  chaos.seed = chaos_seed;
  chaos.exception_rate = 0.4;
  chaos.deadline_kill_rate = 0.25;
  chaos.preempt_rate = 0.35;
  chaos.max_preemptions_per_job = 2;

  farm::CampaignStats stats;
  farm::Engine::RunOptions chaos_opts;
  chaos_opts.workers = jobs;
  chaos_opts.stats = &stats;
  chaos_opts.chaos = &chaos;
  const std::string stormed =
      farm::campaign_json(eng, eng.run(chaos_opts), seed);

  std::printf(
      "chaos_soak: %zu jobs on %u workers in %.2fs  |  attempts %llu  "
      "retried %llu  preemptions %llu  quarantined %llu\n",
      eng.jobs().size(), stats.workers, stats.wall_secs,
      static_cast<unsigned long long>(stats.total_attempts),
      static_cast<unsigned long long>(stats.jobs_retried),
      static_cast<unsigned long long>(stats.forced_preemptions),
      static_cast<unsigned long long>(stats.jobs_quarantined));

  u64 failures = 0;
  if (stormed != baseline) {
    std::fprintf(stderr,
                 "chaos_soak: FAIL: chaotic campaign JSON diverged from the "
                 "undisturbed --jobs=1 baseline (%zu vs %zu bytes)\n",
                 stormed.size(), baseline.size());
    ++failures;
  } else {
    std::printf("chaos_soak: chaotic JSON == undisturbed baseline "
                "(%zu bytes)\n",
                baseline.size());
  }
  if (stats.total_attempts <= eng.jobs().size()) {
    // The storm must actually have disturbed something, or the equality
    // above proves nothing. With the default rates this cannot happen.
    std::fprintf(stderr,
                 "chaos_soak: FAIL: chaos injected no disturbances "
                 "(attempts=%llu for %zu jobs)\n",
                 static_cast<unsigned long long>(stats.total_attempts),
                 eng.jobs().size());
    ++failures;
  }

  failures += static_cast<u64>(check_hung_job_conversion());

  if (json_path != nullptr) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    os << baseline;
  }

  std::printf("chaos_soak: %llu failure(s)\n",
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
