#include "src/kernels/dct_common.h"

#include <cmath>
#include <numbers>

namespace majc::kernels {
namespace {

std::array<i16, 64> scaled_matrix(bool forward) {
  std::array<i16, 64> m{};
  for (u32 a = 0; a < 8; ++a) {
    for (u32 b = 0; b < 8; ++b) {
      // C[u][j] = c(u)/2 * cos((2j+1) u pi / 16); IDCT matrix is C^T.
      const u32 u = forward ? a : b;
      const u32 j = forward ? b : a;
      const double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
      const double v = 0.5 * cu *
                       std::cos((2.0 * j + 1.0) * u * std::numbers::pi / 16.0);
      m[a * 8 + b] = static_cast<i16>(std::lround(v * (1 << kDctShift)));
    }
  }
  return m;
}

/// Data-buffer register for pair-word t of the FU's active buffer.
/// LDL places the lower-addressed word in the odd register, hence t^1.
u32 data_reg(u32 fu, u32 buf, u32 t) {
  return 8 + 8 * (fu - 1) + 4 * buf + (t ^ 1);
}

} // namespace

std::array<i16, 64> idct_matrix() { return scaled_matrix(false); }
std::array<i16, 64> fdct_matrix() { return scaled_matrix(true); }

void dct_pass_reference(const std::array<i16, 64>& m, const i16* in,
                        i16* out) {
  for (u32 r = 0; r < 8; ++r) {
    for (u32 u = 0; u < 8; ++u) {
      u32 acc = 1u << (kDctShift - 1);
      for (u32 j = 0; j < 8; ++j) {
        acc += static_cast<u32>(static_cast<i32>(m[u * 8 + j]) *
                                static_cast<i32>(in[r * 8 + j]));
      }
      out[u * 8 + r] = static_cast<i16>(static_cast<i32>(acc) >> kDctShift);
    }
  }
}

void emit_matrix_preload(AsmBuilder& b, const std::string& msym) {
  b.line(load_addr(3, msym));
  for (u32 grp = 0; grp < 4; ++grp) {
    b.line("ldgi g64, g3, " + imm(32 * grp));
    for (u32 i = 0; i < 8; ++i) {
      const std::string mv = "mov " + l(8 * grp + i) + ", " + g(64 + i);
      b.packet({"nop", mv, mv, mv});
    }
  }
}

void emit_dct_pass(AsmBuilder& b, bool quantize) {
  const u32 ops = quantize ? 16 : 12;   // ops per output pair
  const u32 wave_ops = 4 * ops;         // 4 output pairs per row
  // Rows per FU per wave: FU f handles row 3w + f - 1 (absent when >= 8).
  auto row_of = [](u32 wave, u32 fu) -> int {
    const u32 r = 3 * wave + fu - 1;
    return r < 8 ? static_cast<int>(r) : -1;
  };

  const u32 total = 3 * wave_ops + 12;
  std::vector<std::array<std::string, 4>> sched(total);
  auto put = [&](u32 pkt, u32 slot, const std::string& op) {
    sched[pkt][slot] = op;
  };

  // Prologue loads for wave 0 happen before this schedule (emitted below);
  // waves 1/2 load during the previous wave at local ops 20..25.
  for (u32 w = 0; w < 3; ++w) {
    for (u32 fu = 1; fu <= 3; ++fu) {
      const int row = row_of(w, fu);
      if (row < 0) continue;
      const u32 buf = w % 2;
      const u32 base = w * wave_ops;
      const u32 accA = 50 + 4 * (fu - 1);
      const u32 accB = accA + 1;
      const u32 resA = accA + 2;
      const u32 resB = accA + 3;
      for (u32 p = 0; p < 4; ++p) {  // output pair (u = 2p, 2p+1)
        const u32 k = base + ops * p;
        put(k + 0, fu, "mov " + g(accA) + ", g49");
        put(k + 1, fu, "mov " + g(accB) + ", g49");
        for (u32 t = 0; t < 4; ++t) {
          put(k + 2 + 2 * t, fu,
              "dotp " + g(accA) + ", " + g(data_reg(fu, buf, t)) + ", " +
                  l((2 * p) * 4 + t));
          put(k + 3 + 2 * t, fu,
              "dotp " + g(accB) + ", " + g(data_reg(fu, buf, t)) + ", " +
                  l((2 * p + 1) * 4 + t));
        }
        put(k + 10, fu, "srai " + g(resA) + ", " + g(accA) + ", " + imm(kDctShift));
        put(k + 11, fu, "srai " + g(resB) + ", " + g(accB) + ", " + imm(kDctShift));
        const u32 offA = ((2 * p) * 8 + static_cast<u32>(row)) * 2;
        const u32 offB = ((2 * p + 1) * 8 + static_cast<u32>(row)) * 2;
        if (quantize) {
          // Uniform quantizer: one reciprocal constant in g45.
          put(k + 12, fu, "mul " + g(resA) + ", " + g(resA) + ", g45");
          put(k + 13, fu, "mul " + g(resB) + ", " + g(resB) + ", g45");
          put(k + 14, fu, "srai " + g(resA) + ", " + g(resA) + ", 15");
          put(k + 15, fu, "srai " + g(resB) + ", " + g(resB) + ", 15");
        }
        // Transposed stores; the result crosses to FU0 via write-back.
        // FU0 slots are staggered per FU (6 stores per output-pair window).
        put(k + ops + 2 + 2 * (fu - 1), 0,
            "sthi " + g(resA) + ", g5, " + imm(offA));
        put(k + ops + 3 + 2 * (fu - 1), 0,
            "sthi " + g(resB) + ", g5, " + imm(offB));
      }
      // Loads for the next wave's row on this FU (FU0 slots chosen clear of
      // the store windows for each variant).
      const int next_row = row_of(w + 1, fu);
      if (next_row >= 0) {
        const u32 nbuf = (w + 1) % 2;
        const u32 lk = base + (quantize ? 40 : 20) + 2 * (fu - 1);
        put(lk, 0, "ldli " + g(8 + 8 * (fu - 1) + 4 * nbuf) + ", g4, " +
                       imm(16 * static_cast<u32>(next_row)));
        put(lk + 1, 0, "ldli " + g(8 + 8 * (fu - 1) + 4 * nbuf + 2) + ", g4, " +
                           imm(16 * static_cast<u32>(next_row) + 8));
      }
    }
  }

  // Wave-0 prologue loads.
  for (u32 fu = 1; fu <= 3; ++fu) {
    const int row = row_of(0, fu);
    if (row < 0) continue;
    b.line("ldli " + g(8 + 8 * (fu - 1)) + ", g4, " +
           imm(16 * static_cast<u32>(row)));
    b.line("ldli " + g(8 + 8 * (fu - 1) + 2) + ", g4, " +
           imm(16 * static_cast<u32>(row) + 8));
  }
  for (const auto& s : sched) {
    if (s[0].empty() && s[1].empty() && s[2].empty() && s[3].empty()) continue;
    b.packet({s[0].empty() ? "nop" : s[0], s[1].empty() ? "nop" : s[1],
              s[2].empty() ? "nop" : s[2], s[3].empty() ? "nop" : s[3]});
  }
}

} // namespace majc::kernels
