#include "src/kernels/kernel.h"

#include "src/sim/functional_sim.h"
#include "src/support/checkpoint.h"

namespace majc::kernels {
namespace {

void fill_common(KernelRun& run, const masm::Image& img, sim::MemoryBus& mem,
                 const KernelSpec& spec) {
  if (auto it = img.symbols.find("ticks"); it != img.symbols.end()) {
    const u32 t0 = mem.read_u32(it->second);
    const u32 t1 = mem.read_u32(it->second + 4);
    run.kernel_cycles = t1 - t0;
  } else {
    run.kernel_cycles = run.total_cycles;
  }
  if (spec.validate) {
    run.valid = spec.validate(mem, img, run.message);
  } else {
    run.valid = true;
  }
}

} // namespace

void setup_kernel(cpu::CycleSim& sim, const KernelSpec& spec) {
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());
}

void setup_kernel(sim::FunctionalSim& sim, const KernelSpec& spec) {
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());
}

KernelRun finalize_kernel(cpu::CycleSim& sim, const KernelSpec& spec,
                          const cpu::CycleSim::Result& res) {
  KernelRun run;
  run.total_cycles = res.cycles;
  run.packets = res.packets;
  run.instrs = res.instrs;
  run.halted = res.halted;
  run.reason = res.reason;
  run.ipc = res.ipc();
  run.cpu_stats = sim.cpu().stats();
  run.arch_digest = ckpt::arch_digest(sim);
  const mem::MemorySystem& ms = sim.memsys();
  run.recovery.ecc_corrected = sim.ecc().corrected();
  run.recovery.ecc_retried = sim.ecc().retried();
  run.recovery.ecc_poisoned = sim.ecc().poisoned_lines();
  run.recovery.machine_checks = sim.ecc().machine_checks();
  run.recovery.fill_parity_retries =
      ms.ifetch_parity_retries() +
      ms.lsu(0).counter(mem::LsuCounter::kFillParityRetries);
  run.recovery.fill_machine_checks =
      ms.ifetch_machine_checks() +
      ms.lsu(0).counter(mem::LsuCounter::kFillMachineChecks);
  run.recovery.xbar_delayed_grants = ms.xbar().delayed_grants();
  run.recovery.xbar_dropped_grants = ms.xbar().dropped_grants();
  run.recovery.traps_delivered = sim.cpu().stats().traps_delivered;
  fill_common(run, sim.program().image(), sim.memory(), spec);
  if (!res.halted) {
    run.valid = false;
    run.message = res.reason == TerminationReason::kTrap
                      ? std::string(trap_cause_name(res.trap.code)) +
                            " trap: " + res.trap.detail
                      : "kernel did not halt within packet budget";
  }
  return run;
}

KernelRun finalize_kernel(sim::FunctionalSim& sim, const KernelSpec& spec,
                          const sim::RunResult& res) {
  KernelRun run;
  // Cumulative machine counters, not the last slice's per-call counts, so a
  // sliced run reports the same totals as a single run() call (they agree
  // by construction on a machine that was fresh/reset at setup time).
  run.total_cycles = sim.packets_run();  // packet count stands in for time
  run.packets = sim.packets_run();
  run.instrs = sim.instrs_run();
  run.halted = res.halted;
  run.reason = res.reason;
  run.arch_digest = ckpt::arch_digest(sim);
  fill_common(run, sim.program().image(), sim.memory(), spec);
  if (!res.halted) {
    run.valid = false;
    run.message = "kernel did not halt within packet budget";
  }
  return run;
}

KernelRun run_kernel_on(cpu::CycleSim& sim, const KernelSpec& spec) {
  setup_kernel(sim, spec);
  return finalize_kernel(sim, spec, sim.run(spec.max_packets));
}

KernelRun run_kernel_on(sim::FunctionalSim& sim, const KernelSpec& spec) {
  setup_kernel(sim, spec);
  return finalize_kernel(sim, spec, sim.run(spec.max_packets));
}

KernelRun run_kernel(const KernelSpec& spec, const TimingConfig& cfg) {
  masm::Image img = masm::assemble_or_throw(spec.source);
  cpu::CycleSim sim(std::move(img), cfg);
  return run_kernel_on(sim, spec);
}

KernelRun run_kernel_functional(const KernelSpec& spec) {
  masm::Image img = masm::assemble_or_throw(spec.source);
  sim::FunctionalSim sim(std::move(img));
  return run_kernel_on(sim, spec);
}

CompiledKernel compile_kernel(KernelSpec spec) {
  CompiledKernel k;
  k.program = sim::make_program(masm::assemble_or_throw(spec.source));
  // Warm the threaded-code cache at compile time: the farm's workers then
  // share one ready translation per image instead of colliding on the lazy
  // call_once inside their first functional job.
  k.program->threaded();
  k.spec = std::move(spec);
  return k;
}

KernelRun run_compiled(const CompiledKernel& k, const TimingConfig& cfg,
                       cpu::CycleSim& machine) {
  machine.reset(k.program, cfg);
  return run_kernel_on(machine, k.spec);
}

KernelRun run_compiled_functional(const CompiledKernel& k,
                                  sim::FunctionalSim& machine) {
  machine.reset(k.program);
  return run_kernel_on(machine, k.spec);
}

std::string load_addr(u32 greg, const std::string& sym) {
  const std::string r = "g" + std::to_string(greg);
  return "sethi " + r + ", %hi(" + sym + ")\norlo " + r + ", %lo(" + sym +
         ")\n";
}

std::string tick_start() {
  return load_addr(90, "ticks") + "gettick g91\nstwi g91, g90, 0\n";
}

std::string tick_stop() {
  return "gettick g91\nstwi g91, g90, 4\n";
}

} // namespace majc::kernels
