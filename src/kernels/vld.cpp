#include "src/kernels/vld.h"

#include <cmath>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"
#include "src/support/bits.h"

namespace majc::kernels {
namespace {

constexpr u8 kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

u32 prefix_len(i32 level) {
  const u32 mag = static_cast<u32>(level < 0 ? -level : level);
  return std::min(12u, mag - 1);
}

/// MSB-first packer into u32 words.
class WordBitWriter {
public:
  void put(u32 value, u32 bits) {
    for (u32 i = bits; i-- > 0;) {
      acc_ = (acc_ << 1) | ((value >> i) & 1u);
      if (++n_ == 32) {
        words_.push_back(acc_);
        acc_ = 0;
        n_ = 0;
      }
    }
  }
  std::vector<u32> finish() {
    if (n_ != 0) words_.push_back(acc_ << (32 - n_));
    words_.push_back(0);  // decoder window lookahead padding
    words_.push_back(0);
    words_.push_back(0);
    return std::move(words_);
  }

private:
  std::vector<u32> words_;
  u32 acc_ = 0;
  u32 n_ = 0;
};

} // namespace

std::vector<VldSymbol> make_vld_symbols(u64 seed) {
  std::vector<VldSymbol> syms(kVldSymbols);
  SplitMix64 rng(seed ^ 0x71D);
  for (auto& s : syms) {
    // Geometric-ish magnitude: short codes dominate, as in real streams.
    u32 mag = 1;
    while (mag < 31 && rng.next_below(100) < 45) ++mag;
    const bool neg = rng.next_below(2) != 0;
    s.level = neg ? -static_cast<i32>(mag) : static_cast<i32>(mag);
    s.run = rng.next_below(16);
  }
  return syms;
}

std::vector<u32> encode_vld_stream(const std::vector<VldSymbol>& syms) {
  WordBitWriter w;
  for (const auto& s : syms) {
    const u32 n = prefix_len(s.level);
    w.put(1, n + 1);  // n zeros then a one
    w.put(s.run, 4);
    w.put(static_cast<u32>(s.level + 32), 6);
  }
  return w.finish();
}

void vld_reference(const std::vector<u32>& stream, u32 symbols, i16* block) {
  for (u32 i = 0; i < 64; ++i) block[i] = 0;
  u32 pos = 0;  // absolute bit position
  u32 idx = 63; // so the first symbol's run+1 advance lands on (idx+run+1)&63
  for (u32 s = 0; s < symbols; ++s) {
    const u32 word = pos >> 5;
    const u64 window = (u64{stream[word]} << 32) | stream[word + 1];
    const u32 v = bitfield_extract(static_cast<u32>(window >> 32),
                                   static_cast<u32>(window), pos & 31, 32);
    const u32 n = leading_zeros(v);
    const u32 run = (v >> (27 - n)) & 15u;
    const i32 level = static_cast<i32>((v >> (21 - n)) & 63u) - 32;
    pos += n + 11;
    idx = (idx + run + 1) & 63u;
    block[kZigzag[idx]] = static_cast<i16>(level * kVldQscale);
  }
}

const u8* vld_zigzag_table() { return kZigzag; }

void emit_vld_loop(AsmBuilder& b, u32 symbols, const char* label) {
  b.line("setlo g16, " + imm(symbols));
  b.label(label);
  // Window address: base + (P >> 5) * 4.
  b.packet({"nop", "srli g20, g10, 5", "andi g21, g10, 31"});
  b.packet({"nop", "slli g20, g20, 2", "add g21, g21, g17"});
  b.packet({"nop", "add g20, g11, g20"});
  b.line("ldwi g24, g20, 0");
  b.line("ldwi g25, g20, 4");
  // 32-bit window from the bit position, prefix via LZD.
  b.packet({"nop", "bext g26, g24, g21"});
  b.packet({"nop", "lzd g27, g26"});
  // run = (v >> (27 - n)) & 15; level = ((v >> (21 - n)) & 63) - 32.
  b.packet({"nop", "sub g28, g29, g27", "sub g30, g31, g27",
            "add g10, g10, g27"});
  b.packet({"addi g10, g10, 11", "srl g28, g26, g28", "srl g30, g26, g30"});
  b.packet({"addi g16, g16, -1", "andi g28, g28, 15", "andi g30, g30, 63"});
  b.packet({"nop", "add g15, g15, g28", "addi g30, g30, -32"});
  b.packet({"nop", "addi g15, g15, 1", "mul g33, g30, g14"});
  b.packet({"nop", "andi g15, g15, 63"});
  b.line("ldbu g32, g13, g15");
  b.packet({"nop", "slli g34, g32, 1"});
  b.line("sth g33, g12, g34");
  b.line(std::string("bnz g16, ") + label);
}

KernelSpec make_vld_spec(u64 seed) {
  const auto syms = make_vld_symbols(seed);
  const auto stream = encode_vld_stream(syms);

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("bits");
  b.line(word_data(stream));
  b.label("zig");
  b.line(byte_data(std::vector<u8>(kZigzag, kZigzag + 64)));
  b.line("  .align 8");
  b.label("blk");
  b.line("  .space 128");
  b.line(".code");
  // g10 = bit position, g11 = stream base, g12 = block base, g13 = zigzag
  // base, g14 = qscale, g15 = scan index, g16 = symbol counter,
  // g17 = 2048 (ctl length field for 32-bit BEXT), g29 = 27, g31 = 21.
  b.line(load_addr(11, "bits"));
  b.line(load_addr(12, "blk"));
  b.line(load_addr(13, "zig"));
  b.line("setlo g14, " + imm(kVldQscale));
  b.line("setlo g10, 0");
  b.line("setlo g15, 63");
  b.line("setlo g17, 2048");
  b.line("setlo g29, 27");
  b.line("setlo g31, 21");
  b.line(tick_start());
  emit_vld_loop(b, kVldSymbols, "sym");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "vld_izz_iq";
  spec.source = b.str();
  spec.validate = [stream](sim::MemoryBus& mem, const masm::Image& img,
                           std::string& msg) {
    i16 expect[64];
    vld_reference(stream, kVldSymbols, expect);
    const Addr ba = img.symbol("blk");
    for (u32 i = 0; i < 64; ++i) {
      const i16 got = static_cast<i16>(mem.read_u16(ba + 2 * i));
      if (got != expect[i]) {
        msg = "block[" + std::to_string(i) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
