#include "src/kernels/fft.h"

#include <cmath>
#include <cstring>
#include <numbers>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

std::vector<std::complex<float>> random_complex(u32 n, u64 seed) {
  std::vector<std::complex<float>> v(n);
  SplitMix64 rng(seed);
  for (auto& c : v) {
    c = {static_cast<float>(rng.next_double(-1.0, 1.0)),
         static_cast<float>(rng.next_double(-1.0, 1.0))};
  }
  return v;
}

std::vector<float> flatten(const std::vector<std::complex<float>>& v) {
  std::vector<float> f;
  f.reserve(v.size() * 2);
  for (const auto& c : v) {
    f.push_back(c.real());
    f.push_back(c.imag());
  }
  return f;
}

/// Forward twiddles W[k] = exp(-2*pi*i*k / N), k = 0 .. count-1.
std::vector<std::complex<float>> twiddles(u32 count) {
  std::vector<std::complex<float>> w(count);
  for (u32 k = 0; k < count; ++k) {
    const double a = -2.0 * std::numbers::pi * k / kFftN;
    w[k] = {static_cast<float>(std::cos(a)), static_cast<float>(std::sin(a))};
  }
  return w;
}

bool validate_fft(sim::MemoryBus& mem, const masm::Image& img,
                  const std::vector<std::complex<float>>& input,
                  std::string& msg) {
  const auto expect = reference_dft(input);
  double maxmag = 0.0;
  for (const auto& e : expect) maxmag = std::max(maxmag, std::abs(e));
  const double tol = 2e-4 * maxmag;  // FP32 accumulation over 10 stages

  const Addr xa = img.symbol("xarr");
  for (u32 k = 0; k < kFftN; ++k) {
    float re, im;
    u32 raw = mem.read_u32(xa + 8 * k);
    std::memcpy(&re, &raw, 4);
    raw = mem.read_u32(xa + 8 * k + 4);
    std::memcpy(&im, &raw, 4);
    if (std::abs(re - expect[k].real()) > tol ||
        std::abs(im - expect[k].imag()) > tol) {
      msg = "X[" + std::to_string(k) + "] = (" + std::to_string(re) + "," +
            std::to_string(im) + "), expected (" +
            std::to_string(expect[k].real()) + "," +
            std::to_string(expect[k].imag()) + "), tol " + std::to_string(tol);
      return false;
    }
  }
  return true;
}

// ---- radix-2 ----
//
// Register map: g4/g5 = a/b pointers (butterfly A), g6/g7 = (butterfly B),
// g8:g9 = twiddle (wi:wr), g12 = xbase, g13 = tw ptr, g14 = jB (byte offset
// of j within a group), g15 = group-pair counter, g16..g35 = data/results,
// g36:g37 = second twiddle (final stage), g42 = halfB, g49 = mB,
// g50 = 2*mB, g43 = tw byte step, g44 = stage counter, g48 = group pairs,
// g52 = j count, g53 = j loop counter.
//
// Data regs per butterfly: a = (ai, ar) even:odd, b = (bi, br);
// results a' = g22(ai'):g23(ar'), b' = g24:g25; B set offset +10.

void emit_r2_pair_body(AsmBuilder& b) {
  b.line("ldli g16, g4, 0");
  b.line("ldl g18, g5");
  b.line("ldli g26, g6, 0");
  b.packet({"ldl g28, g7", "fmul g20, g9, g19", "fmul g21, g9, g18"});
  b.packet({"addi g15, g15, -1", "nop", "nop", "fmul g30, g9, g29"});
  b.packet({"nop", "fmul g31, g9, g28"});
  b.packet({"nop", "fmsub g20, g8, g18", "fmadd g21, g8, g19"});
  b.packet({"nop", "nop", "nop", "fmsub g30, g8, g28"});
  b.packet({"nop", "fmadd g31, g8, g29"});
  b.packet({"nop", "fadd g23, g17, g20", "fadd g22, g16, g21"});
  b.packet({"nop", "fsub g25, g17, g20", "fsub g24, g16, g21",
            "fadd g33, g27, g30"});
  b.packet({"nop", "fadd g32, g26, g31", "nop", "fsub g35, g27, g30"});
  b.packet({"nop", "fsub g34, g26, g31"});
  b.line("stl g22, g4");
  b.line("stl g24, g5");
  b.line("stl g32, g6");
  b.packet({"stl g34, g7", "add g4, g4, g50", "add g5, g5, g50",
            "add g6, g6, g50"});
  b.line("add g7, g7, g50");
}

std::string generate_fft2_asm(const std::vector<float>& x_rev) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("xarr");
  b.line(float_data(x_rev));
  b.line("  .align 8");
  b.label("twarr");
  b.line(float_data(flatten(twiddles(kFftN / 2))));
  b.line(".code");
  b.line(load_addr(12, "xarr"));
  b.line(load_addr(40, "twarr"));
  b.line("setlo g42, 8");       // halfB
  b.line("setlo g49, 16");      // mB
  b.line("setlo g50, 32");      // 2*mB
  b.line("setlo g43, 4096");    // twiddle byte step
  b.line("setlo g44, 9");       // stages 0..8 (group pairs >= 1)
  b.line("setlo g48, 256");     // group pairs
  b.line("setlo g52, 1");       // j iterations
  b.line(tick_start());

  b.label("stage");
  b.line("setlo g14, 0");       // jB
  b.line("mov g13, g40");       // tw ptr
  b.line("mov g53, g52");       // j counter
  b.label("jloop");
  b.line("ldli g8, g13, 0");    // twiddle
  b.packet({"nop", "add g4, g12, g14", "nop", "nop"});
  b.packet({"nop", "add g5, g4, g42", "add g6, g4, g49"});
  b.packet({"mov g15, g48", "add g7, g6, g42"});
  b.label("gloop");
  emit_r2_pair_body(b);
  b.line("bnz g15, gloop");
  b.line("addi g14, g14, 8");
  b.line("add g13, g13, g43");
  b.line("addi g53, g53, -1");
  b.line("bnz g53, jloop");
  // Stage bookkeeping: halfB/mB/2mB double, tw step and group pairs halve,
  // j count doubles.
  b.packet({"addi g44, g44, -1", "slli g42, g42, 1", "slli g49, g49, 1",
            "slli g50, g50, 1"});
  b.packet({"nop", "srli g43, g43, 1", "srli g48, g48, 1",
            "slli g52, g52, 1"});
  b.line("bnz g44, stage");

  // Final stage (s = 9): one group, 512 butterflies, unrolled x2 over j.
  b.line("mov g4, g12");
  b.line("sethi g5, 0");
  b.line("orlo g5, 4096");
  b.line("add g5, g4, g5");     // b ptr = xbase + 4096
  b.line("mov g13, g40");
  b.line("setlo g15, 256");
  b.label("floop");
  b.line("ldli g8, g13, 0");    // twiddle A
  b.line("ldli g36, g13, 8");   // twiddle B
  b.line("ldli g16, g4, 0");
  b.line("ldl g18, g5");
  b.line("ldli g26, g4, 8");
  b.packet({"ldli g28, g5, 8", "fmul g20, g9, g19", "fmul g21, g9, g18"});
  b.packet({"addi g15, g15, -1", "nop", "nop", "fmul g30, g37, g29"});
  b.packet({"nop", "fmul g31, g37, g28"});
  b.packet({"nop", "fmsub g20, g8, g18", "fmadd g21, g8, g19"});
  b.packet({"nop", "nop", "nop", "fmsub g30, g36, g28"});
  b.packet({"nop", "fmadd g31, g36, g29"});
  b.packet({"nop", "fadd g23, g17, g20", "fadd g22, g16, g21"});
  b.packet({"nop", "fsub g25, g17, g20", "fsub g24, g16, g21",
            "fadd g33, g27, g30"});
  b.packet({"nop", "fadd g32, g26, g31", "nop", "fsub g35, g27, g30"});
  b.packet({"nop", "fsub g34, g26, g31"});
  b.line("stl g22, g4");
  b.line("stl g24, g5");
  b.line("stli g32, g4, 8");
  b.packet({"stli g34, g5, 8", "addi g4, g4, 16", "addi g5, g5, 16",
            "addi g13, g13, 16"});
  b.line("bnz g15, floop");
  b.line(tick_stop());
  b.line("halt");
  return b.str();
}

// ---- radix-4 ----
//
// Register map: g4..g7 = A/B/C/D pointers, g12 = xbase, g13 = tw base,
// g14 = jB, g15 = group counter, g16..g23 = loaded A..D pairs
// (A = g16(ai):g17(ar), B = g18:g19, C = g20:g21, D = g22:g23),
// g24..g29 = twiddles w1 (g24:g25 = i:r), w2 (g26:g27), w3 (g28:g29),
// g30..g35 = twiddled B,C,D (Br g30, Bi g31, Cr g32, Ci g33, Dr g34,
// Di g35), g54..g61 = t0..t3 (r/i), g62..g69 = results y0..y3 pairs
// (even = im), g42 = qB, g49 = 4qB (group stride), g43 = tw step bytes,
// g44 = stage counter, g48 = groups, g52 = j count, g53 = j counter,
// g46/g47 = tw ptrs for W^2j / W^3j.

void emit_r4_body(AsmBuilder& b) {
  // Loads: A..D and three twiddles (twiddles are hoisted by the caller).
  b.line("ldli g16, g4, 0");
  b.line("ldl g18, g5");
  b.line("ldl g20, g6");
  b.line("ldl g22, g7");
  // Twiddled inputs: B' = B*w1 (FU1 r / FU2 i), C' = C*w2 (FU3 r / FU1 i),
  // D' = D*w3 (FU2 r / FU3 i).
  b.packet({"addi g15, g15, -1", "fmul g30, g25, g19", "fmul g31, g25, g18",
            "nop"});
  b.packet({"nop", "fmul g33, g27, g20", "fmul g34, g29, g23",
            "fmul g32, g27, g21"});
  b.packet({"nop", "nop", "nop", "fmul g35, g29, g22"});
  b.packet({"nop", "fmsub g30, g24, g18", "fmadd g31, g24, g19"});
  b.packet({"nop", "fmadd g33, g26, g21", "fmsub g34, g28, g22",
            "fmsub g32, g26, g20"});
  b.packet({"nop", "nop", "nop", "fmadd g35, g28, g23"});
  // t0 = A + C', t1 = A - C', t2 = B' + D', t3 = B' - D'.
  b.packet({"nop", "fadd g54, g17, g32", "fadd g55, g16, g33"});
  b.packet({"nop", "fsub g56, g17, g32", "fsub g57, g16, g33",
            "fadd g58, g30, g34"});
  b.packet({"nop", "fadd g59, g31, g35", "fsub g60, g30, g34",
            "fsub g61, g31, g35"});
  // y0 = t0 + t2; y2 = t0 - t2; y1 = t1 - i*t3; y3 = t1 + i*t3.
  b.packet({"nop", "fadd g63, g54, g58", "fadd g62, g55, g59"});
  b.packet({"nop", "fsub g67, g54, g58", "fsub g66, g55, g59",
            "fadd g65, g56, g61"});
  b.packet({"nop", "fsub g64, g57, g60", "fsub g69, g56, g61",
            "fadd g68, g57, g60"});
  b.line("stl g62, g4");
  b.line("stl g64, g5");
  b.line("stl g66, g6");
  b.packet({"stl g68, g7", "add g4, g4, g49", "add g5, g5, g49",
            "add g6, g6, g49"});
  b.line("add g7, g7, g49");
}

std::string generate_fft4_asm(const std::vector<float>& x_rev) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("xarr");
  b.line(float_data(x_rev));
  b.line("  .align 8");
  b.label("twarr");
  b.line(float_data(flatten(twiddles(kFftN))));
  b.line(".code");
  b.line(load_addr(12, "xarr"));
  b.line(load_addr(40, "twarr"));
  b.line("setlo g42, 8");      // qB
  b.line("setlo g49, 32");     // 4qB
  b.line("sethi g43, 0");
  b.line("orlo g43, 2048");    // tw byte step for W^j: (N/4q)*8 = 2048 at q=1
  b.line("setlo g44, 5");      // stages
  b.line("setlo g48, 256");    // groups
  b.line("setlo g52, 1");      // j iterations
  b.line(tick_start());

  b.label("stage");
  b.line("setlo g14, 0");
  b.line("mov g13, g40");      // W^j ptr
  b.line("mov g46, g40");      // W^2j ptr
  b.line("mov g47, g40");      // W^3j ptr
  b.line("mov g53, g52");
  b.label("jloop");
  b.line("ldli g24, g13, 0");  // w1
  b.line("ldli g26, g46, 0");  // w2
  b.line("ldli g28, g47, 0");  // w3
  b.packet({"nop", "add g4, g12, g14"});
  b.packet({"nop", "add g5, g4, g42", "nop", "nop"});
  b.packet({"nop", "add g6, g5, g42", "nop", "nop"});
  b.packet({"mov g15, g48", "add g7, g6, g42"});
  b.label("gloop");
  emit_r4_body(b);
  b.line("bnz g15, gloop");
  b.packet({"addi g14, g14, 8", "add g13, g13, g43"});
  b.packet({"nop", "add g46, g46, g43", "add g47, g47, g43"});
  b.packet({"nop", "add g46, g46, g43", "add g47, g47, g43"});
  b.packet({"nop", "nop", "add g47, g47, g43"});
  b.line("addi g53, g53, -1");
  b.line("bnz g53, jloop");
  // Stage bookkeeping: qB *= 4, 4qB *= 4, tw step /= 4, groups /= 4,
  // j count *= 4.
  b.packet({"addi g44, g44, -1", "slli g42, g42, 2", "slli g49, g49, 2",
            "srli g43, g43, 2"});
  b.packet({"nop", "srli g48, g48, 2", "slli g52, g52, 2"});
  b.line("bnz g44, stage");
  b.line(tick_stop());
  b.line("halt");
  return b.str();
}

} // namespace

u32 bit_reverse10(u32 i) {
  u32 r = 0;
  for (u32 b = 0; b < 10; ++b) r |= ((i >> b) & 1u) << (9 - b);
  return r;
}

u32 digit4_reverse5(u32 i) {
  u32 r = 0;
  for (u32 d = 0; d < 5; ++d) r |= ((i >> (2 * d)) & 3u) << (2 * (4 - d));
  return r;
}

std::vector<std::complex<double>> reference_dft(
    const std::vector<std::complex<float>>& x) {
  const u32 n = static_cast<u32>(x.size());
  std::vector<std::complex<double>> out(n);
  for (u32 k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (u32 j = 0; j < n; ++j) {
      const double a = -2.0 * std::numbers::pi * static_cast<double>(k) * j / n;
      acc += std::complex<double>(x[j].real(), x[j].imag()) *
             std::complex<double>(std::cos(a), std::sin(a));
    }
    out[k] = acc;
  }
  return out;
}

KernelSpec make_fft_radix2_spec(u64 seed) {
  const auto x = random_complex(kFftN, seed ^ 0xFF7);
  std::vector<std::complex<float>> rev(kFftN);
  for (u32 i = 0; i < kFftN; ++i) rev[bit_reverse10(i)] = x[i];

  KernelSpec spec;
  spec.name = "fft1024_radix2";
  spec.source = generate_fft2_asm(flatten(rev));
  spec.validate = [x](sim::MemoryBus& mem, const masm::Image& img,
                      std::string& msg) {
    return validate_fft(mem, img, x, msg);
  };
  return spec;
}

KernelSpec make_fft_radix4_spec(u64 seed) {
  const auto x = random_complex(kFftN, seed ^ 0xFF7);  // same data as radix-2
  std::vector<std::complex<float>> rev(kFftN);
  for (u32 i = 0; i < kFftN; ++i) rev[digit4_reverse5(i)] = x[i];

  KernelSpec spec;
  spec.name = "fft1024_radix4";
  spec.source = generate_fft4_asm(flatten(rev));
  spec.validate = [x](sim::MemoryBus& mem, const masm::Image& img,
                      std::string& msg) {
    return validate_fft(mem, img, x, msg);
  };
  return spec;
}

} // namespace majc::kernels
