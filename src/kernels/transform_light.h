// Geometry transform + diffuse lighting (the CPU half of the paper's §5
// graphics pipeline: "the geometry transformation and lighting are then
// performed using the CPUs", 60-90 Mtriangles/s with the GPP feeding both).
//
// Per vertex: position through a 4x4 matrix (12 FMA in four per-row chains),
// diffuse = max(0, n.L), color scaled by ambient + diffuse*intensity.
// Two vertices are processed per loop body so the FP chains of one hide the
// latency of the other; FU0 streams 5 pair loads + 4 pair stores per vertex.
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

/// Input layout: 10 floats per vertex (x,y,z, nx,ny,nz, r,g,b, pad).
inline constexpr u32 kTlInFloats = 10;
/// Output layout: 8 floats (X,Y,Z,W, r,g,b, pad).
inline constexpr u32 kTlOutFloats = 8;

struct TlUniforms {
  float m[4][4];     // row-major transform
  float light[3];    // unit light direction
  float ambient;
  float intensity;
};

TlUniforms make_tl_uniforms(u64 seed);

/// Golden model mirroring the kernel's fmaf structure exactly.
void transform_light_reference(const TlUniforms& u, const float* in,
                               float* out, u32 vertices);

/// Kernel over `vertices` vertices (must be even).
KernelSpec make_transform_light_spec(u32 vertices, u64 seed = 1);

/// Transform-only variant (4-float vertices, no lighting): the lean
/// geometry path that bounds the pipeline's upper triangle rate.
KernelSpec make_transform_only_spec(u32 vertices, u64 seed = 1);

/// Measured steady-state cycles per vertex (used by the GPP pipeline
/// benchmark); runs the kernel on the cycle simulator. Vertices stream
/// through on-chip buffers in the real pipeline, so the default config
/// for this measurement uses the perfect-D$ delivery mode.
double measure_tl_cycles_per_vertex(bool lit = true);

} // namespace majc::kernels
