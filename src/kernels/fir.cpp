#include "src/kernels/fir.h"

#include <cmath>
#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

constexpr u32 kTapsPadded = 66;   // multiple of 3 for the FU rotation
constexpr u32 kBlockOutputs = 4;  // outputs computed concurrently
constexpr u32 kXLen = kFirOutputs + kTapsPadded + 14;  // + lookahead padding

// Register map (globals):
//   g3 = &h, g4 = xptr (block base), g5 = xptr + 248 (far-offset base),
//   g6 = yptr, g7 = block counter, g86 = preload scratch,
//   g8..g73   h[0..65] resident coefficients,
//   g74..g85  x rolling buffer (index mod 12) / reduction partials,
//   g90/g91   tick scratch.
// Locals (each of FU1..FU3): l0..l3 = accumulators for outputs 0..3.

// LDL places the higher-addressed word in the odd register (the pair's even
// register holds the 64-bit value's most significant word and memory is
// little-endian), so element i of the float array lands in buffer slot
// (i mod 12) ^ 1.
std::string x_reg(u32 rel) { return g(74 + ((rel % 12) ^ 1)); }
std::string x_pair_base(u32 rel) { return g(74 + rel % 12); }

/// FU0 slot schedule inside one 8-packet mega-block: pair loads for
/// x[kk+12+m], (m, m+1) issued at packets 1, 4 and 6.
std::string mega_block_fu0(u32 pkt, u32 kk) {
  if (pkt != 1 && pkt != 4 && pkt != 6) return "nop";
  const u32 m = pkt == 1 ? 0 : pkt == 4 ? 2 : 4;
  const u32 idx = kk + 12 + m;
  const u32 off = 4 * idx;
  // imm9 caps at 255; far offsets go through g5 = xptr + 248.
  if (off <= 248) {
    return "ldli " + x_pair_base(idx) + ", g4, " + imm(off);
  }
  return "ldli " + x_pair_base(idx) + ", g5, " + imm(off - 248);
}

std::string generate_fir_asm(const std::vector<float>& h,
                             const std::vector<float>& x) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("harr");
  std::vector<float> hp = h;
  hp.resize(72, 0.0f);  // pad to 9 group loads
  b.line(float_data(hp));
  b.line("  .align 8");
  b.label("xarr");
  b.line(float_data(x));
  b.line("  .align 8");
  b.label("yarr");
  b.line("  .space " + imm(kFirOutputs * 4));
  b.line(".code");

  // Address setup.
  b.line(load_addr(3, "harr"));
  b.line(load_addr(4, "xarr"));
  b.line(load_addr(6, "yarr"));

  // Preload the 66 coefficients (+ padding) into g8..g79 with group loads.
  for (u32 grp = 0; grp < 9; ++grp) {
    const u32 off = grp * 32;
    if (off <= 255) {
      b.line("ldgi g" + std::to_string(8 + grp * 8) + ", g3, " + imm(off));
    } else {
      b.line("setlo g86, " + imm(off));
      b.line("ldg g" + std::to_string(8 + grp * 8) + ", g3, g86");
    }
  }

  // Clear the 12 accumulators.
  for (u32 j = 0; j < kBlockOutputs; ++j) {
    b.packet({"nop", "mov " + l(j) + ", g0", "mov " + l(j) + ", g0",
              "mov " + l(j) + ", g0"});
  }
  b.line(load_addr(90, "ticks"));
  // Two passes: the first warms the I$ (the unrolled block loop is ~1.8 KB
  // of code); the loop-top stamp makes ticks measure the steady-state pass.
  b.line("setlo g87, 2");
  b.label("pass");
  b.line(load_addr(4, "xarr"));
  b.line(load_addr(6, "yarr"));
  b.line("setlo g7, " + imm(kFirOutputs / kBlockOutputs));
  b.line("gettick g91");
  b.packet({"stwi g91, g90, 0", "addi g87, g87, -1"});
  b.label("blk");
  b.line("addi g5, g4, 248");

  // Block prologue: fill the rolling buffer with x[n .. n+11].
  for (u32 i = 0; i < 12; i += 2) {
    b.line("ldli " + x_pair_base(i) + ", g4, " + imm(4 * i));
  }

  // 11 mega-blocks: kk = 0, 6, ..., 60 (two tap-triples each).
  for (u32 kk = 0; kk < kTapsPadded; kk += 6) {
    for (u32 t = 0; t < 2; ++t) {
      const u32 kt = kk + 3 * t;
      for (u32 j = 0; j < kBlockOutputs; ++j) {
        const u32 pkt = 4 * t + j;
        std::string slots[4];
        slots[0] = mega_block_fu0(pkt, kk);
        for (u32 f = 1; f <= 3; ++f) {
          const u32 k = kt + f - 1;
          slots[f] = "fmadd " + l(j) + ", g" + std::to_string(8 + k) + ", " +
                     x_reg(k + j);
        }
        b.packet({slots[0], slots[1], slots[2], slots[3]});
      }
    }
  }

  // Reduction: move the 12 partials to globals (x buffer regs are dead).
  // G(f, j) = g(74 + 3j + f - 1).
  for (u32 j = 0; j < kBlockOutputs; ++j) {
    const u32 base = 74 + 3 * j;
    std::string fu0 = "nop";
    if (j == 0) fu0 = "addi g4, g4, 16";  // advance x base (4 samples)
    if (j == 1) fu0 = "addi g7, g7, -1";  // block counter
    b.packet({fu0, "mov " + g(base) + ", " + l(j),
              "mov " + g(base + 1) + ", " + l(j),
              "mov " + g(base + 2) + ", " + l(j)});
  }
  // Clear accumulators for the next block while the moves retire.
  for (u32 j = 0; j < kBlockOutputs; ++j) {
    b.packet({"nop", "mov " + l(j) + ", g0", "mov " + l(j) + ", g0",
              "mov " + l(j) + ", g0"});
  }
  // y_j = (G1 + G2) + G3, interleaved across FUs to hide FP latency.
  b.packet({"nop", "fadd g74, g74, g75", "fadd g77, g77, g78",
            "fadd g80, g80, g81"});
  b.packet({"nop", "fadd g83, g83, g84"});
  b.packet({"nop", "fadd g74, g74, g76", "fadd g77, g77, g79",
            "fadd g80, g80, g82"});
  b.packet({"nop", "fadd g83, g83, g85"});
  for (u32 j = 0; j < kBlockOutputs; ++j) {
    b.line("stwi " + g(74 + 3 * j) + ", g6, " + imm(4 * j));
  }
  b.line("addi g6, g6, 16");
  b.line("bnz g7, blk");
  b.line("bnz g87, pass");
  b.line(tick_stop());
  b.line("halt");
  return b.str();
}

} // namespace

void fir_reference(const float* h, const float* x, float* y) {
  for (u32 n = 0; n < kFirOutputs; ++n) {
    float acc[3] = {0.0f, 0.0f, 0.0f};
    for (u32 k = 0; k < kTapsPadded; ++k) {
      const float hk = k < kFirTaps ? h[k] : 0.0f;
      acc[k % 3] = std::fmaf(hk, x[n + k], acc[k % 3]);
    }
    y[n] = (acc[0] + acc[1]) + acc[2];
  }
}

KernelSpec make_fir_spec(u64 seed) {
  const std::vector<float> h = random_floats(kFirTaps, seed, -1.0, 1.0);
  const std::vector<float> x = random_floats(kXLen, seed ^ 0xF1F2, -2.0, 2.0);

  KernelSpec spec;
  spec.name = "fir64x64";
  spec.source = generate_fir_asm(h, x);
  spec.validate = [h, x](sim::MemoryBus& mem, const masm::Image& img,
                         std::string& msg) {
    std::vector<float> expect(kFirOutputs);
    fir_reference(h.data(), x.data(), expect.data());
    const Addr y = img.symbol("yarr");
    for (u32 n = 0; n < kFirOutputs; ++n) {
      float got;
      const u32 raw = mem.read_u32(y + 4 * n);
      std::memcpy(&got, &raw, 4);
      if (got != expect[n]) {
        msg = "y[" + std::to_string(n) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[n]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
