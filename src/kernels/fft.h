// 1024-point complex single-precision FFTs (Table 2, rows 7-8).
//
// Radix-2: 10 stages x 512 butterflies, decimation-in-time, input in
// bit-reversed order, twiddles hoisted per (stage, j) and the group loop
// unrolled by two so two butterflies' FP chains interleave across FU1-3
// while FU0 streams pair loads/stores.
//
// Radix-4: 5 stages x 256 dragonflies, input in digit-4-reversed order.
// Each dragonfly needs ~26 registers of live complex state — the kernel the
// paper cites as enabled by MAJC's large register file ("unlike traditional
// DSPs that have smaller register files, MAJC-5200 is capable of using the
// compute efficient Radix-4 FFT algorithms").
//
// Validation compares against a double-precision reference DFT with a
// tolerance scaled to FP32 accumulation error.
#pragma once

#include <complex>
#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kFftN = 1024;

KernelSpec make_fft_radix2_spec(u64 seed = 1);
KernelSpec make_fft_radix4_spec(u64 seed = 1);

/// Reference DFT (O(N^2), double precision) of `x`.
std::vector<std::complex<double>> reference_dft(
    const std::vector<std::complex<float>>& x);

/// Bit-reversal (radix-2) and digit-4-reversal permutation indices.
u32 bit_reverse10(u32 i);
u32 digit4_reverse5(u32 i);

} // namespace majc::kernels
