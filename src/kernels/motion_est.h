// Full-pel motion estimation with a logarithmic search, +/-16 range
// (Table 1, row 4; paper: ~3000 cycles per motion vector).
//
// A 16x16 current block is held entirely in FU-local registers (64 words
// spread over FU1..FU3); each candidate SAD streams the reference window
// with word loads, aligns unaligned rows with funnel shifts (SLL/SRL/OR),
// and reduces with the PDIST packed-byte L1-distance instruction — the
// "byte permutation and pixel distance operations" the paper credits for
// motion estimation speed. The search refines in four rounds of eight
// neighbors at steps 8, 4, 2, 1 (33 SAD evaluations).
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kMeBlock = 16;     // block edge in pixels
inline constexpr u32 kMeStride = 64;    // reference frame stride (bytes)
inline constexpr u32 kMeFrame = 64;     // reference frame edge
inline constexpr u32 kMeCenter = 24;    // block origin inside the frame

struct MeResult {
  i32 mx = 0;
  i32 my = 0;
  u32 sad = 0;
};

/// Golden log search matching the kernel's candidate order and tie-breaks.
MeResult motion_search_reference(const std::vector<u8>& ref,
                                 const std::vector<u8>& cur);

/// Deterministic frame pair: `cur` is a shifted, noise-perturbed crop of
/// `ref` so the search has a meaningful optimum.
void make_me_frames(u64 seed, std::vector<u8>& ref, std::vector<u8>& cur);

KernelSpec make_motion_est_spec(u64 seed = 1);

} // namespace majc::kernels
