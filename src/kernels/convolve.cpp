#include "src/kernels/convolve.h"

#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Register map:
//  g8..g12  coefficient broadcast pairs (c<<16 | c)
//  g20 = column-load base (points at &img[y][xc] for the next column pair)
//  g25..g28 = row-stride offsets (1024, 2048, 3072, 4096)
//  g29 = out ptr, g31 = row counter, g32 = row base, g33 = column counter
//  g34/g35/g36 = rolling column-sum pairs A/B/C, g47 = next pair
//  g37/g38 = funnel pairs m1/m2, g39/g40 = funnel temps
//  g41..g45 = the five row words for the column pass
//  g46 = row-pass accumulator
constexpr u32 kRowBytes = kConvW * 2;

/// Column-sum chain producing `dst` from the five loaded row words.
void emit_colsum(AsmBuilder& b, const std::string& dst, u32 fu) {
  std::array<std::string, 4> s;
  auto one = [&](const std::string& op) {
    s = {"nop", "nop", "nop", "nop"};
    s[fu] = op;
    b.packet({s[0], s[1], s[2], s[3]});
  };
  one("pmulh " + dst + ", g41, g8");
  one("pmaddh " + dst + ", g42, g9");
  one("pmaddh " + dst + ", g43, g10");
  one("pmaddh " + dst + ", g44, g11");
  one("pmaddh " + dst + ", g45, g12");
}

void emit_col_loads(AsmBuilder& b) {
  b.line("ldwi g41, g20, 0");
  b.line("ldw g42, g20, g25");
  b.line("ldw g43, g20, g26");
  b.line("ldw g44, g20, g27");
  b.packet({"ldw g45, g20, g28", "nop", "nop", "nop"});
  b.line("addi g20, g20, 4");
}

} // namespace

void convolve5x5_reference(const std::vector<i16>& img,
                           std::vector<i16>& out) {
  out.assign(kConvOutW * kConvOutH, 0);
  std::vector<i32> col(kConvW);
  for (u32 y = 0; y < kConvOutH; ++y) {
    for (u32 x = 0; x < kConvW; ++x) {
      i32 v = 0;
      for (u32 r = 0; r < 5; ++r) {
        v += kConvCoef[r] * img[(y + r) * kConvW + x];
      }
      col[x] = v;
    }
    for (u32 x = 0; x < kConvOutW; ++x) {
      i32 v = 0;
      for (u32 k = 0; k < 5; ++k) v += kConvCoef[k] * col[x + k];
      out[y * kConvOutW + x] = static_cast<i16>(v);
    }
  }
}

KernelSpec make_convolve_spec(u64 seed) {
  std::vector<i16> img(kConvW * kConvH);
  SplitMix64 rng(seed ^ 0xC0);
  for (auto& p : img) p = static_cast<i16>(rng.next_below(256));

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 32");
  b.label("img");
  // +64 bytes: the last iteration's look-ahead column sums read a few
  // halfwords past the final row (their results are discarded).
  b.line("  .space " + imm(kConvW * kConvH * 2 + 64));
  b.line("  .align 32");
  b.label("outp");
  b.line("  .space " + imm(kConvOutW * kConvOutH * 2));
  b.line(".code");
  // Coefficient broadcast pairs.
  for (u32 k = 0; k < 5; ++k) {
    const u32 c = static_cast<u16>(kConvCoef[k]);
    b.line("sethi " + g(8 + k) + ", " + imm(c));
    b.line("orlo " + g(8 + k) + ", " + imm(c));
  }
  b.line("setlo g25, 1024");
  b.line("setlo g26, 2048");
  b.line("setlo g27, 3072");
  b.line("setlo g28, 4096");
  b.line(load_addr(32, "img"));
  b.line(load_addr(29, "outp"));
  b.line("setlo g31, " + imm(kConvOutH));
  b.line(tick_start());

  b.label("row");
  b.line("mov g20, g32");
  // Row prologue: column-sum pairs for x = 0..7 into P0..P3 (g34..g37).
  for (u32 p = 0; p < 4; ++p) {
    emit_col_loads(b);
    emit_colsum(b, g(34 + p), 3);
  }
  b.line("addi g21, g20, 4");
  b.line("setlo g33, " + imm(kConvOutW / 4));

  // Four output pixels per iteration: two row chains (FU1/FU2) consume the
  // P0..P3 window plus three funnel pairs while FU3 runs the two next
  // column-sum chains interleaved (so no chain ever waits on its own
  // 2-cycle multiplier latency) and FU0 streams the ten row words.
  b.label("inner");
  {
    PacketScheduler sched;
    // Loads for the two next column pairs (bases g20/g21, stride offsets).
    const char* off[5] = {"0", "g25", "g26", "g27", "g28"};
    u32 l1[5], l2[5];
    for (u32 r = 0; r < 5; ++r) {
      l1[r] = sched.place(r == 0 ? std::string("ldwi g41, g20, 0")
                                 : std::string("ldw g4") + std::to_string(1 + r) +
                                       ", g20, " + off[r],
                          0, 2 * r);
    }
    for (u32 r = 0; r < 5; ++r) {
      l2[r] = sched.place(r == 0 ? std::string("ldwi g50, g21, 0")
                                 : std::string("ldw g5") + std::to_string(r) +
                                       ", g21, " + off[r],
                          0, 2 * r + 1);
    }
    // Funnels f01/f12/f23 (operands are last iteration's P regs: ready).
    sched.place("srli g38, g34, 16", 1, 0);
    sched.place("slli g22, g35, 16", 2, 0);
    sched.place("srli g39, g35, 16", 1, 1);
    sched.place("slli g23, g36, 16", 2, 1);
    sched.place("srli g40, g36, 16", 1, 2);
    sched.place("slli g24, g37, 16", 2, 2);
    u32 f01 = sched.place("or g38, g38, g22", 1, 3);
    u32 f12 = sched.place("or g39, g39, g23", 2, 3);
    u32 f23 = sched.place("or g40, g40, g24", 1, 4);
    // Row chain 1 (FU1): out(x, x+1) over P0 f01 P1 f12 P2.
    u32 p1 = sched.place("pmulh g46, g34, g8", 1, 0);
    p1 = sched.place("pmaddh g46, g38, g9", 1, std::max(p1 + 2, f01 + 2));
    p1 = sched.place("pmaddh g46, g35, g10", 1, p1 + 2);
    p1 = sched.place("pmaddh g46, g39, g11", 1, std::max(p1 + 2, f12 + 4));
    p1 = sched.place("pmaddh g46, g36, g12", 1, p1 + 2);
    // Row chain 2 (FU2): out(x+2, x+3) over P1 f12 P2 f23 P3.
    u32 p2 = sched.place("pmulh g47, g35, g8", 2, 0);
    p2 = sched.place("pmaddh g47, g39, g9", 2, std::max(p2 + 2, f12 + 2));
    p2 = sched.place("pmaddh g47, g36, g10", 2, p2 + 2);
    p2 = sched.place("pmaddh g47, g40, g11", 2, std::max(p2 + 2, f23 + 4));
    p2 = sched.place("pmaddh g47, g37, g12", 2, p2 + 2);
    // Two interleaved column-sum chains on FU3.
    u32 c1 = sched.place("pmulh g48, g41, g8", 3, l1[0] + 2);
    u32 c2 = sched.place("pmulh g49, g50, g8", 3, l2[0] + 2);
    for (u32 r = 1; r < 5; ++r) {
      c1 = sched.place("pmaddh g48, g4" + std::to_string(1 + r) + ", " +
                           g(8 + r),
                       3, std::max(c1 + 2, l1[r] + 2));
      c2 = sched.place("pmaddh g49, g5" + std::to_string(r) + ", " + g(8 + r),
                       3, std::max(c2 + 2, l2[r] + 2));
    }
    // Stores and the window rotation (parallel-read packet).
    const u32 s1p = sched.place("stwi g46, g29, 0", 0, p1 + 4);
    const u32 s2p = sched.place("stwi g47, g29, 4", 0, p2 + 4);
    const u32 rot = std::max({s1p, s2p, c1 + 2, c2 + 2});
    sched.place("mov g34, g36", 1, rot);
    sched.place("mov g35, g37", 2, rot);
    sched.place("mov g36, g48", 3, rot);
    sched.place("mov g37, g49", 1, rot + 1);
    sched.place("addi g20, g20, 8", 0, std::max(l1[4], l2[4]) + 1);
    sched.place("addi g21, g21, 8", 0, std::max(l1[4], l2[4]) + 2);
    sched.place("addi g29, g29, 8", 0, std::max(s1p, s2p) + 1);
    sched.place("addi g33, g33, -1", 2, rot + 1);
    sched.emit(b);
  }
  b.line("bnz g33, inner");
  // Next row.
  b.packet({"addi g31, g31, -1", "add g32, g32, g25"});
  b.line("bnz g31, row");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "convolve5x5";
  spec.source = b.str();
  spec.max_packets = 400'000'000;
  spec.setup = [img](sim::MemoryBus& mem, const masm::Image& imgf) {
    mem.write(imgf.symbol("img"),
              {reinterpret_cast<const u8*>(img.data()), img.size() * 2});
  };
  spec.validate = [img](sim::MemoryBus& mem, const masm::Image& imgf,
                        std::string& msg) {
    std::vector<i16> expect;
    convolve5x5_reference(img, expect);
    const Addr oa = imgf.symbol("outp");
    // Spot-check a deterministic sample plus full first/last rows (a full
    // 258k-element readback is wasteful; rows + strided samples cover
    // every code path: boundaries, funnel phases, rotation).
    auto check = [&](u32 idx) {
      const i16 got = static_cast<i16>(mem.read_u16(oa + 2 * idx));
      if (got != expect[idx]) {
        msg = "out[" + std::to_string(idx) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[idx]);
        return false;
      }
      return true;
    };
    for (u32 x = 0; x < kConvOutW; ++x) {
      if (!check(x)) return false;
      if (!check((kConvOutH - 1) * kConvOutW + x)) return false;
    }
    for (u32 idx = 0; idx < kConvOutW * kConvOutH; idx += 97) {
      if (!check(idx)) return false;
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
