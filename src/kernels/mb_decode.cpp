#include "src/kernels/mb_decode.h"

#include <array>

#include "src/kernels/codegen.h"
#include "src/kernels/dct_common.h"
#include "src/kernels/dsp_data.h"
#include "src/kernels/idct.h"
#include "src/kernels/vld.h"
#include "src/support/bits.h"

namespace majc::kernels {
namespace {

// Register contract: the VLD phase uses its documented g10..g34 set; the
// IDCT passes clobber g4..g31 data buffers, so the live VLD state (the bit
// position) is spilled to `saved` across each block's transform and the
// VLD constants are re-materialized. g64..g71 stay zero for fast block
// clearing with group stores.

void emit_vld_constants(AsmBuilder& b) {
  b.line(load_addr(11, "bits"));
  b.line(load_addr(13, "zig"));
  b.line("setlo g14, " + imm(kVldQscale));
  b.line("setlo g17, 2048");
  b.line("setlo g29, 27");
  b.line("setlo g31, 21");
}

} // namespace

KernelSpec make_mb_decode_spec(u64 seed) {
  // One stream carrying all six blocks' symbols back to back.
  std::vector<VldSymbol> syms;
  for (u32 blk = 0; blk < kMbBlocks; ++blk) {
    const auto s = make_vld_symbols(seed ^ (0x60D + blk));
    syms.insert(syms.end(), s.begin(), s.begin() + kMbSymbolsPerBlock);
  }
  const auto stream = encode_vld_stream(syms);
  const auto m = idct_matrix();

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("saved: .space 4");
  b.line("  .align 8");
  b.label("marr");
  b.line(half_data({m.begin(), m.end()}));
  b.line("  .align 8");
  b.label("bits");
  b.line(word_data(stream));
  b.label("zig");
  b.line(byte_data(std::vector<u8>(vld_zigzag_table(),
                                   vld_zigzag_table() + 64)));
  b.line("  .align 8");
  b.label("blk");
  b.line("  .space " + imm(128 * kMbBlocks));
  b.line("  .align 8");
  b.label("tmp");
  b.line("  .space 128");
  b.line("  .align 8");
  b.label("outp");
  b.line("  .space " + imm(128 * kMbBlocks));
  b.line(".code");

  emit_matrix_preload(b, "marr");
  b.line("setlo g49, " + imm(1 << (kDctShift - 1)));
  // Zero constants for block clearing.
  for (u32 r = 64; r < 72; ++r) b.line("mov " + g(r) + ", g0");
  b.line(load_addr(35, "saved"));
  b.line("setlo g10, 0");  // bit position
  b.line(load_addr(90, "ticks"));
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");

  // A real block loop (one copy of the decode+transform code, so the
  // macroblock fits the I$ the way a production decoder would lay it out):
  // g37/g38 walk the coefficient/output blocks, g39 counts blocks — all
  // outside the registers the VLD and IDCT phases clobber.
  b.line(load_addr(37, "blk"));
  b.line(load_addr(38, "outp"));
  b.line("setlo g39, " + imm(kMbBlocks));
  b.label("mbloop");
  // --- VLD phase for this block ---
  emit_vld_constants(b);
  b.line("mov g12, g37");
  // Clear the coefficient block (32 halfwords x 4 group stores).
  for (u32 gstore = 0; gstore < 4; ++gstore) {
    b.line("stgi g64, g12, " + imm(32 * gstore));
  }
  b.line("setlo g15, 63");
  emit_vld_loop(b, kMbSymbolsPerBlock, "vld");
  b.line("stwi g10, g35, 0");  // spill the bit position

  // --- IDCT phase: blk_i -> outp_i via tmp ---
  b.line("mov g4, g12");
  b.line(load_addr(5, "tmp"));
  emit_dct_pass(b, /*quantize=*/false);
  b.line(load_addr(4, "tmp"));
  b.line("mov g5, g38");
  emit_dct_pass(b, /*quantize=*/false);

  // --- restore the decoder's live state and advance ---
  b.line(load_addr(35, "saved"));
  b.line("ldwi g10, g35, 0");
  b.line("addi g37, g37, 128");
  b.line("addi g38, g38, 128");
  b.line("addi g39, g39, -1");
  b.line("bnz g39, mbloop");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "mb_decode";
  spec.source = b.str();
  spec.validate = [stream](sim::MemoryBus& mem, const masm::Image& img,
                           std::string& msg) {
    // Golden: sequential decode of the shared stream, one block at a time,
    // then the fixed-point IDCT of each block.
    u32 pos = 0;
    for (u32 blk = 0; blk < kMbBlocks; ++blk) {
      // vld_reference decodes from bit 0; re-derive by decoding blk+1
      // blocks' worth and keeping the tail block. Simpler: decode manually.
      i16 coeffs[64] = {};
      u32 idx = 63;
      for (u32 s = 0; s < kMbSymbolsPerBlock; ++s) {
        const u32 word = pos >> 5;
        const u64 window = (u64{stream[word]} << 32) | stream[word + 1];
        const u32 v = bitfield_extract(static_cast<u32>(window >> 32),
                                       static_cast<u32>(window), pos & 31, 32);
        const u32 n = leading_zeros(v);
        const u32 run = (v >> (27 - n)) & 15u;
        const i32 level = static_cast<i32>((v >> (21 - n)) & 63u) - 32;
        pos += n + 11;
        idx = (idx + run + 1) & 63u;
        coeffs[vld_zigzag_table()[idx]] = static_cast<i16>(level * kVldQscale);
      }
      i16 expect[64];
      idct8x8_reference(coeffs, expect);
      const Addr oa = img.symbol("outp") + 128 * blk;
      for (u32 i = 0; i < 64; ++i) {
        const i16 got = static_cast<i16>(mem.read_u16(oa + 2 * i));
        if (got != expect[i]) {
          msg = "block " + std::to_string(blk) + " out[" + std::to_string(i) +
                "] = " + std::to_string(got) + ", expected " +
                std::to_string(expect[i]);
          return false;
        }
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
