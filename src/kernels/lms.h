// Single-sample, 16th-order LMS adaptive filter (Table 2, row 5).
//
// One adaptation step: slide the sample window, form y = w . x, the scaled
// error e = mu * (d - y), then update all 16 weights w_k += e * x_k. The
// window and weights live entirely in global registers; the measured pass
// is the third loop iteration (caches warm), matching the paper's
// steady-state 64-cycle figure.
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kLmsTaps = 16;

KernelSpec make_lms_spec(u64 seed = 1);

struct LmsState {
  float w[kLmsTaps];
  float window[kLmsTaps];  // window[k] = x[n-k]
  float y;
  float e;
};

/// Golden model for `n` adaptation steps, mirroring the kernel exactly.
void lms_reference(LmsState& st, const float* x, const float* d, float mu,
                   u32 n);

} // namespace majc::kernels
