#include "src/kernels/table12.h"

#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"

namespace majc::kernels {
namespace {

// Eager const init during (single-threaded) static initialization: like the
// opcode name map, this keeps the lazy-magic-static pattern out of the
// farm's thread-safety audit surface — workers and the serving daemon read
// the registry concurrently.
const std::vector<NamedKernel> kTable = {
      {"biquad", [] { return make_biquad_spec(); }},
      {"fir", [] { return make_fir_spec(); }},
      {"iir", [] { return make_iir_spec(); }},
      {"cfir", [] { return make_cfir_spec(); }},
      {"lms", [] { return make_lms_spec(); }},
      {"max_search", [] { return make_max_search_spec(); }},
      {"bitrev", [] { return make_bitrev_spec(); }},
      {"fft_radix2", [] { return make_fft_radix2_spec(); }},
      {"fft_radix4", [] { return make_fft_radix4_spec(); }},
      {"idct", [] { return make_idct_spec(); }},
      {"dct_quant", [] { return make_dct_quant_spec(); }},
      {"vld", [] { return make_vld_spec(); }},
      {"motion_est", [] { return make_motion_est_spec(); }},
      {"mb_decode", [] { return make_mb_decode_spec(); }},
      {"convolve", [] { return make_convolve_spec(); }},
      {"color_convert", [] { return make_color_convert_spec(); }},
};

} // namespace

const std::vector<NamedKernel>& table12_kernels() { return kTable; }

KernelSpec table12_spec(const NamedKernel& nk) {
  KernelSpec spec = nk.make();
  spec.name = nk.name;
  return spec;
}

const NamedKernel* find_table12_kernel(std::string_view name) {
  for (const NamedKernel& nk : table12_kernels()) {
    if (name == nk.name) return &nk;
  }
  return nullptr;
}

} // namespace majc::kernels
