#include "src/kernels/biquad.h"

#include <cmath>
#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Register map (globals):
//   g4 = x ptr, g6 = y ptr, g7 = sample counter, g86 = preload scratch,
//   g8..g47   coefficients: section k at g(8+5k) = {b0,b1,b2,a1,a2}
//   g48..g55  s1 states, g56..g63 s2 states,
//   g64..g72  y chain: g64 = section input sample, g(65+k) = section k output
//   g90/g91   ticks.
constexpr u32 kCoefBase = 8;
constexpr u32 kS1Base = 48;
constexpr u32 kS2Base = 56;
constexpr u32 kYBase = 64;

std::string coef(u32 section, u32 which) {
  return g(kCoefBase + 5 * section + which);
}
std::string s1(u32 k) { return g(kS1Base + k); }
std::string s2(u32 k) { return g(kS2Base + k); }
std::string y(u32 k) { return g(kYBase + k); }  // y(0) = input sample

/// Per-sample bookkeeping the software-pipelined IIR needs: where each
/// section's final s1/s2 updates landed, so the next sample's reads are
/// placed after them in packet order.
struct CascadeTail {
  std::array<u32, kBiquadSections> s1_done{};  // packet of the last s1 write
  std::array<u32, kBiquadSections> s2_done{};
  // Packet of the last read of each y-chain register (for safe reuse of a
  // y block by a later in-flight sample).
  std::array<u32, kBiquadSections + 1> y_last{};
  u32 y_out_pkt = 0;  // packet of the final section's output fmadd
};

/// Schedule one sample through the 8-section cascade into `sched` starting
/// no earlier than `base`. `ybase` selects the y-chain register block (so
/// two in-flight samples use disjoint registers); `prev` (when non-null)
/// carries the previous sample's update placements, which this sample's
/// state reads must follow in packet order (cross-sample RAW). Returns the
/// placements of this sample's own updates.
///
/// Shape: section k's critical fmadd sits at a 4-packet cadence on FU1 with
/// a just-in-time y(k+1) = s1_k copy two packets earlier; the four state
/// updates retire on FU2/FU3 in bypass-legal slots.
CascadeTail schedule_cascade(PacketScheduler& sched, u32 base, u32 ybase,
                             const CascadeTail* prev,
                             const CascadeTail* block_prev = nullptr) {
  auto yr = [&](u32 k) { return g(ybase + k); };
  CascadeTail tail;
  u32 chain = base + 2;  // packet of section k's critical fmadd
  for (u32 k = 0; k < kBiquadSections; ++k) {
    // y(k+1) = s1_k, after the previous sample's final s1_k write (+2 for
    // its cross-FU retirement, +4 for the fmadd's latency on FU2). When a
    // y block is being reused, the write must also follow the block's
    // previous occupant's last read of yr(k+1) (same packet is legal:
    // parallel read semantics).
    u32 copy_earliest = chain >= 2 ? chain - 2 : 0;
    if (prev != nullptr) {
      copy_earliest = std::max(copy_earliest, prev->s1_done[k] + 6);
    }
    if (block_prev != nullptr) {
      copy_earliest = std::max(copy_earliest, block_prev->y_last[k + 1]);
    }
    const u32 cp = sched.place("mov " + yr(k + 1) + ", " + s1(k), 1,
                               copy_earliest);
    const u32 p = sched.place(
        "fmadd " + yr(k + 1) + ", " + coef(k, 0) + ", " + yr(k), 1,
        std::max(cp + 1, chain));
    // Updates: y(k+1) (FU1, 4-cycle) is bypass-ready on FU2/FU3 at p+6.
    u32 s2_read_earliest = p + 6;
    if (prev != nullptr) {
      s2_read_earliest = std::max(s2_read_earliest, prev->s2_done[k] + 6);
    }
    const u32 u1a = sched.place("mov " + s1(k) + ", " + s2(k), 2,
                                s2_read_earliest);
    const u32 u1b = sched.place(
        "fmul " + s2(k) + ", " + coef(k, 4) + ", " + yr(k + 1), 3,
        std::max(p + 6, u1a));  // reads s2's old value? no: writes s2; must
                                // follow the mov that reads it
    const u32 u2 = sched.place(
        "fmadd " + s1(k) + ", " + coef(k, 3) + ", " + yr(k + 1), 2, u1a + 1);
    const u32 u3 = sched.place(
        "fmadd " + s2(k) + ", " + coef(k, 2) + ", " + yr(k), 3, u1b + 4);
    const u32 u4 = sched.place(
        "fmadd " + s1(k) + ", " + coef(k, 1) + ", " + yr(k), 2,
        std::max(u2 + 4, u1a + 1));
    tail.s1_done[k] = u4;
    tail.s2_done[k] = u3;
    // Last readers of yr(k): this section's fmadd/u3/u4; of yr(k+1): the
    // update multiplies u1b/u2 (and the caller's store for yr(8)).
    tail.y_last[k] = std::max({tail.y_last[k], p, u3, u4});
    tail.y_last[k + 1] = std::max(u1b, u2);
    tail.y_out_pkt = p;
    chain = p + 4;
  }
  return tail;
}

std::string coef_preload(const std::vector<BiquadCoefs>& c) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("coefs");
  std::vector<float> flat;
  for (const auto& s : c) {
    flat.push_back(s.b0);
    flat.push_back(s.b1);
    flat.push_back(s.b2);
    flat.push_back(s.a1);
    flat.push_back(s.a2);
  }
  b.line(float_data(flat));
  return b.str();
}

void emit_coef_load(AsmBuilder& b) {
  b.line(load_addr(3, "coefs"));
  for (u32 grp = 0; grp < 5; ++grp) {  // 40 floats = 5 group loads
    const u32 off = grp * 32;
    if (off <= 255) {
      b.line("ldgi g" + std::to_string(kCoefBase + grp * 8) + ", g3, " +
             imm(off));
    } else {
      b.line("setlo g86, " + imm(off));
      b.line("ldg g" + std::to_string(kCoefBase + grp * 8) + ", g3, g86");
    }
  }
  // Zero the states.
  for (u32 k = 0; k < kBiquadSections; ++k) {
    b.packet({"nop", "mov " + s1(k) + ", g0", "mov " + s2(k) + ", g0"});
  }
}

} // namespace

std::vector<BiquadCoefs> make_biquad_coefs(u64 seed) {
  std::vector<BiquadCoefs> c(kBiquadSections);
  SplitMix64 rng(seed);
  for (auto& s : c) {
    const double r = rng.next_double(0.3, 0.9);
    const double theta = rng.next_double(0.2, 2.9);
    s.a1 = static_cast<float>(2.0 * r * std::cos(theta));
    s.a2 = static_cast<float>(-r * r);
    s.b0 = static_cast<float>(rng.next_double(0.2, 1.0));
    s.b1 = static_cast<float>(rng.next_double(-0.5, 0.5));
    s.b2 = static_cast<float>(rng.next_double(-0.5, 0.5));
  }
  return c;
}

void biquad_cascade_reference(const std::vector<BiquadCoefs>& c,
                              const float* x, float* y, u32 n, float* s1,
                              float* s2) {
  for (u32 i = 0; i < n; ++i) {
    float v = x[i];
    for (u32 k = 0; k < c.size(); ++k) {
      const float in = v;
      v = std::fmaf(c[k].b0, in, s1[k]);  // section output
      const float t = c[k].a2 * v;        // FU3 fmul
      s1[k] = std::fmaf(c[k].a1, v, s2[k]);
      s2[k] = std::fmaf(c[k].b2, in, t);
      s1[k] = std::fmaf(c[k].b1, in, s1[k]);
    }
    y[i] = v;
  }
}

KernelSpec make_biquad_spec(u64 seed) {
  const auto c = make_biquad_coefs(seed);
  // Three samples: two warm the I$/D$, the third is the measured pass —
  // the steady-state cost the paper's 63-cycle figure describes.
  const auto x = random_floats(3, seed ^ 0xB1, -1.0, 1.0);

  AsmBuilder b;
  b.line(coef_preload(c));
  b.label("xin");
  b.line(float_data(x));
  b.label("yout");
  b.line("  .space 12");
  b.label("states");
  b.line("  .space 64");
  b.line(".code");
  emit_coef_load(b);
  b.line(load_addr(4, "xin"));
  b.line(load_addr(6, "yout"));
  b.line(load_addr(90, "ticks"));
  b.line("setlo g7, 3");
  b.label("sample");
  // The loop top re-stamps ticks+0 each pass, so ticks+0 holds the start of
  // the final (cache-warm) iteration when the loop exits.
  {
    PacketScheduler sched;
    const u32 t0 = sched.place("gettick g91", 0, 0);
    sched.place("stwi g91, g90, 0", 0, t0 + 1);
    const u32 ld = sched.place("ldwi " + y(0) + ", g4, 0", 0, 0);
    sched.place("addi g4, g4, 4", 0, ld + 1);
    sched.place("addi g7, g7, -1", 0, ld + 1);
    const CascadeTail tail =
        schedule_cascade(sched, ld + 2, kYBase, nullptr);
    sched.place("stwi " + y(kBiquadSections) + ", g6, 0", 0,
                tail.y_out_pkt + 6);
    sched.place("addi g6, g6, 4", 0, tail.y_out_pkt + 7);
    sched.emit(b);
  }
  b.line("bnz g7, sample");
  b.line(tick_stop());
  // Spill states for validation.
  b.line(load_addr(5, "states"));
  for (u32 k = 0; k < kBiquadSections; ++k) {
    b.line("stwi " + s1(k) + ", g5, " + imm(4 * k));
    b.line("stwi " + s2(k) + ", g5, " + imm(32 + 4 * k));
  }
  b.line("halt");

  KernelSpec spec;
  spec.name = "biquad8";
  spec.source = b.str();
  spec.validate = [c, x](sim::MemoryBus& mem, const masm::Image& img,
                         std::string& msg) {
    float s1[kBiquadSections] = {};
    float s2[kBiquadSections] = {};
    float yref[3];
    biquad_cascade_reference(c, x.data(), yref, 3, s1, s2);
    const auto rd = [&](Addr a) {
      float f;
      const u32 r = mem.read_u32(a);
      std::memcpy(&f, &r, 4);
      return f;
    };
    for (u32 i = 0; i < 3; ++i) {
      if (rd(img.symbol("yout") + 4 * i) != yref[i]) {
        msg = "y[" + std::to_string(i) +
              "] = " + std::to_string(rd(img.symbol("yout") + 4 * i)) +
              ", expected " + std::to_string(yref[i]);
        return false;
      }
    }
    const Addr st = img.symbol("states");
    for (u32 k = 0; k < kBiquadSections; ++k) {
      if (rd(st + 4 * k) != s1[k] || rd(st + 32 + 4 * k) != s2[k]) {
        msg = "state mismatch in section " + std::to_string(k);
        return false;
      }
    }
    return true;
  };
  return spec;
}

KernelSpec make_iir_spec(u64 seed) {
  const auto c = make_biquad_coefs(seed);
  const auto x = random_floats(kIirSamples, seed ^ 0x11B, -1.0, 1.0);

  AsmBuilder b;
  b.line(coef_preload(c));
  b.line("  .align 4");
  b.label("xin");
  b.line(float_data(x));
  b.label("yout");
  b.line("  .space " + imm(4 * kIirSamples));
  b.line(".code");
  emit_coef_load(b);
  b.line(load_addr(90, "ticks"));
  // Two passes over the same 64 samples (states re-zeroed per pass, so the
  // output is identical): the first warms the I$, the loop-top stamp makes
  // ticks measure the second, steady-state pass.
  b.line("setlo g5, 2");  // pass counter (g8..g47 hold coefficients)
  b.label("pass");
  for (u32 k = 0; k < kBiquadSections; ++k) {
    b.packet({"nop", "mov " + s1(k) + ", g0", "mov " + s2(k) + ", g0"});
  }
  b.line(load_addr(4, "xin"));
  b.line(load_addr(6, "yout"));
  b.line("setlo g7, " + imm(kIirSamples / 4));
  b.line("gettick g91");
  b.packet({"stwi g91, g90, 0", "addi g5, g5, -1"});
  // Software-pipelined at four samples per iteration over two rotating
  // y-register blocks: each sample's section-k work schedules as soon as
  // the previous sample's final state write for that section has retired,
  // overlapping update drains with the next samples' critical chains —
  // the cross-sample pipelining the paper's 31.6 cycles/sample implies.
  b.label("sample");
  {
    PacketScheduler sched;
    const u32 kYA = kYBase;                          // block 1 (samples A, C)
    const u32 kYB = kYBase + kBiquadSections + 1;    // block 2 (samples B, D)
    const u32 lda = sched.place("ldwi " + g(kYA) + ", g4, 0", 0, 0);
    const u32 ldb = sched.place("ldwi " + g(kYB) + ", g4, 4", 0, 0);
    CascadeTail ta = schedule_cascade(sched, lda + 2, kYA, nullptr);
    CascadeTail tb = schedule_cascade(sched, ldb + 2, kYB, &ta);
    const u32 sta = sched.place(
        "stwi " + g(kYA + kBiquadSections) + ", g6, 0", 0, ta.y_out_pkt + 6);
    ta.y_last[kBiquadSections] =
        std::max(ta.y_last[kBiquadSections], sta);
    // Sample C reuses block 1: its input load overwrites yr(0) after A's
    // last read of it.
    const u32 ldc = sched.place("ldwi " + g(kYA) + ", g4, 8", 0,
                                ta.y_last[0]);
    const CascadeTail tc = schedule_cascade(sched, ldc + 2, kYA, &tb, &ta);
    const u32 stb = sched.place(
        "stwi " + g(kYB + kBiquadSections) + ", g6, 4", 0, tb.y_out_pkt + 6);
    tb.y_last[kBiquadSections] =
        std::max(tb.y_last[kBiquadSections], stb);
    const u32 ldd = sched.place("ldwi " + g(kYB) + ", g4, 12", 0,
                                tb.y_last[0]);
    const CascadeTail td = schedule_cascade(sched, ldd + 2, kYB, &tc, &tb);
    sched.place("stwi " + g(kYA + kBiquadSections) + ", g6, 8", 0,
                tc.y_out_pkt + 6);
    const u32 std_ = sched.place(
        "stwi " + g(kYB + kBiquadSections) + ", g6, 12", 0, td.y_out_pkt + 6);
    sched.place("addi g4, g4, 16", 0, ldd + 1);
    sched.place("addi g6, g6, 16", 0, std_ + 1);
    sched.place("addi g7, g7, -1", 0, 1);
    sched.emit(b);
  }
  b.line("bnz g7, sample");
  b.line("bnz g5, pass");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "iir16x64";
  spec.source = b.str();
  spec.validate = [c, x](sim::MemoryBus& mem, const masm::Image& img,
                         std::string& msg) {
    float s1[kBiquadSections] = {};
    float s2[kBiquadSections] = {};
    std::vector<float> yref(kIirSamples);
    biquad_cascade_reference(c, x.data(), yref.data(), kIirSamples, s1, s2);
    const Addr ya = img.symbol("yout");
    for (u32 i = 0; i < kIirSamples; ++i) {
      float got;
      const u32 raw = mem.read_u32(ya + 4 * i);
      std::memcpy(&got, &raw, 4);
      if (got != yref[i]) {
        msg = "y[" + std::to_string(i) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(yref[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
