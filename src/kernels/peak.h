// Peak-rate burst kernels for the headline numbers (paper §1/§6):
// 6.16 GFLOPS = 2 CPUs x (3 FMA units x 2 flops + a 6-cycle FU0
// reciprocal-sqrt contributing 1/6 flop/cycle) at 500 MHz, and
// 12.32 GOPS = 2 CPUs x (3 x 2-way SIMD multiply-add = 12 ops + a 6-cycle
// FU0 SIMD divide contributing 2/6 ops/cycle).
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

struct PeakSpec {
  KernelSpec kernel;
  double flops_per_iteration = 0;  // FP32 operations per loop iteration
  double ops16_per_iteration = 0;  // 16-bit operations per loop iteration
  u32 iterations = 0;
};

/// FP32 burst: 24-packet loop of independent FMADDs on FU1-3 with an FU0
/// reciprocal-sqrt every 6 packets.
PeakSpec make_fp_peak_spec(u32 iterations = 1000);

/// SIMD burst: PMADDH on FU1-3 with an FU0 S2.13 pairwise divide every 6.
PeakSpec make_simd_peak_spec(u32 iterations = 1000);

} // namespace majc::kernels
