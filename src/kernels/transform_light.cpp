#include "src/kernels/transform_light.h"

#include <cmath>
#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Register map:
//  g8..g23  matrix rows (m[i][j] at g(8+4i+j)), g24..g26 light, g27 ambient,
//  g28 intensity, g4 = in ptr, g5 = out ptr, g7 = vertex-pair counter.
// Per-set registers (set 0 / set 1):
//  inputs g30..g39 / g60..g69 (pair-load layout), outputs g50..g57 /
//  g70..g77, lighting temps g44..g46 / g78..g80... (see in_reg/out_reg).

/// Register holding input float `i` of set `s` (LDL pair swap applied).
std::string in_reg(u32 s, u32 i) {
  const u32 base = s == 0 ? 30 : 60;
  return g(base + (i ^ 1));
}
std::string out_base(u32 s, u32 i) { return g((s == 0 ? 50 : 70) + i); }
/// Output float i lives at pair position i^1 (so STL emits it in order).
std::string out_reg(u32 s, u32 i) { return g((s == 0 ? 50 : 70) + (i ^ 1)); }

std::string mreg(u32 i, u32 j) { return g(8 + 4 * i + j); }

} // namespace

TlUniforms make_tl_uniforms(u64 seed) {
  TlUniforms u{};
  SplitMix64 rng(seed ^ 0x71);
  for (auto& row : u.m) {
    for (auto& v : row) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  float lx = static_cast<float>(rng.next_double(-1.0, 1.0));
  float ly = static_cast<float>(rng.next_double(-1.0, 1.0));
  float lz = static_cast<float>(rng.next_double(0.2, 1.0));
  const float n = std::sqrt(lx * lx + ly * ly + lz * lz);
  u.light[0] = lx / n;
  u.light[1] = ly / n;
  u.light[2] = lz / n;
  u.ambient = 0.25f;
  u.intensity = 0.75f;
  return u;
}

void transform_light_reference(const TlUniforms& u, const float* in,
                               float* out, u32 vertices) {
  for (u32 v = 0; v < vertices; ++v) {
    const float* p = in + v * kTlInFloats;
    float* o = out + v * kTlOutFloats;
    for (u32 i = 0; i < 4; ++i) {
      float acc = u.m[i][3];
      acc = std::fmaf(u.m[i][0], p[0], acc);
      acc = std::fmaf(u.m[i][1], p[1], acc);
      acc = std::fmaf(u.m[i][2], p[2], acc);
      o[i] = acc;
    }
    float nl = u.light[0] * p[3];
    nl = std::fmaf(u.light[1], p[4], nl);
    nl = std::fmaf(u.light[2], p[5], nl);
    // s = ambient + intensity * max(nl, 0), computed as a clamped fma:
    // with intensity >= 0 this is exactly fmax(fma(intensity, nl, ambient),
    // ambient), which is one step shorter on the critical path.
    float s = std::fmaf(u.intensity, nl, u.ambient);
    s = std::fmax(s, u.ambient);
    o[4] = p[6] * s;
    o[5] = p[7] * s;
    o[6] = p[8] * s;
    o[7] = 0.0f;
  }
}

KernelSpec make_transform_light_spec(u32 vertices, u64 seed) {
  require(vertices % 2 == 0, "transform_light processes vertex pairs");
  const TlUniforms u = make_tl_uniforms(seed);
  const auto in = random_floats(vertices * kTlInFloats, seed ^ 0x7F, -1.0, 1.0);

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("uni");
  std::vector<float> uf;
  for (const auto& row : u.m) uf.insert(uf.end(), row, row + 4);
  uf.insert(uf.end(), u.light, u.light + 3);
  uf.push_back(u.ambient);
  uf.push_back(u.intensity);
  uf.resize(24, 0.0f);
  b.line(float_data(uf));
  b.line("  .align 32");
  b.label("vin");
  b.line("  .space " + imm(vertices * kTlInFloats * 4));
  b.line("  .align 32");
  b.label("vout");
  b.line("  .space " + imm(vertices * kTlOutFloats * 4));
  b.line(".code");
  b.line(load_addr(3, "uni"));
  b.line("ldgi g8, g3, 0");
  b.line("ldgi g16, g3, 32");
  b.line("ldgi g24, g3, 64");  // light(3), ambient, intensity + padding
  // The ldg leaves light at g24..g26, ambient g27, intensity g28.
  b.line(load_addr(4, "vin"));
  b.line(load_addr(5, "vout"));
  b.line("setlo g7, " + imm(vertices / 2));
  b.line(tick_start());

  b.label("vtx");
  PacketScheduler sched;
  u32 last_op = 0;
  for (u32 s = 0; s < 2; ++s) {
    const u32 in_off = s * kTlInFloats * 4;
    const u32 out_off = s * kTlOutFloats * 4;
    const u32 lbase = s == 0 ? 30 : 60;
    u32 lp[5];
    for (u32 k = 0; k < 5; ++k) {
      lp[k] = sched.place("ldli " + g(lbase + 2 * k) + ", g4, " +
                              imm(in_off + 8 * k),
                          0, 5 * s + k);
    }
    const u32 ready_pos = lp[1] + 2;   // x,y,z loaded by lp[1]
    const u32 ready_nrm = lp[2] + 2;
    const u32 ready_col = lp[4] + 2;
    // Matrix rows 0..3 on FUs 1..3 (row 3 shares FU1).
    u32 row_done[4];
    for (u32 i = 0; i < 4; ++i) {
      const u32 fu = 1 + i % 3;
      u32 p = sched.place("mov " + out_reg(s, i) + ", " + mreg(i, 3), fu,
                          5 * s);
      p = sched.place("fmadd " + out_reg(s, i) + ", " + mreg(i, 0) + ", " +
                          in_reg(s, 0),
                      fu, std::max(p + 1, ready_pos));
      p = sched.place("fmadd " + out_reg(s, i) + ", " + mreg(i, 1) + ", " +
                          in_reg(s, 1),
                      fu, p + 4);
      p = sched.place("fmadd " + out_reg(s, i) + ", " + mreg(i, 2) + ", " +
                          in_reg(s, 2),
                      fu, p + 4);
      row_done[i] = p + 4;
    }
    // Lighting chain on FU2/FU3 (scratch g44..g46 / g78..g80).
    const std::string nl = g(s == 0 ? 44 : 78);
    const std::string sc = g(s == 0 ? 45 : 79);
    const u32 lfu = s == 0 ? 2 : 3;
    sched.place("mov " + sc + ", g27", lfu, 5 * s);  // ambient (off-path)
    u32 p = sched.place("fmul " + nl + ", g24, " + in_reg(s, 3), lfu,
                        ready_nrm);
    p = sched.place("fmadd " + nl + ", g25, " + in_reg(s, 4), lfu, p + 4);
    p = sched.place("fmadd " + nl + ", g26, " + in_reg(s, 5), lfu, p + 4);
    p = sched.place("fmadd " + sc + ", g28, " + nl, lfu, p + 4);
    p = sched.place("fmax " + sc + ", " + sc + ", g27", lfu, p + 4);
    const u32 sc_ready = p + 1;
    u32 col_done = 0;
    for (u32 c = 0; c < 3; ++c) {
      const u32 q = sched.place("fmul " + out_reg(s, 4 + c) + ", " + sc +
                                    ", " + in_reg(s, 6 + c),
                                1 + c % 3, std::max(sc_ready + 2, ready_col));
      col_done = std::max(col_done, q + 4);
    }
    sched.place("mov " + out_reg(s, 7) + ", g0", 1 + s, 5 * s);
    // Stores: 4 pair stores once their halves are ready.
    for (u32 k = 0; k < 4; ++k) {
      const u32 ready =
          k < 2 ? std::max(row_done[2 * k], row_done[2 * k + 1]) + 2
                : col_done + 2;
      last_op = std::max(
          last_op, sched.place("stli " + out_base(s, 2 * k) + ", g5, " +
                                   imm(out_off + 8 * k),
                               0, ready));
    }
  }
  sched.place("addi g4, g4, 80", 1, last_op + 1);
  sched.place("addi g5, g5, 64", 2, last_op + 1);
  sched.place("addi g7, g7, -1", 3, last_op + 1);
  sched.emit(b);
  b.line("bnz g7, vtx");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "transform_light";
  spec.source = b.str();
  spec.max_packets = 400'000'000;
  spec.setup = [in](sim::MemoryBus& mem, const masm::Image& img) {
    mem.write(img.symbol("vin"),
              {reinterpret_cast<const u8*>(in.data()), in.size() * 4});
  };
  spec.validate = [u, in, vertices](sim::MemoryBus& mem,
                                    const masm::Image& img, std::string& msg) {
    std::vector<float> expect(vertices * kTlOutFloats);
    transform_light_reference(u, in.data(), expect.data(), vertices);
    const Addr oa = img.symbol("vout");
    for (u32 i = 0; i < vertices * kTlOutFloats; ++i) {
      float got;
      const u32 raw = mem.read_u32(oa + 4 * i);
      std::memcpy(&got, &raw, 4);
      if (got != expect[i]) {
        msg = "out[" + std::to_string(i) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

KernelSpec make_transform_only_spec(u32 vertices, u64 seed) {
  require(vertices % 2 == 0, "transform kernel processes vertex pairs");
  const TlUniforms u = make_tl_uniforms(seed);
  const auto in = random_floats(vertices * 4, seed ^ 0x70, -1.0, 1.0);

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("uni");
  std::vector<float> uf;
  for (const auto& row : u.m) uf.insert(uf.end(), row, row + 4);
  b.line(float_data(uf));
  b.line("  .align 32");
  b.label("vin");
  b.line("  .space " + imm(vertices * 16));
  b.line("  .align 32");
  b.label("vout");
  b.line("  .space " + imm(vertices * 16));
  b.line(".code");
  b.line(load_addr(3, "uni"));
  b.line("ldgi g8, g3, 0");
  b.line("ldgi g16, g3, 32");
  b.line(load_addr(4, "vin"));
  b.line(load_addr(5, "vout"));
  b.line("setlo g7, " + imm(vertices / 2));
  b.line(tick_start());
  b.label("vtx");
  PacketScheduler sched;
  u32 last_op = 0;
  for (u32 s = 0; s < 2; ++s) {
    const u32 lbase = s == 0 ? 30 : 60;
    u32 lp[2];
    for (u32 k = 0; k < 2; ++k) {
      lp[k] = sched.place("ldli " + g(lbase + 2 * k) + ", g4, " +
                              imm(16 * s + 8 * k),
                          0, 2 * s + k);
    }
    const u32 ready = lp[1] + 2;
    u32 row_done[4];
    for (u32 i = 0; i < 4; ++i) {
      const u32 fu = 1 + i % 3;
      const std::string acc = g((s == 0 ? 50 : 70) + (i ^ 1));
      u32 p = sched.place("mov " + acc + ", " + mreg(i, 3), fu, 2 * s);
      for (u32 j = 0; j < 3; ++j) {
        p = sched.place("fmadd " + acc + ", " + mreg(i, j) + ", " +
                            g(lbase + (j ^ 1)),
                        fu, std::max(p + (j == 0 ? 1 : 4), ready));
      }
      row_done[i] = p + 4;
    }
    for (u32 k = 0; k < 2; ++k) {
      const u32 r = std::max(row_done[2 * k], row_done[2 * k + 1]) + 2;
      last_op = std::max(
          last_op, sched.place("stli " + g((s == 0 ? 50 : 70) + 2 * k) +
                                   ", g5, " + imm(16 * s + 8 * k),
                               0, r));
    }
  }
  sched.place("addi g4, g4, 32", 1, last_op + 1);
  sched.place("addi g5, g5, 32", 2, last_op + 1);
  sched.place("addi g7, g7, -1", 3, last_op + 1);
  sched.emit(b);
  b.line("bnz g7, vtx");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "transform_only";
  spec.source = b.str();
  spec.max_packets = 400'000'000;
  spec.setup = [in](sim::MemoryBus& mem, const masm::Image& img) {
    mem.write(img.symbol("vin"),
              {reinterpret_cast<const u8*>(in.data()), in.size() * 4});
  };
  spec.validate = [u, in, vertices](sim::MemoryBus& mem,
                                    const masm::Image& img, std::string& msg) {
    const Addr oa = img.symbol("vout");
    for (u32 v = 0; v < vertices; ++v) {
      const float* p = in.data() + v * 4;
      for (u32 i = 0; i < 4; ++i) {
        float acc = u.m[i][3];
        acc = std::fmaf(u.m[i][0], p[0], acc);
        acc = std::fmaf(u.m[i][1], p[1], acc);
        acc = std::fmaf(u.m[i][2], p[2], acc);
        float got;
        const u32 raw = mem.read_u32(oa + 16 * v + 4 * i);
        std::memcpy(&got, &raw, 4);
        if (got != acc) {
          msg = "vertex " + std::to_string(v) + " row " + std::to_string(i) +
                " mismatch";
          return false;
        }
      }
    }
    return true;
  };
  return spec;
}

double measure_tl_cycles_per_vertex(bool lit) {
  constexpr u32 kVerts = 512;
  // Vertex data arrives through on-chip buffers in the GPP pipeline.
  TimingConfig cfg;
  cfg.perfect_dcache = true;
  const auto spec =
      lit ? make_transform_light_spec(kVerts) : make_transform_only_spec(kVerts);
  const auto run = run_kernel(spec, cfg);
  require(run.valid, "transform kernel failed validation: " + run.message);
  return static_cast<double>(run.kernel_cycles) / kVerts;
}

} // namespace majc::kernels
