// Shared helpers for DSP kernel generators: deterministic stimulus and
// exact float literal emission for .data sections.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/support/rng.h"
#include "src/support/types.h"

namespace majc::kernels {

/// Render a float with enough digits to round-trip exactly through the
/// assembler (which parses doubles and narrows).
inline std::string flit(float v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  std::string s(buf);
  // Ensure it lexes as a float literal even for integral values.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

/// Uniform floats in [lo, hi].
inline std::vector<float> random_floats(std::size_t n, u64 seed, double lo,
                                        double hi) {
  std::vector<float> v(n);
  SplitMix64 rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.next_double(lo, hi));
  return v;
}

/// Emit a .float directive list (16 values per line for readability).
inline std::string float_data(const std::vector<float>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i % 16 == 0) ? "  .float " : ", ";
    out += flit(v[i]);
    if (i % 16 == 15 || i + 1 == v.size()) out += "\n";
  }
  return out;
}

/// Emit a .half directive list.
inline std::string half_data(const std::vector<i16>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i % 16 == 0) ? "  .half " : ", ";
    out += std::to_string(v[i]);
    if (i % 16 == 15 || i + 1 == v.size()) out += "\n";
  }
  return out;
}

/// Emit a .word directive list.
inline std::string word_data(const std::vector<u32>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i % 12 == 0) ? "  .word " : ", ";
    out += std::to_string(v[i]);
    if (i % 12 == 11 || i + 1 == v.size()) out += "\n";
  }
  return out;
}

/// Emit a .byte directive list.
inline std::string byte_data(const std::vector<u8>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i % 24 == 0) ? "  .byte " : ", ";
    out += std::to_string(v[i]);
    if (i % 24 == 23 || i + 1 == v.size()) out += "\n";
  }
  return out;
}

} // namespace majc::kernels
