// Bit-reversal reordering of a 1024-point complex array (Table 2, row 9).
//
// The paper notes MAJC has no bit-reversed addressing mode, so reordering
// is performed with a precomputed table. The kernel walks a table of the
// 496 swap pairs (fixed points excluded), group-loading four table entries
// at a time and exchanging 8-byte complex values with pair loads/stores —
// ~5 cycles per swap, the rate behind the paper's 2484-cycle figure.
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

KernelSpec make_bitrev_spec(u64 seed = 1);

} // namespace majc::kernels
