#include "src/kernels/peak.h"

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

PeakSpec make_burst(bool fp, u32 iterations) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line(".code");
  if (fp) {
    // Operand setup: g8/g9 small floats, g31 rsqrt input.
    b.line("sethi g8, 0x3f80");  // 1.0f
    b.line("orlo g8, 0");
    b.line("sethi g9, 0x3f00");  // 0.5f
    b.line("orlo g9, 0");
    b.line("sethi g31, 0x4000");  // 2.0f
    b.line("orlo g31, 0");
  } else {
    b.line("sethi g8, 0x0102");
    b.line("orlo g8, 0x0304");
    b.line("sethi g9, 0x0011");
    b.line("orlo g9, 0x0022");
    b.line("setlo g31, 0x1234");
  }
  b.line("sethi g7, " + imm(iterations >> 16));
  b.line("orlo g7, " + imm(iterations & 0xFFFF));
  b.line(tick_start());
  b.label("burst");
  // 24 packets: FU1-3 saturated with independent multiply-adds rotating
  // over four accumulators each; FU0 issues its 6-cycle iterative op every
  // 6 packets plus the loop bookkeeping.
  const char* compute = fp ? "fmadd " : "pmaddh ";
  const char* iter_op = fp ? "frsqrt g30, g31" : "pdiv213 g30, g31, g31";
  for (u32 p = 0; p < 24; ++p) {
    std::string fu0 = "nop";
    if (p % 6 == 0) fu0 = iter_op;
    if (p == 1) fu0 = "addi g7, g7, -1";
    std::string s[3];
    for (u32 f = 0; f < 3; ++f) {
      s[f] = std::string(compute) + l(p % 4) + ", g8, g9";
    }
    b.packet({fu0, s[0], s[1], s[2]});
  }
  b.line("bnz g7, burst");
  b.line(tick_stop());
  b.line("halt");

  PeakSpec spec;
  spec.kernel.name = fp ? "fp_peak" : "simd_peak";
  spec.kernel.source = b.str();
  spec.kernel.max_packets = 200'000'000;
  spec.iterations = iterations;
  if (fp) {
    spec.flops_per_iteration = 24.0 * 3.0 * 2.0 + 4.0;  // FMAs + rsqrts
  } else {
    spec.ops16_per_iteration = 24.0 * 3.0 * 4.0 + 4.0 * 2.0;
  }
  return spec;
}

} // namespace

PeakSpec make_fp_peak_spec(u32 iterations) { return make_burst(true, iterations); }
PeakSpec make_simd_peak_spec(u32 iterations) {
  return make_burst(false, iterations);
}

} // namespace majc::kernels
