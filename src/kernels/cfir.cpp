#include "src/kernels/cfir.h"

#include <cmath>
#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Register map (globals):
//   g4/g5/g6 = x bases (&x[n], +248, +496); g7/g8/g9 = h bases;
//   g10 = y ptr, g11 = output counter,
//   g12/14/16/18 = x pair buffers (rotating, tap mod 4),
//   g20/22/24/26 = h pair buffers,
//   g30..g41 = reduction staging, g42:g43 = output pair (im, re),
//   g90/g91 = ticks.
// Locals per FU: l0 = sum hr*xr, l1 = sum hi*xi, l2 = sum hr*xi,
//                l3 = sum hi*xr.
//
// Pair-load layout: LDL's even register receives the higher-addressed word,
// so a complex (re@addr, im@addr+4) lands as im -> even, re -> odd.

std::string xbuf(u32 k) { return g(12 + 2 * (k % 4)); }
std::string hbuf(u32 k) { return g(20 + 2 * (k % 4)); }
std::string xr(u32 k) { return g(12 + 2 * (k % 4) + 1); }
std::string xi(u32 k) { return g(12 + 2 * (k % 4)); }
std::string hr(u32 k) { return g(20 + 2 * (k % 4) + 1); }
std::string hi(u32 k) { return g(20 + 2 * (k % 4)); }

/// Pair load of element k of the array based at {b0,b1,b2}.
std::string pair_load(const std::string& buf, u32 k, const char* b0,
                      const char* b1, const char* b2) {
  const u32 off = 8 * k;
  if (off <= 248) return "ldli " + buf + ", " + b0 + ", " + imm(off);
  if (off <= 496) return "ldli " + buf + ", " + b1 + ", " + imm(off - 248);
  return "ldli " + buf + ", " + b2 + ", " + imm(off - 496);
}

std::string generate_cfir_asm(const std::vector<float>& h_flat,
                              const std::vector<float>& x_flat) {
  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("harr");
  b.line(float_data(h_flat));
  b.line("  .align 8");
  b.label("xarr");
  b.line(float_data(x_flat));
  b.line("  .align 8");
  b.label("yarr");
  b.line("  .space " + imm(kCfirOutputs * 8));
  b.line(".code");

  b.line(load_addr(7, "harr"));
  b.line("addi g8, g7, 248");
  b.line("addi g9, g8, 248");
  b.line(load_addr(4, "xarr"));
  b.line(load_addr(10, "yarr"));
  // Clear accumulators.
  for (u32 j = 0; j < 4; ++j) {
    b.packet({"nop", "mov " + l(j) + ", g0", "mov " + l(j) + ", g0",
              "mov " + l(j) + ", g0"});
  }
  b.line(load_addr(90, "ticks"));
  // Two passes over the same outputs: the first warms the I$/D$, the
  // loop-top stamp makes ticks measure the steady-state pass the paper's
  // 8643-cycle figure describes.
  b.line("setlo g44, 2");
  b.label("pass");
  b.line(load_addr(4, "xarr"));
  b.line(load_addr(10, "yarr"));
  b.line("setlo g11, " + imm(kCfirOutputs));
  b.line("gettick g91");
  b.packet({"stwi g91, g90, 0", "addi g44, g44, -1"});

  b.label("outp");
  b.line("addi g5, g4, 248");
  b.line("addi g6, g5, 248");

  // Flat schedule: tap k's loads at packets 2k / 2k+1, its four FMAs at
  // packets 2k+3 .. 2k+6 in slot (k mod 3) + 1.
  const u32 total = 2 * kCfirTaps + 8;
  std::vector<std::array<std::string, 4>> sched(total);
  for (u32 k = 0; k < kCfirTaps; ++k) {
    sched[2 * k][0] = pair_load(xbuf(k), k, "g4", "g5", "g6");
    sched[2 * k + 1][0] = pair_load(hbuf(k), k, "g7", "g8", "g9");
    const u32 fu = 1 + k % 3;
    sched[2 * k + 3][fu] = "fmadd l0, " + hr(k) + ", " + xr(k);
    sched[2 * k + 4][fu] = "fmadd l2, " + hr(k) + ", " + xi(k);
    sched[2 * k + 5][fu] = "fmadd l1, " + hi(k) + ", " + xi(k);
    sched[2 * k + 6][fu] = "fmadd l3, " + hi(k) + ", " + xr(k);
  }
  for (const auto& s : sched) {
    if (s[0].empty() && s[1].empty() && s[2].empty() && s[3].empty()) {
      continue;
    }
    b.packet({s[0].empty() ? "nop" : s[0], s[1].empty() ? "nop" : s[1],
              s[2].empty() ? "nop" : s[2], s[3].empty() ? "nop" : s[3]});
  }

  // Reduction: stage the 12 partials, then
  //   yr = ((r1+r2)+r3) - ((i1+i2)+i3) over l0 / l1 partials,
  //   yi = ((a1+a2)+a3) + ((b1+b2)+b3) over l2 / l3 partials.
  // Staging layout: g(30+3j+f-1) holds FU f's l_j.
  for (u32 j = 0; j < 4; ++j) {
    std::string fu0 = "nop";
    if (j == 0) fu0 = "addi g4, g4, 8";
    if (j == 1) fu0 = "addi g11, g11, -1";
    b.packet({fu0, "mov " + g(30 + 3 * j) + ", " + l(j),
              "mov " + g(31 + 3 * j) + ", " + l(j),
              "mov " + g(32 + 3 * j) + ", " + l(j)});
  }
  for (u32 j = 0; j < 4; ++j) {  // clear for the next output
    b.packet({"nop", "mov " + l(j) + ", g0", "mov " + l(j) + ", g0",
              "mov " + l(j) + ", g0"});
  }
  b.packet({"nop", "fadd g30, g30, g31", "fadd g33, g33, g34",
            "fadd g36, g36, g37"});
  b.packet({"nop", "fadd g39, g39, g40"});
  b.packet({"nop", "fadd g30, g30, g32", "fadd g33, g33, g35",
            "fadd g36, g36, g38"});
  b.packet({"nop", "fadd g39, g39, g41"});
  // g43 (odd) = re, g42 (even) = im for the pair store.
  b.packet({"nop", "fsub g43, g30, g33", "fadd g42, g36, g39"});
  b.line("stli g42, g10, 0");
  b.line("addi g10, g10, 8");
  b.line("bnz g11, outp");
  b.line("bnz g44, pass");
  b.line(tick_stop());
  b.line("halt");
  return b.str();
}

} // namespace

void cfir_reference(const std::complex<float>* h, const std::complex<float>* x,
                    std::complex<float>* y) {
  for (u32 n = 0; n < kCfirOutputs; ++n) {
    float rr[3] = {}, ii[3] = {}, ri[3] = {}, ir[3] = {};
    for (u32 k = 0; k < kCfirTaps; ++k) {
      const u32 f = k % 3;
      rr[f] = std::fmaf(h[k].real(), x[n + k].real(), rr[f]);
      ri[f] = std::fmaf(h[k].real(), x[n + k].imag(), ri[f]);
      ii[f] = std::fmaf(h[k].imag(), x[n + k].imag(), ii[f]);
      ir[f] = std::fmaf(h[k].imag(), x[n + k].real(), ir[f]);
    }
    const float yr = ((rr[0] + rr[1]) + rr[2]) - ((ii[0] + ii[1]) + ii[2]);
    const float yi = ((ri[0] + ri[1]) + ri[2]) + ((ir[0] + ir[1]) + ir[2]);
    y[n] = {yr, yi};
  }
}

KernelSpec make_cfir_spec(u64 seed) {
  const u32 xlen = kCfirOutputs + kCfirTaps;  // 127 used + 1 pad
  const auto h_flat = random_floats(kCfirTaps * 2, seed ^ 0xCF, -1.0, 1.0);
  const auto x_flat = random_floats(xlen * 2, seed ^ 0xC0DE, -1.5, 1.5);

  KernelSpec spec;
  spec.name = "cfir64x64";
  spec.source = generate_cfir_asm(h_flat, x_flat);
  spec.validate = [h_flat, x_flat](sim::MemoryBus& mem, const masm::Image& img,
                                   std::string& msg) {
    std::vector<std::complex<float>> h(kCfirTaps), x(x_flat.size() / 2),
        expect(kCfirOutputs);
    for (u32 k = 0; k < kCfirTaps; ++k) h[k] = {h_flat[2 * k], h_flat[2 * k + 1]};
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = {x_flat[2 * i], x_flat[2 * i + 1]};
    }
    cfir_reference(h.data(), x.data(), expect.data());
    const Addr y = img.symbol("yarr");
    for (u32 n = 0; n < kCfirOutputs; ++n) {
      float re, im;
      u32 raw = mem.read_u32(y + 8 * n);
      std::memcpy(&re, &raw, 4);
      raw = mem.read_u32(y + 8 * n + 4);
      std::memcpy(&im, &raw, 4);
      if (re != expect[n].real() || im != expect[n].imag()) {
        msg = "y[" + std::to_string(n) + "] = (" + std::to_string(re) + "," +
              std::to_string(im) + "), expected (" +
              std::to_string(expect[n].real()) + "," +
              std::to_string(expect[n].imag()) + ")";
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
