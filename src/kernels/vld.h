// MPEG-2-style variable-length decode + inverse zigzag + inverse
// quantization (Table 1, row 3; paper: 27 Msymbols/s = 18.5 cycles/symbol).
//
// The code format is a run/level prefix code in the MPEG-2 mold:
//   [n zeros][1][run:4][level:6],  n = min(12, |level| - 1)
// so frequent small levels get short codes. The decoder extracts a 32-bit
// window with a single BEXT from the bit position, finds the prefix with
// LZD (leading-zero detect), and peels run/level with variable shifts —
// the "versatile bit and byte manipulation operations [that] help the
// variable length decoding" (paper §5). Each decoded level is placed
// through the zigzag table and scaled by the quantizer step.
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kVldSymbols = 512;
inline constexpr i32 kVldQscale = 12;

struct VldSymbol {
  u32 run;   // 0..15
  i32 level; // [-32, 31], nonzero
};

/// Deterministic symbol stream with a geometric level distribution.
std::vector<VldSymbol> make_vld_symbols(u64 seed);

/// MSB-first bit packing of the symbol stream into 32-bit words.
std::vector<u32> encode_vld_stream(const std::vector<VldSymbol>& syms);

/// Golden decoder: mirrors the kernel's arithmetic exactly; returns the
/// final 64-coefficient block state.
void vld_reference(const std::vector<u32>& stream, u32 symbols, i16* block);

KernelSpec make_vld_spec(u64 seed = 1);

/// Emit the decode loop into `b` for composition with other kernels
/// (e.g. the macroblock pipeline). Register contract: g10 = bit position
/// (live across calls), g11 = stream base, g12 = block base, g13 = zigzag
/// table base, g14 = qscale, g15 = scan index, g17/g29/g31 = constants
/// 2048/27/21; decodes `symbols` symbols; clobbers g16, g20..g34.
void emit_vld_loop(class AsmBuilder& b, u32 symbols, const char* label);

/// The zigzag scan table shared by the VLD kernels (raster position of each
/// scan index).
const u8* vld_zigzag_table();

} // namespace majc::kernels
