// 64-sample, 64-tap single-precision FIR filter (Table 2, row 2).
//
// y[n] = sum_{k=0}^{63} h[k] * x[n+k], n = 0..63 (correlation form; the
// paper's benchmark is the standard DSP-suite FIR and is structurally
// identical). Schedule: four outputs computed concurrently, taps rotated
// across FU1..FU3 (each FU owns taps k === fu-1 mod 3) with one fused
// multiply-add accumulator per (FU, output), coefficient array resident in
// global registers after 8-word group-load preloading, and the sample
// window streamed through a 12-register rolling buffer by FU0 pair loads —
// the register-blocking style the paper credits the 224-entry register
// file for.
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kFirTaps = 64;
inline constexpr u32 kFirOutputs = 64;

/// Build the FIR kernel (assembly + golden validation) for `seed`.
KernelSpec make_fir_spec(u64 seed = 1);

/// Golden model with the exact accumulation association of the kernel.
void fir_reference(const float* h, const float* x, float* y);

} // namespace majc::kernels
