#include "src/kernels/dct_quant.h"

#include <array>

#include "src/kernels/dct_common.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {

void dct_quant_reference(const i16* in, i16* out) {
  const auto m = fdct_matrix();
  std::array<i16, 64> tmp, dct;
  dct_pass_reference(m, in, tmp.data());
  dct_pass_reference(m, tmp.data(), dct.data());
  for (u32 i = 0; i < 64; ++i) {
    out[i] = static_cast<i16>(
        (static_cast<i32>(dct[i]) * static_cast<i32>(kQuantRecip)) >> 15);
  }
}

KernelSpec make_dct_quant_spec(u64 seed) {
  std::vector<i16> pixels(64);
  SplitMix64 rng(seed ^ 0xDC7);
  for (auto& p : pixels) p = static_cast<i16>(rng.next_range(-256, 255));
  const auto m = fdct_matrix();

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("marr");
  b.line(half_data({m.begin(), m.end()}));
  b.line("  .align 8");
  b.label("blk");
  b.line(half_data(pixels));
  b.line("  .align 8");
  b.label("tmp");
  b.line("  .space 128");
  b.line("  .align 8");
  b.label("outp");
  b.line("  .space 128");
  b.line(".code");
  emit_matrix_preload(b, "marr");
  b.line("setlo g49, " + imm(1 << (kDctShift - 1)));
  b.line("setlo g45, " + imm(kQuantRecip));
  b.line(load_addr(40, "blk"));
  b.line(load_addr(41, "tmp"));
  b.line(load_addr(42, "outp"));
  b.line(load_addr(90, "ticks"));
  b.line("setlo g46, 3");
  b.label("block");
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");
  b.line("mov g4, g40 | mov g5, g41 | addi g46, g46, -1");
  emit_dct_pass(b, /*quantize=*/false);  // row pass: no quantization yet
  b.line("mov g4, g41 | mov g5, g42");
  emit_dct_pass(b, /*quantize=*/true);   // column pass folds the quantizer
  b.line("bnz g46, block");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "dct_quant8x8";
  spec.source = b.str();
  spec.validate = [pixels](sim::MemoryBus& mem, const masm::Image& img,
                           std::string& msg) {
    std::array<i16, 64> expect;
    dct_quant_reference(pixels.data(), expect.data());
    const Addr oa = img.symbol("outp");
    for (u32 i = 0; i < 64; ++i) {
      const i16 got = static_cast<i16>(mem.read_u16(oa + 2 * i));
      if (got != expect[i]) {
        msg = "out[" + std::to_string(i) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
