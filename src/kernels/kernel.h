// Kernel harness: assemble, run on the cycle-accurate simulator, time the
// instrumented region, and validate results against a golden C++ model.
//
// Every Table 1 / Table 2 kernel follows the same convention the paper's
// own methodology implies (single MAJC CPU, cycle-accurate simulator):
//  * the program declares `ticks: .space 8` and brackets the measured
//    region with GETTICK stores to ticks+0 / ticks+4;
//  * inputs are either embedded via .data or written by `setup` into
//    .space regions located by symbol;
//  * `validate` re-reads memory and compares with the golden model.
#pragma once

#include <functional>
#include <string>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"

namespace majc::kernels {

struct KernelSpec {
  std::string name;
  std::string source;
  /// Write input data into memory before the run (optional).
  std::function<void(sim::MemoryBus&, const masm::Image&)> setup;
  /// Check outputs; fill `message` on mismatch (optional).
  std::function<bool(sim::MemoryBus&, const masm::Image&, std::string&)>
      validate;
  u64 max_packets = 200'000'000;
};

struct KernelRun {
  Cycle kernel_cycles = 0;  // ticks[1]-ticks[0] if instrumented, else total
  Cycle total_cycles = 0;
  u64 packets = 0;
  u64 instrs = 0;
  bool valid = false;
  bool halted = false;
  TerminationReason reason = TerminationReason::kPacketCap;
  std::string message;
  cpu::CpuStats cpu_stats;
  double ipc = 0.0;
  /// FNV-1a over memory + registers + pc at the end of the run: two runs
  /// that agree here computed the same architectural outcome.
  u64 arch_digest = 0;
  /// RAS events absorbed during the run without ending it (plus the machine
  /// checks that did). Filled by the cycle-accurate path; the fault-soak
  /// harness asserts recovered runs still validate against the golden model.
  struct Recovery {
    u64 ecc_corrected = 0;
    u64 ecc_retried = 0;          // uncorrectable reads retried (kRetry)
    u64 ecc_poisoned = 0;         // lines scrubbed (kPoison / kDeliver)
    u64 machine_checks = 0;       // uncorrectable errors seen by ECC
    u64 fill_parity_retries = 0;  // corrupted cache fills refetched
    u64 fill_machine_checks = 0;  // bounded-refetch exhaustions
    u64 xbar_delayed_grants = 0;
    u64 xbar_dropped_grants = 0;
    u64 traps_delivered = 0;      // traps recovered via the guest handler
  } recovery;
};

/// Assemble and run `spec` on a single cycle-accurate CPU.
KernelRun run_kernel(const KernelSpec& spec, const TimingConfig& cfg = {});

/// Run on the instruction-accurate simulator only (fast path for pure
/// correctness tests).
KernelRun run_kernel_functional(const KernelSpec& spec);

/// A kernel assembled and predecoded once. `program` is immutable and
/// shared: any number of machines — across threads — may run it
/// concurrently (the farm engine's shared-predecode path).
struct CompiledKernel {
  KernelSpec spec;
  sim::ProgramRef program;
};

/// Assemble + predecode `spec` once for repeated / concurrent running.
CompiledKernel compile_kernel(KernelSpec spec);

/// Run a compiled kernel on a reusable machine: the machine is reset in
/// place (arena reuse) instead of constructing a fresh simulator, and the
/// result is bit-identical to run_kernel(spec, cfg) on a fresh machine.
KernelRun run_compiled(const CompiledKernel& k, const TimingConfig& cfg,
                       cpu::CycleSim& machine);

/// Functional-mode counterpart of run_compiled (timing-free, like
/// run_kernel_functional).
KernelRun run_compiled_functional(const CompiledKernel& k,
                                  sim::FunctionalSim& machine);

/// Drive an already-initialized machine (freshly constructed or just reset
/// to the kernel's program) through one run. The building block behind
/// run_kernel / run_compiled; exposed for harnesses that manage machine
/// lifetime themselves.
KernelRun run_kernel_on(cpu::CycleSim& machine, const KernelSpec& spec);
KernelRun run_kernel_on(sim::FunctionalSim& machine, const KernelSpec& spec);

/// Split phases of run_kernel_on for harnesses that slice a run into
/// several machine.run(cap) calls (the farm's preemptible executor):
/// setup_kernel writes the spec's input data (call exactly once per run,
/// never after a checkpoint restore — the restored memory already holds
/// it), finalize_kernel derives the KernelRun from the machine's final
/// state plus the *last* slice's raw result. A single-slice
/// setup / run(max) / finalize sequence is bit-identical to
/// run_kernel_on (tests/test_resilience.cpp pins the sliced case).
void setup_kernel(cpu::CycleSim& machine, const KernelSpec& spec);
void setup_kernel(sim::FunctionalSim& machine, const KernelSpec& spec);
KernelRun finalize_kernel(cpu::CycleSim& machine, const KernelSpec& spec,
                          const cpu::CycleSim::Result& res);
KernelRun finalize_kernel(sim::FunctionalSim& machine, const KernelSpec& spec,
                          const sim::RunResult& res);

// ---- shared helpers for kernel sources ----

/// Standard prologue/epilogue fragments: materialize `sym` into gN.
std::string load_addr(u32 greg, const std::string& sym);
/// GETTICK capture into ticks+{0,4} using g90/g91 as scratch.
std::string tick_start();
std::string tick_stop();

} // namespace majc::kernels
