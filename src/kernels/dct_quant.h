// 8x8 forward DCT + quantization (Table 1, row 2): the encoder-side
// counterpart of the IDCT kernel with a uniform quantizer folded into the
// column pass (out = (dct * recip) >> 15).
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

/// Reciprocal of the uniform quantizer step in Q15 (32768 / qstep).
inline constexpr i16 kQuantRecip = 32768 / 16;

KernelSpec make_dct_quant_spec(u64 seed = 1);

/// Golden 2-D fixed-point DCT + quantization matching the kernel.
void dct_quant_reference(const i16* in, i16* out);

} // namespace majc::kernels
