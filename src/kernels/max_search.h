// Maximum search over a 40-element float array (Table 2, row 6),
// returning both the maximum value and its index.
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kMaxSearchN = 40;

KernelSpec make_max_search_spec(u64 seed = 1);

/// Golden model with the kernel's two-lane scan order and tie-breaking.
void max_search_reference(const float* x, u32 n, float& best, u32& index);

} // namespace majc::kernels
