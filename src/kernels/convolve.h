// 5x5 convolution over a 512x512 image (Table 1, row 5; paper: 1.65 Mcycles).
//
// The kernel is the separable binomial-like filter {1,2,3,2,1} x {1,2,3,2,1}
// on int16 pixels, evaluated as a column pass fused into the row pass: each
// iteration produces two output pixels with SIMD multiply-accumulates
// (PMADDH) on packed pixel pairs, computes the next column-sum pair one
// iteration ahead (software pipelining), and aligns odd-phase pairs with
// funnel shifts. Coefficients ride in broadcast registers; ranges are
// proven overflow-free so wrap arithmetic is exact.
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kConvW = 512;
inline constexpr u32 kConvH = 512;
inline constexpr u32 kConvOutW = kConvW - 4;  // 508
inline constexpr u32 kConvOutH = kConvH - 4;
inline constexpr i16 kConvCoef[5] = {1, 2, 3, 2, 1};

/// Golden separable convolution (exact integer).
void convolve5x5_reference(const std::vector<i16>& img, std::vector<i16>& out);

KernelSpec make_convolve_spec(u64 seed = 1);

} // namespace majc::kernels
