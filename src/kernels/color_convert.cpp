#include "src/kernels/color_convert.h"

#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Register map:
//  g8 = chroma bias pair, g18 = post-shift lane mask 0x00FF00FF
//  g9..g17 = coefficient broadcast pairs (component-major: Y:rgb, Cb:rgb,
//            Cr:rgb)
//  g20..g22 = R/G/B plane bases, g23..g25 = Y/Cb/Cr plane bases
//  g26 = shared byte index, g33 = pair counter
//  g30..g32 = loaded R/G/B pair words, g40..g42 = Y/Cb/Cr accumulators

std::string coef_pair_setup(u32 reg, i16 c) {
  const u32 cc = static_cast<u16>(c);
  return "sethi " + g(reg) + ", " + imm(cc) + "\norlo " + g(reg) + ", " +
         imm(cc) + "\n";
}

} // namespace

void color_convert_reference(const std::vector<i16>& r,
                             const std::vector<i16>& gch,
                             const std::vector<i16>& bch, std::vector<i16>& y,
                             std::vector<i16>& cb, std::vector<i16>& cr) {
  const std::size_t n = r.size();
  y.resize(n);
  cb.resize(n);
  cr.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const i32 rv = r[i], gv = gch[i], bv = bch[i];
    y[i] = static_cast<i16>(
        static_cast<u32>(kCcCoef[0][0] * rv + kCcCoef[0][1] * gv +
                         kCcCoef[0][2] * bv) >> 7 & 0xFF);
    cb[i] = static_cast<i16>(
        static_cast<u32>(kCcBias + kCcCoef[1][0] * rv + kCcCoef[1][1] * gv +
                         kCcCoef[1][2] * bv) >> 7 & 0xFF);
    cr[i] = static_cast<i16>(
        static_cast<u32>(kCcBias + kCcCoef[2][0] * rv + kCcCoef[2][1] * gv +
                         kCcCoef[2][2] * bv) >> 7 & 0xFF);
  }
}

KernelSpec make_color_convert_spec(u64 seed) {
  std::vector<i16> r(kCcPixels), gg(kCcPixels), bb(kCcPixels);
  SplitMix64 rng(seed ^ 0xCC);
  for (u32 i = 0; i < kCcPixels; ++i) {
    r[i] = static_cast<i16>(rng.next_below(256));
    gg[i] = static_cast<i16>(rng.next_below(256));
    bb[i] = static_cast<i16>(rng.next_below(256));
  }

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 32");
  // Plane bases are staggered by 2496 bytes each. Six equal 512 KB planes
  // walked with a common index would otherwise (a) land every stream and
  // its prefetch window in the same 4-way D$ sets and (b) march all six
  // fill streams through the same DRDRAM bank, turning every line fill
  // into a serialized row miss. 2496 = 2048 + 448 advances each plane one
  // bank (distinct banks for all six streams, page hits within each) and
  // 78 cache sets (stream windows at worst pairwise-overlapping, well
  // within 4 ways). This is the data placement a performance programmer
  // does for a banked-DRAM machine, so the kernel does it too.
  for (const char* plane : {"rp", "gp", "bp", "yp", "cbp", "crp"}) {
    b.label(plane);
    b.line("  .space " + imm(kCcPixels * 2));
    b.line("  .space 2496");
    b.line("  .align 32");
  }
  b.line(".code");
  b.line(coef_pair_setup(8, kCcBias));
  for (u32 c = 0; c < 3; ++c) {
    for (u32 k = 0; k < 3; ++k) {
      b.line(coef_pair_setup(9 + 3 * c + k, kCcCoef[c][k]));
    }
  }
  b.line("sethi g18, 0x00ff");
  b.line("orlo g18, 0x00ff");
  b.line(load_addr(20, "rp"));
  b.line(load_addr(21, "gp"));
  b.line(load_addr(22, "bp"));
  b.line(load_addr(23, "yp"));
  b.line(load_addr(24, "cbp"));
  b.line(load_addr(25, "crp"));
  // Four pixel pairs per loop body (unroll x4): FU0 streams 12 loads,
  // 12 stores and 6 block prefetches (3 input + 3 output planes, ~12 lines
  // ahead) while the twelve SIMD chains fill FU1..FU3 — the prefetch usage
  // the paper highlights for image kernels with predictable access.
  b.line("setlo g26, 0");    // index set 0
  b.line("setlo g28, 4");    // index set 1
  b.line("setlo g29, 8");    // index set 2
  b.line("setlo g34, 12");   // index set 3
  b.line("setlo g27, 384");  // prefetch index
  b.line("sethi g33, " + imm((kCcPixels / 8) >> 16));
  b.line("orlo g33, " + imm((kCcPixels / 8) & 0xFFFF));
  b.line(tick_start());

  b.label("pix");
  {
    const char* idx[4] = {"g26", "g28", "g29", "g34"};
    // Per-set registers: loads (R,G,B) and accumulators (Y,Cb,Cr).
    const u32 ld[4][3] = {{30, 31, 32}, {50, 51, 52}, {60, 61, 62},
                          {70, 71, 72}};
    const u32 ac[4][3] = {{40, 41, 42}, {43, 44, 45}, {54, 55, 56},
                          {57, 58, 59}};
    PacketScheduler sched;
    u32 last_store = 0;
    for (u32 s = 0; s < 4; ++s) {
      const u32 base = 3 * s;
      u32 lp[3];
      for (u32 c = 0; c < 3; ++c) {
        lp[c] = sched.place(std::string("ldw ") + g(ld[s][c]) + ", g2" +
                                std::to_string(c) + ", " + idx[s],
                            0, base + c);
      }
      sched.place("mov " + g(ac[s][1]) + ", g8", 2, base);
      sched.place("mov " + g(ac[s][2]) + ", g8", 3, base);
      u32 done = 0;
      for (u32 comp = 0; comp < 3; ++comp) {
        const u32 fu = comp + 1;
        const u32 a = ac[s][comp];
        const std::string first = comp == 0 ? "pmulh " : "pmaddh ";
        u32 p = sched.place(
            first + g(a) + ", " + g(ld[s][0]) + ", " + g(9 + 3 * comp), fu,
            lp[0] + 2);
        p = sched.place("pmaddh " + g(a) + ", " + g(ld[s][1]) + ", " +
                            g(10 + 3 * comp),
                        fu, std::max(p + 2, lp[1] + 2));
        p = sched.place("pmaddh " + g(a) + ", " + g(ld[s][2]) + ", " +
                            g(11 + 3 * comp),
                        fu, std::max(p + 2, lp[2] + 2));
        p = sched.place("srli " + g(a) + ", " + g(a) + ", 7", fu, p + 2);
        p = sched.place("and " + g(a) + ", " + g(a) + ", g18", fu, p + 1);
        done = std::max(done, p);
      }
      for (u32 c = 0; c < 3; ++c) {
        last_store = std::max(
            last_store,
            sched.place(std::string("stw.na ") + g(ac[s][c]) + ", g2" +
                            std::to_string(3 + c) + ", " + idx[s],
                        0, done + 3));
      }
    }
    // Block prefetches ~12 lines ahead on the input planes (outputs use
    // non-allocating write-combined stores and need no fills).
    for (u32 pl = 0; pl < 3; ++pl) {
      sched.place("pref g0, g2" + std::to_string(pl) + ", g27", 0, 12);
    }
    // Index bumps after every store that reads them; loop control last.
    sched.place("addi g26, g26, 16", 1, last_store + 1);
    sched.place("addi g28, g28, 16", 2, last_store + 1);
    sched.place("addi g29, g29, 16", 3, last_store + 1);
    sched.place("addi g34, g34, 16", 1, last_store + 2);
    sched.place("addi g27, g27, 16", 2, last_store + 2);
    sched.place("addi g33, g33, -1", 3, last_store + 2);
    sched.emit(b);
  }
  b.line("bnz g33, pix");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "color_convert";
  spec.source = b.str();
  spec.max_packets = 400'000'000;
  spec.setup = [r, gg, bb](sim::MemoryBus& mem, const masm::Image& img) {
    auto wr = [&](const char* sym, const std::vector<i16>& v) {
      mem.write(img.symbol(sym),
                {reinterpret_cast<const u8*>(v.data()), v.size() * 2});
    };
    wr("rp", r);
    wr("gp", gg);
    wr("bp", bb);
  };
  spec.validate = [r, gg, bb](sim::MemoryBus& mem, const masm::Image& img,
                              std::string& msg) {
    std::vector<i16> y, cb, cr;
    color_convert_reference(r, gg, bb, y, cb, cr);
    const Addr ya = img.symbol("yp");
    const Addr cba = img.symbol("cbp");
    const Addr cra = img.symbol("crp");
    for (u32 i = 0; i < kCcPixels; i += 61) {  // strided full-range sample
      const i16 gy = static_cast<i16>(mem.read_u16(ya + 2 * i));
      const i16 gcb = static_cast<i16>(mem.read_u16(cba + 2 * i));
      const i16 gcr = static_cast<i16>(mem.read_u16(cra + 2 * i));
      if (gy != y[i] || gcb != cb[i] || gcr != cr[i]) {
        msg = "pixel " + std::to_string(i) + ": got (" + std::to_string(gy) +
              "," + std::to_string(gcb) + "," + std::to_string(gcr) +
              "), expected (" + std::to_string(y[i]) + "," +
              std::to_string(cb[i]) + "," + std::to_string(cr[i]) + ")";
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
