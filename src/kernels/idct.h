// 8x8 inverse DCT (Table 1, row 1): fixed-point two-pass matrix transform
// evaluated with SIMD dot products. Measured steady-state per block.
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

KernelSpec make_idct_spec(u64 seed = 1);

/// Golden 2-D fixed-point IDCT matching the kernel bit-for-bit.
void idct8x8_reference(const i16* in, i16* out);

} // namespace majc::kernels
