#include "src/kernels/max_search.h"

#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Two-lane compare/select search: lane A scans even indices on FU1, lane B
// scans odd indices on FU2; index selects ride on FU3. Each lane's serial
// chain is fcmplt (4 cycles) -> cmovnz best -> next fcmplt, giving the
// ~3 cycles/element the paper's 126-cycle figure implies. FU0 streams the
// 40 loads.
//
// Register map: g8/g9 = lane bests, g10/g11 = lane best indices,
// g12.. = element buffers (rotating, 8 regs/lane interleaved by parity),
// g40/g41 = compare flags, g42 = scratch index constant, g4 = array base,
// g6 = result ptr.

std::string ebuf(u32 i) { return g(12 + i % 8); }

} // namespace

void max_search_reference(const float* x, u32 n, float& best, u32& index) {
  // Lane A: even indices; lane B: odd; strict > updates; A wins ties.
  float ba = x[0];
  u32 ia = 0;
  for (u32 i = 2; i < n; i += 2) {
    if (ba < x[i]) {
      ba = x[i];
      ia = i;
    }
  }
  float bb = x[1];
  u32 ib = 1;
  for (u32 i = 3; i < n; i += 2) {
    if (bb < x[i]) {
      bb = x[i];
      ib = i;
    }
  }
  if (ba < bb) {
    best = bb;
    index = ib;
  } else {
    best = ba;
    index = ia;
  }
}

KernelSpec make_max_search_spec(u64 seed) {
  const auto x = random_floats(kMaxSearchN, seed ^ 0x3A, -100.0, 100.0);

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 4");
  b.label("xarr");
  b.line(float_data(x));
  b.label("res");
  b.line("  .space 8");
  b.line(".code");
  b.line(load_addr(4, "xarr"));
  b.line(load_addr(6, "res"));
  b.line(load_addr(90, "ticks"));
  // Two passes: the first warms the I$/D$, the second is measured (the
  // loop top re-stamps ticks+0, so ticks holds the warm pass).
  b.line("setlo g44, 2");
  b.label("pass");
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");

  // Seed the lanes with the first two elements.
  b.line("ldwi g8, g4, 0");
  b.line("ldwi g9, g4, 4");
  b.line("setlo g10, 0 | setlo g11, 1 | nop | addi g44, g44, -1");

  // Schedule: element i (i >= 2) occupies a 3-packet slot; its lane's
  // fcmplt issues, and 4 packets later the value/index conditional moves
  // retire while the other lane's chain interleaves.
  const u32 n = kMaxSearchN;
  // Flat emission with explicit per-packet slots.
  struct Slot {
    std::string s[4];
  };
  const u32 total = 3 * n + 16;
  std::vector<Slot> sched(total);
  auto put = [&](u32 pkt, u32 fu, const std::string& op) {
    sched[pkt].s[fu] = op;
  };
  // Element i is loaded at packet p_load(i) = (i-2); its compare sits at
  // 3*(i-2)/2 + 4 per lane cadence below.
  for (u32 i = 2; i < n; ++i) {
    const bool laneA = (i % 2) == 0;
    const u32 slot = (i - 2) / 2;     // per-lane sequence number
    const u32 base = 8 + 6 * slot + (laneA ? 0 : 3);
    // Just-in-time load, two packets ahead of the compare.
    put(base - 2, 0, "ldwi " + ebuf(i) + ", g4, " + imm(4 * i));
    const std::string best = laneA ? "g8" : "g9";
    const std::string bidx = laneA ? "g10" : "g11";
    const std::string flag = laneA ? "g40" : "g41";
    const std::string iconst = laneA ? "g42" : "g43";
    const u32 cfu = laneA ? 1 : 2;
    put(base, cfu, "fcmplt " + flag + ", " + best + ", " + ebuf(i));
    put(base + 1, 3, "setlo " + iconst + ", " + imm(i));
    put(base + 4, cfu, "cmovnz " + best + ", " + ebuf(i) + ", " + flag);
    // The flag crosses to FU3 through write-back (+2), so the index select
    // sits two packets behind the value select.
    put(base + 6, 3, "cmovnz " + bidx + ", " + iconst + ", " + flag);
  }
  for (u32 p = 0; p < total; ++p) {
    const auto& s = sched[p].s;
    if (s[0].empty() && s[1].empty() && s[2].empty() && s[3].empty()) continue;
    b.packet({s[0].empty() ? "nop" : s[0], s[1].empty() ? "nop" : s[1],
              s[2].empty() ? "nop" : s[2], s[3].empty() ? "nop" : s[3]});
  }

  // Merge lanes: B wins only if strictly greater.
  b.packet({"nop", "fcmplt g40, g8, g9"});
  b.packet({"nop", "cmovnz g8, g9, g40"});
  b.packet({"nop", "nop", "nop", "cmovnz g10, g11, g40"});
  b.line("stwi g8, g6, 0");
  b.line("stwi g10, g6, 4");
  b.line("bnz g44, pass");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "maxsearch40";
  spec.source = b.str();
  spec.validate = [x](sim::MemoryBus& mem, const masm::Image& img,
                      std::string& msg) {
    float best;
    u32 index;
    max_search_reference(x.data(), kMaxSearchN, best, index);
    float got;
    const u32 raw = mem.read_u32(img.symbol("res"));
    std::memcpy(&got, &raw, 4);
    const u32 gidx = mem.read_u32(img.symbol("res") + 4);
    if (got != best || gidx != index) {
      msg = "got (" + std::to_string(got) + ", " + std::to_string(gidx) +
            "), expected (" + std::to_string(best) + ", " +
            std::to_string(index) + ")";
      return false;
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
