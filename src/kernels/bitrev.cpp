#include "src/kernels/bitrev.h"

#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"
#include "src/kernels/fft.h"

namespace majc::kernels {
namespace {

constexpr u32 kN = 1024;

std::vector<u32> swap_offsets() {
  std::vector<u32> offs;
  for (u32 i = 0; i < kN; ++i) {
    const u32 j = bit_reverse10(i);
    if (i < j) {
      offs.push_back(i * 8);
      offs.push_back(j * 8);
    }
  }
  return offs;  // 496 pairs
}

} // namespace

KernelSpec make_bitrev_spec(u64 seed) {
  const auto offs = swap_offsets();
  const u32 swaps = static_cast<u32>(offs.size() / 2);  // 496
  std::vector<u32> words(kN * 2);
  SplitMix64 rng(seed ^ 0xB17);
  for (auto& w : words) w = rng.next_u32();

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("swaps");
  b.line(word_data(offs));
  b.line("  .align 8");
  b.label("xarr");
  b.line(word_data(words));
  b.line(".code");
  b.line(load_addr(4, "swaps"));
  b.line(load_addr(5, "xarr"));
  // Warm the D$: the paper's 2484-cycle figure is a steady-state reorder
  // rate, so first-touch DRDRAM misses on the 8 KB array and 4 KB swap
  // table are taken before the measured region.
  b.line("mov g8, g5");
  b.line("setlo g9, 256");
  b.label("warmx");
  b.line("ldwi g10, g8, 0");
  b.line("addi g8, g8, 32");
  b.line("addi g9, g9, -1");
  b.line("bnz g9, warmx");
  b.line("mov g8, g4");
  b.line("setlo g9, " + imm((swaps * 8 + 31) / 32));
  b.label("warmt");
  b.line("ldwi g10, g8, 0");
  b.line("addi g8, g8, 32");
  b.line("addi g9, g9, -1");
  b.line("bnz g9, warmt");
  b.line("setlo g7, " + imm(swaps / 4));
  b.line(tick_start());
  b.label("blk");
  b.line("ldgi g24, g4, 0");  // four (ioff, joff) entries
  b.packet({"nop", "add g8, g5, g24", "add g9, g5, g25", "add g10, g5, g26"});
  b.packet({"nop", "add g11, g5, g27", "add g12, g5, g28",
            "add g13, g5, g29"});
  b.packet({"nop", "add g14, g5, g30", "add g15, g5, g31"});
  b.line("ldl g32, g8");
  b.line("ldl g34, g9");
  b.line("ldl g36, g10");
  b.line("ldl g38, g11");
  b.line("stl g32, g9");
  b.line("stl g34, g8");
  b.line("ldl g40, g12");
  b.line("ldl g42, g13");
  b.line("stl g36, g11");
  b.line("stl g38, g10");
  b.line("ldl g44, g14");
  b.line("ldl g46, g15");
  b.line("stl g40, g13");
  b.line("stl g42, g12");
  b.line("stl g44, g15");
  b.packet({"stl g46, g14", "addi g4, g4, 32", "addi g7, g7, -1"});
  b.line("bnz g7, blk");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "bitrev1024";
  spec.source = b.str();
  spec.validate = [words](sim::MemoryBus& mem, const masm::Image& img,
                          std::string& msg) {
    const Addr xa = img.symbol("xarr");
    for (u32 i = 0; i < kN; ++i) {
      const u32 j = bit_reverse10(i);
      // Element now at position i must be the original element j.
      const u32 re = mem.read_u32(xa + 8 * i);
      const u32 im = mem.read_u32(xa + 8 * i + 4);
      if (re != words[2 * j] || im != words[2 * j + 1]) {
        msg = "element " + std::to_string(i) + " is not original element " +
              std::to_string(j);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
