#include "src/kernels/lms.h"

#include <cmath>
#include <cstring>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

constexpr u32 kSteps = 3;  // two warmup passes + one measured pass

// Register map:
//   g8..g23  weights w[0..15]
//   g24..g39 window: g(24+k) = x[n-k]
//   g40 = d ptr, g41 = x ptr, g42 = mu, g43 = d sample, g44 = y, g45 = e,
//   g46..g51 = reduction staging, g7 = step counter, g4 = out ptr,
//   g90/g91 = ticks.
// Locals per FU: l0/l1 = alternating dot-product accumulators.

std::string w(u32 k) { return g(8 + k); }
std::string win(u32 k) { return g(24 + k); }

} // namespace

void lms_reference(LmsState& st, const float* x, const float* d, float mu,
                   u32 n) {
  for (u32 i = 0; i < n; ++i) {
    // Slide the window (parallel-read semantics: all reads before writes).
    for (u32 k = kLmsTaps - 1; k >= 1; --k) st.window[k] = st.window[k - 1];
    st.window[0] = x[i];
    // Dot product with the kernel's accumulator structure: tap k goes to
    // FU (k%3), alternating between that FU's two accumulators.
    float acc[3][2] = {};
    u32 cnt[3] = {};
    for (u32 k = 0; k < kLmsTaps; ++k) {
      const u32 f = k % 3;
      acc[f][cnt[f] % 2] = std::fmaf(st.w[k], st.window[k], acc[f][cnt[f] % 2]);
      ++cnt[f];
    }
    const float s0 = acc[0][0] + acc[0][1];
    const float s1 = acc[1][0] + acc[1][1];
    const float s2 = acc[2][0] + acc[2][1];
    st.y = (s0 + s1) + s2;
    st.e = mu * (d[i] - st.y);
    for (u32 k = 0; k < kLmsTaps; ++k) {
      st.w[k] = std::fmaf(st.e, st.window[k], st.w[k]);
    }
  }
}

KernelSpec make_lms_spec(u64 seed) {
  const auto w0 = random_floats(kLmsTaps, seed ^ 0x11, -0.5, 0.5);
  const auto x = random_floats(kSteps, seed ^ 0x22, -1.0, 1.0);
  const auto d = random_floats(kSteps, seed ^ 0x33, -1.0, 1.0);
  const float mu = 0.03125f;

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 4");
  b.label("warr");
  b.line(float_data(w0));
  b.label("xin");
  b.line(float_data(x));
  b.label("din");
  b.line(float_data(d));
  b.label("muv");
  b.line("  .float " + flit(mu));
  b.label("wout");
  b.line("  .space " + imm(4 * kLmsTaps));
  b.label("yout");
  b.line("  .space 8");
  b.line(".code");

  b.line(load_addr(3, "warr"));
  b.line("ldgi g8, g3, 0");
  b.line("ldgi g16, g3, 32");
  for (u32 k = 0; k < kLmsTaps; ++k) {  // zero window
    b.line((k % 3 == 0 ? std::string("nop | ") : std::string()) +
           "mov " + win(k) + ", g0");
  }
  b.line(load_addr(41, "xin"));
  b.line(load_addr(40, "din"));
  b.line(load_addr(4, "muv"));
  b.line("ldwi g42, g4, 0");
  b.line("setlo g7, " + imm(kSteps));
  b.line(load_addr(90, "ticks"));

  b.label("step");
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");
  // Slide the window: pure register moves, three per packet; the VLIW
  // parallel-read rule makes in-place shifting safe in any order.
  for (u32 k = kLmsTaps - 1; k >= 1; k -= 3) {
    std::string s1 = "mov " + win(k) + ", " + win(k - 1);
    std::string s2 = k >= 2 ? "mov " + win(k - 1) + ", " + win(k - 2) : "nop";
    std::string s3 = k >= 3 ? "mov " + win(k - 2) + ", " + win(k - 3) : "nop";
    b.packet({k == 15 ? "ldwi g43, g40, 0" : "nop", s1, s2, s3});
    if (k < 3) break;
  }
  b.packet({"ldwi " + win(0) + ", g41, 0", "nop", "nop", "nop"});
  // Clear the six accumulators.
  b.packet({"addi g41, g41, 4", "mov l0, g0", "mov l0, g0", "mov l0, g0"});
  b.packet({"addi g40, g40, 4", "mov l1, g0", "mov l1, g0", "mov l1, g0"});
  // Dot product: tap k on FU (k%3), alternating accumulators.
  for (u32 kk = 0; kk < kLmsTaps; kk += 3) {
    std::string s[3] = {"nop", "nop", "nop"};
    for (u32 f = 0; f < 3 && kk + f < kLmsTaps; ++f) {
      const u32 k = kk + f;
      s[f] = "fmadd " + l((k / 3) % 2) + ", " + w(k) + ", " + win(k);
    }
    b.packet({kk == 0 ? "addi g7, g7, -1" : "nop", s[0], s[1], s[2]});
  }
  // Reduce: s_f = l0 + l1 on each FU, then y = (s0 + s1) + s2 on FU1.
  b.packet({"nop", "fadd g46, l0, l1", "fadd g47, l0, l1",
            "fadd g48, l0, l1"});
  b.packet({"nop", "fadd g44, g46, g47"});
  b.packet({"nop", "fadd g44, g44, g48"});
  // e = mu * (d - y)
  b.packet({"nop", "fsub g45, g43, g44"});
  b.packet({"nop", "fmul g45, g42, g45"});
  // Weight update: w_k += e * window_k.
  for (u32 kk = 0; kk < kLmsTaps; kk += 3) {
    std::string s[3] = {"nop", "nop", "nop"};
    for (u32 f = 0; f < 3 && kk + f < kLmsTaps; ++f) {
      const u32 k = kk + f;
      s[f] = "fmadd " + w(k) + ", g45, " + win(k);
    }
    b.packet({"nop", s[0], s[1], s[2]});
  }
  b.line("bnz g7, step");
  b.line(tick_stop());

  // Spill results for validation.
  b.line(load_addr(3, "wout"));
  for (u32 k = 0; k < kLmsTaps; ++k) {
    b.line("stwi " + w(k) + ", g3, " + imm(4 * k));
  }
  b.line(load_addr(3, "yout"));
  b.line("stwi g44, g3, 0");
  b.line("stwi g45, g3, 4");
  b.line("halt");

  // Note: the addi g7 decrement sits in the first dot-product packet's FU0
  // slot; the loop counter is decremented exactly once per step because the
  // remaining dot-product packets carry nops there.
  KernelSpec spec;
  spec.name = "lms16";
  spec.source = b.str();
  spec.validate = [w0, x, d, mu](sim::MemoryBus& mem, const masm::Image& img,
                                 std::string& msg) {
    LmsState st{};
    std::memcpy(st.w, w0.data(), sizeof st.w);
    lms_reference(st, x.data(), d.data(), mu, kSteps);
    const auto rd = [&](Addr a) {
      float f;
      const u32 r = mem.read_u32(a);
      std::memcpy(&f, &r, 4);
      return f;
    };
    const Addr wa = img.symbol("wout");
    for (u32 k = 0; k < kLmsTaps; ++k) {
      if (rd(wa + 4 * k) != st.w[k]) {
        msg = "w[" + std::to_string(k) + "] = " + std::to_string(rd(wa + 4 * k)) +
              ", expected " + std::to_string(st.w[k]);
        return false;
      }
    }
    if (rd(img.symbol("yout")) != st.y || rd(img.symbol("yout") + 4) != st.e) {
      msg = "y/e mismatch";
      return false;
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
