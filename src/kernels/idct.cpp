#include "src/kernels/idct.h"

#include <array>

#include "src/kernels/dct_common.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

std::vector<i16> random_coeffs(u64 seed) {
  // Dequantized DCT coefficients: mostly small with a dominant DC term,
  // bounded so all fixed-point intermediate ranges hold (|x| < 1024).
  std::vector<i16> c(64);
  SplitMix64 rng(seed ^ 0x1DC7);
  c[0] = static_cast<i16>(rng.next_range(-1000, 1000));
  for (u32 i = 1; i < 64; ++i) {
    c[i] = static_cast<i16>(rng.next_range(-200, 200));
  }
  return c;
}

} // namespace

void idct8x8_reference(const i16* in, i16* out) {
  const auto m = idct_matrix();
  std::array<i16, 64> tmp;
  dct_pass_reference(m, in, tmp.data());
  dct_pass_reference(m, tmp.data(), out);
}

KernelSpec make_idct_spec(u64 seed) {
  const auto coeffs = random_coeffs(seed);
  const auto m = idct_matrix();

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 8");
  b.label("marr");
  b.line(half_data({m.begin(), m.end()}));
  b.line("  .align 8");
  b.label("blk");
  b.line(half_data(coeffs));
  b.line("  .align 8");
  b.label("tmp");
  b.line("  .space 128");
  b.line("  .align 8");
  b.label("outp");
  b.line("  .space 128");
  b.line(".code");
  emit_matrix_preload(b, "marr");
  b.line("setlo g49, " + imm(1 << (kDctShift - 1)));  // rounding constant
  b.line(load_addr(40, "blk"));
  b.line(load_addr(41, "tmp"));
  b.line(load_addr(42, "outp"));
  b.line(load_addr(90, "ticks"));
  // Three passes over the same block: the third is the measured,
  // cache-warm transform (the paper's per-block steady-state figure).
  b.line("setlo g46, 3");
  b.label("block");
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");
  // Row pass: blk -> tmp (transposed).
  b.line("mov g4, g40 | mov g5, g41 | addi g46, g46, -1");
  emit_dct_pass(b, /*quantize=*/false);
  // Column pass: tmp -> outp (transposed back to natural order).
  b.line("mov g4, g41 | mov g5, g42");
  emit_dct_pass(b, /*quantize=*/false);
  b.line("bnz g46, block");
  b.line(tick_stop());
  b.line("halt");

  KernelSpec spec;
  spec.name = "idct8x8";
  spec.source = b.str();
  spec.validate = [coeffs](sim::MemoryBus& mem, const masm::Image& img,
                           std::string& msg) {
    std::array<i16, 64> expect;
    idct8x8_reference(coeffs.data(), expect.data());
    const Addr oa = img.symbol("outp");
    for (u32 i = 0; i < 64; ++i) {
      const i16 got = static_cast<i16>(mem.read_u16(oa + 2 * i));
      if (got != expect[i]) {
        msg = "out[" + std::to_string(i) + "] = " + std::to_string(got) +
              ", expected " + std::to_string(expect[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
