#include "src/kernels/motion_est.h"

#include <cstdlib>

#include "src/kernels/codegen.h"
#include "src/kernels/dsp_data.h"

namespace majc::kernels {
namespace {

// Search geometry shared by kernel and golden model.
constexpr int kSteps[4] = {8, 4, 2, 1};
constexpr int kDirs[8][2] = {{-1, -1}, {0, -1}, {1, -1}, {-1, 0},
                             {1, 0},   {-1, 1}, {0, 1},  {1, 1}};

// Register map (globals):
//  g4 = SAD row-window base (aligned), g5 = shift s, g6 = 32 - s,
//  g7 = row pointer, g8/g9 = best mx/my, g10/g11 = trial mx/my,
//  g12..g17 = scratch, g18 = best SAD, g40 = SAD return,
//  g41..g43 = per-FU partial staging, g13 = refbase + center offset,
//  g16 = const 32, g19 = result ptr, g50..g54 = row word buffer,
//  g64..g71 = preload staging.
// Locals: cur-block word i lives on FU (i%3)+1 at l(i/3);
//  l28 = SAD accumulator, l29..l31 = funnel temporaries.

u32 cur_fu(u32 word) { return 1 + word % 3; }
std::string cur_local(u32 word) { return l(word / 3); }

/// Row-window packet scheduler: each 16-pixel row gets a window of packets
/// whose FU0 slots load the NEXT row's words (double-buffered between
/// g50..g54 and g55? no: rows alternate word buffers via `buf`), while
/// FU1-3 slots run the CURRENT row's alignment + PDIST ops on words loaded
/// in the previous window. Compute therefore never overtakes its loads.
class RowScheduler {
public:
  /// Place `op` on functional unit `fu` (1..3) no earlier than `earliest`
  /// (absolute packet index); returns the chosen packet.
  u32 place(const std::string& op, u32 fu, u32 earliest) {
    u32 p = earliest;
    while (used(p, fu)) ++p;
    at(p)[fu] = op;
    return p;
  }

  /// Place on any compute FU, earliest free slot.
  u32 place_any(const std::string& op, u32 earliest) {
    for (u32 p = earliest;; ++p) {
      for (u32 fu = 1; fu <= 3; ++fu) {
        if (!used(p, fu)) {
          at(p)[fu] = op;
          return p;
        }
      }
    }
  }

  u32 place_fu0(const std::string& op, u32 earliest) {
    u32 p = earliest;
    while (used(p, 0)) ++p;
    at(p)[0] = op;
    return p;
  }

  void emit(AsmBuilder& b) const {
    for (const auto& s : pkts_) {
      if (s[0].empty() && s[1].empty() && s[2].empty() && s[3].empty()) {
        continue;
      }
      b.packet({s[0].empty() ? "nop" : s[0], s[1].empty() ? "nop" : s[1],
                s[2].empty() ? "nop" : s[2], s[3].empty() ? "nop" : s[3]});
    }
  }

private:
  std::array<std::string, 4>& at(u32 p) {
    if (p >= pkts_.size()) pkts_.resize(p + 1);
    return pkts_[p];
  }
  bool used(u32 p, u32 fu) {
    return p < pkts_.size() && !pkts_[p][fu].empty();
  }

  std::vector<std::array<std::string, 4>> pkts_;
};

/// Emit one SAD subroutine over the 16x16 block.
/// `aligned` skips the funnel shifts (candidate address word-aligned).
void emit_sad(AsmBuilder& b, const std::string& name, bool aligned) {
  b.label(name);
  b.line("mov g7, g4");
  RowScheduler sched;
  const u32 words_per_row = aligned ? 4 : 5;
  const u32 window = aligned ? 5 : 7;  // packets per row
  // Row word buffers alternate between g45..g49 and g50..g54 so row r's
  // compute (scheduled in row r+1's window) never races row r+1's loads.
  auto wreg = [&](u32 row, u32 k) { return g((row % 2 ? 50 : 45) + k); };

  // Row 0 loads occupy a dedicated prologue window.
  for (u32 k = 0; k < words_per_row; ++k) {
    sched.place_fu0("ldwi " + wreg(0, k) + ", g7, " + imm(4 * k), 0);
  }
  sched.place_fu0("addi g7, g7, " + imm(kMeStride), 0);

  for (u32 r = 0; r < kMeBlock; ++r) {
    const u32 base = (r + 1) * window;
    // Loads of row r+1 in this window.
    if (r + 1 < kMeBlock) {
      for (u32 k = 0; k < words_per_row; ++k) {
        sched.place_fu0("ldwi " + wreg(r + 1, k) + ", g7, " + imm(4 * k),
                        base);
      }
      sched.place_fu0("addi g7, g7, " + imm(kMeStride), base);
    }
    // Compute of row r (operands loaded last window).
    for (u32 k = 0; k < 4; ++k) {
      const u32 word = r * 4 + k;
      const u32 owner = cur_fu(word);
      if (aligned) {
        sched.place("pdist l28, " + wreg(r, k) + ", " + cur_local(word),
                    owner, base);
        continue;
      }
      const std::string srlT = g(59 + 2 * k);
      const std::string sllT = g(60 + 2 * k);
      const std::string orT = g(55 + k);
      const u32 p1 = sched.place_any("srl " + srlT + ", " + wreg(r, k) + ", g5",
                                     base);
      const u32 p2 = sched.place_any(
          "sll " + sllT + ", " + wreg(r, k + 1) + ", g6", base);
      const u32 p3 = sched.place("or " + orT + ", " + srlT + ", " + sllT,
                                 owner, std::max(p1, p2) + 3);
      sched.place("pdist l28, " + orT + ", " + cur_local(word), owner, p3 + 1);
    }
  }
  sched.emit(b);
  // Reduce the three accumulators and clear them for the next call.
  b.packet({"nop", "mov g41, l28", "mov g42, l28", "mov g43, l28"});
  b.packet({"nop", "mov l28, g0", "mov l28, g0", "mov l28, g0"});
  b.line("add g40, g41, g42");
  b.line("add g40, g40, g43");
  b.line("ret");
}

/// Emit evaluation of the candidate at (best + step*dir); updates the best
/// (g8, g9, g18) on strict improvement.
void emit_candidate(AsmBuilder& b, u32 id, int ddx, int ddy) {
  const std::string tag = std::to_string(id);
  if (ddx == 0 && ddy == 0) {
    b.line("mov g10, g8 | mov g11, g9");
  } else {
    b.packet({"nop", "addi g10, g8, " + imm(ddx), "addi g11, g9, " + imm(ddy)});
  }
  // Byte address of the candidate window origin.
  b.packet({"nop", "slli g12, g11, 6"});
  b.packet({"nop", "add g12, g12, g13"});
  b.packet({"nop", "add g14, g12, g10"});
  b.packet({"nop", "andi g15, g14, 3", "andi g4, g14, -4"});
  b.packet({"nop", "slli g5, g15, 3"});
  b.packet({"nop", "sub g6, g16, g5"});
  b.line("bz g15, al" + tag);
  b.line("call sad_u");
  b.line("b dn" + tag);
  b.label("al" + tag);
  b.line("call sad_a");
  b.label("dn" + tag);
  b.line("cmpltu g17, g40, g18");
  b.line("cmovnz g18, g40, g17");
  b.packet({"nop", "cmovnz g8, g10, g17", "cmovnz g9, g11, g17"});
}

} // namespace

void make_me_frames(u64 seed, std::vector<u8>& ref, std::vector<u8>& cur) {
  ref.assign(kMeFrame * kMeStride, 0);
  cur.assign(kMeBlock * kMeBlock, 0);
  SplitMix64 rng(seed ^ 0x3E);
  // Smooth-ish reference texture.
  for (u32 y = 0; y < kMeFrame; ++y) {
    for (u32 x = 0; x < kMeFrame; ++x) {
      ref[y * kMeStride + x] = static_cast<u8>(
          128 + 60 * ((x / 7 + y / 5) % 2) + rng.next_below(24));
    }
  }
  // Current block: a displaced crop plus noise -> a real optimum exists.
  const i32 tx = rng.next_range(-12, 12);
  const i32 ty = rng.next_range(-12, 12);
  for (u32 y = 0; y < kMeBlock; ++y) {
    for (u32 x = 0; x < kMeBlock; ++x) {
      const u32 sy = static_cast<u32>(static_cast<i32>(kMeCenter + y) + ty);
      const u32 sx = static_cast<u32>(static_cast<i32>(kMeCenter + x) + tx);
      const int noisy = ref[sy * kMeStride + sx] +
                        static_cast<int>(rng.next_below(9)) - 4;
      cur[y * kMeBlock + x] =
          static_cast<u8>(noisy < 0 ? 0 : (noisy > 255 ? 255 : noisy));
    }
  }
}

MeResult motion_search_reference(const std::vector<u8>& ref,
                                 const std::vector<u8>& cur) {
  auto sad = [&](i32 mx, i32 my) {
    u32 acc = 0;
    for (u32 y = 0; y < kMeBlock; ++y) {
      for (u32 x = 0; x < kMeBlock; ++x) {
        const i32 rv = ref[static_cast<u32>(static_cast<i32>(
                               (kMeCenter + y + my)) * static_cast<i32>(kMeStride)) +
                           static_cast<u32>(static_cast<i32>(kMeCenter + x) + mx)];
        const i32 cv = cur[y * kMeBlock + x];
        acc += static_cast<u32>(std::abs(rv - cv));
      }
    }
    return acc;
  };
  MeResult best{0, 0, sad(0, 0)};
  for (int step : kSteps) {
    const MeResult center = best;
    for (const auto& d : kDirs) {
      const i32 mx = center.mx + step * d[0];
      const i32 my = center.my + step * d[1];
      const u32 s = sad(mx, my);
      if (s < best.sad) best = {mx, my, s};
    }
  }
  return best;
}

KernelSpec make_motion_est_spec(u64 seed) {
  std::vector<u8> ref, cur;
  make_me_frames(seed, ref, cur);

  AsmBuilder b;
  b.line(".data");
  b.line("ticks: .space 8");
  b.line("  .align 32");
  b.label("reff");
  b.line(byte_data(ref));
  b.line("  .align 32");
  b.label("curb");
  b.line(byte_data(cur));
  b.line("  .align 8");
  b.label("res");
  b.line("  .space 12");
  b.line(".code");
  b.line("b main");

  emit_sad(b, "sad_u", /*aligned=*/false);
  emit_sad(b, "sad_a", /*aligned=*/true);

  b.label("main");
  // Preload the current block into FU locals via group loads.
  b.line(load_addr(3, "curb"));
  for (u32 grp = 0; grp < 8; ++grp) {
    const u32 off = grp * 32;
    if (off <= 255) {
      b.line("ldgi g64, g3, " + imm(off));
    } else {
      b.line("setlo g12, " + imm(off));
      b.line("ldg g64, g3, g12");
    }
    for (u32 i = 0; i < 8; ++i) {
      const u32 word = grp * 8 + i;
      std::array<std::string, 4> s = {"nop", "nop", "nop", "nop"};
      s[cur_fu(word)] = "mov " + cur_local(word) + ", " + g(64 + i);
      b.packet({s[0], s[1], s[2], s[3]});
    }
  }
  // Clear accumulators, set constants.
  b.packet({"nop", "mov l28, g0", "mov l28, g0", "mov l28, g0"});
  b.line(load_addr(12, "reff"));
  b.line("setlo g14, " + imm(kMeCenter * kMeStride + kMeCenter));
  b.line("add g13, g12, g14");
  b.line("setlo g16, 32");
  b.line(load_addr(19, "res"));
  b.line(load_addr(90, "ticks"));
  // Two search passes: the first warms the I$ (the unrolled search is ~3 KB
  // of code) and pulls the reference window into the D$; the measured pass
  // is the steady-state cost the paper reports.
  b.line("setlo g44, 2");
  b.label("pass");
  b.line("gettick g91");
  b.line("stwi g91, g90, 0");

  // Center evaluation seeds the best SAD.
  b.line("setlo g8, 0 | setlo g9, 0 | nop | addi g44, g44, -1");
  b.line("sethi g18, 0x7fff");
  b.line("orlo g18, 0xffff");
  u32 id = 0;
  emit_candidate(b, id++, 0, 0);
  for (int step : kSteps) {
    // Rounds restart from the current best (g8/g9 are live-updated, so the
    // step's eight trials must offset from the round-entry best; capture it).
    b.line("mov g20, g8 | mov g21, g9");
    for (const auto& d : kDirs) {
      b.packet({"nop", "addi g10, g20, " + imm(step * d[0]),
                "addi g11, g21, " + imm(step * d[1])});
      // Re-run the candidate body minus its own offset computation.
      const std::string tag = std::to_string(id++);
      b.packet({"nop", "slli g12, g11, 6"});
      b.packet({"nop", "add g12, g12, g13"});
      b.packet({"nop", "add g14, g12, g10"});
      b.packet({"nop", "andi g15, g14, 3", "andi g4, g14, -4"});
      b.packet({"nop", "slli g5, g15, 3"});
      b.packet({"nop", "sub g6, g16, g5"});
      b.line("bz g15, al" + tag);
      b.line("call sad_u");
      b.line("b dn" + tag);
      b.label("al" + tag);
      b.line("call sad_a");
      b.label("dn" + tag);
      b.line("cmpltu g17, g40, g18");
      b.line("cmovnz g18, g40, g17");
      b.packet({"nop", "cmovnz g8, g10, g17", "cmovnz g9, g11, g17"});
    }
  }
  b.line("bnz g44, pass");
  b.line(tick_stop());
  b.line("stwi g8, g19, 0");
  b.line("stwi g9, g19, 4");
  b.line("stwi g18, g19, 8");
  b.line("halt");

  KernelSpec spec;
  spec.name = "motion_est";
  spec.source = b.str();
  spec.validate = [ref, cur](sim::MemoryBus& mem, const masm::Image& img,
                             std::string& msg) {
    const MeResult expect = motion_search_reference(ref, cur);
    const Addr ra = img.symbol("res");
    const i32 mx = static_cast<i32>(mem.read_u32(ra));
    const i32 my = static_cast<i32>(mem.read_u32(ra + 4));
    const u32 sad = mem.read_u32(ra + 8);
    if (mx != expect.mx || my != expect.my || sad != expect.sad) {
      msg = "mv (" + std::to_string(mx) + "," + std::to_string(my) + ") sad " +
            std::to_string(sad) + ", expected (" + std::to_string(expect.mx) +
            "," + std::to_string(expect.my) + ") sad " +
            std::to_string(expect.sad);
      return false;
    }
    return true;
  };
  return spec;
}

} // namespace majc::kernels
