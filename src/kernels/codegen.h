// Small assembly-text builder used by kernels that generate unrolled code.
//
// The paper's kernels were hand-scheduled by Sun's engineers; ours are
// emitted by C++ generators, which makes unrolling, software pipelining and
// register allocation explicit and reviewable while still producing plain
// MAJC assembly that goes through the real assembler.
#pragma once

#include <array>
#include <initializer_list>
#include <sstream>
#include <vector>
#include <string>

#include "src/support/types.h"

namespace majc::kernels {

inline std::string g(u32 i) { return "g" + std::to_string(i); }
inline std::string l(u32 i) { return "l" + std::to_string(i); }
inline std::string imm(i64 v) { return std::to_string(v); }

class AsmBuilder {
public:
  /// Append one raw source line (a label, a directive, or a full packet).
  AsmBuilder& line(const std::string& s) {
    out_ << s << '\n';
    return *this;
  }

  /// Append a packet from slot strings; empty slots at the tail are dropped,
  /// interior gaps must be explicit "nop"s (slot position selects the FU).
  AsmBuilder& packet(std::initializer_list<std::string> slots) {
    bool first = true;
    for (const std::string& s : slots) {
      if (s.empty()) break;
      out_ << (first ? "" : " | ") << s;
      first = false;
    }
    out_ << '\n';
    return *this;
  }

  AsmBuilder& label(const std::string& name) {
    out_ << name << ":\n";
    return *this;
  }

  AsmBuilder& comment(const std::string& text) {
    out_ << "# " << text << '\n';
    return *this;
  }

  std::string str() const { return out_.str(); }

private:
  std::ostringstream out_;
};

/// Greedy packet scheduler for generated kernels: ops are placed at the
/// first free slot of a requested FU (or any compute FU) at or after an
/// `earliest` packet that encodes the dependence/bypass distance the
/// generator wants. Emission preserves packet order, so functional
/// correctness only requires that consumers are placed after producers.
class PacketScheduler {
public:
  /// Place `op` on FU `fu` (0..3) no earlier than packet `earliest`;
  /// returns the chosen packet index.
  u32 place(const std::string& op, u32 fu, u32 earliest) {
    u32 p = earliest;
    while (used(p, fu)) ++p;
    at(p)[fu] = op;
    return p;
  }

  /// Place on whichever compute FU (1..3) is free earliest.
  u32 place_any(const std::string& op, u32 earliest) {
    for (u32 p = earliest;; ++p) {
      for (u32 fu = 1; fu <= 3; ++fu) {
        if (!used(p, fu)) {
          at(p)[fu] = op;
          return p;
        }
      }
    }
  }

  void emit(AsmBuilder& b) const;

private:
  std::array<std::string, 4>& at(u32 p) {
    if (p >= pkts_.size()) pkts_.resize(p + 1);
    return pkts_[p];
  }
  bool used(u32 p, u32 fu) const {
    return p < pkts_.size() && !pkts_[p][fu].empty();
  }

  std::vector<std::array<std::string, 4>> pkts_;
};

inline void PacketScheduler::emit(AsmBuilder& b) const {
  for (const auto& s : pkts_) {
    if (s[0].empty() && s[1].empty() && s[2].empty() && s[3].empty()) continue;
    b.packet({s[0].empty() ? "nop" : s[0], s[1].empty() ? "nop" : s[1],
              s[2].empty() ? "nop" : s[2], s[3].empty() ? "nop" : s[3]});
  }
}

} // namespace majc::kernels
