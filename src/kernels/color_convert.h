// 512x512 RGB -> YCbCr color conversion (Table 1, row 6; paper: 0.9 Mcycles).
//
// Planar 16-bit R/G/B inputs, planar Y/Cb/Cr outputs; two pixels per
// iteration via SIMD multiply-accumulate chains in Q7 fixed point
// (Y = (38R + 75G + 15B) >> 7, chroma with a +128 bias), one chain per
// compute FU, with FU0 streaming six planes through a shared index
// register. Coefficient sums stay under 2^15/255 so the packed arithmetic
// is overflow-free and exact.
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kCcPixels = 512 * 512;

/// Q7 coefficients (rows: Y, Cb, Cr) and the chroma bias (128 << 7).
inline constexpr i16 kCcCoef[3][3] = {
    {38, 75, 15}, {-22, -42, 64}, {64, -54, -10}};
inline constexpr i16 kCcBias = 128 << 7;

void color_convert_reference(const std::vector<i16>& r,
                             const std::vector<i16>& gch,
                             const std::vector<i16>& bch, std::vector<i16>& y,
                             std::vector<i16>& cb, std::vector<i16>& cr);

KernelSpec make_color_convert_spec(u64 seed = 1);

} // namespace majc::kernels
