// 64-sample, 64-tap complex FIR filter (Table 2, row 4).
//
// y[n] = sum_k h[k] * x[n+k] over complex singles stored (re, im)
// interleaved. Each tap costs four fused multiply-adds; taps rotate across
// FU1..FU3 and each FU keeps four accumulators (+re*re, +im*im, +re*im,
// +im*re partial sums) so no accumulator is reused within the FP latency.
// Both the coefficient and sample streams are fetched with 8-byte pair
// loads, which makes FU0's load bandwidth the bottleneck — 2 loads/tap —
// exactly the balance the paper's 135-cycles-per-output figure implies.
#pragma once

#include <complex>
#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kCfirTaps = 64;
inline constexpr u32 kCfirOutputs = 64;

KernelSpec make_cfir_spec(u64 seed = 1);

/// Golden model mirroring the kernel's accumulation structure exactly.
void cfir_reference(const std::complex<float>* h, const std::complex<float>* x,
                    std::complex<float>* y);

} // namespace majc::kernels
