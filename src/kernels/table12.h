// Canonical registry of the 16 Table 1 / Table 2 kernels.
//
// Every harness that sweeps "all the kernels" — majc_farm, the fault/chaos
// soaks, the serving daemon — used to carry its own copy of this list; one
// divergent entry would silently shrink a sweep. This is the single source
// of truth: the canonical sweep order (DSP Table 2 rows first, then the
// video Table 1 rows) and the canonical short names requests refer to.
#pragma once

#include <string_view>
#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

struct NamedKernel {
  const char* name;
  KernelSpec (*make)();
};

/// The 16 kernels in canonical sweep order. The returned reference is to an
/// immutable eagerly-initialized table (safe to share across threads).
const std::vector<NamedKernel>& table12_kernels();

/// Build `nk`'s spec with its canonical sweep name applied (the factories
/// name specs with size tags like "fir_64tap"; sweeps and campaign JSON use
/// the short registry name).
KernelSpec table12_spec(const NamedKernel& nk);

/// Registry lookup by canonical name; nullptr when unknown.
const NamedKernel* find_table12_kernel(std::string_view name);

} // namespace majc::kernels
