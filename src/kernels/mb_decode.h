// Composed macroblock decode: VLD+IZZ+IQ feeding the 8x8 IDCT for all six
// blocks of a 4:2:0 macroblock in one MAJC program — the integration the
// paper describes ("one can decode a variable length symbol and perform
// inverse zig-zag transform and inverse quantization within 18 cycles",
// followed by the IDCT of Table 1).
#pragma once

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kMbBlocks = 6;          // 4:2:0 macroblock
inline constexpr u32 kMbSymbolsPerBlock = 40;

KernelSpec make_mb_decode_spec(u64 seed = 1);

} // namespace majc::kernels
