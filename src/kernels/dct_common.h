// Shared machinery for the 8x8 DCT/IDCT kernels (Table 1, rows 1-2).
//
// Both transforms run as two 1-D passes of a fixed-point 8x8 matrix product
// evaluated with the SIMD dot-product instruction: each output element is
// four DOTPs over (coefficient-pair, data-pair) words. The 32-word
// coefficient matrix lives in each compute FU's local registers (one of the
// places MAJC's 224-register file pays off), rows rotate across FU1..FU3,
// and the row pass stores its outputs transposed with static offsets so the
// column pass reads contiguous words.
#pragma once

#include <array>
#include <vector>

#include "src/kernels/codegen.h"
#include "src/kernels/kernel.h"
#include "src/support/types.h"

namespace majc::kernels {

/// Fixed-point scale for transform matrices: M = round(C * 2^kDctShift).
inline constexpr int kDctShift = 11;

/// 8x8 matrix as 32 packed int16-pair words, word t of row u packing
/// elements (2t, 2t+1). `pair_swap` mirrors LDL's word order so data loaded
/// with pair loads lines up (the generator indexes data regs the same way).
std::array<i16, 64> idct_matrix();
std::array<i16, 64> fdct_matrix();

/// Golden 1-D pass: out[u] = i16((round + sum_j M[u][j]*in[j]) >> kDctShift)
/// with 32-bit wrap accumulation in DOTP order.
void dct_pass_reference(const std::array<i16, 64>& m, const i16* in,
                        i16* out);

/// Emit one full 1-D pass over 8 rows: reads int16 rows at [g4 + row*16],
/// writes int16 outputs transposed to [g5 + (u*8+row)*2]. Requires the
/// matrix in every FU's locals (l0..l31), the rounding constant in g49.
/// Uses g8..g31 as input buffers and g50..g61 as accumulators.
/// `quant_recips` non-null adds the quantization step of the DCT kernel:
/// out = i16((pass_out * recip[u][row... (column-major index)]) >> 15)
/// with recips streamed by FU0 from [g44].
void emit_dct_pass(AsmBuilder& b, bool quantize);

/// Emit the prologue that loads the 32 matrix words into all three compute
/// FUs' locals from symbol `msym` (clobbers g64..g71, g3).
void emit_matrix_preload(AsmBuilder& b, const std::string& msym);

} // namespace majc::kernels
