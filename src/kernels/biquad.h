// Cascade of eight 2nd-order biquad sections (Table 2, row 1) and the
// 16th-order IIR filter over 64 samples (Table 2, row 3).
//
// Both use the transposed direct-form II section:
//   y   = b0*x + s1
//   s1' = b1*x + a1*y + s2
//   s2' = b2*x + a2*y
// (feedback signs folded into a1/a2). The critical path from section input
// to output is a single fused multiply-add, so the cascade's latency is
// ~4 cycles per section while state updates retire on FU2/FU3 off the
// critical path — the scheduling the paper's 63-cycle figure implies.
#pragma once

#include <vector>

#include "src/kernels/kernel.h"

namespace majc::kernels {

inline constexpr u32 kBiquadSections = 8;
inline constexpr u32 kIirSamples = 64;

struct BiquadCoefs {
  float b0, b1, b2, a1, a2;
};

/// Deterministic stable coefficient set.
std::vector<BiquadCoefs> make_biquad_coefs(u64 seed);

/// Golden model: runs `n` samples through the cascade, mirroring the
/// kernel's fmaf structure exactly. `s1`/`s2` are the per-section states.
void biquad_cascade_reference(const std::vector<BiquadCoefs>& c,
                              const float* x, float* y, u32 n, float* s1,
                              float* s2);

/// Single sample through 8 sections (paper row: 63 cycles).
KernelSpec make_biquad_spec(u64 seed = 1);

/// 64 samples through the same 8-section cascade (16th-order IIR row).
KernelSpec make_iir_spec(u64 seed = 1);

} // namespace majc::kernels
