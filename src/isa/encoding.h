// Binary instruction and packet encoding.
//
// A MAJC-5200 instruction packet is 1 to 4 32-bit instruction words; a 2-bit
// header gives the issue width so the stream carries no padding nops
// (paper §3.2). We place the header in bits [31:30] of the packet's first
// word; those bits are reserved (zero) in the remaining words. Instruction
// fields occupy bits [29:0]:
//
//   [29:23] opcode
//   R-form: [22:16] rd   [15:9] rs1  [8:2] rs2  [1:0] sub
//   I-form: [22:16] rd   [15:9] rs1  [8:0] simm9
//   L-form: [22:16] rd   [15:0] imm16   (setlo/sethi; branch: rd = cond reg,
//                                        imm16 = signed word displacement
//                                        relative to the packet address)
//   J-form: [22:0] signed word displacement (call)
//   N-form: all zero
//
// Slot position determines the executing FU: slot i executes on FUi, and the
// first instruction of a packet must be FU0-eligible (paper §3.2).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/isa/opcodes.h"
#include "src/isa/registers.h"
#include "src/support/types.h"

namespace majc::isa {

inline constexpr u32 kMaxSlots = 4;
inline constexpr u32 kInstrBytes = 4;
inline constexpr u32 kMaxPacketBytes = 16;

/// A decoded instruction. `imm` holds the sign-extended immediate for
/// I/L/J forms; register fields are 7-bit specifiers (not physical indices).
struct Instr {
  Op op = Op::kNop;
  RegSpec rd = 0;
  RegSpec rs1 = 0;
  RegSpec rs2 = 0;
  u8 sub = 0;   // R-form 2-bit sub field (saturation mode / cache attribute)
  i32 imm = 0;  // simm9 / imm16 / disp23 depending on form

  const OpInfo& info() const { return op_info(op); }

  bool operator==(const Instr&) const = default;
};

/// A decoded packet: `width` instructions, slot i executing on FUi.
struct Packet {
  u32 width = 0;
  std::array<Instr, kMaxSlots> slot = {};

  std::span<const Instr> instrs() const { return {slot.data(), width}; }
  u32 bytes() const { return width * kInstrBytes; }

  bool operator==(const Packet&) const = default;
};

/// Encode one instruction into a 32-bit word (header bits left zero).
/// Throws majc::Error on field overflow or malformed operands.
u32 encode_instr(const Instr& in);

/// Decode the instruction in `word`, ignoring the header bits.
/// Throws majc::Error on an undefined opcode.
Instr decode_instr(u32 word);

/// Encode a packet: validates slot/FU eligibility and writes the width
/// header into the first word.
std::vector<u32> encode_packet(const Packet& p);

/// Decode the packet starting at words[0]. `words` must contain at least the
/// full packet (4 words available is always safe at end of stream only if
/// padded; callers use code images padded to a multiple of 4 words).
Packet decode_packet(std::span<const u32> words);

/// Validate that `in` may occupy slot `fu`; throws with a message naming the
/// violation (wrong FU, bad pair/group register, immediate overflow).
void validate_slot(const Instr& in, u32 fu);

} // namespace majc::isa
