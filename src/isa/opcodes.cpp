#include "src/isa/opcodes.h"

#include <string>
#include <unordered_map>

namespace majc::isa {
namespace {

const std::unordered_map<std::string_view, Op>& name_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Op>();
    for (u32 i = 0; i < kNumOpcodes; ++i) {
      m->emplace(detail::kOpTable[i].mnemonic, static_cast<Op>(i));
    }
    return m;
  }();
  return *map;
}

} // namespace

bool op_from_name(std::string_view name, Op& out) {
  const auto& m = name_map();
  auto it = m.find(name);
  if (it == m.end()) return false;
  out = it->second;
  return true;
}

} // namespace majc::isa
