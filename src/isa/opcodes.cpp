#include "src/isa/opcodes.h"

#include <array>
#include <string>
#include <unordered_map>

namespace majc::isa {
namespace {

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
#define MAJC_INFO(name, str, form, cls, fumask, lat, interval, flags, flops, ops16) \
  OpInfo{str, Form::form, OpClass::cls, fumask, lat, interval, flags, flops, ops16},
    MAJC_OPCODE_LIST(MAJC_INFO)
#undef MAJC_INFO
}};

const std::unordered_map<std::string_view, Op>& name_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Op>();
    for (u32 i = 0; i < kNumOpcodes; ++i) {
      m->emplace(kOpTable[i].mnemonic, static_cast<Op>(i));
    }
    return m;
  }();
  return *map;
}

} // namespace

const OpInfo& op_info(Op op) { return kOpTable[static_cast<u8>(op)]; }

bool op_from_name(std::string_view name, Op& out) {
  const auto& m = name_map();
  auto it = m.find(name);
  if (it == m.end()) return false;
  out = it->second;
  return true;
}

} // namespace majc::isa
