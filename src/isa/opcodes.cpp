#include "src/isa/opcodes.h"

#include <string>
#include <unordered_map>

namespace majc::isa {
namespace {

// Built once during static initialization (single-threaded, before main)
// and const thereafter: concurrent machines may assemble / decode freely
// without synchronization. Previously this was a lazily-initialized magic
// static behind a leaked pointer; eager const init removes the lazy-init
// path from the farm's thread-safety audit surface entirely.
const std::unordered_map<std::string_view, Op> kNameMap = [] {
  std::unordered_map<std::string_view, Op> m;
  m.reserve(kNumOpcodes);
  for (u32 i = 0; i < kNumOpcodes; ++i) {
    m.emplace(detail::kOpTable[i].mnemonic, static_cast<Op>(i));
  }
  return m;
}();

} // namespace

bool op_from_name(std::string_view name, Op& out) {
  auto it = kNameMap.find(name);
  if (it == kNameMap.end()) return false;
  out = it->second;
  return true;
}

} // namespace majc::isa
