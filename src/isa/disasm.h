// Disassembler: decoded instructions / packets back to assembler syntax.
//
// Output is accepted verbatim by the assembler (round-trip property tested),
// e.g.:  "ldwi g3, g2, 8 | fmadd l0, g3, g4 ;;"
#pragma once

#include <span>
#include <string>

#include "src/isa/encoding.h"

namespace majc::isa {

/// One instruction in assembler syntax (no slot separator).
std::string disasm_instr(const Instr& in);

/// A whole packet: slots joined by " | " and terminated with " ;;".
std::string disasm_packet(const Packet& p);

/// A code image: one packet per line, prefixed with the word index.
std::string disasm_code(std::span<const u32> words);

} // namespace majc::isa
