#include "src/isa/disasm.h"

#include <sstream>

#include "src/isa/registers.h"

namespace majc::isa {
namespace {

void append_operands(std::ostringstream& os, const Instr& in) {
  const OpInfo& info = in.info();
  switch (info.form) {
    case Form::kR: {
      os << ' ' << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", "
         << reg_name(in.rs2);
      break;
    }
    case Form::kI:
      os << ' ' << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << in.imm;
      break;
    case Form::kL:
      os << ' ' << reg_name(in.rd) << ", " << in.imm;
      break;
    case Form::kJ:
      os << ' ' << in.imm;
      break;
    case Form::kN:
      if (info.writes_rd() || info.has(kReadsRd)) os << ' ' << reg_name(in.rd);
      break;
  }
}

} // namespace

std::string disasm_instr(const Instr& in) {
  std::ostringstream os;
  const OpInfo& info = in.info();
  os << info.mnemonic;
  // Sub-field suffixes mirror the assembler's notation: cache attributes on
  // memory ops (.nc non-cached, .na non-allocating) and saturation modes on
  // SIMD ops (.s signed, .u unsigned, .b byte).
  if (info.has(kHasSub) && in.sub != 0) {
    static constexpr const char* kMemSuffix[4] = {"", ".nc", ".na", ".x3"};
    static constexpr const char* kSimdSuffix[4] = {"", ".s", ".u", ".b"};
    os << (info.is_mem() ? kMemSuffix[in.sub] : kSimdSuffix[in.sub]);
  }
  append_operands(os, in);
  return os.str();
}

std::string disasm_packet(const Packet& p) {
  std::ostringstream os;
  for (u32 i = 0; i < p.width; ++i) {
    if (i != 0) os << " | ";
    os << disasm_instr(p.slot[i]);
  }
  os << " ;;";
  return os.str();
}

std::string disasm_code(std::span<const u32> words) {
  std::ostringstream os;
  std::size_t i = 0;
  while (i < words.size()) {
    const Packet p = decode_packet(words.subspan(i));
    os << i << ":\t" << disasm_packet(p) << '\n';
    i += p.width;
  }
  return os.str();
}

} // namespace majc::isa
