#include "src/isa/encoding.h"

#include <string>

#include "src/support/bits.h"
#include "src/support/error.h"

namespace majc::isa {
namespace {

void check_reg(RegSpec r, const char* what) {
  require(r < 128, std::string("register specifier out of range for ") + what);
}

} // namespace

void validate_slot(const Instr& in, u32 fu) {
  const OpInfo& info = in.info();
  require(fu < kMaxSlots, "slot index out of range");
  if ((info.fu_mask & (1u << fu)) == 0) {
    fail(std::string(info.mnemonic) + " is not executable on FU" +
         std::to_string(fu));
  }
  if (info.has(kRdPair) && !valid_pair_spec(in.rd)) {
    fail(std::string(info.mnemonic) + ": rd must be an even-aligned pair");
  }
  if (info.has(kRs1Pair) && !valid_pair_spec(in.rs1)) {
    fail(std::string(info.mnemonic) + ": rs1 must be an even-aligned pair");
  }
  if (info.has(kRs2Pair) && !valid_pair_spec(in.rs2)) {
    fail(std::string(info.mnemonic) + ": rs2 must be an even-aligned pair");
  }
  if (info.has(kRdGroup) && !valid_group_spec(in.rd)) {
    fail(std::string(info.mnemonic) + ": rd must start an 8-aligned group");
  }
}

u32 encode_instr(const Instr& in) {
  const OpInfo& info = in.info();
  u32 w = 0;
  w = deposit(w, 23, 7, static_cast<u8>(in.op));
  switch (info.form) {
    case Form::kR:
      check_reg(in.rd, "rd");
      check_reg(in.rs1, "rs1");
      check_reg(in.rs2, "rs2");
      require(in.sub < 4, "sub field is 2 bits");
      w = deposit(w, 16, 7, in.rd);
      w = deposit(w, 9, 7, in.rs1);
      w = deposit(w, 2, 7, in.rs2);
      w = deposit(w, 0, 2, in.sub);
      break;
    case Form::kI:
      check_reg(in.rd, "rd");
      check_reg(in.rs1, "rs1");
      require(fits_signed(in.imm, 9),
              std::string(info.mnemonic) + ": immediate does not fit simm9");
      w = deposit(w, 16, 7, in.rd);
      w = deposit(w, 9, 7, in.rs1);
      w = deposit(w, 0, 9, static_cast<u32>(in.imm));
      break;
    case Form::kL:
      check_reg(in.rd, "rd");
      if (info.has(kBranch)) {
        require(fits_signed(in.imm, 16),
                std::string(info.mnemonic) + ": displacement does not fit 16 bits");
      } else {
        require(fits_signed(in.imm, 16) || fits_unsigned(static_cast<u32>(in.imm), 16),
                std::string(info.mnemonic) + ": immediate does not fit 16 bits");
      }
      w = deposit(w, 16, 7, in.rd);
      w = deposit(w, 0, 16, static_cast<u32>(in.imm));
      break;
    case Form::kJ:
      require(fits_signed(in.imm, 23),
              std::string(info.mnemonic) + ": displacement does not fit 23 bits");
      w = deposit(w, 0, 23, static_cast<u32>(in.imm));
      break;
    case Form::kN:
      // getcpu/gettick carry a destination even though they take no sources;
      // settvec/rett carry rd as a source operand (vector base / target).
      if (info.writes_rd() || info.has(kReadsRd)) {
        check_reg(in.rd, "rd");
        w = deposit(w, 16, 7, in.rd);
      }
      break;
  }
  return w;
}

Instr decode_instr(u32 word) {
  const u32 opc = bits(word, 23, 7);
  require(opc < kNumOpcodes, "undefined opcode " + std::to_string(opc));
  Instr in;
  in.op = static_cast<Op>(opc);
  const OpInfo& info = in.info();
  switch (info.form) {
    case Form::kR:
      in.rd = static_cast<RegSpec>(bits(word, 16, 7));
      in.rs1 = static_cast<RegSpec>(bits(word, 9, 7));
      in.rs2 = static_cast<RegSpec>(bits(word, 2, 7));
      in.sub = static_cast<u8>(bits(word, 0, 2));
      break;
    case Form::kI:
      in.rd = static_cast<RegSpec>(bits(word, 16, 7));
      in.rs1 = static_cast<RegSpec>(bits(word, 9, 7));
      in.imm = sign_extend(bits(word, 0, 9), 9);
      break;
    case Form::kL:
      in.rd = static_cast<RegSpec>(bits(word, 16, 7));
      in.imm = sign_extend(bits(word, 0, 16), 16);
      break;
    case Form::kJ:
      in.imm = sign_extend(bits(word, 0, 23), 23);
      break;
    case Form::kN:
      if (info.writes_rd() || info.has(kReadsRd)) {
        in.rd = static_cast<RegSpec>(bits(word, 16, 7));
      }
      break;
  }
  return in;
}

std::vector<u32> encode_packet(const Packet& p) {
  require(p.width >= 1 && p.width <= kMaxSlots, "packet width must be 1..4");
  std::vector<u32> words(p.width);
  for (u32 i = 0; i < p.width; ++i) {
    validate_slot(p.slot[i], i);
    words[i] = encode_instr(p.slot[i]);
    require(bits(words[i], 30, 2) == 0, "instruction overflows into header bits");
  }
  words[0] = deposit(words[0], 30, 2, p.width - 1);
  return words;
}

Packet decode_packet(std::span<const u32> words) {
  require(!words.empty(), "cannot decode an empty packet");
  Packet p;
  p.width = bits(words[0], 30, 2) + 1;
  require(words.size() >= p.width, "truncated packet");
  for (u32 i = 0; i < p.width; ++i) {
    p.slot[i] = decode_instr(words[i]);
  }
  return p;
}

} // namespace majc::isa
