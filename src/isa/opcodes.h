// MAJC-5200 opcode set and per-opcode metadata.
//
// The paper (§4) enumerates the instruction classes of MAJC-5200; this table
// realizes them as a concrete 7-bit opcode space with the latencies and
// functional-unit assignments the paper states:
//
//  * FU0: memory ops, control flow, ALU, integer divide, FP32 divide and
//    reciprocal-sqrt, SIMD S2.13 divide / reciprocal-sqrt (6-cycle,
//    non-pipelined), conditional store.
//  * FU1-3: ALU, saturating add/sub, 2-cycle pipelined multiply / mulhi /
//    fused multiply-add, 1-cycle SIMD add/sub, pipelined SIMD multiply /
//    multiply-add / dot product, FP32 add/sub/mul/FMA (4-cycle pipelined),
//    partially pipelined FP64 add/sub/mul, min/max/negate, compares,
//    converts, pick predication, bit-field extract, leading-zero detect,
//    byte shuffle, pixel distance.
//  * All FUs: logical ops, shifts, add/sub, constant setting, conditional
//    move.
//
// Instruction forms (all 32-bit words):
//   R: op rd, rs1, rs2 [+ 2-bit sub field: SIMD saturation mode / cacheness]
//   I: op rd, rs1, simm9
//   L: op rd, imm16            (setlo/sethi; branches use rd = condition reg)
//   J: op disp23               (call)
//   N: op                      (no operands: nop, halt, membar)
#pragma once

#include <array>
#include <string_view>

#include "src/support/types.h"

namespace majc::isa {

enum class Form : u8 { kR, kI, kL, kJ, kN };

/// Dispatch class for the functional executor.
enum class OpClass : u8 {
  kAlu,      // integer / logical / compare / move / constants
  kMulDiv,   // integer multiply family and divide
  kSimd,     // 16-bit pair SIMD and byte/bit manipulation
  kFp32,
  kFp64,
  kMem,      // loads, stores, prefetch, atomics, membar
  kControl,  // branches, call, jmpl, halt, nop, trap, getcpu, gettick
};

// Operand and behaviour flags.
inline constexpr u32 kWritesRd = 1u << 0;
inline constexpr u32 kReadsRd = 1u << 1;   // rd is also a source (accumulators,
                                           // predication, store data, cond)
inline constexpr u32 kReadsRs1 = 1u << 2;
inline constexpr u32 kReadsRs2 = 1u << 3;
inline constexpr u32 kRdPair = 1u << 4;    // rd names an even/odd 64-bit pair
inline constexpr u32 kRs1Pair = 1u << 5;
inline constexpr u32 kRs2Pair = 1u << 6;
inline constexpr u32 kRdGroup = 1u << 7;   // rd names an 8-register group
inline constexpr u32 kLoad = 1u << 8;
inline constexpr u32 kStore = 1u << 9;
inline constexpr u32 kPrefetch = 1u << 10;
inline constexpr u32 kAtomic = 1u << 11;
inline constexpr u32 kMembar = 1u << 12;
inline constexpr u32 kBranch = 1u << 13;   // conditional pc-relative branch
inline constexpr u32 kCall = 1u << 14;
inline constexpr u32 kJump = 1u << 15;     // indirect jump (jmpl)
inline constexpr u32 kHalt = 1u << 16;
inline constexpr u32 kTrap = 1u << 17;
inline constexpr u32 kHasSub = 1u << 18;   // R-form 2-bit sub field is used

// FU eligibility masks (bit f set = may issue in slot f).
inline constexpr u8 kFu0 = 0b0001;
inline constexpr u8 kFu123 = 0b1110;
inline constexpr u8 kFuAll = 0b1111;

// X-macro: OP(enumerator, "mnemonic", form, class, fumask, latency,
//             issue_interval, flags, flops, ops16)
//
// `latency` is the producer-to-consumer delay inside the producing FU
// (loads: D$ hit load-to-use). `issue_interval` 1 = fully pipelined;
// equal to latency = non-pipelined (the FU is busy for the whole operation);
// 2 for the partially pipelined FP64 ops. `flops` / `ops16` are the
// contribution of one instruction to peak FP32-op / 16-bit-op counts used by
// the headline GFLOPS / GOPS benchmark.
#define MAJC_OPCODE_LIST(OP)                                                                                 \
  /* ---- memory: loads (FU0) ---- */                                                                        \
  OP(kLdb,   "ldb",   kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kHasSub, 0, 0)       \
  OP(kLdbu,  "ldbu",  kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kHasSub, 0, 0)       \
  OP(kLdh,   "ldh",   kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kHasSub, 0, 0)       \
  OP(kLdhu,  "ldhu",  kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kHasSub, 0, 0)       \
  OP(kLdw,   "ldw",   kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kHasSub, 0, 0)       \
  OP(kLdl,   "ldl",   kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kRdPair | kHasSub, 0, 0) \
  OP(kLdg,   "ldg",   kR, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kLoad | kRdGroup | kHasSub, 0, 0) \
  OP(kLdbi,  "ldbi",  kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad, 0, 0)                             \
  OP(kLdbui, "ldbui", kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad, 0, 0)                             \
  OP(kLdhi,  "ldhi",  kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad, 0, 0)                             \
  OP(kLdhui, "ldhui", kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad, 0, 0)                             \
  OP(kLdwi,  "ldwi",  kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad, 0, 0)                             \
  OP(kLdli,  "ldli",  kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad | kRdPair, 0, 0)                   \
  OP(kLdgi,  "ldgi",  kI, kMem, kFu0, 2, 1, kWritesRd | kReadsRs1 | kLoad | kRdGroup, 0, 0)                  \
  /* ---- memory: stores (FU0); rd is the data source ---- */                                                \
  OP(kStb,   "stb",   kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore | kHasSub, 0, 0)       \
  OP(kSth,   "sth",   kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore | kHasSub, 0, 0)       \
  OP(kStw,   "stw",   kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore | kHasSub, 0, 0)       \
  OP(kStl,   "stl",   kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore | kRdPair | kHasSub, 0, 0) \
  OP(kStg,   "stg",   kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore | kRdGroup | kHasSub, 0, 0) \
  OP(kStbi,  "stbi",  kI, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kStore, 0, 0)                             \
  OP(kSthi,  "sthi",  kI, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kStore, 0, 0)                             \
  OP(kStwi,  "stwi",  kI, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kStore, 0, 0)                             \
  OP(kStli,  "stli",  kI, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kStore | kRdPair, 0, 0)                   \
  OP(kStgi,  "stgi",  kI, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kStore | kRdGroup, 0, 0)                  \
  /* ---- conditional store (predication, FU0): store rd at [rs1] if rs2 != 0 */                             \
  OP(kStcw,  "stcw",  kR, kMem, kFu0, 1, 1, kReadsRd | kReadsRs1 | kReadsRs2 | kStore, 0, 0)                 \
  /* ---- prefetch / atomics / barrier (FU0) ---- */                                                         \
  OP(kPref,  "pref",  kR, kMem, kFu0, 1, 1, kReadsRs1 | kReadsRs2 | kPrefetch, 0, 0)                         \
  OP(kPrefi, "prefi", kI, kMem, kFu0, 1, 1, kReadsRs1 | kPrefetch, 0, 0)                                     \
  OP(kCas,   "cas",   kR, kMem, kFu0, 2, 2, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2 | kLoad | kStore | kAtomic, 0, 0) \
  OP(kSwap,  "swap",  kR, kMem, kFu0, 2, 2, kWritesRd | kReadsRd | kReadsRs1 | kLoad | kStore | kAtomic, 0, 0) \
  OP(kMembar, "membar", kN, kMem, kFu0, 1, 1, kMembar, 0, 0)                                                 \
  /* ---- control flow (FU0) ---- */                                                                         \
  OP(kBnz,   "bnz",   kL, kControl, kFu0, 1, 1, kReadsRd | kBranch, 0, 0)                                    \
  OP(kBz,    "bz",    kL, kControl, kFu0, 1, 1, kReadsRd | kBranch, 0, 0)                                    \
  OP(kCall,  "call",  kJ, kControl, kFu0, 1, 1, kCall, 0, 0)                                                 \
  OP(kJmpl,  "jmpl",  kR, kControl, kFu0, 1, 1, kWritesRd | kReadsRs1 | kJump, 0, 0)                         \
  OP(kHalt,  "halt",  kN, kControl, kFu0, 1, 1, kHalt, 0, 0)                                                 \
  OP(kNop,   "nop",   kN, kControl, kFuAll, 1, 1, 0, 0, 0)                                                   \
  OP(kTrap,  "trap",  kI, kControl, kFu0, 1, 1, kReadsRs1 | kTrap, 0, 0)                                     \
  OP(kGetcpu, "getcpu", kN, kControl, kFu0, 1, 1, kWritesRd, 0, 0)                                           \
  OP(kGettid, "gettid", kN, kControl, kFu0, 1, 1, kWritesRd, 0, 0)                                           \
  OP(kGettick, "gettick", kN, kControl, kFu0, 1, 1, kWritesRd, 0, 0)                                         \
  /* ---- trap unit (FU0): vector base, saved-state reads, return ---- */                                    \
  OP(kSettvec, "settvec", kN, kControl, kFu0, 1, 1, kReadsRd, 0, 0)                                          \
  OP(kMftr,  "mftr",  kL, kControl, kFu0, 1, 1, kWritesRd, 0, 0)                                             \
  OP(kRett,  "rett",  kN, kControl, kFu0, 1, 1, kReadsRd | kJump, 0, 0)                                      \
  /* ---- ALU, all FUs ---- */                                                                               \
  OP(kAdd,   "add",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kSub,   "sub",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kAnd,   "and",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kOr,    "or",    kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kXor,   "xor",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kAndn,  "andn",  kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kSll,   "sll",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kSrl,   "srl",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kSra,   "sra",   kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kAddi,  "addi",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kAndi,  "andi",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kOri,   "ori",   kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kXori,  "xori",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kSlli,  "slli",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kSrli,  "srli",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kSrai,  "srai",  kI, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                   \
  OP(kSetlo, "setlo", kL, kAlu, kFuAll, 1, 1, kWritesRd, 0, 0)                                               \
  OP(kSethi, "sethi", kL, kAlu, kFuAll, 1, 1, kWritesRd, 0, 0)                                               \
  OP(kOrlo,  "orlo",  kL, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRd, 0, 0)                                    \
  OP(kCmpeq, "cmpeq", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kCmpne, "cmpne", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kCmplt, "cmplt", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kCmple, "cmple", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                       \
  OP(kCmpltu, "cmpltu", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                     \
  OP(kCmpleu, "cmpleu", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                     \
  /* conditional move (all FUs): if rs2 !=/== 0 then rd = rs1 */                                             \
  OP(kCmovnz, "cmovnz", kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)          \
  OP(kCmovz,  "cmovz",  kR, kAlu, kFuAll, 1, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)          \
  /* pick predication (FU1-3): rd = (rd != 0) ? rs1 : rs2 */                                                 \
  OP(kPick,  "pick",  kR, kAlu, kFu123, 1, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)            \
  /* ---- integer multiply family (FU1-3) and divide (FU0) ---- */                                           \
  OP(kSatadd, "satadd", kR, kAlu, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                     \
  OP(kSatsub, "satsub", kR, kAlu, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                     \
  OP(kMul,   "mul",   kR, kMulDiv, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                    \
  OP(kMulhi, "mulhi", kR, kMulDiv, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                    \
  OP(kMulhiu, "mulhiu", kR, kMulDiv, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                  \
  OP(kMadd,  "madd",  kR, kMulDiv, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)         \
  OP(kMsub,  "msub",  kR, kMulDiv, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)         \
  OP(kDiv,   "div",   kR, kMulDiv, kFu0, 6, 6, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                      \
  OP(kDivu,  "divu",  kR, kMulDiv, kFu0, 6, 6, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                      \
  /* ---- SIMD on 16-bit pairs (FU1-3); sub field = saturation mode ---- */                                  \
  OP(kPadd,  "padd",  kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 2)            \
  OP(kPsub,  "psub",  kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 2)            \
  OP(kPmulh, "pmulh", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 2)            \
  OP(kPmuls15, "pmuls15", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 2)        \
  OP(kPmuls213, "pmuls213", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 2)      \
  OP(kPmaddh, "pmaddh", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 4) \
  OP(kPmadds15, "pmadds15", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 4) \
  OP(kPmadds213, "pmadds213", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2 | kHasSub, 0, 4) \
  OP(kDotp,  "dotp",  kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 4)           \
  OP(kPmuls31, "pmuls31", kR, kSimd, kFu123, 2, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 2)                  \
  /* ---- FU0 SIMD: S2.13 pairwise divide / reciprocal sqrt, 6 cycles ---- */                                \
  OP(kPdiv213, "pdiv213", kR, kSimd, kFu0, 6, 6, kWritesRd | kReadsRs1 | kReadsRs2, 0, 2)                    \
  OP(kPrsqrt213, "prsqrt213", kR, kSimd, kFu0, 6, 6, kWritesRd | kReadsRs1, 0, 2)                            \
  /* ---- bit / byte manipulation (FU1-3) ---- */                                                            \
  OP(kBext,  "bext",  kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kRs1Pair, 0, 0)           \
  OP(kLzd,   "lzd",   kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRs1, 0, 0)                                  \
  OP(kBshuf, "bshuf", kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 0)           \
  OP(kPdist, "pdist", kR, kSimd, kFu123, 1, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 0, 4)           \
  /* ---- FP32 (FU1-3 except div/rsqrt on FU0) ---- */                                                       \
  OP(kFadd,  "fadd",  kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                      \
  OP(kFsub,  "fsub",  kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                      \
  OP(kFmul,  "fmul",  kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                      \
  OP(kFmadd, "fmadd", kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 2, 0)           \
  OP(kFmsub, "fmsub", kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRd | kReadsRs1 | kReadsRs2, 2, 0)           \
  OP(kFmin,  "fmin",  kR, kFp32, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                      \
  OP(kFmax,  "fmax",  kR, kFp32, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                      \
  OP(kFneg,  "fneg",  kR, kFp32, kFu123, 1, 1, kWritesRd | kReadsRs1, 1, 0)                                  \
  OP(kFabs,  "fabs",  kR, kFp32, kFu123, 1, 1, kWritesRd | kReadsRs1, 1, 0)                                  \
  OP(kFcmpeq, "fcmpeq", kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                    \
  OP(kFcmplt, "fcmplt", kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                    \
  OP(kFcmple, "fcmple", kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1 | kReadsRs2, 0, 0)                    \
  OP(kItof,  "itof",  kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1, 0, 0)                                  \
  OP(kFtoi,  "ftoi",  kR, kFp32, kFu123, 4, 1, kWritesRd | kReadsRs1, 0, 0)                                  \
  OP(kFtod,  "ftod",  kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kRdPair, 0, 0)                        \
  OP(kDtof,  "dtof",  kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kRs1Pair, 0, 0)                       \
  OP(kFdiv,  "fdiv",  kR, kFp32, kFu0, 6, 6, kWritesRd | kReadsRs1 | kReadsRs2, 1, 0)                        \
  OP(kFrsqrt, "frsqrt", kR, kFp32, kFu0, 6, 6, kWritesRd | kReadsRs1, 1, 0)                                  \
  /* ---- FP64 on register pairs (FU1-3, partially pipelined) ---- */                                        \
  OP(kDadd,  "dadd",  kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRdPair | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDsub,  "dsub",  kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRdPair | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDmul,  "dmul",  kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRdPair | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDmin,  "dmin",  kR, kFp64, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kRdPair | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDmax,  "dmax",  kR, kFp64, kFu123, 1, 1, kWritesRd | kReadsRs1 | kReadsRs2 | kRdPair | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDneg,  "dneg",  kR, kFp64, kFu123, 1, 1, kWritesRd | kReadsRs1 | kRdPair | kRs1Pair, 0, 0)             \
  OP(kDcmpeq, "dcmpeq", kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDcmplt, "dcmplt", kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRs1Pair | kRs2Pair, 0, 0) \
  OP(kDcmple, "dcmple", kR, kFp64, kFu123, 4, 2, kWritesRd | kReadsRs1 | kReadsRs2 | kRs1Pair | kRs2Pair, 0, 0)

enum class Op : u8 {
#define MAJC_ENUM(name, str, form, cls, fumask, lat, interval, flags, flops, ops16) name,
  MAJC_OPCODE_LIST(MAJC_ENUM)
#undef MAJC_ENUM
};

inline constexpr u32 kNumOpcodes = 0
#define MAJC_COUNT(name, str, form, cls, fumask, lat, interval, flags, flops, ops16) +1
    MAJC_OPCODE_LIST(MAJC_COUNT)
#undef MAJC_COUNT
    ;
static_assert(kNumOpcodes <= 128, "opcode space is 7 bits");

struct OpInfo {
  std::string_view mnemonic;
  Form form;
  OpClass cls;
  u8 fu_mask;        // which slots (FUs) may execute this op
  u8 latency;        // producer-to-consumer cycles within the producing FU
  u8 issue_interval; // cycles before the FU accepts another op of this kind
  u32 flags;
  u8 flops;          // FP32 operations per instruction (peak accounting)
  u8 ops16;          // 16-bit operations per instruction (peak accounting)

  constexpr bool has(u32 flag) const { return (flags & flag) != 0; }
  constexpr bool is_mem() const { return cls == OpClass::kMem; }
  constexpr bool is_load() const { return has(kLoad); }
  constexpr bool is_store() const { return has(kStore); }
  constexpr bool writes_rd() const { return has(kWritesRd); }
};

namespace detail {
inline constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
#define MAJC_INFO(name, str, form, cls, fumask, lat, interval, flags, flops, ops16) \
  OpInfo{str, Form::form, OpClass::cls, fumask, lat, interval, flags, flops, ops16},
    MAJC_OPCODE_LIST(MAJC_INFO)
#undef MAJC_INFO
}};
} // namespace detail

/// Metadata for an opcode. O(1) table lookup, inlined on hot paths.
constexpr const OpInfo& op_info(Op op) {
  return detail::kOpTable[static_cast<u8>(op)];
}

/// Parse a mnemonic; returns false if unknown.
bool op_from_name(std::string_view name, Op& out);

} // namespace majc::isa
