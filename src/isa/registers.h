// MAJC-5200 register model.
//
// Each CPU has 224 logical 32-bit registers: 96 globals visible to all four
// functional units plus 32 locals private to each FU (paper §3.2). An
// instruction encodes a register in 7 bits: specifiers 0..95 name globals
// g0..g95 and specifiers 96..127 name locals l0..l31 *of the functional unit
// executing the instruction*. Global g0 reads as zero and ignores writes
// (the model's hardwired zero; the paper notes all units "are capable of
// setting arbitrary constants", and a zero source makes MOVE/NOT aliases
// encodable without extra opcodes).
//
// 64-bit quantities (long loads/stores, double precision FP) live in
// even/odd register pairs; the even register holds the most significant
// word. Group loads/stores move 32 bytes between memory and 8 consecutive
// registers. Pairs and groups must not cross the global/local boundary or a
// local window edge.
#pragma once

#include <string>

#include "src/support/error.h"
#include "src/support/types.h"

namespace majc::isa {

inline constexpr u32 kNumGlobalRegs = 96;
inline constexpr u32 kLocalRegsPerFu = 32;
inline constexpr u32 kNumFus = 4;
inline constexpr u32 kNumRegs = kNumGlobalRegs + kLocalRegsPerFu * kNumFus; // 224

/// 7-bit register specifier as encoded in an instruction word.
/// 0..95 = global, 96..127 = local of the executing FU.
using RegSpec = u8;

inline constexpr RegSpec kFirstLocalSpec = 96;
inline constexpr u32 kRegSpecBits = 7;

/// Physical register index 0..223 within one CPU's register file.
using PhysReg = u8;

/// Map an encoded specifier to a physical register for slot `fu` (0..3).
constexpr PhysReg to_phys(RegSpec spec, u32 fu) {
  if (spec < kFirstLocalSpec) return spec;
  return static_cast<PhysReg>(kNumGlobalRegs + fu * kLocalRegsPerFu +
                              (spec - kFirstLocalSpec));
}

constexpr bool is_global_spec(RegSpec spec) { return spec < kFirstLocalSpec; }

/// True if `spec` and the following register can form a 64-bit pair without
/// crossing the global/local boundary. Pairs must be even-aligned.
constexpr bool valid_pair_spec(RegSpec spec) {
  if (spec % 2 != 0) return false;
  if (is_global_spec(spec)) return u32{spec} + 1 < kNumGlobalRegs;
  return u32{spec} + 1 < kFirstLocalSpec + kLocalRegsPerFu;
}

/// True if `spec` can start an 8-register group (32-byte group load/store).
constexpr bool valid_group_spec(RegSpec spec) {
  if (spec % 8 != 0) return false;
  if (is_global_spec(spec)) return u32{spec} + 7 < kNumGlobalRegs;
  return u32{spec} + 7 < kFirstLocalSpec + kLocalRegsPerFu;
}

/// Conventional role assignments used by the assembler and kernels.
/// g1 is the CALL link register; g2 the stack pointer by convention.
inline constexpr RegSpec kZeroReg = 0;
inline constexpr RegSpec kLinkReg = 1;

/// Render a specifier as "gN" or "lN".
inline std::string reg_name(RegSpec spec) {
  if (is_global_spec(spec)) return "g" + std::to_string(spec);
  return "l" + std::to_string(spec - kFirstLocalSpec);
}

} // namespace majc::isa
