#include "src/sim/predecode.h"

namespace majc::sim {

using isa::Instr;
using isa::PhysReg;

void collect_sources(const Instr& in, u32 fu, InlineVec<PhysReg, 12>& out) {
  const isa::OpInfo& info = in.info();
  auto add = [&](isa::RegSpec spec, bool pair) {
    const PhysReg p = isa::to_phys(spec, fu);
    out.push_back(p);
    if (pair) out.push_back(static_cast<PhysReg>(p + 1));
  };
  if (info.has(isa::kReadsRs1)) add(in.rs1, info.has(isa::kRs1Pair));
  if (info.has(isa::kReadsRs2)) add(in.rs2, info.has(isa::kRs2Pair));
  if (info.has(isa::kReadsRd)) {
    if (info.has(isa::kRdGroup)) {
      const PhysReg p = isa::to_phys(in.rd, fu);
      for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
    } else {
      add(in.rd, info.has(isa::kRdPair));
    }
  }
}

void collect_dests(const Instr& in, u32 fu, InlineVec<PhysReg, 8>& out) {
  const isa::OpInfo& info = in.info();
  if (info.has(isa::kCall)) {
    out.push_back(isa::to_phys(isa::kLinkReg, fu));
    return;
  }
  if (!info.writes_rd()) return;
  const PhysReg p = isa::to_phys(in.rd, fu);
  if (info.has(isa::kRdGroup)) {
    for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
  } else {
    out.push_back(p);
    if (info.has(isa::kRdPair)) out.push_back(static_cast<PhysReg>(p + 1));
  }
}

PacketMeta compute_packet_meta(const isa::Packet& p, Addr pc) {
  PacketMeta m;
  m.pc = pc;
  m.bytes = p.bytes();
  m.fall_through = pc + m.bytes;
  m.width = p.width;
  for (u32 i = 0; i < p.width; ++i) {
    const Instr& in = p.slot[i];
    const isa::OpInfo& info = in.info();

    InlineVec<PhysReg, 12> srcs;
    collect_sources(in, i, srcs);
    for (PhysReg r : srcs) m.srcs.push_back({r, static_cast<u8>(i)});

    PacketMeta::SlotMeta& sm = m.slot[i];
    collect_dests(in, i, sm.dests);
    sm.latency = info.latency;
    sm.issue_interval = info.issue_interval;
    sm.resource = static_cast<i8>(fu_resource_of(info));
    sm.load_data = info.is_load() || info.has(isa::kAtomic);
    sm.cls = in.op == isa::Op::kNop ? kSlotClsNop : static_cast<u8>(info.cls);
    for (PhysReg r : sm.dests) {
      m.dsts.push_back({r, static_cast<u8>(i), sm.latency, sm.load_data});
    }
    m.any_resource = m.any_resource || sm.resource >= 0;
    m.any_dests = m.any_dests || sm.dests.size() > 0;
  }
  // Static control-transfer target (branch / call, always slot 0): record
  // the target address so the Program can cache the target's dense index.
  const isa::OpInfo& info0 = p.slot[0].info();
  if (p.width > 0 && (info0.has(isa::kBranch) || info0.has(isa::kCall))) {
    m.has_static_target = true;
    m.taken_target =
        pc + static_cast<Addr>(static_cast<i64>(p.slot[0].imm) * 4);
  }
  return m;
}

} // namespace majc::sim
