// Instruction-accurate MAJC simulator.
//
// The paper's own performance numbers come from "instruction accurate and
// cycle accurate simulators" (§5); this is the former. It pre-decodes a
// program image, executes packets with full architectural semantics, and
// records trap (console) output. The cycle-accurate model (src/cpu) reuses
// Program and the executor so both agree bit-for-bit on results.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/masm/image.h"
#include "src/sim/exec.h"
#include "src/sim/predecode.h"
#include "src/support/trap.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::sim {

struct ThreadedCode;

/// Pre-decoded code image. Packets are addressable only at their start; a
/// control transfer into the middle of a packet is a model fault.
///
/// Alongside the decoded packets, the Program predecodes a PacketMeta per
/// packet (operand/writeback lists, latencies, fall-through / static-target
/// indices; see predecode.h) so the simulators' inner loops run index-based
/// and derivation-free: the pc -> index hash map is only consulted for
/// dynamic control transfers.
class Program {
public:
  explicit Program(masm::Image image);
  ~Program();  // out-of-line: ThreadedCode is incomplete here

  bool has_packet(Addr pc) const { return index_.count(pc) != 0; }
  const isa::Packet& packet_at(Addr pc) const;
  /// Dense index of the packet at `pc`; raises a kIllegalPacket trap when
  /// `pc` is not a packet boundary (same contract as packet_at).
  u32 index_of(Addr pc) const;
  /// Non-trapping lookup for observers: kNoPacketIndex when `pc` is not a
  /// packet boundary.
  u32 find_index(Addr pc) const {
    auto it = index_.find(pc);
    return it == index_.end() ? kNoPacketIndex : it->second;
  }
  const isa::Packet& packet(u32 index) const { return packets_[index]; }
  const PacketMeta& meta(u32 index) const { return meta_[index]; }
  std::size_t num_packets() const { return packets_.size(); }
  const masm::Image& image() const { return image_; }

  /// Threaded-code form of this program (see threaded.h). Translated lazily
  /// on first use and cached for the Program's lifetime, so the farm's
  /// shared-predecode path pays for translation once per image no matter how
  /// many workers alias the ProgramRef (std::call_once makes the lazy init
  /// thread-safe; the result is immutable afterwards, like the rest of the
  /// Program).
  const ThreadedCode& threaded() const;

private:
  masm::Image image_;
  std::vector<isa::Packet> packets_;
  std::vector<PacketMeta> meta_;
  std::unordered_map<Addr, u32> index_;
  mutable std::once_flag threaded_once_;
  mutable std::unique_ptr<ThreadedCode> threaded_;
};

/// Shared ownership of an immutable predecoded program. A Program is
/// read-only after construction (every accessor is const), so one instance
/// can back any number of concurrently running machines — the farm engine
/// predecodes each image once and every worker aliases it.
using ProgramRef = std::shared_ptr<const Program>;

/// Assemble-and-predecode once; the result is safe to share across threads.
inline ProgramRef make_program(masm::Image image) {
  return std::make_shared<const Program>(std::move(image));
}

/// Copy the image's code and data sections into memory.
void load_image(const masm::Image& img, MemoryBus& mem);

struct RunResult {
  u64 packets = 0;
  u64 instrs = 0;
  bool halted = false;
  TerminationReason reason = TerminationReason::kPacketCap;
  Trap trap;  // valid (code != kNone) only when reason == kTrap
};

/// Functional-mode execution engine. Both produce bit-identical
/// guest-visible state (registers, memory, traps, stats, checkpoints);
/// kThreaded runs the predecoded packets through the translated dispatch
/// records of Program::threaded() and is the default.
enum class ExecBackend : u8 {
  kInterp,
  kThreaded,
};

constexpr const char* exec_backend_name(ExecBackend b) {
  return b == ExecBackend::kInterp ? "interp" : "threaded";
}

/// One-shot diagnostic for a delivered trap: cause, context, the faulting
/// packet disassembled (when pc is a packet boundary) and a register
/// snapshot. Shared by majc_run and the chip-level dump.
std::string trap_report(const Trap& trap, const Program& prog,
                        const CpuState& st);

class FunctionalSim {
public:
  explicit FunctionalSim(masm::Image image,
                         std::size_t mem_bytes = FlatMemory::kDefaultBytes);
  /// Share a predecoded program instead of assembling a private copy. The
  /// program must outlive the sim (shared_ptr guarantees it).
  explicit FunctionalSim(ProgramRef program,
                         std::size_t mem_bytes = FlatMemory::kDefaultBytes);

  /// Reinitialize in place for a fresh run — optionally of a different
  /// program — reusing the memory arena instead of reallocating it. The
  /// resulting state is indistinguishable from a newly constructed sim.
  void reset(ProgramRef program = nullptr);

  /// Execute until HALT, an architected trap, or `max_packets` packets.
  RunResult run(u64 max_packets = 100'000'000);

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }
  FlatMemory& memory() { return mem_; }
  const FlatMemory& memory() const { return mem_; }
  const Program& program() const { return *program_; }
  /// Output accumulated from TRAP (print) instructions.
  const std::string& console() const { return console_; }

  /// Cumulative totals across every run() call (a restored run reports
  /// from-original-start numbers through these, not per-call deltas).
  u64 packets_run() const { return packets_run_; }
  u64 instrs_run() const { return instrs_run_; }

  /// Traps delivered to a guest handler (SETTVEC) instead of ending the run.
  u64 traps_delivered() const { return traps_delivered_; }
  const Trap& last_delivered_trap() const { return last_trap_; }

  /// Arm the integer divide-by-zero trap (default: div/0 yields 0).
  void set_trap_div_zero(bool on) { trap_div_zero_ = on; }

  /// Select the execution engine (guest-visible state is identical either
  /// way). reset() restores the default (threaded), like every other knob.
  void set_backend(ExecBackend b) { backend_ = b; }
  ExecBackend backend() const { return backend_; }

  /// Format one trap according to ConsoleTrap; shared with the SoC model so
  /// functional and timed runs produce identical console text.
  static void format_trap(std::string& out, u32 code, u32 value);

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  RunResult run_interp(u64 max_packets);
  RunResult run_threaded(u64 max_packets);  // defined in threaded.cpp

  ProgramRef program_;
  FlatMemory mem_;
  CpuState state_;
  std::string console_;
  u64 packets_run_ = 0;
  u64 instrs_run_ = 0;
  u64 traps_delivered_ = 0;
  Trap last_trap_;
  bool trap_div_zero_ = false;
  ExecBackend backend_ = ExecBackend::kThreaded;
};

} // namespace majc::sim
