// Integer ALU, compare, conditional-move and multiply/divide semantics.
#include <limits>

#include "src/sim/exec.h"
#include "src/support/bits.h"
#include "src/support/saturate.h"
#include "src/support/trap.h"

namespace majc::sim {

using isa::Instr;
using isa::Op;

void exec_alu(const Instr& in, u32 fu, const CpuState& st, SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  const u32 a = st.reads(in.rs1, fu);
  const u32 b = st.reads(in.rs2, fu);
  const u32 old = st.read(rd);
  const i32 imm = in.imm;
  u32 r = 0;
  switch (in.op) {
    case Op::kAdd: r = a + b; break;
    case Op::kSub: r = a - b; break;
    case Op::kAnd: r = a & b; break;
    case Op::kOr: r = a | b; break;
    case Op::kXor: r = a ^ b; break;
    case Op::kAndn: r = a & ~b; break;
    case Op::kSll: r = a << (b & 31); break;
    case Op::kSrl: r = a >> (b & 31); break;
    case Op::kSra: r = static_cast<u32>(static_cast<i32>(a) >> (b & 31)); break;
    case Op::kAddi: r = a + static_cast<u32>(imm); break;
    case Op::kAndi: r = a & static_cast<u32>(imm); break;
    case Op::kOri: r = a | static_cast<u32>(imm); break;
    case Op::kXori: r = a ^ static_cast<u32>(imm); break;
    case Op::kSlli: r = a << (static_cast<u32>(imm) & 31); break;
    case Op::kSrli: r = a >> (static_cast<u32>(imm) & 31); break;
    case Op::kSrai:
      r = static_cast<u32>(static_cast<i32>(a) >> (static_cast<u32>(imm) & 31));
      break;
    case Op::kSetlo: r = static_cast<u32>(imm); break;
    case Op::kSethi: r = static_cast<u32>(imm & 0xFFFF) << 16; break;
    case Op::kOrlo: r = old | (static_cast<u32>(imm) & 0xFFFF); break;
    case Op::kCmpeq: r = (a == b) ? 1 : 0; break;
    case Op::kCmpne: r = (a != b) ? 1 : 0; break;
    case Op::kCmplt: r = (static_cast<i32>(a) < static_cast<i32>(b)) ? 1 : 0; break;
    case Op::kCmple: r = (static_cast<i32>(a) <= static_cast<i32>(b)) ? 1 : 0; break;
    case Op::kCmpltu: r = (a < b) ? 1 : 0; break;
    case Op::kCmpleu: r = (a <= b) ? 1 : 0; break;
    case Op::kCmovnz: r = (b != 0) ? a : old; break;
    case Op::kCmovz: r = (b == 0) ? a : old; break;
    case Op::kPick: r = (old != 0) ? a : b; break;
    case Op::kSatadd:
      r = static_cast<u32>(sat_add32(static_cast<i32>(a), static_cast<i32>(b)));
      break;
    case Op::kSatsub:
      r = static_cast<u32>(sat_sub32(static_cast<i32>(a), static_cast<i32>(b)));
      break;
    default:
      raise_trap(TrapCause::kIllegalInstruction, "exec_alu: unexpected opcode");
  }
  fx.writes.push_back({rd, r});
}

void exec_muldiv(const Instr& in, u32 fu, const CpuState& st,
                 const ExecEnv& env, SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  const i32 a = static_cast<i32>(st.reads(in.rs1, fu));
  const i32 b = static_cast<i32>(st.reads(in.rs2, fu));
  const i32 old = static_cast<i32>(st.read(rd));
  u32 r = 0;
  switch (in.op) {
    case Op::kMul:
      r = static_cast<u32>(a) * static_cast<u32>(b);
      break;
    case Op::kMulhi:
      r = static_cast<u32>((i64{a} * i64{b}) >> 32);
      break;
    case Op::kMulhiu:
      r = static_cast<u32>((u64{static_cast<u32>(a)} * u64{static_cast<u32>(b)}) >> 32);
      break;
    case Op::kMadd:
      r = static_cast<u32>(old) + static_cast<u32>(a) * static_cast<u32>(b);
      break;
    case Op::kMsub:
      r = static_cast<u32>(old) - static_cast<u32>(a) * static_cast<u32>(b);
      break;
    case Op::kDiv:
      // Division by zero yields 0 and INT_MIN / -1 wraps to INT_MIN: the
      // model keeps divide total (documented choice) unless the run armed
      // the divide-by-zero trap.
      if (b == 0) {
        if (env.trap_div_zero) {
          raise_trap(TrapCause::kDivideByZero, "div with zero divisor");
        }
        r = 0;
      } else if (a == std::numeric_limits<i32>::min() && b == -1) {
        r = static_cast<u32>(a);
      } else {
        r = static_cast<u32>(a / b);
      }
      break;
    case Op::kDivu: {
      const u32 ua = static_cast<u32>(a);
      const u32 ub = static_cast<u32>(b);
      if (ub == 0 && env.trap_div_zero) {
        raise_trap(TrapCause::kDivideByZero, "divu with zero divisor");
      }
      r = (ub == 0) ? 0 : ua / ub;
      break;
    }
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_muldiv: unexpected opcode");
  }
  fx.writes.push_back({rd, r});
}

} // namespace majc::sim
