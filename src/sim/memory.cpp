#include "src/sim/memory.h"

#include <cstring>
#include <string>

#include "src/support/trap.h"

namespace majc::sim {
namespace {

void check_align(Addr a, std::size_t n) {
  if (n > 1 && (a % n) != 0) {
    raise_trap(TrapCause::kMisaligned,
               "misaligned " + std::to_string(n) +
                   "-byte access at address " + std::to_string(a));
  }
}

} // namespace

u8 MemoryBus::read_u8(Addr a) {
  u8 v;
  read(a, {&v, 1});
  return v;
}

u16 MemoryBus::read_u16(Addr a) {
  check_align(a, 2);
  u8 b[2];
  read(a, b);
  u16 v;
  std::memcpy(&v, b, 2);
  return v;
}

u32 MemoryBus::read_u32(Addr a) {
  check_align(a, 4);
  u8 b[4];
  read(a, b);
  u32 v;
  std::memcpy(&v, b, 4);
  return v;
}

u64 MemoryBus::read_u64(Addr a) {
  check_align(a, 8);
  u8 b[8];
  read(a, b);
  u64 v;
  std::memcpy(&v, b, 8);
  return v;
}

void MemoryBus::write_u8(Addr a, u8 v) { write(a, {&v, 1}); }

void MemoryBus::write_u16(Addr a, u16 v) {
  check_align(a, 2);
  u8 b[2];
  std::memcpy(b, &v, 2);
  write(a, b);
}

void MemoryBus::write_u32(Addr a, u32 v) {
  check_align(a, 4);
  u8 b[4];
  std::memcpy(b, &v, 4);
  write(a, b);
}

void MemoryBus::write_u64(Addr a, u64 v) {
  check_align(a, 8);
  u8 b[8];
  std::memcpy(b, &v, 8);
  write(a, b);
}

void FlatMemory::read(Addr addr, std::span<u8> out) {
  if (addr + out.size() > bytes_.size()) {
    raise_trap(TrapCause::kOutOfBounds,
               "memory read out of bounds at address " + std::to_string(addr));
  }
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void FlatMemory::write(Addr addr, std::span<const u8> in) {
  if (addr + in.size() > bytes_.size()) {
    raise_trap(TrapCause::kOutOfBounds,
               "memory write out of bounds at address " + std::to_string(addr));
  }
  std::memcpy(bytes_.data() + addr, in.data(), in.size());
}

} // namespace majc::sim
