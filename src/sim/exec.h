// Packet execution: the instruction-accurate semantics of every opcode.
//
// A packet executes with parallel read semantics: all slots read their
// operands from the pre-packet register state, then all register writes
// commit together (the VLIW contract; only one slot, FU0, touches memory,
// so memory effects need no ordering within a packet).
//
// The same executor backs both the functional simulator and the
// cycle-accurate model, which layers timing on top of the returned
// PacketOutcome, so timed runs compute bit-identical results.
#pragma once

#include <string>

#include "src/isa/encoding.h"
#include "src/sim/memory.h"
#include "src/sim/state.h"
#include "src/support/inline_vec.h"

namespace majc::sim {

struct WriteBack {
  isa::PhysReg reg = 0;
  u32 value = 0;
};

/// The single memory operation a packet may perform (FU0 slot), described
/// for the benefit of the LSU / cache timing model.
struct MemAccess {
  enum class Kind : u8 { kNone, kLoad, kStore, kAtomic, kPrefetch, kMembar };
  Kind kind = Kind::kNone;
  Addr addr = 0;
  u32 bytes = 0;
  u8 attr = 0;  // cache attribute: 0 cached, 1 non-cached, 2 non-allocating
};

/// Console trap codes (the model's printf substitute for tests/examples).
/// Distinct from majc::TrapCause — these are the architected TRAP
/// instruction's service codes, not fault conditions.
enum class ConsoleTrap : u32 {
  kPrintInt = 0,
  kPrintChar = 1,
  kPrintHex = 2,
  kPrintFloat = 3,
};

/// Environment a packet executes in.
struct ExecEnv {
  explicit ExecEnv(MemoryBus& m) : mem(m) {}

  MemoryBus& mem;
  u32 cpu_id = 0;
  u32 thread_id = 0;  // vertical-microthreading context id (GETTID)
  /// Raise a kDivideByZero trap on integer div/divu by zero instead of the
  /// default total semantics (result 0).
  bool trap_div_zero = false;
  /// TRAP instruction output sink: formatted console text is appended here.
  /// May be null (TRAP is then a no-op). Direct member, not a std::function
  /// — this is read on the per-instruction hot path.
  std::string* console = nullptr;
  /// GETTICK source: the driver's live counter — packet count in the
  /// functional sim, cycle count in the cycle-accurate model. May be null
  /// (GETTICK then reads 0).
  const u64* tick = nullptr;

  // Set by the driver before each packet.
  Addr packet_pc = 0;
  Addr fall_through = 0;
};

/// Per-slot side effects gathered before commit.
struct SlotEffects {
  InlineVec<WriteBack, 8> writes;  // up to 8 for group loads
  MemAccess mem;
  bool is_cond_branch = false;
  bool branch_taken = false;
  bool is_call = false;
  bool is_jump = false;
  bool halt = false;
  // Trap-unit side effects (FU0 only), committed with the packet so a
  // trapping slot elsewhere in the packet leaves the trap state untouched.
  bool set_tvec = false;  // SETTVEC: latch `tvec` below into CpuState::tvec
  bool is_rett = false;   // RETT: clears CpuState::in_trap (jump via target)
  Addr tvec = 0;
  Addr target = 0;
};

/// What the driver reports about one executed packet.
struct PacketOutcome {
  u32 width = 0;
  Addr next_pc = 0;
  bool is_cond_branch = false;
  bool branch_taken = false;
  bool is_call = false;
  bool is_jump = false;
  bool halted = false;
  MemAccess mem;
};

// Per-class slot executors (internal; dispatched by execute_packet).
void exec_alu(const isa::Instr& in, u32 fu, const CpuState& st, SlotEffects& fx);
void exec_muldiv(const isa::Instr& in, u32 fu, const CpuState& st,
                 const ExecEnv& env, SlotEffects& fx);
void exec_simd(const isa::Instr& in, u32 fu, const CpuState& st, SlotEffects& fx);
void exec_fp32(const isa::Instr& in, u32 fu, const CpuState& st, SlotEffects& fx);
void exec_fp64(const isa::Instr& in, u32 fu, const CpuState& st, SlotEffects& fx);
void exec_mem_op(const isa::Instr& in, u32 fu, const CpuState& st, ExecEnv& env,
                 SlotEffects& fx);
void exec_control(const isa::Instr& in, u32 fu, const CpuState& st,
                  ExecEnv& env, SlotEffects& fx);

/// Format one console TRAP according to ConsoleTrap; shared by both
/// simulators so functional and timed runs produce identical console text.
void format_console_trap(std::string& out, u32 code, u32 value);

/// Reusable slot-effect storage for execute_packet. Only FU0's effects
/// drive the packet outcome (branch/memory/trap/halt); slots 1..3 are
/// restricted by their FU masks to pure register-writing classes, so they
/// share one accumulator and only its `writes` list is ever consumed.
/// Reusing one scratch across packets avoids re-zero-initializing ~400
/// bytes of SlotEffects on every packet (the old per-call std::array).
struct PacketScratch {
  SlotEffects fx0;  // FU0: fully reset per packet
  SlotEffects fxn;  // slots 1..3 shared: only `writes` reset/consumed
};

/// Execute the packet at st.pc (which must equal the packet's address);
/// commits register writes, performs memory effects and advances st.pc.
PacketOutcome execute_packet(CpuState& st, const isa::Packet& p, ExecEnv& env);

/// Fast-path variant with the packet's precomputed fall-through address
/// (from PacketMeta), skipping the per-issue p.bytes() recomputation.
PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             Addr fall_through, ExecEnv& env);

/// Hot-loop variant: caller owns the scratch, so per-packet setup is a few
/// field resets instead of full SlotEffects construction. All three
/// overloads produce identical architectural effects.
PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             Addr fall_through, ExecEnv& env,
                             PacketScratch& scratch);

struct PacketMeta;

/// Hottest variant: dispatches each slot on the predecoded per-slot op
/// class (PacketMeta::SlotMeta::cls) instead of re-reading the OpInfo
/// table, and takes the fall-through address from the meta. Identical
/// architectural effects to the other overloads.
PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             const PacketMeta& m, ExecEnv& env,
                             PacketScratch& scratch);

} // namespace majc::sim
