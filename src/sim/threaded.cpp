// Threaded-code backend: translation pass + computed-goto dispatch loop.
//
// See threaded.h for the lowering rules and DESIGN.md §13 for the
// equivalence argument. The executor is written against the same semantic
// primitives as the interpreter (CpuState::read/write, the MemoryBus typed
// helpers on the trap path, the per-class exec_* functions for SIMD/FP and
// execute_packet for generic packets), so every guest-visible outcome —
// including trap cause/detail strings — is bit-identical by construction.
#include "src/sim/threaded.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>

#include "src/sim/exec.h"
#include "src/sim/functional_sim.h"
#include "src/sim/predecode.h"
#include "src/support/saturate.h"
#include "src/support/trap.h"

namespace majc::sim {
namespace {

using isa::Instr;
using isa::Op;
using isa::PhysReg;

// Record kinds. The X-macro keeps the enum and the computed-goto label
// table in lockstep (a mismatch is a compile error, not a misdispatch).
// The seven immediate-ALU kinds kAddi..kSrai must stay contiguous: the
// pair-fusion selector is computed as (kind - kAddi).
#define MAJC_REC_KINDS(X)                                                     \
  /* R-form ALU: a=rd, b=rs1, c=rs2 */                                        \
  X(kAdd) X(kSub) X(kAnd) X(kOr) X(kXor) X(kAndn) X(kSll) X(kSrl) X(kSra)     \
  X(kCmpeq) X(kCmpne) X(kCmplt) X(kCmple) X(kCmpltu) X(kCmpleu)               \
  X(kCmovnz) X(kCmovz) X(kPick) X(kSatadd) X(kSatsub)                         \
  /* I-form ALU: a=rd, b=rs1, imm (contiguous; see above) */                  \
  X(kAddi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli) X(kSrai)               \
  X(kOrlo) X(kSetImm) X(kGettick)                                             \
  /* integer multiply family: a=rd, b=rs1, c=rs2 */                           \
  X(kMul) X(kMulhi) X(kMulhiu) X(kMadd) X(kMsub) X(kDiv) X(kDivu)             \
  /* memory: ea = read(b) + read(c) + imm; a = data register */               \
  X(kLdb) X(kLdbu) X(kLdh) X(kLdhu) X(kLdw) X(kLdl) X(kLdg)                   \
  X(kStb) X(kSth) X(kStw) X(kStl) X(kStg) X(kStcw) X(kCas) X(kSwap)           \
  /* control (slot 0, executed last) */                                       \
  X(kBnz) X(kBz) X(kCallRec) X(kJmplRec) X(kHaltRec)                          \
  X(kTrapCon) X(kSettvecRec)                                                  \
  /* SIMD / FP through the per-class executors: arg = slot_ops index */      \
  X(kSlotOp) X(kSlotOp2)                                                      \
  /* direct SIMD / FP specializations for the Table 1/2 hot ops */            \
  X(kDotp) X(kDotp2) X(kDotp3) X(kFmaddF32) X(kFmadd2)                        \
  /* fused records */                                                         \
  X(kIaluIalu) X(kAluAlu) X(kLdwAddi) X(kStwAddi) X(kAddiBnz) X(kAddiBz)      \
  /* deferred-commit parallel packet: optional mem slot 0 + slot-op slots */  \
  X(kMemSlots)                                                                \
  /* fallbacks / sentinels */                                                 \
  X(kNopRec) X(kGenericPacket) X(kEndOfCode)

enum Kind : u8 {
#define MAJC_KIND_ENUM(k) k,
  MAJC_REC_KINDS(MAJC_KIND_ENUM)
#undef MAJC_KIND_ENUM
      kNumKinds
};
static_assert(kNumKinds <= 256);

using Rec = ThreadedCode::Rec;
using SlotOp = ThreadedCode::SlotOp;

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

/// Immediate-ALU fusion selector for kIaluIalu (kind must be kAddi..kSrai).
constexpr u8 ialu_sel(u8 kind) { return static_cast<u8>(kind - kAddi); }

constexpr bool is_ialu_kind(u8 kind) { return kind >= kAddi && kind <= kSrai; }

const char* ialu_name(u8 kind) {
  static constexpr const char* kNames[] = {"addi", "andi", "ori", "xori",
                                           "slli", "srli", "srai"};
  return kNames[kind - kAddi];
}

/// Register-ALU fusion selector for kAluAlu (kind must be kAdd..kCmpleu;
/// 15 kinds, so a selector still fits in a nibble).
constexpr u8 alu_sel(u8 kind) { return static_cast<u8>(kind - kAdd); }

constexpr bool is_alu_kind(u8 kind) { return kind >= kAdd && kind <= kCmpleu; }

const char* alu_name(u8 kind) {
  static constexpr const char* kNames[] = {
      "add",   "sub",   "and",    "or",    "xor",   "andn",  "sll",   "srl",
      "sra",   "cmpeq", "cmpne",  "cmplt", "cmple", "cmpltu", "cmpleu"};
  return kNames[kind - kAdd];
}

/// Does slot 0 of this packet redirect control flow? Such packets execute
/// slots 1..w-1 first and the transfer last (the transfer decides the next
/// record, after the other slots committed).
bool is_transfer(const Instr& in) {
  const isa::OpInfo& info = in.info();
  return info.has(isa::kBranch) || info.has(isa::kCall) ||
         info.has(isa::kJump) || info.has(isa::kHalt);
}

/// Sequential execution in `order` is equivalent to the packet's parallel
/// read / joint commit iff no earlier-executed slot's destinations intersect
/// a later-executed slot's sources or destinations.
bool sequential_ok(const PacketMeta& m, const u32* order, u32 n) {
  for (u32 ei = 0; ei + 1 < n; ++ei) {
    const auto& de = m.slot[order[ei]].dests;
    if (de.size() == 0) continue;
    for (u32 li = ei + 1; li < n; ++li) {
      const u32 l = order[li];
      for (PhysReg r : de) {
        for (const PacketMeta::SrcRead& s : m.srcs) {
          if (s.fu == l && s.reg == r) return false;
        }
        for (PhysReg dl : m.slot[l].dests) {
          if (dl == r) return false;
        }
      }
    }
  }
  return true;
}

/// Lower one slot to a record. Returns false when the op has no specialized
/// lowering (the whole packet then falls back to kGenericPacket).
bool lower_slot(const Instr& in, u32 fu, const PacketMeta& m,
                std::vector<Rec>& out, std::vector<SlotOp>& slot_ops) {
  const isa::OpInfo& info = in.info();
  Rec r;
  r.pc = static_cast<u32>(m.pc);
  const PhysReg rd = isa::to_phys(in.rd, fu);
  const PhysReg rs1 = isa::to_phys(in.rs1, fu);
  const PhysReg rs2 = isa::to_phys(in.rs2, fu);

  auto rrr = [&](u8 kind) {
    r.kind = kind;
    r.a = rd;
    r.b = rs1;
    r.c = rs2;
    out.push_back(r);
  };
  auto rri = [&](u8 kind) {
    r.kind = kind;
    r.a = rd;
    r.b = rs1;
    r.imm = in.imm;
    out.push_back(r);
  };
  auto set_imm = [&](u32 value) {
    r.kind = kSetImm;
    r.a = rd;
    r.arg = value;
    out.push_back(r);
  };
  // Unified load/store addressing: ea = read(b) + read(c) + imm. The R form
  // uses (rs1, rs2, 0); the I form uses (rs1, g0, imm) — g0 reads zero.
  auto mem = [&](u8 kind) {
    r.kind = kind;
    r.a = rd;
    r.b = rs1;
    if (info.form == isa::Form::kI) {
      r.c = 0;
      r.imm = in.imm;
    } else {
      r.c = rs2;
      r.imm = 0;
    }
    out.push_back(r);
  };
  auto slot_op = [&](u8 kind) {
    r.kind = kind;
    r.arg = static_cast<u32>(slot_ops.size());
    slot_ops.push_back({in, static_cast<u8>(fu)});
    out.push_back(r);
  };

  switch (in.op) {
    case Op::kAdd: rrr(kAdd); return true;
    case Op::kSub: rrr(kSub); return true;
    case Op::kAnd: rrr(kAnd); return true;
    case Op::kOr: rrr(kOr); return true;
    case Op::kXor: rrr(kXor); return true;
    case Op::kAndn: rrr(kAndn); return true;
    case Op::kSll: rrr(kSll); return true;
    case Op::kSrl: rrr(kSrl); return true;
    case Op::kSra: rrr(kSra); return true;
    case Op::kCmpeq: rrr(kCmpeq); return true;
    case Op::kCmpne: rrr(kCmpne); return true;
    case Op::kCmplt: rrr(kCmplt); return true;
    case Op::kCmple: rrr(kCmple); return true;
    case Op::kCmpltu: rrr(kCmpltu); return true;
    case Op::kCmpleu: rrr(kCmpleu); return true;
    case Op::kCmovnz: rrr(kCmovnz); return true;
    case Op::kCmovz: rrr(kCmovz); return true;
    case Op::kPick: rrr(kPick); return true;
    case Op::kSatadd: rrr(kSatadd); return true;
    case Op::kSatsub: rrr(kSatsub); return true;
    case Op::kAddi: rri(kAddi); return true;
    case Op::kAndi: rri(kAndi); return true;
    case Op::kOri: rri(kOri); return true;
    case Op::kXori: rri(kXori); return true;
    case Op::kSlli: rri(kSlli); return true;
    case Op::kSrli: rri(kSrli); return true;
    case Op::kSrai: rri(kSrai); return true;
    case Op::kSetlo: set_imm(static_cast<u32>(in.imm)); return true;
    case Op::kSethi:
      set_imm(static_cast<u32>(in.imm & 0xFFFF) << 16);
      return true;
    case Op::kOrlo:
      r.kind = kOrlo;
      r.a = rd;
      r.imm = in.imm;
      out.push_back(r);
      return true;
    case Op::kMul: rrr(kMul); return true;
    case Op::kMulhi: rrr(kMulhi); return true;
    case Op::kMulhiu: rrr(kMulhiu); return true;
    case Op::kMadd: rrr(kMadd); return true;
    case Op::kMsub: rrr(kMsub); return true;
    case Op::kDiv: rrr(kDiv); return true;
    case Op::kDivu: rrr(kDivu); return true;
    case Op::kLdb: case Op::kLdbi: mem(kLdb); return true;
    case Op::kLdbu: case Op::kLdbui: mem(kLdbu); return true;
    case Op::kLdh: case Op::kLdhi: mem(kLdh); return true;
    case Op::kLdhu: case Op::kLdhui: mem(kLdhu); return true;
    case Op::kLdw: case Op::kLdwi: mem(kLdw); return true;
    case Op::kLdl: case Op::kLdli: mem(kLdl); return true;
    case Op::kLdg: case Op::kLdgi: mem(kLdg); return true;
    case Op::kStb: case Op::kStbi: mem(kStb); return true;
    case Op::kSth: case Op::kSthi: mem(kSth); return true;
    case Op::kStw: case Op::kStwi: mem(kStw); return true;
    case Op::kStl: case Op::kStli: mem(kStl); return true;
    case Op::kStg: case Op::kStgi: mem(kStg); return true;
    case Op::kStcw: rrr(kStcw); return true;
    case Op::kCas: rrr(kCas); return true;
    case Op::kSwap: rrr(kSwap); return true;
    case Op::kPref: case Op::kPrefi: case Op::kMembar:
      // Non-faulting, no architectural effect in functional mode: emit
      // nothing (the packet's ins_add still counts the instruction).
      return true;
    case Op::kBnz:
    case Op::kBz:
      r.kind = in.op == Op::kBnz ? kBnz : kBz;
      r.a = rd;  // condition register
      r.imm = in.imm;
      r.arg = m.taken_index;  // packet index; patched to a record index
      out.push_back(r);
      return true;
    case Op::kCall:
      r.kind = kCallRec;
      r.imm = in.imm;
      r.arg = m.taken_index;
      out.push_back(r);
      return true;
    case Op::kJmpl:
      r.kind = kJmplRec;
      r.a = rd;
      r.b = rs1;
      out.push_back(r);
      return true;
    case Op::kHalt:
      r.kind = kHaltRec;
      out.push_back(r);
      return true;
    case Op::kNop:
      return true;  // no record; counted through ins_add
    case Op::kTrap:
      r.kind = kTrapCon;
      r.a = rs1;
      r.imm = in.imm;
      out.push_back(r);
      return true;
    case Op::kGetcpu:
    case Op::kGettid:
      set_imm(0);  // FunctionalSim runs cpu 0 / thread 0
      return true;
    case Op::kGettick:
      r.kind = kGettick;
      r.a = rd;
      out.push_back(r);
      return true;
    case Op::kSettvec:
      r.kind = kSettvecRec;
      r.a = rd;
      out.push_back(r);
      return true;
    case Op::kMftr:
    case Op::kRett:
      // Trap-handler plumbing: cold by construction; the generic lowering
      // reuses execute_packet and is exactly the interpreter.
      return false;
    case Op::kDotp: rrr(kDotp); return true;    // Table 2 DCT/FIR workhorse
    case Op::kFmadd: rrr(kFmaddF32); return true;  // FP FIR/LMS workhorse
    default:
      if (info.cls == isa::OpClass::kSimd || info.cls == isa::OpClass::kFp32 ||
          info.cls == isa::OpClass::kFp64) {
        slot_op(kSlotOp);
        return true;
      }
      return false;
  }
}

/// Memory record kind for ops with the unified ea = b + c + imm lowering
/// (kMemSlots packs one of these beside its slot ops); -1 for anything else.
int mem_kind_of(Op op) {
  switch (op) {
    case Op::kLdb: case Op::kLdbi: return kLdb;
    case Op::kLdbu: case Op::kLdbui: return kLdbu;
    case Op::kLdh: case Op::kLdhi: return kLdh;
    case Op::kLdhu: case Op::kLdhui: return kLdhu;
    case Op::kLdw: case Op::kLdwi: return kLdw;
    case Op::kLdl: case Op::kLdli: return kLdl;
    case Op::kLdg: case Op::kLdgi: return kLdg;
    case Op::kStb: case Op::kStbi: return kStb;
    case Op::kSth: case Op::kSthi: return kSth;
    case Op::kStw: case Op::kStwi: return kStw;
    case Op::kStl: case Op::kStli: return kStl;
    case Op::kStg: case Op::kStgi: return kStg;
    default: return -1;
  }
}

/// Fuse adjacent records of one packet (the list is in execution order and
/// already proven sequential-equivalent, so combining two neighbours into
/// one record preserves semantics). Returns true and writes `f` on a match.
bool fuse_pair(const Rec& x, const Rec& y, const std::vector<SlotOp>& slot_ops,
               ShapeStats& stats, Rec& f) {
  if (is_ialu_kind(x.kind) && is_ialu_kind(y.kind)) {
    f = Rec{};
    f.kind = kIaluIalu;
    f.a = x.a;
    f.b = x.b;
    f.imm = x.imm;
    f.c = y.a;
    f.d = y.b;
    f.imm2 = y.imm;
    f.e = static_cast<u8>((ialu_sel(y.kind) << 4) | ialu_sel(x.kind));
    ++stats.fused[std::string(ialu_name(x.kind)) + "+" + ialu_name(y.kind)];
    return true;
  }
  if ((x.kind == kLdw || x.kind == kStw) && y.kind == kAddi) {
    f = Rec{};
    f.kind = x.kind == kLdw ? kLdwAddi : kStwAddi;
    f.a = x.a;
    f.b = x.b;
    f.c = x.c;
    f.imm = x.imm;
    f.d = y.a;
    f.e = y.b;
    f.imm2 = y.imm;
    ++stats.fused[std::string(x.kind == kLdw ? "ldw" : "stw") + "+addi"];
    return true;
  }
  if (is_alu_kind(x.kind) && is_alu_kind(y.kind)) {
    f = Rec{};
    f.kind = kAluAlu;
    f.a = x.a;
    f.b = x.b;
    f.c = x.c;
    f.d = y.a;
    f.e = y.b;
    f.imm = y.c;
    f.imm2 = static_cast<i32>((alu_sel(y.kind) << 4) | alu_sel(x.kind));
    ++stats.fused[std::string(alu_name(x.kind)) + "+" + alu_name(y.kind)];
    return true;
  }
  if (x.kind == kDotp && y.kind == kDotp) {
    f = Rec{};
    f.kind = kDotp2;
    f.a = x.a;
    f.b = x.b;
    f.c = x.c;
    f.d = y.a;
    f.e = y.b;
    f.imm = y.c;
    ++stats.fused["dotp+dotp"];
    return true;
  }
  if (x.kind == kDotp2 && y.kind == kDotp) {
    // Chained by the peephole's re-check after each fusion.
    f = x;
    f.kind = kDotp3;
    f.imm2 = static_cast<i32>(static_cast<u32>(x.imm & 0xFF) |
                              (u32{y.a} << 8) | (u32{y.b} << 16) |
                              (u32{y.c} << 24));
    ++stats.fused["dotp+dotp+dotp"];
    return true;
  }
  if (x.kind == kFmaddF32 && y.kind == kFmaddF32) {
    f = Rec{};
    f.kind = kFmadd2;
    f.a = x.a;
    f.b = x.b;
    f.c = x.c;
    f.d = y.a;
    f.e = y.b;
    f.imm = y.c;
    ++stats.fused["fmadd+fmadd"];
    return true;
  }
  if (x.kind == kSlotOp && y.kind == kSlotOp) {
    f = Rec{};
    f.kind = kSlotOp2;
    f.arg = x.arg;
    f.imm = static_cast<i32>(y.arg);
    ++stats.fused[std::string(slot_ops[x.arg].in.info().mnemonic) + "+" +
                  std::string(slot_ops[y.arg].in.info().mnemonic)];
    return true;
  }
  return false;
}

} // namespace

std::string format_shape_stats(const ShapeStats& s, std::size_t top_n) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "packets %llu  records %llu  generic %llu  fused-pairs %llu  "
                "fused-cross %llu\n",
                static_cast<unsigned long long>(s.packets),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.generic_packets),
                static_cast<unsigned long long>(s.fused_pairs),
                static_cast<unsigned long long>(s.fused_cross));
  out += buf;
  auto dump = [&](const char* title, const std::map<std::string, u64>& m,
                  std::size_t limit) {
    std::vector<std::pair<std::string, u64>> rows(m.begin(), m.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    out += title;
    out += ":\n";
    if (rows.empty()) out += "  (none)\n";
    for (std::size_t i = 0; i < rows.size() && i < limit; ++i) {
      std::snprintf(buf, sizeof buf, "  %-32s %llu\n", rows[i].first.c_str(),
                    static_cast<unsigned long long>(rows[i].second));
      out += buf;
    }
  };
  dump("top packet shapes", s.shapes, top_n);
  dump("fused shapes", s.fused, s.fused.size());
  return out;
}

ThreadedCode translate(const Program& prog) {
  ThreadedCode tc;
  const u32 n = static_cast<u32>(prog.num_packets());
  tc.stats.packets = n;

  // Pass 1: lower each packet to its own record list (execution order),
  // branch targets still expressed as packet indices.
  std::vector<std::vector<Rec>> lists(n);
  for (u32 i = 0; i < n; ++i) {
    const isa::Packet& p = prog.packet(i);
    const PacketMeta& m = prog.meta(i);

    std::string shape;
    for (u32 s = 0; s < p.width; ++s) {
      if (s) shape += '+';
      shape += p.slot[s].info().mnemonic;
    }
    ++tc.stats.shapes[shape];

    // Execution order: trap-capable slot-0 ops (memory, divide) first so a
    // trapping packet commits nothing; control transfers last so the other
    // slots committed before the flow redirects.
    u32 order[isa::kMaxSlots];
    u32 w = 0;
    const bool transfer = p.width > 0 && is_transfer(p.slot[0]);
    if (transfer) {
      for (u32 s = 1; s < p.width; ++s) order[w++] = s;
      order[w++] = 0;
    } else {
      for (u32 s = 0; s < p.width; ++s) order[w++] = s;
    }

    std::vector<Rec>& out = lists[i];
    bool ok = sequential_ok(m, order, w);
    if (ok) {
      for (u32 s = 0; s < w && ok; ++s) {
        ok = lower_slot(p.slot[order[s]], order[s], m, out, tc.slot_ops);
      }
    }
    if (ok && out.empty()) {
      // nop / prefetch / membar packets: a record must still retire them.
      Rec r;
      r.kind = kNopRec;
      r.pc = static_cast<u32>(m.pc);
      out.push_back(r);
    }
    if (!ok) {
      out.clear();
      // Parallel-safe fast path for the 2-wide immediate-ALU packets the
      // scheduler emits with intra-packet hazards (parallel-read semantics):
      // kIaluIalu reads both sources before writing either destination.
      auto ikind = [](const Instr& in) -> int {
        switch (in.op) {
          case Op::kAddi: return kAddi;
          case Op::kAndi: return kAndi;
          case Op::kOri: return kOri;
          case Op::kXori: return kXori;
          case Op::kSlli: return kSlli;
          case Op::kSrli: return kSrli;
          case Op::kSrai: return kSrai;
          default: return -1;
        }
      };
      const int k0 = p.width == 2 ? ikind(p.slot[0]) : -1;
      const int k1 = p.width == 2 ? ikind(p.slot[1]) : -1;
      // Deferred-commit parallel packet: slot 0 is a unified-addressing
      // memory op (or contributes nothing), every other slot runs through a
      // per-class executor. The slot ops evaluate into scratch effects that
      // commit only after the (trap-capable) memory op succeeded, so this
      // shape needs no hazard proof at all — it IS the parallel-read,
      // slot-order-commit semantics, minus the generic packet walk.
      bool mem_slots_ok = !transfer && p.width >= 2;
      int mk = 0xFF;  // "no memory op"
      if (mem_slots_ok) {
        const Instr& s0 = p.slot[0];
        if (s0.op == Op::kNop || s0.op == Op::kPref || s0.op == Op::kPrefi ||
            s0.op == Op::kMembar) {
          mk = 0xFF;
        } else {
          mk = mem_kind_of(s0.op);
          mem_slots_ok = mk >= 0;
        }
      }
      u32 n_slot_ops = 0;
      if (mem_slots_ok) {
        for (u32 s = 1; s < p.width && mem_slots_ok; ++s) {
          const isa::OpClass cls = p.slot[s].info().cls;
          if (p.slot[s].op == Op::kNop) continue;
          mem_slots_ok = cls == isa::OpClass::kSimd ||
                         cls == isa::OpClass::kFp32 ||
                         cls == isa::OpClass::kFp64;
          if (mem_slots_ok) ++n_slot_ops;
        }
        mem_slots_ok = mem_slots_ok && n_slot_ops > 0;
      }
      if (k0 >= 0 && k1 >= 0) {
        Rec f;
        f.kind = kIaluIalu;
        f.pc = static_cast<u32>(m.pc);
        f.a = isa::to_phys(p.slot[0].rd, 0);
        f.b = isa::to_phys(p.slot[0].rs1, 0);
        f.imm = p.slot[0].imm;
        f.c = isa::to_phys(p.slot[1].rd, 1);
        f.d = isa::to_phys(p.slot[1].rs1, 1);
        f.imm2 = p.slot[1].imm;
        f.e = static_cast<u8>((ialu_sel(static_cast<u8>(k1)) << 4) |
                              ialu_sel(static_cast<u8>(k0)));
        out.push_back(f);
        ++tc.stats.fused_pairs;
        ++tc.stats.fused[std::string(ialu_name(static_cast<u8>(k0))) + "+" +
                         ialu_name(static_cast<u8>(k1))];
      } else if (mem_slots_ok) {
        Rec f;
        f.kind = kMemSlots;
        f.pc = static_cast<u32>(m.pc);
        f.d = static_cast<u8>(mk);
        if (mk != 0xFF) {
          const Instr& s0 = p.slot[0];
          f.a = isa::to_phys(s0.rd, 0);
          f.b = isa::to_phys(s0.rs1, 0);
          if (s0.info().form == isa::Form::kI) {
            f.c = 0;
            f.imm = s0.imm;
          } else {
            f.c = isa::to_phys(s0.rs2, 0);
            f.imm = 0;
          }
        }
        f.arg = static_cast<u32>(tc.slot_ops.size());
        f.e = static_cast<u8>(n_slot_ops);
        for (u32 s = 1; s < p.width; ++s) {
          if (p.slot[s].op == Op::kNop) continue;
          tc.slot_ops.push_back({p.slot[s], static_cast<u8>(s)});
        }
        out.push_back(f);
      } else {
        Rec r;
        r.kind = kGenericPacket;
        r.pc = static_cast<u32>(m.pc);
        r.imm = static_cast<i32>(i);
        r.arg = m.taken_index;  // packet index; patched below
        out.push_back(r);
        ++tc.stats.generic_packets;
      }
    }

    // Intra-packet peephole fusion over adjacent records. A successful
    // fusion re-checks the same position so pairs chain into triples
    // (dotp+dotp+dotp is the DCT kernels' signature shape).
    for (std::size_t j = 0; j + 1 < out.size();) {
      Rec f;
      if (fuse_pair(out[j], out[j + 1], tc.slot_ops, tc.stats, f)) {
        f.pc = out[j].pc;
        out[j] = f;
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        ++tc.stats.fused_pairs;
      } else {
        ++j;
      }
    }

    // The last-executed record retires the packet.
    out.back().pk_add = 1;
    out.back().ins_add = static_cast<u8>(m.width);
  }

  // Pass 2: cross-packet fusion of the add-immediate + conditional-branch
  // loop idiom. The fused record is prepended at packet A's entry; A's
  // unfused record stays behind it (the packet-cap-safe fallback) and B's
  // records stay at B's own entry (branch targets into B keep working).
  for (u32 i = 0; i + 1 < n; ++i) {
    std::vector<Rec>& a = lists[i];
    const std::vector<Rec>& b = lists[i + 1];
    if (a.size() != 1 || b.size() != 1) continue;
    if (a[0].kind != kAddi || (b[0].kind != kBnz && b[0].kind != kBz)) continue;
    if (prog.meta(i).next_index != i + 1) continue;
    if (a[0].a == 0 || a[0].a != b[0].a) continue;  // branch reads the sum
    if (b[0].arg == kNoPacketIndex) continue;       // taken target translated
    if (prog.meta(i + 1).next_index == kNoPacketIndex) continue;
    Rec f;
    f.kind = b[0].kind == kBnz ? kAddiBnz : kAddiBz;
    f.pc = a[0].pc;
    f.a = a[0].a;
    f.b = a[0].b;
    f.imm = a[0].imm;
    f.arg = b[0].arg;  // taken packet index; patched below
    f.imm2 = static_cast<i32>(prog.meta(i + 1).next_index);  // not-taken pkt
    f.pk_add = 2;
    f.ins_add = 2;
    a.insert(a.begin(), f);
    ++tc.stats.fused_cross;
    ++tc.stats.fused[b[0].kind == kBnz ? "addi+bnz" : "addi+bz"];
  }

  // Pass 3: concatenate and patch packet indices to record indices.
  tc.entry.resize(n);
  for (u32 i = 0; i < n; ++i) {
    tc.entry[i] = static_cast<u32>(tc.recs.size());
    tc.recs.insert(tc.recs.end(), lists[i].begin(), lists[i].end());
  }
  Rec end;
  end.kind = kEndOfCode;
  end.pc = static_cast<u32>(n == 0 ? prog.image().code_base
                                   : prog.meta(n - 1).fall_through);
  tc.recs.push_back(end);

  for (Rec& r : tc.recs) {
    switch (r.kind) {
      case kBnz:
      case kBz:
      case kCallRec:
      case kGenericPacket:
        r.arg = r.arg < n ? tc.entry[r.arg] : kNoRec;
        break;
      case kAddiBnz:
      case kAddiBz:
        r.arg = tc.entry[r.arg];
        r.imm2 = static_cast<i32>(tc.entry[static_cast<u32>(r.imm2)]);
        break;
      default:
        break;
    }
  }
  tc.stats.records = tc.recs.size();
  return tc;
}

// ---------------------------------------------------------------------------
// Program integration
// ---------------------------------------------------------------------------

Program::~Program() = default;

const ThreadedCode& Program::threaded() const {
  std::call_once(threaded_once_, [&] {
    threaded_ = std::make_unique<ThreadedCode>(translate(*this));
  });
  return *threaded_;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

struct ExecCtx {
  const Program& prog;
  const ThreadedCode& tc;
  CpuState& st;
  ExecEnv& env;
  RunResult& res;
  u64& packets_run;
  u64& instrs_run;
  u64 max_packets;
  u8* mbase;
  // Per-granule fast-path bounds: ea <= limN iff [ea, ea+N) is in range
  // (negative when the arena is smaller than the granule).
  i64 lim1, lim2, lim4, lim8, lim32;
};

/// Evaluate one side-table slot op through its per-class executor into `fx`
/// — exact semantics reuse for SIMD/FP (these ops cannot trap: the executors
/// cover every opcode of their class).
inline void eval_slot_op(ExecCtx& cx, const SlotOp& so, SlotEffects& fx) {
  switch (so.in.info().cls) {
    case isa::OpClass::kSimd: exec_simd(so.in, so.fu, cx.st, fx); break;
    case isa::OpClass::kFp32: exec_fp32(so.in, so.fu, cx.st, fx); break;
    default: exec_fp64(so.in, so.fu, cx.st, fx); break;
  }
}

inline void run_slot_op(ExecCtx& cx, u32 idx) {
  SlotEffects fx;
  eval_slot_op(cx, cx.tc.slot_ops[idx], fx);
  for (const WriteBack& wb : fx.writes) cx.st.write(wb.reg, wb.value);
}

// Direct-specialization helpers; bit-exact twins of the exec_simd / exec_fp32
// bodies for dotp and fmadd.
constexpr i32 sx16(u32 v) { return static_cast<i16>(static_cast<u16>(v)); }

inline u32 dotp_eval(u32 old, u32 a, u32 b) {
  return old + static_cast<u32>(sx16(a >> 16) * sx16(b >> 16) +
                                sx16(a) * sx16(b));
}

inline u32 fmadd_eval(u32 acc, u32 a, u32 b) {
  return std::bit_cast<u32>(std::fmaf(std::bit_cast<float>(a),
                                      std::bit_cast<float>(b),
                                      std::bit_cast<float>(acc)));
}

/// The deferred memory op of a kMemSlots record: executes (and may throw)
/// before any slot-op effect commits, then commits its own loads — slot 0
/// commits first, like the interpreter. Uses the MemoryBus typed helpers for
/// identical trap cause/detail text.
void exec_mem_slot(ExecCtx& cx, CpuState& st, const Rec* rp) {
  st.pc = rp->pc;
  const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
  MemoryBus& mem = cx.env.mem;
  switch (rp->d) {
    case kLdb:
      st.write(rp->a, static_cast<u32>(static_cast<i32>(
                          static_cast<i8>(mem.read_u8(ea)))));
      break;
    case kLdbu: st.write(rp->a, mem.read_u8(ea)); break;
    case kLdh:
      st.write(rp->a, static_cast<u32>(static_cast<i32>(
                          static_cast<i16>(mem.read_u16(ea)))));
      break;
    case kLdhu: st.write(rp->a, mem.read_u16(ea)); break;
    case kLdw: st.write(rp->a, mem.read_u32(ea)); break;
    case kLdl: {
      const u64 v = mem.read_u64(ea);
      st.write(rp->a, static_cast<u32>(v >> 32));
      st.write(static_cast<PhysReg>(rp->a + 1), static_cast<u32>(v));
      break;
    }
    case kLdg: {
      u32 tmp[8];  // gather before committing (trapping ldg commits nothing)
      for (u32 i = 0; i < 8; ++i) tmp[i] = mem.read_u32(ea + 4 * i);
      for (u32 i = 0; i < 8; ++i) {
        st.write(static_cast<PhysReg>(rp->a + i), tmp[i]);
      }
      break;
    }
    case kStb: mem.write_u8(ea, static_cast<u8>(st.read(rp->a))); break;
    case kSth: mem.write_u16(ea, static_cast<u16>(st.read(rp->a))); break;
    case kStw: mem.write_u32(ea, st.read(rp->a)); break;
    case kStl:
      mem.write_u64(ea, (u64{st.read(rp->a)} << 32) |
                            st.read(static_cast<PhysReg>(rp->a + 1)));
      break;
    default:  // kStg
      for (u32 i = 0; i < 8; ++i) {
        mem.write_u32(ea + 4 * i, st.read(static_cast<PhysReg>(rp->a + i)));
      }
      break;
  }
}

inline u32 alu_eval(u32 sel, u32 x, u32 y) {
  switch (sel) {
    case 0: return x + y;
    case 1: return x - y;
    case 2: return x & y;
    case 3: return x | y;
    case 4: return x ^ y;
    case 5: return x & ~y;
    case 6: return x << (y & 31);
    case 7: return x >> (y & 31);
    case 8: return static_cast<u32>(static_cast<i32>(x) >> (y & 31));
    case 9: return x == y ? 1 : 0;
    case 10: return x != y ? 1 : 0;
    case 11: return static_cast<i32>(x) < static_cast<i32>(y) ? 1 : 0;
    case 12: return static_cast<i32>(x) <= static_cast<i32>(y) ? 1 : 0;
    case 13: return x < y ? 1 : 0;
    default: return x <= y ? 1 : 0;
  }
}

inline u32 ialu_eval(u32 sel, u32 a, i32 imm) {
  switch (sel) {
    case 0: return a + static_cast<u32>(imm);
    case 1: return a & static_cast<u32>(imm);
    case 2: return a | static_cast<u32>(imm);
    case 3: return a ^ static_cast<u32>(imm);
    case 4: return a << (static_cast<u32>(imm) & 31);
    case 5: return a >> (static_cast<u32>(imm) & 31);
    default:
      return static_cast<u32>(static_cast<i32>(a) >>
                              (static_cast<u32>(imm) & 31));
  }
}

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(MAJC_THREADED_SWITCH_DISPATCH)
#define MAJC_COMPUTED_GOTO 1
#else
#define MAJC_COMPUTED_GOTO 0
#endif

#if MAJC_COMPUTED_GOTO
#define CASE(k) L_##k
#define DISPATCH() goto* kLbl[rp->kind]
#else
#define CASE(k) case k
#define DISPATCH() continue
#endif

// Retire the packet this record completes (interior records carry
// pk_add == 0) and fall through to the next record. On a cap exit st.pc is
// the next unexecuted packet's address — records are contiguous, so rp[1]
// exists (the stream ends with kEndOfCode) and rp[1].pc is the fall-through.
#define RETIRE_NEXT()                                        \
  do {                                                       \
    if (rp->pk_add != 0) {                                   \
      cx.res.packets += rp->pk_add;                          \
      cx.packets_run += rp->pk_add;                          \
      cx.res.instrs += rp->ins_add;                          \
      cx.instrs_run += rp->ins_add;                          \
      if (cx.res.packets >= cx.max_packets) {                \
        st.pc = rp[1].pc;                                    \
        return;                                              \
      }                                                      \
    }                                                        \
    ++rp;                                                    \
    DISPATCH();                                              \
  } while (0)

// Retire a control-transfer record and redirect. Mirrors the interpreter's
// order exactly: retire, then cap check (a cap exit never resolves the
// target — a taken branch to a non-boundary address on the cap-th packet
// exits kPacketCap without trapping), then resolve.
#define RETIRE_TRANSFER(taken_expr)                                          \
  do {                                                                       \
    const bool tk = (taken_expr);                                            \
    cx.res.packets += 1;                                                     \
    cx.packets_run += 1;                                                     \
    cx.res.instrs += rp->ins_add;                                            \
    cx.instrs_run += rp->ins_add;                                            \
    if (tk) {                                                                \
      if (rp->arg != kNoRec) {                                               \
        const Rec* nx = recs + rp->arg;                                      \
        if (cx.res.packets >= cx.max_packets) {                              \
          st.pc = nx->pc;                                                    \
          return;                                                            \
        }                                                                    \
        rp = nx;                                                             \
        DISPATCH();                                                          \
      }                                                                      \
      st.pc = Addr{rp->pc} +                                                 \
              static_cast<Addr>(static_cast<i64>(rp->imm) * 4);              \
      if (cx.res.packets >= cx.max_packets) return;                          \
      cx.prog.index_of(st.pc); /* not a packet boundary: throws */           \
    }                                                                        \
    if (cx.res.packets >= cx.max_packets) {                                  \
      st.pc = rp[1].pc;                                                      \
      return;                                                                \
    }                                                                        \
    ++rp;                                                                    \
    DISPATCH();                                                              \
  } while (0)

/// Run records until the guest halts or the packet cap is reached; throws
/// TrapException for architected traps (the caller delivers or terminates).
/// Invariant at every throw site: st.pc names the faulting packet (or the
/// invalid transfer target), exactly like the interpreter.
void exec_records(ExecCtx& cx, u32 start_rec) {
  const Rec* const recs = cx.tc.recs.data();
  const Rec* rp = recs + start_rec;
  CpuState& st = cx.st;

#if MAJC_COMPUTED_GOTO
  static const void* const kLbl[] = {
#define MAJC_KIND_LBL(k) &&L_##k,
      MAJC_REC_KINDS(MAJC_KIND_LBL)
#undef MAJC_KIND_LBL
  };
  DISPATCH();
#else
  for (;;) {
    switch (static_cast<Kind>(rp->kind)) {
#endif

  CASE(kAdd): {
    st.write(rp->a, st.read(rp->b) + st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kSub): {
    st.write(rp->a, st.read(rp->b) - st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kAnd): {
    st.write(rp->a, st.read(rp->b) & st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kOr): {
    st.write(rp->a, st.read(rp->b) | st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kXor): {
    st.write(rp->a, st.read(rp->b) ^ st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kAndn): {
    st.write(rp->a, st.read(rp->b) & ~st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kSll): {
    st.write(rp->a, st.read(rp->b) << (st.read(rp->c) & 31));
    RETIRE_NEXT();
  }
  CASE(kSrl): {
    st.write(rp->a, st.read(rp->b) >> (st.read(rp->c) & 31));
    RETIRE_NEXT();
  }
  CASE(kSra): {
    st.write(rp->a, static_cast<u32>(static_cast<i32>(st.read(rp->b)) >>
                                     (st.read(rp->c) & 31)));
    RETIRE_NEXT();
  }
  CASE(kCmpeq): {
    st.write(rp->a, st.read(rp->b) == st.read(rp->c) ? 1 : 0);
    RETIRE_NEXT();
  }
  CASE(kCmpne): {
    st.write(rp->a, st.read(rp->b) != st.read(rp->c) ? 1 : 0);
    RETIRE_NEXT();
  }
  CASE(kCmplt): {
    st.write(rp->a, static_cast<i32>(st.read(rp->b)) <
                            static_cast<i32>(st.read(rp->c))
                        ? 1
                        : 0);
    RETIRE_NEXT();
  }
  CASE(kCmple): {
    st.write(rp->a, static_cast<i32>(st.read(rp->b)) <=
                            static_cast<i32>(st.read(rp->c))
                        ? 1
                        : 0);
    RETIRE_NEXT();
  }
  CASE(kCmpltu): {
    st.write(rp->a, st.read(rp->b) < st.read(rp->c) ? 1 : 0);
    RETIRE_NEXT();
  }
  CASE(kCmpleu): {
    st.write(rp->a, st.read(rp->b) <= st.read(rp->c) ? 1 : 0);
    RETIRE_NEXT();
  }
  CASE(kCmovnz): {
    if (st.read(rp->c) != 0) st.write(rp->a, st.read(rp->b));
    RETIRE_NEXT();
  }
  CASE(kCmovz): {
    if (st.read(rp->c) == 0) st.write(rp->a, st.read(rp->b));
    RETIRE_NEXT();
  }
  CASE(kPick): {
    st.write(rp->a, st.read(rp->a) != 0 ? st.read(rp->b) : st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kSatadd): {
    st.write(rp->a, static_cast<u32>(
                        sat_add32(static_cast<i32>(st.read(rp->b)),
                                  static_cast<i32>(st.read(rp->c)))));
    RETIRE_NEXT();
  }
  CASE(kSatsub): {
    st.write(rp->a, static_cast<u32>(
                        sat_sub32(static_cast<i32>(st.read(rp->b)),
                                  static_cast<i32>(st.read(rp->c)))));
    RETIRE_NEXT();
  }
  CASE(kAddi): {
    st.write(rp->a, st.read(rp->b) + static_cast<u32>(rp->imm));
    RETIRE_NEXT();
  }
  CASE(kAndi): {
    st.write(rp->a, st.read(rp->b) & static_cast<u32>(rp->imm));
    RETIRE_NEXT();
  }
  CASE(kOri): {
    st.write(rp->a, st.read(rp->b) | static_cast<u32>(rp->imm));
    RETIRE_NEXT();
  }
  CASE(kXori): {
    st.write(rp->a, st.read(rp->b) ^ static_cast<u32>(rp->imm));
    RETIRE_NEXT();
  }
  CASE(kSlli): {
    st.write(rp->a, st.read(rp->b) << (static_cast<u32>(rp->imm) & 31));
    RETIRE_NEXT();
  }
  CASE(kSrli): {
    st.write(rp->a, st.read(rp->b) >> (static_cast<u32>(rp->imm) & 31));
    RETIRE_NEXT();
  }
  CASE(kSrai): {
    st.write(rp->a, static_cast<u32>(static_cast<i32>(st.read(rp->b)) >>
                                     (static_cast<u32>(rp->imm) & 31)));
    RETIRE_NEXT();
  }
  CASE(kOrlo): {
    st.write(rp->a, st.read(rp->a) | (static_cast<u32>(rp->imm) & 0xFFFF));
    RETIRE_NEXT();
  }
  CASE(kSetImm): {
    st.write(rp->a, rp->arg);
    RETIRE_NEXT();
  }
  CASE(kGettick): {
    st.write(rp->a, static_cast<u32>(cx.packets_run));
    RETIRE_NEXT();
  }
  CASE(kMul): {
    st.write(rp->a, st.read(rp->b) * st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kMulhi): {
    st.write(rp->a,
             static_cast<u32>((i64{static_cast<i32>(st.read(rp->b))} *
                               i64{static_cast<i32>(st.read(rp->c))}) >>
                              32));
    RETIRE_NEXT();
  }
  CASE(kMulhiu): {
    st.write(rp->a, static_cast<u32>(
                        (u64{st.read(rp->b)} * u64{st.read(rp->c)}) >> 32));
    RETIRE_NEXT();
  }
  CASE(kMadd): {
    st.write(rp->a, st.read(rp->a) + st.read(rp->b) * st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kMsub): {
    st.write(rp->a, st.read(rp->a) - st.read(rp->b) * st.read(rp->c));
    RETIRE_NEXT();
  }
  CASE(kDiv): {
    const i32 a = static_cast<i32>(st.read(rp->b));
    const i32 b = static_cast<i32>(st.read(rp->c));
    u32 r;
    if (b == 0) {
      if (cx.env.trap_div_zero) {
        st.pc = rp->pc;
        raise_trap(TrapCause::kDivideByZero, "div with zero divisor");
      }
      r = 0;
    } else if (a == std::numeric_limits<i32>::min() && b == -1) {
      r = static_cast<u32>(a);
    } else {
      r = static_cast<u32>(a / b);
    }
    st.write(rp->a, r);
    RETIRE_NEXT();
  }
  CASE(kDivu): {
    const u32 ua = st.read(rp->b);
    const u32 ub = st.read(rp->c);
    if (ub == 0 && cx.env.trap_div_zero) {
      st.pc = rp->pc;
      raise_trap(TrapCause::kDivideByZero, "divu with zero divisor");
    }
    st.write(rp->a, ub == 0 ? 0 : ua / ub);
    RETIRE_NEXT();
  }
  CASE(kLdb): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if (static_cast<i64>(ea) <= cx.lim1) [[likely]] {
      v = static_cast<u32>(
          static_cast<i32>(static_cast<i8>(cx.mbase[ea])));
    } else {
      st.pc = rp->pc;
      v = static_cast<u32>(
          static_cast<i32>(static_cast<i8>(cx.env.mem.read_u8(ea))));
    }
    st.write(rp->a, v);
    RETIRE_NEXT();
  }
  CASE(kLdbu): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if (static_cast<i64>(ea) <= cx.lim1) [[likely]] {
      v = cx.mbase[ea];
    } else {
      st.pc = rp->pc;
      v = cx.env.mem.read_u8(ea);
    }
    st.write(rp->a, v);
    RETIRE_NEXT();
  }
  CASE(kLdh): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if ((ea & 1) == 0 && static_cast<i64>(ea) <= cx.lim2) [[likely]] {
      u16 h;
      std::memcpy(&h, cx.mbase + ea, 2);
      v = static_cast<u32>(static_cast<i32>(static_cast<i16>(h)));
    } else {
      st.pc = rp->pc;
      v = static_cast<u32>(
          static_cast<i32>(static_cast<i16>(cx.env.mem.read_u16(ea))));
    }
    st.write(rp->a, v);
    RETIRE_NEXT();
  }
  CASE(kLdhu): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if ((ea & 1) == 0 && static_cast<i64>(ea) <= cx.lim2) [[likely]] {
      u16 h;
      std::memcpy(&h, cx.mbase + ea, 2);
      v = h;
    } else {
      st.pc = rp->pc;
      v = cx.env.mem.read_u16(ea);
    }
    st.write(rp->a, v);
    RETIRE_NEXT();
  }
  CASE(kLdw): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim4) [[likely]] {
      std::memcpy(&v, cx.mbase + ea, 4);
    } else {
      st.pc = rp->pc;
      v = cx.env.mem.read_u32(ea);
    }
    st.write(rp->a, v);
    RETIRE_NEXT();
  }
  CASE(kLdl): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u64 v;
    if ((ea & 7) == 0 && static_cast<i64>(ea) <= cx.lim8) [[likely]] {
      std::memcpy(&v, cx.mbase + ea, 8);
    } else {
      st.pc = rp->pc;
      v = cx.env.mem.read_u64(ea);
    }
    st.write(rp->a, static_cast<u32>(v >> 32));
    st.write(static_cast<PhysReg>(rp->a + 1), static_cast<u32>(v));
    RETIRE_NEXT();
  }
  CASE(kLdg): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim32) [[likely]] {
      for (u32 i = 0; i < 8; ++i) {
        u32 v;
        std::memcpy(&v, cx.mbase + ea + 4 * i, 4);
        st.write(static_cast<PhysReg>(rp->a + i), v);
      }
    } else {
      // Gather all eight words before committing any: a trapping group
      // load leaves the register file untouched (interpreter contract).
      st.pc = rp->pc;
      u32 tmp[8];
      for (u32 i = 0; i < 8; ++i) tmp[i] = cx.env.mem.read_u32(ea + 4 * i);
      for (u32 i = 0; i < 8; ++i) {
        st.write(static_cast<PhysReg>(rp->a + i), tmp[i]);
      }
    }
    RETIRE_NEXT();
  }
  CASE(kStb): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if (static_cast<i64>(ea) <= cx.lim1) [[likely]] {
      cx.mbase[ea] = static_cast<u8>(st.read(rp->a));
    } else {
      st.pc = rp->pc;
      cx.env.mem.write_u8(ea, static_cast<u8>(st.read(rp->a)));
    }
    RETIRE_NEXT();
  }
  CASE(kSth): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if ((ea & 1) == 0 && static_cast<i64>(ea) <= cx.lim2) [[likely]] {
      const u16 h = static_cast<u16>(st.read(rp->a));
      std::memcpy(cx.mbase + ea, &h, 2);
    } else {
      st.pc = rp->pc;
      cx.env.mem.write_u16(ea, static_cast<u16>(st.read(rp->a)));
    }
    RETIRE_NEXT();
  }
  CASE(kStw): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim4) [[likely]] {
      const u32 v = st.read(rp->a);
      std::memcpy(cx.mbase + ea, &v, 4);
    } else {
      st.pc = rp->pc;
      cx.env.mem.write_u32(ea, st.read(rp->a));
    }
    RETIRE_NEXT();
  }
  CASE(kStl): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    const u64 v = (u64{st.read(rp->a)} << 32) |
                  st.read(static_cast<PhysReg>(rp->a + 1));
    if ((ea & 7) == 0 && static_cast<i64>(ea) <= cx.lim8) [[likely]] {
      std::memcpy(cx.mbase + ea, &v, 8);
    } else {
      st.pc = rp->pc;
      cx.env.mem.write_u64(ea, v);
    }
    RETIRE_NEXT();
  }
  CASE(kStg): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim32) [[likely]] {
      for (u32 i = 0; i < 8; ++i) {
        const u32 v = st.read(static_cast<PhysReg>(rp->a + i));
        std::memcpy(cx.mbase + ea + 4 * i, &v, 4);
      }
    } else {
      st.pc = rp->pc;
      for (u32 i = 0; i < 8; ++i) {
        cx.env.mem.write_u32(ea + 4 * i,
                             st.read(static_cast<PhysReg>(rp->a + i)));
      }
    }
    RETIRE_NEXT();
  }
  CASE(kStcw): {
    st.pc = rp->pc;
    const Addr ea = static_cast<Addr>(st.read(rp->b));
    if (st.read(rp->c) != 0) cx.env.mem.write_u32(ea, st.read(rp->a));
    RETIRE_NEXT();
  }
  CASE(kCas): {
    st.pc = rp->pc;
    const Addr ea = static_cast<Addr>(st.read(rp->b));
    const u32 old = cx.env.mem.read_u32(ea);
    if (old == st.read(rp->c)) cx.env.mem.write_u32(ea, st.read(rp->a));
    st.write(rp->a, old);
    RETIRE_NEXT();
  }
  CASE(kSwap): {
    st.pc = rp->pc;
    const Addr ea = static_cast<Addr>(st.read(rp->b));
    const u32 old = cx.env.mem.read_u32(ea);
    cx.env.mem.write_u32(ea, st.read(rp->a));
    st.write(rp->a, old);
    RETIRE_NEXT();
  }
  CASE(kBnz): {
    RETIRE_TRANSFER(st.read(rp->a) != 0);
  }
  CASE(kBz): {
    RETIRE_TRANSFER(st.read(rp->a) == 0);
  }
  CASE(kCallRec): {
    st.write(isa::to_phys(isa::kLinkReg, 0), rp[1].pc);
    RETIRE_TRANSFER(true);
  }
  CASE(kJmplRec): {
    const Addr target = static_cast<Addr>(st.read(rp->b));
    st.write(rp->a, rp[1].pc);  // link = fall-through (next record's pc)
    cx.res.packets += 1;
    cx.packets_run += 1;
    cx.res.instrs += rp->ins_add;
    cx.instrs_run += rp->ins_add;
    st.pc = target;
    if (cx.res.packets >= cx.max_packets) return;
    rp = recs + cx.tc.entry[cx.prog.index_of(st.pc)];  // throws on miss
    DISPATCH();
  }
  CASE(kHaltRec): {
    st.halted = true;
    st.pc = rp[1].pc;  // fall-through, as the interpreter leaves it
    cx.res.packets += 1;
    cx.packets_run += 1;
    cx.res.instrs += rp->ins_add;
    cx.instrs_run += rp->ins_add;
    return;
  }
  CASE(kTrapCon): {
    if (cx.env.console != nullptr) {
      format_console_trap(*cx.env.console, static_cast<u32>(rp->imm),
                          st.read(rp->a));
    }
    RETIRE_NEXT();
  }
  CASE(kSettvecRec): {
    st.tvec = static_cast<Addr>(st.read(rp->a));
    RETIRE_NEXT();
  }
  CASE(kSlotOp): {
    run_slot_op(cx, rp->arg);
    RETIRE_NEXT();
  }
  CASE(kSlotOp2): {
    run_slot_op(cx, rp->arg);
    run_slot_op(cx, static_cast<u32>(rp->imm));
    RETIRE_NEXT();
  }
  CASE(kDotp): {
    st.write(rp->a, dotp_eval(st.read(rp->a), st.read(rp->b), st.read(rp->c)));
    RETIRE_NEXT();
  }
  CASE(kDotp2): {
    st.write(rp->a, dotp_eval(st.read(rp->a), st.read(rp->b), st.read(rp->c)));
    const PhysReg r2 = static_cast<PhysReg>(rp->imm);
    st.write(rp->d, dotp_eval(st.read(rp->d), st.read(rp->e), st.read(r2)));
    RETIRE_NEXT();
  }
  CASE(kDotp3): {
    const u32 t = static_cast<u32>(rp->imm2);
    st.write(rp->a, dotp_eval(st.read(rp->a), st.read(rp->b), st.read(rp->c)));
    st.write(rp->d, dotp_eval(st.read(rp->d), st.read(rp->e),
                              st.read(static_cast<PhysReg>(t & 0xFF))));
    const PhysReg d3 = static_cast<PhysReg>((t >> 8) & 0xFF);
    st.write(d3, dotp_eval(st.read(d3),
                           st.read(static_cast<PhysReg>((t >> 16) & 0xFF)),
                           st.read(static_cast<PhysReg>(t >> 24))));
    RETIRE_NEXT();
  }
  CASE(kFmaddF32): {
    st.write(rp->a,
             fmadd_eval(st.read(rp->a), st.read(rp->b), st.read(rp->c)));
    RETIRE_NEXT();
  }
  CASE(kFmadd2): {
    st.write(rp->a,
             fmadd_eval(st.read(rp->a), st.read(rp->b), st.read(rp->c)));
    const PhysReg r2 = static_cast<PhysReg>(rp->imm);
    st.write(rp->d,
             fmadd_eval(st.read(rp->d), st.read(rp->e), st.read(r2)));
    RETIRE_NEXT();
  }
  CASE(kAluAlu): {
    // Parallel-read form (safe for hazardful pairs as well).
    const u32 sels = static_cast<u32>(rp->imm2);
    const u32 v1 = alu_eval(sels & 15, st.read(rp->b), st.read(rp->c));
    const u32 v2 = alu_eval((sels >> 4) & 15, st.read(rp->e),
                            st.read(static_cast<PhysReg>(rp->imm)));
    st.write(rp->a, v1);
    st.write(rp->d, v2);
    RETIRE_NEXT();
  }
  CASE(kMemSlots): {
    // Parallel-read packet with deferred commit: slot ops evaluate into
    // scratch effects against pre-packet state; the trap-capable memory op
    // runs (and commits) first; only then do the slot effects land.
    SlotEffects fx;
    const SlotOp* so = cx.tc.slot_ops.data() + rp->arg;
    for (u32 i = 0; i < rp->e; ++i) eval_slot_op(cx, so[i], fx);
    if (rp->d != 0xFF) exec_mem_slot(cx, st, rp);
    for (const WriteBack& wb : fx.writes) st.write(wb.reg, wb.value);
    RETIRE_NEXT();
  }
  CASE(kIaluIalu): {
    // Parallel-read form: both sources read before either write commits.
    const u32 v1 = ialu_eval(rp->e & 15, st.read(rp->b), rp->imm);
    const u32 v2 = ialu_eval(rp->e >> 4, st.read(rp->d), rp->imm2);
    st.write(rp->a, v1);
    st.write(rp->c, v2);
    RETIRE_NEXT();
  }
  CASE(kLdwAddi): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    u32 v;
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim4) [[likely]] {
      std::memcpy(&v, cx.mbase + ea, 4);
    } else {
      st.pc = rp->pc;
      v = cx.env.mem.read_u32(ea);
    }
    const u32 v2 = st.read(rp->e) + static_cast<u32>(rp->imm2);
    st.write(rp->a, v);
    st.write(rp->d, v2);
    RETIRE_NEXT();
  }
  CASE(kStwAddi): {
    const u32 ea = st.read(rp->b) + st.read(rp->c) + static_cast<u32>(rp->imm);
    if ((ea & 3) == 0 && static_cast<i64>(ea) <= cx.lim4) [[likely]] {
      const u32 v = st.read(rp->a);
      std::memcpy(cx.mbase + ea, &v, 4);
    } else {
      st.pc = rp->pc;
      cx.env.mem.write_u32(ea, st.read(rp->a));
    }
    st.write(rp->d, st.read(rp->e) + static_cast<u32>(rp->imm2));
    RETIRE_NEXT();
  }
  CASE(kAddiBnz): {
    if (cx.res.packets + 2 > cx.max_packets) {
      ++rp;  // cap too close to retire both: run the unfused lowering
      DISPATCH();
    }
    const u32 v = st.read(rp->b) + static_cast<u32>(rp->imm);
    st.write(rp->a, v);
    cx.res.packets += 2;
    cx.packets_run += 2;
    cx.res.instrs += rp->ins_add;
    cx.instrs_run += rp->ins_add;
    const Rec* nx = recs + (v != 0 ? rp->arg : static_cast<u32>(rp->imm2));
    if (cx.res.packets >= cx.max_packets) {
      st.pc = nx->pc;
      return;
    }
    rp = nx;
    DISPATCH();
  }
  CASE(kAddiBz): {
    if (cx.res.packets + 2 > cx.max_packets) {
      ++rp;
      DISPATCH();
    }
    const u32 v = st.read(rp->b) + static_cast<u32>(rp->imm);
    st.write(rp->a, v);
    cx.res.packets += 2;
    cx.packets_run += 2;
    cx.res.instrs += rp->ins_add;
    cx.instrs_run += rp->ins_add;
    const Rec* nx = recs + (v == 0 ? rp->arg : static_cast<u32>(rp->imm2));
    if (cx.res.packets >= cx.max_packets) {
      st.pc = nx->pc;
      return;
    }
    rp = nx;
    DISPATCH();
  }
  CASE(kNopRec): {
    RETIRE_NEXT();
  }
  CASE(kGenericPacket): {
    const u32 pi = static_cast<u32>(rp->imm);
    const isa::Packet& p = cx.prog.packet(pi);
    const PacketMeta& m = cx.prog.meta(pi);
    st.pc = rp->pc;
    const PacketOutcome out = execute_packet(st, p, m.fall_through, cx.env);
    cx.res.packets += 1;
    cx.packets_run += 1;
    cx.res.instrs += out.width;
    cx.instrs_run += out.width;
    if (st.halted) return;
    if (out.next_pc == m.fall_through) {
      if (cx.res.packets >= cx.max_packets) return;  // st.pc == rp[1].pc
      ++rp;
      DISPATCH();
    }
    if (rp->arg != kNoRec && out.next_pc == m.taken_target) {
      if (cx.res.packets >= cx.max_packets) return;
      rp = recs + rp->arg;
      DISPATCH();
    }
    if (cx.res.packets >= cx.max_packets) return;
    rp = recs + cx.tc.entry[cx.prog.index_of(st.pc)];  // throws on miss
    DISPATCH();
  }
  CASE(kEndOfCode): {
    // Fell off the end of the image: same diagnosis as the interpreter's
    // next-packet fetch.
    st.pc = rp->pc;
    cx.prog.index_of(st.pc);  // always throws (translated once, immutable)
    return;                   // unreachable
  }

#if !MAJC_COMPUTED_GOTO
    default: return;  // unreachable: translate emits only known kinds
    }
  }
#endif
}

#undef CASE
#undef DISPATCH
#undef RETIRE_NEXT
#undef RETIRE_TRANSFER

} // namespace

RunResult FunctionalSim::run_threaded(u64 max_packets) {
  RunResult res;
  const ThreadedCode& tc = program_->threaded();
  ExecEnv env{mem_};
  env.trap_div_zero = trap_div_zero_;
  env.console = &console_;
  env.tick = &packets_run_;
  const std::span<u8> raw = mem_.raw();
  const i64 size = static_cast<i64>(raw.size());
  ExecCtx cx{*program_,    tc,          state_,   env,
             res,          packets_run_, instrs_run_, max_packets,
             raw.data(),   size - 1,    size - 2, size - 4,
             size - 8,     size - 32};
  while (!state_.halted && res.packets < max_packets) {
    try {
      exec_records(cx, tc.entry[program_->index_of(state_.pc)]);
    } catch (const TrapException& e) {
      // Identical delivery protocol to the interpreter loop: st.pc names
      // the faulting packet at every throw site.
      Trap t = e.trap();
      t.cpu = 0;
      t.pc = state_.pc;
      t.cycle = packets_run_;
      t.unit = TimeUnit::kPackets;
      if (state_.can_deliver(t.deliverable)) {
        const u32 fidx = program_->find_index(state_.pc);
        const Addr npc = fidx == kNoPacketIndex
                             ? state_.pc
                             : program_->meta(fidx).fall_through;
        state_.deliver_trap(static_cast<u32>(t.code), t.pc, npc, t.value);
        ++traps_delivered_;
        last_trap_ = std::move(t);
        continue;
      }
      res.trap = std::move(t);
      res.reason = TerminationReason::kTrap;
      return res;
    }
  }
  res.halted = state_.halted;
  res.reason = res.halted ? TerminationReason::kHalted
                          : TerminationReason::kPacketCap;
  return res;
}

} // namespace majc::sim
