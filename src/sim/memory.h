// Byte-addressed memory abstraction used by the functional executor.
//
// The functional simulator uses a FlatMemory directly; the cycle-accurate
// SoC model layers caches / DRDRAM timing on top while funneling actual data
// through the same interface, so functional and timed runs are guaranteed to
// compute identical values.
//
// The model is little-endian (a host-convenience choice; the paper's
// benchmarks are endian-agnostic). Accesses must be naturally aligned;
// misaligned or out-of-bounds accesses raise an architected trap
// (src/support/trap.h) that the run loops deliver precisely.
#pragma once

#include <span>
#include <vector>

#include "src/support/types.h"

namespace majc::sim {

class MemoryBus {
public:
  virtual ~MemoryBus() = default;

  virtual void read(Addr addr, std::span<u8> out) = 0;
  virtual void write(Addr addr, std::span<const u8> in) = 0;

  // Typed helpers (little-endian, alignment-checked).
  u8 read_u8(Addr a);
  u16 read_u16(Addr a);
  u32 read_u32(Addr a);
  u64 read_u64(Addr a);
  void write_u8(Addr a, u8 v);
  void write_u16(Addr a, u16 v);
  void write_u32(Addr a, u32 v);
  void write_u64(Addr a, u64 v);
};

/// Simple bounds-checked backing store starting at address 0.
class FlatMemory final : public MemoryBus {
public:
  static constexpr std::size_t kDefaultBytes = 32u << 20;

  explicit FlatMemory(std::size_t bytes = kDefaultBytes) : bytes_(bytes, 0) {}

  void read(Addr addr, std::span<u8> out) override;
  void write(Addr addr, std::span<const u8> in) override;

  std::size_t size() const { return bytes_.size(); }
  std::span<u8> raw() { return bytes_; }
  std::span<const u8> raw() const { return bytes_; }

private:
  std::vector<u8> bytes_;
};

} // namespace majc::sim
