// Architectural state of one MAJC CPU.
#pragma once

#include <array>

#include "src/isa/registers.h"
#include "src/support/types.h"

namespace majc::sim {

struct CpuState {
  std::array<u32, isa::kNumRegs> regs{};
  Addr pc = 0;
  bool halted = false;

  /// Physical-register read; g0 is hardwired zero.
  u32 read(isa::PhysReg r) const { return r == 0 ? 0 : regs[r]; }
  void write(isa::PhysReg r, u32 v) {
    if (r != 0) regs[r] = v;
  }

  /// Specifier-based access from slot `fu`.
  u32 reads(isa::RegSpec s, u32 fu) const { return read(isa::to_phys(s, fu)); }

  /// 64-bit pair: even register holds the most significant word.
  u64 read_pair(isa::RegSpec s, u32 fu) const {
    const isa::PhysReg p = isa::to_phys(s, fu);
    return (u64{read(p)} << 32) | read(static_cast<isa::PhysReg>(p + 1));
  }
};

} // namespace majc::sim
