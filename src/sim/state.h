// Architectural state of one MAJC CPU.
#pragma once

#include <array>

#include "src/isa/registers.h"
#include "src/support/types.h"

namespace majc::sim {

struct CpuState {
  std::array<u32, isa::kNumRegs> regs{};
  Addr pc = 0;
  bool halted = false;

  // Architected trap unit (docs/ISA.md "Trap vector and resumable traps").
  // tvec == 0 means "no handler installed": traps terminate the run as they
  // did before SETTVEC existed. The saved registers are readable from guest
  // code via MFTR and restored control flow via RETT.
  Addr tvec = 0;    // trap-vector base (SETTVEC)
  u32 tcause = 0;   // saved cause code (TrapCause as u32)
  Addr tpc = 0;     // pc of the faulting packet
  Addr tnpc = 0;    // fall-through pc of the faulting packet (RETT target
                    // for skip-and-continue handlers; RETT jumps to rs1, so
                    // retry handlers jump to tpc instead)
  u32 tdetail = 0;  // cause-specific detail word (Trap::value)
  bool in_trap = false;  // set on delivery, cleared by RETT; a trap taken
                         // while set is a double fault and stays fatal

  /// Can a trap with the given deliverability reach the guest handler?
  bool can_deliver(bool deliverable) const {
    return deliverable && tvec != 0 && !in_trap;
  }

  /// Deliver: latch cause/pc/detail, enter the handler. `cause` is a
  /// TrapCause passed as u32 to keep this header free of trap.h.
  void deliver_trap(u32 cause, Addr fault_pc, Addr fault_npc, u32 detail) {
    tcause = cause;
    tpc = fault_pc;
    tnpc = fault_npc;
    tdetail = detail;
    in_trap = true;
    pc = tvec;
  }

  /// Physical-register read; g0 is hardwired zero.
  u32 read(isa::PhysReg r) const { return r == 0 ? 0 : regs[r]; }
  void write(isa::PhysReg r, u32 v) {
    if (r != 0) regs[r] = v;
  }

  /// Specifier-based access from slot `fu`.
  u32 reads(isa::RegSpec s, u32 fu) const { return read(isa::to_phys(s, fu)); }

  /// 64-bit pair: even register holds the most significant word.
  u64 read_pair(isa::RegSpec s, u32 fu) const {
    const isa::PhysReg p = isa::to_phys(s, fu);
    return (u64{read(p)} << 32) | read(static_cast<isa::PhysReg>(p + 1));
  }
};

} // namespace majc::sim
