// IEEE single and double precision floating point semantics.
#include <bit>
#include <cmath>
#include <limits>

#include "src/sim/exec.h"
#include "src/support/trap.h"

namespace majc::sim {
namespace {

using isa::Instr;
using isa::Op;

float as_f32(u32 v) { return std::bit_cast<float>(v); }
u32 as_u32(float v) { return std::bit_cast<u32>(v); }
double as_f64(u64 v) { return std::bit_cast<double>(v); }
u64 as_u64(double v) { return std::bit_cast<u64>(v); }

/// float -> int with saturation at the i32 range; NaN converts to 0
/// (a total-function choice documented in DESIGN.md).
i32 f32_to_i32(float f) {
  if (std::isnan(f)) return 0;
  if (f >= 2147483648.0f) return std::numeric_limits<i32>::max();
  if (f < -2147483648.0f) return std::numeric_limits<i32>::min();
  return static_cast<i32>(f);
}

void write_pair(SlotEffects& fx, isa::PhysReg even, u64 v) {
  fx.writes.push_back({even, static_cast<u32>(v >> 32)});
  fx.writes.push_back({static_cast<isa::PhysReg>(even + 1), static_cast<u32>(v)});
}

} // namespace

void exec_fp32(const Instr& in, u32 fu, const CpuState& st, SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  const float a = as_f32(st.reads(in.rs1, fu));
  const float b = as_f32(st.reads(in.rs2, fu));
  const float acc = as_f32(st.read(rd));
  u32 r = 0;
  switch (in.op) {
    case Op::kFadd: r = as_u32(a + b); break;
    case Op::kFsub: r = as_u32(a - b); break;
    case Op::kFmul: r = as_u32(a * b); break;
    case Op::kFmadd: r = as_u32(std::fmaf(a, b, acc)); break;
    case Op::kFmsub: r = as_u32(std::fmaf(-a, b, acc)); break;
    case Op::kFmin: r = as_u32(std::fmin(a, b)); break;
    case Op::kFmax: r = as_u32(std::fmax(a, b)); break;
    case Op::kFneg: r = st.reads(in.rs1, fu) ^ 0x8000'0000u; break;
    case Op::kFabs: r = st.reads(in.rs1, fu) & 0x7FFF'FFFFu; break;
    case Op::kFcmpeq: r = (a == b) ? 1 : 0; break;
    case Op::kFcmplt: r = (a < b) ? 1 : 0; break;
    case Op::kFcmple: r = (a <= b) ? 1 : 0; break;
    case Op::kItof:
      r = as_u32(static_cast<float>(static_cast<i32>(st.reads(in.rs1, fu))));
      break;
    case Op::kFtoi: r = static_cast<u32>(f32_to_i32(a)); break;
    case Op::kFdiv: r = as_u32(a / b); break;
    case Op::kFrsqrt: r = as_u32(1.0f / std::sqrt(a)); break;
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_fp32: unexpected opcode");
  }
  fx.writes.push_back({rd, r});
}

void exec_fp64(const Instr& in, u32 fu, const CpuState& st, SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  switch (in.op) {
    case Op::kFtod: {
      const float a = as_f32(st.reads(in.rs1, fu));
      write_pair(fx, rd, as_u64(static_cast<double>(a)));
      return;
    }
    case Op::kDtof: {
      const double a = as_f64(st.read_pair(in.rs1, fu));
      fx.writes.push_back({rd, as_u32(static_cast<float>(a))});
      return;
    }
    default:
      break;
  }
  const double a = as_f64(st.read_pair(in.rs1, fu));
  const double b = as_f64(st.read_pair(in.rs2, fu));
  switch (in.op) {
    case Op::kDadd: write_pair(fx, rd, as_u64(a + b)); break;
    case Op::kDsub: write_pair(fx, rd, as_u64(a - b)); break;
    case Op::kDmul: write_pair(fx, rd, as_u64(a * b)); break;
    case Op::kDmin: write_pair(fx, rd, as_u64(std::fmin(a, b))); break;
    case Op::kDmax: write_pair(fx, rd, as_u64(std::fmax(a, b))); break;
    case Op::kDneg:
      write_pair(fx, rd, st.read_pair(in.rs1, fu) ^ 0x8000'0000'0000'0000ull);
      break;
    case Op::kDcmpeq: fx.writes.push_back({rd, (a == b) ? 1u : 0u}); break;
    case Op::kDcmplt: fx.writes.push_back({rd, (a < b) ? 1u : 0u}); break;
    case Op::kDcmple: fx.writes.push_back({rd, (a <= b) ? 1u : 0u}); break;
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_fp64: unexpected opcode");
  }
}

} // namespace majc::sim
