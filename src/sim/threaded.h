// Threaded-code translation backend for the functional simulator.
//
// The MAJC premise — a statically scheduled VLIW whose packet structure is
// fully known before issue — applies to the host side of the model too: the
// predecoded Program already names every operand, destination and control
// target, so instead of re-interpreting packets through the generic
// execute_packet switch, a one-time translation pass lowers each packet into
// a short run of fixed-size dispatch records ("threaded code"). A
// computed-goto inner loop (labels-as-values on GCC/Clang, plain switch
// elsewhere) then executes records back-to-back with no per-packet virtual
// dispatch, meta lookup, or SlotEffects marshalling.
//
// Translation is purely host-side: guest-visible state (registers, memory,
// traps, checkpoints, arch_digest, stats) is bit-identical to the
// interpreter. tests/test_backend_equiv.cpp pins that invariant across all
// 16 Table 1/2 kernels, under fault injection, and across checkpoint
// boundaries.
//
// Lowering rules (DESIGN.md §13):
//  * A packet's slots execute with parallel-read semantics; the translator
//    lowers them to sequential records only when the execution order can be
//    proven equivalent (no earlier-executed slot's destinations intersect a
//    later slot's sources or destinations). Otherwise the packet becomes a
//    single kGenericPacket record that calls execute_packet verbatim.
//  * Trap-capable slot-0 ops (memory, div) execute first, so a trapping
//    packet commits nothing — the interpreter's precise-trap contract.
//    Control transfers execute last, after the other slots committed.
//  * Macro-op fusion collapses the shapes the Table 1/2 kernels actually
//    emit: immediate-ALU pairs, load/store + pointer-increment, SIMD/FP slot
//    pairs, and the cross-packet add-immediate + conditional-branch loop
//    idiom (the unfused lowering stays in place as the packet-cap-safe
//    fallback and as the branch-target entry).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/isa/encoding.h"
#include "src/support/types.h"

namespace majc::sim {

class Program;

/// Record index sentinel: "no translated target" (branch to a non-boundary
/// address or off the end of the image — resolved, and trapped, at runtime).
inline constexpr u32 kNoRec = ~u32{0};

/// Static translation statistics: what the 16 kernels' packets look like and
/// which fusion rules fired (satellite: --shape-stats).
struct ShapeStats {
  u64 packets = 0;          // packets translated
  u64 records = 0;          // dispatch records emitted
  u64 generic_packets = 0;  // packets lowered to kGenericPacket
  u64 fused_pairs = 0;      // intra-packet pair fusions
  u64 fused_cross = 0;      // cross-packet addi+branch fusions
  /// Packet shape (slot mnemonics joined with '+') -> static occurrence
  /// count. std::map keeps the output deterministic.
  std::map<std::string, u64> shapes;
  /// Fused record name -> static occurrence count.
  std::map<std::string, u64> fused;
};

/// Render stats as text: totals plus the `top_n` most common shapes and
/// every fused-shape count (deterministic: count desc, then name).
std::string format_shape_stats(const ShapeStats& s, std::size_t top_n = 12);

/// The translated form of one Program.
struct ThreadedCode {
  /// One dispatch record. 24 bytes, meaning depends on `kind`; `pc` is the
  /// owning packet's address (trap context / cap-exit pc), `pk_add` /
  /// `ins_add` are the retire increments carried by the last record of each
  /// packet (0 on interior records; 2 on cross-packet fused records).
  struct Rec {
    u8 kind = 0;
    u8 a = 0, b = 0, c = 0, d = 0, e = 0;  // physical registers / selectors
    u8 pk_add = 0, ins_add = 0;
    i32 imm = 0;
    i32 imm2 = 0;
    u32 arg = 0;  // record index (control) / side-table index / value
    u32 pc = 0;   // owning packet's address
  };
  static_assert(sizeof(Rec) == 24);

  /// Side-table entry for slot ops executed through the per-class
  /// executors (SIMD / FP32 / FP64) — exact semantics reuse.
  struct SlotOp {
    isa::Instr in;
    u8 fu = 0;
  };

  std::vector<Rec> recs;    // all packets, program order, execution order
  std::vector<u32> entry;   // packet index -> first record index
  std::vector<SlotOp> slot_ops;
  ShapeStats stats;
};

/// Lower every packet of `prog` into threaded code. Pure function of the
/// Program; called once per image through Program::threaded().
ThreadedCode translate(const Program& prog);

} // namespace majc::sim
