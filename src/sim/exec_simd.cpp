// SIMD (16-bit pair), fixed point and bit/byte manipulation semantics.
#include "src/sim/exec.h"
#include "src/support/trap.h"
#include "src/support/bits.h"
#include "src/support/fixed_point.h"
#include "src/support/saturate.h"

namespace majc::sim {
namespace {

using isa::Instr;
using isa::Op;

constexpr u16 hi16(u32 v) { return static_cast<u16>(v >> 16); }
constexpr u16 lo16(u32 v) { return static_cast<u16>(v); }
constexpr u32 pack(u16 hi, u16 lo) { return (u32{hi} << 16) | lo; }
constexpr i32 s16(u16 v) { return static_cast<i16>(v); }

u32 lanewise_addsub(u32 a, u32 b, bool sub, SatMode mode) {
  const i64 h = i64{s16(hi16(a))} + (sub ? -i64{s16(hi16(b))} : i64{s16(hi16(b))});
  const i64 l = i64{s16(lo16(a))} + (sub ? -i64{s16(lo16(b))} : i64{s16(lo16(b))});
  return pack(saturate_lane(h, mode), saturate_lane(l, mode));
}

u32 lanewise_mul_int(u32 a, u32 b, SatMode mode) {
  const i64 h = i64{s16(hi16(a))} * s16(hi16(b));
  const i64 l = i64{s16(lo16(a))} * s16(lo16(b));
  return pack(saturate_lane(h, mode), saturate_lane(l, mode));
}

u32 lanewise_madd_int(u32 acc, u32 a, u32 b, SatMode mode) {
  const i64 h = i64{s16(hi16(acc))} + i64{s16(hi16(a))} * s16(hi16(b));
  const i64 l = i64{s16(lo16(acc))} + i64{s16(lo16(a))} * s16(lo16(b));
  return pack(saturate_lane(h, mode), saturate_lane(l, mode));
}

u32 lanewise_mul_fx(u32 a, u32 b, int frac, SatMode mode) {
  return pack(fx_mul(hi16(a), hi16(b), frac, mode),
              fx_mul(lo16(a), lo16(b), frac, mode));
}

u32 lanewise_madd_fx(u32 acc, u32 a, u32 b, int frac, SatMode mode) {
  return pack(fx_madd(hi16(acc), hi16(a), hi16(b), frac, mode),
              fx_madd(lo16(acc), lo16(a), lo16(b), frac, mode));
}

} // namespace

void exec_simd(const Instr& in, u32 fu, const CpuState& st, SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  const u32 a = st.reads(in.rs1, fu);
  const u32 b = st.reads(in.rs2, fu);
  const u32 old = st.read(rd);
  const SatMode mode = static_cast<SatMode>(in.sub);
  u32 r = 0;
  switch (in.op) {
    case Op::kPadd: r = lanewise_addsub(a, b, /*sub=*/false, mode); break;
    case Op::kPsub: r = lanewise_addsub(a, b, /*sub=*/true, mode); break;
    case Op::kPmulh: r = lanewise_mul_int(a, b, mode); break;
    case Op::kPmuls15: r = lanewise_mul_fx(a, b, kFracS15, mode); break;
    case Op::kPmuls213: r = lanewise_mul_fx(a, b, kFracS213, mode); break;
    case Op::kPmaddh: r = lanewise_madd_int(old, a, b, mode); break;
    case Op::kPmadds15: r = lanewise_madd_fx(old, a, b, kFracS15, mode); break;
    case Op::kPmadds213: r = lanewise_madd_fx(old, a, b, kFracS213, mode); break;
    case Op::kDotp:
      // Full 32-bit precision dot product accumulate (paper §4).
      r = old + static_cast<u32>(s16(hi16(a)) * s16(hi16(b)) +
                                 s16(lo16(a)) * s16(lo16(b)));
      break;
    case Op::kPmuls31:
      r = static_cast<u32>(fx_mul_s31(lo16(a), lo16(b)));
      break;
    case Op::kPdiv213:
      r = pack(fx_div_s213(hi16(a), hi16(b)), fx_div_s213(lo16(a), lo16(b)));
      break;
    case Op::kPrsqrt213:
      r = pack(fx_rsqrt_s213(hi16(a)), fx_rsqrt_s213(lo16(a)));
      break;
    case Op::kBext: {
      // rs1 names an even/odd pair holding a 64-bit bit-stream window;
      // rs2 holds the dynamic control word: bits [5:0] = position from the
      // MSB, bits [11:6] = field length (lengths > remaining bits clamp).
      const u64 window = st.read_pair(in.rs1, fu);
      const u32 pos = b & 63;
      u32 len = (b >> 6) & 63;
      if (pos + len > 64) len = 64 - pos;
      r = bitfield_extract(static_cast<u32>(window >> 32),
                           static_cast<u32>(window), pos, len);
      break;
    }
    case Op::kLzd: r = leading_zeros(a); break;
    case Op::kBshuf:
      // Old rd supplies the selector nibbles (one per result byte).
      r = byte_shuffle(a, b, old);
      break;
    case Op::kPdist: r = old + pixel_distance(a, b); break;
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_simd: unexpected opcode");
  }
  fx.writes.push_back({rd, r});
}

} // namespace majc::sim
