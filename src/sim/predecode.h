// Predecoded per-packet metadata for the simulator fast paths.
//
// MAJC is a compiler-scheduled VLIW: every per-slot operand list, latency,
// resource class and byte width is a static property of the packet, so both
// simulators can compute them once at load time instead of re-deriving them
// from OpInfo on every issue. PacketMeta is that cache. It also carries the
// dense index of the fall-through packet (and of a static branch/call
// target), so sequential flow — and statically-targeted control flow —
// never touches the pc -> index hash map; only dynamic jumps (jmpl) do.
//
// The metadata is purely host-side: it changes how fast the simulators run,
// never what they compute. tests/test_predecode.cpp asserts every field
// against a fresh recomputation from decode_packet + OpInfo.
#pragma once

#include <array>

#include "src/isa/encoding.h"
#include "src/support/inline_vec.h"
#include "src/support/types.h"

namespace majc::sim {

/// Sentinel for "no predecoded packet at this index" (fall-through past the
/// end of the image, or a control-transfer target that is not a packet
/// boundary — resolved, and trapped, through the pc -> index map instead).
inline constexpr u32 kNoPacketIndex = ~u32{0};

/// Physical source registers read by `in` when executing in slot `fu`.
void collect_sources(const isa::Instr& in, u32 fu,
                     InlineVec<isa::PhysReg, 12>& out);

/// Physical destination registers written by `in` in slot `fu`.
void collect_dests(const isa::Instr& in, u32 fu,
                   InlineVec<isa::PhysReg, 8>& out);

/// Structural sub-unit an op occupies past issue: -1 fully pipelined,
/// 0 the iterative divide/rsqrt unit, 1 the partially pipelined FP64 pipe.
constexpr int fu_resource_of(const isa::OpInfo& info) {
  if (info.issue_interval <= 1) return -1;
  return info.cls == isa::OpClass::kFp64 ? 1 : 0;
}

/// SlotMeta::cls value marking a nop slot. A nop has no architectural
/// effects, so the meta-driven executor skips its dispatch outright instead
/// of routing it through the control-class switch. (The OpInfo-driven
/// executor still dispatches nops; both produce identical effects.)
inline constexpr u8 kSlotClsNop = 0xFF;

/// Everything the cycle model's inner loop needs about one packet, hoisted
/// to decode time.
struct PacketMeta {
  /// One operand read: physical register + consuming slot (for the bypass
  /// matrix). All slots' reads, flattened in slot order.
  struct SrcRead {
    isa::PhysReg reg = 0;
    u8 fu = 0;
  };

  /// One register writeback: all slots' destinations, flattened in slot
  /// order so the cycle model's scoreboard update is a single linear walk
  /// instead of a per-slot nested loop.
  struct DestWrite {
    isa::PhysReg reg = 0;
    u8 slot = 0;             // producing slot (scoreboard producer id)
    u8 latency = 1;          // producer latency for non-load results
    bool load_data = false;  // result delivered by the LSU
  };

  /// Static writeback/structural facts of one slot.
  struct SlotMeta {
    InlineVec<isa::PhysReg, 8> dests;  // physical destination registers
    u8 latency = 1;                    // producer latency (non-load data)
    u8 issue_interval = 1;
    i8 resource = -1;       // fu_resource_of(); -1 = fully pipelined
    bool load_data = false; // dests are delivered by the LSU (load/atomic)
    u8 cls = 0;             // isa::OpClass of the op (executor dispatch)
  };

  Addr pc = 0;
  Addr fall_through = 0;  // pc + bytes
  u32 bytes = 0;
  u32 width = 0;
  u32 next_index = kNoPacketIndex;   // dense index of the fall-through packet
  u32 taken_index = kNoPacketIndex;  // index of the static branch/call target
  Addr taken_target = 0;             // valid when has_static_target
  bool has_static_target = false;    // slot 0 is a pc-relative branch/call
  bool any_resource = false;         // some slot has resource >= 0
  bool any_dests = false;            // some slot writes a register
  InlineVec<SrcRead, 48> srcs;       // 4 slots x up to 12 sources
  InlineVec<DestWrite, 32> dsts;     // 4 slots x up to 8 dests, slot order
  std::array<SlotMeta, isa::kMaxSlots> slot{};
};

/// Compute the metadata of the packet at `pc`. next_index / taken_index are
/// left at kNoPacketIndex; the Program fills them once all packet addresses
/// are known.
PacketMeta compute_packet_meta(const isa::Packet& p, Addr pc);

} // namespace majc::sim
