// Memory operation and control-flow semantics (both FU0-only classes).
#include <bit>
#include <cstdio>

#include "src/sim/exec.h"
#include "src/sim/predecode.h"
#include "src/support/trap.h"

namespace majc::sim {

void format_console_trap(std::string& out, u32 code, u32 value) {
  char buf[64];
  switch (static_cast<ConsoleTrap>(code)) {
    case ConsoleTrap::kPrintInt:
      std::snprintf(buf, sizeof buf, "%d\n", static_cast<i32>(value));
      break;
    case ConsoleTrap::kPrintChar:
      buf[0] = static_cast<char>(value);
      buf[1] = '\0';
      break;
    case ConsoleTrap::kPrintHex:
      std::snprintf(buf, sizeof buf, "0x%08x\n", value);
      break;
    case ConsoleTrap::kPrintFloat:
      std::snprintf(buf, sizeof buf, "%g\n", std::bit_cast<float>(value));
      break;
    default:
      std::snprintf(buf, sizeof buf, "trap(%u,%u)\n", code, value);
      break;
  }
  out += buf;
}

namespace {

using isa::Instr;
using isa::Op;

Addr effective_address(const Instr& in, u32 fu, const CpuState& st) {
  const u32 base = st.reads(in.rs1, fu);
  if (in.info().form == isa::Form::kI) {
    return static_cast<Addr>(base + static_cast<u32>(in.imm));
  }
  return static_cast<Addr>(base + st.reads(in.rs2, fu));
}

void note_access(SlotEffects& fx, MemAccess::Kind kind, Addr addr, u32 bytes,
                 u8 attr) {
  fx.mem.kind = kind;
  fx.mem.addr = addr;
  fx.mem.bytes = bytes;
  fx.mem.attr = attr;
}

} // namespace

void exec_mem_op(const Instr& in, u32 fu, const CpuState& st, ExecEnv& env,
                 SlotEffects& fx) {
  const isa::PhysReg rd = isa::to_phys(in.rd, fu);
  switch (in.op) {
    case Op::kLdb:
    case Op::kLdbi: {
      const Addr a = effective_address(in, fu, st);
      fx.writes.push_back({rd, static_cast<u32>(static_cast<i32>(
                                   static_cast<i8>(env.mem.read_u8(a))))});
      note_access(fx, MemAccess::Kind::kLoad, a, 1, in.sub);
      break;
    }
    case Op::kLdbu:
    case Op::kLdbui: {
      const Addr a = effective_address(in, fu, st);
      fx.writes.push_back({rd, env.mem.read_u8(a)});
      note_access(fx, MemAccess::Kind::kLoad, a, 1, in.sub);
      break;
    }
    case Op::kLdh:
    case Op::kLdhi: {
      const Addr a = effective_address(in, fu, st);
      fx.writes.push_back({rd, static_cast<u32>(static_cast<i32>(
                                   static_cast<i16>(env.mem.read_u16(a))))});
      note_access(fx, MemAccess::Kind::kLoad, a, 2, in.sub);
      break;
    }
    case Op::kLdhu:
    case Op::kLdhui: {
      const Addr a = effective_address(in, fu, st);
      fx.writes.push_back({rd, env.mem.read_u16(a)});
      note_access(fx, MemAccess::Kind::kLoad, a, 2, in.sub);
      break;
    }
    case Op::kLdw:
    case Op::kLdwi: {
      const Addr a = effective_address(in, fu, st);
      fx.writes.push_back({rd, env.mem.read_u32(a)});
      note_access(fx, MemAccess::Kind::kLoad, a, 4, in.sub);
      break;
    }
    case Op::kLdl:
    case Op::kLdli: {
      const Addr a = effective_address(in, fu, st);
      const u64 v = env.mem.read_u64(a);
      fx.writes.push_back({rd, static_cast<u32>(v >> 32)});
      fx.writes.push_back(
          {static_cast<isa::PhysReg>(rd + 1), static_cast<u32>(v)});
      note_access(fx, MemAccess::Kind::kLoad, a, 8, in.sub);
      break;
    }
    case Op::kLdg:
    case Op::kLdgi: {
      const Addr a = effective_address(in, fu, st);
      for (u32 i = 0; i < 8; ++i) {
        fx.writes.push_back({static_cast<isa::PhysReg>(rd + i),
                             env.mem.read_u32(a + 4 * i)});
      }
      note_access(fx, MemAccess::Kind::kLoad, a, 32, in.sub);
      break;
    }
    case Op::kStb:
    case Op::kStbi: {
      const Addr a = effective_address(in, fu, st);
      env.mem.write_u8(a, static_cast<u8>(st.read(rd)));
      note_access(fx, MemAccess::Kind::kStore, a, 1, in.sub);
      break;
    }
    case Op::kSth:
    case Op::kSthi: {
      const Addr a = effective_address(in, fu, st);
      env.mem.write_u16(a, static_cast<u16>(st.read(rd)));
      note_access(fx, MemAccess::Kind::kStore, a, 2, in.sub);
      break;
    }
    case Op::kStw:
    case Op::kStwi: {
      const Addr a = effective_address(in, fu, st);
      env.mem.write_u32(a, st.read(rd));
      note_access(fx, MemAccess::Kind::kStore, a, 4, in.sub);
      break;
    }
    case Op::kStl:
    case Op::kStli: {
      const Addr a = effective_address(in, fu, st);
      env.mem.write_u64(a, st.read_pair(in.rd, fu));
      note_access(fx, MemAccess::Kind::kStore, a, 8, in.sub);
      break;
    }
    case Op::kStg:
    case Op::kStgi: {
      const Addr a = effective_address(in, fu, st);
      for (u32 i = 0; i < 8; ++i) {
        env.mem.write_u32(a + 4 * i,
                          st.read(static_cast<isa::PhysReg>(rd + i)));
      }
      note_access(fx, MemAccess::Kind::kStore, a, 32, in.sub);
      break;
    }
    case Op::kStcw: {
      // Conditional (predicated) store: store rd at [rs1] if rs2 != 0.
      const Addr a = static_cast<Addr>(st.reads(in.rs1, fu));
      if (st.reads(in.rs2, fu) != 0) {
        env.mem.write_u32(a, st.read(rd));
        note_access(fx, MemAccess::Kind::kStore, a, 4, 0);
      }
      break;
    }
    case Op::kPref:
    case Op::kPrefi: {
      // Non-faulting block prefetch: 32-byte aligned granule (paper §3.2).
      const Addr a = effective_address(in, fu, st) & ~Addr{kLineBytes - 1};
      note_access(fx, MemAccess::Kind::kPrefetch, a, kLineBytes, in.sub);
      break;
    }
    case Op::kCas: {
      // Compare [rs1] with rs2; if equal store rd; rd receives the old value.
      const Addr a = static_cast<Addr>(st.reads(in.rs1, fu));
      const u32 old = env.mem.read_u32(a);
      if (old == st.reads(in.rs2, fu)) {
        env.mem.write_u32(a, st.read(rd));
      }
      fx.writes.push_back({rd, old});
      note_access(fx, MemAccess::Kind::kAtomic, a, 4, 0);
      break;
    }
    case Op::kSwap: {
      const Addr a = static_cast<Addr>(st.reads(in.rs1, fu));
      const u32 old = env.mem.read_u32(a);
      env.mem.write_u32(a, st.read(rd));
      fx.writes.push_back({rd, old});
      note_access(fx, MemAccess::Kind::kAtomic, a, 4, 0);
      break;
    }
    case Op::kMembar:
      note_access(fx, MemAccess::Kind::kMembar, 0, 0, 0);
      break;
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_mem_op: unexpected opcode");
  }
}

void exec_control(const Instr& in, u32 fu, const CpuState& st, ExecEnv& env,
                  SlotEffects& fx) {
  switch (in.op) {
    case Op::kBnz:
    case Op::kBz: {
      const u32 cond = st.reads(in.rd, fu);
      fx.is_cond_branch = true;
      fx.branch_taken = (in.op == Op::kBnz) ? (cond != 0) : (cond == 0);
      fx.target = env.packet_pc + static_cast<Addr>(static_cast<i64>(in.imm) * 4);
      break;
    }
    case Op::kCall:
      fx.is_call = true;
      fx.target = env.packet_pc + static_cast<Addr>(static_cast<i64>(in.imm) * 4);
      fx.writes.push_back({isa::to_phys(isa::kLinkReg, fu),
                           static_cast<u32>(env.fall_through)});
      break;
    case Op::kJmpl:
      fx.is_jump = true;
      fx.target = static_cast<Addr>(st.reads(in.rs1, fu));
      fx.writes.push_back(
          {isa::to_phys(in.rd, fu), static_cast<u32>(env.fall_through)});
      break;
    case Op::kHalt:
      fx.halt = true;
      break;
    case Op::kNop:
      break;
    case Op::kTrap:
      if (env.console != nullptr) {
        format_console_trap(*env.console, static_cast<u32>(in.imm),
                            st.reads(in.rs1, fu));
      }
      break;
    case Op::kGetcpu:
      fx.writes.push_back({isa::to_phys(in.rd, fu), env.cpu_id});
      break;
    case Op::kGettid:
      fx.writes.push_back({isa::to_phys(in.rd, fu), env.thread_id});
      break;
    case Op::kGettick:
      fx.writes.push_back({isa::to_phys(in.rd, fu),
                           static_cast<u32>(env.tick ? *env.tick : 0)});
      break;
    case Op::kSettvec:
      fx.set_tvec = true;
      fx.tvec = static_cast<Addr>(st.reads(in.rd, fu));
      break;
    case Op::kMftr: {
      // Read a saved trap register; imm selects which (docs/ISA.md).
      u32 v = 0;
      switch (in.imm) {
        case 0: v = st.tcause; break;
        case 1: v = static_cast<u32>(st.tpc); break;
        case 2: v = static_cast<u32>(st.tnpc); break;
        case 3: v = st.tdetail; break;
        case 4: v = static_cast<u32>(st.tvec); break;
        default:
          raise_trap(TrapCause::kIllegalInstruction,
                     "mftr: selector " + std::to_string(in.imm) +
                         " is not a trap register");
      }
      fx.writes.push_back({isa::to_phys(in.rd, fu), v});
      break;
    }
    case Op::kRett:
      // Return from trap: jump to rd (handlers pass tpc to retry the
      // faulting packet or tnpc to skip it) and re-arm trap delivery.
      fx.is_jump = true;
      fx.is_rett = true;
      fx.target = static_cast<Addr>(st.reads(in.rd, fu));
      break;
    default:
      raise_trap(TrapCause::kIllegalInstruction,
                 "exec_control: unexpected opcode");
  }
}

PacketOutcome execute_packet(CpuState& st, const isa::Packet& p, ExecEnv& env) {
  PacketScratch scratch;
  return execute_packet(st, p, st.pc + p.bytes(), env, scratch);
}

PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             Addr fall_through, ExecEnv& env) {
  PacketScratch scratch;
  return execute_packet(st, p, fall_through, env, scratch);
}

namespace {

inline void dispatch_slot(const isa::Instr& in, u8 cls, u32 fu, CpuState& st,
                          ExecEnv& env, SlotEffects& fx) {
  // kSlotClsNop (never produced by the OpInfo table) matches no case and
  // falls through: a nop slot dispatches nothing, same as exec_control's
  // kNop case.
  switch (static_cast<isa::OpClass>(cls)) {
    case isa::OpClass::kAlu: exec_alu(in, fu, st, fx); break;
    case isa::OpClass::kMulDiv: exec_muldiv(in, fu, st, env, fx); break;
    case isa::OpClass::kSimd: exec_simd(in, fu, st, fx); break;
    case isa::OpClass::kFp32: exec_fp32(in, fu, st, fx); break;
    case isa::OpClass::kFp64: exec_fp64(in, fu, st, fx); break;
    case isa::OpClass::kMem: exec_mem_op(in, fu, st, env, fx); break;
    case isa::OpClass::kControl: exec_control(in, fu, st, env, fx); break;
  }
}

/// Shared body of the scratch-based overloads: `cls_of(i)` supplies each
/// slot's op class (from the OpInfo table or from predecoded metadata).
template <typename ClsFn>
inline PacketOutcome execute_packet_body(CpuState& st, const isa::Packet& p,
                                         Addr fall_through, ExecEnv& env,
                                         PacketScratch& scratch,
                                         ClsFn cls_of) {
  env.packet_pc = st.pc;
  env.fall_through = fall_through;

  // FU0 drives the packet outcome: reset all its consumed fields. The
  // shared slot-1..3 accumulator only contributes register writes (the FU
  // masks keep memory/control ops out of those slots), so its flag fields
  // may hold stale values from earlier packets — they are never read.
  SlotEffects& f0 = scratch.fx0;
  f0.writes.clear();
  f0.mem = MemAccess{};
  f0.is_cond_branch = false;
  f0.branch_taken = false;
  f0.is_call = false;
  f0.is_jump = false;
  f0.halt = false;
  f0.set_tvec = false;
  f0.is_rett = false;
  SlotEffects& fn = scratch.fxn;
  fn.writes.clear();

  if (p.width != 0) dispatch_slot(p.slot[0], cls_of(0), 0, st, env, f0);
  for (u32 i = 1; i < p.width; ++i) {
    dispatch_slot(p.slot[i], cls_of(i), i, st, env, fn);
  }

  // Commit register writes after all slots have read their operands; fn
  // accumulated slots 1..3 in slot order, so the commit sequence matches
  // the old per-slot arrays exactly.
  for (const WriteBack& wb : f0.writes) st.write(wb.reg, wb.value);
  for (const WriteBack& wb : fn.writes) st.write(wb.reg, wb.value);

  PacketOutcome out;
  out.width = p.width;
  out.next_pc = env.fall_through;
  // Only FU0 can branch or touch memory.
  if (f0.set_tvec) st.tvec = f0.tvec;
  if (f0.is_rett) st.in_trap = false;
  out.mem = f0.mem;
  out.is_cond_branch = f0.is_cond_branch;
  out.branch_taken = f0.branch_taken;
  out.is_call = f0.is_call;
  out.is_jump = f0.is_jump;
  if (f0.halt) {
    st.halted = true;
    out.halted = true;
  } else if (f0.is_call || f0.is_jump || (f0.is_cond_branch && f0.branch_taken)) {
    out.next_pc = f0.target;
  }
  st.pc = out.next_pc;
  return out;
}

} // namespace

PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             Addr fall_through, ExecEnv& env,
                             PacketScratch& scratch) {
  return execute_packet_body(
      st, p, fall_through, env, scratch,
      [&p](u32 i) { return static_cast<u8>(p.slot[i].info().cls); });
}

PacketOutcome execute_packet(CpuState& st, const isa::Packet& p,
                             const PacketMeta& m, ExecEnv& env,
                             PacketScratch& scratch) {
  return execute_packet_body(
      st, p, m.fall_through, env, scratch,
      [&m](u32 i) { return m.slot[i].cls; });
}

} // namespace majc::sim
