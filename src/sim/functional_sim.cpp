#include "src/sim/functional_sim.h"

#include <bit>
#include <cstdio>

#include "src/support/error.h"

namespace majc::sim {

Program::Program(masm::Image image) : image_(std::move(image)) {
  std::size_t w = 0;
  while (w < image_.code.size()) {
    const isa::Packet p = isa::decode_packet(
        std::span<const u32>(image_.code).subspan(w));
    index_.emplace(image_.code_base + w * 4, static_cast<u32>(packets_.size()));
    packets_.push_back(p);
    w += p.width;
  }
}

const isa::Packet& Program::packet_at(Addr pc) const {
  auto it = index_.find(pc);
  if (it == index_.end()) {
    fail("control transfer to address " + std::to_string(pc) +
         " which is not a packet boundary");
  }
  return packets_[it->second];
}

void load_image(const masm::Image& img, MemoryBus& mem) {
  for (std::size_t i = 0; i < img.code.size(); ++i) {
    mem.write_u32(img.code_base + i * 4, img.code[i]);
  }
  if (!img.data.empty()) {
    mem.write(img.data_base, img.data);
  }
}

void FunctionalSim::format_trap(std::string& out, u32 code, u32 value) {
  char buf[64];
  switch (static_cast<TrapCode>(code)) {
    case TrapCode::kPrintInt:
      std::snprintf(buf, sizeof buf, "%d\n", static_cast<i32>(value));
      break;
    case TrapCode::kPrintChar:
      buf[0] = static_cast<char>(value);
      buf[1] = '\0';
      break;
    case TrapCode::kPrintHex:
      std::snprintf(buf, sizeof buf, "0x%08x\n", value);
      break;
    case TrapCode::kPrintFloat:
      std::snprintf(buf, sizeof buf, "%g\n", std::bit_cast<float>(value));
      break;
    default:
      std::snprintf(buf, sizeof buf, "trap(%u,%u)\n", code, value);
      break;
  }
  out += buf;
}

FunctionalSim::FunctionalSim(masm::Image image, std::size_t mem_bytes)
    : program_(std::move(image)), mem_(mem_bytes) {
  load_image(program_.image(), mem_);
  state_.pc = program_.image().entry;
  // Conventional stack pointer: top of memory, 64-byte aligned headroom.
  state_.regs[2] = static_cast<u32>(mem_.size() - 64);
}

RunResult FunctionalSim::run(u64 max_packets) {
  RunResult res;
  ExecEnv env{mem_};
  env.trap = [this](u32 code, u32 value) { format_trap(console_, code, value); };
  env.tick = [this] { return packets_run_; };
  while (!state_.halted && res.packets < max_packets) {
    const isa::Packet& p = program_.packet_at(state_.pc);
    const PacketOutcome out = execute_packet(state_, p, env);
    ++res.packets;
    ++packets_run_;
    res.instrs += out.width;
  }
  res.halted = state_.halted;
  return res;
}

} // namespace majc::sim
