#include "src/sim/functional_sim.h"

#include <algorithm>
#include <cstdio>

#include "src/isa/disasm.h"
#include "src/sim/threaded.h"  // completes ThreadedCode for Program's members
#include "src/support/error.h"

namespace majc::sim {

Program::Program(masm::Image image) : image_(std::move(image)) {
  std::size_t w = 0;
  while (w < image_.code.size()) {
    const isa::Packet p = isa::decode_packet(
        std::span<const u32>(image_.code).subspan(w));
    const Addr pc = image_.code_base + w * 4;
    index_.emplace(pc, static_cast<u32>(packets_.size()));
    meta_.push_back(compute_packet_meta(p, pc));
    packets_.push_back(p);
    w += p.width;
  }
  // Second pass: resolve fall-through and static-target indices now that
  // every packet address is known. Packets are contiguous, so packet i
  // falls through to i + 1 (the last packet falls off the image).
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i + 1 < meta_.size()) meta_[i].next_index = static_cast<u32>(i + 1);
    if (meta_[i].has_static_target) {
      if (auto it = index_.find(meta_[i].taken_target); it != index_.end()) {
        meta_[i].taken_index = it->second;
      }
    }
  }
}

const isa::Packet& Program::packet_at(Addr pc) const {
  return packets_[index_of(pc)];
}

u32 Program::index_of(Addr pc) const {
  auto it = index_.find(pc);
  if (it == index_.end()) {
    raise_trap(TrapCause::kIllegalPacket,
               "control transfer to address " + std::to_string(pc) +
                   " which is not a packet boundary");
  }
  return it->second;
}

std::string trap_report(const Trap& trap, const Program& prog,
                        const CpuState& st) {
  char buf[128];
  std::string out = "== architected trap: ";
  out += trap_cause_name(trap.code);
  std::snprintf(buf, sizeof buf, " (code %u) ==\n",
                static_cast<u32>(trap.code));
  out += buf;
  std::snprintf(buf, sizeof buf, "  cpu %u  pc 0x%05llx  %s %llu\n", trap.cpu,
                static_cast<unsigned long long>(trap.pc),
                time_unit_name(trap.unit),
                static_cast<unsigned long long>(trap.cycle));
  out += buf;
  out += "  detail: " + trap.detail + "\n";
  if (prog.has_packet(trap.pc)) {
    out += "  packet: " + isa::disasm_packet(prog.packet_at(trap.pc)) + "\n";
  }
  out += "  regs:";
  u32 printed = 0;
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    const u32 v = st.read(static_cast<isa::PhysReg>(r));
    if (v == 0) continue;
    std::snprintf(buf, sizeof buf, "%s r%u=0x%x",
                  printed % 6 == 0 && printed != 0 ? "\n       " : "", r, v);
    out += buf;
    ++printed;
  }
  if (printed == 0) out += " (all zero)";
  out += "\n";
  return out;
}

void load_image(const masm::Image& img, MemoryBus& mem) {
  for (std::size_t i = 0; i < img.code.size(); ++i) {
    mem.write_u32(img.code_base + i * 4, img.code[i]);
  }
  if (!img.data.empty()) {
    mem.write(img.data_base, img.data);
  }
}

void FunctionalSim::format_trap(std::string& out, u32 code, u32 value) {
  format_console_trap(out, code, value);
}

FunctionalSim::FunctionalSim(masm::Image image, std::size_t mem_bytes)
    : FunctionalSim(make_program(std::move(image)), mem_bytes) {}

FunctionalSim::FunctionalSim(ProgramRef program, std::size_t mem_bytes)
    : program_(std::move(program)), mem_(mem_bytes) {
  load_image(program_->image(), mem_);
  state_.pc = program_->image().entry;
  // Conventional stack pointer: top of memory, 64-byte aligned headroom.
  state_.regs[2] = static_cast<u32>(mem_.size() - 64);
}

void FunctionalSim::reset(ProgramRef program) {
  if (program) program_ = std::move(program);
  // Reuse the arena: re-zero it instead of reallocating (the construction
  // cost the farm's per-worker machine reuse avoids), then reload the image
  // and restore the constructed-state invariants exactly.
  auto raw = mem_.raw();
  std::fill(raw.begin(), raw.end(), u8{0});
  load_image(program_->image(), mem_);
  state_ = CpuState{};
  state_.pc = program_->image().entry;
  state_.regs[2] = static_cast<u32>(mem_.size() - 64);
  console_.clear();
  packets_run_ = 0;
  instrs_run_ = 0;
  traps_delivered_ = 0;
  last_trap_ = Trap{};
  trap_div_zero_ = false;
  backend_ = ExecBackend::kThreaded;
}

RunResult FunctionalSim::run(u64 max_packets) {
  return backend_ == ExecBackend::kThreaded ? run_threaded(max_packets)
                                            : run_interp(max_packets);
}

RunResult FunctionalSim::run_interp(u64 max_packets) {
  RunResult res;
  ExecEnv env{mem_};
  env.trap_div_zero = trap_div_zero_;
  env.console = &console_;
  env.tick = &packets_run_;
  // Index-based fast path: sequential flow and statically-targeted control
  // transfers follow the predecoded indices; only dynamic transfers (jmpl,
  // or a resumed run) consult the pc -> index map.
  u32 idx = kNoPacketIndex;
  while (!state_.halted && res.packets < max_packets) {
    try {
      if (idx == kNoPacketIndex) idx = program_->index_of(state_.pc);
      const isa::Packet& p = program_->packet(idx);
      const PacketMeta& m = program_->meta(idx);
      const PacketOutcome out = execute_packet(state_, p, m.fall_through, env);
      ++res.packets;
      ++packets_run_;
      res.instrs += out.width;
      instrs_run_ += out.width;
      if (out.next_pc == m.fall_through) {
        idx = m.next_index;
      } else if (m.taken_index != kNoPacketIndex &&
                 out.next_pc == m.taken_target) {
        idx = m.taken_index;
      } else {
        idx = kNoPacketIndex;
      }
    } catch (const TrapException& e) {
      // Precise context: the faulting packet committed no register writes,
      // so state_.pc still names it.
      Trap t = e.trap();
      t.cpu = 0;
      t.pc = state_.pc;
      t.cycle = packets_run_;
      t.unit = TimeUnit::kPackets;
      if (state_.can_deliver(t.deliverable)) {
        // Deliver to the guest handler and keep running. tnpc is the
        // faulting packet's fall-through so a handler can skip it; when the
        // pc is not a packet boundary (kIllegalPacket) there is no
        // fall-through and tnpc degenerates to tpc.
        const u32 fidx = program_->find_index(state_.pc);
        const Addr npc = fidx == kNoPacketIndex
                             ? state_.pc
                             : program_->meta(fidx).fall_through;
        state_.deliver_trap(static_cast<u32>(t.code), t.pc, npc, t.value);
        ++traps_delivered_;
        last_trap_ = std::move(t);
        idx = kNoPacketIndex;
        continue;
      }
      res.trap = std::move(t);
      res.reason = TerminationReason::kTrap;
      return res;
    }
  }
  res.halted = state_.halted;
  res.reason = res.halted ? TerminationReason::kHalted
                          : TerminationReason::kPacketCap;
  return res;
}

} // namespace majc::sim
