#include "src/sim/functional_sim.h"

#include <bit>
#include <cstdio>

#include "src/isa/disasm.h"
#include "src/support/error.h"

namespace majc::sim {

Program::Program(masm::Image image) : image_(std::move(image)) {
  std::size_t w = 0;
  while (w < image_.code.size()) {
    const isa::Packet p = isa::decode_packet(
        std::span<const u32>(image_.code).subspan(w));
    index_.emplace(image_.code_base + w * 4, static_cast<u32>(packets_.size()));
    packets_.push_back(p);
    w += p.width;
  }
}

const isa::Packet& Program::packet_at(Addr pc) const {
  auto it = index_.find(pc);
  if (it == index_.end()) {
    raise_trap(TrapCause::kIllegalPacket,
               "control transfer to address " + std::to_string(pc) +
                   " which is not a packet boundary");
  }
  return packets_[it->second];
}

std::string trap_report(const Trap& trap, const Program& prog,
                        const CpuState& st) {
  char buf[128];
  std::string out = "== architected trap: ";
  out += trap_cause_name(trap.code);
  std::snprintf(buf, sizeof buf, " (code %u) ==\n",
                static_cast<u32>(trap.code));
  out += buf;
  std::snprintf(buf, sizeof buf, "  cpu %u  pc 0x%05llx  cycle %llu\n",
                trap.cpu, static_cast<unsigned long long>(trap.pc),
                static_cast<unsigned long long>(trap.cycle));
  out += buf;
  out += "  detail: " + trap.detail + "\n";
  if (prog.has_packet(trap.pc)) {
    out += "  packet: " + isa::disasm_packet(prog.packet_at(trap.pc)) + "\n";
  }
  out += "  regs:";
  u32 printed = 0;
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    const u32 v = st.read(static_cast<isa::PhysReg>(r));
    if (v == 0) continue;
    std::snprintf(buf, sizeof buf, "%s r%u=0x%x",
                  printed % 6 == 0 && printed != 0 ? "\n       " : "", r, v);
    out += buf;
    ++printed;
  }
  if (printed == 0) out += " (all zero)";
  out += "\n";
  return out;
}

void load_image(const masm::Image& img, MemoryBus& mem) {
  for (std::size_t i = 0; i < img.code.size(); ++i) {
    mem.write_u32(img.code_base + i * 4, img.code[i]);
  }
  if (!img.data.empty()) {
    mem.write(img.data_base, img.data);
  }
}

void FunctionalSim::format_trap(std::string& out, u32 code, u32 value) {
  char buf[64];
  switch (static_cast<ConsoleTrap>(code)) {
    case ConsoleTrap::kPrintInt:
      std::snprintf(buf, sizeof buf, "%d\n", static_cast<i32>(value));
      break;
    case ConsoleTrap::kPrintChar:
      buf[0] = static_cast<char>(value);
      buf[1] = '\0';
      break;
    case ConsoleTrap::kPrintHex:
      std::snprintf(buf, sizeof buf, "0x%08x\n", value);
      break;
    case ConsoleTrap::kPrintFloat:
      std::snprintf(buf, sizeof buf, "%g\n", std::bit_cast<float>(value));
      break;
    default:
      std::snprintf(buf, sizeof buf, "trap(%u,%u)\n", code, value);
      break;
  }
  out += buf;
}

FunctionalSim::FunctionalSim(masm::Image image, std::size_t mem_bytes)
    : program_(std::move(image)), mem_(mem_bytes) {
  load_image(program_.image(), mem_);
  state_.pc = program_.image().entry;
  // Conventional stack pointer: top of memory, 64-byte aligned headroom.
  state_.regs[2] = static_cast<u32>(mem_.size() - 64);
}

RunResult FunctionalSim::run(u64 max_packets) {
  RunResult res;
  ExecEnv env{mem_};
  env.trap_div_zero = trap_div_zero_;
  env.trap = [this](u32 code, u32 value) { format_trap(console_, code, value); };
  env.tick = [this] { return packets_run_; };
  while (!state_.halted && res.packets < max_packets) {
    try {
      const isa::Packet& p = program_.packet_at(state_.pc);
      const PacketOutcome out = execute_packet(state_, p, env);
      ++res.packets;
      ++packets_run_;
      res.instrs += out.width;
    } catch (const TrapException& e) {
      // Precise delivery: the faulting packet committed no register writes,
      // so state_.pc still names it.
      res.trap = e.trap();
      res.trap.cpu = 0;
      res.trap.pc = state_.pc;
      res.trap.cycle = packets_run_;
      res.reason = TerminationReason::kTrap;
      return res;
    }
  }
  res.halted = state_.halted;
  res.reason = res.halted ? TerminationReason::kHalted
                          : TerminationReason::kPacketCap;
  return res;
}

} // namespace majc::sim
