// The Graphics PreProcessor device model.
//
// Pipeline (paper §5): compressed polygon streams arrive (typically through
// the North UPA FIFO), the GPP decompresses and parses them, and distributes
// batches of uncompressed vertices to whichever CPU is less loaded; the CPUs
// run geometry transform + lighting. "This pipelined architecture delivers a
// performance of between 60 and 90 million triangles per second."
//
// The model decompresses real streams (src/gpp/geometry), assigns batches
// with a shortest-queue load balancer, charges decode time against the GPP's
// parse rate and distribution time against the crossbar, and simulates the
// resulting two-stage pipeline against the measured per-vertex cost of the
// MAJC transform+light kernel (src/kernels/transform_light).
#pragma once

#include <array>
#include <functional>

#include "src/gpp/geometry.h"
#include "src/mem/memsys.h"

namespace majc::soc {
class NupaPort;
}

namespace majc::gpp {

struct GppConfig {
  u32 batch_vertices = 64;          // vertices handed to a CPU per batch
  double decode_bytes_per_cycle = 2.0;  // compressed-stream parse rate
};

struct Batch {
  u32 first_vertex = 0;
  u32 vertex_count = 0;
  u32 triangle_count = 0;  // triangles completed by this batch's vertices
  u32 cpu = 0;             // which CPU the balancer chose
  Cycle decoded_at = 0;    // when the GPP finished decoding the batch
};

struct PipelineResult {
  u64 triangles = 0;
  u64 vertices = 0;
  Cycle cycles = 0;
  std::array<Cycle, 2> cpu_busy{};
  std::array<u64, 2> cpu_triangles{};
  double mtris_per_sec() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(triangles) /
                             static_cast<double>(cycles) * kClockHz / 1e6;
  }
  double balance() const {  // 1.0 = perfectly even split
    const u64 total = cpu_triangles[0] + cpu_triangles[1];
    if (total == 0) return 1.0;
    const u64 mn = std::min(cpu_triangles[0], cpu_triangles[1]);
    return 2.0 * static_cast<double>(mn) / static_cast<double>(total);
  }
};

class Gpp {
public:
  Gpp(mem::MemorySystem& ms, const GppConfig& cfg = {}) : ms_(ms), cfg_(cfg) {}

  /// Decompress `stream`, split into batches and load-balance across the
  /// two CPUs. Returns the batches in decode order; `out_mesh` receives the
  /// decoded geometry (validated against the original in tests).
  std::vector<Batch> decode_and_distribute(std::span<const u8> stream,
                                           Cycle now, Mesh& out_mesh);

  /// Simulate the full GPP -> dual-CPU pipeline for `stream`, with each CPU
  /// spending `cpu_cycles_per_vertex` on transform + lighting (measured from
  /// the MAJC kernel by the caller).
  PipelineResult simulate_pipeline(std::span<const u8> stream,
                                   double cpu_cycles_per_vertex, Cycle now = 0);

  /// Full-path variant: the compressed stream arrives from off-chip through
  /// the North UPA's 4 KB input FIFO (paper Fig. 1: "North UPA, 4K Buf" in
  /// front of the GPP). The external producer pushes at the UPA line rate
  /// and blocks on FIFO backpressure; the GPP drains the FIFO at its parse
  /// rate. Returns the same pipeline result, now including ingest effects.
  PipelineResult simulate_pipeline_from_nupa(soc::NupaPort& nupa,
                                             std::span<const u8> stream,
                                             double cpu_cycles_per_vertex,
                                             Cycle now = 0);

  const GppConfig& config() const { return cfg_; }

  /// Install a per-batch observer (CPU work start/completion cycles) for
  /// the trace layer; empty function disables. Fires in distribution order.
  void set_observer(
      std::function<void(const Batch&, Cycle start, Cycle done)> fn) {
    observer_ = std::move(fn);
  }

private:
  /// Shared back half: hand batches to the less-loaded CPU over the
  /// crossbar and account the transform work.
  PipelineResult run_distribution(std::vector<Batch>& batches,
                                  double cpu_cycles_per_vertex, Cycle now);

  mem::MemorySystem& ms_;
  GppConfig cfg_;
  std::function<void(const Batch&, Cycle, Cycle)> observer_;
};

} // namespace majc::gpp
