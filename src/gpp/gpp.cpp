#include "src/gpp/gpp.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/soc/ports.h"

namespace majc::gpp {

std::vector<Batch> Gpp::decode_and_distribute(std::span<const u8> stream,
                                              Cycle now, Mesh& out_mesh) {
  out_mesh = decompress(stream);
  const u32 n = static_cast<u32>(out_mesh.vertices.size());
  std::vector<Batch> batches;
  if (n == 0) return batches;

  // Decode time: the stream parses at the GPP's rate; batches become ready
  // as their share of the stream has been consumed.
  const double cycles_per_vertex =
      static_cast<double>(stream.size()) / cfg_.decode_bytes_per_cycle /
      static_cast<double>(n);

  std::array<u64, 2> queued{};  // outstanding vertices per CPU (balancer state)
  u32 first = 0;
  while (first < n) {
    Batch b;
    b.first_vertex = first;
    b.vertex_count = std::min(cfg_.batch_vertices, n - first);
    // Count the triangles this batch's vertices close, honouring strip
    // restarts (a vertex only closes a triangle from the third vertex of
    // its strip onward).
    const u32 end = first + b.vertex_count;
    b.triangle_count =
        out_mesh.triangles_before(end) - out_mesh.triangles_before(first);
    b.cpu = queued[0] <= queued[1] ? 0 : 1;
    queued[b.cpu] += b.vertex_count;
    b.decoded_at =
        now + static_cast<Cycle>(std::ceil(cycles_per_vertex * end));
    batches.push_back(b);
    first = end;
  }
  return batches;
}

PipelineResult Gpp::run_distribution(std::vector<Batch>& batches,
                                     double cpu_cycles_per_vertex,
                                     Cycle now) {
  PipelineResult res;
  std::array<Cycle, 2> cpu_free{now, now};
  const mem::Port cpu_port[2] = {mem::Port::kCpu0, mem::Port::kCpu1};

  for (Batch& b : batches) {
    // Dynamic shortest-completion-time balancing (the GPP sees both queues).
    b.cpu = cpu_free[0] <= cpu_free[1] ? 0 : 1;
    // Hand the uncompressed batch to the CPU over the crossbar.
    const u32 bytes = b.vertex_count * Vertex::kRawBytes;
    const Cycle delivered = ms_.xbar().transfer(
        mem::Port::kGpp, cpu_port[b.cpu], bytes, b.decoded_at);
    const Cycle start = std::max(delivered, cpu_free[b.cpu]);
    const auto work = static_cast<Cycle>(
        std::ceil(cpu_cycles_per_vertex * b.vertex_count));
    cpu_free[b.cpu] = start + work;
    if (observer_) observer_(b, start, cpu_free[b.cpu]);
    res.cpu_busy[b.cpu] += work;
    res.cpu_triangles[b.cpu] += b.triangle_count;
    res.triangles += b.triangle_count;
    res.vertices += b.vertex_count;
  }
  res.cycles = std::max(cpu_free[0], cpu_free[1]) - now;
  return res;
}

PipelineResult Gpp::simulate_pipeline(std::span<const u8> stream,
                                      double cpu_cycles_per_vertex,
                                      Cycle now) {
  Mesh mesh;
  std::vector<Batch> batches = decode_and_distribute(stream, now, mesh);
  return run_distribution(batches, cpu_cycles_per_vertex, now);
}

PipelineResult Gpp::simulate_pipeline_from_nupa(soc::NupaPort& nupa,
                                                std::span<const u8> stream,
                                                double cpu_cycles_per_vertex,
                                                Cycle now) {
  // Ingest through the real 4 KB FIFO in 256-byte bursts: the external
  // producer runs at the UPA line rate and blocks when the FIFO is full;
  // the GPP drains at its parse rate. The loop tracks both clocks and the
  // arrival time of every burst so parse order respects arrival order.
  constexpr u32 kBurst = 256;
  soc::Fifo& fifo = nupa.fifo();
  const double parse = cfg_.decode_bytes_per_cycle;

  std::deque<std::pair<u32, Cycle>> in_flight;  // (bytes, arrival cycle)
  std::vector<u8> burst(kBurst);
  Cycle prod_t = now;
  Cycle cons_t = now;
  std::size_t pushed = 0;
  std::size_t consumed = 0;
  while (consumed < stream.size()) {
    if (pushed < stream.size() && fifo.can_push(kBurst)) {
      const u32 n =
          static_cast<u32>(std::min<std::size_t>(kBurst, stream.size() - pushed));
      prod_t = nupa.push_fifo(stream.subspan(pushed, n), prod_t);
      in_flight.emplace_back(n, prod_t);
      pushed += n;
      continue;
    }
    // FIFO full (or stream fully pushed): the GPP consumes one burst.
    require(!in_flight.empty(), "GPP ingest deadlock");
    const auto [n, arrived] = in_flight.front();
    in_flight.pop_front();
    const u32 got = fifo.pop(std::span<u8>(burst.data(), n));
    require(got == n, "FIFO drained out of order");
    cons_t = std::max(cons_t, arrived) +
             static_cast<Cycle>(std::ceil(n / parse));
    consumed += n;
    // A blocked producer resumes as soon as the pop frees space.
    prod_t = std::max(prod_t, cons_t > prod_t ? cons_t - 1 : prod_t);
  }

  // The stream has been parsed by cons_t; batches become ready linearly
  // over the ingest+parse interval.
  Mesh mesh;
  std::vector<Batch> batches = decode_and_distribute(stream, now, mesh);
  const u32 n = static_cast<u32>(mesh.vertices.size());
  for (Batch& b : batches) {
    const double frac =
        static_cast<double>(b.first_vertex + b.vertex_count) / n;
    b.decoded_at = now + static_cast<Cycle>(
                             std::ceil(static_cast<double>(cons_t - now) * frac));
  }
  return run_distribution(batches, cpu_cycles_per_vertex, now);
}

} // namespace majc::gpp
