// Compressed geometry: the GPP's input format.
//
// MAJC-5200's graphics preprocessor has "built-in support for real-time 3D
// geometry decompressing, data parsing, and load balancing between the two
// processors" (paper §3.1, §5). The original chip consumed Sun Compressed
// Geometry streams; that format is proprietary, so this module implements a
// functionally equivalent codec with the same structure (DESIGN.md §5.2):
// triangle-strip vertices, quantized positions/normals, delta coding and
// variable-length entropy coding. What matters for reproduction is that the
// GPP exercises a real decompress-parse-distribute path with a realistic
// compression ratio (~4-8x vs. raw floats), which this provides.
#pragma once

#include <span>
#include <vector>

#include "src/support/rng.h"
#include "src/support/types.h"

namespace majc::gpp {

struct Vertex {
  float x = 0, y = 0, z = 0;     // position
  float nx = 0, ny = 0, nz = 1;  // unit normal
  u8 r = 0, g = 0, b = 0;        // color

  static constexpr u32 kRawBytes = 27;  // 6 floats + 3 color bytes
};

/// Triangle strips: `strip_starts` lists the first vertex of each strip
/// (it always begins with 0 for a non-empty mesh); within a strip every
/// vertex after the first two closes a triangle. Real compressed-geometry
/// streams are sequences of strips with restart marks, which the codec
/// encodes as a per-vertex restart bit.
struct Mesh {
  std::vector<Vertex> vertices;
  std::vector<u32> strip_starts;

  u32 triangle_count() const;
  /// Triangles closed by vertices with index < v (monotone; used by the
  /// GPP's batcher to attribute triangles to batches).
  u32 triangles_before(u32 v) const;
  u32 raw_bytes() const {
    return static_cast<u32>(vertices.size()) * Vertex::kRawBytes;
  }
};

/// Deterministic synthetic mesh: a smooth displaced surface swept in strip
/// order, so position/normal deltas between consecutive vertices are small —
/// the property real strip-ordered geometry has and the codec exploits.
/// `strips` splits the sweep into that many restart-separated strips.
Mesh make_test_mesh(u32 vertex_count, u64 seed, u32 strips = 1);

/// Bit-granular big-endian writer/reader (the GPP parses the stream with
/// the CPUs' BEXT-style MSB-first orientation).
class BitWriter {
public:
  void put(u32 value, u32 bits);
  std::vector<u8> finish();
  u64 bits_written() const { return bits_; }

private:
  std::vector<u8> bytes_;
  u64 bits_ = 0;
  u32 acc_ = 0;
  u32 acc_bits_ = 0;
};

class BitReader {
public:
  explicit BitReader(std::span<const u8> data) : data_(data) {}
  u32 get(u32 bits);
  u64 bits_read() const { return pos_; }

private:
  std::span<const u8> data_;
  u64 pos_ = 0;  // absolute bit position
};

/// Quantization parameters (positions to a 2^bits grid over [-1, 1],
/// normals to 8 bits per component).
inline constexpr u32 kPositionBits = 14;
inline constexpr u32 kNormalBits = 8;

std::vector<u8> compress(const Mesh& mesh);
Mesh decompress(std::span<const u8> stream);

/// Raw size / compressed size.
double compression_ratio(const Mesh& mesh, std::span<const u8> stream);

/// Maximum position error the quantizer may introduce.
double position_tolerance();

} // namespace majc::gpp
