#include "src/gpp/geometry.h"

#include <algorithm>
#include <cmath>

#include "src/support/bits.h"
#include "src/support/error.h"

namespace majc::gpp {
namespace {

constexpr u32 kMagic = 0x4D474F43;  // "MGOC": MAJC geometry codec

/// Zigzag fold: small signed deltas -> small unsigned codes.
constexpr u32 zigzag(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}
constexpr i32 unzigzag(u32 v) {
  return static_cast<i32>(v >> 1) ^ -static_cast<i32>(v & 1);
}

/// Variable-length code: a 4-bit magnitude-width field, then that many bits.
void put_vlc(BitWriter& w, i32 delta) {
  const u32 z = zigzag(delta);
  u32 width = 0;
  while (width < 15 && z >= (1u << width)) ++width;
  w.put(width, 4);
  if (width > 0) w.put(z & ((1u << width) - 1u), width);
}

i32 get_vlc(BitReader& r) {
  const u32 width = r.get(4);
  const u32 z = width == 0 ? 0 : r.get(width);
  return unzigzag(z);
}

i32 quantize(float v, u32 bits) {
  const float scale = static_cast<float>((1 << (bits - 1)) - 1);
  const float c = std::clamp(v, -1.0f, 1.0f);
  return static_cast<i32>(std::lround(c * scale));
}

float dequantize(i32 q, u32 bits) {
  const float scale = static_cast<float>((1 << (bits - 1)) - 1);
  return static_cast<float>(q) / scale;
}

} // namespace

void BitWriter::put(u32 value, u32 bits) {
  require(bits <= 32, "BitWriter::put supports at most 32 bits");
  for (u32 i = bits; i-- > 0;) {
    acc_ = (acc_ << 1) | ((value >> i) & 1u);
    if (++acc_bits_ == 8) {
      bytes_.push_back(static_cast<u8>(acc_));
      acc_ = 0;
      acc_bits_ = 0;
    }
  }
  bits_ += bits;
}

std::vector<u8> BitWriter::finish() {
  if (acc_bits_ != 0) {
    bytes_.push_back(static_cast<u8>(acc_ << (8 - acc_bits_)));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(bytes_);
}

u32 BitReader::get(u32 bits) {
  require(bits <= 32, "BitReader::get supports at most 32 bits");
  u32 v = 0;
  for (u32 i = 0; i < bits; ++i) {
    const u64 byte = pos_ / 8;
    require(byte < data_.size(), "compressed geometry stream truncated");
    const u32 bit = (data_[byte] >> (7 - pos_ % 8)) & 1u;
    v = (v << 1) | bit;
    ++pos_;
  }
  return v;
}

u32 Mesh::triangle_count() const {
  return triangles_before(static_cast<u32>(vertices.size()));
}

u32 Mesh::triangles_before(u32 v) const {
  u32 tris = 0;
  for (std::size_t s = 0; s < strip_starts.size(); ++s) {
    const u32 start = strip_starts[s];
    const u32 end = (s + 1 < strip_starts.size())
                        ? strip_starts[s + 1]
                        : static_cast<u32>(vertices.size());
    const u32 upto = std::min(v, end);
    if (upto > start + 2) tris += upto - start - 2;
  }
  return tris;
}

Mesh make_test_mesh(u32 vertex_count, u64 seed, u32 strips) {
  Mesh mesh;
  mesh.vertices.reserve(vertex_count);
  SplitMix64 rng(seed);
  if (vertex_count > 0) {
    strips = std::max(1u, std::min(strips, vertex_count));
    for (u32 s = 0; s < strips; ++s) {
      mesh.strip_starts.push_back(s * (vertex_count / strips));
    }
  }
  // Sweep a gently displaced grid surface in strip order. Strides are small
  // relative to the quantization grid so deltas entropy-code well.
  const u32 row = 64;
  for (u32 i = 0; i < vertex_count; ++i) {
    const u32 gx = i % row;
    const u32 gy = i / row;
    Vertex v;
    v.x = -1.0f + 2.0f * static_cast<float>(gx) / row;
    v.y = -1.0f + 0.02f * static_cast<float>(gy);
    v.z = 0.25f * std::sin(0.3f * static_cast<float>(gx)) *
              std::cos(0.2f * static_cast<float>(gy)) +
          0.01f * static_cast<float>(rng.next_double() - 0.5);
    // Analytic-ish surface normal, normalized.
    const float dzdx = 0.075f * std::cos(0.3f * static_cast<float>(gx));
    const float dzdy = -0.05f * std::sin(0.2f * static_cast<float>(gy));
    const float len = std::sqrt(dzdx * dzdx + dzdy * dzdy + 1.0f);
    v.nx = -dzdx / len;
    v.ny = -dzdy / len;
    v.nz = 1.0f / len;
    v.r = static_cast<u8>(64 + (gx * 3) % 128);
    v.g = static_cast<u8>(64 + (gy * 5) % 128);
    v.b = static_cast<u8>(128 + (gx + gy) % 64);
    mesh.vertices.push_back(v);
  }
  return mesh;
}

std::vector<u8> compress(const Mesh& mesh) {
  BitWriter w;
  w.put(kMagic, 32);
  w.put(static_cast<u32>(mesh.vertices.size()), 32);

  i32 px = 0, py = 0, pz = 0;
  i32 pnx = 0, pny = 0, pnz = 0;
  i32 pr = 0, pg = 0, pb = 0;
  std::size_t next_restart = 0;
  for (u32 i = 0; i < mesh.vertices.size(); ++i) {
    const Vertex& v = mesh.vertices[i];
    // Strip restart mark (vertex 0 always restarts).
    const bool restart = next_restart < mesh.strip_starts.size() &&
                         mesh.strip_starts[next_restart] == i;
    if (restart) ++next_restart;
    w.put(restart ? 1 : 0, 1);
    const i32 qx = quantize(v.x, kPositionBits);
    const i32 qy = quantize(v.y, kPositionBits);
    const i32 qz = quantize(v.z, kPositionBits);
    put_vlc(w, qx - px);
    put_vlc(w, qy - py);
    put_vlc(w, qz - pz);
    px = qx; py = qy; pz = qz;

    const i32 qnx = quantize(v.nx, kNormalBits);
    const i32 qny = quantize(v.ny, kNormalBits);
    const i32 qnz = quantize(v.nz, kNormalBits);
    put_vlc(w, qnx - pnx);
    put_vlc(w, qny - pny);
    put_vlc(w, qnz - pnz);
    pnx = qnx; pny = qny; pnz = qnz;

    put_vlc(w, static_cast<i32>(v.r) - pr);
    put_vlc(w, static_cast<i32>(v.g) - pg);
    put_vlc(w, static_cast<i32>(v.b) - pb);
    pr = v.r; pg = v.g; pb = v.b;
  }
  return w.finish();
}

Mesh decompress(std::span<const u8> stream) {
  BitReader r(stream);
  require(r.get(32) == kMagic, "bad compressed geometry magic");
  const u32 count = r.get(32);
  Mesh mesh;
  mesh.vertices.reserve(count);

  i32 px = 0, py = 0, pz = 0;
  i32 pnx = 0, pny = 0, pnz = 0;
  i32 pr = 0, pg = 0, pb = 0;
  for (u32 i = 0; i < count; ++i) {
    Vertex v;
    if (r.get(1) != 0) mesh.strip_starts.push_back(i);
    px += get_vlc(r);
    py += get_vlc(r);
    pz += get_vlc(r);
    v.x = dequantize(px, kPositionBits);
    v.y = dequantize(py, kPositionBits);
    v.z = dequantize(pz, kPositionBits);

    pnx += get_vlc(r);
    pny += get_vlc(r);
    pnz += get_vlc(r);
    v.nx = dequantize(pnx, kNormalBits);
    v.ny = dequantize(pny, kNormalBits);
    v.nz = dequantize(pnz, kNormalBits);

    pr += get_vlc(r);
    pg += get_vlc(r);
    pb += get_vlc(r);
    v.r = static_cast<u8>(pr);
    v.g = static_cast<u8>(pg);
    v.b = static_cast<u8>(pb);
    mesh.vertices.push_back(v);
  }
  return mesh;
}

double compression_ratio(const Mesh& mesh, std::span<const u8> stream) {
  if (stream.empty()) return 0.0;
  return static_cast<double>(mesh.raw_bytes()) /
         static_cast<double>(stream.size());
}

double position_tolerance() {
  return 1.0 / static_cast<double>((1 << (kPositionBits - 1)) - 1);
}

} // namespace majc::gpp
