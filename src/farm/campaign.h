// Deterministic campaign serialization: the majc-farm-v1 schema.
//
// A campaign dump is a pure function of the submitted job matrix and the
// simulated results — it deliberately carries no host-timing, worker-id or
// job-count fields, so the same campaign serialized after a --jobs=1 run
// and a --jobs=16 run is byte-identical (tests/test_farm.cpp asserts this).
// Host-side throughput lives in CampaignStats and is reported separately
// (stdout / bench JSON), never here.
#pragma once

#include <ostream>
#include <string>

#include "src/farm/farm.h"

namespace majc::farm {

inline constexpr const char* kFarmSchema = "majc-farm-v1";

/// Write the campaign (jobs in submission order + their results) as
/// majc-farm-v1 JSON. `base_seed` records the campaign's fault-stream seed
/// for reproduction.
void write_campaign_json(std::ostream& os, const Engine& eng,
                         const std::vector<JobResult>& results,
                         u64 base_seed);

/// write_campaign_json into a string (test + CLI convenience).
std::string campaign_json(const Engine& eng,
                          const std::vector<JobResult>& results,
                          u64 base_seed);

} // namespace majc::farm
