#include "src/farm/campaign.h"

#include <sstream>

#include "src/trace/json.h"

namespace majc::farm {
namespace {

void write_recovery(trace::JsonWriter& j,
                    const kernels::KernelRun::Recovery& r) {
  j.key("recovery").begin_object();
  j.kv("ecc_corrected", r.ecc_corrected);
  j.kv("ecc_retried", r.ecc_retried);
  j.kv("ecc_poisoned", r.ecc_poisoned);
  j.kv("machine_checks", r.machine_checks);
  j.kv("fill_parity_retries", r.fill_parity_retries);
  j.kv("fill_machine_checks", r.fill_machine_checks);
  j.kv("xbar_delayed_grants", r.xbar_delayed_grants);
  j.kv("xbar_dropped_grants", r.xbar_dropped_grants);
  j.kv("traps_delivered", r.traps_delivered);
  j.end_object();
}

} // namespace

void write_campaign_json(std::ostream& os, const Engine& eng,
                         const std::vector<JobResult>& results,
                         u64 base_seed) {
  trace::JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kFarmSchema);
  j.kv("base_seed", base_seed);
  j.kv("num_kernels", static_cast<u64>(eng.num_kernels()));
  j.kv("num_jobs", static_cast<u64>(eng.jobs().size()));
  j.key("jobs").begin_array();
  for (std::size_t i = 0; i < eng.jobs().size(); ++i) {
    const Job& job = eng.jobs()[i];
    const kernels::KernelRun& run = results[i].run;
    const FaultConfig& f = job.cfg.faults;
    j.begin_object();
    j.kv("index", static_cast<u64>(i));
    j.kv("kernel", eng.kernel(job.kernel).spec.name);
    j.kv("mode", sim_mode_name(job.mode));
    // Execution engine actually used: functional jobs name their backend,
    // cycle jobs have exactly one engine. Deterministic (a job field, not a
    // host observation), so -j1 == -jN byte-identity holds across backends.
    j.kv("backend", job.mode == SimMode::kCycle
                        ? "cycle"
                        : sim::exec_backend_name(job.backend));
    j.kv("iteration", job.iteration);
    j.kv("fault_seed", f.seed);
    j.kv("mc_policy", machine_check_policy_name(f.mc_policy));
    j.kv("dram_correctable_rate", f.dram_correctable_rate);
    j.kv("dram_uncorrectable_rate", f.dram_uncorrectable_rate);
    j.kv("fill_parity_rate", f.fill_parity_rate);
    j.kv("xbar_delay_rate", f.xbar_delay_rate);
    j.kv("xbar_drop_rate", f.xbar_drop_rate);
    j.kv("valid", run.valid);
    j.kv("halted", run.halted);
    j.kv("reason", termination_reason_name(run.reason));
    // Final-outcome failure classification (DESIGN.md §12). Deterministic:
    // retries have already absorbed transient host disturbances, so a
    // chaos-stormed campaign serializes identically to an undisturbed one.
    // Attempt/slice/preemption counts are host-observational and stay out.
    j.kv("failure_class", failure_class_name(results[i].failure));
    j.kv("quarantined", results[i].quarantined);
    j.kv("kernel_cycles", run.kernel_cycles);
    j.kv("total_cycles", run.total_cycles);
    j.kv("packets", run.packets);
    j.kv("instrs", run.instrs);
    j.kv("arch_digest", run.arch_digest);
    if (!run.message.empty()) j.kv("message", run.message);
    write_recovery(j, run.recovery);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  os << "\n";
}

std::string campaign_json(const Engine& eng,
                          const std::vector<JobResult>& results,
                          u64 base_seed) {
  std::ostringstream os;
  write_campaign_json(os, eng, results, base_seed);
  return os.str();
}

} // namespace majc::farm
