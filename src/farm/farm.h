// Deterministic parallel campaign engine.
//
// The MAJC evaluation is embarrassingly parallel across *runs*: Table 1/2
// sweeps, fault-seed storms and config ablations are matrices of independent
// (kernel x sim-mode x TimingConfig x fault-seed) jobs. The farm shards such
// a matrix across host threads while keeping every output bit-identical to
// a serial run:
//
//   * shared immutable predecode — each kernel is assembled + predecoded
//     once (kernels::CompiledKernel); every worker aliases the same
//     read-only sim::Program instead of re-deriving it per job. This is a
//     constant per-job saving that shows up even at --jobs=1.
//   * per-worker machine reuse — each worker owns one resettable CycleSim /
//     FunctionalSim arena and reinitializes it in place per job
//     (CycleSim::reset), so the 32 MB guest arena is allocated once per
//     worker, not once per job.
//   * deterministic aggregation — jobs are pulled from an atomic cursor in
//     any order, but results land in a submission-order vector, and
//     campaign JSON (src/farm/campaign.h) carries no host-timing fields, so
//     --jobs=1 and --jobs=16 campaigns are byte-identical.
//
// Determinism rules a job must obey (audited in DESIGN.md §11): a running
// machine touches only its own arena plus shared *immutable* state (the
// Program, opcode/disasm tables); all RNG (FaultPlan, data synthesis) is
// seeded per job; no mutable statics anywhere in the simulator core.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/kernels/kernel.h"
#include "src/sim/functional_sim.h"
#include "src/soc/config.h"

namespace majc::farm {

enum class SimMode : u8 { kFunctional = 0, kCycle = 1 };

constexpr const char* sim_mode_name(SimMode m) {
  switch (m) {
    case SimMode::kFunctional: return "functional";
    case SimMode::kCycle: return "cycle";
  }
  return "?";
}

/// One cell of the campaign matrix. `kernel` indexes the engine's compiled
/// kernel table; the per-job fault seed rides in cfg.faults.
struct Job {
  u32 kernel = 0;
  SimMode mode = SimMode::kCycle;
  TimingConfig cfg;
  u64 iteration = 0;  // caller-defined tag (e.g. soak iteration number)
};

struct JobResult {
  kernels::KernelRun run;
  // Host-side observations — informational only, deliberately excluded from
  // the deterministic campaign JSON (they differ run to run and job-count
  // to job-count).
  double host_secs = 0.0;
  u32 worker = 0;
};

/// Host-side campaign aggregates (same caveat: not part of deterministic
/// output).
struct CampaignStats {
  u32 workers = 0;
  double wall_secs = 0.0;
  u64 total_packets = 0;
  u64 total_instrs = 0;
  double aggregate_pps = 0.0;   // simulated packets per host second
  double aggregate_mips = 0.0;  // simulated Minstrs per host second
};

/// Per-worker reusable machines: one cycle arena and one functional arena,
/// constructed on first use and reset in place for every subsequent job.
/// Also usable standalone (the soak harness's serial path and tests).
class WorkerMachines {
public:
  kernels::KernelRun run(const kernels::CompiledKernel& k, const Job& job);

private:
  std::optional<cpu::CycleSim> cycle_;
  std::optional<sim::FunctionalSim> functional_;
};

/// Work-queue thread pool over a submitted job matrix.
class Engine {
public:
  Engine() = default;

  /// Register a compiled kernel; returns its index for Job::kernel.
  u32 add_kernel(kernels::CompiledKernel k);
  /// Compile + register in one step.
  u32 add_kernel(kernels::KernelSpec spec);

  const kernels::CompiledKernel& kernel(u32 i) const { return kernels_[i]; }
  std::size_t num_kernels() const { return kernels_.size(); }

  /// Append a job; returns its submission index (== index into run()'s
  /// result vector).
  u32 submit(Job job);
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Execute every submitted job on `workers` threads (0 = host hardware
  /// concurrency) and return results in submission order. A job that throws
  /// is reported as an invalid run (valid=false, message=what()), never as
  /// an engine failure. May be called repeatedly; each call re-runs the
  /// submitted matrix.
  std::vector<JobResult> run(unsigned workers = 0,
                             CampaignStats* stats = nullptr) const;

private:
  std::vector<kernels::CompiledKernel> kernels_;
  std::vector<Job> jobs_;
};

/// The fault-soak derivation (SplitMix64-mixed, randomized-but-bounded
/// rates; see bench/soak_faults.cpp): shared by the soak harness and
/// majc_farm so both storm identical fault streams for a given base seed.
FaultConfig derive_soak_faults(u64 base_seed, u64 kernel_idx, u64 iteration);

} // namespace majc::farm
