// Deterministic parallel campaign engine with a job-resilience layer.
//
// The MAJC evaluation is embarrassingly parallel across *runs*: Table 1/2
// sweeps, fault-seed storms and config ablations are matrices of independent
// (kernel x sim-mode x TimingConfig x fault-seed) jobs. The farm shards such
// a matrix across host threads while keeping every output bit-identical to
// a serial run:
//
//   * shared immutable predecode — each kernel is assembled + predecoded
//     once (kernels::CompiledKernel); every worker aliases the same
//     read-only sim::Program instead of re-deriving it per job. This is a
//     constant per-job saving that shows up even at --jobs=1.
//   * per-worker machine reuse — each worker owns one resettable CycleSim /
//     FunctionalSim arena and reinitializes it in place per job
//     (CycleSim::reset), so the 32 MB guest arena is allocated once per
//     worker, not once per job.
//   * deterministic aggregation — jobs are pulled from an atomic cursor in
//     any order, but results land in a submission-order vector, and
//     campaign JSON (src/farm/campaign.h) carries no host-timing fields, so
//     --jobs=1 and --jobs=16 campaigns are byte-identical.
//
// On top of that sits the resilience layer (DESIGN.md §12): a per-job
// JobPolicy (packet budget, host deadline, slice budget, bounded retry with
// a deterministic seed-advancing backoff schedule), failure classification
// into a structured taxonomy carried in the majc-farm-v1 JSON, quarantine
// of jobs that fail identically across retries, checkpoint-based
// preemption (RunControl drain token; PR 5 checkpoint format), and a
// seeded host-chaos plan used by bench/chaos_soak.cpp to prove none of it
// perturbs results.
//
// Determinism rules a job must obey (audited in DESIGN.md §11): a running
// machine touches only its own arena plus shared *immutable* state (the
// Program, opcode/disasm tables); all RNG (FaultPlan, data synthesis) is
// seeded per job; no mutable statics anywhere in the simulator core.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/kernels/kernel.h"
#include "src/sim/functional_sim.h"
#include "src/soc/config.h"

namespace majc::farm {

enum class SimMode : u8 { kFunctional = 0, kCycle = 1 };

constexpr const char* sim_mode_name(SimMode m) {
  switch (m) {
    case SimMode::kFunctional: return "functional";
    case SimMode::kCycle: return "cycle";
  }
  // Every construction site is validated (the CLI rejects unknown --mode
  // values before a Job exists), so an out-of-range enum here is a model
  // bug, not an input: fail loudly instead of labeling output "?".
  assert(false && "invalid SimMode");
  std::abort();
}

/// Structured failure taxonomy (DESIGN.md §12). `failure_class` in the
/// majc-farm-v1 JSON is the *final* outcome after the retry policy ran, so
/// it is deterministic: a transient host disturbance that a retry absorbed
/// reports kNone, exactly like an undisturbed run.
enum class FailureClass : u8 {
  kNone = 0,              // job completed and validated
  kTransientRetryable = 1, // attempt lost to a host-side disturbance (chaos
                           // kill, abandoned preemption); a retry reproduces
                           // the deterministic guest outcome
  kDeterministicFatal = 2, // deterministic guest outcome (trap, validate
                           // mismatch): retrying replays the same failure
  kHostException = 3,      // the job threw a host C++ exception
  kDeadlineExceeded = 4,   // packet/cycle budget or host deadline exhausted
};

constexpr const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kNone: return "none";
    case FailureClass::kTransientRetryable: return "transient-retryable";
    case FailureClass::kDeterministicFatal: return "deterministic-fatal";
    case FailureClass::kHostException: return "host-exception";
    case FailureClass::kDeadlineExceeded: return "deadline-exceeded";
  }
  assert(false && "invalid FailureClass");
  std::abort();
}

/// Per-job execution policy: budgets, deadline, slicing and retry. The
/// default policy reproduces the pre-resilience engine exactly (one
/// attempt, one slice, spec packet budget, no deadline).
struct JobPolicy {
  /// Guest packet budget; 0 = the kernel spec's own max_packets.
  u64 max_packets = 0;
  /// Run in slices of this many packets (0 = one slice). Slice boundaries
  /// are where the engine honors deadlines, drain requests and forced
  /// preemptions; sliced execution is byte-identical to unsliced
  /// (tests/test_resilience.cpp pins this in both sim modes, under faults).
  u64 slice_packets = 0;
  /// Wall-clock budget per job across its slices (0 = none). A job still
  /// running at the deadline is killed at the next slice boundary and
  /// reported as a structured kDeadlineExceeded result — this is what
  /// converts a hung guest that defeats the cycle watchdog (it keeps
  /// storing) into a fast, classified failure instead of a pinned worker.
  double host_deadline_secs = 0.0;
  /// Total attempts (1 = no retry). Only kHostException and
  /// kTransientRetryable failures are retried: guest outcomes are
  /// deterministic, so kDeterministicFatal / kDeadlineExceeded retries
  /// would replay the identical failure.
  u32 max_attempts = 1;
  /// Base for the deterministic seed-advancing backoff schedule between
  /// retry attempts, in microseconds (0 = retry immediately). Attempt k
  /// sleeps base*2^(k-1) up to backoff_cap_us, jittered by a SplitMix64
  /// stream seeded from (backoff_seed, job index, attempt) — the same
  /// deterministic schedule every run, never wall-clock randomness.
  u64 backoff_base_us = 0;
  u64 backoff_cap_us = 10'000;
  u64 backoff_seed = 0;
};

/// Deterministic backoff delay before retry attempt `attempt` (>= 2) of job
/// `job_index` under `p` — pure function of its arguments.
u64 backoff_us(const JobPolicy& p, u64 job_index, u32 attempt);

/// One cell of the campaign matrix. `kernel` indexes the engine's compiled
/// kernel table; the per-job fault seed rides in cfg.faults.
struct Job {
  u32 kernel = 0;
  SimMode mode = SimMode::kCycle;
  /// Functional-mode execution engine (ignored by cycle jobs). Guest-visible
  /// output is identical for both backends, and the field is part of the
  /// job, not of the host schedule, so -j1 and -jN campaigns stay
  /// byte-identical across backends.
  sim::ExecBackend backend = sim::ExecBackend::kThreaded;
  TimingConfig cfg;
  u64 iteration = 0;  // caller-defined tag (e.g. soak iteration number)
  JobPolicy policy;
};

struct JobResult {
  kernels::KernelRun run;
  /// Final-outcome classification and quarantine flag. Deterministic —
  /// carried in the majc-farm-v1 JSON (campaign.cpp).
  FailureClass failure = FailureClass::kNone;
  /// Set when retries were exhausted by identical failures (or the first
  /// failure was already deterministic): re-submitting this job without
  /// changing it is known to be pointless.
  bool quarantined = false;
  /// False only when a drain/cancel interrupted the job mid-flight; its
  /// state (if drained) is parked in the RunControl for a later resume and
  /// `run` holds no meaningful result.
  bool done = true;
  // Host-side observations — informational only, deliberately excluded from
  // the deterministic campaign JSON (they differ run to run and job-count
  // to job-count, e.g. chaos adds attempts the baseline never sees).
  u32 attempts = 1;
  u32 slices = 0;
  u32 preemptions = 0;  // forced checkpoint save/restore cycles absorbed
  double host_secs = 0.0;
  u32 worker = 0;
};

/// Host-side campaign aggregates (same caveat: not part of deterministic
/// output).
struct CampaignStats {
  u32 workers = 0;
  double wall_secs = 0.0;
  u64 total_packets = 0;
  u64 total_instrs = 0;
  double aggregate_pps = 0.0;   // simulated packets per host second
  double aggregate_mips = 0.0;  // simulated Minstrs per host second
  // Resilience-layer counters.
  u64 total_attempts = 0;
  u64 jobs_retried = 0;
  u64 jobs_quarantined = 0;
  u64 forced_preemptions = 0;
  u64 jobs_suspended = 0;  // drained mid-flight (resumable via RunControl)
};

/// Seeded host-chaos injection plan: the soak harness's storm against the
/// *engine* rather than the guest. Decisions are pure functions of
/// (seed, job index, attempt, slice), never of worker identity or wall
/// clock, so a chaotic campaign retried to completion aggregates
/// byte-identically to an undisturbed one (bench/chaos_soak.cpp asserts
/// this). Exceptions and deadline kills only fire on attempt 1 — the
/// bounded retry then completes the job clean.
struct ChaosPlan {
  u64 seed = 0;
  double exception_rate = 0.0;     // P(throw at attempt-1 start)
  double deadline_kill_rate = 0.0; // P(kill attempt 1 at a slice boundary)
  double preempt_rate = 0.0;       // P(forced checkpoint preemption at a
                                   // slice boundary)
  u32 max_preemptions_per_job = 2;
};

/// Cancellation / drain token plus the resume store behind it. Sharable
/// with Engine::run from another thread:
///
///   * request_cancel(): workers stop at the next slice boundary and
///     abandon in-flight attempts (cheap, nothing saved);
///   * request_drain(): workers checkpoint in-flight jobs (PR 5 format)
///     into this control and stop. A later Engine::run with the same
///     control resumes every suspended job from its checkpoint, skips the
///     already-completed ones (their results are cached here), and the
///     final aggregated results are byte-identical to an uninterrupted run
///     (tests/test_resilience.cpp pins this).
class RunControl {
public:
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  void request_drain() { drain_.store(true, std::memory_order_relaxed); }
  /// Deterministic drain trigger (tests, staged preemption): drain as soon
  /// as `n` jobs have completed in total.
  void request_drain_after(std::size_t n) {
    drain_after_.store(n, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  bool drain_requested() const {
    return drain_.load(std::memory_order_relaxed);
  }
  /// Clear the cancel/drain flags (kept: the resume store) so the next run
  /// can make progress.
  void rearm() {
    cancel_.store(false, std::memory_order_relaxed);
    drain_.store(false, std::memory_order_relaxed);
    drain_after_.store(0, std::memory_order_relaxed);
  }

  std::size_t num_completed() const;
  std::size_t num_suspended() const;

  /// A drained job's parked state: the PR 5 checkpoint of its machine plus
  /// the retry/deadline bookkeeping needed to resume exactly where it
  /// stopped. Public so the executor can build one; the store itself is
  /// private (only Engine::run files it).
  struct Suspended {
    std::vector<u8> checkpoint;
    u32 attempt = 1;
    u32 slices = 0;
    u32 preemptions = 0;
    double attempt_secs = 0.0;  // deadline budget already consumed
  };

private:
  friend class Engine;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> drain_{false};
  std::atomic<std::size_t> drain_after_{0};

  mutable std::mutex mu_;
  std::unordered_map<u32, JobResult> completed_;
  std::unordered_map<u32, Suspended> suspended_;
};

/// Per-worker reusable machines: one cycle arena and one functional arena,
/// constructed on first use and reset in place for every subsequent job.
/// Also usable standalone (the soak harness's serial path and tests).
class WorkerMachines {
public:
  kernels::KernelRun run(const kernels::CompiledKernel& k, const Job& job);

  /// Machine handout for the resilient executor: ensure the machine exists
  /// and is freshly reset to (program, cfg) — i.e. indistinguishable from a
  /// newly constructed one.
  cpu::CycleSim& acquire_cycle(const sim::ProgramRef& program,
                               const TimingConfig& cfg);
  sim::FunctionalSim& acquire_functional(const sim::ProgramRef& program);

private:
  std::optional<cpu::CycleSim> cycle_;
  std::optional<sim::FunctionalSim> functional_;
};

/// Work-queue thread pool over a submitted job matrix.
class Engine {
public:
  Engine() = default;

  /// Register a compiled kernel; returns its index for Job::kernel.
  u32 add_kernel(kernels::CompiledKernel k);
  /// Compile + register in one step.
  u32 add_kernel(kernels::KernelSpec spec);

  const kernels::CompiledKernel& kernel(u32 i) const { return kernels_[i]; }
  std::size_t num_kernels() const { return kernels_.size(); }

  /// Append a job; returns its submission index (== index into run()'s
  /// result vector).
  u32 submit(Job job);
  const std::vector<Job>& jobs() const { return jobs_; }

  struct RunOptions {
    unsigned workers = 0;          // 0 = host hardware concurrency
    CampaignStats* stats = nullptr;
    RunControl* control = nullptr;  // cancellation/drain + resume store
    const ChaosPlan* chaos = nullptr;
  };

  /// Execute every submitted job on `workers` threads and return results in
  /// submission order. A job that throws is reported as a classified
  /// kHostException result (retried per its policy), never as an engine
  /// failure. May be called repeatedly; without a RunControl each call
  /// re-runs the whole matrix, with one it resumes whatever the control has
  /// not yet seen complete.
  std::vector<JobResult> run(const RunOptions& opts) const;
  std::vector<JobResult> run(unsigned workers = 0,
                             CampaignStats* stats = nullptr) const {
    RunOptions opts;
    opts.workers = workers;
    opts.stats = stats;
    return run(opts);
  }

private:
  std::vector<kernels::CompiledKernel> kernels_;
  std::vector<Job> jobs_;
};

/// The fault-soak derivation (SplitMix64-mixed, randomized-but-bounded
/// rates; see bench/soak_faults.cpp): shared by the soak harness and
/// majc_farm so both storm identical fault streams for a given base seed.
FaultConfig derive_soak_faults(u64 base_seed, u64 kernel_idx, u64 iteration);

/// Declarative description of a campaign matrix over an engine's registered
/// kernels. submit_matrix expands it in the one canonical order —
/// kernel-major, then iteration, then cycle before functional — which is
/// what makes two independently built campaigns (the majc_farm CLI and a
/// daemon-served request, say) byte-identical in majc-farm-v1 JSON: same
/// kernels + same MatrixSpec => same submission order => same output.
struct MatrixSpec {
  /// Fault-stream iteration tags, usually 0..seeds-1. One (cycle and/or
  /// functional) job is submitted per (kernel, iteration).
  std::vector<u64> iterations;
  u64 base_seed = 0;
  /// Derive per-job FaultConfig via derive_soak_faults(base_seed, kernel,
  /// iteration); false = clean timing sweep.
  bool faults = true;
  bool mode_cycle = true;
  bool mode_functional = false;
  sim::ExecBackend backend = sim::ExecBackend::kThreaded;
  JobPolicy policy;
};

/// Expand `m` over every kernel registered in `eng`, in the canonical
/// submission order described above.
void submit_matrix(Engine& eng, const MatrixSpec& m);

} // namespace majc::farm
