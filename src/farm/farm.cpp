#include "src/farm/farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace majc::farm {
namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ull;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double u01(u64& x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

} // namespace

FaultConfig derive_soak_faults(u64 base_seed, u64 kernel_idx, u64 iteration) {
  u64 s = base_seed ^ (kernel_idx * 0x9e3779b97f4a7c15ull) ^
          (iteration << 32);
  FaultConfig f;
  f.seed = splitmix64(s);
  f.dram_correctable_rate = u01(s) * 0.1;
  f.dram_uncorrectable_rate = u01(s) * 0.02;
  f.fill_parity_rate = u01(s) * 0.05;
  f.xbar_delay_rate = u01(s) * 0.1;
  f.xbar_delay_cycles = 1 + static_cast<u32>(splitmix64(s) % 16);
  f.xbar_drop_rate = u01(s) * 0.02;
  f.ecc_enabled = true;
  // Both recoverable machine-check policies get coverage; kFatal/kDeliver
  // would terminate handler-less kernels on the first double-bit hit.
  f.mc_policy = iteration % 2 == 0 ? MachineCheckPolicy::kRetry
                                   : MachineCheckPolicy::kPoison;
  return f;
}

kernels::KernelRun WorkerMachines::run(const kernels::CompiledKernel& k,
                                       const Job& job) {
  if (job.mode == SimMode::kFunctional) {
    if (!functional_) {
      functional_.emplace(k.program);
      return kernels::run_kernel_on(*functional_, k.spec);
    }
    return kernels::run_compiled_functional(k, *functional_);
  }
  if (!cycle_) {
    cycle_.emplace(k.program, job.cfg);
    return kernels::run_kernel_on(*cycle_, k.spec);
  }
  return kernels::run_compiled(k, job.cfg, *cycle_);
}

u32 Engine::add_kernel(kernels::CompiledKernel k) {
  kernels_.push_back(std::move(k));
  return static_cast<u32>(kernels_.size() - 1);
}

u32 Engine::add_kernel(kernels::KernelSpec spec) {
  return add_kernel(kernels::compile_kernel(std::move(spec)));
}

u32 Engine::submit(Job job) {
  jobs_.push_back(std::move(job));
  return static_cast<u32>(jobs_.size() - 1);
}

std::vector<JobResult> Engine::run(unsigned workers,
                                   CampaignStats* stats) const {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  const std::size_t n_jobs = jobs_.size();
  const unsigned n_workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n_jobs == 0 ? 1 : n_jobs));

  std::vector<JobResult> results(n_jobs);
  std::atomic<std::size_t> cursor{0};
  const auto t0 = Clock::now();

  auto worker_loop = [&](u32 wid) {
    WorkerMachines machines;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_jobs) break;
      const Job& job = jobs_[i];
      JobResult& out = results[i];
      out.worker = wid;
      const auto j0 = Clock::now();
      try {
        out.run = machines.run(kernels_[job.kernel], job);
      } catch (const std::exception& e) {
        // A job failure is a result, not an engine failure: report it in
        // submission order like any other outcome.
        out.run.valid = false;
        out.run.halted = false;
        out.run.message = e.what();
      }
      out.host_secs = secs_since(j0);
    }
  };

  if (n_workers <= 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (u32 w = 0; w < n_workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
  }

  if (stats != nullptr) {
    *stats = CampaignStats{};
    stats->workers = n_workers;
    stats->wall_secs = secs_since(t0);
    for (const JobResult& r : results) {
      stats->total_packets += r.run.packets;
      stats->total_instrs += r.run.instrs;
    }
    if (stats->wall_secs > 0) {
      stats->aggregate_pps =
          static_cast<double>(stats->total_packets) / stats->wall_secs;
      stats->aggregate_mips =
          static_cast<double>(stats->total_instrs) / stats->wall_secs / 1e6;
    }
  }
  return results;
}

} // namespace majc::farm
