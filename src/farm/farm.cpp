#include "src/farm/farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>

#include "src/support/checkpoint.h"

namespace majc::farm {
namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ull;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double u01(u64& x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

// ------------------------------------------------------------ chaos plan

// Decision tags keep the exception / kill / preempt streams independent.
constexpr u64 kChaosThrow = 0x9066c7a05;
constexpr u64 kChaosKill = 0xdead11e;
constexpr u64 kChaosPreempt = 0x94ee3;

/// Pure function of (plan seed, tag, job, attempt, slice): worker identity
/// and wall clock never enter, so the injection schedule is the same for
/// any --jobs value and any host load.
bool chaos_roll(const ChaosPlan& cp, u64 tag, u64 job, u64 attempt, u64 slice,
                double rate) {
  if (rate <= 0.0) return false;
  u64 s = cp.seed ^ (tag * 0x9e3779b97f4a7c15ull) ^
          (job * 0xbf58476d1ce4e5b9ull) ^ (attempt * 0x94d049bb133111ebull) ^
          (slice * 0x2545f4914f6cdd1dull);
  return u01(s) < rate;
}

// --------------------------------------------------------- classification

/// Classify a *concluded* guest run (exceptions are classified at the catch
/// site instead). Guest outcomes are deterministic, so everything here is
/// either success, deterministic-fatal, or a budget/deadline exhaustion.
FailureClass classify_guest(const kernels::KernelRun& run) {
  if (run.valid && run.halted) return FailureClass::kNone;
  switch (run.reason) {
    case TerminationReason::kHalted:  // halted but validate() rejected it
    case TerminationReason::kTrap:
      return FailureClass::kDeterministicFatal;
    case TerminationReason::kWatchdog:
    case TerminationReason::kPacketCap:
    case TerminationReason::kHostDeadline:
      return FailureClass::kDeadlineExceeded;
  }
  return FailureClass::kDeterministicFatal;
}

/// Failure signature for the identical-across-retries quarantine test.
struct FailSig {
  FailureClass cls = FailureClass::kNone;
  TerminationReason reason = TerminationReason::kHalted;
  bool valid = false;
  bool halted = false;
  u64 arch_digest = 0;
  std::string message;

  bool operator==(const FailSig& o) const {
    return cls == o.cls && reason == o.reason && valid == o.valid &&
           halted == o.halted && arch_digest == o.arch_digest &&
           message == o.message;
  }
};

FailSig signature_of(FailureClass cls, const kernels::KernelRun& run) {
  FailSig s;
  s.cls = cls;
  s.reason = run.reason;
  s.valid = run.valid;
  s.halted = run.halted;
  s.arch_digest = run.arch_digest;
  s.message = run.message;
  return s;
}

// ------------------------------------------------------- sliced execution

/// When a deadline is set but the caller did not pick a slice budget, slice
/// anyway — deadlines are only honored at slice boundaries, and slicing is
/// architecturally invisible (the slice-equivalence invariant).
constexpr u64 kImplicitDeadlineSlice = 65'536;

/// Thin adapters so one attempt loop drives both machines. run_to takes an
/// ABSOLUTE packet cap; reset() hands back a machine indistinguishable from
/// a newly constructed one.
struct CycleDriver {
  cpu::CycleSim& m;
  const kernels::CompiledKernel& k;
  const TimingConfig& cfg;

  cpu::CycleSim& machine() { return m; }
  u64 packets() const { return m.cpu().stats().packets; }
  cpu::CycleSim::Result run_to(u64 cap) { return m.run(cap); }
  void reset() { m.reset(k.program, cfg); }
  std::vector<u8> save() const { return ckpt::save_checkpoint(m); }
  void restore(const std::vector<u8>& b) { ckpt::restore_checkpoint(m, b); }
};

struct FunctionalDriver {
  sim::FunctionalSim& m;
  const kernels::CompiledKernel& k;
  sim::ExecBackend backend = sim::ExecBackend::kThreaded;

  sim::FunctionalSim& machine() { return m; }
  u64 packets() const { return m.packets_run(); }
  sim::RunResult run_to(u64 cap) { return m.run(cap - m.packets_run()); }
  void reset() {
    m.reset(k.program);
    // reset() restores the default backend; re-apply the job's choice (a
    // restore() that may follow only loads guest state — the backend is a
    // host-side knob, deliberately outside the checkpoint format).
    m.set_backend(backend);
  }
  std::vector<u8> save() const { return ckpt::save_checkpoint(m); }
  void restore(const std::vector<u8>& b) { ckpt::restore_checkpoint(m, b); }
};

enum class AttemptStatus : u8 {
  kConcluded,  // the attempt produced a guest outcome (out.run filled)
  kKilled,     // chaos deadline kill: attempt discarded, retry
  kSuspended,  // drain: state parked in `suspended_out`
  kAbandoned,  // cancel: nothing saved
};

template <typename Driver>
AttemptStatus run_attempt(Driver d, const kernels::KernelSpec& spec,
                          const Job& job, u32 job_index,
                          const Engine::RunOptions& opts, u32 attempt,
                          const RunControl::Suspended* resume, JobResult& out,
                          RunControl::Suspended& suspended_out,
                          FailureClass& fail_out) {
  const JobPolicy& pol = job.policy;
  const u64 budget = pol.max_packets != 0 ? pol.max_packets : spec.max_packets;
  const u64 slice = pol.slice_packets != 0
                        ? pol.slice_packets
                        : (pol.host_deadline_secs > 0.0 ? kImplicitDeadlineSlice
                                                        : 0);
  u32 preemptions = resume != nullptr ? resume->preemptions : 0;
  double prior_secs = resume != nullptr ? resume->attempt_secs : 0.0;
  u32 slice_no = resume != nullptr ? resume->slices : 0;

  d.reset();
  if (resume != nullptr) {
    d.restore(resume->checkpoint);
  } else {
    kernels::setup_kernel(d.machine(), spec);
  }

  const auto t0 = Clock::now();
  for (;;) {
    const u64 done = d.packets();
    const u64 cap = slice != 0 ? std::min(done + slice, budget) : budget;
    const auto res = d.run_to(cap);
    ++slice_no;
    ++out.slices;
    if (res.reason != TerminationReason::kPacketCap || d.packets() >= budget) {
      out.run = kernels::finalize_kernel(d.machine(), spec, res);
      fail_out = classify_guest(out.run);
      return AttemptStatus::kConcluded;
    }

    // ---- slice boundary: the job is alive but unfinished ----
    RunControl* ctl = opts.control;
    if (ctl != nullptr && ctl->cancel_requested()) {
      return AttemptStatus::kAbandoned;
    }
    if (ctl != nullptr && ctl->drain_requested()) {
      suspended_out.checkpoint = d.save();
      suspended_out.attempt = attempt;
      suspended_out.slices = slice_no;
      suspended_out.preemptions = preemptions;
      suspended_out.attempt_secs = prior_secs + secs_since(t0);
      return AttemptStatus::kSuspended;
    }
    if (pol.host_deadline_secs > 0.0 &&
        prior_secs + secs_since(t0) >= pol.host_deadline_secs) {
      // Structured conversion of a hung/over-budget job: deterministic
      // message, zeroed counters (the observed packet position at kill time
      // is wall-clock dependent and must not reach the campaign JSON).
      char msg[64];
      std::snprintf(msg, sizeof msg, "host deadline exceeded (%.3fs)",
                    pol.host_deadline_secs);
      out.run = kernels::KernelRun{};
      out.run.valid = false;
      out.run.halted = false;
      out.run.reason = TerminationReason::kHostDeadline;
      out.run.message = msg;
      fail_out = FailureClass::kDeadlineExceeded;
      return AttemptStatus::kConcluded;
    }
    const ChaosPlan* cp = opts.chaos;
    if (cp != nullptr && attempt == 1 &&
        chaos_roll(*cp, kChaosKill, job_index, attempt, slice_no,
                   cp->deadline_kill_rate)) {
      return AttemptStatus::kKilled;
    }
    if (cp != nullptr && preemptions < cp->max_preemptions_per_job &&
        chaos_roll(*cp, kChaosPreempt, job_index, attempt, slice_no,
                   cp->preempt_rate)) {
      // Forced preemption: checkpoint, surrender the machine (reset wipes
      // it, as if another job had used the worker), restore, continue. The
      // resumed run is byte-identical by the PR 5 checkpoint guarantee.
      const std::vector<u8> bytes = d.save();
      d.reset();
      d.restore(bytes);
      ++preemptions;
      ++out.preemptions;
    }
  }
}

enum class JobStatus : u8 { kFinished, kSuspended, kAbandoned };

/// The per-job resilience driver: bounded retry with deterministic backoff
/// around run_attempt, identical-failure quarantine, final classification.
JobStatus run_resilient(const kernels::CompiledKernel& k, const Job& job,
                        u32 job_index, WorkerMachines& machines,
                        const Engine::RunOptions& opts,
                        const std::optional<RunControl::Suspended>& resume,
                        JobResult& out,
                        RunControl::Suspended& suspended_out) {
  const JobPolicy& pol = job.policy;
  u32 attempt = resume.has_value() ? resume->attempt : 1;
  bool resuming = resume.has_value();
  std::optional<FailSig> prev_sig;

  for (;;) {
    out.attempts = attempt;
    FailureClass fail = FailureClass::kNone;
    AttemptStatus st;
    try {
      if (opts.chaos != nullptr && attempt == 1 && !resuming &&
          chaos_roll(*opts.chaos, kChaosThrow, job_index, attempt, 0,
                     opts.chaos->exception_rate)) {
        throw std::runtime_error("chaos: injected worker exception");
      }
      const RunControl::Suspended* rs = resuming ? &*resume : nullptr;
      if (job.mode == SimMode::kCycle) {
        CycleDriver d{machines.acquire_cycle(k.program, job.cfg), k, job.cfg};
        st = run_attempt(d, k.spec, job, job_index, opts, attempt, rs, out,
                         suspended_out, fail);
      } else {
        FunctionalDriver d{machines.acquire_functional(k.program), k,
                           job.backend};
        st = run_attempt(d, k.spec, job, job_index, opts, attempt, rs, out,
                         suspended_out, fail);
      }
    } catch (const std::exception& e) {
      // A job failure is a result, not an engine failure: classify it and
      // let the retry policy decide.
      out.run = kernels::KernelRun{};
      out.run.valid = false;
      out.run.halted = false;
      out.run.message = e.what();
      fail = FailureClass::kHostException;
      st = AttemptStatus::kConcluded;
    }
    resuming = false;

    if (st == AttemptStatus::kSuspended) return JobStatus::kSuspended;
    if (st == AttemptStatus::kAbandoned) return JobStatus::kAbandoned;
    if (st == AttemptStatus::kKilled) fail = FailureClass::kTransientRetryable;

    if (fail == FailureClass::kNone) {
      out.failure = FailureClass::kNone;
      out.quarantined = false;
      return JobStatus::kFinished;
    }

    // Retry only failures a re-run could plausibly change. Guest outcomes
    // are deterministic: a trap, a validate mismatch, a watchdog livelock
    // or a packet-cap overrun replays identically, so those quarantine
    // immediately instead of burning attempts.
    const bool retryable = fail == FailureClass::kHostException ||
                           fail == FailureClass::kTransientRetryable;
    const FailSig sig = signature_of(fail, out.run);
    const bool identical_repeat = prev_sig.has_value() && *prev_sig == sig;
    if (!retryable || identical_repeat || attempt >= pol.max_attempts) {
      out.failure = fail;
      out.quarantined =
          identical_repeat || fail == FailureClass::kDeterministicFatal ||
          (fail == FailureClass::kDeadlineExceeded &&
           out.run.reason != TerminationReason::kHostDeadline);
      return JobStatus::kFinished;
    }
    prev_sig = sig;
    ++attempt;
    if (const u64 us = backoff_us(pol, job_index, attempt); us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
}

} // namespace

u64 backoff_us(const JobPolicy& p, u64 job_index, u32 attempt) {
  if (p.backoff_base_us == 0 || attempt < 2) return 0;
  const u32 k = std::min<u32>(attempt - 2, 20);
  const u64 d = std::min(p.backoff_base_us << k, p.backoff_cap_us);
  // Deterministic jitter in [d/2, d]: seed-advancing, never wall-clock.
  u64 s = p.backoff_seed ^ (job_index * 0x9e3779b97f4a7c15ull) ^ attempt;
  return d / 2 + (d >= 2 ? splitmix64(s) % (d / 2 + 1) : 0);
}

std::size_t RunControl::num_completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return completed_.size();
}

std::size_t RunControl::num_suspended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return suspended_.size();
}

FaultConfig derive_soak_faults(u64 base_seed, u64 kernel_idx, u64 iteration) {
  u64 s = base_seed ^ (kernel_idx * 0x9e3779b97f4a7c15ull) ^
          (iteration << 32);
  FaultConfig f;
  f.seed = splitmix64(s);
  f.dram_correctable_rate = u01(s) * 0.1;
  f.dram_uncorrectable_rate = u01(s) * 0.02;
  f.fill_parity_rate = u01(s) * 0.05;
  f.xbar_delay_rate = u01(s) * 0.1;
  f.xbar_delay_cycles = 1 + static_cast<u32>(splitmix64(s) % 16);
  f.xbar_drop_rate = u01(s) * 0.02;
  f.ecc_enabled = true;
  // Both recoverable machine-check policies get coverage; kFatal/kDeliver
  // would terminate handler-less kernels on the first double-bit hit.
  f.mc_policy = iteration % 2 == 0 ? MachineCheckPolicy::kRetry
                                   : MachineCheckPolicy::kPoison;
  return f;
}

void submit_matrix(Engine& eng, const MatrixSpec& m) {
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    for (u64 it : m.iterations) {
      Job job;
      job.kernel = ki;
      job.iteration = it;
      job.policy = m.policy;
      job.backend = m.backend;
      if (m.faults) {
        job.cfg.faults = derive_soak_faults(m.base_seed, ki, it);
      }
      if (m.mode_cycle) {
        job.mode = SimMode::kCycle;
        eng.submit(job);
      }
      if (m.mode_functional) {
        job.mode = SimMode::kFunctional;
        eng.submit(job);
      }
    }
  }
}

kernels::KernelRun WorkerMachines::run(const kernels::CompiledKernel& k,
                                       const Job& job) {
  if (job.mode == SimMode::kFunctional) {
    sim::FunctionalSim& m = acquire_functional(k.program);
    m.set_backend(job.backend);
    return kernels::run_kernel_on(m, k.spec);
  }
  if (!cycle_) {
    cycle_.emplace(k.program, job.cfg);
    return kernels::run_kernel_on(*cycle_, k.spec);
  }
  return kernels::run_compiled(k, job.cfg, *cycle_);
}

cpu::CycleSim& WorkerMachines::acquire_cycle(const sim::ProgramRef& program,
                                             const TimingConfig& cfg) {
  if (!cycle_) {
    cycle_.emplace(program, cfg);
  } else {
    cycle_->reset(program, cfg);
  }
  return *cycle_;
}

sim::FunctionalSim& WorkerMachines::acquire_functional(
    const sim::ProgramRef& program) {
  if (!functional_) {
    functional_.emplace(program);
  } else {
    functional_->reset(program);
  }
  return *functional_;
}

u32 Engine::add_kernel(kernels::CompiledKernel k) {
  kernels_.push_back(std::move(k));
  return static_cast<u32>(kernels_.size() - 1);
}

u32 Engine::add_kernel(kernels::KernelSpec spec) {
  return add_kernel(kernels::compile_kernel(std::move(spec)));
}

u32 Engine::submit(Job job) {
  jobs_.push_back(std::move(job));
  return static_cast<u32>(jobs_.size() - 1);
}

std::vector<JobResult> Engine::run(const RunOptions& opts) const {
  unsigned workers = opts.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  const std::size_t n_jobs = jobs_.size();
  const unsigned n_workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n_jobs == 0 ? 1 : n_jobs));
  RunControl* ctl = opts.control;

  std::vector<JobResult> results(n_jobs);
  // `done` flips to true on completion (or cache hit); everything a
  // drain/cancel left untouched stays false.
  for (JobResult& r : results) r.done = false;
  std::atomic<std::size_t> cursor{0};
  const auto t0 = Clock::now();

  auto worker_loop = [&](u32 wid) {
    WorkerMachines machines;
    for (;;) {
      if (ctl != nullptr &&
          (ctl->cancel_requested() || ctl->drain_requested())) {
        break;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_jobs) break;
      const Job& job = jobs_[i];
      JobResult& out = results[i];

      std::optional<RunControl::Suspended> resume;
      if (ctl != nullptr) {
        std::lock_guard<std::mutex> lk(ctl->mu_);
        if (auto it = ctl->completed_.find(static_cast<u32>(i));
            it != ctl->completed_.end()) {
          out = it->second;
          continue;
        }
        if (auto it = ctl->suspended_.find(static_cast<u32>(i));
            it != ctl->suspended_.end()) {
          resume = std::move(it->second);
          ctl->suspended_.erase(it);
        }
      }

      out.worker = wid;
      const auto j0 = Clock::now();
      RunControl::Suspended suspended;
      const JobStatus st =
          run_resilient(kernels_[job.kernel], job, static_cast<u32>(i),
                        machines, opts, resume, out, suspended);
      out.host_secs = secs_since(j0);
      if (st == JobStatus::kFinished) {
        out.done = true;
        if (ctl != nullptr) {
          std::lock_guard<std::mutex> lk(ctl->mu_);
          ctl->completed_.emplace(static_cast<u32>(i), out);
          const std::size_t after =
              ctl->drain_after_.load(std::memory_order_relaxed);
          if (after != 0 && ctl->completed_.size() >= after) {
            ctl->drain_.store(true, std::memory_order_relaxed);
          }
        }
      } else if (st == JobStatus::kSuspended) {
        std::lock_guard<std::mutex> lk(ctl->mu_);
        ctl->suspended_.insert_or_assign(static_cast<u32>(i),
                                         std::move(suspended));
      }
      // kAbandoned: cancel drops the attempt on the floor; the job will
      // re-run from scratch on the next call.
    }
  };

  if (n_workers <= 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (u32 w = 0; w < n_workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
  }

  if (opts.stats != nullptr) {
    CampaignStats& stats = *opts.stats;
    stats = CampaignStats{};
    stats.workers = n_workers;
    stats.wall_secs = secs_since(t0);
    for (const JobResult& r : results) {
      stats.total_packets += r.run.packets;
      stats.total_instrs += r.run.instrs;
      if (!r.done) {
        ++stats.jobs_suspended;
        continue;
      }
      stats.total_attempts += r.attempts;
      if (r.attempts > 1) ++stats.jobs_retried;
      if (r.quarantined) ++stats.jobs_quarantined;
      stats.forced_preemptions += r.preemptions;
    }
    if (stats.wall_secs > 0) {
      stats.aggregate_pps =
          static_cast<double>(stats.total_packets) / stats.wall_secs;
      stats.aggregate_mips =
          static_cast<double>(stats.total_instrs) / stats.wall_secs / 1e6;
    }
  }
  return results;
}

} // namespace majc::farm
