#include "src/soc/dte.h"

#include <algorithm>
#include <vector>

namespace majc::soc {

void Dte::flush_range(Addr base, u32 bytes, bool writeback) {
  for (Addr line = base & ~Addr{kLineBytes - 1}; line < base + bytes;
       line += kLineBytes) {
    const bool was_dirty = ms_.dcache().invalidate(line);
    if (was_dirty && writeback) {
      // The dirty line's data already lives in the functional memory (the
      // model writes through functionally); only the bandwidth is charged.
      ms_.dram().request(line, kLineBytes, 0);
    }
  }
}

Cycle Dte::submit(const Descriptor& d, Cycle now) {
  // Functional copy.
  std::vector<u8> buf(d.bytes);
  mem_.read(d.src, buf);
  mem_.write(d.dst, buf);

  // Coherence: the CPUs must not see stale cached destination data, and the
  // engine must see committed source data.
  flush_range(d.src, d.bytes, /*writeback=*/true);
  flush_range(d.dst, d.bytes, /*writeback=*/false);

  // Timing: each line is read from DRAM through the crossbar into the DTE
  // and written back out. Chunks pipeline: reads issue back-to-back (the
  // DRDRAM channel and banks pace themselves) and each write follows its
  // own read, so a big copy sustains the full channel rate split between
  // the read and write streams.
  Cycle done = now;
  for (u32 off = 0; off < d.bytes; off += kLineBytes) {
    const u32 chunk = std::min(kLineBytes, d.bytes - off);
    const Cycle src_ready = ms_.dram().request(d.src + off, chunk, now);
    const Cycle read_done =
        ms_.xbar().transfer(mem::Port::kMem, d.via, chunk, src_ready);
    const Cycle at_mem =
        ms_.xbar().transfer(d.via, mem::Port::kMem, chunk, read_done);
    done = std::max(done, ms_.dram().request(d.dst + off, chunk, at_mem));
  }
  bytes_moved_ += d.bytes;
  ++descriptors_;
  if (observer_) observer_(d, now, done);
  return done;
}

Cycle Dte::submit_chain(const std::vector<Descriptor>& chain, Cycle now) {
  Cycle t = now;
  for (const Descriptor& d : chain) t = submit(d, t);
  return t;
}

} // namespace majc::soc
