// External interface models: North/South UPA, PCI, and the NUPA input FIFO.
//
// Fig. 1 of the paper: the chip exposes a 64-bit/250 MHz North UPA (with a
// 4 KB input FIFO that both CPUs can read), a 64-bit/250 MHz South UPA, and
// a 32-bit/66 MHz PCI interface, all meeting the CPUs and the DRDRAM
// controller at the central crossbar. Peak rates: 2.0 GB/s per UPA port,
// 264 MB/s PCI, 1.6 GB/s DRDRAM — aggregate I/O > 4.8 GB/s.
//
// The port model carries real bytes (so device-driven data lands in
// simulated memory) and accounts time through the crossbar and DRAM models,
// which is what the Fig. 1 bandwidth benchmark measures.
#pragma once

#include <deque>

#include "src/mem/memsys.h"
#include "src/sim/memory.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::soc {

/// Bounded byte FIFO with timing: the NUPA input buffer (4 KB).
class Fifo {
public:
  explicit Fifo(u32 capacity) : capacity_(capacity) {}

  u32 capacity() const { return capacity_; }
  u32 occupancy() const { return static_cast<u32>(bytes_.size()); }
  bool can_push(u32 n) const { return occupancy() + n <= capacity_; }

  void push(std::span<const u8> data);
  /// Pop up to `n` bytes into `out`; returns bytes actually popped.
  u32 pop(std::span<u8> out);

  u64 total_pushed() const { return pushed_; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  u32 capacity_;
  std::deque<u8> bytes_;
  u64 pushed_ = 0;
};

/// A DMA-capable external port attached to one crossbar port.
class IoPort {
public:
  IoPort(mem::MemorySystem& ms, sim::MemoryBus& mem, mem::Port port)
      : ms_(ms), mem_(mem), port_(port) {}

  /// Stream `data` from the external device into memory at `dst`;
  /// returns the completion cycle. Cache lines covering the destination are
  /// invalidated (device writes go under the cache).
  Cycle dma_in(Addr dst, std::span<const u8> data, Cycle now);

  /// Stream `bytes` from memory at `src` out of the chip; returns the
  /// completion cycle and fills `out` if non-empty.
  Cycle dma_out(Addr src, std::span<u8> out, Cycle now);

  /// Bandwidth accounting only: move `bytes` through the port to/from
  /// memory without data (used for saturation benchmarks).
  Cycle stream(u32 bytes, bool inbound, Cycle now);

  mem::Port port() const { return port_; }
  u64 bytes_in() const { return bytes_in_; }
  u64 bytes_out() const { return bytes_out_; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  Cycle move(Addr mem_addr, u32 bytes, bool inbound, Cycle now);

  mem::MemorySystem& ms_;
  sim::MemoryBus& mem_;
  mem::Port port_;
  u64 bytes_in_ = 0;
  u64 bytes_out_ = 0;
};

/// The North UPA port: an IoPort plus the 4 KB input FIFO that the CPUs
/// (and the GPP) consume from.
class NupaPort : public IoPort {
public:
  NupaPort(mem::MemorySystem& ms, sim::MemoryBus& mem)
      : IoPort(ms, mem, mem::Port::kNupa),
        fifo_(ms.config().nupa_fifo_bytes),
        line_rate_(ms.config().upa_bytes_per_cycle) {}

  Fifo& fifo() { return fifo_; }
  const Fifo& fifo() const { return fifo_; }

  /// External producer pushes into the FIFO; returns the cycle the last
  /// byte is accepted (backpressure when full is the caller's concern via
  /// can_push()).
  Cycle push_fifo(std::span<const u8> data, Cycle now);

private:
  Fifo fifo_;
  double line_rate_;
};

} // namespace majc::soc
