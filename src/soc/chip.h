// Majc5200: the full system-on-chip (Fig. 1).
//
// Two 4-issue VLIW CPUs sharing the dual-ported D$ and common external
// interfaces, a DRDRAM memory controller, PCI, North/South UPA, the Data
// Transfer Engine, and the crossbar that connects them. Both CPUs run the
// same loaded image; programs dispatch per-CPU work with GETCPU (or the
// host sets each CPU's pc to a different entry symbol).
//
// The two CPUs advance in cycle order at packet granularity: each step
// executes the packet of whichever CPU's next issue cycle is earlier, so
// accesses to the shared D$, DRDRAM and crossbar interleave in global time.
// Shared-memory interactions (atomics through the shared D$) therefore
// linearize in cycle order — the communication model the paper highlights.
#pragma once

#include <array>
#include <memory>

#include "src/cpu/cycle_cpu.h"
#include "src/soc/dte.h"
#include "src/soc/ports.h"

namespace majc::soc {

class Majc5200 {
public:
  static constexpr u32 kNumCpus = mem::kNumCpus;

  explicit Majc5200(masm::Image image, const TimingConfig& cfg = {},
                    std::size_t mem_bytes = sim::FlatMemory::kDefaultBytes);

  struct Result {
    Cycle cycles = 0;  // global time when the last CPU halted
    std::array<u64, kNumCpus> packets{};
    std::array<u64, kNumCpus> instrs{};
    bool all_halted = false;
    TerminationReason reason = TerminationReason::kPacketCap;
    Trap trap;         // valid (code != kNone) only when reason == kTrap
    std::string dump;  // diagnostic report for trap / watchdog terminations
  };

  /// Run both CPUs to completion (each capped at `max_packets_per_cpu`).
  Result run(u64 max_packets_per_cpu = 100'000'000);

  /// Point one CPU at a different entry symbol before running.
  void set_entry(u32 cpu, const std::string& symbol);

  cpu::CycleCpu& cpu(u32 i) { return *cpus_[i]; }
  const cpu::CycleCpu& cpu(u32 i) const { return *cpus_[i]; }
  mem::MemorySystem& memsys() { return ms_; }
  const mem::MemorySystem& memsys() const { return ms_; }
  sim::FlatMemory& memory() { return mem_; }
  const sim::FlatMemory& memory() const { return mem_; }
  mem::EccMemory& ecc() { return eccmem_; }
  const mem::EccMemory& ecc() const { return eccmem_; }
  const sim::Program& program() const { return prog_; }
  Dte& dte() { return dte_; }
  NupaPort& nupa() { return nupa_; }
  IoPort& supa() { return supa_; }
  IoPort& pci() { return pci_; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  /// Multi-line state dump of both CPUs (pc, cycle, progress, packet counts)
  /// for trap / watchdog reports.
  std::string state_dump() const;

  sim::Program prog_;
  sim::FlatMemory mem_;
  mem::MemorySystem ms_;
  mem::EccMemory eccmem_;  // CPU-side ECC view of DRDRAM (DMA agents bypass it)
  std::array<std::unique_ptr<cpu::CycleCpu>, kNumCpus> cpus_;
  Dte dte_;
  NupaPort nupa_;
  IoPort supa_;
  IoPort pci_;
};

} // namespace majc::soc
