#include "src/soc/ports.h"

#include <algorithm>

#include "src/support/error.h"

namespace majc::soc {

void Fifo::push(std::span<const u8> data) {
  require(can_push(static_cast<u32>(data.size())), "NUPA FIFO overflow");
  bytes_.insert(bytes_.end(), data.begin(), data.end());
  pushed_ += data.size();
}

u32 Fifo::pop(std::span<u8> out) {
  const u32 n = std::min<u32>(static_cast<u32>(out.size()), occupancy());
  for (u32 i = 0; i < n; ++i) {
    out[i] = bytes_.front();
    bytes_.pop_front();
  }
  return n;
}

Cycle IoPort::move(Addr mem_addr, u32 bytes, bool inbound, Cycle now) {
  // Chunk at cache-line granularity through the crossbar to the memory
  // controller. Chunks pipeline: the crossbar port and the DRDRAM channel
  // each pace themselves through their own occupancy clocks, so sustained
  // rate converges to min(port bandwidth, 1.6 GB/s) instead of serializing
  // a full latency round trip per chunk.
  Cycle done = now;
  for (u32 off = 0; off < bytes; off += kLineBytes) {
    const u32 chunk = std::min(kLineBytes, bytes - off);
    if (inbound) {
      const Cycle at_mem =
          ms_.xbar().transfer(port_, mem::Port::kMem, chunk, now);
      done = std::max(done, ms_.dram().request(mem_addr + off, chunk, at_mem));
    } else {
      const Cycle from_mem = ms_.dram().request(mem_addr + off, chunk, now);
      done = std::max(done,
                      ms_.xbar().transfer(mem::Port::kMem, port_, chunk,
                                          from_mem));
    }
  }
  return done;
}

Cycle IoPort::dma_in(Addr dst, std::span<const u8> data, Cycle now) {
  mem_.write(dst, data);
  // Device writes go straight to DRAM; stale cached copies must vanish.
  for (Addr line = dst & ~Addr{kLineBytes - 1}; line < dst + data.size();
       line += kLineBytes) {
    ms_.dcache().invalidate(line);
  }
  bytes_in_ += data.size();
  return move(dst, static_cast<u32>(data.size()), /*inbound=*/true, now);
}

Cycle IoPort::dma_out(Addr src, std::span<u8> out, Cycle now) {
  if (!out.empty()) mem_.read(src, out);
  bytes_out_ += out.size();
  return move(src, static_cast<u32>(out.size()), /*inbound=*/false, now);
}

Cycle IoPort::stream(u32 bytes, bool inbound, Cycle now) {
  (inbound ? bytes_in_ : bytes_out_) += bytes;
  return move(/*mem_addr=*/0, bytes, inbound, now);
}

Cycle NupaPort::push_fifo(std::span<const u8> data, Cycle now) {
  fifo_.push(data);
  // FIFO fill runs at the UPA line rate but does not cross to memory.
  return now + static_cast<Cycle>(static_cast<double>(data.size()) / line_rate_) + 1;
}

} // namespace majc::soc
