// Data Transfer Engine: the on-chip DMA engine of MAJC-5200.
//
// "An on-chip Data Transfer Engine (DTE) provides DMA capabilities amongst
// these various memory and I/O devices, with the bus interface unit acting
// as a central crossbar" (paper §3.1). The model executes descriptor-based
// copies: data moves functionally through the MemoryBus and time accrues on
// the crossbar ports and the DRDRAM channel, so DTE traffic visibly steals
// bandwidth from CPU misses in the benches.
#pragma once

#include <functional>
#include <vector>

#include "src/mem/memsys.h"
#include "src/sim/memory.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::soc {

class Dte {
public:
  /// One DMA descriptor: copy `bytes` from `src` to `dst` (both in the
  /// physical address space). `via` names the crossbar port the transfer is
  /// attributed to (kDte for plain memory-to-memory copies).
  struct Descriptor {
    Addr src = 0;
    Addr dst = 0;
    u32 bytes = 0;
    mem::Port via = mem::Port::kDte;
  };

  Dte(mem::MemorySystem& ms, sim::MemoryBus& mem) : ms_(ms), mem_(mem) {}

  /// Execute a descriptor beginning no earlier than `now`; returns the
  /// completion cycle. Cache lines covering both ranges are invalidated
  /// (dirty source lines are written back first so the copy sees fresh
  /// data).
  Cycle submit(const Descriptor& d, Cycle now);

  /// Convenience: chain several descriptors back-to-back.
  Cycle submit_chain(const std::vector<Descriptor>& chain, Cycle now);

  u64 bytes_moved() const { return bytes_moved_; }
  u64 descriptors_run() const { return descriptors_; }

  /// Install a per-descriptor observer (start/completion cycles) for the
  /// trace layer; empty function disables. Called once per submit().
  void set_observer(
      std::function<void(const Descriptor&, Cycle start, Cycle done)> fn) {
    observer_ = std::move(fn);
  }

  void save(ckpt::Writer& w) const;   // defined in support/checkpoint.cpp
  void restore(ckpt::Reader& r);

private:
  void flush_range(Addr base, u32 bytes, bool writeback);

  mem::MemorySystem& ms_;
  sim::MemoryBus& mem_;
  u64 bytes_moved_ = 0;
  u64 descriptors_ = 0;
  std::function<void(const Descriptor&, Cycle, Cycle)> observer_;
};

} // namespace majc::soc
