// Chip-wide timing configuration.
//
// Values stated by the paper are defaults here; every knob is variable so
// bench_ablation can quantify each design choice (bypass network, dual-ported
// D$, gshare prediction, non-blocking LSU, prefetch). DESIGN.md §4 records
// the provenance of each default.
#pragma once

#include "src/support/fault.h"
#include "src/support/types.h"

namespace majc {

struct TimingConfig {
  // ---- instruction supply ----
  u32 icache_bytes = 16 * 1024;  // per CPU, 2-way (paper §3.1)
  u32 icache_ways = 2;
  bool perfect_icache = false;

  // ---- data cache (shared, dual ported, 4-way, 16 KB; paper §3.1) ----
  u32 dcache_bytes = 16 * 1024;
  u32 dcache_ways = 4;
  bool dcache_dual_ported = true;   // ablation: false = 1 port, CPUs contend
  bool perfect_dcache = false;      // "without memory effects" mode (Table 3)
  u32 line_bytes = kLineBytes;
  u32 load_to_use = 2;              // D$ hit load-to-use (paper §3.2)

  // ---- LSU (paper §3.2) ----
  u32 load_buffers = 5;
  u32 store_buffers = 8;
  u32 mshrs = 4;                    // max outstanding cache misses
  bool nonblocking_loads = true;    // ablation: false = blocking on miss
  bool prefetch_enabled = true;

  // ---- DRDRAM main memory (paper §3.1: 1.6 GB/s peak) ----
  u32 dram_latency = 24;            // row-activate access latency (~48 ns)
  u32 dram_page_hit_latency = 4;    // column access on an open 2 KB page
  u32 dram_banks = 8;
  // 1.6 GB/s at 500 MHz = 3.2 bytes per CPU cycle on the Rambus channel.
  double dram_bytes_per_cycle = 3.2;

  // ---- crossbar / bus interface unit ----
  u32 crossbar_hop = 2;             // cycles added per transfer through the BIU

  // ---- branch prediction (paper Fig. 2: gshare, 4096 entries, 12 bits) ----
  bool bpred_enabled = true;        // ablation: false = static not-taken
  u32 bpred_entries = 4096;
  u32 bpred_history_bits = 12;
  u32 mispredict_penalty = 4;       // front-end refill: fetch/align/decode/read
  u32 jump_penalty = 4;             // indirect jmpl redirect

  // ---- vertical microthreading (MAJC §2; extension, off for the paper's
  //      single-thread tables) ----
  u32 hw_threads = 1;            // hardware contexts per CPU (1 = off)
  u32 mt_switch_threshold = 8;   // stall (cycles) that triggers a switch
  u32 mt_switch_penalty = 2;     // "rapid, low overhead context switching"

  // ---- bypass network (paper §3.2) ----
  bool full_bypass = true;          // ablation: false = all cross-FU via WB
  u32 wb_delay = 2;                 // extra cycles for cross-FU via write-back

  // ---- external ports (paper §3.1 / Fig. 1) ----
  double pci_bytes_per_cycle = 0.528;   // 264 MB/s at 500 MHz
  double upa_bytes_per_cycle = 4.0;     // 2.0 GB/s each for N/S UPA
  u32 nupa_fifo_bytes = 4 * 1024;       // NUPA input FIFO readable by CPUs

  // ---- RAS: traps, fault injection, degradation, watchdog ----
  // Raise a kDivideByZero trap instead of the default total-divide
  // semantics (div/0 = 0); off by default to match the paper-era contract.
  bool trap_div_zero = false;
  // Cycles to redirect into the trap handler when a trap is delivered to a
  // guest SETTVEC vector (front-end refill through the T stage; mirrors the
  // mispredict/jump redirect cost plus pipeline drain).
  u32 trap_entry_penalty = 6;
  // Cache ways taken out of service (a "failed" way degrades capacity
  // instead of crashing); clamped to ways - 1.
  u32 dcache_disabled_ways = 0;
  u32 icache_disabled_ways = 0;
  // Run watchdog: terminate when no CPU has made externally visible
  // progress (store, atomic, console trap, or halt) for this many cycles.
  // 0 disables. Pure-read/compute stretches longer than this are treated
  // as livelock, so keep it generous.
  u64 watchdog_cycles = 10'000'000;
  // Seeded deterministic fault injection (inert with all rates at 0).
  FaultConfig faults;
};

} // namespace majc
