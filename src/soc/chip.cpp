#include "src/soc/chip.h"

#include <algorithm>

namespace majc::soc {

Majc5200::Majc5200(masm::Image image, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : prog_(std::move(image)),
      mem_(mem_bytes),
      ms_(cfg),
      dte_(ms_, mem_),
      nupa_(ms_, mem_),
      supa_(ms_, mem_, mem::Port::kSupa),
      pci_(ms_, mem_, mem::Port::kPci) {
  sim::load_image(prog_.image(), mem_);
  for (u32 i = 0; i < kNumCpus; ++i) {
    cpus_[i] = std::make_unique<cpu::CycleCpu>(prog_, mem_, ms_, i);
    // Distinct stacks: CPU0 at the top of memory, CPU1 64 KB below.
    cpus_[i]->state().regs[2] =
        static_cast<u32>(mem_.size() - 64 - i * (64u << 10));
  }
}

void Majc5200::set_entry(u32 cpu, const std::string& symbol) {
  cpus_[cpu]->state().pc = prog_.image().symbol(symbol);
}

Majc5200::Result Majc5200::run(u64 max_packets_per_cpu) {
  Result res;
  while (true) {
    // Advance the CPU whose next packet issues earliest in global time.
    cpu::CycleCpu* next = nullptr;
    for (auto& c : cpus_) {
      if (c->halted() || c->stats().packets >= max_packets_per_cpu) continue;
      if (next == nullptr || c->now() < next->now()) next = c.get();
    }
    if (next == nullptr) break;
    next->step();
  }
  res.all_halted = true;
  for (u32 i = 0; i < kNumCpus; ++i) {
    res.packets[i] = cpus_[i]->stats().packets;
    res.instrs[i] = cpus_[i]->stats().instrs;
    res.cycles = std::max(res.cycles, cpus_[i]->now());
    res.all_halted = res.all_halted && cpus_[i]->halted();
  }
  return res;
}

} // namespace majc::soc
