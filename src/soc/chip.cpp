#include "src/soc/chip.h"

#include <algorithm>
#include <sstream>

namespace majc::soc {

Majc5200::Majc5200(masm::Image image, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : prog_(std::move(image)),
      mem_(mem_bytes),
      ms_(cfg),
      eccmem_(mem_, ms_.fault_plan()),
      dte_(ms_, mem_),
      nupa_(ms_, mem_),
      supa_(ms_, mem_, mem::Port::kSupa),
      pci_(ms_, mem_, mem::Port::kPci) {
  eccmem_.set_poison_hook([&ms = ms_](Addr line) { ms.poison_line(line); });
  sim::load_image(prog_.image(), mem_);
  for (u32 i = 0; i < kNumCpus; ++i) {
    cpus_[i] = std::make_unique<cpu::CycleCpu>(prog_, eccmem_, ms_, i);
    // Distinct stacks: CPU0 at the top of memory, CPU1 64 KB below.
    cpus_[i]->state().regs[2] =
        static_cast<u32>(mem_.size() - 64 - i * (64u << 10));
  }
}

void Majc5200::set_entry(u32 cpu, const std::string& symbol) {
  cpus_[cpu]->state().pc = prog_.image().symbol(symbol);
}

std::string Majc5200::state_dump() const {
  std::ostringstream os;
  for (u32 i = 0; i < kNumCpus; ++i) {
    const cpu::CycleCpu& c = *cpus_[i];
    os << "cpu" << i << ": pc=0x" << std::hex
       << c.state(c.active_thread()).pc << std::dec << " cycle=" << c.now()
       << " last_progress=" << c.last_progress()
       << " packets=" << c.stats().packets
       << (c.halted() ? " [halted]" : " [running]");
    if (const Trap* t = c.trap()) {
      os << " trap=" << trap_cause_name(t->code);
    }
    os << "\n";
  }
  return os.str();
}

Majc5200::Result Majc5200::run(u64 max_packets_per_cpu) {
  Result res;
  const u64 wd = ms_.config().watchdog_cycles;
  const cpu::CycleCpu* trapped = nullptr;
  bool watchdog_fired = false;
  while (true) {
    // Advance the CPU whose next packet issues earliest in global time
    // (tie: lowest index), and keep advancing it in one batch for exactly
    // as long as the one-step-at-a-time scheduler would have kept picking
    // it: CPU0 stays scheduled while now0 <= now1, CPU1 while now1 < now0.
    // run_steps enforces that bound via `limit`, so the global interleaving
    // of issued packets — and every shared-structure access order behind
    // it — is identical to stepping one packet at a time.
    u32 next = mem::kNumCpus;
    for (u32 i = 0; i < mem::kNumCpus; ++i) {
      const cpu::CycleCpu& c = *cpus_[i];
      if (c.halted() || c.stats().packets >= max_packets_per_cpu) continue;
      if (next == mem::kNumCpus ||
          c.cached_now() < cpus_[next]->cached_now()) {
        next = i;
      }
    }
    if (next == mem::kNumCpus) break;
    const cpu::CycleCpu& other = *cpus_[1 - next];
    const bool other_runs =
        !other.halted() && other.stats().packets < max_packets_per_cpu;
    // An ineligible peer never preempts the batch; `next == 1` implies
    // now1 < now0, so the CPU1 bound now0 - 1 cannot underflow.
    const Cycle limit = !other_runs    ? ~Cycle{0}
                        : next == 0    ? other.cached_now()
                                       : other.cached_now() - 1;
    // Livelock watchdog: global time advanced wd cycles past the last
    // externally visible effect (store / atomic / console / halt) retired
    // by ANY cpu. Loads, branches and spin loops are not progress. The
    // peer's progress clock is frozen while it is not stepping, so passing
    // it once per batch checks the same bound the per-step loop did.
    const cpu::CycleCpu::RunEnd end = cpus_[next]->run_steps(
        max_packets_per_cpu, wd, other.last_progress(), limit);
    if (end == cpu::CycleCpu::RunEnd::kTrap) {
      // A machine-level trap on either CPU stops the chip so the fault is
      // reported precisely instead of being overwritten by further execution.
      trapped = cpus_[next].get();
      break;
    }
    if (end == cpu::CycleCpu::RunEnd::kWatchdog) {
      watchdog_fired = true;
      break;
    }
  }
  res.all_halted = true;
  for (u32 i = 0; i < kNumCpus; ++i) {
    res.packets[i] = cpus_[i]->stats().packets;
    res.instrs[i] = cpus_[i]->stats().instrs;
    res.cycles = std::max(res.cycles, cpus_[i]->now());
    res.all_halted = res.all_halted && cpus_[i]->halted();
  }
  if (trapped != nullptr) {
    res.reason = TerminationReason::kTrap;
    res.trap = *trapped->trap();
    res.all_halted = false;
    res.dump = sim::trap_report(
                   res.trap, prog_,
                   cpus_[res.trap.cpu]->state(trapped->active_thread())) +
               state_dump();
  } else if (watchdog_fired) {
    res.reason = TerminationReason::kWatchdog;
    res.all_halted = false;
    std::ostringstream os;
    os << "== watchdog: no progress for " << wd << " cycles ==\n"
       << state_dump();
    res.dump = os.str();
  } else if (res.all_halted) {
    res.reason = TerminationReason::kHalted;
  } else {
    res.reason = TerminationReason::kPacketCap;
  }
  return res;
}

} // namespace majc::soc
