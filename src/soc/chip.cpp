#include "src/soc/chip.h"

#include <algorithm>
#include <sstream>

namespace majc::soc {

Majc5200::Majc5200(masm::Image image, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : prog_(std::move(image)),
      mem_(mem_bytes),
      ms_(cfg),
      eccmem_(mem_, ms_.fault_plan()),
      dte_(ms_, mem_),
      nupa_(ms_, mem_),
      supa_(ms_, mem_, mem::Port::kSupa),
      pci_(ms_, mem_, mem::Port::kPci) {
  eccmem_.set_poison_hook([&ms = ms_](Addr line) { ms.poison_line(line); });
  sim::load_image(prog_.image(), mem_);
  for (u32 i = 0; i < kNumCpus; ++i) {
    cpus_[i] = std::make_unique<cpu::CycleCpu>(prog_, eccmem_, ms_, i);
    // Distinct stacks: CPU0 at the top of memory, CPU1 64 KB below.
    cpus_[i]->state().regs[2] =
        static_cast<u32>(mem_.size() - 64 - i * (64u << 10));
  }
}

void Majc5200::set_entry(u32 cpu, const std::string& symbol) {
  cpus_[cpu]->state().pc = prog_.image().symbol(symbol);
}

std::string Majc5200::state_dump() const {
  std::ostringstream os;
  for (u32 i = 0; i < kNumCpus; ++i) {
    const cpu::CycleCpu& c = *cpus_[i];
    os << "cpu" << i << ": pc=0x" << std::hex
       << c.state(c.active_thread()).pc << std::dec << " cycle=" << c.now()
       << " last_progress=" << c.last_progress()
       << " packets=" << c.stats().packets
       << (c.halted() ? " [halted]" : " [running]");
    if (const Trap* t = c.trap()) {
      os << " trap=" << trap_cause_name(t->code);
    }
    os << "\n";
  }
  return os.str();
}

Majc5200::Result Majc5200::run(u64 max_packets_per_cpu) {
  Result res;
  const u64 wd = ms_.config().watchdog_cycles;
  const cpu::CycleCpu* trapped = nullptr;
  bool watchdog_fired = false;
  while (true) {
    // Advance the CPU whose next packet issues earliest in global time.
    cpu::CycleCpu* next = nullptr;
    for (auto& c : cpus_) {
      if (c->halted() || c->stats().packets >= max_packets_per_cpu) continue;
      if (next == nullptr || c->cached_now() < next->cached_now()) {
        next = c.get();
      }
    }
    if (next == nullptr) break;
    next->step();
    if (next->trap() != nullptr) {
      // A machine-level trap on either CPU stops the chip so the fault is
      // reported precisely instead of being overwritten by further execution.
      trapped = next;
      break;
    }
    if (wd != 0) {
      // Livelock watchdog: global time has advanced wd cycles past the last
      // externally visible effect (store / atomic / console / halt) retired
      // by ANY cpu. Loads, branches and spin loops are not progress.
      Cycle progress = 0;
      for (const auto& c : cpus_) {
        progress = std::max(progress, c->last_progress());
      }
      if (next->cached_now() > progress + wd) {
        watchdog_fired = true;
        break;
      }
    }
  }
  res.all_halted = true;
  for (u32 i = 0; i < kNumCpus; ++i) {
    res.packets[i] = cpus_[i]->stats().packets;
    res.instrs[i] = cpus_[i]->stats().instrs;
    res.cycles = std::max(res.cycles, cpus_[i]->now());
    res.all_halted = res.all_halted && cpus_[i]->halted();
  }
  if (trapped != nullptr) {
    res.reason = TerminationReason::kTrap;
    res.trap = *trapped->trap();
    res.all_halted = false;
    res.dump = sim::trap_report(
                   res.trap, prog_,
                   cpus_[res.trap.cpu]->state(trapped->active_thread())) +
               state_dump();
  } else if (watchdog_fired) {
    res.reason = TerminationReason::kWatchdog;
    res.all_halted = false;
    std::ostringstream os;
    os << "== watchdog: no progress for " << wd << " cycles ==\n"
       << state_dump();
    res.dump = os.str();
  } else if (res.all_halted) {
    res.reason = TerminationReason::kHalted;
  } else {
    res.reason = TerminationReason::kPacketCap;
  }
  return res;
}

} // namespace majc::soc
