#include "src/serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <exception>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/farm/campaign.h"
#include "src/serve/wire.h"

namespace majc::serve {

struct Server::Conn {
  int fd = -1;
  std::thread thread;
  /// Set as the thread's last action: a done connection's thread is
  /// join-able without blocking (the accept loop reaps them).
  std::atomic<bool> done{false};
  /// Campaign requests attempted on this connection (the quota counter).
  u32 campaigns = 0;
};

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.max_concurrent == 0) cfg_.max_concurrent = 1;
  if (cfg_.workers == 0) cfg_.workers = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  cache_.preload_table12();
  listen_fd_ = listen_unix(cfg_.socket_path, /*backlog=*/64, err);
  if (listen_fd_ < 0) return false;
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (cfg_.verbose) {
    std::fprintf(stderr, "majcd: serving on %s (%u slots, queue %u)\n",
                 cfg_.socket_path.c_str(), cfg_.max_concurrent,
                 cfg_.max_queue);
  }
  return true;
}

void Server::begin_shutdown() {
  if (stopping_.exchange(true)) return;
  // Wake queued admissions so they can answer `draining`.
  admit_cv_.notify_all();
  // Interrupt in-flight campaigns at their next slice/job boundary.
  {
    std::lock_guard<std::mutex> lk(controls_mu_);
    for (farm::RunControl* ctl : active_controls_) ctl->request_drain();
  }
  // Unblock connection threads parked in recv() — SHUT_RD turns their
  // pending read into an orderly EOF while leaving the write side up for
  // any error frame still owed.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  if (cfg_.verbose) std::fprintf(stderr, "majcd: draining\n");
}

void Server::stop() {
  if (!started_.load()) return;
  begin_shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
  started_.store(false);
}

ServeStats Server::stats() const {
  ServeStats s;
  const KernelCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_entries = cs.entries;
  s.campaigns_served = campaigns_served_.load();
  s.jobs_served = jobs_served_.load();
  s.errors_sent = errors_sent_.load();
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    s.active_campaigns = running_;
    s.queued_campaigns = queued_;
  }
  s.draining = stopping_.load();
  return s;
}

void Server::accept_loop() {
  std::vector<std::unique_ptr<Conn>> dead;
  while (!stopping_.load()) {
    // Reap finished connections (join outside conns_mu_: a finishing
    // thread takes that mutex to close its fd).
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto& c : conns_) {
        if (c->done.load()) dead.push_back(std::move(c));
      }
      conns_.erase(std::remove(conns_.begin(), conns_.end(), nullptr),
                   conns_.end());
    }
    for (auto& c : dead) {
      if (c->thread.joinable()) c->thread.join();
    }
    dead.clear();

    // Poll-with-timeout instead of a blocking accept: shutdown is then a
    // flag check away, with no self-connect or signal tricks to wake us.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    if (stopping_.load()) {
      ::close(cfd);
      break;
    }
    if (cfg_.idle_timeout_secs > 0) {
      set_recv_timeout(cfd, cfg_.idle_timeout_secs);
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = cfd;
    Conn* c = conn.get();
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    c->thread = std::thread([this, c] { serve_connection(c); });
  }
}

bool Server::send_error(Conn* conn, u64 id, const char* code,
                        std::string_view message) {
  errors_sent_.fetch_add(1);
  if (cfg_.verbose) {
    std::fprintf(stderr, "majcd: error reply %s: %.*s\n", code,
                 static_cast<int>(message.size()), message.data());
  }
  return write_frame(conn->fd, error_response(id, code, message)) ==
         WireStatus::kOk;
}

void Server::serve_connection(Conn* conn) {
  std::string payload;
  for (;;) {
    if (stopping_.load()) break;
    const WireStatus st = read_frame(conn->fd, &payload,
                                     cfg_.max_request_bytes);
    if (st == WireStatus::kTooBig) {
      // The unread payload makes resync impossible: answer, then close.
      send_error(conn, 0, errc::kOversized,
                 "request frame exceeds max_request_bytes");
      break;
    }
    if (st != WireStatus::kOk) break;  // EOF, timeout or socket error

    JValue req;
    std::string perr;
    if (!json_parse(payload, &req, &perr)) {
      if (!send_error(conn, 0, errc::kBadRequest,
                      "malformed JSON: " + perr)) {
        break;
      }
      continue;
    }
    const u64 id = req.member_u64("id", 0);
    if (!req.is_object() ||
        req.member_string("schema", "") != kReqSchema) {
      if (!send_error(conn, id, errc::kBadRequest,
                      "expected schema majc-req-v1")) {
        break;
      }
      continue;
    }
    const std::string type = req.member_string("type", "campaign");
    if (type == "ping") {
      if (write_frame(conn->fd, pong_response(id)) != WireStatus::kOk) break;
      continue;
    }
    if (type == "stats") {
      if (write_frame(conn->fd, stats_response(id, stats())) !=
          WireStatus::kOk) {
        break;
      }
      continue;
    }
    if (type == "campaign") {
      if (!handle_campaign(conn, req)) break;
      continue;
    }
    if (!send_error(conn, id, errc::kBadRequest,
                    "unknown request type '" + type + "'")) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

Server::Admit Server::admit() {
  std::unique_lock<std::mutex> lk(admit_mu_);
  if (stopping_.load()) return Admit::kDraining;
  if (running_ < cfg_.max_concurrent) {
    ++running_;
    return Admit::kAdmitted;
  }
  if (queued_ >= cfg_.max_queue) return Admit::kOverloaded;
  ++queued_;
  admit_cv_.wait(lk, [this] {
    return stopping_.load() || running_ < cfg_.max_concurrent;
  });
  --queued_;
  if (stopping_.load()) return Admit::kDraining;
  ++running_;
  return Admit::kAdmitted;
}

void Server::release() {
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    --running_;
  }
  admit_cv_.notify_one();
}

bool Server::handle_campaign(Conn* conn, const JValue& req) {
  CampaignRequest r;
  std::string code, message;
  if (!parse_campaign_request(req, &r, &code, &message)) {
    return send_error(conn, req.member_u64("id", 0), code.c_str(), message);
  }

  // Per-client quota: counted per attempted campaign, before admission, so
  // a flood cannot hold slots hostage past its allowance.
  ++conn->campaigns;
  if (cfg_.per_client_quota != 0 && conn->campaigns > cfg_.per_client_quota) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "per-client quota of %u campaign(s) exhausted",
                  cfg_.per_client_quota);
    return send_error(conn, r.id, errc::kQuotaExceeded, msg);
  }

  // Resolve kernels through the content-addressed cache.
  std::vector<std::shared_ptr<const kernels::CompiledKernel>> compiled;
  if (!r.source_text.empty()) {
    try {
      compiled.push_back(cache_.get_or_compile(r.source_name, r.source_text));
    } catch (const std::exception& e) {
      return send_error(conn, r.id, errc::kAssemblyError, e.what());
    }
  } else {
    for (const std::string& name : r.kernels) {
      auto k = cache_.get_named(name);
      if (k == nullptr) {
        return send_error(conn, r.id, errc::kUnknownKernel,
                          "unknown kernel '" + name + "'");
      }
      compiled.push_back(std::move(k));
    }
  }

  std::vector<u64> iterations = r.iterations;
  if (iterations.empty()) {
    iterations.reserve(r.seeds);
    for (u64 it = 0; it < r.seeds; ++it) iterations.push_back(it);
  }
  const u64 modes = r.mode == "both" ? 2 : 1;
  const u64 matrix = compiled.size() * iterations.size() * modes;
  if (matrix == 0 || matrix > cfg_.max_jobs_per_request) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "campaign matrix of %llu job(s) outside [1, %llu]",
                  static_cast<unsigned long long>(matrix),
                  static_cast<unsigned long long>(cfg_.max_jobs_per_request));
    return send_error(conn, r.id, errc::kBadRequest, msg);
  }

  switch (admit()) {
    case Admit::kDraining:
      return send_error(conn, r.id, errc::kDraining,
                        "server is draining; resubmit elsewhere");
    case Admit::kOverloaded:
      return send_error(conn, r.id, errc::kOverloaded,
                        "admission queue full; back off and retry");
    case Admit::kAdmitted:
      break;
  }
  // Holding a slot from here on: every return path must release().
  bool conn_alive = true;
  try {
    if (write_frame(conn->fd, ack_response(r.id)) != WireStatus::kOk) {
      release();
      return false;
    }

    farm::Engine eng;
    for (const auto& k : compiled) eng.add_kernel(*k);
    farm::MatrixSpec m;
    m.iterations = std::move(iterations);
    m.base_seed = r.seed;
    m.faults = r.faults;
    m.mode_cycle = r.mode == "cycle" || r.mode == "both";
    m.mode_functional = r.mode == "functional" || r.mode == "both";
    m.backend = r.backend == "interp" ? sim::ExecBackend::kInterp
                                      : sim::ExecBackend::kThreaded;
    m.policy = r.policy;
    farm::submit_matrix(eng, m);

    farm::RunControl control;
    // RAII registration: if eng.run throws, the control must still leave
    // active_controls_ before it goes out of scope (begin_shutdown walks
    // that list from another thread).
    struct ControlReg {
      Server* s;
      farm::RunControl* ctl;
      ControlReg(Server* s, farm::RunControl* ctl) : s(s), ctl(ctl) {
        std::lock_guard<std::mutex> lk(s->controls_mu_);
        s->active_controls_.push_back(ctl);
      }
      ~ControlReg() {
        std::lock_guard<std::mutex> lk(s->controls_mu_);
        s->active_controls_.erase(std::remove(s->active_controls_.begin(),
                                              s->active_controls_.end(), ctl),
                                  s->active_controls_.end());
      }
    } reg(this, &control);
    farm::Engine::RunOptions opts;
    opts.workers = static_cast<unsigned>(
        r.workers != 0 ? std::min<u64>(r.workers, cfg_.workers)
                       : cfg_.workers);
    opts.control = &control;
    const std::vector<farm::JobResult> results = eng.run(opts);

    bool drained = false;
    for (const farm::JobResult& jr : results) {
      if (!jr.done) drained = true;
    }
    if (drained) {
      conn_alive = send_error(conn, r.id, errc::kDraining,
                              "campaign interrupted by server drain");
    } else {
      u64 failures = 0;
      for (std::size_t i = 0; i < results.size() && conn_alive; ++i) {
        const farm::Job& job = eng.jobs()[i];
        const kernels::KernelRun& run = results[i].run;
        if (!(run.valid && run.halted)) ++failures;
        conn_alive =
            write_frame(conn->fd,
                        job_response(r.id, i, eng.kernel(job.kernel).spec.name,
                                     farm::sim_mode_name(job.mode),
                                     job.iteration, run.valid, run.halted,
                                     run.arch_digest,
                                     farm::failure_class_name(
                                         results[i].failure))) ==
            WireStatus::kOk;
      }
      if (conn_alive) {
        const std::string campaign =
            farm::campaign_json(eng, results, r.seed);
        conn_alive =
            write_frame(conn->fd,
                        campaign_header_response(r.id, results.size(),
                                                 failures,
                                                 campaign.size())) ==
                WireStatus::kOk &&
            write_frame(conn->fd, campaign) == WireStatus::kOk;
      }
      if (conn_alive) {
        campaigns_served_.fetch_add(1);
        jobs_served_.fetch_add(results.size());
        if (cfg_.verbose) {
          std::fprintf(stderr,
                       "majcd: campaign id=%llu jobs=%zu failures=%llu\n",
                       static_cast<unsigned long long>(r.id), results.size(),
                       static_cast<unsigned long long>(failures));
        }
      }
    }
  } catch (const std::exception& e) {
    conn_alive = send_error(conn, r.id, errc::kInternal, e.what());
  }
  release();
  return conn_alive;
}

} // namespace majc::serve
