#include "src/serve/client.h"

#include <unistd.h>

#include "src/serve/wire.h"

namespace majc::serve {
namespace {

bool transport_fail(std::string* err, const char* what, WireStatus st) {
  if (err != nullptr) {
    *err = std::string(what) + ": " + wire_status_name(st);
  }
  return false;
}

/// Parse one majc-rsp-v1 frame; false on malformed payload.
bool parse_response(const std::string& payload, JValue* out,
                    std::string* err) {
  std::string perr;
  if (!json_parse(payload, out, &perr)) {
    if (err != nullptr) *err = "malformed response: " + perr;
    return false;
  }
  if (out->member_string("schema", "") != kRspSchema) {
    if (err != nullptr) *err = "response missing majc-rsp-v1 schema";
    return false;
  }
  return true;
}

bool capture_error(const JValue& rsp, CampaignReply* reply) {
  reply->error_code = rsp.member_string("code", "unknown");
  reply->error_message = rsp.member_string("message", "");
  return true;
}

} // namespace

bool Client::connect(const std::string& socket_path, std::string* err) {
  close();
  fd_ = connect_unix(socket_path, err);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::send(std::string_view payload) {
  return fd_ >= 0 && write_frame(fd_, payload) == WireStatus::kOk;
}

bool Client::recv(std::string* payload, u64 max_bytes) {
  return fd_ >= 0 && read_frame(fd_, payload, max_bytes) == WireStatus::kOk;
}

bool run_campaign(Client& c, const CampaignRequest& req, CampaignReply* reply,
                  std::string* err) {
  *reply = CampaignReply{};
  if (!c.send(campaign_request_json(req))) {
    return transport_fail(err, "send", WireStatus::kError);
  }
  std::string payload;
  for (;;) {
    if (!c.recv(&payload)) {
      return transport_fail(err, "recv", WireStatus::kEof);
    }
    JValue rsp;
    if (!parse_response(payload, &rsp, err)) return false;
    const std::string type = rsp.member_string("type", "");
    if (type == "error") return capture_error(rsp, reply);
    if (type == "ack") {
      reply->acked = true;
      continue;
    }
    if (type == "job") {
      JobSummary js;
      js.index = rsp.member_u64("index", 0);
      js.kernel = rsp.member_string("kernel", "");
      js.mode = rsp.member_string("mode", "");
      js.iteration = rsp.member_u64("iteration", 0);
      js.valid = rsp.member_bool("valid", false);
      js.halted = rsp.member_bool("halted", false);
      js.arch_digest = rsp.member_u64("arch_digest", 0);
      js.failure_class = rsp.member_string("failure_class", "");
      reply->jobs.push_back(std::move(js));
      continue;
    }
    if (type == "campaign") {
      reply->failures = rsp.member_u64("failures", 0);
      const u64 bytes = rsp.member_u64("payload_bytes", 0);
      // The next frame is the raw majc-farm-v1 payload, byte-exact.
      if (!c.recv(&reply->campaign)) {
        return transport_fail(err, "recv campaign payload", WireStatus::kEof);
      }
      if (reply->campaign.size() != bytes) {
        if (err != nullptr) *err = "campaign payload size mismatch";
        return false;
      }
      reply->ok = true;
      return true;
    }
    if (err != nullptr) *err = "unexpected response type '" + type + "'";
    return false;
  }
}

bool fetch_stats(Client& c, u64 id, ServeStats* out, std::string* err) {
  if (!c.send(stats_request_json(id))) {
    return transport_fail(err, "send", WireStatus::kError);
  }
  std::string payload;
  if (!c.recv(&payload)) {
    return transport_fail(err, "recv", WireStatus::kEof);
  }
  JValue rsp;
  if (!parse_response(payload, &rsp, err)) return false;
  if (rsp.member_string("type", "") != "stats") {
    if (err != nullptr) *err = "expected stats response";
    return false;
  }
  *out = ServeStats{};
  out->cache_hits = rsp.member_u64("cache_hits", 0);
  out->cache_misses = rsp.member_u64("cache_misses", 0);
  out->cache_entries = rsp.member_u64("cache_entries", 0);
  out->campaigns_served = rsp.member_u64("campaigns_served", 0);
  out->jobs_served = rsp.member_u64("jobs_served", 0);
  out->errors_sent = rsp.member_u64("errors_sent", 0);
  out->active_campaigns = rsp.member_u64("active_campaigns", 0);
  out->queued_campaigns = rsp.member_u64("queued_campaigns", 0);
  out->draining = rsp.member_bool("draining", false);
  return true;
}

bool ping(Client& c, u64 id, std::string* err) {
  if (!c.send(ping_request_json(id))) {
    return transport_fail(err, "send", WireStatus::kError);
  }
  std::string payload;
  if (!c.recv(&payload)) {
    return transport_fail(err, "recv", WireStatus::kEof);
  }
  JValue rsp;
  if (!parse_response(payload, &rsp, err)) return false;
  if (rsp.member_string("type", "") != "pong") {
    if (err != nullptr) *err = "expected pong";
    return false;
  }
  return true;
}

} // namespace majc::serve
