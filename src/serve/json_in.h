// Minimal JSON parser for the serving protocol (the read-side counterpart
// of trace::JsonWriter).
//
// Requests arrive from untrusted clients, so the parser is written for
// hostile input first: strict UTF-8-agnostic byte handling, a hard nesting
// depth cap (adversarial "[[[[..." frames must fail cleanly, not overflow
// the stack), no recursion past that cap, and every failure is a structured
// error message — never an exception, crash or partial value.
//
// Numbers keep both representations: a double for general use and an exact
// 64-bit integer when the literal was integral and in range (seeds are full
// u64 values; a double-only parse would silently round them above 2^53).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/types.h"

namespace majc::serve {

class JValue {
public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact integer value when the literal was integral; valid only if
  /// `is_int` (unsigned) or `is_neg_int` (negative, two's complement in u64).
  u64 integer = 0;
  bool is_int = false;
  bool is_neg_int = false;
  std::string str;
  std::vector<JValue> arr;
  /// Insertion-ordered key/value pairs (duplicate keys keep the first).
  std::vector<std::pair<std::string, JValue>> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JValue* find(std::string_view key) const;

  // Typed getters with defaults (never throw; wrong kind returns `dflt`).
  bool get_bool(bool dflt) const { return is_bool() ? boolean : dflt; }
  double get_double(double dflt) const { return is_number() ? number : dflt; }
  std::string get_string(const std::string& dflt) const {
    return is_string() ? str : dflt;
  }
  /// Unsigned integer: exact when the literal was integral; negative or
  /// non-numeric values return `dflt`.
  u64 get_u64(u64 dflt) const {
    if (!is_number() || is_neg_int) return dflt;
    if (is_int) return integer;
    return number >= 0 ? static_cast<u64>(number) : dflt;
  }

  // Member convenience: obj[key] with a default.
  bool member_bool(std::string_view key, bool dflt) const;
  double member_double(std::string_view key, double dflt) const;
  u64 member_u64(std::string_view key, u64 dflt) const;
  std::string member_string(std::string_view key,
                            const std::string& dflt) const;
};

/// Parse `text` (one complete JSON value, optionally whitespace-padded)
/// into `out`. On failure returns false and fills `err` with a
/// position-tagged message; `out` is unspecified.
bool json_parse(std::string_view text, JValue* out, std::string* err);

} // namespace majc::serve
