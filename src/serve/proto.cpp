#include "src/serve/proto.h"

#include <algorithm>
#include <sstream>

#include "src/trace/json.h"

namespace majc::serve {
namespace {

/// Compact (single-line) writer: protocol frames are stream-parsed, not
/// human-read; the raw campaign payload keeps majc_farm's pretty layout.
struct Rsp {
  std::ostringstream os;
  trace::JsonWriter j{os, /*pretty=*/false};

  Rsp(u64 id, const char* type) {
    j.begin_object();
    j.kv("schema", kRspSchema);
    j.kv("id", id);
    j.kv("type", type);
  }
  std::string close() {
    j.end_object();
    return os.str();
  }
};

bool fail(std::string* code, std::string* message, const char* c,
          std::string m) {
  *code = c;
  *message = std::move(m);
  return false;
}

} // namespace

std::string campaign_request_json(const CampaignRequest& r) {
  std::ostringstream os;
  trace::JsonWriter j(os, /*pretty=*/false);
  j.begin_object();
  j.kv("schema", kReqSchema);
  j.kv("id", r.id);
  j.kv("type", "campaign");
  if (!r.source_text.empty()) {
    j.key("source").begin_object();
    j.kv("name", r.source_name);
    j.kv("text", r.source_text);
    j.end_object();
  } else {
    j.key("kernels").begin_array();
    for (const std::string& k : r.kernels) j.value(k);
    j.end_array();
  }
  j.kv("mode", r.mode);
  j.kv("backend", r.backend);
  j.kv("seed", r.seed);
  if (!r.iterations.empty()) {
    j.key("iterations").begin_array();
    for (const u64 it : r.iterations) j.value(it);
    j.end_array();
  } else {
    j.kv("seeds", r.seeds);
  }
  j.kv("faults", r.faults);
  if (r.workers != 0) j.kv("workers", r.workers);
  const farm::JobPolicy& p = r.policy;
  const farm::JobPolicy dflt;
  if (p.max_attempts != dflt.max_attempts ||
      p.host_deadline_secs != dflt.host_deadline_secs ||
      p.slice_packets != dflt.slice_packets ||
      p.backoff_base_us != dflt.backoff_base_us ||
      p.max_packets != dflt.max_packets) {
    j.key("policy").begin_object();
    j.kv("max_attempts", p.max_attempts);
    j.kv("deadline_secs", p.host_deadline_secs);
    j.kv("slice", p.slice_packets);
    j.kv("backoff_us", p.backoff_base_us);
    j.kv("max_packets", p.max_packets);
    j.end_object();
  }
  j.end_object();
  return os.str();
}

std::string stats_request_json(u64 id) {
  std::ostringstream os;
  trace::JsonWriter j(os, /*pretty=*/false);
  j.begin_object();
  j.kv("schema", kReqSchema);
  j.kv("id", id);
  j.kv("type", "stats");
  j.end_object();
  return os.str();
}

std::string ping_request_json(u64 id) {
  std::ostringstream os;
  trace::JsonWriter j(os, /*pretty=*/false);
  j.begin_object();
  j.kv("schema", kReqSchema);
  j.kv("id", id);
  j.kv("type", "ping");
  j.end_object();
  return os.str();
}

bool parse_campaign_request(const JValue& v, CampaignRequest* out,
                            std::string* code, std::string* message) {
  *out = CampaignRequest{};
  out->id = v.member_u64("id", 0);

  const JValue* source = v.find("source");
  const JValue* kernels = v.find("kernels");
  if (source != nullptr) {
    if (!source->is_object()) {
      return fail(code, message, errc::kBadRequest,
                  "'source' must be an object {name, text}");
    }
    out->source_name = source->member_string("name", "inline");
    out->source_text = source->member_string("text", "");
    if (out->source_text.empty()) {
      return fail(code, message, errc::kBadRequest,
                  "'source.text' must be a non-empty string");
    }
  } else if (kernels != nullptr) {
    if (!kernels->is_array() || kernels->arr.empty()) {
      return fail(code, message, errc::kBadRequest,
                  "'kernels' must be a non-empty array of names");
    }
    for (const JValue& k : kernels->arr) {
      if (!k.is_string() || k.str.empty()) {
        return fail(code, message, errc::kBadRequest,
                    "'kernels' entries must be non-empty strings");
      }
      out->kernels.push_back(k.str);
    }
  } else {
    return fail(code, message, errc::kBadRequest,
                "request needs 'kernels' or 'source'");
  }

  out->mode = v.member_string("mode", "cycle");
  if (out->mode != "cycle" && out->mode != "functional" &&
      out->mode != "both") {
    return fail(code, message, errc::kBadRequest,
                "'mode' must be cycle, functional or both");
  }
  out->backend = v.member_string("backend", "threaded");
  if (out->backend != "interp" && out->backend != "threaded") {
    return fail(code, message, errc::kBadRequest,
                "'backend' must be interp or threaded");
  }

  out->seed = v.member_u64("seed", out->seed);
  out->faults = v.member_bool("faults", true);
  out->workers = v.member_u64("workers", 0);

  if (const JValue* its = v.find("iterations"); its != nullptr) {
    if (!its->is_array() || its->arr.empty()) {
      return fail(code, message, errc::kBadRequest,
                  "'iterations' must be a non-empty array of integers");
    }
    for (const JValue& it : its->arr) {
      if (!it.is_number() || it.is_neg_int) {
        return fail(code, message, errc::kBadRequest,
                    "'iterations' entries must be non-negative integers");
      }
      out->iterations.push_back(it.get_u64(0));
    }
    out->seeds = out->iterations.size();
  } else {
    const JValue* seeds = v.find("seeds");
    if (seeds != nullptr && (!seeds->is_number() || seeds->is_neg_int)) {
      return fail(code, message, errc::kBadRequest,
                  "'seeds' must be a non-negative integer");
    }
    out->seeds = v.member_u64("seeds", 1);
    if (out->seeds == 0) {
      return fail(code, message, errc::kBadRequest,
                  "'seeds' must be >= 1 (empty campaign matrix)");
    }
  }

  if (const JValue* pol = v.find("policy"); pol != nullptr) {
    if (!pol->is_object()) {
      return fail(code, message, errc::kBadRequest,
                  "'policy' must be an object");
    }
    farm::JobPolicy& p = out->policy;
    p.max_attempts = static_cast<u32>(
        std::max<u64>(1, pol->member_u64("max_attempts", p.max_attempts)));
    p.host_deadline_secs =
        pol->member_double("deadline_secs", p.host_deadline_secs);
    p.slice_packets = pol->member_u64("slice", p.slice_packets);
    p.backoff_base_us = pol->member_u64("backoff_us", p.backoff_base_us);
    p.max_packets = pol->member_u64("max_packets", p.max_packets);
    if (p.host_deadline_secs < 0) {
      return fail(code, message, errc::kBadRequest,
                  "'policy.deadline_secs' must be >= 0");
    }
  }
  return true;
}

std::string error_response(u64 id, std::string_view code,
                           std::string_view message) {
  Rsp r(id, "error");
  r.j.kv("code", code);
  r.j.kv("message", message);
  return r.close();
}

std::string ack_response(u64 id) {
  Rsp r(id, "ack");
  return r.close();
}

std::string pong_response(u64 id) {
  Rsp r(id, "pong");
  return r.close();
}

std::string job_response(u64 id, u64 index, const std::string& kernel,
                         const char* mode, u64 iteration, bool valid,
                         bool halted, u64 arch_digest,
                         const char* failure_class) {
  Rsp r(id, "job");
  r.j.kv("index", index);
  r.j.kv("kernel", kernel);
  r.j.kv("mode", mode);
  r.j.kv("iteration", iteration);
  r.j.kv("valid", valid);
  r.j.kv("halted", halted);
  r.j.kv("arch_digest", arch_digest);
  r.j.kv("failure_class", failure_class);
  return r.close();
}

std::string stats_response(u64 id, const ServeStats& s) {
  Rsp r(id, "stats");
  r.j.kv("cache_hits", s.cache_hits);
  r.j.kv("cache_misses", s.cache_misses);
  r.j.kv("cache_entries", s.cache_entries);
  r.j.kv("campaigns_served", s.campaigns_served);
  r.j.kv("jobs_served", s.jobs_served);
  r.j.kv("errors_sent", s.errors_sent);
  r.j.kv("active_campaigns", s.active_campaigns);
  r.j.kv("queued_campaigns", s.queued_campaigns);
  r.j.kv("draining", s.draining);
  return r.close();
}

std::string campaign_header_response(u64 id, u64 num_jobs, u64 failures,
                                     u64 payload_bytes) {
  Rsp r(id, "campaign");
  r.j.kv("num_jobs", num_jobs);
  r.j.kv("failures", failures);
  r.j.kv("payload_bytes", payload_bytes);
  return r.close();
}

} // namespace majc::serve
