// Length-prefixed framing over local (AF_UNIX) stream sockets.
//
// Every majc-req-v1 / majc-rsp-v1 message is one frame: a 4-byte
// little-endian payload length followed by exactly that many payload bytes.
// Frames are self-delimiting, so a reader always knows whether it is
// resynchronized (it is, at every frame boundary) and a writer can stream a
// raw campaign-JSON payload byte-exactly without JSON-in-JSON escaping.
//
// The read side is written for hostile peers: a header announcing more than
// `max_payload` bytes returns kTooBig *without reading the payload* (the
// connection is then unrecoverable and must be closed — the unread bytes
// make resync impossible); a peer that disappears mid-frame returns kEof;
// a receive timeout (SO_RCVTIMEO armed by the server) returns kTimeout.
// Writes use MSG_NOSIGNAL so a disconnected client surfaces as an error
// return, never a SIGPIPE.
#pragma once

#include <string>

#include "src/support/types.h"

namespace majc::serve {

enum class WireStatus : u8 {
  kOk = 0,
  kEof,      // orderly close (or close mid-frame: truncated frame)
  kTooBig,   // announced length exceeds max_payload; connection is dead
  kTimeout,  // SO_RCVTIMEO expired mid-read
  kError,    // errno-level failure
};

constexpr const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kEof: return "eof";
    case WireStatus::kTooBig: return "too-big";
    case WireStatus::kTimeout: return "timeout";
    case WireStatus::kError: return "error";
  }
  return "?";
}

/// Read one frame into `payload` (replaced). `max_payload` bounds the
/// announced length this reader will accept.
WireStatus read_frame(int fd, std::string* payload, u64 max_payload);

/// Write one frame (header + payload). Handles partial writes; returns
/// kError on a broken peer (EPIPE/ECONNRESET — suppressed SIGPIPE).
WireStatus write_frame(int fd, std::string_view payload);

/// Create + bind + listen on a unix stream socket at `path`, replacing any
/// stale socket file. Returns the listening fd or -1 (err filled).
int listen_unix(const std::string& path, int backlog, std::string* err);

/// Connect to a unix stream socket. Returns fd or -1 (err filled).
int connect_unix(const std::string& path, std::string* err);

/// Arm SO_RCVTIMEO on `fd` (0 disables). Returns false on setsockopt error.
bool set_recv_timeout(int fd, double seconds);

} // namespace majc::serve
