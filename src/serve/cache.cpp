#include "src/serve/cache.h"

#include "src/kernels/table12.h"

namespace majc::serve {

u64 kernel_cache_key(std::string_view name, std::string_view source) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
  };
  mix(name);
  h ^= 0;  // NUL separator: ("ab","c") and ("a","bc") hash differently
  h *= 0x100000001b3ull;
  mix(source);
  return h;
}

std::shared_ptr<const kernels::CompiledKernel> KernelCache::get_or_compile(
    const std::string& name, const std::string& source, bool* hit) {
  const u64 key = kernel_cache_key(name, source);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  // Compile outside the lock: concurrent misses on *different* kernels
  // must not serialize behind one assembly. Two racing misses on the same
  // kernel both compile; the insert below keeps whichever landed first and
  // both count as the misses they were.
  kernels::KernelSpec spec;
  spec.name = name;
  spec.source = source;
  auto compiled = std::make_shared<const kernels::CompiledKernel>(
      kernels::compile_kernel(std::move(spec)));
  std::lock_guard<std::mutex> lk(mu_);
  ++misses_;
  auto [it, inserted] = entries_.emplace(key, std::move(compiled));
  if (hit != nullptr) *hit = false;
  return it->second;
}

void KernelCache::preload_table12() {
  for (const kernels::NamedKernel& nk : kernels::table12_kernels()) {
    kernels::KernelSpec spec = kernels::table12_spec(nk);
    const std::string name = spec.name;
    const u64 key = kernel_cache_key(spec.name, spec.source);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (entries_.count(key) != 0) {
        named_.emplace(name, key);
        continue;
      }
    }
    auto compiled = std::make_shared<const kernels::CompiledKernel>(
        kernels::compile_kernel(std::move(spec)));
    std::lock_guard<std::mutex> lk(mu_);
    ++misses_;
    entries_.emplace(key, std::move(compiled));
    named_.emplace(name, key);
  }
}

std::shared_ptr<const kernels::CompiledKernel> KernelCache::get_named(
    const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto nit = named_.find(name);
  if (nit == named_.end()) return nullptr;
  auto it = entries_.find(nit->second);
  if (it == entries_.end()) return nullptr;
  ++hits_;
  return it->second;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = entries_.size();
  return s;
}

} // namespace majc::serve
