#include "src/serve/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace majc::serve {
namespace {

/// recv() exactly `n` bytes. Distinguishes orderly EOF, timeout and error;
/// loops over short reads and EINTR.
WireStatus recv_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return WireStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return WireStatus::kTimeout;
    return WireStatus::kError;
  }
  return WireStatus::kOk;
}

WireStatus send_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return WireStatus::kError;
  }
  return WireStatus::kOk;
}

void errno_msg(const char* what, std::string* err) {
  if (err != nullptr) {
    *err = std::string(what) + ": " + std::strerror(errno);
  }
}

} // namespace

WireStatus read_frame(int fd, std::string* payload, u64 max_payload) {
  char hdr[4];
  WireStatus st = recv_exact(fd, hdr, sizeof hdr);
  if (st != WireStatus::kOk) return st;
  const u32 len = static_cast<u32>(static_cast<unsigned char>(hdr[0])) |
                  static_cast<u32>(static_cast<unsigned char>(hdr[1])) << 8 |
                  static_cast<u32>(static_cast<unsigned char>(hdr[2])) << 16 |
                  static_cast<u32>(static_cast<unsigned char>(hdr[3])) << 24;
  if (len > max_payload) return WireStatus::kTooBig;
  payload->resize(len);
  if (len == 0) return WireStatus::kOk;
  return recv_exact(fd, payload->data(), len);
}

WireStatus write_frame(int fd, std::string_view payload) {
  const u64 len = payload.size();
  if (len > 0xFFFFFFFFull) return WireStatus::kTooBig;
  const char hdr[4] = {
      static_cast<char>(len & 0xFF),
      static_cast<char>((len >> 8) & 0xFF),
      static_cast<char>((len >> 16) & 0xFF),
      static_cast<char>((len >> 24) & 0xFF),
  };
  WireStatus st = send_all(fd, hdr, sizeof hdr);
  if (st != WireStatus::kOk) return st;
  if (payload.empty()) return WireStatus::kOk;
  return send_all(fd, payload.data(), payload.size());
}

int listen_unix(const std::string& path, int backlog, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (err != nullptr) *err = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    errno_msg("socket", err);
    return -1;
  }
  // Replace a stale socket file from a previous (crashed) daemon; a live
  // daemon still holds its listen socket, so bind() below would fail with
  // EADDRINUSE only in a true double-start race, which we let surface.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    errno_msg("bind", err);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    errno_msg("listen", err);
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (err != nullptr) *err = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    errno_msg("socket", err);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    errno_msg("connect", err);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                         tv.tv_sec)) *
                                          1e6);
  }
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

} // namespace majc::serve
