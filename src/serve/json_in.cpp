#include "src/serve/json_in.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace majc::serve {
namespace {

/// Hard nesting ceiling: protocol requests are a handful of levels deep;
/// anything deeper is an attack or a bug, and recursing into it would risk
/// the server's stack.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const char* msg) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s at offset %zu", msg, pos);
    err = buf;
    return false;
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char want, const char* msg) {
    if (eof() || text[pos] != want) return fail(msg);
    ++pos;
    return true;
  }

  bool parse_value(JValue* out, int depth);

  bool parse_literal(std::string_view lit, const char* msg) {
    if (text.substr(pos, lit.size()) != lit) return fail(msg);
    pos += lit.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"', "expected string")) return false;
    out->clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          u32 cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<u32>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<u32>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<u32>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — the writer never emits them
          // and the protocol treats strings as byte sequences).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(JValue* out) {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    bool integral = true;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return fail("expected number");
    const std::string lit(text.substr(start, pos - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      return fail("malformed number");
    }
    out->kind = JValue::Kind::kNumber;
    out->number = d;
    out->is_int = false;
    out->is_neg_int = false;
    if (integral) {
      // Exact integer capture (u64 round trip; strtod alone rounds >2^53).
      errno = 0;
      if (lit[0] == '-') {
        const long long v = std::strtoll(lit.c_str(), &end, 10);
        if (errno == 0 && end == lit.c_str() + lit.size()) {
          out->integer = static_cast<u64>(v);
          out->is_int = true;
          out->is_neg_int = true;
        }
      } else {
        const unsigned long long v = std::strtoull(lit.c_str(), &end, 10);
        if (errno == 0 && end == lit.c_str() + lit.size()) {
          out->integer = v;
          out->is_int = true;
        }
      }
    }
    return true;
  }
};

bool Parser::parse_value(JValue* out, int depth) {
  if (depth > kMaxDepth) return fail("nesting too deep");
  skip_ws();
  if (eof()) return fail("unexpected end of input");
  const char c = peek();
  switch (c) {
    case 'n':
      out->kind = JValue::Kind::kNull;
      return parse_literal("null", "expected null");
    case 't':
      out->kind = JValue::Kind::kBool;
      out->boolean = true;
      return parse_literal("true", "expected true");
    case 'f':
      out->kind = JValue::Kind::kBool;
      out->boolean = false;
      return parse_literal("false", "expected false");
    case '"':
      out->kind = JValue::Kind::kString;
      return parse_string(&out->str);
    case '[': {
      ++pos;
      out->kind = JValue::Kind::kArray;
      skip_ws();
      if (!eof() && peek() == ']') {
        ++pos;
        return true;
      }
      while (true) {
        JValue elem;
        if (!parse_value(&elem, depth + 1)) return false;
        out->arr.push_back(std::move(elem));
        skip_ws();
        if (eof()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        return consume(']', "expected ',' or ']'");
      }
    }
    case '{': {
      ++pos;
      out->kind = JValue::Kind::kObject;
      skip_ws();
      if (!eof() && peek() == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':', "expected ':'")) return false;
        JValue val;
        if (!parse_value(&val, depth + 1)) return false;
        if (out->find(key) == nullptr) {
          out->obj.emplace_back(std::move(key), std::move(val));
        }
        skip_ws();
        if (eof()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        return consume('}', "expected ',' or '}'");
      }
    }
    default:
      return parse_number(out);
  }
}

} // namespace

const JValue* JValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JValue::member_bool(std::string_view key, bool dflt) const {
  const JValue* v = find(key);
  return v != nullptr ? v->get_bool(dflt) : dflt;
}

double JValue::member_double(std::string_view key, double dflt) const {
  const JValue* v = find(key);
  return v != nullptr ? v->get_double(dflt) : dflt;
}

u64 JValue::member_u64(std::string_view key, u64 dflt) const {
  const JValue* v = find(key);
  return v != nullptr ? v->get_u64(dflt) : dflt;
}

std::string JValue::member_string(std::string_view key,
                                  const std::string& dflt) const {
  const JValue* v = find(key);
  return v != nullptr ? v->get_string(dflt) : dflt;
}

bool json_parse(std::string_view text, JValue* out, std::string* err) {
  Parser p{text, 0, {}};
  *out = JValue{};
  if (!p.parse_value(out, 0)) {
    if (err != nullptr) *err = p.err;
    return false;
  }
  p.skip_ws();
  if (!p.eof()) {
    if (err != nullptr) *err = "trailing bytes after JSON value";
    return false;
  }
  return true;
}

} // namespace majc::serve
