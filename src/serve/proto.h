// The majc-req-v1 / majc-rsp-v1 message model.
//
// One request frame carries one JSON object; the daemon answers with a
// sequence of response frames. For a campaign request the sequence is:
//
//   ack                          admitted: a farm slot is now running it
//   job (x num_jobs)             per-job summaries, in submission order
//   campaign (header)            job/failure counts + the payload size
//   <raw majc-farm-v1 bytes>     one frame whose payload is EXACTLY the
//                                campaign JSON majc_farm would write
//
// The final frame is deliberately raw (not wrapped in majc-rsp-v1): the
// whole point of the daemon is that served bytes are indistinguishable
// from `majc_farm --json` bytes, and JSON-in-JSON string escaping would
// force clients to unescape before comparing. The preceding header frame
// announces its exact byte length.
//
// Every failure is a structured `error` frame with a machine-readable
// `code`; the connection stays usable afterwards except where the stream
// itself is unrecoverable (`oversized`: the unread payload bytes make
// reframing impossible, so the server closes after replying).
#pragma once

#include <string>
#include <vector>

#include "src/farm/farm.h"
#include "src/serve/json_in.h"

namespace majc::serve {

inline constexpr const char* kReqSchema = "majc-req-v1";
inline constexpr const char* kRspSchema = "majc-rsp-v1";

/// Machine-readable error codes carried in `error` frames.
namespace errc {
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kUnknownKernel = "unknown-kernel";
inline constexpr const char* kAssemblyError = "assembly-error";
inline constexpr const char* kOversized = "oversized";
inline constexpr const char* kQuotaExceeded = "quota-exceeded";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kDraining = "draining";
inline constexpr const char* kInternal = "internal";
} // namespace errc

/// A campaign request: which kernels, which matrix, which policy. Either
/// `kernels` (canonical Table 1/2 names, precompiled server-side) or an
/// inline `source_*` kernel (assembled once, then content-addressed in the
/// daemon's cache).
struct CampaignRequest {
  u64 id = 0;
  std::vector<std::string> kernels;
  std::string source_name;
  std::string source_text;  // non-empty selects assemble-source mode
  std::string mode = "cycle";        // cycle | functional | both
  std::string backend = "threaded";  // interp | threaded (functional jobs)
  u64 seed = 0x5eed50a4;             // fault-stream base seed
  u64 seeds = 1;       // iteration count (0..seeds-1) when `iterations` empty
  std::vector<u64> iterations;  // explicit iteration/seed list
  bool faults = true;
  u64 workers = 0;  // farm workers for this campaign (0 = server default)
  farm::JobPolicy policy;
};

// ---- client-side serialization ----

std::string campaign_request_json(const CampaignRequest& r);
std::string stats_request_json(u64 id);
std::string ping_request_json(u64 id);

// ---- server-side parsing ----

/// Validate + extract a campaign request from a parsed frame. On failure
/// returns false and fills (code, message) for the error reply.
bool parse_campaign_request(const JValue& v, CampaignRequest* out,
                            std::string* code, std::string* message);

// ---- server-side response serialization ----

std::string error_response(u64 id, std::string_view code,
                           std::string_view message);
std::string ack_response(u64 id);
std::string pong_response(u64 id);
std::string job_response(u64 id, u64 index, const std::string& kernel,
                         const char* mode, u64 iteration, bool valid,
                         bool halted, u64 arch_digest,
                         const char* failure_class);

struct ServeStats {
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 cache_entries = 0;
  u64 campaigns_served = 0;
  u64 jobs_served = 0;
  u64 errors_sent = 0;
  u64 active_campaigns = 0;
  u64 queued_campaigns = 0;
  bool draining = false;
};

std::string stats_response(u64 id, const ServeStats& s);
std::string campaign_header_response(u64 id, u64 num_jobs, u64 failures,
                                     u64 payload_bytes);

} // namespace majc::serve
