// Content-addressed cache of compiled kernel images.
//
// The expensive front half of a campaign job — assemble the source,
// predecode it into a sim::Program, warm the threaded-code translation —
// is a pure function of the kernel source text. The daemon therefore keys
// compiled images by an FNV-1a hash of (name, source): the first request
// for a given source pays the compile (a miss), every subsequent request
// aliases the same immutable CompiledKernel (a hit), across clients and
// across campaigns. Correctness does not depend on the cache: a cached and
// a cold-compiled kernel produce byte-identical campaign JSON
// (tests/test_serve_cache.cpp pins this), so the cache is purely a
// throughput feature.
//
// The name participates in the key because it is guest-visible (campaign
// JSON reports spec.name): two requests submitting the same source under
// different names must not alias one entry, or the second would be reported
// under the first one's name. Distinct sources never collide regardless of
// name (the hash covers every byte of both, NUL-separated).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/kernels/kernel.h"

namespace majc::serve {

/// FNV-1a 64 over (name, '\0', source) — the cache key derivation, exposed
/// for tests.
u64 kernel_cache_key(std::string_view name, std::string_view source);

class KernelCache {
public:
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 entries = 0;
  };

  /// Look up (name, source); compile + insert on miss. Returns a shared
  /// immutable image — safe to run concurrently from any number of
  /// machines (the farm's shared-predecode discipline). `hit` (optional)
  /// reports whether this call was served from cache. Throws majc::Error
  /// when the source fails to assemble (nothing is inserted).
  std::shared_ptr<const kernels::CompiledKernel> get_or_compile(
      const std::string& name, const std::string& source,
      bool* hit = nullptr);

  /// Precompile the 16 Table 1/2 kernels under their canonical names so
  /// named requests never pay a compile. Counted as misses (they are).
  /// Unlike source requests, these entries carry the registry specs'
  /// setup/validate closures, so named campaigns validate against the
  /// golden models exactly like majc_farm runs.
  void preload_table12();

  /// Preloaded named-kernel lookup; nullptr when unknown. Counts as a hit.
  std::shared_ptr<const kernels::CompiledKernel> get_named(
      const std::string& name);

  Stats stats() const;

private:
  mutable std::mutex mu_;
  std::unordered_map<u64, std::shared_ptr<const kernels::CompiledKernel>>
      entries_;
  std::unordered_map<std::string, u64> named_;  // canonical name -> key
  u64 hits_ = 0;
  u64 misses_ = 0;
};

} // namespace majc::serve
