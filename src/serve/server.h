// majcd's core: a campaign-serving daemon over the farm engine.
//
// The Server composes three unchanged layers — the deterministic farm
// engine (src/farm/), the compiled-kernel front end (src/kernels/) and the
// majc-farm-v1 campaign serializer — behind a local-socket protocol
// (src/serve/proto.h). Nothing engine-side knows it is being served: a
// request is expanded through the same farm::submit_matrix the majc_farm
// CLI uses and serialized by the same write_campaign_json, which is what
// makes served bytes ≡ CLI bytes a structural property rather than a
// maintained one (tests/test_serve.cpp pins it anyway).
//
// Serving-side mechanics, all request-scoped:
//   * admission — at most `max_concurrent` campaigns execute at once;
//     up to `max_queue` more wait (blocking their connection: that is the
//     backpressure signal a client feels); beyond that, a structured
//     `overloaded` error. The ack frame is sent on admission, so a client
//     that has its ack knows it holds an execution slot.
//   * per-client quota — `per_client_quota` campaigns per connection
//     (0 = unlimited); exceeding it earns `quota-exceeded`.
//   * kernel cache — named kernels are precompiled at startup; inline
//     sources are compiled once per unique (name, source) and shared
//     (src/serve/cache.h).
//   * drain — begin_shutdown() stops accepting, fails queued admissions
//     with `draining`, and interrupts in-flight campaigns through each
//     run's farm::RunControl drain token; their clients get a `draining`
//     error instead of a partial campaign. stop() then joins everything
//     and removes the socket file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/cache.h"
#include "src/serve/proto.h"

namespace majc::serve {

struct ServerConfig {
  std::string socket_path;
  /// Farm workers per campaign (requests may ask for fewer; they cannot
  /// exceed this).
  unsigned workers = 1;
  /// Campaigns executing concurrently (admission slots).
  unsigned max_concurrent = 2;
  /// Admitted-but-waiting ceiling; a request beyond slots+queue is
  /// rejected `overloaded` instead of blocking.
  unsigned max_queue = 8;
  /// Largest request frame accepted (larger earns `oversized` + close).
  u64 max_request_bytes = 1u << 20;
  /// Campaign requests allowed per connection (0 = unlimited).
  u32 per_client_quota = 0;
  /// Matrix-size ceiling per request (kernels x iterations x modes).
  u64 max_jobs_per_request = 4096;
  /// SO_RCVTIMEO on client connections (0 = none): a peer that sends half
  /// a frame and stalls is disconnected instead of pinning its thread.
  double idle_timeout_secs = 0.0;
  /// Announce lifecycle + per-campaign lines on stderr.
  bool verbose = false;
};

class Server {
public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start the accept loop. False + err on failure.
  bool start(std::string* err);

  /// Graceful drain: stop accepting, fail queued admissions, interrupt
  /// in-flight campaigns via their RunControl drain tokens. Safe from any
  /// thread (majcd calls it from its signal-wait thread). Idempotent.
  void begin_shutdown();

  /// begin_shutdown() + join accept/connection threads + unlink socket.
  void stop();

  ServeStats stats() const;
  const ServerConfig& config() const { return cfg_; }

private:
  struct Conn;

  void accept_loop();
  void serve_connection(Conn* conn);
  /// One campaign request end-to-end; returns false when the connection
  /// must close (peer gone / stream unrecoverable).
  bool handle_campaign(Conn* conn, const JValue& req);
  bool send_error(Conn* conn, u64 id, const char* code,
                  std::string_view message);

  // Admission control. Returns kAdmitted after acquiring a slot (possibly
  // blocking in the bounded queue), or the structured rejection.
  enum class Admit : u8 { kAdmitted, kOverloaded, kDraining };
  Admit admit();
  void release();

  ServerConfig cfg_;
  KernelCache cache_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  unsigned running_ = 0;
  unsigned queued_ = 0;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  // Live drain tokens of in-flight campaigns (owned by the executing
  // connection; registered here so begin_shutdown can reach them).
  mutable std::mutex controls_mu_;
  std::vector<farm::RunControl*> active_controls_;

  std::atomic<u64> campaigns_served_{0};
  std::atomic<u64> jobs_served_{0};
  std::atomic<u64> errors_sent_{0};
};

} // namespace majc::serve
