// Client side of the majc-req-v1 protocol: used by majc_load, the serve
// tests and anything else that wants a campaign served by majcd.
//
// The low-level Client is a thin frame pump over one connection (so the
// adversarial tests can also speak *broken* protocol through the same
// socket helpers); run_campaign() is the well-behaved driver of the full
// ack -> job* -> campaign-header -> raw-payload sequence.
#pragma once

#include <string>
#include <vector>

#include "src/serve/proto.h"

namespace majc::serve {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& socket_path, std::string* err);
  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send one frame; false on a broken connection.
  bool send(std::string_view payload);
  /// Receive one frame (up to `max_bytes`); false on EOF/error.
  bool recv(std::string* payload, u64 max_bytes = 256u << 20);

private:
  int fd_ = -1;
};

/// One job summary frame from a campaign stream.
struct JobSummary {
  u64 index = 0;
  std::string kernel;
  std::string mode;
  u64 iteration = 0;
  bool valid = false;
  bool halted = false;
  u64 arch_digest = 0;
  std::string failure_class;
};

/// Everything a campaign request streamed back.
struct CampaignReply {
  bool ok = false;           // full sequence received
  bool acked = false;        // admission ack seen (even if a later error)
  std::string error_code;    // non-empty when the server answered `error`
  std::string error_message;
  std::vector<JobSummary> jobs;
  u64 failures = 0;
  std::string campaign;      // the raw majc-farm-v1 payload, byte-exact
};

/// Drive one campaign request to completion. Returns false only on
/// transport failure (err filled); a structured server error still returns
/// true with reply->ok == false and the code/message captured.
bool run_campaign(Client& c, const CampaignRequest& req, CampaignReply* reply,
                  std::string* err);

/// Request + parse the daemon's stats frame.
bool fetch_stats(Client& c, u64 id, ServeStats* out, std::string* err);

/// Ping/pong round trip (liveness probe).
bool ping(Client& c, u64 id, std::string* err);

} // namespace majc::serve
