// Checkpoint serialization: primitives, the header, and the save/restore
// definitions of every component (declared as members in the components'
// own headers so they can reach private state; gathered here so the full
// format lives in one translation unit, in serialization order).
#include "src/support/checkpoint.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/image.h"
#include "src/sim/functional_sim.h"
#include "src/soc/chip.h"
#include "src/soc/config.h"
#include "src/support/trap.h"

namespace majc::ckpt {

// ---------------------------------------------------------------- primitives

void Writer::put_u16(u16 v) {
  put_u8(static_cast<u8>(v));
  put_u8(static_cast<u8>(v >> 8));
}

void Writer::put_u32(u32 v) {
  put_u16(static_cast<u16>(v));
  put_u16(static_cast<u16>(v >> 16));
}

void Writer::put_u64(u64 v) {
  put_u32(static_cast<u32>(v));
  put_u32(static_cast<u32>(v >> 32));
}

void Writer::put_f64(double v) { put_u64(std::bit_cast<u64>(v)); }

void Writer::put_bytes(std::span<const u8> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::put_tag(const char (&tag)[5]) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<u8>(tag[i]));
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw Error("checkpoint: truncated (short read)");
}

u8 Reader::get_u8() {
  need(1);
  return data_[pos_++];
}

u16 Reader::get_u16() {
  const u16 lo = get_u8();
  return static_cast<u16>(lo | (u16{get_u8()} << 8));
}

u32 Reader::get_u32() {
  const u32 lo = get_u16();
  return lo | (u32{get_u16()} << 16);
}

u64 Reader::get_u64() {
  const u64 lo = get_u32();
  return lo | (u64{get_u32()} << 32);
}

double Reader::get_f64() { return std::bit_cast<double>(get_u64()); }

void Reader::get_bytes(std::span<u8> out) {
  need(out.size());
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
              out.begin());
  pos_ += out.size();
}

std::string Reader::get_string() {
  const u64 n = get_u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_,
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void Reader::expect_tag(const char (&tag)[5]) {
  char got[5] = {};
  for (int i = 0; i < 4; ++i) got[i] = static_cast<char>(get_u8());
  if (std::string_view(got, 4) != std::string_view(tag, 4))
    throw Error(std::string("checkpoint: section tag mismatch (expected '") +
                tag + "', found '" + got + "')");
}

// -------------------------------------------------------------- fingerprints

namespace {

constexpr u64 kFnvOffset = 1469598103934665603ull;
constexpr u64 kFnvPrime = 1099511628211ull;

void fnv_bytes(u64& h, std::span<const u8> bytes) {
  for (u8 b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
}

void fnv_u64(u64& h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<u8>(v >> (8 * i));
    h *= kFnvPrime;
  }
}

void fnv_f64(u64& h, double v) { fnv_u64(h, std::bit_cast<u64>(v)); }

} // namespace

u64 config_fingerprint(const TimingConfig& c) {
  u64 h = kFnvOffset;
  fnv_u64(h, c.icache_bytes);
  fnv_u64(h, c.icache_ways);
  fnv_u64(h, c.perfect_icache);
  fnv_u64(h, c.dcache_bytes);
  fnv_u64(h, c.dcache_ways);
  fnv_u64(h, c.dcache_dual_ported);
  fnv_u64(h, c.perfect_dcache);
  fnv_u64(h, c.line_bytes);
  fnv_u64(h, c.load_to_use);
  fnv_u64(h, c.load_buffers);
  fnv_u64(h, c.store_buffers);
  fnv_u64(h, c.mshrs);
  fnv_u64(h, c.nonblocking_loads);
  fnv_u64(h, c.prefetch_enabled);
  fnv_u64(h, c.dram_latency);
  fnv_u64(h, c.dram_page_hit_latency);
  fnv_u64(h, c.dram_banks);
  fnv_f64(h, c.dram_bytes_per_cycle);
  fnv_u64(h, c.crossbar_hop);
  fnv_u64(h, c.bpred_enabled);
  fnv_u64(h, c.bpred_entries);
  fnv_u64(h, c.bpred_history_bits);
  fnv_u64(h, c.mispredict_penalty);
  fnv_u64(h, c.jump_penalty);
  fnv_u64(h, c.hw_threads);
  fnv_u64(h, c.mt_switch_threshold);
  fnv_u64(h, c.mt_switch_penalty);
  fnv_u64(h, c.full_bypass);
  fnv_u64(h, c.wb_delay);
  fnv_f64(h, c.pci_bytes_per_cycle);
  fnv_f64(h, c.upa_bytes_per_cycle);
  fnv_u64(h, c.nupa_fifo_bytes);
  fnv_u64(h, c.trap_div_zero);
  fnv_u64(h, c.trap_entry_penalty);
  fnv_u64(h, c.dcache_disabled_ways);
  fnv_u64(h, c.icache_disabled_ways);
  fnv_u64(h, c.watchdog_cycles);
  fnv_u64(h, c.faults.seed);
  fnv_f64(h, c.faults.dram_correctable_rate);
  fnv_f64(h, c.faults.dram_uncorrectable_rate);
  fnv_u64(h, c.faults.ecc_enabled);
  fnv_u64(h, static_cast<u64>(c.faults.mc_policy));
  fnv_f64(h, c.faults.fill_parity_rate);
  fnv_u64(h, c.faults.max_fill_retries);
  fnv_f64(h, c.faults.xbar_delay_rate);
  fnv_u64(h, c.faults.xbar_delay_cycles);
  fnv_f64(h, c.faults.xbar_drop_rate);
  return h;
}

u64 image_hash(const masm::Image& img) {
  u64 h = kFnvOffset;
  for (u32 w : img.code) fnv_u64(h, w);
  fnv_bytes(h, img.data);
  fnv_u64(h, img.code_base);
  fnv_u64(h, img.data_base);
  fnv_u64(h, img.entry);
  return h;
}

// ------------------------------------------------------------------- header

namespace {

void write_header(Writer& w, Mode mode, u64 cfg_fp, u64 img_hash) {
  for (char c : kMagic) w.put_u8(static_cast<u8>(c));
  w.put_u32(kVersion);
  w.put_u8(static_cast<u8>(mode));
  w.put_u64(cfg_fp);
  w.put_u64(img_hash);
}

Mode read_header_common(Reader& r) {
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.get_u8());
  if (std::string_view(magic, 8) != std::string_view(kMagic, 8))
    throw Error("checkpoint: bad magic (not a MAJC checkpoint file)");
  const u32 version = r.get_u32();
  if (version != kVersion)
    throw Error("checkpoint: version " + std::to_string(version) +
                " not readable by this build (expected " +
                std::to_string(kVersion) + ")");
  return static_cast<Mode>(r.get_u8());
}

void check_header(Reader& r, Mode mode, u64 cfg_fp, u64 img_hash) {
  const Mode got = read_header_common(r);
  if (got != mode)
    throw Error(std::string("checkpoint: mode mismatch (file is '") +
                mode_name(got) + "', simulator is '" + mode_name(mode) + "')");
  if (r.get_u64() != cfg_fp)
    throw Error("checkpoint: TimingConfig mismatch — a checkpoint resumes "
                "only under the configuration that produced it");
  if (r.get_u64() != img_hash)
    throw Error("checkpoint: program image mismatch — a checkpoint resumes "
                "only with the image that produced it");
}

} // namespace

Mode peek_mode(std::span<const u8> bytes) {
  Reader r(bytes);
  return read_header_common(r);
}

void write_checkpoint_file(const std::string& path,
                           std::span<const u8> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("checkpoint: cannot open '" + path + "' for writing");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw Error("checkpoint: write to '" + path + "' failed");
}

std::vector<u8> read_checkpoint_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw Error("checkpoint: cannot open '" + path + "'");
  const std::streamsize n = f.tellg();
  f.seekg(0);
  std::vector<u8> bytes(static_cast<std::size_t>(n));
  f.read(reinterpret_cast<char*>(bytes.data()), n);
  if (!f) throw Error("checkpoint: read of '" + path + "' failed");
  return bytes;
}

} // namespace majc::ckpt

// ------------------------------------------------- shared struct serializers

namespace majc {
namespace {

void save_trap(ckpt::Writer& w, const Trap& t) {
  w.put_u8(static_cast<u8>(t.code));
  w.put_u32(t.cpu);
  w.put_u64(t.pc);
  w.put_u64(t.cycle);
  w.put_u8(static_cast<u8>(t.unit));
  w.put_string(t.detail);
  w.put_u32(t.value);
  w.put_bool(t.deliverable);
}

void restore_trap(ckpt::Reader& r, Trap& t) {
  t.code = static_cast<TrapCause>(r.get_u8());
  t.cpu = r.get_u32();
  t.pc = r.get_u64();
  t.cycle = r.get_u64();
  t.unit = static_cast<TimeUnit>(r.get_u8());
  t.detail = r.get_string();
  t.value = r.get_u32();
  t.deliverable = r.get_bool();
}

void save_state(ckpt::Writer& w, const sim::CpuState& st) {
  for (u32 v : st.regs) w.put_u32(v);
  w.put_u64(st.pc);
  w.put_bool(st.halted);
  w.put_u64(st.tvec);
  w.put_u32(st.tcause);
  w.put_u64(st.tpc);
  w.put_u64(st.tnpc);
  w.put_u32(st.tdetail);
  w.put_bool(st.in_trap);
}

void restore_state(ckpt::Reader& r, sim::CpuState& st) {
  for (u32& v : st.regs) v = r.get_u32();
  st.pc = r.get_u64();
  st.halted = r.get_bool();
  st.tvec = r.get_u64();
  st.tcause = r.get_u32();
  st.tpc = r.get_u64();
  st.tnpc = r.get_u64();
  st.tdetail = r.get_u32();
  st.in_trap = r.get_bool();
}

// Flat memory, sparse: all-zero 4 KB pages are elided; a ~0 page index
// terminates the page list. Restore zero-fills first, so the elided pages
// come back exactly as written.
constexpr std::size_t kPageBytes = 4096;

void save_memory(ckpt::Writer& w, const sim::FlatMemory& m) {
  w.put_tag("MEM ");
  const std::span<const u8> raw = m.raw();
  w.put_u64(raw.size());
  for (std::size_t p = 0; p * kPageBytes < raw.size(); ++p) {
    const std::size_t off = p * kPageBytes;
    const std::span<const u8> page =
        raw.subspan(off, std::min(kPageBytes, raw.size() - off));
    if (std::all_of(page.begin(), page.end(), [](u8 b) { return b == 0; }))
      continue;
    w.put_u64(p);
    w.put_u32(static_cast<u32>(page.size()));
    w.put_bytes(page);
  }
  w.put_u64(~u64{0});
}

void restore_memory(ckpt::Reader& r, sim::FlatMemory& m) {
  r.expect_tag("MEM ");
  const std::span<u8> raw = m.raw();
  if (r.get_u64() != raw.size())
    throw Error("checkpoint: memory size mismatch");
  std::fill(raw.begin(), raw.end(), u8{0});
  for (;;) {
    const u64 p = r.get_u64();
    if (p == ~u64{0}) break;
    const u32 n = r.get_u32();
    const std::size_t off = static_cast<std::size_t>(p) * kPageBytes;
    if (off + n > raw.size() || n > kPageBytes)
      throw Error("checkpoint: memory page out of range");
    r.get_bytes(raw.subspan(off, n));
  }
}

void save_cpu_stats(ckpt::Writer& w, const cpu::CpuStats& s) {
  w.put_u64(s.packets);
  w.put_u64(s.instrs);
  s.width_hist.save(w);
  w.put_u64(s.cond_branches);
  w.put_u64(s.taken_branches);
  w.put_u64(s.mispredicts);
  w.put_u64(s.jumps);
  w.put_u64(s.thread_switches);
  w.put_u64(s.traps_delivered);
  for (u64 c : s.stalls.counts) w.put_u64(c);
}

void restore_cpu_stats(ckpt::Reader& r, cpu::CpuStats& s) {
  s.packets = r.get_u64();
  s.instrs = r.get_u64();
  s.width_hist.restore(r);
  s.cond_branches = r.get_u64();
  s.taken_branches = r.get_u64();
  s.mispredicts = r.get_u64();
  s.jumps = r.get_u64();
  s.thread_switches = r.get_u64();
  s.traps_delivered = r.get_u64();
  for (u64& c : s.stalls.counts) c = r.get_u64();
}

} // namespace

// Histogram (majc namespace).
void Histogram::save(ckpt::Writer& w) const {
  w.put_u64(buckets_.size());
  for (u64 b : buckets_) w.put_u64(b);
}

void Histogram::restore(ckpt::Reader& r) {
  if (r.get_u64() != buckets_.size())
    throw Error("checkpoint: histogram bucket-count mismatch");
  for (u64& b : buckets_) b = r.get_u64();
}

} // namespace majc

// ------------------------------------------------------------ memory system

namespace majc::mem {

void Cache::save(ckpt::Writer& w) const {
  w.put_tag("CCHE");
  w.put_u32(disabled_ways_);
  w.put_u64(lines_.size());
  for (const Line& l : lines_) {
    w.put_u64(l.tag);
    w.put_bool(l.valid);
    w.put_bool(l.dirty);
    w.put_u32(l.lru);
  }
  w.put_u64(hits_);
  w.put_u64(misses_);
  w.put_u64(writebacks_);
}

void Cache::restore(ckpt::Reader& r) {
  r.expect_tag("CCHE");
  disabled_ways_ = r.get_u32();
  if (r.get_u64() != lines_.size())
    throw Error("checkpoint: cache geometry mismatch (" + cfg_.name + ")");
  for (Line& l : lines_) {
    l.tag = r.get_u64();
    l.valid = r.get_bool();
    l.dirty = r.get_bool();
    l.lru = r.get_u32();
  }
  hits_ = r.get_u64();
  misses_ = r.get_u64();
  writebacks_ = r.get_u64();
}

void Dram::save(ckpt::Writer& w) const {
  w.put_tag("DRAM");
  w.put_u64(banks_.size());
  for (const Bank& b : banks_) {
    w.put_u64(b.busy);
    w.put_u64(b.open_page);
  }
  w.put_u64(channel_free_);
  w.put_u64(requests_);
  w.put_u64(bytes_);
  w.put_u64(busy_cycles_);
}

void Dram::restore(ckpt::Reader& r) {
  r.expect_tag("DRAM");
  if (r.get_u64() != banks_.size())
    throw Error("checkpoint: DRAM bank-count mismatch");
  for (Bank& b : banks_) {
    b.busy = r.get_u64();
    b.open_page = r.get_u64();
  }
  channel_free_ = r.get_u64();
  requests_ = r.get_u64();
  bytes_ = r.get_u64();
  busy_cycles_ = r.get_u64();
}

void Crossbar::save(ckpt::Writer& w) const {
  w.put_tag("XBAR");
  for (Cycle f : free_) w.put_u64(f);
  for (u64 b : bytes_) w.put_u64(b);
  w.put_u64(transfers_);
  w.put_u64(delayed_grants_);
  w.put_u64(dropped_grants_);
}

void Crossbar::restore(ckpt::Reader& r) {
  r.expect_tag("XBAR");
  for (Cycle& f : free_) f = r.get_u64();
  for (u64& b : bytes_) b = r.get_u64();
  transfers_ = r.get_u64();
  delayed_grants_ = r.get_u64();
  dropped_grants_ = r.get_u64();
}

void Lsu::save(ckpt::Writer& w) const {
  w.put_tag("LSU ");
  w.put_u64(fills_);
  // The buffers retire entries lazily; serialize only entries live past the
  // retirement boundary so the byte stream matches the eagerly-pruned
  // representation (entries at or before prune_now_ were architecturally
  // retired — keeping them in memory is purely a hot-path optimization).
  u64 n_loads = 0;
  for (Cycle c : loads_) n_loads += c > prune_now_ ? 1 : 0;
  w.put_u64(n_loads);
  for (Cycle c : loads_) {
    if (c > prune_now_) w.put_u64(c);
  }
  u64 n_stores = 0;
  for (const StoreEntry& s : stores_) n_stores += s.done > prune_now_ ? 1 : 0;
  w.put_u64(n_stores);
  for (const StoreEntry& s : stores_) {
    if (s.done <= prune_now_) continue;
    w.put_u64(s.addr);
    w.put_u32(s.bytes);
    w.put_u64(s.done);
  }
  // MSHRs sorted by line address: internal (insertion) order must not leak
  // into the byte stream (determinism rule).
  std::vector<std::pair<Addr, Cycle>> mshrs;
  mshrs.reserve(mshr_.size());
  for (const MshrEntry& e : mshr_) {
    if (e.done > prune_now_) mshrs.emplace_back(e.line, e.done);
  }
  std::sort(mshrs.begin(), mshrs.end());
  w.put_u64(mshrs.size());
  for (const auto& [line, done] : mshrs) {
    w.put_u64(line);
    w.put_u64(done);
  }
  w.put_u64(blocked_until_);
  for (const WcEntry& e : wc_) {
    w.put_u64(e.line);
    w.put_u64(e.opened);
  }
  w.put_u64(wc_done_);
  for (u64 c : counters_) w.put_u64(c);
}

void Lsu::restore(ckpt::Reader& r) {
  r.expect_tag("LSU ");
  fills_ = r.get_u64();
  loads_.resize(r.get_u64());
  for (Cycle& c : loads_) c = r.get_u64();
  stores_.resize(r.get_u64());
  for (StoreEntry& s : stores_) {
    s.addr = r.get_u64();
    s.bytes = r.get_u32();
    s.done = r.get_u64();
  }
  mshr_.clear();
  const u64 n_mshrs = r.get_u64();
  for (u64 i = 0; i < n_mshrs; ++i) {
    const Addr line = r.get_u64();
    const Cycle done = r.get_u64();
    mshr_.push_back({line, done});
  }
  blocked_until_ = r.get_u64();
  for (WcEntry& e : wc_) {
    e.line = r.get_u64();
    e.opened = r.get_u64();
  }
  wc_done_ = r.get_u64();
  for (u64& c : counters_) c = r.get_u64();
  rebuild_watermarks();
}

void EccMemory::save(ckpt::Writer& w) const {
  w.put_tag("ECC ");
  std::vector<Addr> healed(healed_.begin(), healed_.end());
  std::sort(healed.begin(), healed.end());
  w.put_u64(healed.size());
  for (Addr a : healed) w.put_u64(a);
  w.put_u64(corrected_);
  w.put_u64(machine_checks_);
  w.put_u64(retried_);
  w.put_u64(poisoned_);
  w.put_u64(silent_corruptions_);
}

void EccMemory::restore(ckpt::Reader& r) {
  r.expect_tag("ECC ");
  healed_.clear();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) healed_.insert(r.get_u64());
  corrected_ = r.get_u64();
  machine_checks_ = r.get_u64();
  retried_ = r.get_u64();
  poisoned_ = r.get_u64();
  silent_corruptions_ = r.get_u64();
}

void MemorySystem::save(ckpt::Writer& w) const {
  w.put_tag("MSYS");
  xbar_.save(w);
  dram_.save(w);
  dcache_.save(w);
  for (const Cache& ic : icaches_) ic.save(w);
  w.put_u64(dport_free_);
  for (const auto& lsu : lsus_) lsu->save(w);
  w.put_u64(ifetch_fills_);
  w.put_u64(ifetch_parity_retries_);
  w.put_u64(ifetch_machine_checks_);
}

void MemorySystem::restore(ckpt::Reader& r) {
  r.expect_tag("MSYS");
  xbar_.restore(r);
  dram_.restore(r);
  dcache_.restore(r);
  for (Cache& ic : icaches_) ic.restore(r);
  dport_free_ = r.get_u64();
  for (auto& lsu : lsus_) lsu->restore(r);
  ifetch_fills_ = r.get_u64();
  ifetch_parity_retries_ = r.get_u64();
  ifetch_machine_checks_ = r.get_u64();
}

} // namespace majc::mem

// --------------------------------------------------------------------- cpu

namespace majc::cpu {

void Scoreboard::save(ckpt::Writer& w) const {
  for (const Entry& e : entries_) {
    w.put_u64(e.done);
    w.put_u8(e.producer);
  }
}

void Scoreboard::restore(ckpt::Reader& r) {
  for (Entry& e : entries_) {
    e.done = r.get_u64();
    e.producer = r.get_u8();
  }
}

void BranchPredictor::save(ckpt::Writer& w) const {
  w.put_tag("BPRD");
  w.put_u64(counters_.size());
  w.put_bytes(counters_);
  w.put_u32(ghr_);
  w.put_u64(lookups_);
  w.put_u64(correct_);
}

void BranchPredictor::restore(ckpt::Reader& r) {
  r.expect_tag("BPRD");
  if (r.get_u64() != counters_.size())
    throw Error("checkpoint: branch-predictor size mismatch");
  r.get_bytes(counters_);
  ghr_ = r.get_u32();
  lookups_ = r.get_u64();
  correct_ = r.get_u64();
}

void CycleCpu::save(ckpt::Writer& w) const {
  w.put_tag("CPU ");
  w.put_u32(active_);
  w.put_u64(current_cycle_);
  w.put_u64(now_cache_);
  w.put_u64(last_progress_);
  w.put_string(console_);
  save_cpu_stats(w, stats_);
  bpred_.save(w);
  for (const auto& fu : fu_busy_)
    for (Cycle c : fu) w.put_u64(c);
  w.put_bool(trap_.has_value());
  if (trap_) save_trap(w, *trap_);
  save_trap(w, last_trap_);
  w.put_u64(threads_.size());
  for (const ThreadCtx& th : threads_) {
    save_state(w, th.state);
    th.sb.save(w);
    w.put_u64(th.ready);
  }
}

void CycleCpu::restore(ckpt::Reader& r) {
  r.expect_tag("CPU ");
  active_ = r.get_u32();
  current_cycle_ = r.get_u64();
  now_cache_ = r.get_u64();
  last_progress_ = r.get_u64();
  console_ = r.get_string();
  restore_cpu_stats(r, stats_);
  bpred_.restore(r);
  for (auto& fu : fu_busy_)
    for (Cycle& c : fu) c = r.get_u64();
  if (r.get_bool()) {
    Trap t;
    restore_trap(r, t);
    trap_ = std::move(t);
  } else {
    trap_.reset();
  }
  restore_trap(r, last_trap_);
  if (r.get_u64() != threads_.size())
    throw Error("checkpoint: hardware-thread count mismatch");
  for (ThreadCtx& th : threads_) {
    restore_state(r, th.state);
    th.sb.restore(r);
    th.ready = r.get_u64();
    // The packet-index cache is derived state: invalidate it and let the
    // next step() re-resolve through the pc -> index map.
    th.idx = sim::kNoPacketIndex;
    th.idx_pc = th.state.pc;
  }
  env_.thread_id = active_;
}

void CycleSim::save(ckpt::Writer& w) const {
  save_memory(w, mem_);
  ms_->save(w);
  eccmem_->save(w);
  cpu_->save(w);
}

void CycleSim::restore(ckpt::Reader& r) {
  restore_memory(r, mem_);
  ms_->restore(r);
  eccmem_->restore(r);
  cpu_->restore(r);
}

} // namespace majc::cpu

// --------------------------------------------------------------------- sim

namespace majc::sim {

void FunctionalSim::save(ckpt::Writer& w) const {
  w.put_tag("FSIM");
  save_memory(w, mem_);
  save_state(w, state_);
  w.put_string(console_);
  w.put_u64(packets_run_);
  w.put_u64(instrs_run_);
  w.put_u64(traps_delivered_);
  save_trap(w, last_trap_);
  w.put_bool(trap_div_zero_);
}

void FunctionalSim::restore(ckpt::Reader& r) {
  r.expect_tag("FSIM");
  restore_memory(r, mem_);
  restore_state(r, state_);
  console_ = r.get_string();
  packets_run_ = r.get_u64();
  instrs_run_ = r.get_u64();
  traps_delivered_ = r.get_u64();
  restore_trap(r, last_trap_);
  trap_div_zero_ = r.get_bool();
}

} // namespace majc::sim

// --------------------------------------------------------------------- soc

namespace majc::soc {

void Fifo::save(ckpt::Writer& w) const {
  w.put_tag("FIFO");
  w.put_u32(capacity_);
  w.put_u64(bytes_.size());
  for (u8 b : bytes_) w.put_u8(b);
  w.put_u64(pushed_);
}

void Fifo::restore(ckpt::Reader& r) {
  r.expect_tag("FIFO");
  if (r.get_u32() != capacity_)
    throw Error("checkpoint: FIFO capacity mismatch");
  bytes_.clear();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) bytes_.push_back(r.get_u8());
  pushed_ = r.get_u64();
}

void IoPort::save(ckpt::Writer& w) const {
  w.put_u64(bytes_in_);
  w.put_u64(bytes_out_);
}

void IoPort::restore(ckpt::Reader& r) {
  bytes_in_ = r.get_u64();
  bytes_out_ = r.get_u64();
}

void Dte::save(ckpt::Writer& w) const {
  w.put_u64(bytes_moved_);
  w.put_u64(descriptors_);
}

void Dte::restore(ckpt::Reader& r) {
  bytes_moved_ = r.get_u64();
  descriptors_ = r.get_u64();
}

void Majc5200::save(ckpt::Writer& w) const {
  w.put_tag("CHIP");
  save_memory(w, mem_);
  ms_.save(w);
  eccmem_.save(w);
  for (const auto& cpu : cpus_) cpu->save(w);
  dte_.save(w);
  nupa_.save(w);
  nupa_.fifo().save(w);
  supa_.save(w);
  pci_.save(w);
}

void Majc5200::restore(ckpt::Reader& r) {
  r.expect_tag("CHIP");
  restore_memory(r, mem_);
  ms_.restore(r);
  eccmem_.restore(r);
  for (auto& cpu : cpus_) cpu->restore(r);
  dte_.restore(r);
  nupa_.restore(r);
  nupa_.fifo().restore(r);
  supa_.restore(r);
  pci_.restore(r);
}

} // namespace majc::soc

// ------------------------------------------------------ top-level overloads

namespace majc::ckpt {

namespace {

void fnv_state(u64& h, const sim::CpuState& st) {
  for (u32 v : st.regs) fnv_u64(h, v);
  fnv_u64(h, st.pc);
}

} // namespace

u64 arch_digest(const sim::FunctionalSim& s) {
  u64 h = kFnvOffset;
  fnv_bytes(h, s.memory().raw());
  fnv_state(h, s.state());
  return h;
}

u64 arch_digest(const cpu::CycleSim& s) {
  u64 h = kFnvOffset;
  fnv_bytes(h, s.memory().raw());
  for (u32 t = 0; t < s.cpu().hw_threads(); ++t) fnv_state(h, s.cpu().state(t));
  return h;
}

u64 arch_digest(const soc::Majc5200& s) {
  u64 h = kFnvOffset;
  fnv_bytes(h, s.memory().raw());
  for (u32 c = 0; c < soc::Majc5200::kNumCpus; ++c)
    for (u32 t = 0; t < s.cpu(c).hw_threads(); ++t)
      fnv_state(h, s.cpu(c).state(t));
  return h;
}

std::vector<u8> save_checkpoint(const sim::FunctionalSim& s) {
  Writer w;
  write_header(w, Mode::kFunctional, 0, image_hash(s.program().image()));
  s.save(w);
  return w.take();
}

std::vector<u8> save_checkpoint(const cpu::CycleSim& s) {
  Writer w;
  write_header(w, Mode::kCycle, config_fingerprint(s.memsys().config()),
               image_hash(s.program().image()));
  s.save(w);
  return w.take();
}

std::vector<u8> save_checkpoint(const soc::Majc5200& s) {
  Writer w;
  write_header(w, Mode::kChip, config_fingerprint(s.memsys().config()),
               image_hash(s.program().image()));
  s.save(w);
  return w.take();
}

void restore_checkpoint(sim::FunctionalSim& s, std::span<const u8> bytes) {
  Reader r(bytes);
  check_header(r, Mode::kFunctional, 0, image_hash(s.program().image()));
  s.restore(r);
}

void restore_checkpoint(cpu::CycleSim& s, std::span<const u8> bytes) {
  Reader r(bytes);
  check_header(r, Mode::kCycle, config_fingerprint(s.memsys().config()),
               image_hash(s.program().image()));
  s.restore(r);
}

void restore_checkpoint(soc::Majc5200& s, std::span<const u8> bytes) {
  Reader r(bytes);
  check_header(r, Mode::kChip, config_fingerprint(s.memsys().config()),
               image_hash(s.program().image()));
  s.restore(r);
}

} // namespace majc::ckpt
