// Error reporting for the MAJC-5200 model.
//
// Programmer/API misuse and unrecoverable model faults throw majc::Error.
// User-facing input errors (assembler source problems) are reported through
// masm::Diagnostics instead so callers can collect several at once.
#pragma once

#include <stdexcept>
#include <string>

namespace majc {

class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& what) { throw Error(what); }

inline void require(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

// Literal-message overloads: hot-path checks (InlineVec, decode) pass string
// literals, and the reference overload would materialize a std::string
// temporary on every call, success or not. These defer construction to the
// failure path.
[[noreturn]] inline void fail(const char* what) { throw Error(what); }

inline void require(bool ok, const char* what) {
  if (!ok) [[unlikely]] fail(what);
}

} // namespace majc
