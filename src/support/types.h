// Fundamental fixed-width type aliases used across the MAJC-5200 model.
#pragma once

#include <cstdint>
#include <cstddef>

namespace majc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Byte address in the simulated physical address space.
using Addr = u64;

/// Simulated core clock cycle count (500 MHz in MAJC-5200).
using Cycle = u64;

/// MAJC-5200 core clock, used to convert cycle counts to wall-clock rates.
inline constexpr double kClockHz = 500e6;

/// Cache line / group-load granule / prefetch block size in bytes.
inline constexpr u32 kLineBytes = 32;

} // namespace majc
