#include "src/support/stats.h"

#include <sstream>

namespace majc {

std::string CounterSet::to_string() const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters_) width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << std::string(width - name.size() + 2, ' ') << value << '\n';
  }
  return os.str();
}

u64 Histogram::total() const {
  u64 t = 0;
  for (u64 b : buckets_) t += b;
  return t;
}

double Histogram::mean() const {
  const u64 t = total();
  if (t == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    weighted += static_cast<double>(i) * static_cast<double>(buckets_[i]);
  }
  return weighted / static_cast<double>(t);
}

void RunningStat::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  ++n_;
}

} // namespace majc
