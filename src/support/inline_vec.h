// Fixed-capacity inline vector for hot simulator paths (no heap traffic).
#pragma once

#include <array>
#include <cstddef>

#include "src/support/error.h"

namespace majc {

template <typename T, std::size_t N>
class InlineVec {
public:
  void push_back(const T& v) {
    require(size_ < N, "InlineVec overflow");
    data_[size_++] = v;
  }
  void clear() { size_ = 0; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_.data(); }
  T* end() { return data_.data() + size_; }
  const T* begin() const { return data_.data(); }
  const T* end() const { return data_.data() + size_; }

private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

} // namespace majc
