// Deterministic pseudo-random generation for workload/data synthesis.
//
// All stimulus in tests and benchmarks is produced from seeded SplitMix64
// streams so every run of every experiment is bit-reproducible.
#pragma once

#include "src/support/types.h"

namespace majc {

class SplitMix64 {
public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  constexpr u32 next_u32() { return static_cast<u32>(next() >> 32); }

  /// Uniform in [0, bound) without modulo bias for small bounds.
  constexpr u32 next_below(u32 bound) {
    return bound == 0 ? 0 : static_cast<u32>((u64{next_u32()} * bound) >> 32);
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr i32 next_range(i32 lo, i32 hi) {
    return lo + static_cast<i32>(next_below(static_cast<u32>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

private:
  u64 state_;
};

} // namespace majc
