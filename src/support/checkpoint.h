// Deterministic checkpoint / restore of full machine state (DESIGN.md §8).
//
// A checkpoint is a versioned little-endian binary image of everything a
// simulator needs to resume cycle-for-cycle identically: register files and
// trap-unit state, the flat memory (sparse: all-zero 4 KB pages are
// elided), cache tags + LRU, LSU buffers and MSHRs, branch-predictor
// counters and history, fault-plan event indices (fill / grant counters),
// cycle counters and statistics. Serialization order is fixed — unordered
// containers are emitted sorted by key — so saving the same state twice
// produces byte-identical files.
//
// Format (version 1):
//
//   magic   8 bytes   "MAJCCKPT"
//   version u32       kVersion
//   mode    u8        Mode (functional / cycle / chip)
//   config  u64       config_fingerprint(TimingConfig) — 0 for functional
//   image   u64       image_hash(masm::Image)
//   body              tagged component sections (see checkpoint.cpp)
//
// Compatibility rule: a checkpoint restores only into a simulator built
// from the SAME image with the SAME TimingConfig (including FaultConfig)
// and the same mode; version bumps are never read across. Restore throws
// majc::Error on any mismatch rather than guessing — resuming under a
// different configuration would silently produce different timing.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/support/error.h"
#include "src/support/types.h"

namespace majc {
struct TimingConfig;
}
namespace majc::masm {
struct Image;
}
namespace majc::sim {
class FunctionalSim;
}
namespace majc::cpu {
class CycleSim;
}
namespace majc::soc {
class Majc5200;
}

namespace majc::ckpt {

inline constexpr char kMagic[8] = {'M', 'A', 'J', 'C', 'C', 'K', 'P', 'T'};
inline constexpr u32 kVersion = 1;

/// Which simulator wrote the checkpoint. A checkpoint restores only into
/// the same mode (the three simulators hold different state).
enum class Mode : u8 {
  kFunctional = 0,
  kCycle = 1,
  kChip = 2,
};

constexpr const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kFunctional: return "functional";
    case Mode::kCycle: return "cycle";
    case Mode::kChip: return "chip";
  }
  return "?";
}

/// Append-only little-endian byte sink. Primitive names are put_* / get_*
/// (not overloads named after the types) so the u8/u16/... type aliases
/// stay usable inside the class.
class Writer {
public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v);  // bit-exact (bit_cast to u64)
  void put_bytes(std::span<const u8> v);
  void put_string(const std::string& s);
  /// Four-character section tag; Reader::expect_tag verifies it, making a
  /// layout drift a loud error instead of silently misparsed state.
  void put_tag(const char (&tag)[5]);

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

private:
  std::vector<u8> buf_;
};

/// Bounds-checked little-endian reader over a checkpoint image. Any
/// overrun or tag mismatch throws majc::Error (truncated / corrupt file).
class Reader {
public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  u8 get_u8();
  u16 get_u16();
  u32 get_u32();
  u64 get_u64();
  bool get_bool() { return get_u8() != 0; }
  double get_f64();
  void get_bytes(std::span<u8> out);
  std::string get_string();
  void expect_tag(const char (&tag)[5]);

  std::size_t remaining() const { return data_.size() - pos_; }

private:
  void need(std::size_t n) const;

  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

/// FNV-1a fingerprint over every TimingConfig field (doubles via their bit
/// patterns), including the nested FaultConfig. Guards restore against a
/// run resumed under different timing — see the compatibility rule above.
u64 config_fingerprint(const TimingConfig& cfg);

/// FNV-1a over the image's code, data, bases and entry (symbols excluded:
/// they do not affect execution).
u64 image_hash(const masm::Image& img);

/// FNV-1a digest of architectural outcome (memory contents + registers +
/// pc): two runs that agree here computed the same results. Reported in
/// majc-stats-v1 so a restored run can be compared against an unbroken one.
u64 arch_digest(const sim::FunctionalSim& s);
u64 arch_digest(const cpu::CycleSim& s);
u64 arch_digest(const soc::Majc5200& s);

/// Serialize the full state of a simulator (header + body).
std::vector<u8> save_checkpoint(const sim::FunctionalSim& s);
std::vector<u8> save_checkpoint(const cpu::CycleSim& s);
std::vector<u8> save_checkpoint(const soc::Majc5200& s);

/// Restore into a freshly constructed simulator (same image, same config,
/// same mode). Throws majc::Error on any header mismatch or short read.
void restore_checkpoint(sim::FunctionalSim& s, std::span<const u8> bytes);
void restore_checkpoint(cpu::CycleSim& s, std::span<const u8> bytes);
void restore_checkpoint(soc::Majc5200& s, std::span<const u8> bytes);

/// Mode recorded in a checkpoint header (validates magic + version only).
Mode peek_mode(std::span<const u8> bytes);

/// File helpers (binary, whole-file). Throw majc::Error on I/O failure.
void write_checkpoint_file(const std::string& path,
                           std::span<const u8> bytes);
std::vector<u8> read_checkpoint_file(const std::string& path);

} // namespace majc::ckpt
