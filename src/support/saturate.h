// Saturation arithmetic helpers.
//
// MAJC-5200's SIMD unit supports four saturation modes that can be enabled to
// automatically clamp results (paper §4). The paper does not enumerate the
// modes; we model the four that cover the formats the ISA defines:
//
//   Wrap       — no saturation, results wrap modulo 2^16 (mode 0)
//   Signed16   — clamp to [-32768, 32767]; the natural bound for both 16-bit
//                integers and S.15 / S2.13 fixed point, whose 16-bit
//                encodings span the full two's-complement range (mode 1)
//   Unsigned16 — clamp to [0, 65535] (mode 2)
//   Byte       — clamp to [0, 255]; pixel saturation for video paths (mode 3)
//
// The 2-bit sub-opcode field of SIMD instructions selects the mode.
#pragma once

#include <limits>

#include "src/support/types.h"

namespace majc {

enum class SatMode : u8 {
  kWrap = 0,
  kSigned16 = 1,
  kUnsigned16 = 2,
  kByte = 3,
};

/// Clamp a wide intermediate to the selected 16-bit lane format.
constexpr u16 saturate_lane(i64 v, SatMode mode) {
  switch (mode) {
    case SatMode::kWrap:
      return static_cast<u16>(v);
    case SatMode::kSigned16:
      if (v > 32767) v = 32767;
      if (v < -32768) v = -32768;
      return static_cast<u16>(static_cast<i16>(v));
    case SatMode::kUnsigned16:
      if (v > 65535) v = 65535;
      if (v < 0) v = 0;
      return static_cast<u16>(v);
    case SatMode::kByte:
      if (v > 255) v = 255;
      if (v < 0) v = 0;
      return static_cast<u16>(v);
  }
  return static_cast<u16>(v);
}

/// 32-bit signed saturating add (the scalar SATADD of FU1-3).
constexpr i32 sat_add32(i32 a, i32 b) {
  const i64 s = i64{a} + b;
  if (s > std::numeric_limits<i32>::max()) return std::numeric_limits<i32>::max();
  if (s < std::numeric_limits<i32>::min()) return std::numeric_limits<i32>::min();
  return static_cast<i32>(s);
}

/// 32-bit signed saturating subtract (the scalar SATSUB of FU1-3).
constexpr i32 sat_sub32(i32 a, i32 b) {
  const i64 s = i64{a} - b;
  if (s > std::numeric_limits<i32>::max()) return std::numeric_limits<i32>::max();
  if (s < std::numeric_limits<i32>::min()) return std::numeric_limits<i32>::min();
  return static_cast<i32>(s);
}

/// Clamp a 64-bit intermediate to S.31 (i.e. i32) range.
constexpr i32 saturate_s31(i64 v) {
  if (v > std::numeric_limits<i32>::max()) return std::numeric_limits<i32>::max();
  if (v < std::numeric_limits<i32>::min()) return std::numeric_limits<i32>::min();
  return static_cast<i32>(v);
}

} // namespace majc
