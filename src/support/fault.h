// Seeded, deterministic fault injection for the memory hierarchy.
//
// A FaultPlan answers "does this event fault?" as a pure function of the
// configured seed and the event's identity (line address, fill index, grant
// index), so a faulty run is bit-reproducible and the same line misbehaves
// on every access — the way a real stuck bit or flaky pad does. Consumers:
//
//   - EccMemory (src/mem/ecc.h) asks dram_fault() per touched line on every
//     data read: correctable errors are corrected and counted, uncorrectable
//     ones raise a machine-check trap (or silently corrupt with ECC off).
//   - Lsu::fill_line and MemorySystem::ifetch ask fill_corrupted() per cache
//     fill: a parity-bad fill is refetched from DRDRAM (timing + counter).
//   - Crossbar::transfer asks grant_delay()/grant_dropped() per grant: a
//     delayed grant starts late, a dropped one pays a full re-arbitration.
//
// All rates are per-event probabilities in [0, 1]; the plan is inert (and
// costs one branch) when every rate is zero.
#pragma once

#include "src/support/types.h"

namespace majc {

/// What EccMemory does with an uncorrectable DRAM error (docs/DESIGN.md §8).
enum class MachineCheckPolicy : u8 {
  kFatal = 0,   // raise a non-deliverable machine check: run terminates
                // even if the guest installed a trap handler (PR 1 behavior)
  kRetry = 1,   // re-read: the transient double-bit flip is absent on the
                // retry; counted, the line stays fault-prone
  kPoison = 2,  // scrub the line (rewrite from the architected backing
                // value), invalidate cached copies, count it; subsequent
                // reads are clean
  kDeliver = 3, // raise a deliverable machine check so the guest handler
                // (SETTVEC) decides; fatal if no handler is installed
};

constexpr const char* machine_check_policy_name(MachineCheckPolicy p) {
  switch (p) {
    case MachineCheckPolicy::kFatal: return "fatal";
    case MachineCheckPolicy::kRetry: return "retry";
    case MachineCheckPolicy::kPoison: return "poison";
    case MachineCheckPolicy::kDeliver: return "deliver";
  }
  return "?";
}

struct FaultConfig {
  u64 seed = 0x4d414a43;  // "MAJC"

  // DRAM data faults, decided per 32-byte line for the whole run.
  double dram_correctable_rate = 0.0;    // single-bit: SEC-DED corrects
  double dram_uncorrectable_rate = 0.0;  // double-bit: machine check
  bool ecc_enabled = true;  // false: faults silently corrupt read data
  MachineCheckPolicy mc_policy = MachineCheckPolicy::kFatal;

  // Cache fill corruption (I$ and D$), decided per individual fill.
  double fill_parity_rate = 0.0;
  // A fill is refetched up to this many times; exceeding it raises a
  // machine check instead of spinning until the watchdog fires.
  u32 max_fill_retries = 8;

  // Crossbar grant faults, decided per transfer.
  double xbar_delay_rate = 0.0;
  u32 xbar_delay_cycles = 8;
  double xbar_drop_rate = 0.0;  // dropped grant: full retry after a timeout
};

class FaultPlan {
public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg);

  bool enabled() const { return enabled_; }

  enum class DramFault : u8 { kNone, kCorrectable, kUncorrectable };
  /// Health of one DRAM line (stable for the whole run).
  DramFault dram_fault(Addr line) const;
  /// Deterministic bit index (within `bits`) flipped by a faulty line when
  /// ECC is off.
  u32 flipped_bit(Addr line, u32 bits) const;

  bool fill_corrupted(Addr line, u64 fill_index) const;

  u32 grant_delay(u64 grant_index) const;  // 0 = on-time grant
  bool grant_dropped(u64 grant_index) const;

  const FaultConfig& config() const { return cfg_; }

private:
  u64 mix(u64 stream, u64 event) const;
  static bool decide(u64 hash, double rate);

  FaultConfig cfg_;
  bool enabled_ = false;
};

} // namespace majc
