#include "src/support/fixed_point.h"

#include <algorithm>

namespace majc {

u16 to_fixed(double v, int frac_bits) {
  const double scaled = v * static_cast<double>(1 << frac_bits);
  const double rounded = std::nearbyint(scaled);
  return saturate_lane(static_cast<i64>(std::clamp(rounded, -65536.0, 65536.0)),
                       SatMode::kSigned16);
}

double from_fixed(u16 bits, int frac_bits) {
  return static_cast<double>(static_cast<i16>(bits)) /
         static_cast<double>(1 << frac_bits);
}

u16 fx_mul(u16 a, u16 b, int frac_bits, SatMode mode) {
  const i64 prod = i64{static_cast<i16>(a)} * static_cast<i16>(b);
  return saturate_lane(prod >> frac_bits, mode);
}

u16 fx_madd(u16 acc, u16 a, u16 b, int frac_bits, SatMode mode) {
  const i64 prod = i64{static_cast<i16>(a)} * static_cast<i16>(b);
  const i64 sum = i64{static_cast<i16>(acc)} + (prod >> frac_bits);
  return saturate_lane(sum, mode);
}

i32 fx_mul_s31(u16 a, u16 b) {
  const i64 prod = i64{static_cast<i16>(a)} * static_cast<i16>(b);
  return saturate_s31(prod << 1);
}

u16 fx_div_s213(u16 a, u16 b) {
  const i32 num = static_cast<i16>(a);
  const i32 den = static_cast<i16>(b);
  if (den == 0) {
    return num < 0 ? 0x8000u : 0x7FFFu;
  }
  // Quotient in S2.13: (num << 13) / den, rounded to nearest (ties away
  // from zero), then clamped to the 16-bit lane.
  const i64 scaled = i64{num} << kFracS213;
  i64 q = scaled / den;
  const i64 rem = scaled % den;
  if (rem != 0 && std::abs(rem) * 2 >= std::abs(i64{den})) {
    q += ((num < 0) == (den < 0)) ? 1 : -1;
  }
  return saturate_lane(q, SatMode::kSigned16);
}

u16 fx_rsqrt_s213(u16 a) {
  const double v = from_fixed(a, kFracS213);
  if (v <= 0.0) return 0x7FFFu;
  return to_fixed(1.0 / std::sqrt(v), kFracS213);
}

} // namespace majc
