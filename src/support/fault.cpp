#include "src/support/fault.h"

#include "src/support/rng.h"

namespace majc {
namespace {

// Distinct stream tags so the same event index in different fault classes
// draws independent decisions.
constexpr u64 kDramStream = 0x6472616d;  // "dram"
constexpr u64 kFillStream = 0x66696c6c;  // "fill"
constexpr u64 kGrantStream = 0x6772616e; // "gran"
constexpr u64 kBitStream = 0x62697473;   // "bits"

} // namespace

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {
  enabled_ = cfg_.dram_correctable_rate > 0.0 ||
             cfg_.dram_uncorrectable_rate > 0.0 ||
             cfg_.fill_parity_rate > 0.0 || cfg_.xbar_delay_rate > 0.0 ||
             cfg_.xbar_drop_rate > 0.0;
}

u64 FaultPlan::mix(u64 stream, u64 event) const {
  // One SplitMix64 step keyed on (seed, stream, event): cheap, stateless,
  // and well distributed — the same event always draws the same number.
  return SplitMix64(cfg_.seed ^ (stream * 0x9E3779B97F4A7C15ull) ^ event)
      .next();
}

bool FaultPlan::decide(u64 hash, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return static_cast<double>(hash) * 0x1p-64 < rate;
}

FaultPlan::DramFault FaultPlan::dram_fault(Addr line) const {
  if (!enabled_) return DramFault::kNone;
  const u64 h = mix(kDramStream, line);
  // Uncorrectable faults claim the low slice of the hash space, correctable
  // the next one, so raising the correctable rate never moves which lines
  // are uncorrectable.
  if (decide(h, cfg_.dram_uncorrectable_rate)) return DramFault::kUncorrectable;
  if (decide(h, cfg_.dram_uncorrectable_rate + cfg_.dram_correctable_rate)) {
    return DramFault::kCorrectable;
  }
  return DramFault::kNone;
}

u32 FaultPlan::flipped_bit(Addr line, u32 bits) const {
  if (bits == 0) return 0;
  return static_cast<u32>(mix(kBitStream, line) % bits);
}

bool FaultPlan::fill_corrupted(Addr line, u64 fill_index) const {
  if (!enabled_ || cfg_.fill_parity_rate <= 0.0) return false;
  return decide(mix(kFillStream, line * 0x10001ull + fill_index),
                cfg_.fill_parity_rate);
}

u32 FaultPlan::grant_delay(u64 grant_index) const {
  if (!enabled_ || cfg_.xbar_delay_rate <= 0.0) return 0;
  return decide(mix(kGrantStream, grant_index), cfg_.xbar_delay_rate)
             ? cfg_.xbar_delay_cycles
             : 0;
}

bool FaultPlan::grant_dropped(u64 grant_index) const {
  if (!enabled_ || cfg_.xbar_drop_rate <= 0.0) return false;
  // Offset the event id so drop decisions are independent of delay ones.
  return decide(mix(kGrantStream, ~grant_index), cfg_.xbar_drop_rate);
}

} // namespace majc
