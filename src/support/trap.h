// Architected traps: the model's equivalent of the T pipeline stage.
//
// The paper dedicates a pipeline stage to traps (§2) right before write-back.
// In this model, guest-visible faults (misaligned or out-of-bounds accesses,
// illegal instructions/packets, divide-by-zero when enabled, ECC machine
// checks) raise a TrapException at the faulting operation; the run loops of
// FunctionalSim, CycleSim and Majc5200 catch it, fill in the architectural
// context (cpu / pc / cycle) and surface a structured TerminationReason
// instead of letting a host C++ exception escape. Host-side API misuse and
// model bugs continue to throw plain majc::Error.
//
// Traps are precise: register write-back commits after every slot of a
// packet has executed, so a trapping packet leaves the architectural
// registers and pc exactly as they were before the packet issued (only a
// store in FU0 preceding the fault within the same packet may have landed).
#pragma once

#include <string>

#include "src/support/error.h"
#include "src/support/types.h"

namespace majc {

/// Architected trap cause codes (docs/ISA.md "Traps and fault model").
enum class TrapCause : u8 {
  kNone = 0,
  kMisaligned = 1,          // access not naturally aligned
  kOutOfBounds = 2,         // access outside the physical address space
  kIllegalInstruction = 3,  // undecodable or unexecutable instruction
  kIllegalPacket = 4,       // control transfer into the middle of a packet
  kDivideByZero = 5,        // integer div/divu with zero divisor (when armed)
  kMachineCheck = 6,        // uncorrectable ECC error on a memory read
};

constexpr const char* trap_cause_name(TrapCause c) {
  switch (c) {
    case TrapCause::kNone: return "none";
    case TrapCause::kMisaligned: return "misaligned";
    case TrapCause::kOutOfBounds: return "out-of-bounds";
    case TrapCause::kIllegalInstruction: return "illegal-instruction";
    case TrapCause::kIllegalPacket: return "illegal-packet";
    case TrapCause::kDivideByZero: return "divide-by-zero";
    case TrapCause::kMachineCheck: return "machine-check";
  }
  return "?";
}

/// Unit of Trap::time. The functional simulator has no clock, so it stamps
/// traps with the retired-packet count; the cycle-accurate models stamp the
/// issue cycle. One field, one explicit tag — consumers (stats JSON, trap
/// reports) no longer have to know which simulator produced the trap.
enum class TimeUnit : u8 {
  kPackets = 0,  // instruction-accurate runs: retired packets
  kCycles = 1,   // cycle-accurate runs: core clock cycles
};

constexpr const char* time_unit_name(TimeUnit u) {
  switch (u) {
    case TimeUnit::kPackets: return "packets";
    case TimeUnit::kCycles: return "cycles";
  }
  return "?";
}

/// One trap. `code`, `detail` and `value` are filled at the raising site;
/// `cpu`, `pc`, `cycle` and `unit` are filled by the run loop that catches
/// it (the raising site is too deep to know which CPU/thread it executes
/// on, or what the time base is).
struct Trap {
  TrapCause code = TrapCause::kNone;
  u32 cpu = 0;
  Addr pc = 0;
  Cycle cycle = 0;             // in `unit` units (see TimeUnit)
  TimeUnit unit = TimeUnit::kCycles;
  std::string detail;          // human-readable diagnosis
  u32 value = 0;               // cause-specific detail word (faulting address
                               // / line); delivered to the guest via MFTR 3
  /// False only for machine checks under MachineCheckPolicy::kFatal: the run
  /// terminates even when the guest has installed a trap handler.
  bool deliverable = true;

  bool valid() const { return code != TrapCause::kNone; }
};

/// Carrier from the faulting operation to the run loop. Derives from Error
/// so host code that treats any model fault as fatal keeps working.
class TrapException : public Error {
public:
  explicit TrapException(Trap t)
      : Error(std::string(trap_cause_name(t.code)) + " trap: " + t.detail),
        trap_(std::move(t)) {}

  const Trap& trap() const { return trap_; }

private:
  Trap trap_;
};

[[noreturn]] inline void raise_trap(TrapCause code, std::string detail,
                                    u32 value = 0, bool deliverable = true) {
  Trap t;
  t.code = code;
  t.detail = std::move(detail);
  t.value = value;
  t.deliverable = deliverable;
  throw TrapException(std::move(t));
}

/// Why a run loop returned (ISSUE: structured instead of a bare bool).
enum class TerminationReason : u8 {
  kHalted = 0,       // every CPU/thread executed HALT
  kTrap = 1,         // an architected trap was delivered
  kWatchdog = 2,     // no externally visible progress for watchdog_cycles
  kPacketCap = 3,    // hit the max_packets safety cap without halting
  kHostDeadline = 4, // the host-side run harness killed the run at its
                     // wall-clock deadline (farm JobPolicy; never raised by
                     // the simulators themselves)
};

constexpr const char* termination_reason_name(TerminationReason r) {
  switch (r) {
    case TerminationReason::kHalted: return "halted";
    case TerminationReason::kTrap: return "trap";
    case TerminationReason::kWatchdog: return "watchdog";
    case TerminationReason::kPacketCap: return "packet-cap";
    case TerminationReason::kHostDeadline: return "host-deadline";
  }
  return "?";
}

} // namespace majc
