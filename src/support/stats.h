// Lightweight statistics accumulators used by the cycle model and benches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc {

/// Named 64-bit counters with stable iteration order for reporting.
class CounterSet {
public:
  void add(const std::string& name, u64 delta = 1) { counters_[name] += delta; }
  u64 get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, u64>& all() const { return counters_; }
  void clear() { counters_.clear(); }

  /// Render as aligned "name: value" lines.
  std::string to_string() const;

private:
  std::map<std::string, u64> counters_;
};

/// Fixed-bucket histogram (e.g. packet issue-width distribution 1..4).
class Histogram {
public:
  explicit Histogram(std::size_t buckets) : buckets_(buckets, 0) {}

  void add(std::size_t bucket, u64 delta = 1) {
    if (bucket >= buckets_.size()) bucket = buckets_.size() - 1;
    buckets_[bucket] += delta;
  }
  u64 bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t size() const { return buckets_.size(); }
  u64 total() const;
  double mean() const;

  void save(ckpt::Writer& w) const;   // defined in support/checkpoint.cpp
  void restore(ckpt::Reader& r);

private:
  std::vector<u64> buckets_;
};

/// Running mean/min/max over a stream of samples.
class RunningStat {
public:
  void add(double v);
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return min_; }
  double max() const { return max_; }
  u64 count() const { return n_; }

private:
  u64 n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

} // namespace majc
