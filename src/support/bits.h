// Bit-manipulation helpers shared by the encoder, decoder and executors.
#pragma once

#include <bit>
#include <type_traits>

#include "src/support/error.h"
#include "src/support/types.h"

namespace majc {

/// Extract bits [lo, lo+len) of `v` (lo counted from bit 0 = LSB).
constexpr u32 bits(u32 v, unsigned lo, unsigned len) {
  return (len >= 32) ? (v >> lo) : ((v >> lo) & ((1u << len) - 1u));
}

constexpr u64 bits64(u64 v, unsigned lo, unsigned len) {
  return (len >= 64) ? (v >> lo) : ((v >> lo) & ((u64{1} << len) - 1u));
}

/// Sign-extend the low `len` bits of `v` to a full i32.
constexpr i32 sign_extend(u32 v, unsigned len) {
  const unsigned shift = 32 - len;
  return static_cast<i32>(v << shift) >> shift;
}

constexpr i64 sign_extend64(u64 v, unsigned len) {
  const unsigned shift = 64 - len;
  return static_cast<i64>(v << shift) >> shift;
}

/// Deposit `field` into bits [lo, lo+len) of a word being assembled.
constexpr u32 deposit(u32 word, unsigned lo, unsigned len, u32 field) {
  const u32 mask = ((len >= 32) ? ~0u : ((1u << len) - 1u)) << lo;
  return (word & ~mask) | ((field << lo) & mask);
}

/// True if `v` fits in a signed field of `len` bits.
constexpr bool fits_signed(i64 v, unsigned len) {
  const i64 lim = i64{1} << (len - 1);
  return v >= -lim && v < lim;
}

constexpr bool fits_unsigned(u64 v, unsigned len) {
  return len >= 64 || v < (u64{1} << len);
}

/// Count of leading zeros of a 32-bit value; 32 when v == 0.
/// Semantics of the MAJC LZD (leading-zero detect) instruction.
constexpr u32 leading_zeros(u32 v) {
  return static_cast<u32>(std::countl_zero(v));
}

/// Extract byte `i` (0 = least significant) of a 32-bit value.
constexpr u8 byte_of(u32 v, unsigned i) { return static_cast<u8>(v >> (8 * i)); }

/// L1 distance between the four packed bytes of `a` and `b`
/// (the reduction performed by the MAJC PDIST instruction).
constexpr u32 pixel_distance(u32 a, u32 b) {
  u32 acc = 0;
  for (unsigned i = 0; i < 4; ++i) {
    const int d = static_cast<int>(byte_of(a, i)) - static_cast<int>(byte_of(b, i));
    acc += static_cast<u32>(d < 0 ? -d : d);
  }
  return acc;
}

/// MAJC byte-shuffle: build a 32-bit result from four selected bytes of the
/// 64-bit source (rs1:rs2, rs1 most significant). Each selector nibble picks
/// byte 0..7 of the source (0 = most significant byte, matching a
/// left-to-right reading of the register pair); selector values 8..15 write
/// a zero byte, which is what makes BSHUF usable for masking byte fields.
/// Selector nibble i (from the most significant nibble of the low 16 bits of
/// `sel`) produces result byte i (from the most significant result byte).
constexpr u32 byte_shuffle(u32 hi, u32 lo, u32 sel) {
  const u64 src = (u64{hi} << 32) | lo;
  u32 out = 0;
  for (unsigned i = 0; i < 4; ++i) {
    const u32 nib = bits(sel, 12 - 4 * i, 4);
    u8 b = 0;
    if (nib < 8) b = static_cast<u8>(src >> (56 - 8 * nib));
    out = (out << 8) | b;
  }
  return out;
}

/// MAJC BEXT: extract a bit field from the 64-bit concatenation rs1:rs1+1
/// (rs1 most significant). `pos` counts from the MSB (bit 0 = MSB), which is
/// the natural orientation for parsing a big-endian compressed bit stream.
/// Fields of length 0 yield 0; pos+len must be <= 64.
constexpr u32 bitfield_extract(u32 hi, u32 lo, u32 pos, u32 len) {
  if (len == 0) return 0;
  const u64 src = (u64{hi} << 32) | lo;
  return static_cast<u32>(bits64(src, 64 - pos - len, len));
}

} // namespace majc
