// Fixed-point formats of the MAJC-5200 SIMD unit.
//
// The ISA operates on pairs of 16-bit values interpreted as short integers,
// S.15 (1 sign bit, 15 fraction bits, range [-1, 1)) or S2.13 (1 sign bit,
// 2 integer bits, 13 fraction bits, range [-4, 4)). Products widen and are
// renormalized by the format's fraction width. The 6-cycle FU0 SIMD divide
// and reciprocal-square-root operate on S2.13 (paper §4).
#pragma once

#include <cmath>

#include "src/support/saturate.h"
#include "src/support/types.h"

namespace majc {

/// Fraction bit counts for the two SIMD fixed point formats.
inline constexpr int kFracS15 = 15;
inline constexpr int kFracS213 = 13;

/// Convert a double to an S.15 / S2.13 bit pattern with saturation.
u16 to_fixed(double v, int frac_bits);
/// Convert an S.15 / S2.13 bit pattern to a double.
double from_fixed(u16 bits, int frac_bits);

/// Fixed point multiply: (a * b) >> frac_bits, then saturate per `mode`.
/// This is the per-lane semantics of PMULS15 / PMULS213.
u16 fx_mul(u16 a, u16 b, int frac_bits, SatMode mode);

/// Fixed point multiply-accumulate lane: acc + ((a * b) >> frac_bits),
/// saturated per `mode` (PMADDS15 / PMADDS213 lane semantics).
u16 fx_madd(u16 acc, u16 a, u16 b, int frac_bits, SatMode mode);

/// Saturated S.31 product of two S.15 values: (a * b) << 1 clamped to i32
/// (the paper's "saturated S.31 product of two S.15 quantities").
i32 fx_mul_s31(u16 a, u16 b);

/// S2.13 lane divide (PDIV213): round-to-nearest quotient in S2.13,
/// saturated to the 16-bit lane. Division by zero saturates toward the
/// sign of the dividend (0/0 yields the maximum positive value).
u16 fx_div_s213(u16 a, u16 b);

/// S2.13 lane reciprocal square root (PRSQRT213). Inputs <= 0 saturate to
/// the maximum positive S2.13 value (the model's total-function choice for
/// the mathematically undefined cases).
u16 fx_rsqrt_s213(u16 a);

} // namespace majc
