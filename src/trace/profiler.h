// Cycle-attribution profiler.
//
// Consumes the CycleCpu trace-event stream and aggregates per-packet issue
// and stall cycles into a disassembly-annotated hot-packet report, plus
// whole-run views the timeline can't show at a glance: per-FU pipe
// occupancy, bypass-path hit rates, and the scoreboard-stall breakdown.
//
// Attribution contract (verified in tests/test_trace.cpp): every cycle of a
// run is charged to exactly one packet as 1 (issue) + pre-issue stalls +
// post-issue branch-refill penalty + context-switch overhead, so the
// profiler's totals reconcile exactly with CpuStats/StallCounters and with
// the run's cycle count.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/sim/functional_sim.h"

namespace majc::trace {

class CycleProfiler {
public:
  /// Per-packet accumulators, dense by program packet index.
  struct PacketProf {
    u64 executions = 0;
    u64 instrs = 0;
    u64 cycles = 0;  // 1 + stalls + branch penalty, per execution
    std::array<u64, cpu::kNumStallCauses> stall{};
  };

  /// Whole-run accumulators.
  struct Totals {
    u64 packets = 0;
    u64 instrs = 0;
    u64 switches = 0;
    u64 mispredicts = 0;
    std::array<u64, cpu::kNumStallCauses> stall{};
    std::array<u64, cpu::kNumBypassPaths> bypass{};
    // fu_slots[i] = packets that issued an instruction on FUi; summed over
    // i this equals instrs (each instruction occupies exactly one pipe).
    std::array<u64, isa::kNumFus> fu_slots{};

    u64 stall_total() const;
    u64 bypass_total() const;
    /// Cycles the profiler accounts for: one issue cycle per packet, every
    /// stall cycle, and the switch overhead.
    u64 attributed_cycles(u32 switch_penalty) const;
  };

  explicit CycleProfiler(const sim::Program& prog);

  /// Feed one trace event (install via attach(), or forward manually when
  /// composing with a trace recorder on the same stream).
  void on_event(const cpu::TraceEvent& ev);

  void attach(cpu::CycleCpu& cpu);

  const Totals& totals() const { return totals_; }
  const std::vector<PacketProf>& packets() const { return per_packet_; }

  /// Human-readable report: hot packets by attributed cycles (top `top_n`),
  /// per-FU occupancy, bypass-path mix and the stall breakdown.
  /// `total_cycles` is the run length used for occupancy percentages (pass
  /// the Result's cycle count); 0 derives it from attributed cycles.
  std::string report(u32 top_n, Cycle total_cycles,
                     u32 switch_penalty = 0) const;

private:
  const sim::Program& prog_;
  std::vector<PacketProf> per_packet_;
  Totals totals_;
};

} // namespace majc::trace
