#include "src/trace/stats_json.h"

#include <cstdio>

#include "src/support/checkpoint.h"
#include "src/trace/json.h"

namespace majc::trace {

namespace {

void write_counters(JsonWriter& j, std::string_view key, const CounterSet& c) {
  j.key(key).begin_object();
  for (const auto& [name, value] : c.all()) j.kv(name, value);
  j.end_object();
}

std::string hex_u64(u64 v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The trap that ended the run (emitted only when reason == "trap").
void write_trap(JsonWriter& j, const Trap& t) {
  j.key("trap").begin_object();
  j.kv("cause", trap_cause_name(t.code));
  j.kv("code", static_cast<u64>(t.code));
  j.kv("cpu", t.cpu);
  j.kv("pc", t.pc);
  j.kv("time", t.cycle);
  j.kv("unit", time_unit_name(t.unit));
  j.kv("value", t.value);
  j.kv("detail", t.detail);
  j.kv("deliverable", t.deliverable);
  j.end_object();
}

/// Recovery counters: what the RAS machinery absorbed without ending the
/// run (plus the machine checks it could not).
void write_ras(JsonWriter& j, const mem::EccMemory& ecc,
               const mem::MemorySystem& ms, u64 traps_delivered) {
  j.key("ras").begin_object();
  j.key("ecc").begin_object();
  j.kv("policy", machine_check_policy_name(ms.config().faults.mc_policy));
  j.kv("corrected", ecc.corrected());
  j.kv("machine_checks", ecc.machine_checks());
  j.kv("retried", ecc.retried());
  j.kv("poisoned_lines", ecc.poisoned_lines());
  j.kv("silent_corruptions", ecc.silent_corruptions());
  j.end_object();
  u64 fill_retries = ms.ifetch_parity_retries();
  u64 fill_mcs = ms.ifetch_machine_checks();
  for (u32 c = 0; c < mem::kNumCpus; ++c) {
    fill_retries += ms.lsu(c).counter(mem::LsuCounter::kFillParityRetries);
    fill_mcs += ms.lsu(c).counter(mem::LsuCounter::kFillMachineChecks);
  }
  j.key("fills").begin_object();
  j.kv("parity_retries", fill_retries);
  j.kv("machine_checks", fill_mcs);
  j.end_object();
  j.key("xbar").begin_object();
  j.kv("delayed_grants", ms.xbar().delayed_grants());
  j.kv("dropped_grants", ms.xbar().dropped_grants());
  j.end_object();
  j.kv("traps_delivered", traps_delivered);
  j.end_object();
}

void write_cache(JsonWriter& j, std::string_view key, const mem::Cache& c) {
  j.key(key).begin_object();
  j.kv("hits", c.hits());
  j.kv("misses", c.misses());
  j.kv("hit_rate", c.hit_rate());
  j.end_object();
}

void write_cpu(JsonWriter& j, cpu::CycleCpu& cpu, mem::MemorySystem& ms,
               u32 id) {
  const cpu::CpuStats& st = cpu.stats();
  j.begin_object();
  j.kv("id", id);
  j.kv("packets", st.packets);
  j.kv("instrs", st.instrs);
  j.kv("thread_switches", st.thread_switches);
  j.kv("traps_delivered", st.traps_delivered);
  j.key("width_hist").begin_array();
  for (u32 w = 1; w <= isa::kNumFus; ++w) j.value(st.width_hist.bucket(w));
  j.end_array();
  j.key("branches").begin_object();
  j.kv("cond", st.cond_branches);
  j.kv("taken", st.taken_branches);
  j.kv("mispredicts", st.mispredicts);
  j.kv("jumps", st.jumps);
  j.end_object();
  write_counters(j, "stalls", st.stalls.aggregate());
  write_counters(j, "lsu", ms.lsu(id).counters());
  write_cache(j, "icache", ms.icache(id));
  j.end_object();
}

void write_mem(JsonWriter& j, mem::MemorySystem& ms) {
  j.key("mem").begin_object();
  write_cache(j, "dcache", ms.dcache());
  j.key("dram").begin_object();
  j.kv("requests", ms.dram().requests());
  j.kv("busy_cycles", ms.dram().busy_cycles());
  j.end_object();
  j.end_object();
}

} // namespace

void write_stats_json(std::ostream& os, cpu::CycleSim& sim,
                      const cpu::CycleSim::Result& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "cycle");
  j.key("run").begin_object();
  j.kv("cycles", res.cycles);
  j.kv("packets", res.packets);
  j.kv("instrs", res.instrs);
  j.kv("ipc", res.ipc());
  j.kv("halted", res.halted);
  j.kv("reason", termination_reason_name(res.reason));
  if (res.reason == TerminationReason::kTrap) write_trap(j, res.trap);
  j.kv("arch_digest", hex_u64(ckpt::arch_digest(sim)));
  j.end_object();
  j.key("cpus").begin_array();
  write_cpu(j, sim.cpu(), sim.memsys(), 0);
  j.end_array();
  write_mem(j, sim.memsys());
  write_ras(j, sim.ecc(), sim.memsys(), sim.cpu().stats().traps_delivered);
  j.end_object();
  os << "\n";
}

void write_stats_json(std::ostream& os, soc::Majc5200& chip,
                      const soc::Majc5200::Result& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "chip");
  j.key("run").begin_object();
  j.kv("cycles", res.cycles);
  j.kv("packets", res.packets[0] + res.packets[1]);
  j.kv("instrs", res.instrs[0] + res.instrs[1]);
  j.kv("halted", res.all_halted);
  j.kv("reason", termination_reason_name(res.reason));
  if (res.reason == TerminationReason::kTrap) write_trap(j, res.trap);
  j.kv("arch_digest", hex_u64(ckpt::arch_digest(chip)));
  j.end_object();
  j.key("cpus").begin_array();
  for (u32 i = 0; i < soc::Majc5200::kNumCpus; ++i) {
    write_cpu(j, chip.cpu(i), chip.memsys(), i);
  }
  j.end_array();
  write_mem(j, chip.memsys());
  write_ras(j, chip.ecc(), chip.memsys(),
            chip.cpu(0).stats().traps_delivered +
                chip.cpu(1).stats().traps_delivered);
  j.key("dte").begin_object();
  j.kv("descriptors", chip.dte().descriptors_run());
  j.kv("bytes_moved", chip.dte().bytes_moved());
  j.end_object();
  j.end_object();
  os << "\n";
}

void write_stats_json(std::ostream& os, const sim::FunctionalSim& sim,
                      const sim::RunResult& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "functional");
  j.key("run").begin_object();
  // Cumulative accessors, not the per-call RunResult: a checkpointed run
  // restored mid-way reports the same totals as an unbroken one.
  j.kv("packets", sim.packets_run());
  j.kv("instrs", sim.instrs_run());
  j.kv("halted", res.halted);
  j.kv("reason", termination_reason_name(res.reason));
  if (res.reason == TerminationReason::kTrap) write_trap(j, res.trap);
  j.kv("arch_digest", hex_u64(ckpt::arch_digest(sim)));
  j.kv("traps_delivered", sim.traps_delivered());
  j.end_object();
  j.kv("program_packets", static_cast<u64>(sim.program().num_packets()));
  j.end_object();
  os << "\n";
}

} // namespace majc::trace
