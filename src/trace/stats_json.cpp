#include "src/trace/stats_json.h"

#include "src/trace/json.h"

namespace majc::trace {

namespace {

void write_counters(JsonWriter& j, std::string_view key, const CounterSet& c) {
  j.key(key).begin_object();
  for (const auto& [name, value] : c.all()) j.kv(name, value);
  j.end_object();
}

void write_cache(JsonWriter& j, std::string_view key, const mem::Cache& c) {
  j.key(key).begin_object();
  j.kv("hits", c.hits());
  j.kv("misses", c.misses());
  j.kv("hit_rate", c.hit_rate());
  j.end_object();
}

void write_cpu(JsonWriter& j, cpu::CycleCpu& cpu, mem::MemorySystem& ms,
               u32 id) {
  const cpu::CpuStats& st = cpu.stats();
  j.begin_object();
  j.kv("id", id);
  j.kv("packets", st.packets);
  j.kv("instrs", st.instrs);
  j.kv("thread_switches", st.thread_switches);
  j.key("width_hist").begin_array();
  for (u32 w = 1; w <= isa::kNumFus; ++w) j.value(st.width_hist.bucket(w));
  j.end_array();
  j.key("branches").begin_object();
  j.kv("cond", st.cond_branches);
  j.kv("taken", st.taken_branches);
  j.kv("mispredicts", st.mispredicts);
  j.kv("jumps", st.jumps);
  j.end_object();
  write_counters(j, "stalls", st.stalls.aggregate());
  write_counters(j, "lsu", ms.lsu(id).counters());
  write_cache(j, "icache", ms.icache(id));
  j.end_object();
}

void write_mem(JsonWriter& j, mem::MemorySystem& ms) {
  j.key("mem").begin_object();
  write_cache(j, "dcache", ms.dcache());
  j.key("dram").begin_object();
  j.kv("requests", ms.dram().requests());
  j.kv("busy_cycles", ms.dram().busy_cycles());
  j.end_object();
  j.end_object();
}

} // namespace

void write_stats_json(std::ostream& os, cpu::CycleSim& sim,
                      const cpu::CycleSim::Result& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "cycle");
  j.key("run").begin_object();
  j.kv("cycles", res.cycles);
  j.kv("packets", res.packets);
  j.kv("instrs", res.instrs);
  j.kv("ipc", res.ipc());
  j.kv("halted", res.halted);
  j.kv("reason", termination_reason_name(res.reason));
  j.end_object();
  j.key("cpus").begin_array();
  write_cpu(j, sim.cpu(), sim.memsys(), 0);
  j.end_array();
  write_mem(j, sim.memsys());
  j.end_object();
  os << "\n";
}

void write_stats_json(std::ostream& os, soc::Majc5200& chip,
                      const soc::Majc5200::Result& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "chip");
  j.key("run").begin_object();
  j.kv("cycles", res.cycles);
  j.kv("packets", res.packets[0] + res.packets[1]);
  j.kv("instrs", res.instrs[0] + res.instrs[1]);
  j.kv("halted", res.all_halted);
  j.kv("reason", termination_reason_name(res.reason));
  j.end_object();
  j.key("cpus").begin_array();
  for (u32 i = 0; i < soc::Majc5200::kNumCpus; ++i) {
    write_cpu(j, chip.cpu(i), chip.memsys(), i);
  }
  j.end_array();
  write_mem(j, chip.memsys());
  j.key("dte").begin_object();
  j.kv("descriptors", chip.dte().descriptors_run());
  j.kv("bytes_moved", chip.dte().bytes_moved());
  j.end_object();
  j.end_object();
  os << "\n";
}

void write_stats_json(std::ostream& os, const sim::FunctionalSim& sim,
                      const sim::RunResult& res) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", kStatsSchema);
  j.kv("mode", "functional");
  j.key("run").begin_object();
  j.kv("packets", res.packets);
  j.kv("instrs", res.instrs);
  j.kv("halted", res.halted);
  j.kv("reason", termination_reason_name(res.reason));
  j.end_object();
  j.kv("program_packets", static_cast<u64>(sim.program().num_packets()));
  j.end_object();
  os << "\n";
}

} // namespace majc::trace
