#include "src/trace/profiler.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/isa/disasm.h"

namespace majc::trace {

namespace {

constexpr std::array<const char*, cpu::kNumStallCauses> kStallNames = {
    "ifetch", "operand", "fu_busy", "lsu", "branch_penalty"};

std::string pct(u64 part, u64 whole) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%",
                whole == 0 ? 0.0
                           : 100.0 * static_cast<double>(part) /
                                 static_cast<double>(whole));
  return buf;
}

} // namespace

u64 CycleProfiler::Totals::stall_total() const {
  return std::accumulate(stall.begin(), stall.end(), u64{0});
}

u64 CycleProfiler::Totals::bypass_total() const {
  return std::accumulate(bypass.begin(), bypass.end(), u64{0});
}

u64 CycleProfiler::Totals::attributed_cycles(u32 switch_penalty) const {
  return packets + stall_total() + switches * switch_penalty;
}

CycleProfiler::CycleProfiler(const sim::Program& prog)
    : prog_(prog), per_packet_(prog.num_packets()) {}

void CycleProfiler::attach(cpu::CycleCpu& cpu) {
  cpu.set_trace([this](const cpu::TraceEvent& ev) { on_event(ev); });
}

void CycleProfiler::on_event(const cpu::TraceEvent& ev) {
  if (ev.context_switch) {
    ++totals_.switches;
    return;
  }
  ++totals_.packets;
  totals_.instrs += ev.width;
  if (ev.mispredicted) ++totals_.mispredicts;
  const std::array<u64, cpu::kNumStallCauses> stalls = {
      ev.stall_ifetch, ev.stall_operand, ev.stall_fu, ev.stall_lsu,
      ev.stall_branch};
  for (u32 i = 0; i < cpu::kNumStallCauses; ++i) totals_.stall[i] += stalls[i];
  for (u32 i = 0; i < cpu::kNumBypassPaths; ++i) {
    totals_.bypass[i] += ev.bypass[i];
  }
  for (u32 fu = 0; fu < ev.width && fu < isa::kNumFus; ++fu) {
    ++totals_.fu_slots[fu];
  }

  const u32 index = prog_.find_index(ev.pc);
  if (index == sim::kNoPacketIndex) return;
  PacketProf& p = per_packet_[index];
  ++p.executions;
  p.instrs += ev.width;
  u64 cycles = 1;
  for (u32 i = 0; i < cpu::kNumStallCauses; ++i) {
    p.stall[i] += stalls[i];
    cycles += stalls[i];
  }
  p.cycles += cycles;
}

std::string CycleProfiler::report(u32 top_n, Cycle total_cycles,
                                  u32 switch_penalty) const {
  std::ostringstream os;
  const u64 attributed = totals_.attributed_cycles(switch_penalty);
  const u64 denom = total_cycles != 0 ? total_cycles : attributed;

  os << "== cycle profile ==\n";
  os << "packets " << totals_.packets << "  instrs " << totals_.instrs
     << "  cycles " << denom << "  attributed " << attributed;
  if (totals_.switches > 0) {
    os << "  switches " << totals_.switches << " (x" << switch_penalty
       << "cy)";
  }
  os << "\n";

  os << "\n-- per-FU pipe occupancy (packets issuing on pipe / cycles) --\n";
  for (u32 fu = 0; fu < isa::kNumFus; ++fu) {
    os << "  fu" << fu << "  " << pct(totals_.fu_slots[fu], denom) << "  ("
       << totals_.fu_slots[fu] << ")\n";
  }

  os << "\n-- stall breakdown (cycles / total) --\n";
  for (u32 i = 0; i < cpu::kNumStallCauses; ++i) {
    if (totals_.stall[i] == 0) continue;
    os << "  " << kStallNames[i] << "  " << pct(totals_.stall[i], denom)
       << "  (" << totals_.stall[i] << ")\n";
  }
  if (totals_.stall_total() == 0) os << "  (none)\n";

  os << "\n-- operand delivery by bypass path (reads / all reads) --\n";
  const u64 reads = totals_.bypass_total();
  for (u32 i = 0; i < cpu::kNumBypassPaths; ++i) {
    if (totals_.bypass[i] == 0) continue;
    os << "  " << cpu::bypass_path_name(static_cast<cpu::BypassPath>(i))
       << "  " << pct(totals_.bypass[i], reads) << "  (" << totals_.bypass[i]
       << ")\n";
  }
  if (reads == 0) os << "  (none)\n";

  // Hot packets by attributed cycles.
  std::vector<u32> order;
  for (u32 i = 0; i < per_packet_.size(); ++i) {
    if (per_packet_[i].cycles > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](u32 a, u32 b) {
    if (per_packet_[a].cycles != per_packet_[b].cycles) {
      return per_packet_[a].cycles > per_packet_[b].cycles;
    }
    return a < b;  // deterministic tie-break: program order
  });
  if (order.size() > top_n) order.resize(top_n);

  os << "\n-- hot packets (top " << order.size() << " by attributed cycles) --\n";
  for (u32 index : order) {
    const PacketProf& p = per_packet_[index];
    const sim::PacketMeta& m = prog_.meta(index);
    char head[96];
    std::snprintf(head, sizeof head, "  %s %10llu cy %8llu x  pc=0x%llx",
                  pct(p.cycles, denom).c_str(),
                  static_cast<unsigned long long>(p.cycles),
                  static_cast<unsigned long long>(p.executions),
                  static_cast<unsigned long long>(m.pc));
    os << head << "  " << isa::disasm_packet(prog_.packet(index)) << "\n";
    bool any = false;
    for (u32 i = 0; i < cpu::kNumStallCauses; ++i) {
      if (p.stall[i] == 0) continue;
      os << (any ? ", " : "      stalls: ") << kStallNames[i] << "="
         << p.stall[i];
      any = true;
    }
    if (any) os << "\n";
  }
  if (order.empty()) os << "  (none)\n";
  return os.str();
}

} // namespace majc::trace
