// Minimal streaming JSON emitter shared by the observability layer.
//
// One writer backs every machine-readable artifact the simulator produces —
// Chrome trace files, --stats-json dumps, and the bench_* JSON tables — so
// escaping, number formatting and layout are identical everywhere, and the
// output is byte-stable for identical inputs (no locale, pointer or hash
// order dependence).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/types.h"

namespace majc::trace {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Deterministic rendering of a double: %.6g, with non-finite values mapped
/// to 0 (JSON has no NaN/Inf).
std::string json_number(double v);

/// Structured writer with automatic comma/indent management. Keys are
/// emitted in call order, so output order is fully caller-controlled.
class JsonWriter {
public:
  /// `pretty` adds newlines and two-space indentation; compact mode emits a
  /// single line (used where consumers stream-parse).
  explicit JsonWriter(std::ostream& os, bool pretty = true);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

private:
  /// Comma/newline bookkeeping before a value (or key) is written.
  void prefix();
  void indent();

  struct Level {
    bool array = false;
    bool first = true;
  };

  std::ostream& os_;
  bool pretty_;
  bool after_key_ = false;
  std::vector<Level> stack_;
};

} // namespace majc::trace
