// Machine-readable run statistics ("--stats-json").
//
// One schema ("majc-stats-v1") across the single-CPU cycle simulator, the
// full SoC, and the instruction-accurate simulator, so downstream tooling
// (plots, CI dashboards, regression diffs) parses every run mode the same
// way. Counter names match the human-readable performance report exactly —
// both views render the same CounterSet aggregates.
#pragma once

#include <ostream>

#include "src/cpu/cycle_cpu.h"
#include "src/sim/functional_sim.h"
#include "src/soc/chip.h"

namespace majc::trace {

inline constexpr const char* kStatsSchema = "majc-stats-v1";

/// Single-CPU cycle-accurate run.
void write_stats_json(std::ostream& os, cpu::CycleSim& sim,
                      const cpu::CycleSim::Result& res);

/// Full dual-CPU SoC run.
void write_stats_json(std::ostream& os, soc::Majc5200& chip,
                      const soc::Majc5200::Result& res);

/// Instruction-accurate run (no timing: packet/instruction counts only).
void write_stats_json(std::ostream& os, const sim::FunctionalSim& sim,
                      const sim::RunResult& res);

} // namespace majc::trace
