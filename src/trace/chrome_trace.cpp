#include "src/trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>

#include "src/isa/disasm.h"
#include "src/trace/json.h"

namespace majc::trace {

namespace {

/// Render one event object on a single line. Keys are emitted in a fixed
/// order so output is byte-stable and line-greppable in tests.
void event_prefix(std::ostream& os, std::string_view ph, u32 pid, u32 tid,
                  Cycle ts) {
  os << "{\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << ts;
}

const char* mem_kind_name(u8 kind) {
  switch (static_cast<sim::MemAccess::Kind>(kind)) {
    case sim::MemAccess::Kind::kLoad: return "load";
    case sim::MemAccess::Kind::kStore: return "store";
    case sim::MemAccess::Kind::kAtomic: return "atomic";
    case sim::MemAccess::Kind::kPrefetch: return "prefetch";
    case sim::MemAccess::Kind::kMembar: return "membar";
    case sim::MemAccess::Kind::kNone: break;
  }
  return "none";
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[\n";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::begin_event() {
  if (!first_) os_ << ",\n";
  first_ = false;
  ++events_;
}

void ChromeTraceWriter::process_name(u32 pid, std::string_view name) {
  begin_event();
  os_ << "{\"ph\":\"M\",\"pid\":" << pid
      << ",\"name\":\"process_name\",\"args\":{\"name\":\""
      << json_escape(name) << "\"}}";
}

void ChromeTraceWriter::thread_name(u32 pid, u32 tid, std::string_view name) {
  begin_event();
  os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name)
      << "\"}}";
}

void ChromeTraceWriter::complete(u32 pid, u32 tid, std::string_view cat,
                                 std::string_view name, Cycle ts, Cycle dur,
                                 std::string_view args_json) {
  begin_event();
  event_prefix(os_, "X", pid, tid, ts);
  os_ << ",\"dur\":" << dur << ",\"cat\":\"" << json_escape(cat)
      << "\",\"name\":\"" << json_escape(name) << "\"";
  if (!args_json.empty()) os_ << ",\"args\":" << args_json;
  os_ << "}";
}

void ChromeTraceWriter::instant(u32 pid, u32 tid, std::string_view cat,
                                std::string_view name, Cycle ts) {
  begin_event();
  event_prefix(os_, "i", pid, tid, ts);
  os_ << ",\"s\":\"t\",\"cat\":\"" << json_escape(cat) << "\",\"name\":\""
      << json_escape(name) << "\"}";
}

void ChromeTraceWriter::async_begin(u32 pid, std::string_view cat,
                                    std::string_view name, u64 id, Cycle ts) {
  begin_event();
  os_ << "{\"ph\":\"b\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ts
      << ",\"id\":" << id << ",\"cat\":\"" << json_escape(cat)
      << "\",\"name\":\"" << json_escape(name) << "\"}";
}

void ChromeTraceWriter::async_end(u32 pid, std::string_view cat,
                                  std::string_view name, u64 id, Cycle ts) {
  begin_event();
  os_ << "{\"ph\":\"e\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ts
      << ",\"id\":" << id << ",\"cat\":\"" << json_escape(cat)
      << "\",\"name\":\"" << json_escape(name) << "\"}";
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]}\n";
  os_.flush();
}

CpuTraceRecorder::CpuTraceRecorder(ChromeTraceWriter& w,
                                   const sim::Program& prog,
                                   const TimingConfig& cfg, u32 cpu_id)
    : w_(w), prog_(prog), cfg_(cfg), pid_(cpu_id),
      labels_(prog.num_packets()) {
  w_.process_name(pid_, "cpu" + std::to_string(cpu_id));
  w_.thread_name(pid_, kIssueTid, "issue");
  for (u32 fu = 0; fu < isa::kNumFus; ++fu) {
    w_.thread_name(pid_, kFuTidBase + fu, "fu" + std::to_string(fu));
  }
  w_.thread_name(pid_, kStallTid, "stalls");
  w_.thread_name(pid_, kLsuTid, "lsu");
}

void CpuTraceRecorder::attach(cpu::CycleCpu& cpu) {
  cpu.set_trace([this](const cpu::TraceEvent& ev) { on_event(ev); });
}

const CpuTraceRecorder::Labels& CpuTraceRecorder::labels([[maybe_unused]] Addr pc,
                                                         u32 index) {
  if (index == sim::kNoPacketIndex) return unknown_;
  Labels& l = labels_[index];
  if (!l.filled) {
    l.filled = true;
    const isa::Packet& p = prog_.packet(index);
    l.packet = isa::disasm_packet(p);
    for (u32 i = 0; i < p.width && i < isa::kMaxSlots; ++i) {
      l.slot[i] = isa::disasm_instr(p.slot[i]);
    }
  }
  return l;
}

void CpuTraceRecorder::on_event(const cpu::TraceEvent& ev) {
  if (ev.context_switch) {
    w_.instant(pid_, kIssueTid, "thread",
               "switch->t" + std::to_string(ev.thread), ev.cycle);
    return;
  }
  const u32 index = prog_.find_index(ev.pc);
  const Labels& l = labels(ev.pc, index);
  const sim::PacketMeta* m =
      index == sim::kNoPacketIndex ? nullptr : &prog_.meta(index);

  // Issue track: one 1-cycle slice per issued packet, args carry pc/thread
  // and the memory-op kind when present.
  {
    std::string args = "{\"pc\":" + std::to_string(ev.pc) +
                       ",\"thread\":" + std::to_string(ev.thread) +
                       ",\"width\":" + std::to_string(ev.width);
    if (ev.mem_kind != 0) {
      args += ",\"mem\":\"";
      args += mem_kind_name(ev.mem_kind);
      args += "\"";
    }
    args += "}";
    w_.complete(pid_, kIssueTid, "packet", l.packet, ev.cycle, 1, args);
  }

  // Per-FU pipe occupancy: each populated slot occupies its pipe for its
  // producer latency (loads: until the LSU delivers the data).
  for (u32 fu = 0; fu < ev.width && fu < isa::kMaxSlots; ++fu) {
    Cycle dur = 1;
    if (m != nullptr) {
      const auto& sm = m->slot[fu];
      if (sm.load_data && ev.lsu_ready > ev.cycle) {
        dur = ev.lsu_ready - ev.cycle;
      } else {
        dur = std::max<Cycle>(1, sm.latency);
      }
    }
    w_.complete(pid_, kFuTidBase + fu, "fu",
                l.slot[fu].empty() ? l.packet : l.slot[fu], ev.cycle, dur);
  }

  // Stall track: one slice per non-zero cause, drawn in the gap the stall
  // occupied ([issue - total_stall, issue)); causes stack back-to-back in
  // attribution order, mirroring how issue_time charges them.
  const u32 pre_stall =
      ev.stall_ifetch + ev.stall_operand + ev.stall_fu + ev.stall_lsu;
  if (pre_stall > 0) {
    Cycle at = ev.cycle - pre_stall;
    const std::pair<const char*, u32> causes[] = {
        {"stall_ifetch", ev.stall_ifetch},
        {"stall_operand", ev.stall_operand},
        {"stall_fu_busy", ev.stall_fu},
        {"stall_lsu", ev.stall_lsu},
    };
    for (const auto& [name, cycles] : causes) {
      if (cycles == 0) continue;
      w_.complete(pid_, kStallTid, "stall", name, at, cycles);
      at += cycles;
    }
  }
  // Branch/jump refill penalty lands after issue.
  if (ev.stall_branch > 0) {
    w_.complete(pid_, kStallTid, "stall", "stall_branch_penalty", ev.cycle + 1,
                ev.stall_branch);
  }
  if (ev.mispredicted) {
    w_.instant(pid_, kIssueTid, "branch", "mispredict", ev.cycle);
  }
}

LsuTraceRecorder::LsuTraceRecorder(ChromeTraceWriter& w, u32 cpu_pid)
    : w_(w), pid_(cpu_pid) {}

void LsuTraceRecorder::attach(mem::Lsu& lsu) {
  lsu.set_observer([this](const mem::LsuTraceEvent& ev) { on_event(ev); });
}

void LsuTraceRecorder::on_event(const mem::LsuTraceEvent& ev) {
  const char* name = "load_miss";
  switch (ev.kind) {
    case mem::LsuTraceEvent::Kind::kLoadMiss: name = "load_miss"; break;
    case mem::LsuTraceEvent::Kind::kStoreMiss: name = "store_miss"; break;
    case mem::LsuTraceEvent::Kind::kPrefetch: name = "prefetch"; break;
  }
  std::string label = name;
  label += " @0x";
  char buf[17];
  std::snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(ev.line));
  label += buf;
  const u64 id = seq_++;
  w_.async_begin(pid_, "lsu", label, id, ev.start);
  w_.async_end(pid_, "lsu", label, id, std::max(ev.done, ev.start + 1));
}

DteTraceRecorder::DteTraceRecorder(ChromeTraceWriter& w) : w_(w) {
  w_.process_name(kDtePid, "dte");
  w_.thread_name(kDtePid, 0, "descriptors");
}

void DteTraceRecorder::attach(soc::Dte& dte) {
  dte.set_observer([this](const soc::Dte::Descriptor& d, Cycle s, Cycle e) {
    on_descriptor(d, s, e);
  });
}

void DteTraceRecorder::on_descriptor(const soc::Dte::Descriptor& d,
                                     Cycle start, Cycle done) {
  std::string args = "{\"src\":" + std::to_string(d.src) +
                     ",\"dst\":" + std::to_string(d.dst) +
                     ",\"bytes\":" + std::to_string(d.bytes) + "}";
  w_.complete(kDtePid, 0, "dma", "copy " + std::to_string(d.bytes) + "B",
              start, std::max<Cycle>(1, done - start), args);
  ++seq_;
}

GppTraceRecorder::GppTraceRecorder(ChromeTraceWriter& w) : w_(w) {
  w_.process_name(kGppPid, "gpp");
  w_.thread_name(kGppPid, 0, "batches->cpu0");
  w_.thread_name(kGppPid, 1, "batches->cpu1");
}

void GppTraceRecorder::attach(gpp::Gpp& g) {
  g.set_observer([this](const gpp::Batch& b, Cycle s, Cycle e) {
    on_batch(b, s, e);
  });
}

void GppTraceRecorder::on_batch(const gpp::Batch& b, Cycle start, Cycle done) {
  std::string args = "{\"first_vertex\":" + std::to_string(b.first_vertex) +
                     ",\"vertices\":" + std::to_string(b.vertex_count) +
                     ",\"triangles\":" + std::to_string(b.triangle_count) +
                     "}";
  w_.complete(kGppPid, b.cpu, "gpp",
              "batch " + std::to_string(b.first_vertex / 64), start,
              std::max<Cycle>(1, done - start), args);
  ++seq_;
}

} // namespace majc::trace
