// Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).
//
// The observability layer's timeline view of a run: one track group
// ("process") per CPU with an issue track, one track per FU pipe and a
// stall track; async slices for LSU miss fills and prefetches; DMA-engine
// (DTE/IoPort) descriptor slices and GPP batch slices on their own track
// groups. Timestamps are guest cycles (rendered by the viewers as
// microseconds — the absolute unit is irrelevant, relative time is what
// the timeline shows).
//
// The writer streams events as they happen — no buffering proportional to
// run length — and produces byte-stable output for identical runs.
#pragma once

#include <array>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/gpp/gpp.h"
#include "src/mem/lsu.h"
#include "src/sim/functional_sim.h"
#include "src/soc/dte.h"

namespace majc::trace {

/// Track-group ("pid") assignments for non-CPU agents. CPUs use their
/// cpu_id (0, 1) directly.
inline constexpr u32 kDtePid = 8;
inline constexpr u32 kGppPid = 9;

/// Streaming trace-event emitter: one event object per line inside the
/// "traceEvents" array. finish() closes the document (also run by the
/// destructor as a safety net).
class ChromeTraceWriter {
public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Metadata: name a track group / track in the viewer.
  void process_name(u32 pid, std::string_view name);
  void thread_name(u32 pid, u32 tid, std::string_view name);

  /// Complete slice (ph "X"). `args_json` is an optional pre-rendered JSON
  /// object (including braces) attached as the event's args.
  void complete(u32 pid, u32 tid, std::string_view cat, std::string_view name,
                Cycle ts, Cycle dur, std::string_view args_json = {});

  /// Instant event (ph "i", thread scope).
  void instant(u32 pid, u32 tid, std::string_view cat, std::string_view name,
               Cycle ts);

  /// Nestable async slice pair (ph "b"/"e"), matched by (cat, id).
  void async_begin(u32 pid, std::string_view cat, std::string_view name,
                   u64 id, Cycle ts);
  void async_end(u32 pid, std::string_view cat, std::string_view name, u64 id,
                 Cycle ts);

  void finish();
  u64 events_written() const { return events_; }

private:
  void begin_event();

  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
  u64 events_ = 0;
};

/// Adapts one CycleCpu's TraceEvent stream onto writer tracks. Install with
/// attach() (or forward events yourself when composing with a profiler).
class CpuTraceRecorder {
public:
  /// Track ids inside a CPU's group.
  static constexpr u32 kIssueTid = 0;
  static constexpr u32 kFuTidBase = 1;  // fu0..fu3 -> tids 1..4
  static constexpr u32 kStallTid = 5;
  static constexpr u32 kLsuTid = 6;

  CpuTraceRecorder(ChromeTraceWriter& w, const sim::Program& prog,
                   const TimingConfig& cfg, u32 cpu_id);

  /// Install this recorder as the CPU's trace observer.
  void attach(cpu::CycleCpu& cpu);

  void on_event(const cpu::TraceEvent& ev);

private:
  struct Labels {
    bool filled = false;
    std::string packet;                           // full packet disasm
    std::array<std::string, isa::kMaxSlots> slot; // per-slot disasm
  };
  const Labels& labels(Addr pc, u32 index);

  // Per-instance (not a function-local static): recorders on different
  // threads must not share lazily-initialized state.
  const Labels unknown_{true, "<unknown>", {}};

  ChromeTraceWriter& w_;
  const sim::Program& prog_;
  TimingConfig cfg_;
  u32 pid_;
  std::vector<Labels> labels_;  // dense by packet index
};

/// Adapts one LSU's miss/prefetch events into async slices on the owning
/// CPU's track group.
class LsuTraceRecorder {
public:
  LsuTraceRecorder(ChromeTraceWriter& w, u32 cpu_pid);

  /// Install this recorder as the LSU's observer.
  void attach(mem::Lsu& lsu);

  void on_event(const mem::LsuTraceEvent& ev);

private:
  ChromeTraceWriter& w_;
  u32 pid_;
  u64 seq_ = 0;
};

/// DTE descriptor slices on the DTE track group.
class DteTraceRecorder {
public:
  explicit DteTraceRecorder(ChromeTraceWriter& w);

  void attach(soc::Dte& dte);

  void on_descriptor(const soc::Dte::Descriptor& d, Cycle start, Cycle done);

private:
  ChromeTraceWriter& w_;
  u64 seq_ = 0;
};

/// GPP batch slices: one track per consuming CPU lane on the GPP group.
class GppTraceRecorder {
public:
  explicit GppTraceRecorder(ChromeTraceWriter& w);

  void attach(gpp::Gpp& g);

  void on_batch(const gpp::Batch& b, Cycle start, Cycle done);

private:
  ChromeTraceWriter& w_;
  u64 seq_ = 0;
};

} // namespace majc::trace
