#include "src/trace/json.h"

#include <cmath>
#include <cstdio>

namespace majc::trace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty) {}

void JsonWriter::indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) os_ << ',';
  stack_.back().first = false;
  if (pretty_) indent();
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  os_ << '{';
  stack_.push_back({/*array=*/false, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (pretty_ && !empty) indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  os_ << '[';
  stack_.push_back({/*array=*/true, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (pretty_ && !empty) indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  prefix();
  os_ << '"' << json_escape(k) << "\":";
  if (pretty_) os_ << ' ';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  prefix();
  os_ << v;
  return *this;
}

} // namespace majc::trace
