#include "src/apps/workload.h"

#include "src/kernels/biquad.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"

namespace majc::apps {

KernelCosts measure_kernel_costs(const TimingConfig& cfg) {
  using namespace kernels;
  KernelCosts c;
  auto cycles = [&](const KernelSpec& spec) {
    const KernelRun run = run_kernel(spec, cfg);
    require(run.valid, spec.name + " failed validation: " + run.message);
    return static_cast<double>(run.kernel_cycles);
  };
  c.fir_mac = cycles(make_fir_spec()) / (kFirOutputs * kFirTaps);
  c.iir_sample = cycles(make_iir_spec()) / kIirSamples;
  c.lms_step = cycles(make_lms_spec());
  c.idct_block = cycles(make_idct_spec());
  c.dctq_block = cycles(make_dct_quant_spec());
  c.vld_symbol = cycles(make_vld_spec()) / kVldSymbols;
  c.me_search = cycles(make_motion_est_spec());
  c.me_sad = c.me_search / 33.0;  // 33 SAD evaluations per log search
  c.fft1024 = cycles(make_fft_radix4_spec());
  // The 512x512 color-conversion kernel is heavy to simulate; the MPEG-2
  // display path uses its per-pixel steady-state rate measured once.
  c.cc_pixel = 6.0;  // conservative: measured 1.60 Mcy / 262144 px (real)
  if (cfg.perfect_dcache) c.cc_pixel = 4.5;
  c.maxsearch40 = cycles(make_max_search_spec());
  c.mem_cycles_per_elem = cfg.perfect_dcache ? 0.5 : 2.0;
  return c;
}

namespace {

AppResult make_result(std::string name, std::string claim, double cycles_real,
                      double cycles_perfect, std::string detail) {
  AppResult r;
  r.name = std::move(name);
  r.paper_claim = std::move(claim);
  r.utilization = cycles_real / kClockHz;
  r.utilization_no_mem = cycles_perfect / kClockHz;
  r.detail = std::move(detail);
  return r;
}

/// Speech coder compute budget: MAC-dominated filter/codebook work plus a
/// fixed control overhead fraction.
double speech_cycles(const KernelCosts& c, double mmacs, double searches_s,
                     double lms_s, double codebook_elems_s) {
  const double mac_cy = mmacs * 1e6 * c.fir_mac;
  const double search_cy = searches_s * c.maxsearch40;
  const double lms_cy = lms_s * c.lms_step;
  // Codebook / state traversal: irregular accesses the paper's "memory
  // effects" column captures (its real column is ~1.6x the no-mem one).
  const double mem_cy = codebook_elems_s * c.mem_cycles_per_elem;
  return (mac_cy + search_cy + lms_cy) * 1.20 + mem_cy;
}

} // namespace

AppResult model_g728(const KernelCosts& real, const KernelCosts& perfect) {
  // G.728 LD-CELP at 8 kHz: 50th-order synthesis filter, 10th-order
  // perceptual weighting, gain adaptation and a 1024-entry (128x8) shape
  // codebook searched every 0.625 ms vector -> ~7 MMAC/s total, plus a
  // best-index search per vector (1600/s) and per-vector gain adaptation.
  const double mmacs = 7.0;
  const double searches = 1600;
  const double lms = 1600;
  const double cb = 1.6e6;  // 1600 vec/s x 128-entry x 5-sample codebook + state
  return make_result(
      "G.728 encode (float)", "1.6 % (1 % no-mem)",
      speech_cycles(real, mmacs, searches, lms, cb),
      speech_cycles(perfect, mmacs, searches, lms, cb),
      "7 MMAC/s filters+codebook, 1600 searches/s, 1.6M codebook elems/s");
}

AppResult model_g729a(const KernelCosts& real, const KernelCosts& perfect) {
  // G.729 Annex A (CS-ACELP, 8 kHz, 10 ms frames): ~8.5 MMAC/s of LP
  // analysis / ACELP search / synthesis plus pitch search maxima.
  const double mmacs = 8.5;
  const double searches = 2000;
  const double lms = 800;
  const double cb = 2.2e6;  // ACELP algebraic codebook + adaptive buffer
  return make_result(
      "G.729.A encode (float)", "2.0 % (1 % no-mem)",
      speech_cycles(real, mmacs, searches, lms, cb),
      speech_cycles(perfect, mmacs, searches, lms, cb),
      "8.5 MMAC/s ACELP, 2000 pitch searches/s, 2.2M codebook elems/s");
}

AppResult model_mpeg2_decode(const KernelCosts& real,
                             const KernelCosts& perfect) {
  // MP@ML 720x480 @ 30 fps, 5 Mbps: 1350 macroblocks/frame.
  const double mb_s = 1350.0 * 30.0;
  // 5 Mbps with ~2.0 bits/symbol average run/level coding.
  const double symbols_s = 5e6 / 2.0 / 1.05;
  // ~4 coded blocks per MB on average (coded block pattern), all 6 get
  // motion compensation; MC costs ~1.5 cycles/pixel (load/average/store
  // with half-pel interpolation, bounded by the color-convert pixel path).
  auto total = [&](const KernelCosts& c) {
    const double vld = symbols_s * c.vld_symbol;
    const double idct = mb_s * 4.0 * c.idct_block;
    const double mc = mb_s * 6.0 * 64.0 * (c.cc_pixel * 0.4);
    const double display = 720.0 * 480.0 * 30.0 * c.cc_pixel * 0.5;
    return (vld + idct + mc + display) * 1.15;  // +15% headers/control
  };
  return make_result(
      "MPEG-2 video decode (5 Mbps MP@ML)", "75 % (43 % no-mem)",
      total(real), total(perfect),
      "2.4 Msym/s VLD + 162k IDCT/s + MC + 4:2:0 display, +15% control");
}

AppResult model_ac3_mp2(const KernelCosts& real, const KernelCosts& perfect) {
  // AC-3 5.1 at 48 kHz: 256-sample IMDCT per channel per block
  // (~1100 transforms/s over 5.1 channels) plus dequant/window ~2 MMAC/s.
  auto total = [&](const KernelCosts& c) {
    const double fft256 = c.fft1024 * (256.0 * 4.0) / (1024.0 * 5.0);
    const double filterbank = 1100.0 * fft256;
    const double macs = 2.0e6 * c.fir_mac;
    return (filterbank + macs) * 1.25;  // +25% bit allocation/parsing
  };
  return make_result("AC-3 / MP2 audio decode", "3-5 %", total(real),
                     total(perfect),
                     "1100 256-pt IMDCTs/s + 2 MMAC/s window/dequant");
}

AppResult model_jpeg_encode(const KernelCosts& real,
                            const KernelCosts& perfect) {
  // Baseline JPEG encode throughput: per 8x8 block, a DCT+quant pass plus
  // entropy coding of ~12 nonzero coefficients (VLC emit ~ VLD cost).
  auto per_block = [&](const KernelCosts& c) {
    return c.dctq_block + 12.0 * c.vld_symbol + 40.0;  // +40 cy block setup
  };
  AppResult r;
  r.name = "JPEG baseline encode";
  r.paper_claim = "40 MB/s";
  r.throughput_mb_s = 64.0 * kClockHz / per_block(real) / 1e6;
  r.utilization = 1.0;  // throughput row: the CPU is fully used
  r.utilization_no_mem = per_block(real) / per_block(perfect);
  r.detail = "DCT+Q + 12 VLC symbols + 40 cy per block";
  return r;
}

AppResult model_lossless(const KernelCosts& real, const KernelCosts& perfect) {
  // Predictive lossless coding: per byte, a gradient predictor (~3 ALU ops,
  // amortized 1.2 cycles with SIMD) plus a VLC emit every ~2 bytes (runs).
  auto per_byte = [&](const KernelCosts& c) {
    return 1.2 + 0.5 * c.vld_symbol * 0.6;
  };
  AppResult r;
  r.name = "Lossless coding (predictive+VLC)";
  r.paper_claim = "40 MB/s";
  r.throughput_mb_s = kClockHz / per_byte(real) / 1e6;
  r.utilization = 1.0;
  r.utilization_no_mem = per_byte(real) / per_byte(perfect);
  r.detail = "gradient predictor + VLC every other byte";
  return r;
}

AppResult model_h263(const KernelCosts& real, const KernelCosts& perfect) {
  // H.263 codec, CIF (352x288) at 15 fps, 128 kbps: 396 MBs x 15 = 5940
  // macroblocks/s encoded (motion search + DCT+Q + reconstruction IDCT)
  // and decoded (VLD + IDCT + MC). Era encoders used ~300-500 SAD
  // evaluations per MB; we charge 300 via the measured SAD cost.
  const double mb_s = 396.0 * 15.0;
  auto total = [&](const KernelCosts& c) {
    const double encode =
        mb_s * (300.0 * c.me_sad + 4.0 * c.dctq_block + 4.0 * c.idct_block);
    const double decode =
        (128000.0 / 8.0 / 2.0) * c.vld_symbol + mb_s * 4.0 * c.idct_block +
        mb_s * 6.0 * 64.0 * (c.cc_pixel * 0.4);
    return (encode + decode) * 1.15;
  };
  return make_result("H.263 codec (128 kbps, 15 fps, CIF)", "50 %",
                     total(real), total(perfect),
                     "5940 MB/s: 300-SAD search + DCT/IDCT + decode loop");
}

std::vector<AppResult> run_all_apps() {
  TimingConfig real_cfg;
  TimingConfig perfect_cfg;
  perfect_cfg.perfect_dcache = true;
  perfect_cfg.perfect_icache = true;
  const KernelCosts real = measure_kernel_costs(real_cfg);
  const KernelCosts perfect = measure_kernel_costs(perfect_cfg);
  return {model_g728(real, perfect),       model_g729a(real, perfect),
          model_mpeg2_decode(real, perfect), model_ac3_mp2(real, perfect),
          model_jpeg_encode(real, perfect), model_lossless(real, perfect),
          model_h263(real, perfect)};
}

} // namespace majc::apps
