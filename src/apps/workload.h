// Table 3 application workload models.
//
// The paper reports single-CPU utilizations for complete applications
// (G.728/G.729.A speech coders, MPEG-2 video decode, AC-3/MP2 audio, JPEG,
// a proprietary lossless coder, an H.263 codec). Those codecs are
// proprietary; per DESIGN.md §5.3 we substitute analytic workload models
// whose compute-dominant inner loops are the *measured* MAJC kernels from
// src/kernels, composed with documented per-frame/per-sample counts from
// the public structure of each standard. Utilization is computed the way
// the paper's caption implies: cycles required per real-time second divided
// by 5*10^8. The "without memory effects" column re-measures every kernel
// in the simulator's perfect-D$ mode.
#pragma once

#include <string>
#include <vector>

#include "src/soc/config.h"
#include "src/support/types.h"

namespace majc::apps {

/// Measured per-unit kernel costs (cycles) under one timing configuration.
struct KernelCosts {
  double fir_mac = 0;          // cycles per multiply-accumulate (FIR64)
  double iir_sample = 0;       // cycles per 16th-order IIR sample
  double lms_step = 0;         // cycles per 16-tap LMS adaptation
  double idct_block = 0;       // cycles per 8x8 IDCT
  double dctq_block = 0;       // cycles per 8x8 DCT + quantization
  double vld_symbol = 0;       // cycles per decoded run/level symbol
  double me_search = 0;        // cycles per +/-16 log motion search
  double me_sad = 0;           // cycles per 16x16 SAD evaluation
  double fft1024 = 0;          // cycles per 1024-pt radix-4 complex FFT
  double cc_pixel = 0;         // cycles per color-converted pixel
  double maxsearch40 = 0;      // cycles per 40-element max search
  // Amortized cycles per data element for irregular working-set traffic
  // (codebooks, state tables) that the steady-state kernels do not carry:
  // the real configuration pays cache-miss amortization, the perfect-D$
  // configuration only the 2-cycle load-to-use.
  double mem_cycles_per_elem = 0;
};

/// Run the kernel suite under `cfg` and extract per-unit costs.
KernelCosts measure_kernel_costs(const TimingConfig& cfg);

struct AppResult {
  std::string name;
  std::string paper_claim;
  double utilization = 0;         // fraction of one 500 MHz CPU
  double utilization_no_mem = 0;  // perfect-D$ mode
  double throughput_mb_s = 0;     // only for the byte-rate rows
  std::string detail;             // composition summary
};

// One entry per Table 3 row.
AppResult model_g728(const KernelCosts& real, const KernelCosts& perfect);
AppResult model_g729a(const KernelCosts& real, const KernelCosts& perfect);
AppResult model_mpeg2_decode(const KernelCosts& real,
                             const KernelCosts& perfect);
AppResult model_ac3_mp2(const KernelCosts& real, const KernelCosts& perfect);
AppResult model_jpeg_encode(const KernelCosts& real,
                            const KernelCosts& perfect);
AppResult model_lossless(const KernelCosts& real, const KernelCosts& perfect);
AppResult model_h263(const KernelCosts& real, const KernelCosts& perfect);

/// All rows in table order.
std::vector<AppResult> run_all_apps();

} // namespace majc::apps
