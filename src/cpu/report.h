// Human-readable performance reports for cycle-accurate runs: a CPI stack
// (where every cycle went), issue-width histogram, cache and predictor
// rates. Used by the majc_run tool and the examples.
#pragma once

#include <string>

#include "src/cpu/cycle_cpu.h"

namespace majc::cpu {

/// Full report for a finished single-CPU run.
std::string performance_report(CycleSim& sim);

/// Report for one CPU of a chip-level run (caller supplies the CPU and the
/// memory system it ran against).
std::string performance_report(CycleCpu& cpu, mem::MemorySystem& ms);

} // namespace majc::cpu
