#include "src/cpu/scoreboard.h"

namespace majc::cpu {

u32 bypass_delay(u8 producer, u8 consumer_fu, const TimingConfig& cfg) {
  if (producer == kNoProducer) return 0;
  if (producer == kLsuProducer) return 0;  // load-to-use covers delivery
  if (producer == consumer_fu) return 0;   // full bypass within an FU
  if (!cfg.full_bypass) return cfg.wb_delay;
  if (producer == 1 && consumer_fu == 0) return 0;  // FU1 -> FU0: no delay
  if (producer == 0) return 1;  // FU0 -> FU1/2/3: next cycle
  return cfg.wb_delay;          // all else waits for Trap/WB
}

} // namespace majc::cpu
