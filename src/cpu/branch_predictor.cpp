#include "src/cpu/branch_predictor.h"

#include "src/support/error.h"

namespace majc::cpu {

BranchPredictor::BranchPredictor(const TimingConfig& cfg)
    : enabled_(cfg.bpred_enabled),
      history_mask_((1u << cfg.bpred_history_bits) - 1u),
      counters_(cfg.bpred_entries, 2) {
  require((cfg.bpred_entries & (cfg.bpred_entries - 1)) == 0,
          "predictor entry count must be a power of two");
}

u32 BranchPredictor::index(Addr pc) const {
  const u32 hashed = static_cast<u32>(pc >> 2) ^ (ghr_ & history_mask_);
  return hashed & (static_cast<u32>(counters_.size()) - 1u);
}

bool BranchPredictor::predict(Addr pc) const {
  ++lookups_;
  if (!enabled_) return false;  // static predict not-taken
  return counters_[index(pc)] >= 2;
}

void BranchPredictor::update(Addr pc, bool taken) {
  const bool predicted = enabled_ ? (counters_[index(pc)] >= 2) : false;
  if (predicted == taken) ++correct_;
  if (enabled_) {
    u8& c = counters_[index(pc)];
    if (taken && c < 3) ++c;
    if (!taken && c > 0) --c;
    ghr_ = ((ghr_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  }
}

} // namespace majc::cpu
