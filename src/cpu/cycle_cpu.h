// Cycle-accurate model of one MAJC-5200 CPU.
//
// In-order VLIW timing layered over the functional executor: a packet issues
// when (1) its instruction bytes have arrived from the I$, (2) every source
// operand is available to its consuming slot per the scoreboard + bypass
// matrix, (3) each slot's functional unit has recovered from non-pipelined /
// partially-pipelined predecessors, and (4) the LSU can accept the packet's
// memory operation. Conditional branches consult the gshare predictor;
// mispredictions and indirect jumps pay the front-end refill penalty.
//
// Vertical microthreading (MAJC §2; TimingConfig::hw_threads > 1): each CPU
// holds several architectural contexts. When the running thread's next
// packet would stall longer than mt_switch_threshold — typically on a
// long-latency memory fetch — and another context can issue sooner, the CPU
// switches contexts for mt_switch_penalty cycles ("rapid, low overhead
// context switching"). Functional units, the LSU, the branch predictor and
// the caches are shared; registers and the scoreboard are per-thread.
//
// The functional executor runs at issue time, so results are bit-identical
// to the instruction-accurate simulator by construction.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "src/cpu/branch_predictor.h"
#include "src/cpu/scoreboard.h"
#include "src/mem/ecc.h"
#include "src/mem/memsys.h"
#include "src/sim/functional_sim.h"
#include "src/support/stats.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::cpu {

/// One issued packet (or context switch) as seen by a trace observer.
/// Fields beyond the stall breakdown are filled only while a trace observer
/// is installed; the untraced hot path never touches them.
struct TraceEvent {
  Cycle cycle = 0;     // issue cycle (or switch decision cycle)
  Addr pc = 0;
  u32 thread = 0;
  u32 width = 0;       // 0 for a context-switch event
  u32 stall_ifetch = 0;
  u32 stall_operand = 0;
  u32 stall_fu = 0;
  u32 stall_lsu = 0;   // LSU acceptance stall absorbed before issue
  u32 stall_branch = 0;  // refill penalty charged behind this packet's
                         // mispredicted branch or indirect jump
  Cycle lsu_issue = 0;   // mem op: cycle the LSU accepted it (0 = none)
  Cycle lsu_ready = 0;   // loads/atomics: cycle the data can be consumed
  u8 mem_kind = 0;       // sim::MemAccess::Kind of the packet's memory op
  // Operand reads of this packet by delivery path (BypassPath order): the
  // per-packet view of the asymmetric bypass network.
  std::array<u8, kNumBypassPaths> bypass{};
  bool branch_taken = false;
  bool mispredicted = false;
  bool context_switch = false;
};

/// Stall causes attributed by the cycle model, as a fixed enum so the
/// per-packet hot path indexes a flat array instead of a string-keyed map.
enum class StallCause : u8 {
  kIfetch,
  kOperand,
  kFuBusy,
  kLsu,
  kBranchPenalty,
};
inline constexpr u32 kNumStallCauses = 5;

/// Flat stall accumulators. aggregate() renders them into the string-keyed
/// CounterSet used at report time, so report output is unchanged.
struct StallCounters {
  std::array<u64, kNumStallCauses> counts{};

  void add(StallCause c, u64 delta = 1) {
    counts[static_cast<u32>(c)] += delta;
  }
  u64 get(StallCause c) const { return counts[static_cast<u32>(c)]; }
  u64 total() const;
  /// Report-time view: named counters (zero counters omitted, matching the
  /// sparse CounterSet the hot path used to populate).
  CounterSet aggregate() const;
};

struct CpuStats {
  u64 packets = 0;
  u64 instrs = 0;
  Histogram width_hist{5};  // buckets 1..4 used
  u64 cond_branches = 0;
  u64 taken_branches = 0;
  u64 mispredicts = 0;
  u64 jumps = 0;
  u64 thread_switches = 0;
  u64 traps_delivered = 0;  // traps recovered via the guest handler (SETTVEC)
  StallCounters stalls;  // ifetch / operand / fu_busy / lsu / branch_penalty
};

class CycleCpu {
public:
  CycleCpu(const sim::Program& prog, sim::MemoryBus& mem,
           mem::MemorySystem& ms, u32 cpu_id);

  /// Issue and execute the next packet of the scheduled thread (or perform
  /// a context switch). No-op once every thread has halted. An architected
  /// trap is delivered to the faulting thread's handler when one is
  /// installed (SETTVEC) and execution continues; otherwise it stops the
  /// whole CPU (every context) and is recorded in trap().
  void step();

  /// Why a run_steps() batch stopped.
  enum class RunEnd : u8 {
    kTrap,      // machine-level trap stopped the CPU (trap() is set)
    kWatchdog,  // no externally visible progress for `wd` cycles
    kHalted,    // every context halted
    kBudget,    // stats().packets reached max_packets
    kLimit,     // cached_now() advanced past `limit`
  };

  /// Step repeatedly until a bound is hit, with the per-step dispatch
  /// hoisted out of the loop. The watchdog compares cached_now() against
  /// max(last_progress(), ext_progress) + wd after every step (wd == 0
  /// disables it); `limit` stops the batch once cached_now() exceeds it —
  /// the chip scheduler uses it to run the earliest CPU exactly as long as
  /// the one-step-at-a-time scheduler would have kept picking it, and
  /// single-CPU harnesses pass ~Cycle{0}. End-condition precedence matches
  /// the historical single-step run loops: trap > watchdog > halted >
  /// budget. Single-threaded untraced CPUs run a specialized step body
  /// (no scheduling scan, no switch heuristic, no trace plumbing).
  RunEnd run_steps(u64 max_packets, u64 wd, Cycle ext_progress, Cycle limit);

  bool halted() const;
  /// The trap that stopped this CPU, if any (nullptr = no trap).
  const Trap* trap() const { return trap_ ? &*trap_ : nullptr; }
  /// Cycle at which the next packet would issue (== elapsed cycles so far).
  Cycle now() const;
  /// now(), maintained incrementally by step(). Exact during a run loop —
  /// nothing else mutates thread ready cycles between steps — and O(1), so
  /// per-step watchdog / scheduling checks avoid the O(hw_threads) scan.
  Cycle cached_now() const { return now_cache_; }
  /// Cycle of the last externally visible effect this CPU retired (store,
  /// atomic, console output, or halt) — the watchdog's progress signal.
  Cycle last_progress() const { return last_progress_; }

  u32 hw_threads() const { return static_cast<u32>(threads_.size()); }
  u32 active_thread() const { return active_; }
  sim::CpuState& state(u32 thread = 0) { return threads_[thread].state; }
  const sim::CpuState& state(u32 thread = 0) const {
    return threads_[thread].state;
  }
  /// Point a thread at an entry address (threads default to the image entry
  /// and can dispatch on GETTID instead).
  void set_thread_pc(u32 thread, Addr pc) { threads_[thread].state.pc = pc; }

  const CpuStats& stats() const { return stats_; }
  const std::string& console() const { return console_; }
  BranchPredictor& predictor() { return bpred_; }
  /// The most recent trap recovered via the guest handler (code == kNone if
  /// none was delivered).
  const Trap& last_delivered_trap() const { return last_trap_; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Install a per-packet trace observer (empty function disables).
  void set_trace(std::function<void(const TraceEvent&)> fn) {
    trace_ = std::move(fn);
  }

private:
  struct ThreadCtx {
    sim::CpuState state;
    Scoreboard sb;
    Cycle ready = 0;  // earliest cycle this thread may issue next
    // Dense index of the packet at state.pc, or kNoPacketIndex if unknown.
    // idx_pc records which pc the cached index was computed for, so external
    // pc writes (set_thread_pc, tests) fall back to the map lookup.
    u32 idx = sim::kNoPacketIndex;
    Addr idx_pc = 0;
  };

  struct IssueEstimate {
    Cycle t = 0;
    Cycle ifetch = 0;
    Cycle operand = 0;
    Cycle fu = 0;
  };
  /// Issue time for the thread's next packet (ifetch + operands +
  /// structural) with the stall breakdown; the I$ access is performed
  /// (fetch-ahead happens whether or not the packet then issues), stall
  /// statistics are only recorded by the caller on actual issue.
  IssueEstimate issue_time(ThreadCtx& th, const sim::PacketMeta& m);
  /// One issue/execute step. kFast specializes for the single-threaded,
  /// untraced configuration: thread 0 is the only candidate (no scheduling
  /// scan or switch heuristic), trace attribution is compiled out, and the
  /// now() cache is thread 0's ready cycle directly.
  template <bool kFast>
  void step_body();
  void step_impl() { step_body<false>(); }
  /// Deliver a trap raised mid-step: vector into the guest handler when one
  /// is installed (returns true, CPU keeps running) or record it as the
  /// machine-level stop reason (returns false).
  bool handle_trap(const TrapException& e);
  void update_now_cache();

  const sim::Program& prog_;
  mem::MemorySystem& ms_;
  mem::Lsu& lsu_;  // this CPU's LSU (stable: restore() refills in place)
  const TimingConfig& cfg_;
  u32 cpu_id_;

  std::vector<ThreadCtx> threads_;
  u32 active_ = 0;
  sim::ExecEnv env_;
  sim::PacketScratch scratch_;  // reused per-packet executor storage
  BranchPredictor bpred_;
  // Structural busy clocks per FU, split by sub-unit: ops with issue
  // interval 1 never conflict; the iterative divide/rsqrt unit and the
  // partially pipelined FP64 pipe each track their own recovery. Shared by
  // all threads (the paper's threads share the functional units).
  static constexpr u32 kFuResources = 2;  // 0 = iterative, 1 = fp64 pipe
  std::array<std::array<Cycle, kFuResources>, isa::kNumFus> fu_busy_{};
  // bypass_delay() precomputed over every (producer, consumer) pair for
  // this config: the operand loop's delay lookup is one indexed load
  // instead of a branch chain. Filled once in the constructor.
  std::array<std::array<u8, isa::kNumFus>, kNoProducer + 1> bypass_tbl_{};
  Cycle current_cycle_ = 0;
  Cycle now_cache_ = 0;
  std::string console_;
  CpuStats stats_;
  std::function<void(const TraceEvent&)> trace_;
  std::optional<Trap> trap_;
  Trap last_trap_;
  Cycle last_progress_ = 0;
};

/// Single-CPU convenience harness mirroring FunctionalSim: owns the memory,
/// the ECC layer, the memory system and one CycleCpu.
class CycleSim {
public:
  explicit CycleSim(masm::Image image, const TimingConfig& cfg = {},
                    std::size_t mem_bytes = sim::FlatMemory::kDefaultBytes);
  /// Share a predecoded program instead of assembling a private copy (the
  /// farm engine predecodes each image once for all workers).
  explicit CycleSim(sim::ProgramRef program, const TimingConfig& cfg = {},
                    std::size_t mem_bytes = sim::FlatMemory::kDefaultBytes);

  /// Reinitialize in place for a fresh run — optionally of a different
  /// program and timing config — reusing the memory arena instead of
  /// reallocating it. A reset machine is indistinguishable from a newly
  /// constructed one: caches, LSU, branch predictor, fault streams and
  /// statistics all restart from their constructed state.
  void reset(sim::ProgramRef program, const TimingConfig& cfg);

  struct Result {
    Cycle cycles = 0;
    u64 packets = 0;
    u64 instrs = 0;
    bool halted = false;
    TerminationReason reason = TerminationReason::kPacketCap;
    Trap trap;  // valid (code != kNone) only when reason == kTrap
    double ipc() const {
      return cycles == 0 ? 0.0
                         : static_cast<double>(instrs) /
                               static_cast<double>(cycles);
    }
  };

  Result run(u64 max_packets = 100'000'000);

  CycleCpu& cpu() { return *cpu_; }
  const CycleCpu& cpu() const { return *cpu_; }
  mem::MemorySystem& memsys() { return *ms_; }
  const mem::MemorySystem& memsys() const { return *ms_; }
  sim::FlatMemory& memory() { return mem_; }
  const sim::FlatMemory& memory() const { return mem_; }
  mem::EccMemory& ecc() { return *eccmem_; }
  const mem::EccMemory& ecc() const { return *eccmem_; }
  const sim::Program& program() const { return *prog_; }
  const std::string& console() const { return cpu_->console(); }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  /// (Re)build everything downstream of the arena: memory contents, memory
  /// system, ECC decoration, CPU. Shared by the constructor and reset().
  void init(const TimingConfig& cfg);

  sim::ProgramRef prog_;
  sim::FlatMemory mem_;
  // optional so reset() can reconstruct in place (machine reuse); engaged
  // for the whole life of the object after construction.
  std::optional<mem::MemorySystem> ms_;
  std::optional<mem::EccMemory> eccmem_;
  std::unique_ptr<CycleCpu> cpu_;
};

} // namespace majc::cpu
