// Register scoreboard and bypass-network timing.
//
// The paper (§3.2): instruction scheduling is the compiler's job; only
// non-deterministic loads and long-latency operations are interlocked
// through a score-boarding mechanism. Results bypass within a functional
// unit as soon as available; FU1 results forward to FU0 with no delay;
// FU0 results are visible to FU1/FU2/FU3 in the next cycle; everything else
// becomes visible at the Trap/WB stage.
//
// The model interlocks *all* operands (stalling instead of reading stale
// values), which reproduces the timing of a correctly scheduled program and
// keeps badly scheduled hand-written kernels correct rather than silently
// wrong. The per-(producer, consumer) bypass matrix below is the paper's.
#pragma once

#include <array>

#include "src/isa/registers.h"
#include "src/soc/config.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::cpu {

/// Producer identifiers: 0..3 = FU0..FU3, kLsuProducer = load data from the
/// LSU (whose latency already covers delivery to any consumer).
inline constexpr u8 kLsuProducer = 4;
inline constexpr u8 kNoProducer = 5;

/// How an operand read is delivered — the observability layer's view of the
/// paper's asymmetric bypass network. kRegfile covers reads of values that
/// settled through Trap/WB before the consuming packet issued; the other
/// paths are live forwards of results still in flight.
enum class BypassPath : u8 {
  kRegfile,    // value already architecturally settled
  kSameFu,     // full bypass within the producing FU
  kLsu,        // load data straight from the LSU
  kFu1ToFu0,   // the zero-delay FU1 -> FU0 forward
  kFu0Forward, // FU0 -> FU1/2/3, next cycle
  kWriteback,  // cross-FU through the Trap/WB stage
};
inline constexpr u32 kNumBypassPaths = 6;

inline const char* bypass_path_name(BypassPath p) {
  static constexpr const char* kNames[kNumBypassPaths] = {
      "regfile", "same_fu", "lsu", "fu1_to_fu0", "fu0_forward", "writeback"};
  return kNames[static_cast<u32>(p)];
}

/// Extra forwarding delay from `producer` to `consumer` on top of the
/// producer's completion cycle. Inline: this sits inside the operand loop
/// of the cycle model's inner loop.
inline u32 bypass_delay(u8 producer, u8 consumer_fu, const TimingConfig& cfg) {
  if (producer == kNoProducer) return 0;
  if (producer == kLsuProducer) return 0;  // load-to-use covers delivery
  if (producer == consumer_fu) return 0;   // full bypass within an FU
  if (!cfg.full_bypass) return cfg.wb_delay;
  if (producer == 1 && consumer_fu == 0) return 0;  // FU1 -> FU0: no delay
  if (producer == 0) return 1;  // FU0 -> FU1/2/3: next cycle
  return cfg.wb_delay;          // all else waits for Trap/WB
}

class Scoreboard {
public:
  struct Entry {
    Cycle done = 0;       // cycle the result exists in the producing FU
    u8 producer = kNoProducer;
  };

  void set(isa::PhysReg reg, Cycle done, u8 producer) {
    if (reg == 0) return;  // g0 is constant
    entries_[reg] = {done, producer};
  }

  /// Cycle at which `reg` can be consumed by an instruction in slot
  /// `consumer_fu`.
  Cycle ready(isa::PhysReg reg, u8 consumer_fu, const TimingConfig& cfg) const {
    if (reg == 0) return 0;
    const Entry& e = entries_[reg];
    if (e.producer == kNoProducer) return 0;
    return e.done + bypass_delay(e.producer, consumer_fu, cfg);
  }

  /// Raw entry access for the cycle model's branch-free operand loop, which
  /// replaces ready()'s conditional chain with a precomputed
  /// (producer, consumer) delay table. The table lookup relies on two
  /// invariants: g0's entry is never written (set() skips reg 0) and stays
  /// {done = 0, producer = kNoProducer}; and done == 0 whenever producer ==
  /// kNoProducer (entries only ever get real producers), so `done +
  /// table[producer][fu]` equals ready() for every register.
  const Entry& entry(isa::PhysReg reg) const { return entries_[reg]; }

  /// Classify how a read of `reg` by slot `consumer_fu` issuing at `at`
  /// would be delivered. Trace-time only (never on the untraced hot path):
  /// a result that left the bypass window (done + wb_delay <= at) reads from
  /// the register file; everything newer names its forwarding path, with
  /// the bypass-matrix delay deciding between the asymmetric cross-FU
  /// routes (so the !full_bypass ablation classifies as writeback).
  BypassPath classify(isa::PhysReg reg, u8 consumer_fu, Cycle at,
                      const TimingConfig& cfg) const {
    if (reg == 0) return BypassPath::kRegfile;
    const Entry& e = entries_[reg];
    if (e.producer == kNoProducer) return BypassPath::kRegfile;
    if (e.done + cfg.wb_delay <= at) return BypassPath::kRegfile;
    if (e.producer == kLsuProducer) return BypassPath::kLsu;
    if (e.producer == consumer_fu) return BypassPath::kSameFu;
    const u32 d = bypass_delay(e.producer, consumer_fu, cfg);
    if (d == 0) return BypassPath::kFu1ToFu0;
    if (d == 1) return BypassPath::kFu0Forward;
    return BypassPath::kWriteback;
  }

  void clear() { entries_.fill({}); }

  void save(ckpt::Writer& w) const;   // defined in support/checkpoint.cpp
  void restore(ckpt::Reader& r);

private:
  std::array<Entry, isa::kNumRegs> entries_{};
};

} // namespace majc::cpu
