#include "src/cpu/schedule_check.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/cpu/scoreboard.h"
#include "src/isa/disasm.h"

namespace majc::cpu {
namespace {

using isa::Instr;
using isa::PhysReg;

/// Deterministic producers the hardware does NOT interlock: everything
/// except loads/atomics (whose return timing depends on the memory system).
bool deterministic(const isa::OpInfo& info) {
  return !info.is_load() && !info.has(isa::kAtomic);
}

void sources_of(const Instr& in, u32 fu, InlineVec<PhysReg, 12>& out) {
  const isa::OpInfo& info = in.info();
  auto add = [&](isa::RegSpec spec, bool pair) {
    const PhysReg p = isa::to_phys(spec, fu);
    out.push_back(p);
    if (pair) out.push_back(static_cast<PhysReg>(p + 1));
  };
  if (info.has(isa::kReadsRs1)) add(in.rs1, info.has(isa::kRs1Pair));
  if (info.has(isa::kReadsRs2)) add(in.rs2, info.has(isa::kRs2Pair));
  if (info.has(isa::kReadsRd)) {
    if (info.has(isa::kRdGroup)) {
      const PhysReg p = isa::to_phys(in.rd, fu);
      for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
    } else {
      add(in.rd, info.has(isa::kRdPair));
    }
  }
}

void dests_of(const Instr& in, u32 fu, InlineVec<PhysReg, 8>& out) {
  const isa::OpInfo& info = in.info();
  if (info.has(isa::kCall)) {
    out.push_back(isa::to_phys(isa::kLinkReg, fu));
    return;
  }
  if (!info.writes_rd()) return;
  const PhysReg p = isa::to_phys(in.rd, fu);
  if (info.has(isa::kRdGroup)) {
    for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
  } else {
    out.push_back(p);
    if (info.has(isa::kRdPair)) out.push_back(static_cast<PhysReg>(p + 1));
  }
}

} // namespace

std::string ScheduleReport::to_string(std::size_t max_lines) const {
  std::ostringstream os;
  os << "schedule check: " << violations.size() << " violation(s) across "
     << packets_checked << " packets in " << blocks_checked << " blocks\n";
  std::size_t shown = 0;
  for (const auto& v : violations) {
    if (shown++ >= max_lines) {
      os << "  ... (" << violations.size() - max_lines << " more)\n";
      break;
    }
    os << "  pc 0x" << std::hex << v.pc << std::dec << " slot " << v.slot
       << ": reads phys r" << static_cast<u32>(v.reg) << " " << v.shortfall
       << " cycle(s) early: " << v.text << "\n";
  }
  return os.str();
}

ScheduleReport check_schedule(const sim::Program& prog,
                              const TimingConfig& cfg) {
  const masm::Image& img = prog.image();
  // Collect basic-block leaders: entry, branch/call targets, fall-throughs
  // after any control transfer.
  std::set<Addr> leaders;
  leaders.insert(img.entry);
  std::size_t w = 0;
  while (w < img.code.size()) {
    const Addr pc = img.code_base + w * 4;
    const isa::Packet p =
        isa::decode_packet(std::span<const u32>(img.code).subspan(w));
    const Instr& c = p.slot[0];
    const isa::OpInfo& info = c.info();
    if (info.has(isa::kBranch) || info.has(isa::kCall)) {
      leaders.insert(pc + static_cast<Addr>(static_cast<i64>(c.imm) * 4));
      leaders.insert(pc + p.bytes());
    } else if (info.has(isa::kJump) || info.has(isa::kHalt)) {
      leaders.insert(pc + p.bytes());
    }
    w += p.width;
  }

  ScheduleReport rep;
  // Per-register completion record within the current block, assuming one
  // packet per cycle: {cycle the result exists, producing FU}.
  struct Avail {
    Cycle done = 0;
    u8 producer = kNoProducer;
  };
  std::array<Avail, isa::kNumRegs> avail{};

  Cycle clock = 0;
  w = 0;
  while (w < img.code.size()) {
    const Addr pc = img.code_base + w * 4;
    if (leaders.count(pc)) {
      avail.fill({});
      clock = 0;
      ++rep.blocks_checked;
    }
    const isa::Packet p =
        isa::decode_packet(std::span<const u32>(img.code).subspan(w));
    for (u32 s = 0; s < p.width; ++s) {
      InlineVec<PhysReg, 12> srcs;
      sources_of(p.slot[s], s, srcs);
      for (PhysReg r : srcs) {
        if (r == 0 || avail[r].producer == kNoProducer) continue;
        const Cycle ready =
            avail[r].done + bypass_delay(avail[r].producer, static_cast<u8>(s),
                                         cfg);
        if (ready > clock) {
          rep.violations.push_back(
              {pc, s, r, static_cast<u32>(ready - clock),
               isa::disasm_instr(p.slot[s])});
        }
      }
    }
    for (u32 s = 0; s < p.width; ++s) {
      const isa::OpInfo& info = p.slot[s].info();
      InlineVec<PhysReg, 8> dests;
      dests_of(p.slot[s], s, dests);
      for (PhysReg r : dests) {
        if (r == 0) continue;
        if (deterministic(info)) {
          avail[r] = {clock + info.latency, static_cast<u8>(s)};
        } else {
          avail[r] = {};  // interlocked by hardware: never a violation
        }
      }
    }
    ++rep.packets_checked;
    ++clock;
    w += p.width;
  }
  return rep;
}

ScheduleReport check_schedule(const masm::Image& image,
                              const TimingConfig& cfg) {
  return check_schedule(sim::Program(image), cfg);
}

} // namespace majc::cpu
