// Two-level gshare branch prediction.
//
// The paper (Fig. 2) specifies a "2-level, g-share, branch prediction array,
// 4096 entries, 12 history bits". The model implements exactly that: a
// global history register XORed with the branch packet address indexes a
// table of 2-bit saturating counters. Static prediction (predict not-taken)
// is the ablation fallback when dynamic prediction is disabled.
#pragma once

#include <vector>

#include "src/soc/config.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::cpu {

class BranchPredictor {
public:
  explicit BranchPredictor(const TimingConfig& cfg);

  /// Direction prediction for the conditional branch in the packet at `pc`.
  bool predict(Addr pc) const;

  /// Train with the resolved outcome (also updates the history register).
  void update(Addr pc, bool taken);

  u64 lookups() const { return lookups_; }
  u64 correct() const { return correct_; }
  double accuracy() const {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(correct_) /
                               static_cast<double>(lookups_);
  }
  void reset_stats() { lookups_ = correct_ = 0; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  u32 index(Addr pc) const;

  bool enabled_;
  u32 history_mask_;
  std::vector<u8> counters_;  // 2-bit saturating, initialized weakly taken
  u32 ghr_ = 0;
  mutable u64 lookups_ = 0;
  u64 correct_ = 0;
};

} // namespace majc::cpu
