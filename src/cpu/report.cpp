#include "src/cpu/report.h"

#include <cstdio>
#include <sstream>

namespace majc::cpu {
namespace {

void line(std::ostringstream& os, const char* label, double value,
          const char* unit) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "  %-28s %12.2f %s\n", label, value, unit);
  os << buf;
}

} // namespace

std::string performance_report(CycleCpu& cpu, mem::MemorySystem& ms) {
  const CpuStats& st = cpu.stats();
  const auto cycles = static_cast<double>(cpu.now());
  const auto packets = static_cast<double>(st.packets);
  std::ostringstream os;
  os << "=== MAJC CPU performance report ===\n";
  line(os, "cycles", cycles, "");
  line(os, "packets", packets, "");
  line(os, "instructions", static_cast<double>(st.instrs), "");
  if (cycles > 0) {
    line(os, "IPC", static_cast<double>(st.instrs) / cycles, "instr/cycle");
    line(os, "packet rate", packets / cycles, "packets/cycle");
  }

  os << "CPI stack (cycles per packet):\n";
  if (packets > 0) {
    line(os, "  issue", 1.0, "");
    const CounterSet stall_set = st.stalls.aggregate();
    for (const auto& [cause, stall] : stall_set.all()) {
      line(os, ("  " + cause).c_str(),
           static_cast<double>(stall) / packets, "");
    }
  }

  os << "issue width histogram:\n";
  for (u32 w = 1; w <= 4; ++w) {
    line(os, ("  " + std::to_string(w) + "-wide").c_str(),
         static_cast<double>(st.width_hist.bucket(w)), "packets");
  }
  line(os, "  mean width", st.width_hist.mean(), "");

  os << "memory and prediction:\n";
  line(os, "  I$ hit rate", 100.0 * ms.icache(0).hit_rate(), "%");
  line(os, "  D$ hit rate", 100.0 * ms.dcache().hit_rate(), "%");
  line(os, "  branch accuracy", 100.0 * cpu.predictor().accuracy(), "%");
  line(os, "  DRDRAM busy", static_cast<double>(ms.dram().busy_cycles()),
       "cycles");
  if (st.thread_switches > 0) {
    line(os, "  context switches", static_cast<double>(st.thread_switches),
         "");
  }
  return os.str();
}

std::string performance_report(CycleSim& sim) {
  return performance_report(sim.cpu(), sim.memsys());
}

} // namespace majc::cpu
