// Static schedule checker.
//
// On the real MAJC-5200 "the instruction scheduling is a compiler driven
// task ... only the non-deterministic loads and long latency instructions
// are interlocked through a score-boarding mechanism. All the other
// instructions have a deterministic delay" (paper §3.2). Code that reads a
// deterministic-latency result too early therefore gets a stale value on
// silicon. This repository's simulators interlock everything (documented in
// src/cpu/scoreboard.h), so such code still computes correct values; this
// checker reports exactly where a program relies on that safety net — the
// gap between simulated and silicon behaviour, and the worklist a scheduler
// would have to fix.
//
// The analysis walks each basic block assuming one packet per cycle and
// flags reads of deterministic results that occur before
// completion + bypass delay. Loads/atomics are exempt (hardware interlocks
// them) and state is reset at basic-block boundaries (conservative: no
// cross-block violations are reported).
#pragma once

#include <string>
#include <vector>

#include "src/sim/functional_sim.h"
#include "src/soc/config.h"

namespace majc::cpu {

struct ScheduleViolation {
  Addr pc = 0;        // packet address of the too-early consumer
  u32 slot = 0;       // consuming slot (FU)
  isa::PhysReg reg = 0;
  u32 shortfall = 0;  // cycles the read is early
  std::string text;   // disassembly of the consuming instruction
};

struct ScheduleReport {
  std::vector<ScheduleViolation> violations;
  u64 packets_checked = 0;
  u64 blocks_checked = 0;

  bool clean() const { return violations.empty(); }
  std::string to_string(std::size_t max_lines = 20) const;
};

/// Check every basic block of `prog` against the bypass matrix in `cfg`.
ScheduleReport check_schedule(const sim::Program& prog,
                              const TimingConfig& cfg = {});

/// Convenience: assemble-and-check.
ScheduleReport check_schedule(const masm::Image& image,
                              const TimingConfig& cfg = {});

} // namespace majc::cpu
