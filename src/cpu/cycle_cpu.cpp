#include "src/cpu/cycle_cpu.h"

#include <algorithm>

namespace majc::cpu {
namespace {

using isa::Instr;
using isa::PhysReg;

/// Physical source registers read by `in` when executing in slot `fu`.
void collect_sources(const Instr& in, u32 fu, InlineVec<PhysReg, 12>& out) {
  const isa::OpInfo& info = in.info();
  auto add = [&](isa::RegSpec spec, bool pair) {
    const PhysReg p = isa::to_phys(spec, fu);
    out.push_back(p);
    if (pair) out.push_back(static_cast<PhysReg>(p + 1));
  };
  if (info.has(isa::kReadsRs1)) add(in.rs1, info.has(isa::kRs1Pair));
  if (info.has(isa::kReadsRs2)) add(in.rs2, info.has(isa::kRs2Pair));
  if (info.has(isa::kReadsRd)) {
    if (info.has(isa::kRdGroup)) {
      const PhysReg p = isa::to_phys(in.rd, fu);
      for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
    } else {
      add(in.rd, info.has(isa::kRdPair));
    }
  }
}

/// Physical destination registers written by `in` in slot `fu`.
void collect_dests(const Instr& in, u32 fu, InlineVec<PhysReg, 8>& out) {
  const isa::OpInfo& info = in.info();
  if (info.has(isa::kCall)) {
    out.push_back(isa::to_phys(isa::kLinkReg, fu));
    return;
  }
  if (!info.writes_rd()) return;
  const PhysReg p = isa::to_phys(in.rd, fu);
  if (info.has(isa::kRdGroup)) {
    for (u32 i = 0; i < 8; ++i) out.push_back(static_cast<PhysReg>(p + i));
  } else {
    out.push_back(p);
    if (info.has(isa::kRdPair)) out.push_back(static_cast<PhysReg>(p + 1));
  }
}

int resource_of(const isa::OpInfo& info) {
  if (info.issue_interval <= 1) return -1;
  return info.cls == isa::OpClass::kFp64 ? 1 : 0;
}

} // namespace

CycleCpu::CycleCpu(const sim::Program& prog, sim::MemoryBus& mem,
                   mem::MemorySystem& ms, u32 cpu_id)
    : prog_(prog),
      ms_(ms),
      cfg_(ms.config()),
      cpu_id_(cpu_id),
      env_{mem},
      bpred_(ms.config()) {
  env_.cpu_id = cpu_id;
  env_.trap_div_zero = cfg_.trap_div_zero;
  env_.trap = [this](u32 code, u32 value) {
    sim::FunctionalSim::format_trap(console_, code, value);
  };
  env_.tick = [this] { return current_cycle_; };
  threads_.resize(std::max(1u, cfg_.hw_threads));
  for (auto& th : threads_) th.state.pc = prog.image().entry;
}

bool CycleCpu::halted() const {
  if (trap_) return true;  // a trap stops the whole CPU
  for (const auto& th : threads_) {
    if (!th.state.halted) return false;
  }
  return true;
}

Cycle CycleCpu::now() const {
  Cycle best = ~Cycle{0};
  bool any = false;
  for (const auto& th : threads_) {
    if (th.state.halted) continue;
    best = std::min(best, th.ready);
    any = true;
  }
  if (!any) {
    // All halted: report the time the last thread stopped.
    best = 0;
    for (const auto& th : threads_) best = std::max(best, th.ready);
  }
  return best;
}

CycleCpu::IssueEstimate CycleCpu::issue_time(ThreadCtx& th,
                                             const isa::Packet& p) {
  IssueEstimate est;
  const Addr pc = th.state.pc;
  // (1) Instruction supply.
  const Cycle t0 = th.ready;
  Cycle t = std::max(t0, ms_.ifetch(cpu_id_, pc, p.bytes(), t0));
  est.ifetch = t - t0;

  // (2) Operand availability (scoreboard interlock + bypass matrix).
  const Cycle t_ops = t;
  for (u32 i = 0; i < p.width; ++i) {
    InlineVec<PhysReg, 12> srcs;
    collect_sources(p.slot[i], i, srcs);
    for (PhysReg r : srcs) {
      t = std::max(t, th.sb.ready(r, static_cast<u8>(i), cfg_));
    }
  }
  est.operand = t - t_ops;

  // (3) Structural hazards: non-pipelined divide / rsqrt and the partially
  // pipelined FP64 pipe keep their sub-unit busy.
  const Cycle t_fu = t;
  for (u32 i = 0; i < p.width; ++i) {
    const int res = resource_of(p.slot[i].info());
    if (res >= 0) t = std::max(t, fu_busy_[i][static_cast<u32>(res)]);
  }
  est.fu = t - t_fu;
  est.t = t;
  return est;
}

void CycleCpu::step() {
  if (halted()) return;
  try {
    step_impl();
  } catch (const TrapException& e) {
    // Deliver the trap precisely: the faulting packet committed no register
    // writes, so the active thread's pc still names it.
    Trap t = e.trap();
    t.cpu = cpu_id_;
    t.pc = threads_[active_].state.pc;
    t.cycle = std::max(current_cycle_, threads_[active_].ready);
    trap_ = std::move(t);
  }
}

void CycleCpu::step_impl() {
  // Schedule: stay on the active thread unless it halted.
  if (threads_[active_].state.halted) {
    for (u32 i = 0; i < threads_.size(); ++i) {
      if (!threads_[i].state.halted) {
        active_ = i;
        break;
      }
    }
  }
  ThreadCtx* th = &threads_[active_];
  const Addr pc = th->state.pc;
  const isa::Packet& p = prog_.packet_at(pc);
  const IssueEstimate est = issue_time(*th, p);
  Cycle t = est.t;

  // Vertical microthreading: if this thread is about to stall past the
  // threshold and another context could issue sooner (accounting for the
  // switch penalty), switch instead of stalling.
  if (threads_.size() > 1 && t > th->ready + cfg_.mt_switch_threshold) {
    u32 best = active_;
    Cycle best_ready = t;
    for (u32 i = 0; i < threads_.size(); ++i) {
      if (i == active_ || threads_[i].state.halted) continue;
      const Cycle cand =
          std::max(threads_[i].ready, th->ready + cfg_.mt_switch_penalty);
      if (cand < best_ready) {
        best = i;
        best_ready = cand;
      }
    }
    if (best != active_) {
      th->ready = t;  // resume here once the operands arrive
      threads_[best].ready = best_ready;
      if (trace_) {
        TraceEvent ev;
        ev.cycle = threads_[best].ready;
        ev.pc = pc;
        ev.thread = active_;
        ev.context_switch = true;
        trace_(ev);
      }
      active_ = best;
      ++stats_.thread_switches;
      return;  // the next step issues from the switched-in context
    }
  }

  if (est.ifetch > 0) stats_.stalls.add("ifetch", est.ifetch);
  if (est.operand > 0) stats_.stalls.add("operand", est.operand);
  if (est.fu > 0) stats_.stalls.add("fu_busy", est.fu);
  env_.thread_id = active_;

  // Execute architecturally at cycle t.
  current_cycle_ = t;
  const std::size_t console_before = console_.size();
  const sim::PacketOutcome out = sim::execute_packet(th->state, p, env_);

  // Watchdog progress: an externally visible effect retired at cycle t.
  if (out.mem.kind == sim::MemAccess::Kind::kStore ||
      out.mem.kind == sim::MemAccess::Kind::kAtomic || out.halted ||
      console_.size() != console_before) {
    last_progress_ = std::max(last_progress_, t);
  }

  // (4) LSU acceptance and load-data timing.
  Cycle load_ready = 0;
  if (out.mem.kind != sim::MemAccess::Kind::kNone) {
    const mem::Lsu::IssueResult r = ms_.lsu(cpu_id_).issue(out.mem, t);
    if (r.issue_at > t) {
      stats_.stalls.add("lsu", r.issue_at - t);
      t = r.issue_at;
    }
    load_ready = r.data_ready;
  }

  // Writeback scheduling.
  for (u32 i = 0; i < p.width; ++i) {
    const Instr& in = p.slot[i];
    const isa::OpInfo& info = in.info();
    InlineVec<PhysReg, 8> dests;
    collect_dests(in, i, dests);
    const bool is_load_data = info.is_load() || info.has(isa::kAtomic);
    const Cycle done =
        is_load_data ? std::max(load_ready, t + 1) : t + info.latency;
    const u8 producer = is_load_data ? kLsuProducer : static_cast<u8>(i);
    for (PhysReg r : dests) th->sb.set(r, done, producer);
    if (const int res = resource_of(info); res >= 0) {
      fu_busy_[i][static_cast<u32>(res)] =
          std::max(fu_busy_[i][static_cast<u32>(res)], t + info.issue_interval);
    }
  }

  // Control flow and the next issue slot.
  Cycle next = t + 1;
  if (out.is_cond_branch) {
    ++stats_.cond_branches;
    if (out.branch_taken) ++stats_.taken_branches;
    const bool predicted = bpred_.predict(pc);
    bpred_.update(pc, out.branch_taken);
    if (predicted != out.branch_taken) {
      ++stats_.mispredicts;
      next += cfg_.mispredict_penalty;
      stats_.stalls.add("branch_penalty", cfg_.mispredict_penalty);
    }
  } else if (out.is_jump) {
    ++stats_.jumps;
    next += cfg_.jump_penalty;
    stats_.stalls.add("branch_penalty", cfg_.jump_penalty);
  }
  th->ready = next;

  ++stats_.packets;
  stats_.instrs += out.width;
  stats_.width_hist.add(out.width);

  if (trace_) {
    TraceEvent ev;
    ev.cycle = t;
    ev.pc = pc;
    ev.thread = active_;
    ev.width = out.width;
    ev.stall_ifetch = static_cast<u32>(est.ifetch);
    ev.stall_operand = static_cast<u32>(est.operand);
    ev.stall_fu = static_cast<u32>(est.fu);
    ev.branch_taken = out.is_cond_branch && out.branch_taken;
    ev.mispredicted = next > t + 1 && out.is_cond_branch;
    trace_(ev);
  }
}

CycleSim::CycleSim(masm::Image image, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : prog_(std::move(image)),
      mem_(mem_bytes),
      ms_(cfg),
      eccmem_(mem_, ms_.fault_plan()) {
  sim::load_image(prog_.image(), mem_);
  cpu_ = std::make_unique<CycleCpu>(prog_, eccmem_, ms_, /*cpu_id=*/0);
  for (u32 t = 0; t < cpu_->hw_threads(); ++t) {
    // Distinct stacks per hardware thread, 64 KB apart below the top.
    cpu_->state(t).regs[2] =
        static_cast<u32>(mem_.size() - 64 - t * (64u << 10));
  }
}

CycleSim::Result CycleSim::run(u64 max_packets) {
  Result res;
  const u64 wd = ms_.config().watchdog_cycles;
  bool watchdog_fired = false;
  while (!cpu_->halted() && cpu_->stats().packets < max_packets) {
    cpu_->step();
    if (wd != 0 && cpu_->now() > cpu_->last_progress() + wd) {
      watchdog_fired = true;
      break;
    }
  }
  res.cycles = cpu_->now();
  res.packets = cpu_->stats().packets;
  res.instrs = cpu_->stats().instrs;
  if (const Trap* t = cpu_->trap()) {
    res.reason = TerminationReason::kTrap;
    res.trap = *t;
  } else if (watchdog_fired) {
    res.reason = TerminationReason::kWatchdog;
  } else if (cpu_->halted()) {
    res.halted = true;
    res.reason = TerminationReason::kHalted;
  } else {
    res.reason = TerminationReason::kPacketCap;
  }
  return res;
}

} // namespace majc::cpu
