#include "src/cpu/cycle_cpu.h"

#include <algorithm>

namespace majc::cpu {

u64 StallCounters::total() const {
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  return sum;
}

CounterSet StallCounters::aggregate() const {
  static constexpr std::array<const char*, kNumStallCauses> kNames = {
      "ifetch", "operand", "fu_busy", "lsu", "branch_penalty"};
  CounterSet out;
  for (u32 i = 0; i < kNumStallCauses; ++i) {
    if (counts[i] != 0) out.add(kNames[i], counts[i]);
  }
  return out;
}

CycleCpu::CycleCpu(const sim::Program& prog, sim::MemoryBus& mem,
                   mem::MemorySystem& ms, u32 cpu_id)
    : prog_(prog),
      ms_(ms),
      lsu_(ms.lsu(cpu_id)),
      cfg_(ms.config()),
      cpu_id_(cpu_id),
      env_{mem},
      bpred_(ms.config()) {
  for (u32 p = 0; p <= kNoProducer; ++p) {
    for (u32 fu = 0; fu < isa::kNumFus; ++fu) {
      bypass_tbl_[p][fu] = static_cast<u8>(
          bypass_delay(static_cast<u8>(p), static_cast<u8>(fu), cfg_));
    }
  }
  env_.cpu_id = cpu_id;
  env_.trap_div_zero = cfg_.trap_div_zero;
  env_.console = &console_;
  env_.tick = &current_cycle_;
  threads_.resize(std::max(1u, cfg_.hw_threads));
  for (auto& th : threads_) th.state.pc = prog.image().entry;
}

bool CycleCpu::halted() const {
  if (trap_) return true;  // a trap stops the whole CPU
  for (const auto& th : threads_) {
    if (!th.state.halted) return false;
  }
  return true;
}

Cycle CycleCpu::now() const {
  Cycle best = ~Cycle{0};
  bool any = false;
  for (const auto& th : threads_) {
    if (th.state.halted) continue;
    best = std::min(best, th.ready);
    any = true;
  }
  if (!any) {
    // All halted: report the time the last thread stopped.
    best = 0;
    for (const auto& th : threads_) best = std::max(best, th.ready);
  }
  return best;
}

void CycleCpu::update_now_cache() { now_cache_ = now(); }

CycleCpu::IssueEstimate CycleCpu::issue_time(ThreadCtx& th,
                                             const sim::PacketMeta& m) {
  IssueEstimate est;
  // (1) Instruction supply.
  const Cycle t0 = th.ready;
  Cycle t = std::max(t0, ms_.ifetch(cpu_id_, m.pc, m.bytes, t0));
  est.ifetch = t - t0;

  // (2) Operand availability (scoreboard interlock + bypass matrix), over
  // the packet's predecoded flat source list. Branch-free: see
  // Scoreboard::entry() for why done + table[producer][fu] == ready().
  const Cycle t_ops = t;
  for (const auto& s : m.srcs) {
    const Scoreboard::Entry& e = th.sb.entry(s.reg);
    t = std::max(t, e.done + bypass_tbl_[e.producer][s.fu]);
  }
  est.operand = t - t_ops;

  // (3) Structural hazards: non-pipelined divide / rsqrt and the partially
  // pipelined FP64 pipe keep their sub-unit busy.
  const Cycle t_fu = t;
  if (m.any_resource) {
    for (u32 i = 0; i < m.width; ++i) {
      const int res = m.slot[i].resource;
      if (res >= 0) t = std::max(t, fu_busy_[i][static_cast<u32>(res)]);
    }
  }
  est.fu = t - t_fu;
  est.t = t;
  return est;
}

bool CycleCpu::handle_trap(const TrapException& e) {
  // The faulting packet committed no register writes, so the active
  // thread's pc still names it — except for LSU-raised machine checks,
  // which surface after commit (the LSU issues post-commit) and therefore
  // report the next packet's pc: an imprecise, asynchronous machine check,
  // still cleanly resumable via RETT.
  ThreadCtx& th = threads_[active_];
  Trap t = e.trap();
  t.cpu = cpu_id_;
  t.pc = th.state.pc;
  t.cycle = std::max(current_cycle_, th.ready);
  t.unit = TimeUnit::kCycles;
  if (th.state.can_deliver(t.deliverable)) {
    // Recover: vector this thread into its handler and keep the CPU
    // running. Entry costs trap_entry_penalty cycles of front-end refill.
    const u32 fidx = prog_.find_index(th.state.pc);
    const Addr npc = fidx == sim::kNoPacketIndex
                         ? th.state.pc
                         : prog_.meta(fidx).fall_through;
    th.state.deliver_trap(static_cast<u32>(t.code), t.pc, npc, t.value);
    th.idx = sim::kNoPacketIndex;
    th.idx_pc = th.state.pc;
    th.ready = t.cycle + cfg_.trap_entry_penalty;
    ++stats_.traps_delivered;
    last_trap_ = std::move(t);
    update_now_cache();
    return true;
  }
  trap_ = std::move(t);
  return false;
}

void CycleCpu::step() {
  if (halted()) return;
  try {
    step_impl();
  } catch (const TrapException& e) {
    handle_trap(e);
  }
}

template <bool kFast>
void CycleCpu::step_body() {
  if constexpr (!kFast) {
    // Schedule: stay on the active thread unless it halted.
    if (threads_[active_].state.halted) {
      for (u32 i = 0; i < threads_.size(); ++i) {
        if (!threads_[i].state.halted) {
          active_ = i;
          break;
        }
      }
    }
  }
  ThreadCtx* th = kFast ? &threads_[0] : &threads_[active_];
  const Addr pc = th->state.pc;
  if (th->idx == sim::kNoPacketIndex || th->idx_pc != pc) {
    th->idx = prog_.index_of(pc);  // traps on a non-packet address
    th->idx_pc = pc;
  }
  const isa::Packet& p = prog_.packet(th->idx);
  const sim::PacketMeta& m = prog_.meta(th->idx);
  const IssueEstimate est = issue_time(*th, m);
  Cycle t = est.t;

  // Vertical microthreading: if this thread is about to stall past the
  // threshold and another context could issue sooner (accounting for the
  // switch penalty), switch instead of stalling.
  if (!kFast && threads_.size() > 1 && t > th->ready + cfg_.mt_switch_threshold) {
    u32 best = active_;
    Cycle best_ready = t;
    for (u32 i = 0; i < threads_.size(); ++i) {
      if (i == active_ || threads_[i].state.halted) continue;
      const Cycle cand =
          std::max(threads_[i].ready, th->ready + cfg_.mt_switch_penalty);
      if (cand < best_ready) {
        best = i;
        best_ready = cand;
      }
    }
    if (best != active_) {
      th->ready = t;  // resume here once the operands arrive
      threads_[best].ready = best_ready;
      if (trace_) {
        TraceEvent ev;
        ev.cycle = threads_[best].ready;
        ev.pc = pc;
        ev.thread = active_;
        ev.context_switch = true;
        trace_(ev);
      }
      active_ = best;
      ++stats_.thread_switches;
      update_now_cache();
      return;  // the next step issues from the switched-in context
    }
  }

  if (est.ifetch > 0) stats_.stalls.add(StallCause::kIfetch, est.ifetch);
  if (est.operand > 0) stats_.stalls.add(StallCause::kOperand, est.operand);
  if (est.fu > 0) stats_.stalls.add(StallCause::kFuBusy, est.fu);
  env_.thread_id = active_;

  // Bypass-path attribution for the trace observer. Must run before this
  // packet's own writebacks reach the scoreboard, and only does under an
  // installed observer (the untraced hot path skips it entirely).
  std::array<u8, kNumBypassPaths> bypass_reads{};
  if (!kFast && trace_) {
    for (const auto& s : m.srcs) {
      ++bypass_reads[static_cast<u32>(th->sb.classify(s.reg, s.fu, t, cfg_))];
    }
  }

  // Execute architecturally at cycle t.
  current_cycle_ = t;
  const std::size_t console_before = console_.size();
  const sim::PacketOutcome out =
      sim::execute_packet(th->state, p, m, env_, scratch_);

  // Watchdog progress: an externally visible effect retired at cycle t.
  if (out.mem.kind == sim::MemAccess::Kind::kStore ||
      out.mem.kind == sim::MemAccess::Kind::kAtomic || out.halted ||
      console_.size() != console_before) {
    last_progress_ = std::max(last_progress_, t);
  }

  // (4) LSU acceptance and load-data timing.
  Cycle lsu_stall = 0;
  Cycle load_ready = 0;
  Cycle lsu_issue_at = 0;
  if (out.mem.kind != sim::MemAccess::Kind::kNone) {
    const mem::Lsu::IssueResult r = lsu_.issue(out.mem, t);
    lsu_issue_at = r.issue_at;
    if (r.issue_at > t) {
      lsu_stall = r.issue_at - t;
      stats_.stalls.add(StallCause::kLsu, lsu_stall);
      t = r.issue_at;
      // Keep the model's notion of "current cycle" in sync so trap cycles
      // and GETTICK on subsequent packets see the post-stall time.
      current_cycle_ = t;
    }
    load_ready = r.data_ready;
  }

  // Writeback scheduling, from the predecoded flat destination list (same
  // slot order as the old per-slot nested loop; scoreboard and fu_busy_ are
  // disjoint, so splitting the loops preserves every update).
  if (m.any_dests) {
    for (const sim::PacketMeta::DestWrite& d : m.dsts) {
      const Cycle done =
          d.load_data ? std::max(load_ready, t + 1) : t + d.latency;
      th->sb.set(d.reg, done, d.load_data ? kLsuProducer : d.slot);
    }
  }
  if (m.any_resource) {
    for (u32 i = 0; i < m.width; ++i) {
      const sim::PacketMeta::SlotMeta& sm = m.slot[i];
      if (sm.resource >= 0) {
        auto& busy = fu_busy_[i][static_cast<u32>(sm.resource)];
        busy = std::max(busy, t + sm.issue_interval);
      }
    }
  }

  // Control flow and the next issue slot.
  Cycle next = t + 1;
  if (out.is_cond_branch) {
    ++stats_.cond_branches;
    if (out.branch_taken) ++stats_.taken_branches;
    const bool predicted = bpred_.predict(pc);
    bpred_.update(pc, out.branch_taken);
    if (predicted != out.branch_taken) {
      ++stats_.mispredicts;
      next += cfg_.mispredict_penalty;
      stats_.stalls.add(StallCause::kBranchPenalty, cfg_.mispredict_penalty);
    }
  } else if (out.is_jump) {
    ++stats_.jumps;
    next += cfg_.jump_penalty;
    stats_.stalls.add(StallCause::kBranchPenalty, cfg_.jump_penalty);
  }
  th->ready = next;

  // Follow the predecoded successor indices: sequential flow and static
  // taken targets skip the pc -> index hash lookup on the next step.
  if (out.next_pc == m.fall_through) {
    th->idx = m.next_index;
  } else if (m.taken_index != sim::kNoPacketIndex &&
             out.next_pc == m.taken_target) {
    th->idx = m.taken_index;
  } else {
    th->idx = sim::kNoPacketIndex;
  }
  th->idx_pc = out.next_pc;

  ++stats_.packets;
  stats_.instrs += out.width;
  stats_.width_hist.add(out.width);

  if (!kFast && trace_) {
    TraceEvent ev;
    ev.cycle = t;
    ev.pc = pc;
    ev.thread = active_;
    ev.width = out.width;
    ev.stall_ifetch = static_cast<u32>(est.ifetch);
    ev.stall_operand = static_cast<u32>(est.operand);
    ev.stall_fu = static_cast<u32>(est.fu);
    ev.stall_lsu = static_cast<u32>(lsu_stall);
    ev.stall_branch = static_cast<u32>(next - (t + 1));
    ev.lsu_issue = lsu_issue_at;
    ev.lsu_ready = load_ready;
    ev.mem_kind = static_cast<u8>(out.mem.kind);
    ev.bypass = bypass_reads;
    ev.branch_taken = out.is_cond_branch && out.branch_taken;
    ev.mispredicted = next > t + 1 && out.is_cond_branch;
    trace_(ev);
  }
  if constexpr (kFast) {
    // One thread: now() is thread 0's ready cycle whether it halted or not.
    now_cache_ = th->ready;
  } else {
    update_now_cache();
  }
}

CycleCpu::RunEnd CycleCpu::run_steps(u64 max_packets, u64 wd,
                                     Cycle ext_progress, Cycle limit) {
  bool wd_fired = false;
  if (threads_.size() == 1 && !trace_) {
    // Hot loop: dispatch decided once, try/catch per batch entry instead of
    // per step, end-condition checks on the O(1) now cache.
    ThreadCtx& th = threads_[0];
    while (!trap_ && !th.state.halted && stats_.packets < max_packets) {
      try {
        step_body<true>();
      } catch (const TrapException& e) {
        if (!handle_trap(e)) break;
      }
      if (wd != 0 &&
          now_cache_ > std::max(last_progress_, ext_progress) + wd) {
        wd_fired = true;
        break;
      }
      if (now_cache_ > limit) break;
    }
  } else {
    while (!halted() && stats_.packets < max_packets) {
      step();
      if (wd != 0 &&
          now_cache_ > std::max(last_progress_, ext_progress) + wd) {
        wd_fired = true;
        break;
      }
      if (now_cache_ > limit) break;
    }
  }
  if (trap_) return RunEnd::kTrap;
  if (wd_fired) return RunEnd::kWatchdog;
  if (halted()) return RunEnd::kHalted;
  if (stats_.packets >= max_packets) return RunEnd::kBudget;
  return RunEnd::kLimit;
}

CycleSim::CycleSim(masm::Image image, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : CycleSim(sim::make_program(std::move(image)), cfg, mem_bytes) {}

CycleSim::CycleSim(sim::ProgramRef program, const TimingConfig& cfg,
                   std::size_t mem_bytes)
    : prog_(std::move(program)), mem_(mem_bytes) {
  init(cfg);
}

void CycleSim::init(const TimingConfig& cfg) {
  ms_.emplace(cfg);
  eccmem_.emplace(mem_, ms_->fault_plan());
  eccmem_->set_poison_hook([this](Addr line) { ms_->poison_line(line); });
  sim::load_image(prog_->image(), mem_);
  cpu_ = std::make_unique<CycleCpu>(*prog_, *eccmem_, *ms_, /*cpu_id=*/0);
  for (u32 t = 0; t < cpu_->hw_threads(); ++t) {
    // Distinct stacks per hardware thread, 64 KB apart below the top.
    cpu_->state(t).regs[2] =
        static_cast<u32>(mem_.size() - 64 - t * (64u << 10));
  }
}

void CycleSim::reset(sim::ProgramRef program, const TimingConfig& cfg) {
  if (program) prog_ = std::move(program);
  // Reuse the arena: re-zero it instead of reallocating 32 MB of fresh
  // pages per job, then rebuild the machine around it. Everything except
  // the arena's allocation is reconstructed, so a reset machine reproduces
  // a fresh machine's run bit-for-bit (tests/test_farm.cpp asserts this).
  auto raw = mem_.raw();
  std::fill(raw.begin(), raw.end(), u8{0});
  init(cfg);
}

CycleSim::Result CycleSim::run(u64 max_packets) {
  Result res;
  const CycleCpu::RunEnd end = cpu_->run_steps(
      max_packets, ms_->config().watchdog_cycles, /*ext_progress=*/0,
      /*limit=*/~Cycle{0});
  res.cycles = cpu_->now();
  res.packets = cpu_->stats().packets;
  res.instrs = cpu_->stats().instrs;
  switch (end) {
    case CycleCpu::RunEnd::kTrap:
      res.reason = TerminationReason::kTrap;
      res.trap = *cpu_->trap();
      break;
    case CycleCpu::RunEnd::kWatchdog:
      res.reason = TerminationReason::kWatchdog;
      break;
    case CycleCpu::RunEnd::kHalted:
      res.halted = true;
      res.reason = TerminationReason::kHalted;
      break;
    case CycleCpu::RunEnd::kBudget:
    case CycleCpu::RunEnd::kLimit:
      res.reason = TerminationReason::kPacketCap;
      break;
  }
  return res;
}

} // namespace majc::cpu
