#include "src/mem/ecc.h"

#include <string>

#include "src/support/trap.h"

namespace majc::mem {

void EccMemory::read(Addr addr, std::span<u8> out) {
  inner_.read(addr, out);
  if (!plan_.enabled() || out.empty()) return;

  const Addr first = addr & ~Addr{kLineBytes - 1};
  const Addr last = (addr + out.size() - 1) & ~Addr{kLineBytes - 1};
  for (Addr line = first; line <= last; line += kLineBytes) {
    if (!healed_.empty() && healed_.count(line) != 0) continue;
    switch (plan_.dram_fault(line)) {
      case FaultPlan::DramFault::kNone:
        break;
      case FaultPlan::DramFault::kCorrectable:
        if (plan_.config().ecc_enabled) {
          // Single-bit error: SEC-DED corrects in-line; data is clean.
          ++corrected_;
        } else {
          // No ECC: the stuck bit reaches the consumer.
          const u32 bit =
              plan_.flipped_bit(line, static_cast<u32>(out.size()) * 8);
          out[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
          ++silent_corruptions_;
        }
        break;
      case FaultPlan::DramFault::kUncorrectable: {
        if (plan_.config().ecc_enabled) {
          ++machine_checks_;
          switch (plan_.config().mc_policy) {
            case MachineCheckPolicy::kRetry:
              // Transient double-bit flip: absent on the re-read. The line
              // stays fault-prone (a stuck cell re-faults next access).
              ++retried_;
              continue;
            case MachineCheckPolicy::kPoison:
            case MachineCheckPolicy::kDeliver:
              // Scrub: rewrite the line from the architected backing value
              // and invalidate cached copies (the refill is the timing
              // cost). kPoison continues transparently; kDeliver also
              // informs the guest handler, which can then retry cleanly.
              ++poisoned_;
              healed_.insert(line);
              if (poison_hook_) poison_hook_(line);
              if (plan_.config().mc_policy == MachineCheckPolicy::kPoison) {
                continue;
              }
              raise_trap(TrapCause::kMachineCheck,
                         "uncorrectable ECC error reading DRAM line " +
                             std::to_string(line) + " (line scrubbed)",
                         static_cast<u32>(line), /*deliverable=*/true);
            case MachineCheckPolicy::kFatal:
              raise_trap(TrapCause::kMachineCheck,
                         "uncorrectable ECC error reading DRAM line " +
                             std::to_string(line),
                         static_cast<u32>(line), /*deliverable=*/false);
          }
        }
        const u32 bit =
            plan_.flipped_bit(line, static_cast<u32>(out.size()) * 8);
        out[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        out[0] ^= 1u;  // double-bit: corrupt a second position
        ++silent_corruptions_;
        break;
      }
    }
  }
}

} // namespace majc::mem
