#include "src/mem/crossbar.h"

#include <algorithm>
#include <cmath>

namespace majc::mem {

std::string_view port_name(Port p) {
  switch (p) {
    case Port::kCpu0: return "cpu0";
    case Port::kCpu1: return "cpu1";
    case Port::kGpp: return "gpp";
    case Port::kDte: return "dte";
    case Port::kNupa: return "nupa";
    case Port::kSupa: return "supa";
    case Port::kPci: return "pci";
    case Port::kMem: return "mem";
    case Port::kCount: break;
  }
  return "?";
}

Crossbar::Crossbar(const TimingConfig& cfg) : hop_(cfg.crossbar_hop) {
  // Internal agents run at the crossbar's native width (8 bytes/cycle at the
  // core clock = 4 GB/s per port); external interfaces are capped at their
  // physical rates (paper §3.1).
  constexpr double kInternal = 8.0;
  bandwidth_ = {kInternal, kInternal, kInternal, kInternal,
                /*nupa=*/4.0, /*supa=*/4.0, cfg.pci_bytes_per_cycle,
                /*mem=*/kInternal};
  bandwidth_[static_cast<std::size_t>(Port::kNupa)] = cfg.upa_bytes_per_cycle;
  bandwidth_[static_cast<std::size_t>(Port::kSupa)] = cfg.upa_bytes_per_cycle;
}

Cycle Crossbar::transfer(Port src, Port dst, u32 bytes, Cycle now) {
  auto& src_free = free_[static_cast<std::size_t>(src)];
  auto& dst_free = free_[static_cast<std::size_t>(dst)];
  const double bw = std::min(port_bandwidth(src), port_bandwidth(dst));
  Cycle start = std::max({now, src_free, dst_free});
  if (plan_ != nullptr && plan_->enabled()) {
    if (plan_->grant_dropped(transfers_)) {
      // Lost grant: the requester times out and re-arbitrates.
      start += hop_ + plan_->config().xbar_delay_cycles;
      ++dropped_grants_;
    }
    if (const u32 d = plan_->grant_delay(transfers_); d > 0) {
      start += d;
      ++delayed_grants_;
    }
  }
  const auto duration =
      static_cast<Cycle>(std::ceil(static_cast<double>(bytes) / bw));
  src_free = start + duration;
  dst_free = start + duration;
  bytes_[static_cast<std::size_t>(src)] += bytes;
  bytes_[static_cast<std::size_t>(dst)] += bytes;
  ++transfers_;
  return start + hop_ + duration;
}

void Crossbar::reset_stats() {
  bytes_.fill(0);
  transfers_ = 0;
  delayed_grants_ = 0;
  dropped_grants_ = 0;
}

} // namespace majc::mem
