#include "src/mem/lsu.h"

#include <bit>
#include <string>

#include "src/support/trap.h"

namespace majc::mem {

using sim::MemAccess;

CounterSet Lsu::counters() const {
  static constexpr std::array<const char*, kNumLsuCounters> kNames = {
      "loads",
      "stores",
      "atomics",
      "membars",
      "load_misses",
      "store_misses",
      "mshr_merges",
      "mshr_full_stalls",
      "load_buffer_stalls",
      "store_buffer_stalls",
      "blocking_stalls",
      "store_forwards",
      "dport_conflicts",
      "wc_lines",
      "wc_stores",
      "prefetches",
      "prefetches_queued",
      "prefetches_dropped",
      "fill_parity_retries",
      "fill_machine_checks",
  };
  CounterSet out;
  for (u32 i = 0; i < kNumLsuCounters; ++i) {
    if (counters_[i] != 0) out.add(kNames[i], counters_[i]);
  }
  return out;
}

Lsu::Lsu(const TimingConfig& cfg, Cache& dcache, Dram& dram, Crossbar& xbar,
         Port port, Cycle* dcache_port_free, const FaultPlan* plan)
    : cfg_(cfg),
      dcache_(dcache),
      dram_(dram),
      xbar_(xbar),
      port_(port),
      dport_free_(dcache_port_free),
      plan_(plan) {
  // Garbage for non-pow2 line sizes, in which case Cache::hit_fast rejects
  // every hint and a misindexed memo slot is merely never useful.
  line_shift_ = static_cast<u32>(std::countr_zero(cfg_.line_bytes));
  // Buffers are small and bounded (atomics may briefly push loads_ past its
  // nominal capacity): one reservation keeps the issue path allocation-free.
  loads_.reserve(cfg_.load_buffers + 4);
  stores_.reserve(cfg_.store_buffers + 1);
  mshr_.reserve(cfg_.mshrs + 1);
}

void Lsu::rebuild_watermarks() {
  Cycle peak = 0;
  store_live_ = 0;
  for (Cycle c : loads_) peak = std::max(peak, c);
  for (const StoreEntry& s : stores_) {
    peak = std::max(peak, s.done);
    store_live_ = std::max(store_live_, s.done);
  }
  for (const MshrEntry& e : mshr_) peak = std::max(peak, e.done);
  peak_done_ = peak;
  prune_now_ = 0;  // everything restored is live as of the save boundary
}

Cycle Lsu::fill_line(Addr addr, Cycle now) {
  const Addr line = addr & ~Addr{cfg_.line_bytes - 1};
  const Cycle at_mem = xbar_.transfer(port_, Port::kMem, 0, now);
  const Cycle dram_done = dram_.request(line, cfg_.line_bytes, at_mem);
  // Return path for the line through the crossbar.
  Cycle done = xbar_.transfer(Port::kMem, port_, cfg_.line_bytes, dram_done);
  if (plan_ != nullptr) {
    // Parity-bad fills are discarded and refetched from DRDRAM. Data stays
    // correct (the backing store is the truth); the cost is purely timing —
    // bounded: a line that keeps arriving bad becomes a machine check
    // instead of spinning until the watchdog fires.
    u32 attempts = 0;
    while (plan_->fill_corrupted(line, fills_++)) {
      if (attempts++ >= cfg_.faults.max_fill_retries) {
        bump(LsuCounter::kFillMachineChecks);
        raise_trap(TrapCause::kMachineCheck,
                   "cache fill for line " + std::to_string(line) +
                       " failed parity " + std::to_string(attempts) +
                       " consecutive times",
                   static_cast<u32>(line));
      }
      bump(LsuCounter::kFillParityRetries);
      const Cycle at2 = xbar_.transfer(port_, Port::kMem, 0, done);
      done = xbar_.transfer(Port::kMem, port_, cfg_.line_bytes,
                            dram_.request(line, cfg_.line_bytes, at2));
    }
  }
  return done;
}

Cycle Lsu::mshr_ready(Cycle now) {
  if (mshr_.size() < cfg_.mshrs) return now;
  Cycle earliest = ~Cycle{0};
  for (const MshrEntry& e : mshr_) earliest = std::min(earliest, e.done);
  return std::max(now, earliest);
}

Cycle Lsu::cached_access(Addr addr, u32 bytes, bool is_store, bool allocate,
                         Cycle now) {
  (void)bytes;
  // A fill already in flight for this line? Attach to it (miss merge). The
  // `done > now` filter skips lazily retained retired fills.
  const Addr line = addr & ~Addr{cfg_.line_bytes - 1};
  for (const MshrEntry& e : mshr_) {
    if (e.line == line && e.done > now) {
      bump(LsuCounter::kMshrMerges);
      // Mark the line present for subsequent accesses.
      dcache_.access(addr, is_store, allocate, &dhint(addr));
      return e.done;
    }
  }
  if (dcache_.hit_fast(addr, is_store, dhint(addr))) return now;
  const Cache::AccessResult res = dcache_.access(addr, is_store, allocate,
                                                 &dhint(addr));
  if (res.hit) return now;

  bump(is_store ? LsuCounter::kStoreMisses : LsuCounter::kLoadMisses);
  const Cycle start = mshr_ready(now);
  if (start > now) bump(LsuCounter::kMshrFullStalls, start - now);
  // Entries that retire by `start` free their slots for this miss.
  std::erase_if(mshr_, [start](const MshrEntry& e) { return e.done <= start; });
  const Cycle done = fill_line(line, start);
  if (observer_) {
    observer_({is_store ? LsuTraceEvent::Kind::kStoreMiss
                        : LsuTraceEvent::Kind::kLoadMiss,
               line, start, done});
  }
  if (allocate && mshr_.size() < cfg_.mshrs) {
    mshr_.push_back({line, done});
    record(done);
  }
  if (res.writeback) {
    // Victim write-back: consumes channel bandwidth but nobody waits on it.
    const Cycle at_mem = xbar_.transfer(port_, Port::kMem, cfg_.line_bytes, done);
    dram_.request(res.victim_line, cfg_.line_bytes, at_mem);
  }
  return done;
}

Lsu::IssueResult Lsu::issue(const MemAccess& acc, Cycle now) {
  // Retired-entry boundary: the eager scheme swept all three buffers here
  // (and again after each stall below). We only advance the boundary; the
  // scans filter on it implicitly via `done > now`, and checkpoint save
  // applies it so the serialized buffers match the eager scheme's bytes.
  prune_now_ = std::max(prune_now_, now);
  IssueResult out{now, now};

  if (cfg_.perfect_dcache) {
    out.data_ready = now + cfg_.load_to_use;
    return out;
  }
  if (!cfg_.nonblocking_loads && blocked_until_ > now) {
    out.issue_at = blocked_until_;
    bump(LsuCounter::kBlockingStalls, blocked_until_ - now);
    now = blocked_until_;
    prune_now_ = now;
  }
  // Single-ported D$ ablation: cached accesses from both CPUs serialize on
  // the one port.
  if (dport_free_ != nullptr && acc.attr != 1 &&
      (acc.kind == MemAccess::Kind::kLoad ||
       acc.kind == MemAccess::Kind::kStore ||
       acc.kind == MemAccess::Kind::kAtomic)) {
    if (*dport_free_ > now) {
      bump(LsuCounter::kDportConflicts, *dport_free_ - now);
      out.issue_at = *dport_free_;
      now = *dport_free_;
      prune_now_ = now;
    }
    *dport_free_ = now + 1;
  }

  switch (acc.kind) {
    case MemAccess::Kind::kLoad: {
      // Load buffer capacity (5 entries): compact retired entries only when
      // the raw count reaches capacity, then stall only if genuinely full.
      if (loads_.size() >= cfg_.load_buffers) {
        std::erase_if(loads_, [now](Cycle c) { return c <= now; });
        if (loads_.size() >= cfg_.load_buffers) {
          const Cycle slot = *std::min_element(loads_.begin(), loads_.end());
          bump(LsuCounter::kLoadBufferStalls, slot > now ? slot - now : 0);
          out.issue_at = std::max(now, slot);
          now = out.issue_at;
          prune_now_ = now;
        }
      }
      // Store-to-load forwarding from the store buffer. When the newest
      // store completion is already in the past no entry can be live, so
      // the scan is skipped entirely (the common streaming-kernel case).
      if (store_live_ > now) {
        for (const StoreEntry& s : stores_) {
          if (s.done > now && s.addr <= acc.addr &&
              acc.addr + acc.bytes <= s.addr + s.bytes) {
            bump(LsuCounter::kStoreForwards);
            out.data_ready = now + 1;
            loads_.push_back(out.data_ready);
            record(out.data_ready);
            return out;
          }
        }
      }
      Cycle ready;
      if (acc.attr == 1) {  // non-cached: straight to memory
        const Cycle at_mem = xbar_.transfer(port_, Port::kMem, 0, now);
        ready = xbar_.transfer(Port::kMem, port_,
                               std::max(acc.bytes, 4u),
                               dram_.request(acc.addr, acc.bytes, at_mem));
      } else {
        const bool allocate = acc.attr != 2;  // non-allocating loads don't fill
        ready = cached_access(acc.addr, acc.bytes, /*is_store=*/false, allocate,
                              now) +
                cfg_.load_to_use;
      }
      out.data_ready = ready;
      loads_.push_back(ready);
      record(ready);
      if (!cfg_.nonblocking_loads && ready > now + cfg_.load_to_use) {
        blocked_until_ = ready;
      }
      bump(LsuCounter::kLoads);
      return out;
    }
    case MemAccess::Kind::kStore: {
      if (stores_.size() >= cfg_.store_buffers) {
        std::erase_if(stores_,
                      [now](const StoreEntry& s) { return s.done <= now; });
        if (stores_.size() >= cfg_.store_buffers) {
          Cycle slot = stores_.front().done;
          for (const StoreEntry& s : stores_) slot = std::min(slot, s.done);
          bump(LsuCounter::kStoreBufferStalls, slot > now ? slot - now : 0);
          out.issue_at = std::max(now, slot);
          now = out.issue_at;
          prune_now_ = now;
        }
      }
      Cycle done;
      if (acc.attr == 1) {  // non-cached: straight to memory
        done = xbar_.transfer(port_, Port::kMem, acc.bytes,
                              dram_.request(acc.addr, acc.bytes, now));
      } else if (acc.attr == 2 && !dcache_.probe(acc.addr, &dhint(acc.addr))) {
        // Non-allocating store miss: no read-for-ownership — stores combine
        // in a small buffer of open lines and each touched line is written
        // out once.
        const Addr line = acc.addr & ~Addr{cfg_.line_bytes - 1};
        bool open = false;
        WcEntry* victim = &wc_[0];
        for (WcEntry& e : wc_) {
          if (e.line == line) {
            open = true;
            break;
          }
          if (e.opened < victim->opened) victim = &e;
        }
        if (!open) {
          const Cycle at_mem =
              xbar_.transfer(port_, Port::kMem, cfg_.line_bytes, now);
          wc_done_ = std::max(wc_done_,
                              dram_.request(line, cfg_.line_bytes, at_mem));
          victim->line = line;
          victim->opened = now;
          bump(LsuCounter::kWcLines);
        }
        // The store retires into the combining buffer immediately; the line
        // write drains in the background (tracked for membar via drain()).
        done = now + 1;
        bump(LsuCounter::kWcStores);
      } else {
        done = cached_access(acc.addr, acc.bytes, /*is_store=*/true,
                             acc.attr != 2, now) +
               1;
      }
      stores_.push_back({acc.addr, acc.bytes, done});
      record(done);
      store_live_ = std::max(store_live_, done);
      out.data_ready = done;
      bump(LsuCounter::kStores);
      return out;
    }
    case MemAccess::Kind::kAtomic: {
      // Atomics serialize: drain buffered stores first, then perform a
      // read-modify-write through the D$.
      const Cycle start = drain(now);
      const Cycle done =
          cached_access(acc.addr, acc.bytes, /*is_store=*/true, true, start) +
          cfg_.load_to_use;
      out.issue_at = start;
      out.data_ready = done;
      loads_.push_back(done);
      record(done);
      bump(LsuCounter::kAtomics);
      return out;
    }
    case MemAccess::Kind::kPrefetch: {
      if (!cfg_.prefetch_enabled) return out;
      if (dcache_.probe(acc.addr, &dhint(acc.addr))) return out;
      const Addr line = acc.addr & ~Addr{cfg_.line_bytes - 1};
      for (const MshrEntry& e : mshr_) {
        if (e.line == line && e.done > now) return out;  // fill in flight
      }
      // "Non-faulting prefetch instructions ... are also queued in LSU"
      // (paper §3.2): when all four miss slots are busy the prefetch waits
      // in the queue and launches as the oldest outstanding fill retires.
      Cycle start = now;
      if (mshr_.size() >= cfg_.mshrs) {
        std::erase_if(mshr_,
                      [now](const MshrEntry& e) { return e.done <= now; });
      }
      if (mshr_.size() >= cfg_.mshrs) {
        auto oldest = mshr_.begin();
        for (auto it = mshr_.begin(); it != mshr_.end(); ++it) {
          if (it->done < oldest->done) oldest = it;
        }
        start = std::max(now, oldest->done);
        // The queue is finite: refuse to book fills more than ~0.5k cycles
        // ahead of real time (non-faulting prefetches are discardable).
        if (start > now + 512) {
          bump(LsuCounter::kPrefetchesDropped);
          return out;
        }
        mshr_.erase(oldest);
        bump(LsuCounter::kPrefetchesQueued);
      }
      const Cycle done = fill_line(line, start);
      if (observer_) {
        observer_({LsuTraceEvent::Kind::kPrefetch, line, start, done});
      }
      mshr_.push_back({line, done});
      record(done);
      dcache_.access(acc.addr, /*is_store=*/false, /*allocate=*/true, &dhint(acc.addr));
      bump(LsuCounter::kPrefetches);
      return out;
    }
    case MemAccess::Kind::kMembar: {
      out.issue_at = drain(now);
      out.data_ready = out.issue_at;
      bump(LsuCounter::kMembars);
      return out;
    }
    case MemAccess::Kind::kNone:
      return out;
  }
  return out;
}

Cycle Lsu::drain(Cycle now) {
  // peak_done_ is the exact max over every completion ever buffered; every
  // entry removed since then retired at or before a cycle <= now (prune) or
  // was dominated by a still-tracked successor (MSHR early reuse), so this
  // equals the scan over live entries the old implementation performed.
  return std::max(now, std::max(peak_done_, wc_done_));
}

} // namespace majc::mem
