// SEC-DED ECC model on the DRAM data path.
//
// A MemoryBus decorator that sits between the CPUs and the backing
// FlatMemory. Fault state per 32-byte line comes from the run's FaultPlan:
//
//   - correctable (single-bit) faults are detected and corrected on every
//     read that touches the line — the consumer sees clean data and the
//     `corrected` counter increments (the hardware's scrub-and-retry);
//   - uncorrectable (double-bit) faults raise a kMachineCheck trap;
//   - with ECC disabled (FaultConfig::ecc_enabled = false) the same faults
//     silently flip a deterministic bit of the returned data instead —
//     the baseline that motivates paying for ECC.
//
// Writes pass straight through: the model treats a faulty line as bad cells,
// so a rewrite does not heal it (the plan's per-line verdict is stable).
#pragma once

#include "src/sim/memory.h"
#include "src/support/fault.h"

namespace majc::mem {

class EccMemory final : public sim::MemoryBus {
public:
  EccMemory(sim::MemoryBus& inner, const FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  void read(Addr addr, std::span<u8> out) override;
  void write(Addr addr, std::span<const u8> in) override {
    inner_.write(addr, in);
  }

  u64 corrected() const { return corrected_; }
  u64 machine_checks() const { return machine_checks_; }
  u64 silent_corruptions() const { return silent_corruptions_; }

private:
  sim::MemoryBus& inner_;
  const FaultPlan& plan_;
  u64 corrected_ = 0;
  u64 machine_checks_ = 0;
  u64 silent_corruptions_ = 0;
};

} // namespace majc::mem
