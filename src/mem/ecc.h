// SEC-DED ECC model on the DRAM data path.
//
// A MemoryBus decorator that sits between the CPUs and the backing
// FlatMemory. Fault state per 32-byte line comes from the run's FaultPlan:
//
//   - correctable (single-bit) faults are detected and corrected on every
//     read that touches the line — the consumer sees clean data and the
//     `corrected` counter increments (the hardware's scrub-and-retry);
//   - uncorrectable (double-bit) faults are handled per the configured
//     MachineCheckPolicy: raise a fatal machine check (the pre-recovery
//     default), retry the access (transient flips vanish on the re-read),
//     poison-and-scrub the line (rewrite it clean, invalidate cached
//     copies, continue transparently), or deliver a machine-check trap to
//     the guest handler, scrubbing the line so the handler may retry;
//   - with ECC disabled (FaultConfig::ecc_enabled = false) the same faults
//     silently flip a deterministic bit of the returned data instead —
//     the baseline that motivates paying for ECC.
//
// Writes pass straight through: the model treats a faulty line as bad cells,
// so a rewrite does not heal it (the plan's per-line verdict is stable).
// Only an explicit scrub under kPoison / kDeliver retires a line into the
// healed set.
#pragma once

#include <functional>
#include <unordered_set>

#include "src/sim/memory.h"
#include "src/support/fault.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

class EccMemory final : public sim::MemoryBus {
public:
  EccMemory(sim::MemoryBus& inner, const FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  void read(Addr addr, std::span<u8> out) override;
  void write(Addr addr, std::span<const u8> in) override {
    inner_.write(addr, in);
  }

  /// Called with the line address whenever a line is scrubbed (kPoison /
  /// kDeliver), so the owner can invalidate cached copies — the refill is
  /// the recovery's timing cost. May be empty.
  void set_poison_hook(std::function<void(Addr)> fn) {
    poison_hook_ = std::move(fn);
  }

  u64 corrected() const { return corrected_; }
  u64 machine_checks() const { return machine_checks_; }
  u64 retried() const { return retried_; }
  u64 poisoned_lines() const { return poisoned_; }
  u64 silent_corruptions() const { return silent_corruptions_; }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  sim::MemoryBus& inner_;
  const FaultPlan& plan_;
  std::function<void(Addr)> poison_hook_;
  // Lines scrubbed by kPoison / kDeliver: their plan verdict no longer
  // applies (the bad cells were rewritten from the architected value).
  std::unordered_set<Addr> healed_;
  u64 corrected_ = 0;
  u64 machine_checks_ = 0;
  u64 retried_ = 0;
  u64 poisoned_ = 0;
  u64 silent_corruptions_ = 0;
};

} // namespace majc::mem
