// Chip-level memory system: shared D$, per-CPU I$ and LSU, DRDRAM, crossbar.
//
// Both CPUs share the coherent, dual-ported 16 KB 4-way D$ (paper §3.1),
// which is what gives MAJC-5200 its "very low overhead communication between
// the two CPUs". Instruction fetch misses and data misses compete for the
// same DRDRAM channel through the crossbar, as do the DMA agents (DTE, GPP,
// UPA ports) modelled in src/soc.
#pragma once

#include <memory>

#include "src/mem/cache.h"
#include "src/mem/crossbar.h"
#include "src/mem/dram.h"
#include "src/mem/lsu.h"
#include "src/soc/config.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

inline constexpr u32 kNumCpus = 2;

class MemorySystem {
public:
  explicit MemorySystem(const TimingConfig& cfg);

  Lsu& lsu(u32 cpu) { return *lsus_[cpu]; }
  const Lsu& lsu(u32 cpu) const { return *lsus_[cpu]; }
  Cache& dcache() { return dcache_; }
  const Cache& dcache() const { return dcache_; }
  Cache& icache(u32 cpu) { return icaches_[cpu]; }
  const Cache& icache(u32 cpu) const { return icaches_[cpu]; }
  Dram& dram() { return dram_; }
  const Dram& dram() const { return dram_; }
  Crossbar& xbar() { return xbar_; }
  const Crossbar& xbar() const { return xbar_; }
  const TimingConfig& config() const { return cfg_; }
  const FaultPlan& fault_plan() const { return plan_; }
  u64 ifetch_parity_retries() const { return ifetch_parity_retries_; }
  u64 ifetch_machine_checks() const { return ifetch_machine_checks_; }

  /// Instruction fetch of `bytes` at `addr` for CPU `cpu`; returns the cycle
  /// the packet is available to the aligner.
  Cycle ifetch(u32 cpu, Addr addr, u32 bytes, Cycle now);

  /// Drop every cached copy of `line` (D$ and both I$s) — the scrub step of
  /// the machine-check poison/deliver recovery policies.
  void poison_line(Addr line);

  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  TimingConfig cfg_;
  FaultPlan plan_;
  Crossbar xbar_;
  Dram dram_;
  Cache dcache_;
  std::array<Cache, kNumCpus> icaches_;
  Cycle dport_free_ = 0;  // single-port D$ arbitration (ablation)
  std::array<std::unique_ptr<Lsu>, kNumCpus> lsus_;
  u64 ifetch_fills_ = 0;
  u64 ifetch_parity_retries_ = 0;
  u64 ifetch_machine_checks_ = 0;
};

} // namespace majc::mem
