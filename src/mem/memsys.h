// Chip-level memory system: shared D$, per-CPU I$ and LSU, DRDRAM, crossbar.
//
// Both CPUs share the coherent, dual-ported 16 KB 4-way D$ (paper §3.1),
// which is what gives MAJC-5200 its "very low overhead communication between
// the two CPUs". Instruction fetch misses and data misses compete for the
// same DRDRAM channel through the crossbar, as do the DMA agents (DTE, GPP,
// UPA ports) modelled in src/soc.
#pragma once

#include <memory>

#include "src/mem/cache.h"
#include "src/mem/crossbar.h"
#include "src/mem/dram.h"
#include "src/mem/lsu.h"
#include "src/soc/config.h"

namespace majc::mem {

inline constexpr u32 kNumCpus = 2;

class MemorySystem {
public:
  explicit MemorySystem(const TimingConfig& cfg);

  Lsu& lsu(u32 cpu) { return *lsus_[cpu]; }
  Cache& dcache() { return dcache_; }
  Cache& icache(u32 cpu) { return icaches_[cpu]; }
  Dram& dram() { return dram_; }
  Crossbar& xbar() { return xbar_; }
  const TimingConfig& config() const { return cfg_; }
  const FaultPlan& fault_plan() const { return plan_; }
  u64 ifetch_parity_retries() const { return ifetch_parity_retries_; }

  /// Instruction fetch of `bytes` at `addr` for CPU `cpu`; returns the cycle
  /// the packet is available to the aligner.
  Cycle ifetch(u32 cpu, Addr addr, u32 bytes, Cycle now);

  void reset_stats();

private:
  TimingConfig cfg_;
  FaultPlan plan_;
  Crossbar xbar_;
  Dram dram_;
  Cache dcache_;
  std::array<Cache, kNumCpus> icaches_;
  Cycle dport_free_ = 0;  // single-port D$ arbitration (ablation)
  std::array<std::unique_ptr<Lsu>, kNumCpus> lsus_;
  u64 ifetch_fills_ = 0;
  u64 ifetch_parity_retries_ = 0;
};

} // namespace majc::mem
