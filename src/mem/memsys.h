// Chip-level memory system: shared D$, per-CPU I$ and LSU, DRDRAM, crossbar.
//
// Both CPUs share the coherent, dual-ported 16 KB 4-way D$ (paper §3.1),
// which is what gives MAJC-5200 its "very low overhead communication between
// the two CPUs". Instruction fetch misses and data misses compete for the
// same DRDRAM channel through the crossbar, as do the DMA agents (DTE, GPP,
// UPA ports) modelled in src/soc.
#pragma once

#include <array>
#include <memory>
#include <utility>

#include "src/mem/cache.h"
#include "src/mem/crossbar.h"
#include "src/mem/dram.h"
#include "src/mem/lsu.h"
#include "src/soc/config.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

inline constexpr u32 kNumCpus = 2;

class MemorySystem {
public:
  explicit MemorySystem(const TimingConfig& cfg);

  Lsu& lsu(u32 cpu) { return *lsus_[cpu]; }
  const Lsu& lsu(u32 cpu) const { return *lsus_[cpu]; }
  Cache& dcache() { return dcache_; }
  const Cache& dcache() const { return dcache_; }
  Cache& icache(u32 cpu) { return icaches_[cpu]; }
  const Cache& icache(u32 cpu) const { return icaches_[cpu]; }
  Dram& dram() { return dram_; }
  const Dram& dram() const { return dram_; }
  Crossbar& xbar() { return xbar_; }
  const Crossbar& xbar() const { return xbar_; }
  const TimingConfig& config() const { return cfg_; }
  const FaultPlan& fault_plan() const { return plan_; }
  u64 ifetch_parity_retries() const { return ifetch_parity_retries_; }
  u64 ifetch_machine_checks() const { return ifetch_machine_checks_; }

  /// Instruction fetch of `bytes` at `addr` for CPU `cpu`; returns the cycle
  /// the packet is available to the aligner. The dominant case — a packet
  /// within one line that repeats the fetch stream's last resident line —
  /// resolves inline; everything else (line-crossing packets, misses,
  /// perfect-I$ mode) takes the out-of-line path.
  Cycle ifetch(u32 cpu, Addr addr, u32 bytes, Cycle now) {
    if (cfg_.perfect_icache) return now;
    // Per-line fetch memo, checked per fetched line (packets span at most
    // two): a direct-mapped table of the stream's recent lines, so loop
    // bodies spanning many I$ lines still resolve entirely inline. Hints
    // self-validate against the tag store (a wrong or stale slot only costs
    // the general path), so collisions need no invalidation. The first line
    // whose hint fails hands the REMAINING lines to the out-of-line path —
    // lines already resolved here were hits and contribute nothing to the
    // ready cycle, so resuming from `line` with ready == now is exact.
    Addr line = addr & line_mask_;
    const Addr last = (addr + bytes - 1) & line_mask_;
    Cache& ic = icaches_[cpu];
    for (; line <= last; line += cfg_.line_bytes) {
      if (!ic.hit_fast(line, /*is_store=*/false, fetch_hint(cpu, line))) {
        return ifetch_lines_slow(cpu, line, last, now);
      }
    }
    return now;
  }

  /// Drop every cached copy of `line` (D$ and both I$s) — the scrub step of
  /// the machine-check poison/deliver recovery policies.
  void poison_line(Addr line);

  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  /// General ifetch path for lines `first..last` (inclusive, line-aligned):
  /// full lookup, fills, parity-retry modelling.
  Cycle ifetch_lines_slow(u32 cpu, Addr first, Addr last, Cycle now);

  /// Direct-mapped fetch-memo slot for a line address. line_shift_ is
  /// garbage for non-pow2 line sizes, but then Cache::hit_fast rejects
  /// every hint anyway, so a misindexed slot is merely never useful.
  Cache::Hint& fetch_hint(u32 cpu, Addr line) {
    return ifetch_hints_[cpu][(line >> line_shift_) & (kFetchMemo - 1)];
  }

  TimingConfig cfg_;
  FaultPlan plan_;
  Crossbar xbar_;
  Dram dram_;
  Cache dcache_;
  std::array<Cache, kNumCpus> icaches_;
  Cycle dport_free_ = 0;  // single-port D$ arbitration (ablation)
  // Per-CPU I$ fetch memo: direct-mapped by line address, self-validating.
  static constexpr u32 kFetchMemo = 64;
  Addr line_mask_ = 0;  // ~(line_bytes - 1)
  u32 line_shift_ = 0;
  std::array<std::array<Cache::Hint, kFetchMemo>, kNumCpus> ifetch_hints_{};
  std::array<std::unique_ptr<Lsu>, kNumCpus> lsus_;
  u64 ifetch_fills_ = 0;
  u64 ifetch_parity_retries_ = 0;
  u64 ifetch_machine_checks_ = 0;
};

} // namespace majc::mem
