// Central crossbar ("switch" / bus interface unit, Fig. 1).
//
// All on-chip agents — the two CPUs, the graphics preprocessor, the data
// transfer engine, the North/South UPA ports, PCI and the memory controller —
// exchange data through this crossbar. The model tracks per-port occupancy
// (each port has its interface's peak bandwidth) plus a fixed hop latency,
// which is enough to reproduce the paper's aggregate-I/O claim
// (> 4.8 GB/s) and to make DMA traffic contend with CPU misses.
#pragma once

#include <array>
#include <string_view>

#include "src/soc/config.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

enum class Port : u8 {
  kCpu0 = 0,
  kCpu1,
  kGpp,
  kDte,
  kNupa,
  kSupa,
  kPci,
  kMem,
  kCount,
};

inline constexpr std::size_t kNumPorts = static_cast<std::size_t>(Port::kCount);

std::string_view port_name(Port p);

class Crossbar {
public:
  explicit Crossbar(const TimingConfig& cfg);

  /// Install the run's fault plan (null = fault-free). A delayed grant
  /// starts late; a dropped grant pays a full re-arbitration before the
  /// transfer is retried. Data is never lost — drops are a timing fault.
  void set_fault_plan(const FaultPlan* plan) { plan_ = plan; }

  /// Schedule a transfer of `bytes` from `src` to `dst` starting no earlier
  /// than `now`; returns the completion cycle. Both ports are occupied for
  /// the duration, so a slow external interface (PCI) throttles its peer.
  Cycle transfer(Port src, Port dst, u32 bytes, Cycle now);

  /// Peak bandwidth of a port in bytes per CPU cycle.
  double port_bandwidth(Port p) const {
    return bandwidth_[static_cast<std::size_t>(p)];
  }

  u64 port_bytes(Port p) const { return bytes_[static_cast<std::size_t>(p)]; }
  u64 transfers() const { return transfers_; }
  u64 delayed_grants() const { return delayed_grants_; }
  u64 dropped_grants() const { return dropped_grants_; }
  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  u32 hop_;
  std::array<double, kNumPorts> bandwidth_{};
  std::array<Cycle, kNumPorts> free_{};
  std::array<u64, kNumPorts> bytes_{};
  u64 transfers_ = 0;
  const FaultPlan* plan_ = nullptr;
  u64 delayed_grants_ = 0;
  u64 dropped_grants_ = 0;
};

} // namespace majc::mem
