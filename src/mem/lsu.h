// Load/Store Unit timing model.
//
// Each CPU's LSU (paper §3.2) "aggressively implements a non-blocking memory
// subsystem": buffering for 5 loads and 8 stores, up to 4 cache misses
// outstanding without blocking execution, out-of-order data returns, a
// queue for non-faulting 32-byte block prefetches, and memory-barrier /
// atomic support for inter-CPU synchronization through the shared D$.
//
// The model tracks completion times of buffered operations. A new operation
// stalls only when its buffer class is full (or, in the blocking-load
// ablation, whenever a miss is pending). Misses to a line already being
// filled attach to the existing fill (MSHR merge), which is what makes the
// 4-MSHR limit meaningful for streaming kernels.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "src/mem/cache.h"
#include "src/mem/crossbar.h"
#include "src/mem/dram.h"
#include "src/sim/exec.h"
#include "src/soc/config.h"
#include "src/support/stats.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

/// LSU event counters as a fixed enum: the issue path runs once per memory
/// operation, so bumps are flat array increments instead of string-keyed
/// map lookups. counters() renders the report-time CounterSet view.
enum class LsuCounter : u8 {
  kLoads,
  kStores,
  kAtomics,
  kMembars,
  kLoadMisses,
  kStoreMisses,
  kMshrMerges,
  kMshrFullStalls,
  kLoadBufferStalls,
  kStoreBufferStalls,
  kBlockingStalls,
  kStoreForwards,
  kDportConflicts,
  kWcLines,
  kWcStores,
  kPrefetches,
  kPrefetchesQueued,
  kPrefetchesDropped,
  kFillParityRetries,
  kFillMachineChecks,  // bounded-refetch exhaustion (machine check raised)
};
inline constexpr u32 kNumLsuCounters = 20;

/// One long-latency LSU occurrence, reported to an installed observer so
/// the trace layer can draw async miss/prefetch slices. Emitted only on the
/// (already expensive) miss paths, and only when an observer is installed.
struct LsuTraceEvent {
  enum class Kind : u8 { kLoadMiss, kStoreMiss, kPrefetch };
  Kind kind = Kind::kLoadMiss;
  Addr line = 0;     // line address being filled
  Cycle start = 0;   // fill launch (after any MSHR queuing)
  Cycle done = 0;    // line arrival
};

class Lsu {
public:
  struct IssueResult {
    Cycle issue_at = 0;    // when the op leaves the pipe (>= now if stalled)
    Cycle data_ready = 0;  // loads/atomics: when the value can be consumed
  };

  /// `dcache_port_free`, when non-null, is a shared arbitration clock for
  /// the single-ported-D$ ablation: both CPUs' cached accesses serialize on
  /// it. With the paper's dual-ported D$ each CPU has its own port and the
  /// pointer is null.
  Lsu(const TimingConfig& cfg, Cache& dcache, Dram& dram, Crossbar& xbar,
      Port port, Cycle* dcache_port_free = nullptr,
      const FaultPlan* plan = nullptr);

  /// Issue one memory operation reaching the LSU at cycle `now`.
  IssueResult issue(const sim::MemAccess& acc, Cycle now);

  /// Memory barrier: cycle at which all outstanding operations complete.
  Cycle drain(Cycle now);

  /// Report-time view of the flat counters (zero counters omitted, matching
  /// the sparse map the issue path used to populate).
  CounterSet counters() const;
  u64 counter(LsuCounter c) const { return counters_[static_cast<u32>(c)]; }
  void reset_stats() { counters_.fill(0); }

  /// Install a miss/prefetch observer (empty function disables).
  void set_observer(std::function<void(const LsuTraceEvent&)> fn) {
    observer_ = std::move(fn);
  }

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  struct StoreEntry {
    Addr addr = 0;
    u32 bytes = 0;
    Cycle done = 0;
  };

  struct MshrEntry {
    Addr line = 0;
    Cycle done = 0;
  };

  /// Fetch a line from memory through the crossbar; returns fill-done cycle.
  Cycle fill_line(Addr addr, Cycle now);
  /// Cache lookup + miss handling for a cached access.
  Cycle cached_access(Addr addr, u32 bytes, bool is_store, bool allocate,
                      Cycle now);
  Cycle mshr_ready(Cycle now);
  /// Record a completion time entering any buffer class: raises the drain
  /// peak watermark.
  void record(Cycle done) { peak_done_ = std::max(peak_done_, done); }
  /// Recompute the drain watermark from live entries (after checkpoint
  /// restore). Dead entries' completions are provably dominated by live
  /// ones or by the resume cycle, so the rebuilt watermark is exact going
  /// forward.
  void rebuild_watermarks();

  const TimingConfig& cfg_;
  Cache& dcache_;
  Dram& dram_;
  Crossbar& xbar_;
  Port port_;
  Cycle* dport_free_ = nullptr;
  const FaultPlan* plan_ = nullptr;  // injected D$ fill parity faults
  u64 fills_ = 0;

  // Buffered entries are retired LAZILY: scans filter on `done > now`
  // instead of erasing retired entries up front, and compaction runs only
  // when a buffer-capacity decision needs the live count. This removes the
  // three-structure sweep the old prune() ran on every issue. prune_now_
  // tracks the cycle up to which the eager implementation would have
  // retired entries — checkpoint save filters on it so the serialized
  // buffers (and their bytes) are identical to the eager scheme's.
  std::vector<Cycle> loads_;        // completion times of buffered loads
  std::vector<StoreEntry> stores_;  // buffered stores (for forwarding)
  std::vector<MshrEntry> mshr_;     // in-flight line fills (<= cfg_.mshrs)
  Cycle prune_now_ = 0;
  // Max completion over every store ever buffered (not checkpointed;
  // rebuilt like peak_done_): when <= now, no store is live and the
  // forwarding scan is skipped outright.
  Cycle store_live_ = 0;
  Cycle blocked_until_ = 0;         // blocking-load ablation
  // Drain watermark (not checkpointed; rebuilt from live entries on
  // restore): exact max over every completion ever buffered — makes
  // drain() O(1) instead of a three-structure scan.
  Cycle peak_done_ = 0;
  // This CPU's D$ access memo: direct-mapped by line address, self-
  // validating (Cache::hit_fast / access re-check the tag store), so
  // strided multi-array kernels keep several open lines inline at once.
  static constexpr u32 kDataMemo = 32;
  u32 line_shift_ = 0;
  std::array<Cache::Hint, kDataMemo> dhints_{};
  Cache::Hint& dhint(Addr addr) {
    return dhints_[(addr >> line_shift_) & (kDataMemo - 1)];
  }
  // Write-combining buffer for non-allocating (.na) store misses: four
  // open lines so interleaved output streams still combine; one line
  // transfer per touched line instead of a read-for-ownership fill.
  struct WcEntry {
    Addr line = ~Addr{0};
    Cycle opened = 0;
  };
  std::array<WcEntry, 4> wc_{};
  Cycle wc_done_ = 0;
  std::array<u64, kNumLsuCounters> counters_{};
  std::function<void(const LsuTraceEvent&)> observer_;

  void bump(LsuCounter c, u64 delta = 1) {
    counters_[static_cast<u32>(c)] += delta;
  }
};

} // namespace majc::mem
