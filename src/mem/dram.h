// Direct Rambus DRAM (DRDRAM) timing model.
//
// MAJC-5200's memory controller drives a DRDRAM channel with a peak transfer
// rate of 1.6 GB/s (paper §3.1) — 3.2 bytes per 500 MHz CPU cycle. The model
// captures the two first-order effects: fixed access latency and channel /
// bank occupancy, which bound achievable bandwidth and produce out-of-order
// data return when independent misses hit different banks.
#pragma once

#include <vector>

#include "src/soc/config.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

class Dram {
public:
  explicit Dram(const TimingConfig& cfg);

  /// Schedule a `bytes`-sized transfer starting no earlier than `now`.
  /// Returns the cycle at which the data is fully transferred.
  Cycle request(Addr addr, u32 bytes, Cycle now);

  u64 requests() const { return requests_; }
  u64 bytes_transferred() const { return bytes_; }
  /// Cycles the channel was busy (for utilization reporting).
  u64 busy_cycles() const { return busy_cycles_; }
  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  u32 bank_of(Addr addr) const {
    // Banks interleave at 2 KB granularity (a DRDRAM page).
    return static_cast<u32>((addr >> 11) % banks_.size());
  }
  u64 page_of(Addr addr) const { return addr >> 11; }

  struct Bank {
    Cycle busy = 0;
    u64 open_page = ~u64{0};
  };

  u32 latency_;
  u32 page_hit_latency_;
  double bytes_per_cycle_;
  std::vector<Bank> banks_;
  Cycle channel_free_ = 0;
  u64 requests_ = 0;
  u64 bytes_ = 0;
  u64 busy_cycles_ = 0;
};

} // namespace majc::mem
