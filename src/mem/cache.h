// Set-associative cache timing model (tags + LRU only).
//
// Data always moves through the functional MemoryBus, so the caches track
// tags purely for timing: hits, misses, write-backs of dirty victims.
// Instances: one 16 KB 2-way I$ per CPU and the 16 KB 4-way dual-ported
// write-back D$ shared by both CPUs (paper §3.1).
//
// Hot-path structure (PR 10): address decomposition uses precomputed shifts
// when the geometry is power-of-two (the paper's configs all are; odd
// ablation geometries fall back to div/mod), and callers on a repeated
// access stream pass a Hint so a re-access of the most recent line skips
// the tag scan and the LRU aging loop entirely. The fast path is
// self-validating — it re-checks the hinted way's tag, validity and MRU
// rank on every use — so it never needs invalidation hooks and is exactly
// equivalent to the general path (MRU means touch() would not move any
// rank; hit/miss counters advance identically).
#pragma once

#include <string>
#include <vector>

#include "src/support/stats.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

class Cache {
public:
  struct Config {
    u32 bytes = 16 * 1024;
    u32 ways = 4;
    u32 line_bytes = 32;
    std::string name = "cache";
  };

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  // a dirty victim was evicted
    Addr victim_line = 0;
  };

  /// Last-line memo for one access stream (one per LSU, one per I$ fetch
  /// stream). Purely a performance hint: a stale or wrong hint only costs
  /// the general path. Callers never need to reset it.
  struct Hint {
    u64 line = ~u64{0};  // memoized line number (addr / line_bytes)
    u32 way = 0;
  };

  explicit Cache(const Config& cfg);

  /// Look up `addr`; on a miss, allocate the line (if `allocate`), evicting
  /// LRU. `is_store` marks the line dirty. `hint`, when given, memoizes the
  /// stream's last resident line for the repeat-hit fast path.
  AccessResult access(Addr addr, bool is_store, bool allocate = true,
                      Hint* hint = nullptr);

  /// Tag probe with no state change. A hint accelerates the probe but is
  /// not updated (probe leaves all cache state untouched).
  bool probe(Addr addr, const Hint* hint = nullptr) const;

  /// Inline repeat-hit fast path: when the hinted way still holds `addr`'s
  /// line, performs exactly what access() does on that hit — count it, mark
  /// dirty on stores, promote the way to MRU — without the tag scan. Tags
  /// are unique within a set, so the hinted way is the way the scan would
  /// have found. Returns false in every other case — including non-pow2
  /// geometries — and the caller falls back to the full access().
  bool hit_fast(Addr addr, bool is_store, const Hint& hint) {
    if (!pow2_) return false;
    const u64 line = addr >> line_shift_;
    if (hint.line != line) return false;
    const u32 set = static_cast<u32>(line) & set_mask_;
    Line& l = lines_[static_cast<std::size_t>(set) * cfg_.ways + hint.way];
    if (!l.valid || l.tag != (line >> set_shift_)) return false;
    ++hits_;
    if (is_store) l.dirty = true;
    if (l.lru != 0) touch(set, hint.way);
    return true;
  }

  /// Invalidate a single line if present; returns true if it was dirty.
  bool invalidate(Addr addr);
  void invalidate_all();

  /// Take `n` ways out of service (RAS degradation: a failed way shrinks
  /// capacity instead of crashing). Clamped to ways - 1; lines resident in
  /// the disabled ways are invalidated.
  void disable_ways(u32 n);
  u32 disabled_ways() const { return disabled_ways_; }

  u32 sets() const { return sets_; }
  u32 ways() const { return cfg_.ways; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 writebacks() const { return writebacks_; }
  double hit_rate() const {
    const u64 total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  const Config& config() const { return cfg_; }
  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u32 lru = 0;  // 0 = most recently used
  };

  u64 line_of(Addr addr) const {
    return pow2_ ? addr >> line_shift_ : addr / cfg_.line_bytes;
  }
  u32 set_of(u64 line) const {
    return pow2_ ? static_cast<u32>(line) & set_mask_
                 : static_cast<u32>(line % sets_);
  }
  u64 tag_of(u64 line) const {
    return pow2_ ? line >> set_shift_ : line / sets_;
  }
  u32 live_ways() const { return cfg_.ways - disabled_ways_; }
  void touch(u32 set, u32 way);

  Config cfg_;
  u32 sets_;
  u32 disabled_ways_ = 0;
  // Shift/mask decomposition, valid when line_bytes and sets_ are both
  // powers of two (every paper geometry; ablations may not be).
  bool pow2_ = false;
  u32 line_shift_ = 0;
  u32 set_shift_ = 0;
  u32 set_mask_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 writebacks_ = 0;
};

} // namespace majc::mem
