// Set-associative cache timing model (tags + LRU only).
//
// Data always moves through the functional MemoryBus, so the caches track
// tags purely for timing: hits, misses, write-backs of dirty victims.
// Instances: one 16 KB 2-way I$ per CPU and the 16 KB 4-way dual-ported
// write-back D$ shared by both CPUs (paper §3.1).
#pragma once

#include <string>
#include <vector>

#include "src/support/stats.h"
#include "src/support/types.h"

namespace majc::ckpt {
class Writer;
class Reader;
} // namespace majc::ckpt

namespace majc::mem {

class Cache {
public:
  struct Config {
    u32 bytes = 16 * 1024;
    u32 ways = 4;
    u32 line_bytes = 32;
    std::string name = "cache";
  };

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  // a dirty victim was evicted
    Addr victim_line = 0;
  };

  explicit Cache(const Config& cfg);

  /// Look up `addr`; on a miss, allocate the line (if `allocate`), evicting
  /// LRU. `is_store` marks the line dirty.
  AccessResult access(Addr addr, bool is_store, bool allocate = true);

  /// Tag probe with no state change.
  bool probe(Addr addr) const;

  /// Invalidate a single line if present; returns true if it was dirty.
  bool invalidate(Addr addr);
  void invalidate_all();

  /// Take `n` ways out of service (RAS degradation: a failed way shrinks
  /// capacity instead of crashing). Clamped to ways - 1; lines resident in
  /// the disabled ways are invalidated.
  void disable_ways(u32 n);
  u32 disabled_ways() const { return disabled_ways_; }

  u32 sets() const { return sets_; }
  u32 ways() const { return cfg_.ways; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 writebacks() const { return writebacks_; }
  double hit_rate() const {
    const u64 total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  const Config& config() const { return cfg_; }
  void reset_stats();

  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u32 lru = 0;  // 0 = most recently used
  };

  u64 line_of(Addr addr) const { return addr / cfg_.line_bytes; }
  u32 set_of(u64 line) const { return static_cast<u32>(line % sets_); }
  u64 tag_of(u64 line) const { return line / sets_; }
  u32 live_ways() const { return cfg_.ways - disabled_ways_; }
  void touch(u32 set, u32 way);

  Config cfg_;
  u32 sets_;
  u32 disabled_ways_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 writebacks_ = 0;
};

} // namespace majc::mem
