#include "src/mem/cache.h"

#include <algorithm>

#include "src/support/error.h"

namespace majc::mem {

namespace {
bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }
u32 log2_u32(u32 v) {
  u32 n = 0;
  while ((v >>= 1) != 0) ++n;
  return n;
}
} // namespace

Cache::Cache(const Config& cfg) : cfg_(cfg) {
  require(cfg_.line_bytes > 0 && cfg_.ways > 0 && cfg_.bytes > 0,
          "cache config fields must be positive");
  require(cfg_.bytes % (cfg_.line_bytes * cfg_.ways) == 0,
          "cache size must be a multiple of ways * line size");
  sets_ = cfg_.bytes / (cfg_.line_bytes * cfg_.ways);
  pow2_ = is_pow2(cfg_.line_bytes) && is_pow2(sets_);
  if (pow2_) {
    line_shift_ = log2_u32(cfg_.line_bytes);
    set_shift_ = log2_u32(sets_);
    set_mask_ = sets_ - 1;
  }
  lines_.resize(static_cast<std::size_t>(sets_) * cfg_.ways);
  for (u32 s = 0; s < sets_; ++s) {
    for (u32 w = 0; w < cfg_.ways; ++w) lines_[s * cfg_.ways + w].lru = w;
  }
}

void Cache::touch(u32 set, u32 way) {
  Line* row = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  const u32 old = row[way].lru;
  if (old == 0) return;  // already MRU: no rank moves
  for (u32 w = 0; w < live_ways(); ++w) {
    if (row[w].lru < old) ++row[w].lru;
  }
  row[way].lru = 0;
}

Cache::AccessResult Cache::access(Addr addr, bool is_store, bool allocate,
                                  Hint* hint) {
  const u64 line = line_of(addr);
  const u32 set = set_of(line);
  const u64 tag = tag_of(line);
  Line* row = &lines_[static_cast<std::size_t>(set) * cfg_.ways];

  // Repeat-hit fast path: the hinted way must still hold this line *and* be
  // MRU (lru == 0), which makes touch() a provable no-op. Each condition is
  // re-checked here, so a stale hint can never change behavior.
  if (hint != nullptr && hint->line == line) {
    Line& l = row[hint->way];
    if (l.valid && l.tag == tag && l.lru == 0) {
      ++hits_;
      if (is_store) l.dirty = true;
      return {.hit = true};
    }
  }

  for (u32 w = 0; w < live_ways(); ++w) {
    if (row[w].valid && row[w].tag == tag) {
      ++hits_;
      if (is_store) row[w].dirty = true;
      touch(set, w);
      if (hint != nullptr) *hint = {.line = line, .way = w};
      return {.hit = true};
    }
  }
  ++misses_;
  if (!allocate) return {.hit = false};

  // Choose the LRU way as victim (only live ways participate).
  u32 victim = 0;
  for (u32 w = 0; w < live_ways(); ++w) {
    if (!row[w].valid) {
      victim = w;
      break;
    }
    if (row[w].lru > row[victim].lru) victim = w;
  }
  AccessResult res;
  if (row[victim].valid && row[victim].dirty) {
    res.writeback = true;
    res.victim_line = (row[victim].tag * sets_ + set) * cfg_.line_bytes;
    ++writebacks_;
  }
  row[victim] = {.tag = tag, .valid = true, .dirty = is_store, .lru = row[victim].lru};
  touch(set, victim);
  if (hint != nullptr) *hint = {.line = line, .way = victim};
  return res;
}

bool Cache::probe(Addr addr, const Hint* hint) const {
  const u64 line = line_of(addr);
  const u32 set = set_of(line);
  const u64 tag = tag_of(line);
  const Line* row = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  if (hint != nullptr && hint->line == line) {
    const Line& l = row[hint->way];
    if (l.valid && l.tag == tag) return true;
  }
  for (u32 w = 0; w < live_ways(); ++w) {
    if (row[w].valid && row[w].tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) {
  const u64 line = line_of(addr);
  const u32 set = set_of(line);
  const u64 tag = tag_of(line);
  Line* row = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (row[w].valid && row[w].tag == tag) {
      const bool dirty = row[w].dirty;
      row[w].valid = false;
      row[w].dirty = false;
      return dirty;
    }
  }
  return false;
}

void Cache::invalidate_all() {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

void Cache::disable_ways(u32 n) {
  disabled_ways_ = cfg_.ways > 1 ? std::min(n, cfg_.ways - 1) : 0;
  // Resident lines in the dead ways are gone (their data was only ever a
  // timing fiction; the backing store holds the truth).
  for (u32 s = 0; s < sets_; ++s) {
    Line* row = &lines_[static_cast<std::size_t>(s) * cfg_.ways];
    for (u32 w = live_ways(); w < cfg_.ways; ++w) {
      row[w].valid = false;
      row[w].dirty = false;
    }
  }
}

void Cache::reset_stats() {
  hits_ = misses_ = writebacks_ = 0;
}

} // namespace majc::mem
