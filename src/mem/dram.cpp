#include "src/mem/dram.h"

#include <algorithm>
#include <cmath>

#include "src/support/error.h"

namespace majc::mem {

Dram::Dram(const TimingConfig& cfg)
    : latency_(cfg.dram_latency),
      page_hit_latency_(cfg.dram_page_hit_latency),
      bytes_per_cycle_(cfg.dram_bytes_per_cycle),
      banks_(cfg.dram_banks) {
  require(cfg.dram_banks > 0, "DRDRAM needs at least one bank");
  require(bytes_per_cycle_ > 0.0, "DRDRAM bandwidth must be positive");
}

Cycle Dram::request(Addr addr, u32 bytes, Cycle now) {
  Bank& bank = banks_[bank_of(addr)];
  // Row activation (a page miss) pays the full access latency and holds the
  // bank; column accesses to the open page pay only the short CAS latency
  // and pipeline behind one another, so sequential streams run at channel
  // rate — the behaviour that lets DRDRAM sustain 1.6 GB/s. Accesses to
  // distinct banks overlap their latency; the shared channel is held only
  // for the data transfer at the end of each access.
  const bool page_hit = bank.open_page == page_of(addr);
  const u32 latency = page_hit ? page_hit_latency_ : latency_;
  const Cycle start = std::max(now, bank.busy);
  const auto occupancy = static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle_));
  const Cycle transfer_start = std::max(start + latency, channel_free_);
  const Cycle done = transfer_start + occupancy;
  channel_free_ = done;
  // On a page hit the bank can begin the next column access while the
  // channel drains; a row activation blocks the bank until completion.
  bank.busy = page_hit ? transfer_start : done;
  bank.open_page = page_of(addr);
  ++requests_;
  bytes_ += bytes;
  busy_cycles_ += occupancy;
  return done;
}

void Dram::reset_stats() {
  requests_ = 0;
  bytes_ = 0;
  busy_cycles_ = 0;
}

} // namespace majc::mem
