#include "src/mem/memsys.h"

#include <bit>
#include <string>

#include "src/support/trap.h"

namespace majc::mem {

MemorySystem::MemorySystem(const TimingConfig& cfg)
    : cfg_(cfg),
      plan_(cfg_.faults),
      xbar_(cfg_),
      dram_(cfg_),
      dcache_({cfg_.dcache_bytes, cfg_.dcache_ways, cfg_.line_bytes, "dcache"}),
      icaches_{Cache{{cfg_.icache_bytes, cfg_.icache_ways, cfg_.line_bytes,
                      "icache0"}},
               Cache{{cfg_.icache_bytes, cfg_.icache_ways, cfg_.line_bytes,
                      "icache1"}}} {
  line_mask_ = ~Addr{cfg_.line_bytes - 1};
  line_shift_ = static_cast<u32>(std::countr_zero(cfg_.line_bytes));
  xbar_.set_fault_plan(&plan_);
  dcache_.disable_ways(cfg_.dcache_disabled_ways);
  for (auto& ic : icaches_) ic.disable_ways(cfg_.icache_disabled_ways);
  Cycle* shared_port = cfg_.dcache_dual_ported ? nullptr : &dport_free_;
  lsus_[0] = std::make_unique<Lsu>(cfg_, dcache_, dram_, xbar_, Port::kCpu0,
                                   shared_port, &plan_);
  lsus_[1] = std::make_unique<Lsu>(cfg_, dcache_, dram_, xbar_, Port::kCpu1,
                                   shared_port, &plan_);
}

Cycle MemorySystem::ifetch_lines_slow(u32 cpu, Addr first, Addr last,
                                      Cycle now) {
  Cache& ic = icaches_[cpu];
  const Port port = cpu == 0 ? Port::kCpu0 : Port::kCpu1;
  Cycle ready = now;
  for (Addr line = first; line <= last; line += cfg_.line_bytes) {
    // access() refreshes the line's memo slot on both hit and allocate, so
    // the next fetch of this line resolves inline.
    if (!ic.access(line, /*is_store=*/false, /*allocate=*/true,
                   &fetch_hint(cpu, line))
             .hit) {
      const Cycle at_mem = xbar_.transfer(port, Port::kMem, 0, now);
      const Cycle dram_done = dram_.request(line, cfg_.line_bytes, at_mem);
      Cycle fill = xbar_.transfer(Port::kMem, port, cfg_.line_bytes, dram_done);
      // Parity-bad I$ fills are refetched (timing-only fault), bounded the
      // same way as D$ fills: persistent corruption is a machine check, not
      // a watchdog-bound livelock.
      u32 attempts = 0;
      while (plan_.fill_corrupted(line, ifetch_fills_++)) {
        if (attempts++ >= cfg_.faults.max_fill_retries) {
          ++ifetch_machine_checks_;
          raise_trap(TrapCause::kMachineCheck,
                     "instruction fetch fill for line " +
                         std::to_string(line) + " failed parity " +
                         std::to_string(attempts) + " consecutive times",
                     static_cast<u32>(line));
        }
        ++ifetch_parity_retries_;
        const Cycle at2 = xbar_.transfer(port, Port::kMem, 0, fill);
        fill = xbar_.transfer(Port::kMem, port, cfg_.line_bytes,
                              dram_.request(line, cfg_.line_bytes, at2));
      }
      ready = std::max(ready, fill);
    }
  }
  return ready;
}

void MemorySystem::poison_line(Addr line) {
  dcache_.invalidate(line);
  for (auto& ic : icaches_) ic.invalidate(line);
}

void MemorySystem::reset_stats() {
  xbar_.reset_stats();
  dram_.reset_stats();
  dcache_.reset_stats();
  for (auto& ic : icaches_) ic.reset_stats();
  for (auto& l : lsus_) l->reset_stats();
}

} // namespace majc::mem
