#include "src/masm/assembler.h"

#include <cstring>
#include <sstream>
#include <unordered_map>

#include "src/isa/encoding.h"
#include "src/masm/lexer.h"
#include "src/support/bits.h"
#include "src/support/error.h"

namespace majc::masm {
namespace {

using isa::Form;
using isa::Instr;
using isa::Op;
using isa::OpInfo;
using isa::RegSpec;

/// How a symbolic immediate folds into the encoded field once addresses are
/// known.
enum class Fixup : u8 {
  kNone,    // literal immediate, already in Instr::imm
  kBranch,  // word displacement: target_word - packet_word (bnz/bz/call)
  kHi,      // (address >> 16) & 0xFFFF
  kLo,      // address & 0xFFFF
  kAbs,     // full address; must fit the form's immediate field
};

struct PendingInstr {
  Instr instr;
  Fixup fixup = Fixup::kNone;
  std::string sym;
  i64 addend = 0;
};

struct PendingPacket {
  u32 line = 0;
  u32 word = 0; // code-section word index of the packet start
  std::vector<PendingInstr> slots;
};

struct DataFixup {
  std::size_t offset; // byte offset in data section of a 32-bit cell
  std::string sym;
  i64 addend;
  u32 line;
};

// Eagerly initialized and const thereafter (no lazy magic static): the
// assembler stays data-race-free when concurrent farm workers compile.
const std::unordered_map<std::string_view, RegSpec> kRegAliases = {
    {"zero", 0}, {"lr", 1}, {"sp", 2}};

bool parse_reg(const std::string& name, RegSpec& out) {
  if (auto it = kRegAliases.find(name); it != kRegAliases.end()) {
    out = it->second;
    return true;
  }
  if (name.size() < 2) return false;
  const char kind = name[0];
  if (kind != 'g' && kind != 'l') return false;
  u32 num = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    num = num * 10 + static_cast<u32>(name[i] - '0');
    if (num > 127) return false;
  }
  if (kind == 'g') {
    if (num >= isa::kNumGlobalRegs) return false;
    out = static_cast<RegSpec>(num);
  } else {
    if (num >= isa::kLocalRegsPerFu) return false;
    out = static_cast<RegSpec>(isa::kFirstLocalSpec + num);
  }
  return true;
}

/// Split "ldw.nc" into base mnemonic and sub-field value. Returns false on
/// an unknown suffix for the op class.
bool apply_suffix(const OpInfo& info, const std::string& suffix, u8& sub) {
  if (suffix.empty()) {
    sub = 0;
    return true;
  }
  if (!info.has(isa::kHasSub)) return false;
  if (info.is_mem()) {
    if (suffix == "nc") sub = 1;
    else if (suffix == "na") sub = 2;
    else return false;
  } else {
    if (suffix == "s") sub = 1;
    else if (suffix == "u") sub = 2;
    else if (suffix == "b") sub = 3;
    else return false;
  }
  return true;
}

class AsmContext {
public:
  explicit AsmContext(std::vector<Diagnostic>& diags) : diags_(diags) {}

  void error(const std::string& msg) {
    diags_.push_back({line_, msg});
    failed_ = true;
  }

  bool assemble(std::string_view source, Image& out);

private:
  // ---- parsing ----
  bool parse_line(const std::vector<Token>& toks);
  bool parse_directive(const std::vector<Token>& toks, std::size_t& i);
  bool parse_packet(const std::vector<Token>& toks, std::size_t i);
  bool parse_slot(const std::vector<Token>& toks, std::size_t& i,
                  PendingInstr& out);
  bool parse_operand_imm(const std::vector<Token>& toks, std::size_t& i,
                         PendingInstr& out);
  bool expect(const std::vector<Token>& toks, std::size_t& i, TokKind kind,
              const char* what);
  void define_label(const std::string& name);

  // ---- data emission ----
  void align_data(std::size_t alignment);
  template <typename T>
  void emit_data(T value) {
    align_data(sizeof(T));
    const std::size_t at = data_.size();
    data_.resize(at + sizeof(T));
    std::memcpy(data_.data() + at, &value, sizeof(T));
  }

  // ---- resolution ----
  bool resolve(Image& out);
  bool lookup(const std::string& sym, u32 line, Addr& out);

  std::vector<Diagnostic>& diags_;
  bool failed_ = false;
  u32 line_ = 0;
  bool in_code_ = true;

  std::vector<PendingPacket> packets_;
  u32 code_words_ = 0;
  std::vector<u8> data_;
  std::vector<DataFixup> data_fixups_;
  std::unordered_map<std::string, Addr> code_syms_;  // word index
  std::unordered_map<std::string, Addr> data_syms_;  // byte offset
  std::string entry_sym_;
};

bool AsmContext::expect(const std::vector<Token>& toks, std::size_t& i,
                        TokKind kind, const char* what) {
  if (i >= toks.size() || toks[i].kind != kind) {
    error(std::string("expected ") + what);
    return false;
  }
  ++i;
  return true;
}

void AsmContext::define_label(const std::string& name) {
  auto& table = in_code_ ? code_syms_ : data_syms_;
  auto& other = in_code_ ? data_syms_ : code_syms_;
  if (table.count(name) || other.count(name)) {
    error("duplicate label '" + name + "'");
    return;
  }
  table[name] = in_code_ ? code_words_ : data_.size();
}

void AsmContext::align_data(std::size_t alignment) {
  while (data_.size() % alignment != 0) data_.push_back(0);
}

bool AsmContext::parse_directive(const std::vector<Token>& toks,
                                 std::size_t& i) {
  const std::string dir = toks[i].text;
  ++i;
  if (dir == "code") {
    in_code_ = true;
    return true;
  }
  if (dir == "data") {
    in_code_ = false;
    return true;
  }
  if (dir == "entry") {
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent) {
      error(".entry expects a label");
      return false;
    }
    entry_sym_ = toks[i].text;
    ++i;
    return true;
  }
  if (in_code_) {
    error("directive ." + dir + " is only valid in the data section");
    return false;
  }
  if (dir == "align") {
    if (i >= toks.size() || toks[i].kind != TokKind::kNumber ||
        toks[i].ival <= 0) {
      error(".align expects a positive integer");
      return false;
    }
    align_data(static_cast<std::size_t>(toks[i].ival));
    ++i;
    return true;
  }
  if (dir == "ascii" || dir == "asciz") {
    if (i >= toks.size() || toks[i].kind != TokKind::kString) {
      error("." + dir + " expects a string literal");
      return false;
    }
    for (char ch : toks[i].text) emit_data<u8>(static_cast<u8>(ch));
    if (dir == "asciz") emit_data<u8>(0);
    ++i;
    return true;
  }
  if (dir == "space") {
    if (i >= toks.size() || toks[i].kind != TokKind::kNumber ||
        toks[i].ival < 0) {
      error(".space expects a byte count");
      return false;
    }
    data_.resize(data_.size() + static_cast<std::size_t>(toks[i].ival), 0);
    ++i;
    return true;
  }
  const bool is_byte = dir == "byte";
  const bool is_half = dir == "half";
  const bool is_word = dir == "word";
  const bool is_long = dir == "long";
  const bool is_float = dir == "float";
  const bool is_double = dir == "double";
  if (!(is_byte || is_half || is_word || is_long || is_float || is_double)) {
    error("unknown directive ." + dir);
    return false;
  }
  bool first = true;
  while (i < toks.size() && toks[i].kind != TokKind::kEnd) {
    if (!first && !expect(toks, i, TokKind::kComma, "','")) return false;
    first = false;
    if (i >= toks.size()) break;
    const Token& t = toks[i];
    if (t.kind == TokKind::kNumber) {
      if (is_byte) emit_data<u8>(static_cast<u8>(t.ival));
      else if (is_half) emit_data<u16>(static_cast<u16>(t.ival));
      else if (is_word) emit_data<u32>(static_cast<u32>(t.ival));
      else if (is_long) emit_data<u64>(static_cast<u64>(t.ival));
      else if (is_float) emit_data<float>(static_cast<float>(t.ival));
      else emit_data<double>(static_cast<double>(t.ival));
      ++i;
    } else if (t.kind == TokKind::kFloat && (is_float || is_double)) {
      if (is_float) emit_data<float>(static_cast<float>(t.fval));
      else emit_data<double>(t.fval);
      ++i;
    } else if (t.kind == TokKind::kIdent && is_word) {
      align_data(4);
      data_fixups_.push_back({data_.size(), t.text, 0, line_});
      emit_data<u32>(0);
      ++i;
    } else {
      error("bad value in ." + dir);
      return false;
    }
  }
  return true;
}

bool AsmContext::parse_operand_imm(const std::vector<Token>& toks,
                                   std::size_t& i, PendingInstr& out) {
  if (i < toks.size() && toks[i].kind == TokKind::kNumber) {
    const i64 v = toks[i].ival;
    if (!fits_signed(v, 32) && !fits_unsigned(static_cast<u64>(v), 32)) {
      error("immediate does not fit in 32 bits");
      return false;
    }
    out.instr.imm = static_cast<i32>(v);
    ++i;
    return true;
  }
  if (i < toks.size() && toks[i].kind == TokKind::kPercent) {
    ++i;
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "hi" && toks[i].text != "lo")) {
      error("expected %hi(...) or %lo(...)");
      return false;
    }
    out.fixup = toks[i].text == "hi" ? Fixup::kHi : Fixup::kLo;
    ++i;
    if (!expect(toks, i, TokKind::kLParen, "'('")) return false;
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent) {
      error("expected symbol inside %hi/%lo");
      return false;
    }
    out.sym = toks[i].text;
    ++i;
    if (i < toks.size() && toks[i].kind == TokKind::kNumber) {
      out.addend = toks[i].ival;  // "+N" lexes as a signed number token
      ++i;
    }
    if (!expect(toks, i, TokKind::kRParen, "')'")) return false;
    return true;
  }
  if (i < toks.size() && toks[i].kind == TokKind::kIdent) {
    // Bare symbol: branch/call displacement or absolute address.
    const OpInfo& info = out.instr.info();
    out.fixup = (info.has(isa::kBranch) || info.has(isa::kCall))
                    ? Fixup::kBranch
                    : Fixup::kAbs;
    out.sym = toks[i].text;
    ++i;
    if (i < toks.size() && toks[i].kind == TokKind::kNumber) {
      out.addend = toks[i].ival;
      ++i;
    }
    return true;
  }
  error("expected immediate operand");
  return false;
}

bool AsmContext::parse_slot(const std::vector<Token>& toks, std::size_t& i,
                            PendingInstr& out) {
  if (i >= toks.size() || toks[i].kind != TokKind::kIdent) {
    error("expected an instruction mnemonic");
    return false;
  }
  std::string name = toks[i].text;
  ++i;

  // Pseudo-instruction expansion.
  auto parse_two_regs = [&](RegSpec& a, RegSpec& b) {
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
        !parse_reg(toks[i].text, a)) {
      error("expected register");
      return false;
    }
    ++i;
    if (!expect(toks, i, TokKind::kComma, "','")) return false;
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
        !parse_reg(toks[i].text, b)) {
      error("expected register");
      return false;
    }
    ++i;
    return true;
  };
  if (name == "mov") {
    out.instr.op = Op::kOr;
    RegSpec rd, rs;
    if (!parse_two_regs(rd, rs)) return false;
    out.instr.rd = rd;
    out.instr.rs1 = rs;
    out.instr.rs2 = isa::kZeroReg;
    return true;
  }
  if (name == "not") {
    out.instr.op = Op::kXori;
    RegSpec rd, rs;
    if (!parse_two_regs(rd, rs)) return false;
    out.instr.rd = rd;
    out.instr.rs1 = rs;
    out.instr.imm = -1;
    return true;
  }
  if (name == "li") {
    out.instr.op = Op::kSetlo;
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
        !parse_reg(toks[i].text, out.instr.rd)) {
      error("expected register");
      return false;
    }
    ++i;
    if (!expect(toks, i, TokKind::kComma, "','")) return false;
    return parse_operand_imm(toks, i, out);
  }
  if (name == "b") {
    out.instr.op = Op::kBz;
    out.instr.rd = isa::kZeroReg;
    return parse_operand_imm(toks, i, out);
  }
  if (name == "ret") {
    out.instr.op = Op::kJmpl;
    out.instr.rd = isa::kZeroReg;
    out.instr.rs1 = isa::kLinkReg;
    return true;
  }

  // Split optional sub-field suffix.
  std::string suffix;
  if (const auto dot = name.find('.'); dot != std::string::npos) {
    suffix = name.substr(dot + 1);
    name = name.substr(0, dot);
  }
  Op op;
  if (!isa::op_from_name(name, op)) {
    error("unknown mnemonic '" + name + "'");
    return false;
  }
  out.instr.op = op;
  const OpInfo& info = out.instr.info();
  if (!apply_suffix(info, suffix, out.instr.sub)) {
    error("invalid suffix '." + suffix + "' for " + name);
    return false;
  }

  auto parse_reg_tok = [&](RegSpec& r) {
    if (i >= toks.size() || toks[i].kind != TokKind::kIdent ||
        !parse_reg(toks[i].text, r)) {
      error("expected register");
      return false;
    }
    ++i;
    return true;
  };

  switch (info.form) {
    case Form::kR:
      if (!parse_reg_tok(out.instr.rd)) return false;
      if (!expect(toks, i, TokKind::kComma, "','")) return false;
      if (!parse_reg_tok(out.instr.rs1)) return false;
      // jmpl and single-source ops accept two operands.
      if (i < toks.size() && toks[i].kind == TokKind::kComma) {
        ++i;
        if (!parse_reg_tok(out.instr.rs2)) return false;
      }
      return true;
    case Form::kI:
      if (!parse_reg_tok(out.instr.rd)) return false;
      if (!expect(toks, i, TokKind::kComma, "','")) return false;
      if (!parse_reg_tok(out.instr.rs1)) return false;
      if (!expect(toks, i, TokKind::kComma, "','")) return false;
      return parse_operand_imm(toks, i, out);
    case Form::kL:
      if (!parse_reg_tok(out.instr.rd)) return false;
      if (!expect(toks, i, TokKind::kComma, "','")) return false;
      return parse_operand_imm(toks, i, out);
    case Form::kJ:
      return parse_operand_imm(toks, i, out);
    case Form::kN:
      if (info.writes_rd() || info.has(isa::kReadsRd)) {
        // getcpu / gettick take a destination register; settvec / rett take
        // a single source register in the same slot.
        if (!parse_reg_tok(out.instr.rd)) return false;
      }
      return true;
  }
  return false;
}

bool AsmContext::parse_packet(const std::vector<Token>& toks, std::size_t i) {
  PendingPacket pkt;
  pkt.line = line_;
  pkt.word = code_words_;
  while (true) {
    PendingInstr slot;
    if (!parse_slot(toks, i, slot)) return false;
    pkt.slots.push_back(std::move(slot));
    if (i < toks.size() && toks[i].kind == TokKind::kPipe) {
      ++i;
      continue;
    }
    break;
  }
  if (i < toks.size() && toks[i].kind != TokKind::kEnd) {
    error("trailing tokens after packet");
    return false;
  }
  if (pkt.slots.size() > isa::kMaxSlots) {
    error("packet has more than 4 slots");
    return false;
  }
  // Structural validation that does not need symbol values.
  for (std::size_t s = 0; s < pkt.slots.size(); ++s) {
    try {
      isa::validate_slot(pkt.slots[s].instr, static_cast<u32>(s));
    } catch (const majc::Error& e) {
      error(e.what());
      return false;
    }
  }
  code_words_ += static_cast<u32>(pkt.slots.size());
  packets_.push_back(std::move(pkt));
  return true;
}

bool AsmContext::parse_line(const std::vector<Token>& toks) {
  std::size_t i = 0;
  // Leading labels: ident ':' (possibly several).
  while (i + 1 < toks.size() && toks[i].kind == TokKind::kIdent &&
         toks[i + 1].kind == TokKind::kColon) {
    define_label(toks[i].text);
    i += 2;
  }
  if (i >= toks.size() || toks[i].kind == TokKind::kEnd) return true;
  if (toks[i].kind == TokKind::kDirective) {
    if (!parse_directive(toks, i)) return false;
    if (i < toks.size() && toks[i].kind != TokKind::kEnd) {
      error("trailing tokens after directive");
      return false;
    }
    return true;
  }
  if (!in_code_) {
    error("instructions are only valid in the code section");
    return false;
  }
  return parse_packet(toks, i);
}

bool AsmContext::lookup(const std::string& sym, u32 line, Addr& out) {
  if (auto it = code_syms_.find(sym); it != code_syms_.end()) {
    out = Image::kDefaultCodeBase + it->second * 4;
    return true;
  }
  if (auto it = data_syms_.find(sym); it != data_syms_.end()) {
    out = Image::kDefaultDataBase + it->second;
    return true;
  }
  diags_.push_back({line, "undefined symbol '" + sym + "'"});
  failed_ = true;
  return false;
}

bool AsmContext::resolve(Image& out) {
  out.code.reserve(code_words_);
  for (const auto& pkt : packets_) {
    isa::Packet p;
    p.width = static_cast<u32>(pkt.slots.size());
    bool ok = true;
    for (std::size_t s = 0; s < pkt.slots.size(); ++s) {
      const PendingInstr& pi = pkt.slots[s];
      Instr in = pi.instr;
      if (pi.fixup != Fixup::kNone) {
        if (pi.fixup == Fixup::kBranch) {
          auto it = code_syms_.find(pi.sym);
          if (it == code_syms_.end()) {
            diags_.push_back({pkt.line, "undefined label '" + pi.sym + "'"});
            failed_ = true;
            ok = false;
            continue;
          }
          in.imm = static_cast<i32>(static_cast<i64>(it->second) -
                                    static_cast<i64>(pkt.word) + pi.addend);
        } else {
          Addr addr = 0;
          if (!lookup(pi.sym, pkt.line, addr)) {
            ok = false;
            continue;
          }
          addr += static_cast<Addr>(pi.addend);
          switch (pi.fixup) {
            case Fixup::kHi:
              in.imm = static_cast<i32>((addr >> 16) & 0xFFFF);
              break;
            case Fixup::kLo:
              in.imm = static_cast<i32>(addr & 0xFFFF);
              break;
            case Fixup::kAbs:
              in.imm = static_cast<i32>(addr);
              break;
            default:
              break;
          }
        }
      }
      p.slot[s] = in;
    }
    if (!ok) continue;
    try {
      const std::vector<u32> words = isa::encode_packet(p);
      out.code.insert(out.code.end(), words.begin(), words.end());
    } catch (const majc::Error& e) {
      diags_.push_back({pkt.line, e.what()});
      failed_ = true;
    }
  }

  out.data = data_;
  for (const auto& fx : data_fixups_) {
    Addr addr = 0;
    if (!lookup(fx.sym, fx.line, addr)) continue;
    const u32 v = static_cast<u32>(addr + static_cast<Addr>(fx.addend));
    std::memcpy(out.data.data() + fx.offset, &v, sizeof(v));
  }

  for (const auto& [name, word] : code_syms_) {
    out.symbols[name] = Image::kDefaultCodeBase + word * 4;
  }
  for (const auto& [name, off] : data_syms_) {
    out.symbols[name] = Image::kDefaultDataBase + off;
  }
  if (!entry_sym_.empty()) {
    auto it = out.symbols.find(entry_sym_);
    if (it == out.symbols.end()) {
      diags_.push_back({0, "undefined .entry symbol '" + entry_sym_ + "'"});
      failed_ = true;
    } else {
      out.entry = it->second;
    }
  }
  return !failed_;
}

bool AsmContext::assemble(std::string_view source, Image& out) {
  std::size_t pos = 0;
  std::vector<Token> toks;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    const std::string_view linetext =
        source.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                        : nl - pos);
    ++line_;
    std::string lex_error;
    if (!lex_line(linetext, toks, lex_error)) {
      error(lex_error);
    } else {
      parse_line(toks);
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  if (failed_) return false;
  return resolve(out);
}

} // namespace

Addr Image::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  require(it != symbols.end(), "unknown symbol '" + name + "'");
  return it->second;
}

std::optional<Image> assemble(std::string_view source,
                              std::vector<Diagnostic>& diags) {
  AsmContext ctx(diags);
  Image img;
  if (!ctx.assemble(source, img)) return std::nullopt;
  return img;
}

Image assemble_or_throw(std::string_view source) {
  std::vector<Diagnostic> diags;
  auto img = assemble(source, diags);
  if (!img) {
    std::ostringstream os;
    os << "assembly failed:";
    for (const auto& d : diags) os << "\n  line " << d.line << ": " << d.message;
    fail(os.str());
  }
  return *std::move(img);
}

} // namespace majc::masm
