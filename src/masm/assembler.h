// MAJC assembler: text source -> loadable Image.
//
// Syntax (one packet per source line; slot i of a packet executes on FUi):
//
//   # comment, // comment
//   .code                     switch to code section (the default)
//   .data                     switch to data section
//   .align N                  pad data section to N-byte alignment
//   .byte/.half/.word v,...   emit initialized data (v: int or symbol for .word)
//   .float/.double v,...      emit FP data
//   .space N                  reserve N zero bytes
//   .entry label              set the program entry point
//
//   label:                    define a symbol (code: packet address)
//     setlo g3, 64 | setlo l0, 0 | li l0, 1 ;;
//     loop: ldwi g4, g3, 0 | fmadd l0, g4, g5
//     bnz g4, loop
//     halt
//
// Mnemonic suffixes select the R-form sub field: memory ops take .nc
// (non-cached) / .na (non-allocating); SIMD ops take .s / .u / .b
// (signed / unsigned / byte saturation).
//
// Operand expressions: integer literals, %hi(sym) / %lo(sym) for address
// materialization with sethi/orlo, bare symbols for branch and call targets
// and .word initializers.
//
// Pseudo-instructions: mov rd,rs (= or rd,rs,g0); li rd,imm16 (= setlo);
// not rd,rs (= xori rd,rs,-1); b label (= bz g0,label); ret (= jmpl g0,g1).
//
// Register names: g0..g95, l0..l31, plus aliases zero (g0), lr (g1), sp (g2).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/masm/image.h"

namespace majc::masm {

struct Diagnostic {
  u32 line = 0;
  std::string message;
};

/// Assemble `source`. On success returns the image; on failure returns
/// nullopt with at least one diagnostic. Diagnostics may also carry
/// warnings alongside a successful result.
std::optional<Image> assemble(std::string_view source,
                              std::vector<Diagnostic>& diags);

/// Convenience wrapper for code that treats assembly failure as fatal
/// (kernels embedded in the library). Throws majc::Error with the first
/// diagnostic's text.
Image assemble_or_throw(std::string_view source);

} // namespace majc::masm
