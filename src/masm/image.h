// Loadable program image produced by the assembler.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/types.h"

namespace majc::masm {

/// A MAJC program: a code section (instruction words; packets laid out
/// back-to-back) and an initialized data section, each with a load base.
/// Symbols map label names to absolute byte addresses.
struct Image {
  static constexpr Addr kDefaultCodeBase = 0x0000'1000;
  static constexpr Addr kDefaultDataBase = 0x0010'0000;

  std::vector<u32> code;
  std::vector<u8> data;
  Addr code_base = kDefaultCodeBase;
  Addr data_base = kDefaultDataBase;
  Addr entry = kDefaultCodeBase;
  std::unordered_map<std::string, Addr> symbols;

  Addr code_end() const { return code_base + code.size() * 4; }
  Addr data_end() const { return data_base + data.size(); }

  /// Address of a defined symbol; throws majc::Error if unknown.
  Addr symbol(const std::string& name) const;
};

} // namespace majc::masm
