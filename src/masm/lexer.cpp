#include "src/masm/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace majc::masm {
namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

} // namespace

bool lex_line(std::string_view line, std::vector<Token>& out, std::string& error) {
  out.clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  auto push = [&](TokKind kind, u32 col) {
    Token t;
    t.kind = kind;
    t.column = col;
    out.push_back(std::move(t));
    return &out.back();
  };

  while (i < n) {
    const char c = line[i];
    const u32 col = static_cast<u32>(i + 1);
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == '/' && i + 1 < n && line[i + 1] == '/') break;
    if (c == ';') {
      if (i + 1 < n && line[i + 1] == ';') {
        i += 2; // ";;" packet terminator: ignore, line end is the boundary
        continue;
      }
      error = "single ';' is not valid; use '#' or '//' for comments";
      return false;
    }
    switch (c) {
      case ',': push(TokKind::kComma, col); ++i; continue;
      case '|': push(TokKind::kPipe, col); ++i; continue;
      case ':': push(TokKind::kColon, col); ++i; continue;
      case '%': push(TokKind::kPercent, col); ++i; continue;
      case '(': push(TokKind::kLParen, col); ++i; continue;
      case ')': push(TokKind::kRParen, col); ++i; continue;
      default: break;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < n) {
        const char d = line[j];
        if (d == '"') {
          closed = true;
          ++j;
          break;
        }
        if (d == '\\' && j + 1 < n) {
          const char e = line[j + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '0': text += '\0'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default:
              error = std::string("unknown escape '\\") + e + "'";
              return false;
          }
          j += 2;
          continue;
        }
        text += d;
        ++j;
      }
      if (!closed) {
        error = "unterminated string literal";
        return false;
      }
      Token* t = push(TokKind::kString, col);
      t->text = std::move(text);
      i = j;
      continue;
    }
    if (c == '.') {
      // Directive: '.' followed by an identifier.
      std::size_t j = i + 1;
      while (j < n && is_ident_char(line[j])) ++j;
      if (j == i + 1) {
        error = "stray '.'";
        return false;
      }
      Token* t = push(TokKind::kDirective, col);
      t->text = std::string(line.substr(i + 1, j - i - 1));
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(line[j])) ++j;
      Token* t = push(TokKind::kIdent, col);
      t->text = std::string(line.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
      // Number: decimal, hex (0x), or floating point (contains '.', 'e'
      // after digits, but 0x.. stays integral).
      std::size_t j = i + 1;
      bool is_hex = false;
      if (line[i] == '0' && j < n && (line[j] == 'x' || line[j] == 'X')) {
        is_hex = true;
        ++j;
      } else if ((c == '-' || c == '+') && line[i + 1] == '0' && i + 2 < n &&
                 (line[i + 2] == 'x' || line[i + 2] == 'X')) {
        is_hex = true;
        j = i + 3;
      }
      bool is_float = false;
      while (j < n) {
        const char d = line[j];
        if (std::isxdigit(static_cast<unsigned char>(d)) && is_hex) {
          ++j;
        } else if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (!is_hex && (d == '.' || d == 'e' || d == 'E')) {
          is_float = true;
          ++j;
          if (j < n && (line[j] == '-' || line[j] == '+') &&
              (line[j - 1] == 'e' || line[j - 1] == 'E')) {
            ++j;
          }
        } else {
          break;
        }
      }
      const std::string text(line.substr(i, j - i));
      if (is_float) {
        Token* t = push(TokKind::kFloat, col);
        t->fval = std::strtod(text.c_str(), nullptr);
      } else {
        Token* t = push(TokKind::kNumber, col);
        t->ival = std::strtoll(text.c_str(), nullptr, 0);
      }
      i = j;
      continue;
    }
    error = std::string("unexpected character '") + c + "'";
    return false;
  }
  push(TokKind::kEnd, static_cast<u32>(n + 1));
  return true;
}

} // namespace majc::masm
