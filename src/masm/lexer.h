// Line-oriented lexer for MAJC assembly source.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/support/types.h"

namespace majc::masm {

enum class TokKind : u8 {
  kIdent,    // mnemonics, labels, symbols, register names (incl. dotted
             // suffixed mnemonics like "ldw.nc")
  kNumber,   // integer literal (value in Token::ival)
  kFloat,    // floating literal (value in Token::fval)
  kComma,
  kPipe,     // slot separator '|'
  kColon,
  kPercent,  // %hi / %lo marker
  kLParen,
  kRParen,
  kDirective, // ".word" etc. (leading dot followed by ident)
  kString,    // "..." literal with \n \t \0 \\ \" escapes (text holds the
              // decoded bytes)
  kEnd,       // end of line (also after a ';;' packet terminator)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier / directive spelling (without the dot)
  i64 ival = 0;
  double fval = 0.0;
  u32 column = 0;
};

/// Tokenize one source line. Comments start with '#' or "//" and run to end
/// of line. The optional packet terminator ";;" is swallowed (one source
/// line is one packet regardless). Returns false and sets `error` on a
/// malformed token.
bool lex_line(std::string_view line, std::vector<Token>& out, std::string& error);

} // namespace majc::masm
