# Empty compiler generated dependencies file for majc_run.
# This may be replaced when dependencies are built.
