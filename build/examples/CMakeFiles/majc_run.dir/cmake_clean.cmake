file(REMOVE_RECURSE
  "CMakeFiles/majc_run.dir/majc_run.cpp.o"
  "CMakeFiles/majc_run.dir/majc_run.cpp.o.d"
  "majc_run"
  "majc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/majc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
