file(REMOVE_RECURSE
  "CMakeFiles/geometry_demo.dir/geometry_demo.cpp.o"
  "CMakeFiles/geometry_demo.dir/geometry_demo.cpp.o.d"
  "geometry_demo"
  "geometry_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
