# Empty compiler generated dependencies file for geometry_demo.
# This may be replaced when dependencies are built.
