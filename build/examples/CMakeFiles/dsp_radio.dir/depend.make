# Empty dependencies file for dsp_radio.
# This may be replaced when dependencies are built.
