file(REMOVE_RECURSE
  "CMakeFiles/dsp_radio.dir/dsp_radio.cpp.o"
  "CMakeFiles/dsp_radio.dir/dsp_radio.cpp.o.d"
  "dsp_radio"
  "dsp_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
