# Empty compiler generated dependencies file for settop_box.
# This may be replaced when dependencies are built.
