file(REMOVE_RECURSE
  "CMakeFiles/settop_box.dir/settop_box.cpp.o"
  "CMakeFiles/settop_box.dir/settop_box.cpp.o.d"
  "settop_box"
  "settop_box.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settop_box.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
