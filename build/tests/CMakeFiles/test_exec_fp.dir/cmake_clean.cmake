file(REMOVE_RECURSE
  "CMakeFiles/test_exec_fp.dir/test_exec_fp.cpp.o"
  "CMakeFiles/test_exec_fp.dir/test_exec_fp.cpp.o.d"
  "test_exec_fp"
  "test_exec_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
