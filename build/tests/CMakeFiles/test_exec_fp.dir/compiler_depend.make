# Empty compiler generated dependencies file for test_exec_fp.
# This may be replaced when dependencies are built.
