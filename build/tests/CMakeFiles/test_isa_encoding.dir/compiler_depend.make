# Empty compiler generated dependencies file for test_isa_encoding.
# This may be replaced when dependencies are built.
