file(REMOVE_RECURSE
  "CMakeFiles/test_isa_encoding.dir/test_isa_encoding.cpp.o"
  "CMakeFiles/test_isa_encoding.dir/test_isa_encoding.cpp.o.d"
  "test_isa_encoding"
  "test_isa_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
