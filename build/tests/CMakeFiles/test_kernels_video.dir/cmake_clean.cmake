file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_video.dir/test_kernels_video.cpp.o"
  "CMakeFiles/test_kernels_video.dir/test_kernels_video.cpp.o.d"
  "test_kernels_video"
  "test_kernels_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
