# Empty dependencies file for test_kernels_video.
# This may be replaced when dependencies are built.
