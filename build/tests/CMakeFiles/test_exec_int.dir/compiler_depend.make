# Empty compiler generated dependencies file for test_exec_int.
# This may be replaced when dependencies are built.
