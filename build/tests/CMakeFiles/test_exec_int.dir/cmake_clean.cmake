file(REMOVE_RECURSE
  "CMakeFiles/test_exec_int.dir/test_exec_int.cpp.o"
  "CMakeFiles/test_exec_int.dir/test_exec_int.cpp.o.d"
  "test_exec_int"
  "test_exec_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
