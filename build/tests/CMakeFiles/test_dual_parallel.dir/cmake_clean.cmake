file(REMOVE_RECURSE
  "CMakeFiles/test_dual_parallel.dir/test_dual_parallel.cpp.o"
  "CMakeFiles/test_dual_parallel.dir/test_dual_parallel.cpp.o.d"
  "test_dual_parallel"
  "test_dual_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
