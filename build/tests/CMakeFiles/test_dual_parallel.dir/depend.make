# Empty dependencies file for test_dual_parallel.
# This may be replaced when dependencies are built.
