file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_references.dir/test_kernel_references.cpp.o"
  "CMakeFiles/test_kernel_references.dir/test_kernel_references.cpp.o.d"
  "test_kernel_references"
  "test_kernel_references.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_references.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
