# Empty compiler generated dependencies file for test_kernel_references.
# This may be replaced when dependencies are built.
