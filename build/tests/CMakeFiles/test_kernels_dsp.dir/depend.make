# Empty dependencies file for test_kernels_dsp.
# This may be replaced when dependencies are built.
