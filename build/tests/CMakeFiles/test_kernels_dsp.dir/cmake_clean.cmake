file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_dsp.dir/test_kernels_dsp.cpp.o"
  "CMakeFiles/test_kernels_dsp.dir/test_kernels_dsp.cpp.o.d"
  "test_kernels_dsp"
  "test_kernels_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
