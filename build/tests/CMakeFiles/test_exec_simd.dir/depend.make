# Empty dependencies file for test_exec_simd.
# This may be replaced when dependencies are built.
