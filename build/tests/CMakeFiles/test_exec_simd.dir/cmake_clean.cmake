file(REMOVE_RECURSE
  "CMakeFiles/test_exec_simd.dir/test_exec_simd.cpp.o"
  "CMakeFiles/test_exec_simd.dir/test_exec_simd.cpp.o.d"
  "test_exec_simd"
  "test_exec_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
