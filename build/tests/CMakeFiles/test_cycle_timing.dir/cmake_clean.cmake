file(REMOVE_RECURSE
  "CMakeFiles/test_cycle_timing.dir/test_cycle_timing.cpp.o"
  "CMakeFiles/test_cycle_timing.dir/test_cycle_timing.cpp.o.d"
  "test_cycle_timing"
  "test_cycle_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
