# Empty compiler generated dependencies file for test_cycle_timing.
# This may be replaced when dependencies are built.
