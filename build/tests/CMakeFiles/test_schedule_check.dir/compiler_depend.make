# Empty compiler generated dependencies file for test_schedule_check.
# This may be replaced when dependencies are built.
