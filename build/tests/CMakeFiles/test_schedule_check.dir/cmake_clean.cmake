file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_check.dir/test_schedule_check.cpp.o"
  "CMakeFiles/test_schedule_check.dir/test_schedule_check.cpp.o.d"
  "test_schedule_check"
  "test_schedule_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
