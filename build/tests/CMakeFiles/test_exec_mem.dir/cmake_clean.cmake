file(REMOVE_RECURSE
  "CMakeFiles/test_exec_mem.dir/test_exec_mem.cpp.o"
  "CMakeFiles/test_exec_mem.dir/test_exec_mem.cpp.o.d"
  "test_exec_mem"
  "test_exec_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
