# Empty compiler generated dependencies file for test_microthreading.
# This may be replaced when dependencies are built.
