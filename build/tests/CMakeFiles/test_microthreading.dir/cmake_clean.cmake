file(REMOVE_RECURSE
  "CMakeFiles/test_microthreading.dir/test_microthreading.cpp.o"
  "CMakeFiles/test_microthreading.dir/test_microthreading.cpp.o.d"
  "test_microthreading"
  "test_microthreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microthreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
