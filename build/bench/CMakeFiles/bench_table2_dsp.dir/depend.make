# Empty dependencies file for bench_table2_dsp.
# This may be replaced when dependencies are built.
