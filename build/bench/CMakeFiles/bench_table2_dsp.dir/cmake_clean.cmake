file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dsp.dir/bench_table2_dsp.cpp.o"
  "CMakeFiles/bench_table2_dsp.dir/bench_table2_dsp.cpp.o.d"
  "bench_table2_dsp"
  "bench_table2_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
