file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cpu.dir/bench_fig2_cpu.cpp.o"
  "CMakeFiles/bench_fig2_cpu.dir/bench_fig2_cpu.cpp.o.d"
  "bench_fig2_cpu"
  "bench_fig2_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
