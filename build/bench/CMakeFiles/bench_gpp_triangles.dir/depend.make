# Empty dependencies file for bench_gpp_triangles.
# This may be replaced when dependencies are built.
