file(REMOVE_RECURSE
  "CMakeFiles/bench_gpp_triangles.dir/bench_gpp_triangles.cpp.o"
  "CMakeFiles/bench_gpp_triangles.dir/bench_gpp_triangles.cpp.o.d"
  "bench_gpp_triangles"
  "bench_gpp_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpp_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
