file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_video.dir/bench_table1_video.cpp.o"
  "CMakeFiles/bench_table1_video.dir/bench_table1_video.cpp.o.d"
  "bench_table1_video"
  "bench_table1_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
