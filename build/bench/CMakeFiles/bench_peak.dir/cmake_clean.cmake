file(REMOVE_RECURSE
  "CMakeFiles/bench_peak.dir/bench_peak.cpp.o"
  "CMakeFiles/bench_peak.dir/bench_peak.cpp.o.d"
  "bench_peak"
  "bench_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
