
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/workload.cpp" "src/CMakeFiles/majc.dir/apps/workload.cpp.o" "gcc" "src/CMakeFiles/majc.dir/apps/workload.cpp.o.d"
  "/root/repo/src/cpu/branch_predictor.cpp" "src/CMakeFiles/majc.dir/cpu/branch_predictor.cpp.o" "gcc" "src/CMakeFiles/majc.dir/cpu/branch_predictor.cpp.o.d"
  "/root/repo/src/cpu/cycle_cpu.cpp" "src/CMakeFiles/majc.dir/cpu/cycle_cpu.cpp.o" "gcc" "src/CMakeFiles/majc.dir/cpu/cycle_cpu.cpp.o.d"
  "/root/repo/src/cpu/report.cpp" "src/CMakeFiles/majc.dir/cpu/report.cpp.o" "gcc" "src/CMakeFiles/majc.dir/cpu/report.cpp.o.d"
  "/root/repo/src/cpu/schedule_check.cpp" "src/CMakeFiles/majc.dir/cpu/schedule_check.cpp.o" "gcc" "src/CMakeFiles/majc.dir/cpu/schedule_check.cpp.o.d"
  "/root/repo/src/cpu/scoreboard.cpp" "src/CMakeFiles/majc.dir/cpu/scoreboard.cpp.o" "gcc" "src/CMakeFiles/majc.dir/cpu/scoreboard.cpp.o.d"
  "/root/repo/src/gpp/geometry.cpp" "src/CMakeFiles/majc.dir/gpp/geometry.cpp.o" "gcc" "src/CMakeFiles/majc.dir/gpp/geometry.cpp.o.d"
  "/root/repo/src/gpp/gpp.cpp" "src/CMakeFiles/majc.dir/gpp/gpp.cpp.o" "gcc" "src/CMakeFiles/majc.dir/gpp/gpp.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/majc.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/majc.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/CMakeFiles/majc.dir/isa/encoding.cpp.o" "gcc" "src/CMakeFiles/majc.dir/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/CMakeFiles/majc.dir/isa/opcodes.cpp.o" "gcc" "src/CMakeFiles/majc.dir/isa/opcodes.cpp.o.d"
  "/root/repo/src/kernels/biquad.cpp" "src/CMakeFiles/majc.dir/kernels/biquad.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/biquad.cpp.o.d"
  "/root/repo/src/kernels/bitrev.cpp" "src/CMakeFiles/majc.dir/kernels/bitrev.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/bitrev.cpp.o.d"
  "/root/repo/src/kernels/cfir.cpp" "src/CMakeFiles/majc.dir/kernels/cfir.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/cfir.cpp.o.d"
  "/root/repo/src/kernels/color_convert.cpp" "src/CMakeFiles/majc.dir/kernels/color_convert.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/color_convert.cpp.o.d"
  "/root/repo/src/kernels/convolve.cpp" "src/CMakeFiles/majc.dir/kernels/convolve.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/convolve.cpp.o.d"
  "/root/repo/src/kernels/dct_common.cpp" "src/CMakeFiles/majc.dir/kernels/dct_common.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/dct_common.cpp.o.d"
  "/root/repo/src/kernels/dct_quant.cpp" "src/CMakeFiles/majc.dir/kernels/dct_quant.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/dct_quant.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/CMakeFiles/majc.dir/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/kernels/fir.cpp" "src/CMakeFiles/majc.dir/kernels/fir.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/fir.cpp.o.d"
  "/root/repo/src/kernels/idct.cpp" "src/CMakeFiles/majc.dir/kernels/idct.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/idct.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/CMakeFiles/majc.dir/kernels/kernel.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/kernel.cpp.o.d"
  "/root/repo/src/kernels/lms.cpp" "src/CMakeFiles/majc.dir/kernels/lms.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/lms.cpp.o.d"
  "/root/repo/src/kernels/max_search.cpp" "src/CMakeFiles/majc.dir/kernels/max_search.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/max_search.cpp.o.d"
  "/root/repo/src/kernels/mb_decode.cpp" "src/CMakeFiles/majc.dir/kernels/mb_decode.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/mb_decode.cpp.o.d"
  "/root/repo/src/kernels/motion_est.cpp" "src/CMakeFiles/majc.dir/kernels/motion_est.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/motion_est.cpp.o.d"
  "/root/repo/src/kernels/peak.cpp" "src/CMakeFiles/majc.dir/kernels/peak.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/peak.cpp.o.d"
  "/root/repo/src/kernels/transform_light.cpp" "src/CMakeFiles/majc.dir/kernels/transform_light.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/transform_light.cpp.o.d"
  "/root/repo/src/kernels/vld.cpp" "src/CMakeFiles/majc.dir/kernels/vld.cpp.o" "gcc" "src/CMakeFiles/majc.dir/kernels/vld.cpp.o.d"
  "/root/repo/src/masm/assembler.cpp" "src/CMakeFiles/majc.dir/masm/assembler.cpp.o" "gcc" "src/CMakeFiles/majc.dir/masm/assembler.cpp.o.d"
  "/root/repo/src/masm/lexer.cpp" "src/CMakeFiles/majc.dir/masm/lexer.cpp.o" "gcc" "src/CMakeFiles/majc.dir/masm/lexer.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/majc.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/majc.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/crossbar.cpp" "src/CMakeFiles/majc.dir/mem/crossbar.cpp.o" "gcc" "src/CMakeFiles/majc.dir/mem/crossbar.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/majc.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/majc.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/lsu.cpp" "src/CMakeFiles/majc.dir/mem/lsu.cpp.o" "gcc" "src/CMakeFiles/majc.dir/mem/lsu.cpp.o.d"
  "/root/repo/src/mem/memsys.cpp" "src/CMakeFiles/majc.dir/mem/memsys.cpp.o" "gcc" "src/CMakeFiles/majc.dir/mem/memsys.cpp.o.d"
  "/root/repo/src/sim/exec_fp.cpp" "src/CMakeFiles/majc.dir/sim/exec_fp.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/exec_fp.cpp.o.d"
  "/root/repo/src/sim/exec_int.cpp" "src/CMakeFiles/majc.dir/sim/exec_int.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/exec_int.cpp.o.d"
  "/root/repo/src/sim/exec_mem.cpp" "src/CMakeFiles/majc.dir/sim/exec_mem.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/exec_mem.cpp.o.d"
  "/root/repo/src/sim/exec_simd.cpp" "src/CMakeFiles/majc.dir/sim/exec_simd.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/exec_simd.cpp.o.d"
  "/root/repo/src/sim/functional_sim.cpp" "src/CMakeFiles/majc.dir/sim/functional_sim.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/functional_sim.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/majc.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/majc.dir/sim/memory.cpp.o.d"
  "/root/repo/src/soc/chip.cpp" "src/CMakeFiles/majc.dir/soc/chip.cpp.o" "gcc" "src/CMakeFiles/majc.dir/soc/chip.cpp.o.d"
  "/root/repo/src/soc/dte.cpp" "src/CMakeFiles/majc.dir/soc/dte.cpp.o" "gcc" "src/CMakeFiles/majc.dir/soc/dte.cpp.o.d"
  "/root/repo/src/soc/ports.cpp" "src/CMakeFiles/majc.dir/soc/ports.cpp.o" "gcc" "src/CMakeFiles/majc.dir/soc/ports.cpp.o.d"
  "/root/repo/src/support/fixed_point.cpp" "src/CMakeFiles/majc.dir/support/fixed_point.cpp.o" "gcc" "src/CMakeFiles/majc.dir/support/fixed_point.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/majc.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/majc.dir/support/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
