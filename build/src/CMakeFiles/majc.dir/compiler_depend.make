# Empty compiler generated dependencies file for majc.
# This may be replaced when dependencies are built.
