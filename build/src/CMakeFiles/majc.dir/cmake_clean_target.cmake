file(REMOVE_RECURSE
  "libmajc.a"
)
