// Static schedule checker tests: detection of too-early reads of
// deterministic results, bypass-aware distances, load exemption, and
// block-boundary resets.
#include <gtest/gtest.h>

#include "src/cpu/schedule_check.h"
#include "src/kernels/biquad.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/masm/assembler.h"

namespace majc {
namespace {

cpu::ScheduleReport check(const char* src) {
  return cpu::check_schedule(masm::assemble_or_throw(src));
}

TEST(ScheduleCheck, BackToBackMultiplyIsFlagged) {
  // mul has latency 2: an immediate consumer reads one cycle early.
  const auto rep = check(R"(
    setlo g3, 4
    nop
    nop | mul g4, g3, g3
    nop | add g5, g4, g3
    halt
  )");
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].shortfall, 1u);
  EXPECT_EQ(rep.violations[0].slot, 1u);
}

TEST(ScheduleCheck, ProperlySpacedMultiplyIsClean) {
  EXPECT_TRUE(check(R"(
    setlo g3, 4
    nop
    nop | mul g4, g3, g3
    nop
    nop | add g5, g4, g3
    halt
  )").clean());
}

TEST(ScheduleCheck, Fp32NeedsFourCycles) {
  const auto rep = check(R"(
    setlo g3, 4
    nop
    nop | fadd g4, g3, g3
    nop | fadd g5, g4, g3
    halt
  )");
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].shortfall, 3u);
}

TEST(ScheduleCheck, BypassMatrixShapesTheDistance) {
  // FU1 -> FU0 forwards with no delay: back-to-back is legal.
  EXPECT_TRUE(check(R"(
    setlo g3, 4
    nop
    nop | add g4, g3, g3
    add g5, g4, g3
    halt
  )").clean());
  // FU1 -> FU2 goes through write-back: back-to-back reads 2 early.
  const auto rep = check(R"(
    setlo g3, 4
    nop
    nop | add g4, g3, g3
    nop | nop | add g5, g4, g3
    halt
  )");
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].shortfall, 2u);
}

TEST(ScheduleCheck, LoadsAreInterlockedNotFlagged) {
  // The hardware scoreboards loads; an immediate use is legal (if slow).
  EXPECT_TRUE(check(R"(
    setlo g3, 4096
    ldwi g4, g3, 0
    add g5, g4, g4
    halt
  )").clean());
}

TEST(ScheduleCheck, BranchTargetResetsTheWindow) {
  // The producer sits right before the loop label; the consumer at the
  // label would be early on the fall-through path, but block-boundary
  // conservatism resets state, so no violation is reported.
  EXPECT_TRUE(check(R"(
    setlo g3, 4
    nop
    nop | mul g4, g3, g3
  loop:
    nop | add g5, g4, g3
    addi g3, g3, -1
    bnz g3, loop
    halt
  )").clean());
}

TEST(ScheduleCheck, SamePacketReadsPreviousValueLegally) {
  // Parallel read semantics: a packet reading a register another slot
  // writes sees the old (long-settled) value -> clean.
  EXPECT_TRUE(check(R"(
    setlo g3, 1
    setlo g4, 2
    nop
    add g3, g4, g4 | add g4, g3, g3
    halt
  )").clean());
}

TEST(ScheduleCheck, KernelsRelyOnInterlocksOnlyWhereExpected) {
  // The matrix-scheduled IDCT is fully latency-clean; the FIR keeps its
  // residual reliance on interlocks (reduction fadds) under 10 %; the
  // biquad cascade deliberately leans on interlocks for its off-critical
  // state updates, which the checker duly reports.
  const auto fir = cpu::check_schedule(
      masm::assemble_or_throw(kernels::make_fir_spec().source));
  EXPECT_GT(fir.packets_checked, 100u);
  EXPECT_LT(fir.violations.size(), fir.packets_checked / 10);

  const auto idct = cpu::check_schedule(
      masm::assemble_or_throw(kernels::make_idct_spec().source));
  EXPECT_TRUE(idct.clean());

  const auto bq = cpu::check_schedule(
      masm::assemble_or_throw(kernels::make_biquad_spec().source));
  EXPECT_GT(bq.violations.size(), 0u);
  EXPECT_LT(bq.violations.size(), bq.packets_checked / 2);
}

TEST(ScheduleCheck, ReportFormats) {
  const auto rep = check(R"(
    setlo g3, 4
    nop
    nop | mul g4, g3, g3
    nop | add g5, g4, g3
    halt
  )");
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("1 violation"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
}

} // namespace
} // namespace majc
