// Differential check of the predecode layer: for every packet of every
// Table 1 / Table 2 kernel image, the cached PacketMeta must agree with a
// fresh isa::decode_packet + collect_sources / collect_dests recomputation.
// This is what licenses the cycle model to never re-derive operand lists,
// latencies or successor pcs on its hot path.
#include <gtest/gtest.h>

#include <span>

#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/kernel.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"

namespace majc {
namespace {

using kernels::KernelSpec;

// Reference recomputation of one packet's metadata straight from the
// decoder, mirroring what the pre-predecode cycle model derived per issue.
void check_packet(const sim::Program& prog, u32 idx, Addr pc) {
  const isa::Packet fresh = isa::decode_packet(
      std::span<const u32>(prog.image().code)
          .subspan((pc - prog.image().code_base) / 4));
  const sim::PacketMeta& m = prog.meta(idx);

  ASSERT_EQ(m.pc, pc);
  EXPECT_EQ(m.width, fresh.width);
  EXPECT_EQ(m.bytes, fresh.bytes());
  EXPECT_EQ(m.fall_through, pc + fresh.bytes());

  // Flattened source list: same registers, same consuming slots, in slot
  // order — exactly what the old issue loop fed to the scoreboard.
  InlineVec<sim::PacketMeta::SrcRead, 48> want_srcs;
  for (u32 i = 0; i < fresh.width; ++i) {
    InlineVec<isa::PhysReg, 12> srcs;
    sim::collect_sources(fresh.slot[i], i, srcs);
    for (isa::PhysReg r : srcs) {
      want_srcs.push_back({r, static_cast<u8>(i)});
    }
  }
  ASSERT_EQ(m.srcs.size(), want_srcs.size()) << "pc=" << pc;
  for (u32 i = 0; i < want_srcs.size(); ++i) {
    EXPECT_EQ(m.srcs[i].reg, want_srcs[i].reg) << "pc=" << pc << " src " << i;
    EXPECT_EQ(m.srcs[i].fu, want_srcs[i].fu) << "pc=" << pc << " src " << i;
  }

  bool want_any_dests = false;
  bool want_any_resource = false;
  InlineVec<sim::PacketMeta::DestWrite, 32> want_dsts;
  for (u32 i = 0; i < fresh.width; ++i) {
    const isa::OpInfo& info = fresh.slot[i].info();
    const sim::PacketMeta::SlotMeta& sm = m.slot[i];
    const bool load = info.is_load() || info.has(isa::kAtomic);

    InlineVec<isa::PhysReg, 8> dests;
    sim::collect_dests(fresh.slot[i], i, dests);
    ASSERT_EQ(sm.dests.size(), dests.size()) << "pc=" << pc << " slot " << i;
    for (u32 d = 0; d < dests.size(); ++d) {
      EXPECT_EQ(sm.dests[d], dests[d]) << "pc=" << pc << " slot " << i;
      want_dsts.push_back({dests[d], static_cast<u8>(i), info.latency, load});
    }

    EXPECT_EQ(sm.latency, info.latency) << "pc=" << pc << " slot " << i;
    EXPECT_EQ(sm.issue_interval, info.issue_interval)
        << "pc=" << pc << " slot " << i;
    EXPECT_EQ(sm.resource, sim::fu_resource_of(info))
        << "pc=" << pc << " slot " << i;
    EXPECT_EQ(sm.load_data, load) << "pc=" << pc << " slot " << i;
    // Executor dispatch class: nop slots carry the skip sentinel (the
    // meta-driven executor elides their dispatch); everything else its
    // OpInfo class.
    const u8 want_cls = fresh.slot[i].op == isa::Op::kNop
                            ? sim::kSlotClsNop
                            : static_cast<u8>(info.cls);
    EXPECT_EQ(sm.cls, want_cls) << "pc=" << pc << " slot " << i;
    want_any_dests = want_any_dests || dests.size() > 0;
    want_any_resource = want_any_resource || sim::fu_resource_of(info) >= 0;
  }
  EXPECT_EQ(m.any_dests, want_any_dests) << "pc=" << pc;
  EXPECT_EQ(m.any_resource, want_any_resource) << "pc=" << pc;

  // Flattened writeback list: every slot's destinations in slot order, each
  // tagged with its producing slot, latency and LSU-delivery flag — what
  // the cycle model's scoreboard update walks.
  ASSERT_EQ(m.dsts.size(), want_dsts.size()) << "pc=" << pc;
  for (u32 i = 0; i < want_dsts.size(); ++i) {
    EXPECT_EQ(m.dsts[i].reg, want_dsts[i].reg) << "pc=" << pc << " dst " << i;
    EXPECT_EQ(m.dsts[i].slot, want_dsts[i].slot) << "pc=" << pc << " dst " << i;
    EXPECT_EQ(m.dsts[i].latency, want_dsts[i].latency)
        << "pc=" << pc << " dst " << i;
    EXPECT_EQ(m.dsts[i].load_data, want_dsts[i].load_data)
        << "pc=" << pc << " dst " << i;
  }

  // Successor indices: the fall-through index must name the packet at
  // fall_through (or be kNoPacketIndex past the image end); a static branch
  // or call target, when it lands on a packet boundary, must be cached.
  if (prog.has_packet(m.fall_through)) {
    ASSERT_NE(m.next_index, sim::kNoPacketIndex) << "pc=" << pc;
    EXPECT_EQ(m.next_index, prog.index_of(m.fall_through)) << "pc=" << pc;
  } else {
    EXPECT_EQ(m.next_index, sim::kNoPacketIndex) << "pc=" << pc;
  }
  const isa::OpInfo& info0 = fresh.slot[0].info();
  if (info0.has(isa::kBranch) || info0.has(isa::kCall)) {
    ASSERT_TRUE(m.has_static_target) << "pc=" << pc;
    const Addr target =
        pc + static_cast<Addr>(static_cast<i64>(fresh.slot[0].imm) * 4);
    EXPECT_EQ(m.taken_target, target) << "pc=" << pc;
    if (prog.has_packet(target)) {
      EXPECT_EQ(m.taken_index, prog.index_of(target)) << "pc=" << pc;
    } else {
      EXPECT_EQ(m.taken_index, sim::kNoPacketIndex) << "pc=" << pc;
    }
  } else {
    EXPECT_FALSE(m.has_static_target) << "pc=" << pc;
    EXPECT_EQ(m.taken_index, sim::kNoPacketIndex) << "pc=" << pc;
  }
}

void check_spec(const KernelSpec& spec) {
  SCOPED_TRACE(spec.name);
  const sim::Program prog(masm::assemble_or_throw(spec.source));
  ASSERT_GT(prog.num_packets(), 0u);
  Addr pc = prog.image().code_base;
  for (u32 idx = 0; idx < prog.num_packets(); ++idx) {
    ASSERT_TRUE(prog.has_packet(pc));
    ASSERT_EQ(prog.index_of(pc), idx);
    check_packet(prog, idx, pc);
    pc += prog.meta(idx).bytes;
  }
}

TEST(Predecode, MatchesFreshDecodeOnAllKernels) {
  check_spec(kernels::make_idct_spec());
  check_spec(kernels::make_dct_quant_spec());
  check_spec(kernels::make_vld_spec());
  check_spec(kernels::make_motion_est_spec());
  check_spec(kernels::make_mb_decode_spec());
  check_spec(kernels::make_biquad_spec());
  check_spec(kernels::make_fir_spec());
  check_spec(kernels::make_iir_spec());
  check_spec(kernels::make_cfir_spec());
  check_spec(kernels::make_lms_spec());
  check_spec(kernels::make_max_search_spec());
  check_spec(kernels::make_bitrev_spec());
  check_spec(kernels::make_fft_radix2_spec());
  check_spec(kernels::make_fft_radix4_spec());
  check_spec(kernels::make_convolve_spec());
  check_spec(kernels::make_color_convert_spec());
}

// A dynamic control transfer (JMPL to a runtime address) has no static
// target: the simulators must fall back to the pc -> index map and still
// agree with packet_at.
TEST(Predecode, DynamicTransferFallsBackToIndexMap) {
  const char* src = R"(
    sethi g10, %hi(target)
    orlo g10, %lo(target)
    jmpl g4, g10
    halt
  target:
    addi g11, g0, 7
    halt
  )";
  const sim::Program prog(masm::assemble_or_throw(src));
  const u32 jmpl_idx = prog.index_of(prog.image().code_base + 8);
  const sim::PacketMeta& m = prog.meta(jmpl_idx);
  EXPECT_FALSE(m.has_static_target);
  EXPECT_EQ(m.taken_index, sim::kNoPacketIndex);

  sim::FunctionalSim sim(masm::assemble_or_throw(src));
  const sim::RunResult res = sim.run();
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(sim.state().read(11), 7u);
}

} // namespace
} // namespace majc
