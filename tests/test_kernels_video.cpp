// Correctness + timing-sanity tests for the Table 1 video/image kernels.
#include <gtest/gtest.h>

#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/idct.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/transform_light.h"
#include "src/kernels/vld.h"

namespace majc {
namespace {

using kernels::run_kernel;
using kernels::run_kernel_functional;

class IdctSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(IdctSeeds, MatchesGoldenBitExactly) {
  const auto run = run_kernel_functional(kernels::make_idct_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdctSeeds, ::testing::Values(1u, 2u, 9u, 31u));

TEST(Idct, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_idct_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 304 cycles per 8x8 block.
  EXPECT_GT(run.kernel_cycles, 150u);
  EXPECT_LT(run.kernel_cycles, 700u);
}

class DctSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(DctSeeds, MatchesGoldenBitExactly) {
  const auto run =
      run_kernel_functional(kernels::make_dct_quant_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctSeeds, ::testing::Values(1u, 7u, 21u));

TEST(DctQuant, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_dct_quant_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 200 cycles per 8x8 block (DCT + quantization).
  EXPECT_GT(run.kernel_cycles, 150u);
  EXPECT_LT(run.kernel_cycles, 800u);
}


class VldSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(VldSeeds, DecodesBitExactly) {
  const auto run = run_kernel_functional(kernels::make_vld_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VldSeeds,
                         ::testing::Values(1u, 2u, 3u, 11u, 77u));

TEST(Vld, CyclesPerSymbolNearPaper) {
  const auto run = run_kernel(kernels::make_vld_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  const double per_sym =
      static_cast<double>(run.kernel_cycles) / kernels::kVldSymbols;
  // Paper: 27 Msymbols/s at 500 MHz = 18.5 cycles/symbol.
  EXPECT_GT(per_sym, 8.0);
  EXPECT_LT(per_sym, 40.0);
}


class MeSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(MeSeeds, FindsTheSameVectorAsGolden) {
  const auto run =
      run_kernel_functional(kernels::make_motion_est_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 23u));

TEST(MotionEst, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_motion_est_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: ~3000 cycles for a +/-16 log search.
  EXPECT_GT(run.kernel_cycles, 1500u);
  EXPECT_LT(run.kernel_cycles, 9000u);
}


TEST(Convolve, MatchesGoldenExactly) {
  const auto run = run_kernel_functional(kernels::make_convolve_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(Convolve, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_convolve_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 1.65 Mcycles for 512x512.
  EXPECT_GT(run.kernel_cycles, 800000u);
  EXPECT_LT(run.kernel_cycles, 4000000u);
}

TEST(ColorConvert, MatchesGoldenExactly) {
  const auto run = run_kernel_functional(kernels::make_color_convert_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(ColorConvert, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_color_convert_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 0.9 Mcycles for 512x512.
  EXPECT_GT(run.kernel_cycles, 500000u);
  EXPECT_LT(run.kernel_cycles, 3000000u);
}


class TlSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(TlSeeds, MatchesGoldenBitExactly) {
  const auto run = run_kernel_functional(
      kernels::make_transform_light_spec(64, GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlSeeds, ::testing::Values(1u, 2u, 13u));

TEST(TransformLight, PerVertexCostSupportsPaperTriangleRate) {
  const double cpv = kernels::measure_tl_cycles_per_vertex();
  // 60-90 Mtri/s across two 500 MHz CPUs needs <= ~16 cycles/vertex.
  EXPECT_GT(cpv, 5.0);
  EXPECT_LT(cpv, 25.0);
}


class MbSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(MbSeeds, ComposedMacroblockDecodeMatchesGolden) {
  const auto run =
      run_kernel_functional(kernels::make_mb_decode_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbSeeds, ::testing::Values(1u, 2u, 8u));

TEST(MbDecode, PerMacroblockBudgetIsPlausible) {
  const auto run = run_kernel(kernels::make_mb_decode_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // 6 blocks x (40 symbols x ~24 cy + IDCT ~320 cy) ~= 8-10k cycles.
  EXPECT_GT(run.kernel_cycles, 4000u);
  EXPECT_LT(run.kernel_cycles, 20000u);
}

} // namespace
} // namespace majc
