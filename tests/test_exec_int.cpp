// Integer ALU / compare / conditional-move / multiply / divide semantics.
#include "tests/exec_test_util.h"

namespace majc {
namespace {

TEST(ExecInt, ArithmeticAndLogic) {
  ExecRun r(R"(
    setlo g3, 100
    setlo g4, -7
    add g10, g3, g4
    sub g11, g3, g4
    and g12, g3, g4
    or  g13, g3, g4
    xor g14, g3, g4
    andn g15, g3, g4
    halt
  )");
  EXPECT_EQ(r.gs(10), 93);
  EXPECT_EQ(r.gs(11), 107);
  EXPECT_EQ(r.g(12), 100u & static_cast<u32>(-7));
  EXPECT_EQ(r.g(13), 100u | static_cast<u32>(-7));
  EXPECT_EQ(r.g(14), 100u ^ static_cast<u32>(-7));
  EXPECT_EQ(r.g(15), 100u & ~static_cast<u32>(-7));
}

TEST(ExecInt, ShiftsMaskTo5Bits) {
  ExecRun r(R"(
    setlo g3, -8
    setlo g4, 33        # shift amount: 33 & 31 = 1
    sll g10, g3, g4
    srl g11, g3, g4
    sra g12, g3, g4
    slli g13, g3, 2
    srai g14, g3, 1
    halt
  )");
  EXPECT_EQ(r.g(10), static_cast<u32>(-8) << 1);
  EXPECT_EQ(r.g(11), static_cast<u32>(-8) >> 1);
  EXPECT_EQ(r.gs(12), -4);
  EXPECT_EQ(r.gs(13), -32);
  EXPECT_EQ(r.gs(14), -4);
}

TEST(ExecInt, Compares) {
  ExecRun r(R"(
    setlo g3, -1
    setlo g4, 1
    cmpeq g10, g3, g3
    cmpne g11, g3, g4
    cmplt g12, g3, g4    # signed: -1 < 1
    cmpltu g13, g3, g4   # unsigned: 0xffffffff < 1 is false
    cmple g14, g4, g4
    cmpleu g15, g4, g3
    halt
  )");
  EXPECT_EQ(r.g(10), 1u);
  EXPECT_EQ(r.g(11), 1u);
  EXPECT_EQ(r.g(12), 1u);
  EXPECT_EQ(r.g(13), 0u);
  EXPECT_EQ(r.g(14), 1u);
  EXPECT_EQ(r.g(15), 1u);
}

TEST(ExecInt, ConditionalMovesAndPick) {
  ExecRun r(R"(
    setlo g3, 11
    setlo g4, 22
    setlo g5, 1
    setlo g10, 99
    cmovnz g10, g3, g5   # taken
    setlo g11, 99
    cmovnz g11, g3, g0   # not taken
    setlo g12, 99
    cmovz g12, g4, g0    # taken
    nop | setlo l0, 1
    nop | pick l0, g3, g4   # l0 != 0 -> g3
    nop | mov g13, l0
    nop | setlo l1, 0
    nop | pick l1, g3, g4   # l1 == 0 -> g4
    nop | mov g14, l1
    halt
  )");
  EXPECT_EQ(r.g(10), 11u);
  EXPECT_EQ(r.g(11), 99u);
  EXPECT_EQ(r.g(12), 22u);
  EXPECT_EQ(r.g(13), 11u);
  EXPECT_EQ(r.g(14), 22u);
}

TEST(ExecInt, MultiplyFamily) {
  ExecRun r(R"(
    sethi g3, 2
    orlo g3, 0           # 0x20000
    sethi g4, 3
    orlo g4, 0           # 0x30000
    nop | mul g10, g3, g4
    nop | mulhi g11, g3, g4
    nop | mulhiu g12, g3, g4
    setlo g13, 10
    nop | madd g13, g3, g4
    setlo g14, 10
    nop | msub g14, g3, g4
    setlo g5, -3
    setlo g6, 5
    nop | mulhi g15, g5, g6
    halt
  )");
  const u64 prod = u64{0x20000} * 0x30000;
  EXPECT_EQ(r.g(10), static_cast<u32>(prod));
  EXPECT_EQ(r.g(11), static_cast<u32>(prod >> 32));
  EXPECT_EQ(r.g(12), static_cast<u32>(prod >> 32));
  EXPECT_EQ(r.g(13), static_cast<u32>(prod) + 10);
  EXPECT_EQ(r.g(14), 10u - static_cast<u32>(prod));
  EXPECT_EQ(r.gs(15), -1);  // high word of -15
}

TEST(ExecInt, DivideEdgeCases) {
  ExecRun r(R"(
    setlo g3, -100
    setlo g4, 7
    div g10, g3, g4
    divu g11, g3, g4
    div g12, g3, g0      # divide by zero -> 0
    sethi g5, 0x8000
    orlo g5, 0
    setlo g6, -1
    div g13, g5, g6      # INT_MIN / -1 wraps to INT_MIN
    halt
  )");
  EXPECT_EQ(r.gs(10), -14);
  EXPECT_EQ(r.g(11), static_cast<u32>(-100) / 7u);
  EXPECT_EQ(r.g(12), 0u);
  EXPECT_EQ(r.g(13), 0x80000000u);
}

TEST(ExecInt, SaturatingScalar) {
  ExecRun r(R"(
    sethi g3, 0x7fff
    orlo g3, 0xffff      # INT_MAX
    setlo g4, 5
    nop | satadd g10, g3, g4
    sethi g5, 0x8000
    orlo g5, 0           # INT_MIN
    nop | satsub g11, g5, g4
    nop | satadd g12, g4, g4
    halt
  )");
  EXPECT_EQ(r.g(10), 0x7FFFFFFFu);
  EXPECT_EQ(r.g(11), 0x80000000u);
  EXPECT_EQ(r.g(12), 10u);
}

TEST(ExecInt, SetloSethiOrlo) {
  ExecRun r(R"(
    setlo g10, -1
    sethi g11, 0xBEEF
    sethi g12, 0xDEAD
    orlo g12, 0xF00D
    halt
  )");
  EXPECT_EQ(r.g(10), 0xFFFFFFFFu);
  EXPECT_EQ(r.g(11), 0xBEEF0000u);
  EXPECT_EQ(r.g(12), 0xDEADF00Du);
}

} // namespace
} // namespace majc
