// Odds-and-ends coverage: trap console formats, InlineVec bounds, image
// symbol errors, disassembly listings, program packet-boundary queries,
// running stats, peak-kernel structure.
#include <gtest/gtest.h>

#include "src/isa/disasm.h"
#include "src/cpu/cycle_cpu.h"
#include "src/kernels/peak.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/support/inline_vec.h"
#include "src/support/stats.h"

namespace majc {
namespace {

TEST(Trap, AllConsoleFormats) {
  const char* src = R"(
    setlo g3, -7
    trap g0, g3, 0        # int
    setlo g4, 65
    trap g0, g4, 1        # char 'A'
    sethi g5, 0xDEAD
    orlo g5, 0xBEEF
    trap g0, g5, 2        # hex
    sethi g6, 0x3FC0
    orlo g6, 0
    trap g0, g6, 3        # float 1.5
    halt
  )";
  sim::FunctionalSim s(masm::assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.console(), "-7\nA0xdeadbeef\n1.5\n");
}

TEST(InlineVec, OverflowFaults) {
  InlineVec<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_THROW(v.push_back(3), Error);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(Image, UnknownSymbolFaults) {
  const auto img = masm::assemble_or_throw("halt\n");
  EXPECT_THROW(img.symbol("nope"), Error);
  EXPECT_EQ(img.symbols.count("nope"), 0u);
}

TEST(Disasm, CodeListingCoversWholeImage) {
  const auto img = masm::assemble_or_throw(R"(
    setlo g3, 1 | add g4, g3, g3
    halt
  )");
  const std::string listing = isa::disasm_code(img.code);
  EXPECT_NE(listing.find("setlo g3, 1 | add g4, g3, g3 ;;"),
            std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Program, PacketBoundaryQueries) {
  const auto img = masm::assemble_or_throw(R"(
    setlo g3, 1 | add g4, g3, g3
    halt
  )");
  sim::Program prog(img);
  EXPECT_EQ(prog.num_packets(), 2u);
  EXPECT_TRUE(prog.has_packet(img.code_base));
  EXPECT_FALSE(prog.has_packet(img.code_base + 4));  // mid-packet
  EXPECT_TRUE(prog.has_packet(img.code_base + 8));
  EXPECT_THROW(prog.packet_at(img.code_base + 4), Error);
}

TEST(Stats, RunningStat) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  s.add(2.0);
  s.add(6.0);
  s.add(-2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Peak, BurstKernelsValidateAndSustainRate) {
  for (bool fp : {true, false}) {
    const auto spec = fp ? kernels::make_fp_peak_spec(500)
                         : kernels::make_simd_peak_spec(500);
    const auto run = kernels::run_kernel(spec.kernel);
    ASSERT_TRUE(run.valid) << spec.kernel.name;
    // 24-packet body + loop control; near one packet per cycle when warm.
    const double per_iter =
        static_cast<double>(run.kernel_cycles) / spec.iterations;
    EXPECT_LT(per_iter, 27.0) << spec.kernel.name;
    EXPECT_GE(per_iter, 24.0) << spec.kernel.name;
  }
}

TEST(Assembler, GroupLoadRegisterAliasesWork) {
  // 'lr' and 'sp' parse; 'zero' reads as g0.
  const auto img = masm::assemble_or_throw(R"(
    mov g3, zero
    add g4, sp, zero
    jmpl g5, lr
    halt
  )");
  EXPECT_GE(img.code.size(), 4u);
}


TEST(Trace, ObserverSeesEveryPacketInOrder) {
  const char* src = R"(
    setlo g3, 5
  lp:
    addi g3, g3, -1
    bnz g3, lp
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src));
  std::vector<cpu::TraceEvent> events;
  sim.cpu().set_trace([&](const cpu::TraceEvent& ev) { events.push_back(ev); });
  const auto res = sim.run();
  ASSERT_TRUE(res.halted);
  ASSERT_EQ(events.size(), res.packets);
  u64 width_sum = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].cycle, events[i - 1].cycle);  // strictly increasing
  }
  for (const auto& ev : events) width_sum += ev.width;
  EXPECT_EQ(width_sum, res.instrs);
}

} // namespace
} // namespace majc
