// Differential sweep of the two functional-mode execution backends: the
// packet interpreter (ExecBackend::kInterp) and the threaded-code
// translation backend (ExecBackend::kThreaded) must produce bit-identical
// guest-visible state — registers and memory (arch_digest), trap codes and
// detail strings, console output, retire statistics and checkpoint bytes —
// across all 16 Table 1/2 kernels, fatal and recovered traps, a seeded
// fault-config job matrix through the farm, and checkpoints saved mid-run
// inside a fused superblock and restored into the *other* backend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/farm/farm.h"
#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/kernel.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/support/checkpoint.h"

namespace majc {
namespace {

using masm::assemble_or_throw;
using sim::ExecBackend;
using sim::FunctionalSim;

struct NamedKernel {
  const char* name;
  kernels::KernelSpec (*make)();
};

std::vector<NamedKernel> table12_kernels() {
  using namespace kernels;
  return {
      {"biquad", [] { return make_biquad_spec(); }},
      {"fir", [] { return make_fir_spec(); }},
      {"iir", [] { return make_iir_spec(); }},
      {"cfir", [] { return make_cfir_spec(); }},
      {"lms", [] { return make_lms_spec(); }},
      {"max_search", [] { return make_max_search_spec(); }},
      {"bitrev", [] { return make_bitrev_spec(); }},
      {"fft_radix2", [] { return make_fft_radix2_spec(); }},
      {"fft_radix4", [] { return make_fft_radix4_spec(); }},
      {"idct", [] { return make_idct_spec(); }},
      {"dct_quant", [] { return make_dct_quant_spec(); }},
      {"vld", [] { return make_vld_spec(); }},
      {"motion_est", [] { return make_motion_est_spec(); }},
      {"mb_decode", [] { return make_mb_decode_spec(); }},
      {"convolve", [] { return make_convolve_spec(); }},
      {"color_convert", [] { return make_color_convert_spec(); }},
  };
}

struct Outcome {
  kernels::KernelRun run;
  std::string console;
  u64 traps_delivered = 0;
};

Outcome run_kernel_with(const sim::ProgramRef& prog,
                        const kernels::KernelSpec& spec, ExecBackend b) {
  FunctionalSim m(prog);
  m.set_backend(b);
  Outcome o;
  o.run = kernels::run_kernel_on(m, spec);
  o.console = m.console();
  o.traps_delivered = m.traps_delivered();
  return o;
}

// ----------------------------------------------- the 16-kernel sweep

TEST(BackendEquiv, AllTable12KernelsBitIdentical) {
  for (const NamedKernel& nk : table12_kernels()) {
    const kernels::KernelSpec spec = nk.make();
    const sim::ProgramRef prog =
        sim::make_program(assemble_or_throw(spec.source));
    const Outcome a = run_kernel_with(prog, spec, ExecBackend::kInterp);
    const Outcome b = run_kernel_with(prog, spec, ExecBackend::kThreaded);
    EXPECT_TRUE(b.run.valid) << nk.name << ": " << b.run.message;
    EXPECT_TRUE(b.run.halted) << nk.name;
    EXPECT_EQ(a.run.valid, b.run.valid) << nk.name;
    EXPECT_EQ(a.run.arch_digest, b.run.arch_digest) << nk.name;
    EXPECT_EQ(a.run.packets, b.run.packets) << nk.name;
    EXPECT_EQ(a.run.instrs, b.run.instrs) << nk.name;
    EXPECT_EQ(a.run.kernel_cycles, b.run.kernel_cycles) << nk.name;
    EXPECT_EQ(a.run.reason, b.run.reason) << nk.name;
    EXPECT_EQ(a.console, b.console) << nk.name;
    EXPECT_EQ(a.traps_delivered, b.traps_delivered) << nk.name;
  }
}

// --------------------------------------------------------- fatal traps

// Each program ends in an architected trap; both backends must report the
// same cause *and* the same human-readable detail string, leave the same
// architectural state behind, and agree on how many packets retired before
// the trap (precise-trap equivalence).
TEST(BackendEquiv, FatalTrapCodesAndDetailsMatch) {
  const char* programs[] = {
      // Misaligned load (also exercised inside a fuseable packet run).
      R"(
        setlo g3, 4097
        setlo g4, 1
        add g5, g3, g4 | add g6, g4, g4
        ldwi g7, g3, 0
        halt
      )",
      // Out-of-bounds store via a huge base register.
      R"(
        sethi g3, 0xffff
        orlo g3, 0xfff0
        stwi g3, g3, 0
        halt
      )",
      // Misaligned store in slot 0 of a multi-slot packet: the threaded
      // backend runs such packets via deferred-commit records, so the
      // slot-order trap point must still be exact.
      R"(
        setlo g3, 4098
        setlo g4, 5
        stwi g4, g3, 1 | add g5, g4, g4
        halt
      )",
  };
  for (const char* src : programs) {
    FunctionalSim a(assemble_or_throw(src));
    a.set_backend(ExecBackend::kInterp);
    const sim::RunResult ra = a.run();
    FunctionalSim b(assemble_or_throw(src));
    b.set_backend(ExecBackend::kThreaded);
    const sim::RunResult rb = b.run();
    ASSERT_EQ(ra.reason, TerminationReason::kTrap) << src;
    EXPECT_EQ(rb.reason, ra.reason) << src;
    EXPECT_EQ(rb.trap.code, ra.trap.code) << src;
    EXPECT_EQ(rb.trap.detail, ra.trap.detail) << src;
    EXPECT_EQ(rb.packets, ra.packets) << src;
    EXPECT_EQ(rb.instrs, ra.instrs) << src;
    EXPECT_EQ(ckpt::arch_digest(b), ckpt::arch_digest(a)) << src;
  }
}

TEST(BackendEquiv, ArmedDivideByZeroTrapMatches) {
  const char* src = R"(
    setlo g3, 9
    setlo g4, 0
    div g5, g3, g4
    halt
  )";
  FunctionalSim a(assemble_or_throw(src));
  a.set_backend(ExecBackend::kInterp);
  a.set_trap_div_zero(true);
  const sim::RunResult ra = a.run();
  FunctionalSim b(assemble_or_throw(src));
  b.set_backend(ExecBackend::kThreaded);
  b.set_trap_div_zero(true);
  const sim::RunResult rb = b.run();
  ASSERT_EQ(ra.reason, TerminationReason::kTrap);
  ASSERT_EQ(ra.trap.code, TrapCause::kDivideByZero);
  EXPECT_EQ(rb.reason, ra.reason);
  EXPECT_EQ(rb.trap.code, ra.trap.code);
  EXPECT_EQ(rb.trap.detail, ra.trap.detail);
  EXPECT_EQ(ckpt::arch_digest(b), ckpt::arch_digest(a));
}

// ------------------------------------------------- recovered (vectored)

TEST(BackendEquiv, GuestTrapHandlerRecoveryMatches) {
  // Installs a handler, takes a misaligned load, reads the saved cause and
  // fall-through pc with MFTR, and resumes with RETT — the full recoverable
  // trap round trip of PR 5, on both backends.
  const char* src = R"(
      sethi g20, %hi(handler)
      orlo g20, %lo(handler)
      settvec g20
      setlo g3, 4097
      ldwi g4, g3, 0
      setlo g9, 77
      halt
    handler:
      mftr g5, 0
      mftr g7, 2
      rett g7
  )";
  FunctionalSim a(assemble_or_throw(src));
  a.set_backend(ExecBackend::kInterp);
  const sim::RunResult ra = a.run();
  FunctionalSim b(assemble_or_throw(src));
  b.set_backend(ExecBackend::kThreaded);
  const sim::RunResult rb = b.run();
  ASSERT_EQ(ra.reason, TerminationReason::kHalted);
  EXPECT_EQ(rb.reason, ra.reason);
  EXPECT_EQ(b.state().read(5), static_cast<u32>(TrapCause::kMisaligned));
  EXPECT_EQ(b.state().read(9), 77u);
  EXPECT_EQ(b.traps_delivered(), a.traps_delivered());
  EXPECT_EQ(rb.packets, ra.packets);
  EXPECT_EQ(rb.instrs, ra.instrs);
  EXPECT_EQ(ckpt::arch_digest(b), ckpt::arch_digest(a));
}

// ------------------------------------- seeded fault-config job matrix

// The soak harness's seeded job matrix (every kernel, derive_soak_faults
// per iteration) through the farm on each backend: per-job architectural
// outcomes must pair up exactly. This also pins the farm's backend
// plumbing — Job.backend reaches the worker machines.
TEST(BackendEquiv, SeededFarmSweepMatchesAcrossBackends) {
  std::vector<farm::JobResult> per_backend[2];
  for (const ExecBackend backend :
       {ExecBackend::kInterp, ExecBackend::kThreaded}) {
    farm::Engine eng;
    for (const NamedKernel& nk : table12_kernels()) {
      kernels::KernelSpec spec = nk.make();
      spec.name = nk.name;
      eng.add_kernel(std::move(spec));
    }
    for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
      for (u64 it = 0; it < 2; ++it) {
        farm::Job job;
        job.kernel = ki;
        job.iteration = it;
        job.mode = farm::SimMode::kFunctional;
        job.backend = backend;
        job.cfg.faults = farm::derive_soak_faults(0x20260809, ki, it);
        eng.submit(job);
      }
    }
    per_backend[backend == ExecBackend::kThreaded] = eng.run(2);
  }
  const std::vector<farm::JobResult>& ia = per_backend[0];
  const std::vector<farm::JobResult>& th = per_backend[1];
  ASSERT_EQ(ia.size(), th.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].run.valid, th[i].run.valid) << "job " << i;
    EXPECT_EQ(ia[i].run.halted, th[i].run.halted) << "job " << i;
    EXPECT_EQ(ia[i].run.arch_digest, th[i].run.arch_digest) << "job " << i;
    EXPECT_EQ(ia[i].run.packets, th[i].run.packets) << "job " << i;
    EXPECT_EQ(ia[i].run.instrs, th[i].run.instrs) << "job " << i;
  }
}

// --------------------------------- checkpoints across the backend seam

// A tight store loop whose back edge is the translator's favourite fusion
// target (addi feeding bnz in consecutive packets), so a mid-run packet
// cap lands inside a fused superblock region.
constexpr const char* kFuseLoopProg = R"(
    .data
  buf: .space 1024
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 200
    setlo g6, 1
  fill:
    stwi g6, g3, 0
    addi g6, g6, 3 | addi g3, g3, 4
    addi g5, g5, -1
    bnz g5, fill
    halt
)";

TEST(BackendEquiv, MidRunStateBitIdenticalIncludingCheckpointBytes) {
  // Stop both backends at the same mid-loop packet counts; the serialized
  // checkpoints (headers, registers, memory, counters) must be
  // byte-identical — the backend is host-side and outside the format.
  const masm::Image img = assemble_or_throw(kFuseLoopProg);
  for (const u64 cap : {5ull, 101ull, 102ull, 103ull, 250ull}) {
    FunctionalSim a(img);
    a.set_backend(ExecBackend::kInterp);
    const sim::RunResult ra = a.run(cap);
    FunctionalSim b(img);
    b.set_backend(ExecBackend::kThreaded);
    const sim::RunResult rb = b.run(cap);
    EXPECT_EQ(rb.reason, ra.reason) << "cap " << cap;
    EXPECT_EQ(b.packets_run(), a.packets_run()) << "cap " << cap;
    EXPECT_EQ(b.instrs_run(), a.instrs_run()) << "cap " << cap;
    EXPECT_EQ(ckpt::save_checkpoint(b), ckpt::save_checkpoint(a))
        << "cap " << cap;
  }
}

TEST(BackendEquiv, CheckpointCrossesBackendsMidSuperblock) {
  // Unbroken reference run (interpreter).
  const masm::Image img = assemble_or_throw(kFuseLoopProg);
  FunctionalSim ref(img);
  ref.set_backend(ExecBackend::kInterp);
  const sim::RunResult rr = ref.run();
  ASSERT_TRUE(rr.halted);
  const u64 ref_digest = ckpt::arch_digest(ref);

  // threaded -> checkpoint mid-superblock -> restore -> interp finishes.
  {
    FunctionalSim first(img);
    first.set_backend(ExecBackend::kThreaded);
    ASSERT_EQ(first.run(102).reason, TerminationReason::kPacketCap);
    const std::vector<u8> snap = ckpt::save_checkpoint(first);
    FunctionalSim second(img);
    second.set_backend(ExecBackend::kInterp);
    ckpt::restore_checkpoint(second, snap);
    const sim::RunResult res = second.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(second.packets_run(), ref.packets_run());
    EXPECT_EQ(second.instrs_run(), ref.instrs_run());
    EXPECT_EQ(ckpt::arch_digest(second), ref_digest);
  }
  // interp -> checkpoint -> restore -> threaded finishes.
  {
    FunctionalSim first(img);
    first.set_backend(ExecBackend::kInterp);
    ASSERT_EQ(first.run(102).reason, TerminationReason::kPacketCap);
    const std::vector<u8> snap = ckpt::save_checkpoint(first);
    FunctionalSim second(img);
    // restore_checkpoint does not touch the backend; re-select after it.
    ckpt::restore_checkpoint(second, snap);
    second.set_backend(ExecBackend::kThreaded);
    const sim::RunResult res = second.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(second.packets_run(), ref.packets_run());
    EXPECT_EQ(second.instrs_run(), ref.instrs_run());
    EXPECT_EQ(ckpt::arch_digest(second), ref_digest);
  }
}

} // namespace
} // namespace majc
