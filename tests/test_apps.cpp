// Table 3 application-model tests: every row lands in the paper's
// neighbourhood and the memory-effects column behaves sanely.
#include <gtest/gtest.h>

#include "src/apps/workload.h"
#include "src/support/error.h"

namespace majc {
namespace {

class AppRows : public ::testing::Test {
protected:
  static const std::vector<apps::AppResult>& rows() {
    static const std::vector<apps::AppResult> r = apps::run_all_apps();
    return r;
  }
  static const apps::AppResult& find(const std::string& needle) {
    for (const auto& r : rows()) {
      if (r.name.find(needle) != std::string::npos) return r;
    }
    throw Error("row not found: " + needle);
  }
};

TEST_F(AppRows, AllSevenRowsPresent) { EXPECT_EQ(rows().size(), 7u); }

TEST_F(AppRows, SpeechCodersAreFewPercent) {
  const auto& g728 = find("G.728");
  EXPECT_GT(g728.utilization, 0.005);
  EXPECT_LT(g728.utilization, 0.04);  // paper: 1.6 %
  const auto& g729 = find("G.729");
  EXPECT_GT(g729.utilization, g728.utilization);  // same ordering as paper
  EXPECT_LT(g729.utilization, 0.05);
}

TEST_F(AppRows, Mpeg2IsTheHeavyRow) {
  const auto& m = find("MPEG-2");
  EXPECT_GT(m.utilization, 0.25);  // paper: 75 %
  EXPECT_LT(m.utilization, 1.0);
  for (const auto& r : rows()) {
    if (r.throughput_mb_s > 0) continue;
    EXPECT_GE(m.utilization * 1.6, r.utilization) << r.name;
  }
}

TEST_F(AppRows, AudioInPaperBand) {
  const auto& a = find("AC-3");
  EXPECT_GT(a.utilization, 0.015);
  EXPECT_LT(a.utilization, 0.08);  // paper: 3-5 %
}

TEST_F(AppRows, ThroughputRowsNearPaper) {
  EXPECT_GT(find("JPEG").throughput_mb_s, 25.0);   // paper: 40 MB/s
  EXPECT_LT(find("JPEG").throughput_mb_s, 90.0);
  EXPECT_GT(find("Lossless").throughput_mb_s, 25.0);
  EXPECT_LT(find("Lossless").throughput_mb_s, 120.0);
}

TEST_F(AppRows, H263NearHalfACpu) {
  const auto& h = find("H.263");
  EXPECT_GT(h.utilization, 0.25);  // paper: 50 %
  EXPECT_LT(h.utilization, 0.9);
}

TEST_F(AppRows, MemoryEffectsAlwaysCostSomething) {
  for (const auto& r : rows()) {
    if (r.throughput_mb_s > 0) continue;
    EXPECT_GE(r.utilization, r.utilization_no_mem * 0.999) << r.name;
  }
}

TEST(KernelCosts, PerfectConfigIsNeverSlower) {
  TimingConfig real;
  TimingConfig perfect;
  perfect.perfect_dcache = true;
  perfect.perfect_icache = true;
  const auto cr = apps::measure_kernel_costs(real);
  const auto cp = apps::measure_kernel_costs(perfect);
  EXPECT_LE(cp.fir_mac, cr.fir_mac * 1.001);
  EXPECT_LE(cp.idct_block, cr.idct_block * 1.001);
  EXPECT_LE(cp.vld_symbol, cr.vld_symbol * 1.001);
  EXPECT_LE(cp.me_search, cr.me_search * 1.001);
}

} // namespace
} // namespace majc
