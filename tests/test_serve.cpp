// Differential battery for the majcd serving path (src/serve/).
//
// The daemon's contract is that serving is *transparent*: a campaign
// requested over the majc-req-v1 socket protocol streams back a
// majc-farm-v1 payload byte-identical to what the offline path
// (majc_farm -j1 / farm::campaign_json) produces for the same parameters.
// These tests run a real Server on a unique unix socket and compare served
// bytes against an in-process reference built through the exact CLI code
// path — table12_spec + submit_matrix + campaign_json — across the full
// 16-kernel table, both sim modes, both functional backends, named and
// inline-source kernels, and repeated (cache-hitting) requests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/table12.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

using namespace majc;

namespace {

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/majcd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

/// Build the offline reference for a request: the same canonical expansion
/// and serialization majc_farm uses, run serially.
std::string reference_campaign(const serve::CampaignRequest& req) {
  farm::Engine eng;
  if (!req.source_text.empty()) {
    kernels::KernelSpec spec;
    spec.name = req.source_name;
    spec.source = req.source_text;
    eng.add_kernel(std::move(spec));
  } else {
    for (const std::string& name : req.kernels) {
      const kernels::NamedKernel* nk = kernels::find_table12_kernel(name);
      EXPECT_NE(nk, nullptr) << name;
      eng.add_kernel(kernels::table12_spec(*nk));
    }
  }
  farm::MatrixSpec m;
  for (u64 it = 0; it < req.seeds; ++it) m.iterations.push_back(it);
  m.base_seed = req.seed;
  m.faults = req.faults;
  m.mode_cycle = req.mode == "cycle" || req.mode == "both";
  m.mode_functional = req.mode == "functional" || req.mode == "both";
  m.backend = req.backend == "interp" ? sim::ExecBackend::kInterp
                                      : sim::ExecBackend::kThreaded;
  m.policy = req.policy;
  farm::submit_matrix(eng, m);
  return farm::campaign_json(eng, eng.run(1u), req.seed);
}

std::vector<std::string> all_table12_names() {
  std::vector<std::string> names;
  for (const kernels::NamedKernel& nk : kernels::table12_kernels()) {
    names.push_back(nk.name);
  }
  return names;
}

class ServeTest : public ::testing::Test {
protected:
  void start(serve::ServerConfig cfg = {}) {
    cfg.socket_path = unique_socket_path();
    cfg.workers = 2;
    server_ = std::make_unique<serve::Server>(std::move(cfg));
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  serve::CampaignReply serve_one(const serve::CampaignRequest& req) {
    serve::Client client;
    std::string err;
    EXPECT_TRUE(client.connect(server_->config().socket_path, &err)) << err;
    serve::CampaignReply reply;
    EXPECT_TRUE(serve::run_campaign(client, req, &reply, &err)) << err;
    return reply;
  }

  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeTest, FullTableCycleServedBytesMatchOffline) {
  start();
  serve::CampaignRequest req;
  req.id = 1;
  req.kernels = all_table12_names();
  req.mode = "cycle";
  req.seeds = 1;
  const serve::CampaignReply reply = serve_one(req);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  EXPECT_TRUE(reply.acked);
  EXPECT_EQ(reply.jobs.size(), 16u);
  EXPECT_EQ(reply.failures, 0u);
  EXPECT_EQ(reply.campaign, reference_campaign(req));
}

TEST_F(ServeTest, FullTableFunctionalBothBackendsMatchOffline) {
  start();
  for (const char* backend : {"threaded", "interp"}) {
    serve::CampaignRequest req;
    req.id = 2;
    req.kernels = all_table12_names();
    req.mode = "functional";
    req.backend = backend;
    req.seeds = 2;
    const serve::CampaignReply reply = serve_one(req);
    ASSERT_TRUE(reply.ok)
        << backend << ": " << reply.error_code << ": " << reply.error_message;
    EXPECT_EQ(reply.jobs.size(), 32u) << backend;
    EXPECT_EQ(reply.campaign, reference_campaign(req)) << backend;
  }
}

TEST_F(ServeTest, BothModesMatrixMatchesOffline) {
  start();
  serve::CampaignRequest req;
  req.id = 3;
  req.kernels = {"fir", "bitrev", "idct", "vld"};
  req.mode = "both";
  req.seeds = 2;
  req.seed = 0x1234;
  const serve::CampaignReply reply = serve_one(req);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  // kernel-major, iteration, cycle-before-functional: 4 x 2 x 2 jobs.
  ASSERT_EQ(reply.jobs.size(), 16u);
  EXPECT_EQ(reply.jobs[0].kernel, "fir");
  EXPECT_EQ(reply.jobs[0].mode, "cycle");
  EXPECT_EQ(reply.jobs[1].kernel, "fir");
  EXPECT_EQ(reply.jobs[1].mode, "functional");
  EXPECT_EQ(reply.jobs[15].kernel, "vld");
  EXPECT_EQ(reply.campaign, reference_campaign(req));
}

TEST_F(ServeTest, InlineSourceKernelMatchesOffline) {
  start();
  serve::CampaignRequest req;
  req.id = 4;
  req.source_name = "tiny";
  req.source_text = "halt\n";
  req.mode = "both";
  req.seeds = 2;
  const serve::CampaignReply reply = serve_one(req);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  EXPECT_EQ(reply.jobs.size(), 4u);
  EXPECT_EQ(reply.jobs[0].kernel, "tiny");
  EXPECT_EQ(reply.campaign, reference_campaign(req));
}

TEST_F(ServeTest, NoFaultsSweepMatchesOffline) {
  start();
  serve::CampaignRequest req;
  req.id = 5;
  req.kernels = {"biquad", "max_search"};
  req.mode = "functional";
  req.seeds = 2;
  req.faults = false;
  const serve::CampaignReply reply = serve_one(req);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  EXPECT_EQ(reply.campaign, reference_campaign(req));
}

TEST_F(ServeTest, RepeatedRequestsAreByteIdenticalAcrossConnections) {
  start();
  serve::CampaignRequest req;
  req.id = 6;
  req.kernels = {"fir", "fft_radix2"};
  req.mode = "functional";
  req.seeds = 1;
  // Three requests over three fresh connections: first compiles (well,
  // preloaded), later ones hit the cache — every payload must be identical.
  const serve::CampaignReply first = serve_one(req);
  ASSERT_TRUE(first.ok) << first.error_code;
  for (int i = 0; i < 2; ++i) {
    const serve::CampaignReply again = serve_one(req);
    ASSERT_TRUE(again.ok) << again.error_code;
    EXPECT_EQ(again.campaign, first.campaign);
  }
  EXPECT_EQ(first.campaign, reference_campaign(req));
}

TEST_F(ServeTest, MultiWorkerServingMatchesSerialReference) {
  serve::ServerConfig cfg;
  cfg.workers = 4;  // served campaign runs on 4 farm workers
  start(cfg);
  serve::CampaignRequest req;
  req.id = 7;
  req.kernels = all_table12_names();
  req.mode = "functional";
  req.seeds = 2;
  const serve::CampaignReply reply = serve_one(req);
  ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  // The worker count must be invisible in the payload (farm determinism).
  EXPECT_EQ(reply.campaign, reference_campaign(req));
}

TEST_F(ServeTest, StatsAndPingRoundTrip) {
  start();
  serve::Client client;
  std::string err;
  ASSERT_TRUE(client.connect(server_->config().socket_path, &err)) << err;
  ASSERT_TRUE(serve::ping(client, 1, &err)) << err;
  serve::ServeStats before;
  ASSERT_TRUE(serve::fetch_stats(client, 2, &before, &err)) << err;
  EXPECT_EQ(before.campaigns_served, 0u);
  EXPECT_EQ(before.cache_misses, 16u);  // table12 preload
  EXPECT_FALSE(before.draining);

  serve::CampaignRequest req;
  req.id = 3;
  req.kernels = {"fir"};
  req.mode = "functional";
  serve::CampaignReply reply;
  ASSERT_TRUE(serve::run_campaign(client, req, &reply, &err)) << err;
  ASSERT_TRUE(reply.ok);

  serve::ServeStats after;
  ASSERT_TRUE(serve::fetch_stats(client, 4, &after, &err)) << err;
  EXPECT_EQ(after.campaigns_served, 1u);
  EXPECT_EQ(after.jobs_served, 1u);
  EXPECT_EQ(after.active_campaigns, 0u);
}

} // namespace
