// The gshare branch predictor: the paper's Fig. 2 geometry (4096 entries,
// 12 history bits), counter training and saturation, index aliasing, the
// static not-taken ablation, and the mispredict penalty as charged by the
// cycle model.
#include <gtest/gtest.h>

#include "src/cpu/branch_predictor.h"
#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"
#include "src/support/error.h"

namespace majc {
namespace {

TimingConfig with_history(u32 entries, u32 history_bits) {
  TimingConfig cfg;
  cfg.bpred_entries = entries;
  cfg.bpred_history_bits = history_bits;
  return cfg;
}

TEST(BranchPredictor, DefaultGeometryIsThePapers) {
  const TimingConfig cfg;
  EXPECT_EQ(cfg.bpred_entries, 4096u);
  EXPECT_EQ(cfg.bpred_history_bits, 12u);
  EXPECT_TRUE(cfg.bpred_enabled);
}

TEST(BranchPredictor, CountersStartWeaklyTakenAndTrainToNotTaken) {
  cpu::BranchPredictor bp{TimingConfig{}};
  const Addr pc = 0x1000;
  // 2-bit counters initialize to 2 (weakly taken).
  EXPECT_TRUE(bp.predict(pc));
  // One not-taken outcome drops the counter to 1 -> predict not-taken.
  bp.update(pc, false);
  EXPECT_FALSE(bp.predict(pc));
  bp.update(pc, false);
  EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, SaturationAbsorbsOneContraryOutcome) {
  // history_bits = 0 pins the index so training and probing hit one counter.
  cpu::BranchPredictor bp{with_history(4096, 0)};
  const Addr pc = 0x2000;
  for (int i = 0; i < 8; ++i) bp.update(pc, true);  // saturate at 3
  bp.update(pc, false);                             // 3 -> 2: still taken
  EXPECT_TRUE(bp.predict(pc));
  bp.update(pc, false);                             // 2 -> 1: flips
  EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, HistoryDisambiguatesAnAlternatingPattern) {
  // A single branch alternating T/N defeats a history-less counter (it
  // hovers between 1 and 2) but is fully predictable through the global
  // history register: after warmup every prediction is correct.
  cpu::BranchPredictor bp{TimingConfig{}};
  const Addr pc = 0x3000;
  bool taken = false;
  for (int i = 0; i < 64; ++i, taken = !taken) bp.update(pc, taken);
  bp.reset_stats();
  for (int i = 0; i < 64; ++i, taken = !taken) {
    bp.predict(pc);
    bp.update(pc, taken);
  }
  EXPECT_EQ(bp.accuracy(), 1.0);
}

TEST(BranchPredictor, TableIndexAliasesAtTheEntryCount) {
  // With zero history bits the index is (pc >> 2) mod entries, so branches
  // entries*4 bytes apart share (and fight over) one counter.
  constexpr u32 kEntries = 64;
  cpu::BranchPredictor bp{with_history(kEntries, 0)};
  const Addr pc = 0x1000;
  const Addr alias = pc + kEntries * 4;
  const Addr non_alias = pc + kEntries * 2;
  for (int i = 0; i < 4; ++i) bp.update(pc, false);
  EXPECT_FALSE(bp.predict(alias));     // same counter, trained not-taken
  EXPECT_TRUE(bp.predict(non_alias));  // different counter, untouched
}

TEST(BranchPredictor, StaticModePredictsNotTakenAndNeverTrains) {
  TimingConfig cfg;
  cfg.bpred_enabled = false;
  cpu::BranchPredictor bp{cfg};
  const Addr pc = 0x4000;
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(bp.predict(pc));
    bp.update(pc, true);  // taken outcomes must not teach the static mode
  }
  EXPECT_FALSE(bp.predict(pc));
  // Every lookup was wrong: static not-taken vs always-taken stream.
  EXPECT_EQ(bp.correct(), 0u);
}

TEST(BranchPredictor, EntryCountMustBePowerOfTwo) {
  EXPECT_THROW(cpu::BranchPredictor{with_history(1000, 12)}, Error);
  EXPECT_NO_THROW(cpu::BranchPredictor{with_history(1024, 12)});
}

// ---- timing: the penalty the cycle model charges ----

namespace timing {

/// A 200-iteration countdown loop: the backward branch is taken 199 times
/// and falls through once. Perfect I$ isolates the branch effect.
const char* kBiasedLoop = R"(
  setlo g3, 200
lp:
  addi g3, g3, -1
  bnz g3, lp
  halt
)";

cpu::CycleSim::Result run(bool bpred_on, cpu::CpuStats& stats_out) {
  TimingConfig cfg;
  cfg.perfect_icache = true;
  cfg.bpred_enabled = bpred_on;
  cpu::CycleSim sim(masm::assemble_or_throw(kBiasedLoop), cfg);
  const auto res = sim.run();
  stats_out = sim.cpu().stats();
  return res;
}

TEST(BranchPredictorTiming, BranchPenaltyStallEqualsMispredictsTimesPenalty) {
  const TimingConfig cfg;
  cpu::CpuStats on, off;
  const auto res_on = run(true, on);
  const auto res_off = run(false, off);
  ASSERT_TRUE(res_on.halted);
  ASSERT_TRUE(res_off.halted);

  // The attribution identity, on both configurations: every branch-penalty
  // stall cycle comes from a mispredict (no jumps in this program).
  EXPECT_EQ(on.stalls.get(cpu::StallCause::kBranchPenalty),
            on.mispredicts * cfg.mispredict_penalty);
  EXPECT_EQ(off.stalls.get(cpu::StallCause::kBranchPenalty),
            off.mispredicts * cfg.mispredict_penalty);
  EXPECT_EQ(on.jumps, 0u);

  // Static not-taken mispredicts every taken iteration (199); gshare trains
  // within a few iterations.
  EXPECT_EQ(off.mispredicts, 199u);
  EXPECT_LT(on.mispredicts, 8u);

  // Identical instruction streams, so the whole cycle difference is the
  // extra mispredict penalties.
  EXPECT_EQ(res_off.cycles - res_on.cycles,
            (off.mispredicts - on.mispredicts) * cfg.mispredict_penalty);
}

TEST(BranchPredictorTiming, PredictorAccuracyIsVisibleThroughTheCpu) {
  cpu::CpuStats stats;
  TimingConfig cfg;
  cfg.perfect_icache = true;
  cpu::CycleSim sim(masm::assemble_or_throw(timing::kBiasedLoop), cfg);
  ASSERT_TRUE(sim.run().halted);
  // 200 conditional executions, 199 taken.
  EXPECT_EQ(sim.cpu().stats().cond_branches, 200u);
  EXPECT_EQ(sim.cpu().stats().taken_branches, 199u);
  EXPECT_GT(sim.cpu().predictor().accuracy(), 0.95);
}

} // namespace timing

} // namespace
} // namespace majc
