// FP32 / FP64 semantics: arithmetic, fused ops, compares, converts,
// min/max/negate, and the register-pair conventions.
#include "tests/exec_test_util.h"

#include <cmath>

namespace majc {
namespace {

std::string setf(const std::string& reg, float v) {
  const u32 bits = std::bit_cast<u32>(v);
  return "sethi " + reg + ", " + std::to_string(bits >> 16) + "\norlo " + reg +
         ", " + std::to_string(bits & 0xFFFF) + "\n";
}

TEST(ExecFp, Arithmetic) {
  std::string src = setf("g3", 1.5f) + setf("g4", -2.25f);
  src += R"(
    nop | fadd g10, g3, g4
    nop | fsub g11, g3, g4
    nop | fmul g12, g3, g4
    fdiv g13, g3, g4
    halt
  )";
  ExecRun r(src);
  EXPECT_EQ(r.gf(10), 1.5f + -2.25f);
  EXPECT_EQ(r.gf(11), 1.5f - -2.25f);
  EXPECT_EQ(r.gf(12), 1.5f * -2.25f);
  EXPECT_EQ(r.gf(13), 1.5f / -2.25f);
}

TEST(ExecFp, FusedMultiplyAddIsFused) {
  // Choose operands where fma differs from mul+add at float precision.
  const float a = 1.0f + 0x1p-12f;
  const float b = 1.0f + 0x1p-12f;
  const float c = -1.0f;
  std::string src = setf("g3", a) + setf("g4", b) + setf("g10", c) +
                    setf("g11", c);
  src += "nop | fmadd g10, g3, g4\n";
  src += "nop | fmsub g11, g3, g4\nhalt\n";
  ExecRun r(src);
  EXPECT_EQ(r.gf(10), std::fmaf(a, b, c));
  EXPECT_EQ(r.gf(11), std::fmaf(-a, b, c));
  EXPECT_NE(r.gf(10), a * b + c);  // the fused result keeps the low bits
}

TEST(ExecFp, MinMaxNegAbs) {
  std::string src = setf("g3", -3.5f) + setf("g4", 2.0f);
  src += R"(
    nop | fmin g10, g3, g4
    nop | fmax g11, g3, g4
    nop | fneg g12, g3
    nop | fabs g13, g3
    halt
  )";
  ExecRun r(src);
  EXPECT_EQ(r.gf(10), -3.5f);
  EXPECT_EQ(r.gf(11), 2.0f);
  EXPECT_EQ(r.gf(12), 3.5f);
  EXPECT_EQ(r.gf(13), 3.5f);
}

TEST(ExecFp, ComparesAndConverts) {
  std::string src = setf("g3", 1.0f) + setf("g4", 2.0f) + setf("g5", -7.9f);
  src += R"(
    nop | fcmpeq g10, g3, g3
    nop | fcmplt g11, g3, g4
    nop | fcmple g12, g4, g3
    setlo g6, -19
    nop | itof g13, g6
    nop | ftoi g14, g5
    halt
  )";
  ExecRun r(src);
  EXPECT_EQ(r.g(10), 1u);
  EXPECT_EQ(r.g(11), 1u);
  EXPECT_EQ(r.g(12), 0u);
  EXPECT_EQ(r.gf(13), -19.0f);
  EXPECT_EQ(r.gs(14), -7);  // truncation toward zero
}

TEST(ExecFp, FtoiSaturatesAndHandlesNan) {
  std::string src = setf("g3", 3e9f) + setf("g4", -3e9f) +
                    setf("g5", std::nanf(""));
  src += R"(
    nop | ftoi g10, g3
    nop | ftoi g11, g4
    nop | ftoi g12, g5
    halt
  )";
  ExecRun r(src);
  EXPECT_EQ(r.gs(10), 2147483647);
  EXPECT_EQ(r.gs(11), -2147483647 - 1);
  EXPECT_EQ(r.gs(12), 0);
}

TEST(ExecFp, Rsqrt) {
  std::string src = setf("g3", 4.0f);
  src += "frsqrt g10, g3\nhalt\n";
  ExecRun r(src);
  EXPECT_EQ(r.gf(10), 1.0f / std::sqrt(4.0f));
}

TEST(ExecFp, DoublePrecisionPairs) {
  // Load doubles from memory into pairs and exercise the FP64 unit.
  ExecRun r(R"(
    .data
      .align 8
  a: .double 2.5
  b: .double -1.25
    .code
    sethi g3, %hi(a)
    orlo g3, %lo(a)
    ldli g10, g3, 0       # a -> g10:g11
    ldli g12, g3, 8       # b -> g12:g13
    nop | dadd g14, g10, g12
    nop | dsub g16, g10, g12
    nop | dmul g18, g10, g12
    nop | dmin g20, g10, g12
    nop | dmax g22, g10, g12
    nop | dneg g24, g12
    nop | dcmplt g26, g12, g10
    nop | dcmpeq g27, g10, g10
    nop | dcmple g28, g10, g12
    halt
  )");
  EXPECT_EQ(r.gd(14), 2.5 + -1.25);
  EXPECT_EQ(r.gd(16), 2.5 - -1.25);
  EXPECT_EQ(r.gd(18), 2.5 * -1.25);
  EXPECT_EQ(r.gd(20), -1.25);
  EXPECT_EQ(r.gd(22), 2.5);
  EXPECT_EQ(r.gd(24), 1.25);
  EXPECT_EQ(r.g(26), 1u);
  EXPECT_EQ(r.g(27), 1u);
  EXPECT_EQ(r.g(28), 0u);
}

TEST(ExecFp, ConvertBetweenPrecisions) {
  std::string src = setf("g3", 0.1f);
  src += R"(
    nop | ftod g10, g3
    nop | dtof g12, g10
    halt
  )";
  ExecRun r(src);
  EXPECT_EQ(r.gd(10), static_cast<double>(0.1f));
  EXPECT_EQ(r.gf(12), 0.1f);
}

} // namespace
} // namespace majc
