// Shared helper for the executor unit tests: assemble, run on the
// functional simulator, and read back architectural state.
#pragma once

#include <gtest/gtest.h>

#include <bit>

#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"

namespace majc {

class ExecRun {
public:
  explicit ExecRun(const std::string& src)
      : sim_(masm::assemble_or_throw(src)) {
    const auto res = sim_.run();
    EXPECT_TRUE(res.halted) << "program did not halt";
  }

  u32 g(u32 n) { return sim_.state().read(static_cast<isa::PhysReg>(n)); }
  i32 gs(u32 n) { return static_cast<i32>(g(n)); }
  float gf(u32 n) { return std::bit_cast<float>(g(n)); }
  u64 pair(u32 even) { return (u64{g(even)} << 32) | g(even + 1); }
  double gd(u32 even) { return std::bit_cast<double>(pair(even)); }

  sim::FunctionalSim& sim() { return sim_; }

private:
  sim::FunctionalSim sim_;
};

} // namespace majc
