// SIMD 16-bit-pair, fixed point and bit/byte manipulation semantics,
// cross-checked against the support-library primitives (property style).
#include "tests/exec_test_util.h"

#include "src/support/bits.h"
#include "src/support/fixed_point.h"
#include "src/support/rng.h"
#include "src/support/saturate.h"

namespace majc {
namespace {

std::string set32(const std::string& reg, u32 v) {
  return "sethi " + reg + ", " + std::to_string(v >> 16) + "\norlo " + reg +
         ", " + std::to_string(v & 0xFFFF) + "\n";
}

/// Run one R-form SIMD op with the given operand words; returns rd.
u32 simd1(const std::string& op, u32 a, u32 b, u32 acc = 0) {
  std::string src = set32("g3", a) + set32("g4", b) + set32("g10", acc);
  src += "nop | " + op + " g10, g3, g4\nhalt\n";
  ExecRun r(src);
  return r.g(10);
}

TEST(ExecSimd, PaddModes) {
  SplitMix64 rng(5);
  for (int t = 0; t < 200; ++t) {
    const u32 a = rng.next_u32(), b = rng.next_u32();
    for (const char* suffix : {"", ".s", ".u", ".b"}) {
      const auto mode = static_cast<SatMode>(
          suffix[0] == 0 ? 0 : (suffix[1] == 's' ? 1 : suffix[1] == 'u' ? 2 : 3));
      const u32 got = simd1(std::string("padd") + suffix, a, b);
      const i64 hi = i64{static_cast<i16>(a >> 16)} + static_cast<i16>(b >> 16);
      const i64 lo = i64{static_cast<i16>(a)} + static_cast<i16>(b);
      const u32 want =
          (u32{saturate_lane(hi, mode)} << 16) | saturate_lane(lo, mode);
      ASSERT_EQ(got, want) << "padd" << suffix;
    }
  }
}

TEST(ExecSimd, PsubSaturated) {
  // -32768 - 1 saturates per-lane in signed mode, wraps otherwise.
  const u32 a = 0x8000'0005u;  // lanes (-32768, 5)
  const u32 b = 0x0001'0007u;  // lanes (1, 7)
  EXPECT_EQ(simd1("psub.s", a, b), 0x8000FFFEu);
  EXPECT_EQ(simd1("psub", a, b), 0x7FFFFFFEu);  // wrap
}

TEST(ExecSimd, FixedPointMultiplies) {
  const u16 h1 = to_fixed(0.5, kFracS15), l1 = to_fixed(-0.25, kFracS15);
  const u16 h2 = to_fixed(0.5, kFracS15), l2 = to_fixed(0.8, kFracS15);
  const u32 a = (u32{h1} << 16) | l1;
  const u32 b = (u32{h2} << 16) | l2;
  const u32 got = simd1("pmuls15.s", a, b);
  EXPECT_EQ(got >> 16, fx_mul(h1, h2, kFracS15, SatMode::kSigned16));
  EXPECT_EQ(got & 0xFFFF, fx_mul(l1, l2, kFracS15, SatMode::kSigned16));
  EXPECT_NEAR(from_fixed(static_cast<u16>(got >> 16), kFracS15), 0.25, 1e-3);

  const u16 a213 = to_fixed(1.5, kFracS213), b213 = to_fixed(2.0, kFracS213);
  const u32 got213 = simd1("pmuls213.s", (u32{a213} << 16) | a213,
                           (u32{b213} << 16) | b213);
  EXPECT_NEAR(from_fixed(static_cast<u16>(got213), kFracS213), 3.0, 1e-3);
}

TEST(ExecSimd, MaddAccumulates) {
  const u32 acc = 0x0001'0002u;
  const u32 a = 0x0003'0004u;
  const u32 b = 0x0005'0006u;
  EXPECT_EQ(simd1("pmaddh", a, b, acc), ((1u + 15) << 16) | (2u + 24));
}

TEST(ExecSimd, DotProductFullPrecision) {
  // dotp: rd += hi*hi + lo*lo with 32-bit accumulation.
  const u32 a = (u32{static_cast<u16>(i16{-300})} << 16) | 200;
  const u32 b = (u32{static_cast<u16>(i16{400})} << 16) |
                static_cast<u16>(i16{-100});
  const u32 got = simd1("dotp", a, b, 1000);
  EXPECT_EQ(static_cast<i32>(got), 1000 + (-300 * 400) + (200 * -100));
}

TEST(ExecSimd, Pmuls31) {
  const u16 a = to_fixed(-0.5, kFracS15), b = to_fixed(0.5, kFracS15);
  const u32 got = simd1("pmuls31", a, b);
  EXPECT_EQ(static_cast<i32>(got), fx_mul_s31(a, b));
  EXPECT_NEAR(static_cast<i32>(got) / 2147483648.0, -0.25, 1e-4);
}

TEST(ExecSimd, ParallelDivideAndRsqrtOnFu0) {
  const u16 six = to_fixed(3.0, kFracS213), two = to_fixed(2.0, kFracS213);
  std::string src = set32("g3", (u32{six} << 16) | six) +
                    set32("g4", (u32{two} << 16) | two);
  src += "pdiv213 g10, g3, g4\nprsqrt213 g11, g4\nhalt\n";
  ExecRun r(src);
  EXPECT_NEAR(from_fixed(static_cast<u16>(r.g(10)), kFracS213), 1.5, 1e-3);
  EXPECT_NEAR(from_fixed(static_cast<u16>(r.g(11) & 0xFFFF), kFracS213),
              1.0 / std::sqrt(2.0), 2e-3);
}

TEST(ExecSimd, BextDynamicField) {
  // Pair g6:g7 = 0xDEADBEEF:0x12345678; extract 12 bits at position 20.
  std::string src = set32("g6", 0xDEADBEEF) + set32("g7", 0x12345678);
  src += "setlo g4, " + std::to_string(20 | (12 << 6)) + "\n";
  src += "nop | bext g10, g6, g4\nhalt\n";
  ExecRun r(src);
  EXPECT_EQ(r.g(10), bitfield_extract(0xDEADBEEF, 0x12345678, 20, 12));
  EXPECT_EQ(r.g(10), 0xEEFu);
}

TEST(ExecSimd, LzdAndShuffleAndPdist) {
  std::string src = set32("g3", 0x00013579) + set32("g4", 0x0A0B0C0D) +
                    set32("g5", 0x01020304);
  src += "nop | lzd g10, g3\n";
  src += "setlo g11, " + std::to_string(0x4567) + "\n";  // pick low-word bytes
  src += "nop | bshuf g11, g3, g4\n";
  src += "setlo g12, 10\n";
  src += "nop | pdist g12, g4, g5\nhalt\n";
  ExecRun r(src);
  EXPECT_EQ(r.g(10), 15u);
  EXPECT_EQ(r.g(11), 0x0A0B0C0Du);
  EXPECT_EQ(r.g(12), 10u + pixel_distance(0x0A0B0C0D, 0x01020304));
}

TEST(ExecSimd, MatchesSupportPrimitivesProperty) {
  // Sweep random operands over pmulh in every mode against lanewise math.
  SplitMix64 rng(77);
  for (int t = 0; t < 100; ++t) {
    const u32 a = rng.next_u32(), b = rng.next_u32();
    const u32 got = simd1("pmulh.s", a, b);
    const i64 hi = i64{static_cast<i16>(a >> 16)} * static_cast<i16>(b >> 16);
    const i64 lo = i64{static_cast<i16>(a)} * static_cast<i16>(b);
    const u32 want = (u32{saturate_lane(hi, SatMode::kSigned16)} << 16) |
                     saturate_lane(lo, SatMode::kSigned16);
    ASSERT_EQ(got, want);
  }
}

} // namespace
} // namespace majc
