// Memory-operation semantics: every load/store width, sign extension,
// addressing forms, group transfers, conditional stores, atomics, and the
// alignment faults.
#include "tests/exec_test_util.h"

namespace majc {
namespace {

TEST(ExecMem, ByteAndHalfLoadsSignExtend) {
  ExecRun r(R"(
    .data
  v: .byte 0x80, 0x7F
    .align 2
  h: .half -2, 32767
    .code
    sethi g3, %hi(v)
    orlo g3, %lo(v)
    ldbi g10, g3, 0
    ldbui g11, g3, 0
    ldbi g12, g3, 1
    sethi g4, %hi(h)
    orlo g4, %lo(h)
    ldhi g13, g4, 0
    ldhui g14, g4, 0
    ldhi g15, g4, 2
    halt
  )");
  EXPECT_EQ(r.gs(10), -128);
  EXPECT_EQ(r.g(11), 0x80u);
  EXPECT_EQ(r.gs(12), 127);
  EXPECT_EQ(r.gs(13), -2);
  EXPECT_EQ(r.g(14), 0xFFFEu);
  EXPECT_EQ(r.gs(15), 32767);
}

TEST(ExecMem, StoreWidths) {
  ExecRun r(R"(
    .data
  buf: .space 16
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g4, -1
    stwi g4, g3, 0       # fill a word with ff
    setlo g5, 0x12
    stbi g5, g3, 1       # patch one byte
    sethi g6, 0xAABB
    orlo g6, 0xCCDD
    sthi g6, g3, 4       # halfword store keeps the low 16 bits
    ldwi g10, g3, 0
    ldwi g11, g3, 4
    halt
  )");
  EXPECT_EQ(r.g(10), 0xFFFF12FFu);
  EXPECT_EQ(r.g(11) & 0xFFFFu, 0xCCDDu);
}

TEST(ExecMem, RegPlusRegAddressing) {
  ExecRun r(R"(
    .data
  arr: .word 10, 20, 30, 40
    .code
    sethi g3, %hi(arr)
    orlo g3, %lo(arr)
    setlo g4, 8
    ldw g10, g3, g4
    setlo g5, 99
    stw g5, g3, g4
    ldw g11, g3, g4
    halt
  )");
  EXPECT_EQ(r.g(10), 30u);
  EXPECT_EQ(r.g(11), 99u);
}

TEST(ExecMem, GroupStoreRoundTrip) {
  ExecRun r(R"(
    .data
      .align 32
  src: .word 1, 2, 3, 4, 5, 6, 7, 8
  dst: .space 32
    .code
    sethi g3, %hi(src)
    orlo g3, %lo(src)
    ldgi g8, g3, 0
    sethi g4, %hi(dst)
    orlo g4, %lo(dst)
    stgi g8, g4, 0
    ldgi g16, g4, 0
    halt
  )");
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(r.g(16 + i), i + 1);
}

TEST(ExecMem, ConditionalStore) {
  ExecRun r(R"(
    .data
  a: .word 111
  b: .word 222
    .code
    sethi g3, %hi(a)
    orlo g3, %lo(a)
    sethi g4, %hi(b)
    orlo g4, %lo(b)
    setlo g5, 77
    setlo g6, 1
    stcw g5, g3, g6      # predicate true: stores
    stcw g5, g4, g0      # predicate false: no effect
    ldwi g10, g3, 0
    ldwi g11, g4, 0
    halt
  )");
  EXPECT_EQ(r.g(10), 77u);
  EXPECT_EQ(r.g(11), 222u);
}

TEST(ExecMem, AtomicsSingleCpuSemantics) {
  ExecRun r(R"(
    .data
  cell: .word 5
    .code
    sethi g3, %hi(cell)
    orlo g3, %lo(cell)
    setlo g4, 9
    swap g4, g3          # g4 <- 5, cell <- 9
    setlo g5, 42
    setlo g6, 9
    cas g5, g3, g6       # expect 9: succeeds; g5 <- 9, cell <- 42
    setlo g7, 100
    setlo g8, 9
    cas g7, g3, g8       # expect 9 but cell is 42: fails; g7 <- 42
    ldwi g10, g3, 0
    halt
  )");
  EXPECT_EQ(r.g(4), 5u);
  EXPECT_EQ(r.g(5), 9u);
  EXPECT_EQ(r.g(7), 42u);
  EXPECT_EQ(r.g(10), 42u);
}

TEST(ExecMem, CachedAttributesExecuteIdentically) {
  // Cache attributes are timing hints; values must not change.
  ExecRun r(R"(
    .data
  v: .word 1234
    .code
    sethi g3, %hi(v)
    orlo g3, %lo(v)
    ldw g10, g3, g0
    ldw.nc g11, g3, g0
    ldw.na g12, g3, g0
    halt
  )");
  EXPECT_EQ(r.g(10), 1234u);
  EXPECT_EQ(r.g(11), 1234u);
  EXPECT_EQ(r.g(12), 1234u);
}

TEST(ExecMem, MisalignedAccessFaults) {
  sim::FunctionalSim sim(masm::assemble_or_throw(R"(
    setlo g3, 4097
    ldwi g4, g3, 0
    halt
  )"));
  const sim::RunResult res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMisaligned);
  // The trap is precise: pc names the faulting packet (second packet).
  EXPECT_EQ(res.trap.pc, sim.program().image().entry + isa::kInstrBytes);
}

TEST(ExecMem, OutOfBoundsFaults) {
  sim::FunctionalSim sim(masm::assemble_or_throw(R"(
    setlo g3, -4
    ldw g4, g3, g0
    halt
  )"));
  const sim::RunResult res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kOutOfBounds);
}

TEST(ExecMem, PrefetchHasNoArchitecturalEffect) {
  ExecRun r(R"(
    .data
  v: .word 55
    .code
    sethi g3, %hi(v)
    orlo g3, %lo(v)
    prefi g0, g3, 0
    pref g0, g3, g0
    ldwi g10, g3, 0
    halt
  )");
  EXPECT_EQ(r.g(10), 55u);
}

TEST(ExecMem, MembarIsANoOpForValues) {
  ExecRun r(R"(
    setlo g3, 7
    membar
    add g10, g3, g3
    halt
  )");
  EXPECT_EQ(r.g(10), 14u);
}

} // namespace
} // namespace majc
