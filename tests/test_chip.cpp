// System-on-chip tests: dual-CPU execution, shared-D$ communication,
// atomics/membar litmus tests, the DTE DMA engine and the external ports.
#include <gtest/gtest.h>

#include "src/masm/assembler.h"
#include "src/soc/chip.h"

namespace majc {
namespace {

using masm::assemble_or_throw;
using soc::Majc5200;

TEST(Chip, BothCpusRunAndHaltViaGetcpuDispatch) {
  const char* src = R"(
    .data
  out0: .space 4
  out1: .space 4
    .code
    getcpu g20
    bnz g20, cpu1
    # ---- CPU0 ----
    setlo g3, 111
    sethi g4, %hi(out0)
    orlo g4, %lo(out0)
    stwi g3, g4, 0
    halt
  cpu1:
    setlo g3, 222
    sethi g4, %hi(out1)
    orlo g4, %lo(out1)
    stwi g3, g4, 0
    halt
  )";
  Majc5200 chip(assemble_or_throw(src));
  const auto res = chip.run();
  EXPECT_TRUE(res.all_halted);
  const auto& img = chip.program().image();
  EXPECT_EQ(chip.memory().read_u32(img.symbol("out0")), 111u);
  EXPECT_EQ(chip.memory().read_u32(img.symbol("out1")), 222u);
  EXPECT_GT(res.packets[0], 0u);
  EXPECT_GT(res.packets[1], 0u);
}

TEST(Chip, ProducerConsumerThroughSharedDcache) {
  // CPU0 publishes a value then sets a flag (with a membar between); CPU1
  // spins on the flag and then reads the value. The shared D$ provides the
  // "very low overhead communication" path the paper describes.
  const char* src = R"(
    .data
  value: .space 4
  flag:  .space 4
  seen:  .space 4
    .code
    sethi g10, %hi(value)
    orlo g10, %lo(value)
    sethi g11, %hi(flag)
    orlo g11, %lo(flag)
    getcpu g20
    bnz g20, consumer
    # ---- producer (CPU0) ----
    setlo g3, 4242
    stwi g3, g10, 0
    membar
    setlo g4, 1
    stwi g4, g11, 0
    halt
  consumer:
  spin:
    ldwi g5, g11, 0
    bz g5, spin
    ldwi g6, g10, 0
    sethi g12, %hi(seen)
    orlo g12, %lo(seen)
    stwi g6, g12, 0
    halt
  )";
  Majc5200 chip(assemble_or_throw(src));
  const auto res = chip.run(/*max_packets_per_cpu=*/200000);
  EXPECT_TRUE(res.all_halted);
  EXPECT_EQ(chip.memory().read_u32(chip.program().image().symbol("seen")),
            4242u);
}

TEST(Chip, SwapSpinlockSerializesBothCpus) {
  // Each CPU does 50 lock/increment/unlock rounds on a shared counter.
  const char* src = R"(
    .data
  lock:    .space 4
  counter: .space 4
    .code
    sethi g10, %hi(lock)
    orlo g10, %lo(lock)
    sethi g13, %hi(counter)
    orlo g13, %lo(counter)
    setlo g14, 50          # rounds
  round:
  acquire:
    setlo g11, 1
    swap g11, g10
    bnz g11, acquire
    ldwi g12, g13, 0
    addi g12, g12, 1
    stwi g12, g13, 0
    membar
    stwi g0, g10, 0        # release
    addi g14, g14, -1
    bnz g14, round
    halt
  )";
  Majc5200 chip(assemble_or_throw(src));
  const auto res = chip.run(/*max_packets_per_cpu=*/2000000);
  EXPECT_TRUE(res.all_halted);
  EXPECT_EQ(chip.memory().read_u32(chip.program().image().symbol("counter")),
            100u);
}

TEST(Chip, CasLoopAccumulatesWithoutLostUpdates) {
  const char* src = R"(
    .data
  counter: .space 4
    .code
    sethi g10, %hi(counter)
    orlo g10, %lo(counter)
    setlo g14, 40
  round:
  retry:
    ldwi g11, g10, 0       # expected
    add g12, g11, g0
    addi g12, g12, 1       # desired
    add g13, g12, g0
    cas g13, g10, g11      # g13 = old; succeeded iff old == expected
    sub g15, g13, g11
    bnz g15, retry
    addi g14, g14, -1
    bnz g14, round
    halt
  )";
  Majc5200 chip(assemble_or_throw(src));
  const auto res = chip.run(/*max_packets_per_cpu=*/2000000);
  EXPECT_TRUE(res.all_halted);
  EXPECT_EQ(chip.memory().read_u32(chip.program().image().symbol("counter")),
            80u);
}

TEST(Chip, SeparateEntriesPerCpu) {
  const char* src = R"(
    .data
  out: .space 8
    .code
  main0:
    sethi g4, %hi(out)
    orlo g4, %lo(out)
    setlo g3, 7
    stwi g3, g4, 0
    halt
  main1:
    sethi g4, %hi(out)
    orlo g4, %lo(out)
    setlo g3, 9
    stwi g3, g4, 4
    halt
  )";
  Majc5200 chip(assemble_or_throw(src));
  chip.set_entry(0, "main0");
  chip.set_entry(1, "main1");
  chip.run();
  const Addr out = chip.program().image().symbol("out");
  EXPECT_EQ(chip.memory().read_u32(out), 7u);
  EXPECT_EQ(chip.memory().read_u32(out + 4), 9u);
}

TEST(Chip, DteCopiesDataAndTakesTime) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  auto& mem = chip.memory();
  const Addr src = 0x20000, dst = 0x30000;
  for (u32 i = 0; i < 1024; i += 4) mem.write_u32(src + i, i * 3 + 1);
  const Cycle done = chip.dte().submit({src, dst, 1024}, /*now=*/10);
  EXPECT_GT(done, 10u);
  for (u32 i = 0; i < 1024; i += 4) {
    ASSERT_EQ(mem.read_u32(dst + i), i * 3 + 1);
  }
  EXPECT_EQ(chip.dte().bytes_moved(), 1024u);
}

TEST(Chip, DteInvalidatesStaleCachedLines) {
  // Warm a line into the D$ via a CPU-less access path: touch through the
  // LSU, then DMA over it; the cache copy must be invalidated.
  Majc5200 chip(assemble_or_throw("halt\n"));
  auto& dcache = chip.memsys().dcache();
  const Addr dst = 0x40000;
  dcache.access(dst, /*is_store=*/false);  // simulate a cached copy
  EXPECT_TRUE(dcache.probe(dst));
  chip.memory().write_u32(0x50000, 99);
  chip.dte().submit({0x50000, dst, 32}, 0);
  EXPECT_FALSE(dcache.probe(dst));
  EXPECT_EQ(chip.memory().read_u32(dst), 99u);
}

TEST(Chip, NupaFifoPushPop) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  auto& nupa = chip.nupa();
  std::vector<u8> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  nupa.push_fifo(data, 0);
  EXPECT_EQ(nupa.fifo().occupancy(), 256u);
  std::vector<u8> out(256);
  EXPECT_EQ(nupa.fifo().pop(out), 256u);
  EXPECT_EQ(out, data);
  EXPECT_EQ(nupa.fifo().occupancy(), 0u);
}

TEST(Chip, NupaFifoOverflowIsAFault) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  std::vector<u8> data(4096);
  chip.nupa().push_fifo(data, 0);
  std::vector<u8> more(1);
  EXPECT_THROW(chip.nupa().push_fifo(more, 0), Error);
}

TEST(Chip, PciBandwidthIsBoundedAt264MBps) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  const u32 bytes = 1 << 20;
  const Cycle done = chip.pci().stream(bytes, /*inbound=*/true, 0);
  // 264 MB/s at 500 MHz = 0.528 B/cycle; 1 MiB needs >= ~1.98M cycles.
  const double gbps = static_cast<double>(bytes) / static_cast<double>(done) *
                      kClockHz / 1e9;
  EXPECT_LT(gbps, 0.27);
  EXPECT_GT(gbps, 0.20);
}

TEST(Chip, UpaBandwidthApproaches2GBps) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  const u32 bytes = 1 << 20;
  const Cycle done = chip.supa().stream(bytes, /*inbound=*/false, 0);
  const double gbps = static_cast<double>(bytes) / static_cast<double>(done) *
                      kClockHz / 1e9;
  // Bounded by the DRDRAM channel (1.6 GB/s) on the memory side.
  EXPECT_GT(gbps, 1.2);
  EXPECT_LE(gbps, 2.05);
}

TEST(Chip, DmaInLandsDataInMemory) {
  Majc5200 chip(assemble_or_throw("halt\n"));
  std::vector<u8> frame(512);
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] = static_cast<u8>(i ^ 0x5A);
  const Cycle done = chip.nupa().dma_in(0x60000, frame, 100);
  EXPECT_GT(done, 100u);
  for (u32 i = 0; i < 512; ++i) {
    ASSERT_EQ(chip.memory().read_u8(0x60000 + i), static_cast<u8>(i ^ 0x5A));
  }
}

} // namespace
} // namespace majc
