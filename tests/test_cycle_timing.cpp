// Directed microbenchmarks of the cycle-accurate CPU model: every latency
// and bypass rule the paper documents is asserted here (Fig. 2 / §3.2 / §4).
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"

namespace majc {
namespace {

TimingConfig ideal_config() {
  TimingConfig cfg;
  cfg.perfect_icache = true;  // isolate core timing from instruction supply
  return cfg;
}

Cycle run_cycles(const char* src, const TimingConfig& cfg = ideal_config()) {
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  const auto res = sim.run();
  EXPECT_TRUE(res.halted);
  return res.cycles;
}

/// Cycle cost of `body` relative to the same program with `baseline` body.
i64 extra_cycles(const std::string& body, const std::string& baseline) {
  const std::string pre = "setlo g3, 3\nsetlo g4, 5\nsetlo g5, 7\n";
  const Cycle a = run_cycles((pre + body + "halt\n").c_str());
  const Cycle b = run_cycles((pre + baseline + "halt\n").c_str());
  return static_cast<i64>(a) - static_cast<i64>(b);
}

TEST(CycleTiming, OnePacketPerCycleWhenIndependent) {
  // 3 setlo + 10 independent packets + halt, all single-cycle: 14 cycles.
  std::string body;
  for (int i = 0; i < 10; ++i) body += "setlo g" + std::to_string(10 + i) + ", 1\n";
  const Cycle c = run_cycles(("setlo g3, 3\nsetlo g4, 5\nsetlo g5, 7\n" + body +
                              "halt\n").c_str());
  EXPECT_EQ(c, 14u);
}

TEST(CycleTiming, AluDependencyWithinFuHasNoBubble) {
  // add (FU0) -> dependent add (FU0): 1-cycle latency, full internal bypass.
  EXPECT_EQ(extra_cycles("add g6, g3, g4\nadd g7, g6, g5\n",
                         "add g6, g3, g4\nadd g7, g3, g5\n"),
            0);
}

TEST(CycleTiming, MultiplyLatencyIsTwoCycles) {
  // mul on FU1 -> dependent add on FU1: one bubble.
  EXPECT_EQ(extra_cycles("nop | mul l0, g3, g4\nnop | add g7, l0, g5\n",
                         "nop | mul l0, g3, g4\nnop | add g7, g3, g5\n"),
            1);
}

TEST(CycleTiming, Fp32LatencyIsFourCycles) {
  EXPECT_EQ(extra_cycles("nop | fadd l0, g3, g4\nnop | fadd g7, l0, g5\n",
                         "nop | fadd l0, g3, g4\nnop | fadd g7, g3, g5\n"),
            3);
}

TEST(CycleTiming, Fp32IsFullyPipelined) {
  // Four back-to-back independent fadds on FU1 issue in consecutive cycles.
  EXPECT_EQ(extra_cycles("nop | fadd l0, g3, g4\nnop | fadd l1, g3, g4\n"
                         "nop | fadd l2, g3, g4\nnop | fadd l3, g3, g4\n",
                         "nop\nnop\nnop\nnop\n"),
            0);
}

TEST(CycleTiming, DivideIsNonPipelinedSixCycles) {
  // Two divides on FU0: the second waits for the unit (issue interval 6).
  EXPECT_EQ(extra_cycles("div g6, g3, g4\ndiv g7, g4, g3\n",
                         "add g6, g3, g4\nadd g7, g4, g3\n"),
            5);
}

TEST(CycleTiming, Fp64IsPartiallyPipelined) {
  // dadd issue interval is 2: the second independent dadd waits one cycle.
  // A leading nop packet lets the g4:g5 pair operands settle so the only
  // difference between the programs is the FP64 pipe recovery.
  EXPECT_EQ(extra_cycles("nop\nnop | dadd l0, g4, g4\nnop | dadd l2, g4, g4\n",
                         "nop\nnop\nnop\n"),
            1);
}

TEST(CycleTiming, LoadToUseIsTwoCycles) {
  TimingConfig cfg = ideal_config();
  cfg.perfect_dcache = true;  // guaranteed hit
  const std::string pre = "setlo g3, 4096\n";
  const Cycle dep = run_cycles(
      (pre + "ldwi g6, g3, 0\nadd g7, g6, g6\nhalt\n").c_str(), cfg);
  const Cycle indep = run_cycles(
      (pre + "ldwi g6, g3, 0\nadd g7, g3, g3\nhalt\n").c_str(), cfg);
  EXPECT_EQ(static_cast<i64>(dep) - static_cast<i64>(indep), 1);
}

TEST(CycleTiming, Fu0ResultVisibleToFu1NextCycle) {
  // FU0 add result consumed by FU1 in the next packet: +1 forwarding delay.
  EXPECT_EQ(extra_cycles("add g6, g3, g4\nnop | add g7, g6, g5\n",
                         "add g6, g3, g4\nnop | add g7, g3, g5\n"),
            1);
}

TEST(CycleTiming, Fu1ResultForwardsToFu0WithoutDelay) {
  EXPECT_EQ(extra_cycles("nop | add g6, g3, g4\nadd g7, g6, g5\n",
                         "nop | add g6, g3, g4\nadd g7, g3, g5\n"),
            0);
}

TEST(CycleTiming, Fu1ToFu2GoesThroughWriteback) {
  // Cross-FU among FU1-3 waits for Trap/WB: +2 cycles.
  EXPECT_EQ(extra_cycles("nop | add g6, g3, g4\nnop | nop | add g7, g6, g5\n",
                         "nop | add g6, g3, g4\nnop | nop | add g7, g3, g5\n"),
            2);
}

TEST(CycleTiming, BypassAblationSlowsCrossFuForwarding) {
  TimingConfig no_bypass = ideal_config();
  no_bypass.full_bypass = false;
  const char* src = R"(
    setlo g3, 3
    add g6, g3, g3
    nop | add g7, g6, g6
    halt
  )";
  const Cycle with = run_cycles(src);
  const Cycle without = run_cycles(src, no_bypass);
  EXPECT_GT(without, with);
}

TEST(CycleTiming, MispredictCostsFourCycles) {
  // A single not-taken branch: gshare counters initialize weakly taken, so
  // the first encounter mispredicts and pays the refill penalty.
  const i64 d = extra_cycles("bz g3, skip\nskip: nop\n", "nop\nnop\n");
  EXPECT_EQ(d, 4);
}

TEST(CycleTiming, GshareLearnsALoop) {
  // 100-iteration loop: after warmup the backward branch predicts correctly.
  const char* src = R"(
    setlo g3, 100
    setlo g4, 0
  loop:
    add g4, g4, g3
    addi g3, g3, -1
    bnz g3, loop
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), ideal_config());
  sim.run();
  const auto& st = sim.cpu().stats();
  EXPECT_EQ(st.cond_branches, 100u);
  EXPECT_LE(st.mispredicts, 3u);
  EXPECT_EQ(sim.cpu().state().read(4), 5050u);
}

TEST(CycleTiming, StaticPredictionAblationMispredictsEveryTakenBranch) {
  TimingConfig cfg = ideal_config();
  cfg.bpred_enabled = false;
  const char* src = R"(
    setlo g3, 50
  loop:
    addi g3, g3, -1
    bnz g3, loop
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  sim.run();
  EXPECT_EQ(sim.cpu().stats().mispredicts, 49u);  // taken 49x, not-taken 1x
}

TEST(CycleTiming, ColdIcacheAddsFetchLatency) {
  TimingConfig cold;  // real I$, cold
  const char* src = "setlo g3, 1\nhalt\n";
  const Cycle c = run_cycles(src, cold);
  // Both packets sit in one 32-byte line: exactly one miss.
  EXPECT_GT(c, 3u);
  cpu::CycleSim sim(masm::assemble_or_throw(src), cold);
  sim.run();
  EXPECT_EQ(sim.memsys().icache(0).misses(), 1u);
}

TEST(CycleTiming, DcacheMissThenHitOnSameLine) {
  TimingConfig cfg = ideal_config();
  const char* src = R"(
    setlo g3, 8192
    ldwi g4, g3, 0      # miss
    ldwi g5, g3, 4      # same line: hit
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  sim.run();
  EXPECT_EQ(sim.memsys().dcache().misses(), 1u);
  EXPECT_EQ(sim.memsys().dcache().hits(), 1u);
}

TEST(CycleTiming, PrefetchHidesMissLatency) {
  TimingConfig cfg = ideal_config();
  const char* body_pref = R"(
    setlo g3, 8192
    prefi g0, g3, 0
    setlo g6, 0
    setlo g7, 0
    setlo g8, 0
    setlo g9, 0
    setlo g10, 0
    setlo g11, 0
    setlo g12, 0
    setlo g13, 0
    setlo g14, 0
    setlo g15, 0
    setlo g16, 0
    setlo g17, 0
    setlo g18, 0
    setlo g19, 0
    setlo g20, 0
    setlo g21, 0
    setlo g22, 0
    setlo g23, 0
    setlo g24, 0
    setlo g25, 0
    setlo g26, 0
    setlo g27, 0
    setlo g28, 0
    setlo g29, 0
    setlo g30, 0
    setlo g31, 0
    setlo g32, 0
    setlo g33, 0
    ldwi g4, g3, 0
    add g5, g4, g4
    halt
  )";
  // Same program with prefetch disabled.
  TimingConfig no_pref = cfg;
  no_pref.prefetch_enabled = false;
  const Cycle with = run_cycles(body_pref, cfg);
  const Cycle without = run_cycles(body_pref, no_pref);
  EXPECT_LT(with, without);
}

TEST(CycleTiming, StoreToLoadForwarding) {
  TimingConfig cfg = ideal_config();
  const char* src = R"(
    setlo g3, 8192
    setlo g4, 77
    stwi g4, g3, 0      # store miss sits in the store buffer
    ldwi g5, g3, 0      # forwarded from the buffer, no wait for the fill
    add g6, g5, g5
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  const auto res = sim.run();
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(sim.cpu().state().read(6), 154u);
  EXPECT_EQ(sim.memsys().lsu(0).counters().get("store_forwards"), 1u);
  // Forwarding means the dependent chain finishes far sooner than a DRAM
  // round trip (24-cycle latency + transfer).
  EXPECT_LT(res.cycles, 24u);
}

TEST(CycleTiming, PerfectDcacheMatchesPaperNoMemoryEffectsMode) {
  // Strided walk over 64 KB (4x the D$) with real vs perfect D$.
  const char* src = R"(
    setlo g3, 8192
    setlo g4, 2048      # iterations
    setlo g6, 0
  loop:
    ldwi g5, g3, 0
    add g6, g6, g5
    addi g3, g3, 32
    addi g4, g4, -1
    bnz g4, loop
    halt
  )";
  TimingConfig real = ideal_config();
  TimingConfig perfect = ideal_config();
  perfect.perfect_dcache = true;
  const Cycle creal = run_cycles(src, real);
  const Cycle cperf = run_cycles(src, perfect);
  EXPECT_GT(creal, cperf + 2048u);  // every access misses in the real config
}

// ---- Directed LSU microtests: exact-cycle pins of the store/load special
// paths (store-to-load forwarding, MSHR miss merging, write-combining
// stores, membar drain). These lock down the timing contract the LSU's
// incremental-watermark rework must preserve. ----

TEST(CycleTiming, ForwardedLoadDeliversOneCycleAfterIssue) {
  // A load forwarded from a live store-buffer entry has data_ready =
  // issue + 1, beating the 2-cycle D$ load-to-use: a dependent consumer in
  // the very next packet sees no bubble at all, so the dependent and
  // independent programs take exactly the same number of cycles (contrast
  // LoadToUseIsTwoCycles, where the dependence costs one).
  TimingConfig cfg = ideal_config();
  const std::string pre = "setlo g3, 8192\nsetlo g4, 77\nstwi g4, g3, 0\n";
  const Cycle dep = run_cycles(
      (pre + "ldwi g5, g3, 0\nadd g6, g5, g5\nhalt\n").c_str(), cfg);
  const Cycle indep = run_cycles(
      (pre + "ldwi g5, g3, 0\nadd g6, g4, g4\nhalt\n").c_str(), cfg);
  EXPECT_EQ(dep, indep);

  cpu::CycleSim sim(
      masm::assemble_or_throw((pre + "ldwi g5, g3, 0\nadd g6, g5, g5\nhalt\n").c_str()),
      cfg);
  sim.run();
  const auto c = sim.memsys().lsu(0).counters();
  EXPECT_EQ(c.get("store_forwards"), 1u);
  EXPECT_EQ(c.get("load_misses"), 0u);  // the load never touched the D$
}

TEST(CycleTiming, MissMergeAttachesSecondLoadToInFlightFill) {
  // Back-to-back loads of one uncached line: the second load finds the
  // first's fill in the MSHR and attaches to it — one miss, one merge, and
  // both loads deliver on the same fill-completion cycle, so a consumer of
  // either value finishes at exactly the same time.
  TimingConfig cfg = ideal_config();
  const std::string pre = "setlo g3, 8192\nldwi g4, g3, 0\nldwi g5, g3, 4\n";
  const Cycle dep_second =
      run_cycles((pre + "add g6, g5, g5\nhalt\n").c_str(), cfg);
  const Cycle dep_first =
      run_cycles((pre + "add g6, g4, g4\nhalt\n").c_str(), cfg);
  EXPECT_EQ(dep_second, dep_first);

  cpu::CycleSim sim(
      masm::assemble_or_throw((pre + "add g6, g5, g5\nhalt\n").c_str()), cfg);
  sim.run();
  const auto c = sim.memsys().lsu(0).counters();
  EXPECT_EQ(c.get("load_misses"), 1u);
  EXPECT_EQ(c.get("mshr_merges"), 1u);
}

TEST(CycleTiming, WriteCombiningStoresRetireInOneCycle) {
  // Non-allocating (.na) stores to a missing line skip read-for-ownership:
  // the first store to a line opens a combining-buffer entry (one
  // background line write), and every store retires the next cycle — the
  // program runs exactly as fast as the same packets doing register ALU
  // work. A second line opens a second entry.
  TimingConfig cfg = ideal_config();
  const std::string pre = "setlo g3, 8192\nsetlo g5, 8224\nsetlo g4, 7\n";
  const std::string wc = pre +
                         "stw.na g4, g3, g0\nstw.na g4, g3, g0\n"
                         "stw.na g4, g3, g0\nstw.na g4, g5, g0\nhalt\n";
  const std::string alu = pre +
                          "add g6, g3, g4\nadd g6, g3, g4\n"
                          "add g6, g3, g4\nadd g6, g5, g4\nhalt\n";
  EXPECT_EQ(run_cycles(wc.c_str(), cfg), run_cycles(alu.c_str(), cfg));

  cpu::CycleSim sim(masm::assemble_or_throw(wc.c_str()), cfg);
  sim.run();
  const auto c = sim.memsys().lsu(0).counters();
  EXPECT_EQ(c.get("wc_stores"), 4u);
  EXPECT_EQ(c.get("wc_lines"), 2u);
  EXPECT_EQ(c.get("store_misses"), 0u);  // no read-for-ownership fills
}

TEST(CycleTiming, MembarDrainsExactlyToOutstandingCompletion) {
  TimingConfig cfg = ideal_config();
  const std::string pre = "setlo g3, 8192\nsetlo g4, 7\n";
  const auto delta = [&](const char* body, const char* baseline) {
    const Cycle a = run_cycles((pre + body + "halt\n").c_str(), cfg);
    const Cycle b = run_cycles((pre + baseline + "halt\n").c_str(), cfg);
    return static_cast<i64>(a) - static_cast<i64>(b);
  };
  // Nothing outstanding: the membar issues immediately, costing only its
  // own packet slot (same as a nop).
  EXPECT_EQ(delta("membar\n", "nop\n"), 0);
  // A store miss leaves its fill + retire in flight; the membar stalls
  // until exactly that completion: crossbar hops out and back, the DRDRAM
  // row-activate, the 32-byte line transfers, plus the store's retire
  // cycle. Pinned against the default timing config.
  EXPECT_EQ(delta("stwi g4, g3, 0\nmembar\n", "stwi g4, g3, 0\nnop\n"), 42);
  // A write-combining store only waits for the background line write (no
  // return transfer into the D$), so its drain is cheaper.
  EXPECT_EQ(delta("stw.na g4, g3, g0\nmembar\n", "stw.na g4, g3, g0\nnop\n"),
            39);
  // Once drained, a second membar is free again.
  EXPECT_EQ(delta("stwi g4, g3, 0\nmembar\nmembar\n",
                  "stwi g4, g3, 0\nmembar\nnop\n"),
            0);

  cpu::CycleSim sim(
      masm::assemble_or_throw((pre + "stwi g4, g3, 0\nmembar\nhalt\n").c_str()),
      cfg);
  sim.run();
  EXPECT_EQ(sim.memsys().lsu(0).counters().get("membars"), 1u);
}

TEST(CycleTiming, CycleAndFunctionalSimsAgreeOnResults) {
  const char* src = R"(
    setlo g3, 20
    setlo g4, 1
  loop:
    nop | mul g4, g4, g3 | nop
    addi g3, g3, -4
    bnz g3, loop
    halt
  )";
  sim::FunctionalSim fsim(masm::assemble_or_throw(src));
  fsim.run();
  cpu::CycleSim csim(masm::assemble_or_throw(src));
  csim.run();
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    EXPECT_EQ(fsim.state().regs[r], csim.cpu().state().regs[r]) << "reg " << r;
  }
}

} // namespace
} // namespace majc
