// Resilience-layer tests (DESIGN.md §12): the invariants that make the
// farm's retry / slicing / preemption machinery architecturally invisible.
//
//  * slice-equivalence — sliced execution (the unit deadlines, drains and
//    forced preemptions operate on) is byte-identical to unsliced, in both
//    sim modes, under fault injection;
//  * drain/resume — a campaign drained mid-flight via RunControl and
//    resumed from its checkpoints aggregates byte-identically to an
//    uninterrupted run;
//  * retry/quarantine — host exceptions are retried on the deterministic
//    backoff schedule, identical repeated failures quarantine, and
//    deterministic guest failures quarantine without burning attempts;
//  * hung-job conversion — a guest that spins forever (defeating the cycle
//    watchdog by storing) is converted into a structured deadline-exceeded
//    result by the JobPolicy host deadline;
//  * repeated Engine::run calls, with retries and chaos enabled, stay
//    byte-identical across calls and worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/fir.h"
#include "src/kernels/kernel.h"
#include "src/kernels/max_search.h"

namespace majc {
namespace {

constexpr u64 kSeed = 0x5eed;

/// The test_farm small campaign, parameterized by JobPolicy: three fast
/// kernels x two fault seeds x both sim modes.
farm::Engine make_campaign(const farm::JobPolicy& policy) {
  farm::Engine eng;
  eng.add_kernel(kernels::make_fir_spec());
  eng.add_kernel(kernels::make_bitrev_spec());
  eng.add_kernel(kernels::make_max_search_spec());
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    for (u64 it = 0; it < 2; ++it) {
      farm::Job job;
      job.kernel = ki;
      job.iteration = it;
      job.policy = policy;
      job.cfg.faults = farm::derive_soak_faults(kSeed, ki, it);
      eng.submit(job);
      job.mode = farm::SimMode::kFunctional;
      eng.submit(job);
    }
  }
  return eng;
}

/// A guest that spins forever: the store keeps the watchdog seeing forward
/// progress, so only a host deadline can end the run.
kernels::KernelSpec make_spin_spec() {
  kernels::KernelSpec spec;
  spec.name = "spin_forever";
  spec.source = R"(
      .data
    buf: .space 4
      .code
      sethi g1, %hi(buf)
      orlo g1, %lo(buf)
    spin:
      stwi g0, g1, 0
      bz g0, spin
      halt
  )";
  spec.max_packets = 1ull << 62;
  return spec;
}

// ---------------------------------------------------------- slice equivalence

TEST(Resilience, SlicedRunByteIdenticalToUnslicedBothModesUnderFaults) {
  const farm::Engine plain = make_campaign(farm::JobPolicy{});
  farm::JobPolicy sliced;
  sliced.slice_packets = 257;  // odd and small: boundaries land everywhere
  const farm::Engine chunked = make_campaign(sliced);

  const std::string a = farm::campaign_json(plain, plain.run(1), kSeed);
  const std::string b = farm::campaign_json(chunked, chunked.run(1), kSeed);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // Slicing really happened (not a vacuous comparison) and stayed out of
  // the JSON. The shortest kernels finish inside one slice; the campaign
  // overall must not have.
  const std::vector<farm::JobResult> res = chunked.run(4);
  EXPECT_EQ(farm::campaign_json(chunked, res, kSeed), a);
  u64 total_slices = 0;
  for (const farm::JobResult& r : res) {
    total_slices += r.slices;
    EXPECT_TRUE(r.run.valid) << r.run.message;
  }
  EXPECT_GT(total_slices, static_cast<u64>(res.size()));
}

// --------------------------------------------------------------- drain/resume

TEST(Resilience, DrainParksInFlightJobAndResumeMatchesUninterrupted) {
  // Job 0's setup (one-shot) requests a drain, so the worker checkpoints it
  // at the first slice boundary and stops. A rearmed second run resumes
  // from the checkpoint — skipping setup — and the final campaign is
  // byte-identical to an uninterrupted engine with the same policy.
  farm::JobPolicy sliced;
  sliced.slice_packets = 128;

  // Baseline engine with the same shape (4 registered kernels, kernel 3 a
  // plain fir copy) so the campaign headers match byte-for-byte.
  farm::Engine baseline;
  baseline.add_kernel(kernels::make_fir_spec());
  baseline.add_kernel(kernels::make_bitrev_spec());
  baseline.add_kernel(kernels::make_max_search_spec());
  baseline.add_kernel(kernels::make_fir_spec());

  farm::RunControl control;
  auto fired = std::make_shared<bool>(false);
  farm::Engine eng;
  eng.add_kernel(kernels::make_fir_spec());
  eng.add_kernel(kernels::make_bitrev_spec());
  eng.add_kernel(kernels::make_max_search_spec());
  {
    // Wrap kernel 0's setup with the drain trigger. The wrapper is
    // architecturally inert: it writes the same input data.
    kernels::KernelSpec spec = kernels::make_fir_spec();
    auto inner = spec.setup;
    spec.setup = [&control, fired, inner](sim::MemoryBus& m,
                                          const masm::Image& img) {
      if (inner) inner(m, img);
      if (!*fired) {
        *fired = true;
        control.request_drain();
      }
    };
    eng.add_kernel(std::move(spec));  // kernel index 3: the tripwire copy
  }
  for (u32 ki = 0; ki < 3; ++ki) {
    for (u64 it = 0; it < 2; ++it) {
      farm::Job job;
      // fir jobs run the tripwire copy; the one-shot flag means only the
      // first of them (job 0, the first claimed at workers=1) drains.
      job.kernel = ki == 0 ? 3 : ki;
      job.iteration = it;
      job.policy = sliced;
      job.cfg.faults = farm::derive_soak_faults(kSeed, ki, it);
      eng.submit(job);
      baseline.submit(job);
      job.mode = farm::SimMode::kFunctional;
      eng.submit(job);
      baseline.submit(job);
    }
  }

  farm::Engine::RunOptions opts;
  opts.workers = 1;
  opts.control = &control;
  const std::vector<farm::JobResult> first = eng.run(opts);
  EXPECT_EQ(control.num_suspended(), 1u);
  EXPECT_FALSE(first[0].done);  // parked mid-flight, result withheld
  u64 undone = 0;
  for (const farm::JobResult& r : first) undone += r.done ? 0 : 1;
  EXPECT_EQ(undone, eng.jobs().size());  // drain hit before anything finished

  control.rearm();
  const std::vector<farm::JobResult> second = eng.run(opts);
  EXPECT_EQ(control.num_suspended(), 0u);
  EXPECT_EQ(control.num_completed(), eng.jobs().size());
  for (const farm::JobResult& r : second) EXPECT_TRUE(r.done);

  EXPECT_EQ(farm::campaign_json(eng, second, kSeed),
            farm::campaign_json(baseline, baseline.run(1), kSeed));
}

TEST(Resilience, DrainAfterNCompletesIncrementallyAndMatchesUninterrupted) {
  farm::JobPolicy sliced;
  sliced.slice_packets = 512;
  const farm::Engine eng = make_campaign(sliced);
  const std::string uninterrupted =
      farm::campaign_json(eng, eng.run(1), kSeed);

  // Complete the campaign two jobs at a time, draining between calls; the
  // completed-result cache must hand back exactly the same aggregation.
  farm::RunControl control;
  std::vector<farm::JobResult> final_results;
  for (int round = 0; round < 64; ++round) {
    control.rearm();
    control.request_drain_after(control.num_completed() + 2);
    farm::Engine::RunOptions opts;
    opts.workers = 1;
    opts.control = &control;
    final_results = eng.run(opts);
    if (control.num_completed() == eng.jobs().size()) break;
  }
  ASSERT_EQ(control.num_completed(), eng.jobs().size());
  EXPECT_EQ(farm::campaign_json(eng, final_results, kSeed), uninterrupted);
}

TEST(Resilience, CancelAbandonsWithoutSideEffects) {
  const farm::Engine eng = make_campaign(farm::JobPolicy{});
  farm::RunControl control;
  control.request_cancel();
  farm::Engine::RunOptions opts;
  opts.workers = 2;
  opts.control = &control;
  const std::vector<farm::JobResult> res = eng.run(opts);
  for (const farm::JobResult& r : res) EXPECT_FALSE(r.done);
  EXPECT_EQ(control.num_completed(), 0u);
  EXPECT_EQ(control.num_suspended(), 0u);
  // Rearmed, the same engine+control completes normally.
  control.rearm();
  const std::vector<farm::JobResult> ok = eng.run(opts);
  EXPECT_EQ(farm::campaign_json(eng, ok, kSeed),
            farm::campaign_json(eng, eng.run(1), kSeed));
}

// ----------------------------------------------------------- hung-job rescue

TEST(Resilience, HungJobConvertsToStructuredDeadlineExceeded) {
  farm::Engine eng;
  eng.add_kernel(make_spin_spec());
  for (const farm::SimMode mode :
       {farm::SimMode::kCycle, farm::SimMode::kFunctional}) {
    farm::Job job;
    job.mode = mode;
    job.policy.host_deadline_secs = 0.2;
    job.policy.slice_packets = 4096;
    job.policy.max_attempts = 3;
    eng.submit(job);
  }
  const std::vector<farm::JobResult> res = eng.run(2);
  for (const farm::JobResult& r : res) {
    EXPECT_TRUE(r.done);
    EXPECT_FALSE(r.run.valid);
    EXPECT_EQ(r.run.reason, TerminationReason::kHostDeadline);
    EXPECT_EQ(r.failure, farm::FailureClass::kDeadlineExceeded);
    EXPECT_EQ(r.attempts, 1u);      // deadline kills must not burn retries
    EXPECT_FALSE(r.quarantined);    // says nothing about the guest
    EXPECT_EQ(r.run.packets, 0u);   // kill position is wall-clock dependent:
    EXPECT_EQ(r.run.arch_digest, 0u);  // normalized out of the result
    EXPECT_EQ(r.run.message, "host deadline exceeded (0.200s)");
  }
}

TEST(Resilience, GuestBudgetExhaustionQuarantines) {
  // A packet-cap overrun is deterministic (unlike a host deadline): rerun
  // replays it, so the job quarantines with a single attempt.
  kernels::KernelSpec spec = make_spin_spec();
  spec.max_packets = 10'000;
  farm::Engine eng;
  eng.add_kernel(std::move(spec));
  farm::Job job;
  job.policy.max_attempts = 3;
  eng.submit(job);
  const std::vector<farm::JobResult> res = eng.run(1);
  EXPECT_EQ(res[0].failure, farm::FailureClass::kDeadlineExceeded);
  EXPECT_EQ(res[0].run.reason, TerminationReason::kPacketCap);
  EXPECT_TRUE(res[0].quarantined);
  EXPECT_EQ(res[0].attempts, 1u);
}

// --------------------------------------------------------- retry / quarantine

TEST(Resilience, TransientHostExceptionIsRetriedToSuccess) {
  // Setup throws on the first attempt only: the retry completes clean and
  // the final classification is kNone — indistinguishable in the JSON from
  // a job that never failed.
  kernels::KernelSpec spec = kernels::make_fir_spec();
  auto inner = spec.setup;
  auto boom = std::make_shared<bool>(true);
  spec.setup = [inner, boom](sim::MemoryBus& m, const masm::Image& img) {
    if (*boom) {
      *boom = false;
      throw std::runtime_error("flaky host allocation");
    }
    if (inner) inner(m, img);
  };
  farm::Engine eng;
  eng.add_kernel(std::move(spec));
  farm::Job job;
  job.policy.max_attempts = 3;
  eng.submit(job);

  const std::vector<farm::JobResult> res = eng.run(1);
  EXPECT_TRUE(res[0].run.valid) << res[0].run.message;
  EXPECT_EQ(res[0].failure, farm::FailureClass::kNone);
  EXPECT_FALSE(res[0].quarantined);
  EXPECT_EQ(res[0].attempts, 2u);

  // The absorbed retry is invisible in the campaign JSON: byte-identical
  // to the undisturbed kernel's campaign.
  farm::Engine clean;
  clean.add_kernel(kernels::make_fir_spec());
  farm::Job cjob;
  cjob.policy.max_attempts = 3;
  clean.submit(cjob);
  EXPECT_EQ(farm::campaign_json(eng, res, kSeed),
            farm::campaign_json(clean, clean.run(1), kSeed));
}

TEST(Resilience, IdenticalRepeatedFailureQuarantinesEarly) {
  // Setup always throws the same exception: attempt 2 reproduces attempt
  // 1's signature exactly, so the job quarantines after two attempts even
  // though the policy allows five.
  kernels::KernelSpec spec;
  spec.name = "always_throws";
  spec.source = "start:\n  halt\n";
  spec.setup = [](sim::MemoryBus&, const masm::Image&) {
    throw std::runtime_error("same failure every time");
  };
  farm::Engine eng;
  eng.add_kernel(std::move(spec));
  farm::Job job;
  job.policy.max_attempts = 5;
  eng.submit(job);
  const std::vector<farm::JobResult> res = eng.run(1);
  EXPECT_EQ(res[0].failure, farm::FailureClass::kHostException);
  EXPECT_TRUE(res[0].quarantined);
  EXPECT_EQ(res[0].attempts, 2u);
  EXPECT_NE(res[0].run.message.find("same failure"), std::string::npos);
}

TEST(Resilience, DeterministicGuestFailureQuarantinesWithoutRetry) {
  kernels::KernelSpec spec = kernels::make_fir_spec();
  spec.validate = [](sim::MemoryBus&, const masm::Image&, std::string& msg) {
    msg = "golden mismatch";
    return false;
  };
  farm::Engine eng;
  eng.add_kernel(std::move(spec));
  farm::Job job;
  job.policy.max_attempts = 4;
  eng.submit(job);
  const std::vector<farm::JobResult> res = eng.run(1);
  EXPECT_EQ(res[0].failure, farm::FailureClass::kDeterministicFatal);
  EXPECT_TRUE(res[0].quarantined);
  EXPECT_EQ(res[0].attempts, 1u);  // guest outcomes replay identically
}

// ------------------------------------------------------------ backoff schedule

TEST(Resilience, BackoffIsDeterministicBoundedAndSeedAdvancing) {
  farm::JobPolicy p;
  p.backoff_base_us = 100;
  p.backoff_cap_us = 1'000;
  p.backoff_seed = 42;

  EXPECT_EQ(farm::backoff_us(p, 0, 1), 0u);  // first attempt never waits
  EXPECT_EQ(farm::backoff_us(farm::JobPolicy{}, 0, 3), 0u);  // base 0 = off

  for (u32 attempt = 2; attempt <= 6; ++attempt) {
    const u64 expect_full =
        std::min<u64>(p.backoff_base_us << (attempt - 2), p.backoff_cap_us);
    const u64 a = farm::backoff_us(p, 7, attempt);
    EXPECT_EQ(a, farm::backoff_us(p, 7, attempt));  // pure function
    EXPECT_GE(a, expect_full / 2);                  // jitter in [d/2, d]
    EXPECT_LE(a, expect_full);
  }
  // Different jobs / seeds draw different jitter (statistically: at least
  // one of these differs from job 7's draw).
  bool any_diff = false;
  for (u64 job = 0; job < 8; ++job) {
    any_diff |= farm::backoff_us(p, job, 4) != farm::backoff_us(p, 7, 4);
  }
  EXPECT_TRUE(any_diff);
}

// ----------------------------------- repeated runs, chaos, and worker counts

TEST(Resilience, RepeatedRunsWithRetriesAndChaosStayByteIdentical) {
  farm::JobPolicy policy;
  policy.slice_packets = 300;
  policy.max_attempts = 3;
  const farm::Engine eng = make_campaign(policy);

  const std::string baseline = farm::campaign_json(eng, eng.run(1), kSeed);

  farm::ChaosPlan chaos;
  chaos.seed = 0xc4a05;
  chaos.exception_rate = 0.5;
  chaos.deadline_kill_rate = 0.3;
  chaos.preempt_rate = 0.4;

  u64 disturbed = 0;
  for (const unsigned workers : {1u, 4u, 1u, 3u}) {
    farm::CampaignStats stats;
    farm::Engine::RunOptions opts;
    opts.workers = workers;
    opts.stats = &stats;
    opts.chaos = &chaos;
    EXPECT_EQ(farm::campaign_json(eng, eng.run(opts), kSeed), baseline)
        << "workers=" << workers;
    disturbed += stats.jobs_retried + stats.forced_preemptions;
  }
  EXPECT_GT(disturbed, 0u);  // the storm actually struck
}

} // namespace
} // namespace majc
