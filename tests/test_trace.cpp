// The observability layer: the JSON emitter, Chrome trace export (structure
// a trace viewer will accept), the cycle-attribution profiler (whose totals
// must reconcile exactly with the CPU's own StallCounters), the --stats-json
// schema, and the bench Table JSON dump. Everything here must also be
// byte-stable: identical runs produce identical artifacts.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/cpu/cycle_cpu.h"
#include "src/kernels/fir.h"
#include "src/kernels/kernel.h"
#include "src/kernels/mb_decode.h"
#include "src/masm/assembler.h"
#include "src/soc/chip.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/json.h"
#include "src/trace/profiler.h"
#include "src/trace/stats_json.h"

namespace majc {
namespace {

// ---- a minimal structural JSON validator ----
//
// Not a parser-of-record: enough of RFC 8259 to reject anything a real
// trace viewer's JSON.parse would reject (unbalanced structure, trailing
// commas, bad literals, unescaped control characters).
class JsonChecker {
public:
  static bool valid(const std::string& text, std::string* err = nullptr) {
    JsonChecker c(text);
    const bool ok = c.value() && (c.skip_ws(), c.pos_ == text.size());
    if (!ok && err != nullptr) {
      *err = "JSON error near offset " + std::to_string(c.pos_);
    }
    return ok;
  }

private:
  explicit JsonChecker(const std::string& t) : t_(t) {}

  void skip_ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\n' ||
                                t_[pos_] == '\r' || t_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool literal(const char* s) {
    const std::size_t n = std::strlen(s);
    if (t_.compare(pos_, n, s) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (t_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < t_.size()) {
      const char c = t_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return false;
        const char e = t_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= t_.size() ||
                !std::isxdigit(static_cast<unsigned char>(t_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < t_.size() && t_[pos_] == '-') ++pos_;
    while (pos_ < t_.size() &&
           (std::isdigit(static_cast<unsigned char>(t_[pos_])) ||
            t_[pos_] == '.' || t_[pos_] == 'e' || t_[pos_] == 'E' ||
            t_[pos_] == '+' || t_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= t_.size()) return false;
    const char c = t_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < t_.size() && t_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= t_.size() || !string()) return false;
      skip_ws();
      if (pos_ >= t_.size() || t_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ < t_.size() && t_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < t_.size() && t_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < t_.size() && t_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ < t_.size() && t_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < t_.size() && t_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& t_;
  std::size_t pos_ = 0;
};

// ---- helpers ----

/// Count lines in the trace body containing `needle` (the writer emits one
/// event per line, so substring counting is event counting).
u64 count_lines_with(const std::string& text, const std::string& needle) {
  u64 n = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

/// Extract the integer value of `"key":` on each line containing `filter`.
std::vector<i64> field_on_lines(const std::string& text,
                                const std::string& filter,
                                const std::string& key) {
  std::vector<i64> out;
  std::istringstream is(text);
  std::string line;
  const std::string k = "\"" + key + "\":";
  while (std::getline(is, line)) {
    if (line.find(filter) == std::string::npos) continue;
    const auto pos = line.find(k);
    if (pos == std::string::npos) continue;
    out.push_back(std::strtoll(line.c_str() + pos + k.size(), nullptr, 10));
  }
  return out;
}

/// One kernel run with the full observability stack installed: Chrome trace
/// recorder + LSU recorder + profiler all fed from the same event streams.
struct TracedRun {
  std::string trace_json;
  cpu::CycleSim::Result result;
  cpu::CpuStats stats;
  u64 lsu_load_misses = 0;
  u64 lsu_store_misses = 0;
  u64 lsu_prefetches = 0;
  trace::CycleProfiler::Totals totals;
  std::string profile_report;
  std::string stats_json;
  u64 events_written = 0;
};

TracedRun traced_kernel_run(const kernels::KernelSpec& spec) {
  const TimingConfig cfg;
  cpu::CycleSim sim(masm::assemble_or_throw(spec.source), cfg);
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());

  std::ostringstream trace_os;
  trace::ChromeTraceWriter writer(trace_os);
  trace::CpuTraceRecorder recorder(writer, sim.program(), cfg, 0);
  trace::LsuTraceRecorder lsu_recorder(writer, 0);
  lsu_recorder.attach(sim.memsys().lsu(0));
  trace::CycleProfiler profiler(sim.program());
  sim.cpu().set_trace([&](const cpu::TraceEvent& ev) {
    recorder.on_event(ev);
    profiler.on_event(ev);
  });

  TracedRun out;
  out.result = sim.run(spec.max_packets);
  out.events_written = writer.events_written();
  writer.finish();
  out.trace_json = trace_os.str();
  out.stats = sim.cpu().stats();
  out.lsu_load_misses =
      sim.memsys().lsu(0).counter(mem::LsuCounter::kLoadMisses);
  out.lsu_store_misses =
      sim.memsys().lsu(0).counter(mem::LsuCounter::kStoreMisses);
  out.lsu_prefetches =
      sim.memsys().lsu(0).counter(mem::LsuCounter::kPrefetches);
  out.totals = profiler.totals();
  out.profile_report = profiler.report(10, out.result.cycles);
  std::ostringstream stats_os;
  trace::write_stats_json(stats_os, sim, out.result);
  out.stats_json = stats_os.str();
  return out;
}

/// The mb_decode run is the acceptance workload; trace it once and share.
const TracedRun& mb_run() {
  static const TracedRun run =
      traced_kernel_run(kernels::make_mb_decode_spec());
  return run;
}

// ---- JsonWriter ----

TEST(JsonWriter, BasicDocumentEscapesAndValidates) {
  std::ostringstream os;
  trace::JsonWriter j(os);
  j.begin_object();
  j.kv("s", "a\"b\\c\n\t");
  j.kv("n", 3.14159265);
  j.kv("i", u64{18446744073709551615ull});
  j.kv("neg", i64{-7});
  j.kv("b", true);
  j.key("arr").begin_array().value(u64{1}).value(u64{2}).end_array();
  j.key("empty").begin_object().end_object();
  j.end_object();
  const std::string text = os.str();
  std::string err;
  EXPECT_TRUE(JsonChecker::valid(text, &err)) << err << "\n" << text;
  EXPECT_NE(text.find("\"a\\\"b\\\\c\\n\\t\""), std::string::npos);
  EXPECT_NE(text.find("3.14159"), std::string::npos);
  EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(text.find("-7"), std::string::npos);
}

TEST(JsonWriter, NonFiniteNumbersBecomeZero) {
  EXPECT_EQ(trace::json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(trace::json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonWriter, CompactModeIsSingleLine) {
  std::ostringstream os;
  trace::JsonWriter j(os, /*pretty=*/false);
  j.begin_object();
  j.kv("a", u64{1});
  j.key("b").begin_array().value(u64{2}).end_array();
  j.end_object();
  EXPECT_EQ(os.str().find('\n'), std::string::npos);
  EXPECT_TRUE(JsonChecker::valid(os.str()));
}

// ---- Chrome trace ----

TEST(ChromeTrace, MbDecodeTraceIsStructurallyValid) {
  const TracedRun& run = mb_run();
  ASSERT_TRUE(run.result.halted);

  std::string err;
  ASSERT_TRUE(JsonChecker::valid(run.trace_json, &err)) << err;

  // Document shape + viewer metadata.
  EXPECT_EQ(run.trace_json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(count_lines_with(run.trace_json, "\"process_name\""), 1u);
  EXPECT_EQ(count_lines_with(run.trace_json, "\"thread_name\""), 7u);

  // One issue slice per issued packet; one FU slice per instruction (each
  // instruction occupies exactly one pipe).
  EXPECT_EQ(count_lines_with(run.trace_json, "\"cat\":\"packet\""),
            run.result.packets);
  EXPECT_EQ(count_lines_with(run.trace_json, "\"cat\":\"fu\""),
            run.result.instrs);

  // Async LSU slices come in begin/end pairs, and the event counter matches
  // what actually reached the stream.
  EXPECT_EQ(count_lines_with(run.trace_json, "\"ph\":\"b\""),
            count_lines_with(run.trace_json, "\"ph\":\"e\""));
  EXPECT_EQ(count_lines_with(run.trace_json, "\"ph\":"), run.events_written);
}

TEST(ChromeTrace, IssueTimestampsAreNonDecreasing) {
  const TracedRun& run = mb_run();
  const auto ts = field_on_lines(run.trace_json, "\"cat\":\"packet\"", "ts");
  ASSERT_EQ(ts.size(), run.result.packets);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    ASSERT_GE(ts[i], ts[i - 1]) << "issue event " << i;
  }
  // The last issue happens strictly before the run's end cycle.
  EXPECT_LT(static_cast<u64>(ts.back()), run.result.cycles);
}

TEST(ChromeTrace, ByteStableAcrossIdenticalRuns) {
  const TracedRun a = traced_kernel_run(kernels::make_fir_spec());
  const TracedRun b = traced_kernel_run(kernels::make_fir_spec());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.profile_report, b.profile_report);
  // And the acceptance workload reproduces the shared run byte-for-byte.
  const TracedRun c = traced_kernel_run(kernels::make_mb_decode_spec());
  EXPECT_EQ(c.trace_json, mb_run().trace_json);
}

TEST(ChromeTrace, StallSlicesCoverTheStallCounterTotals) {
  const TracedRun& run = mb_run();
  // Sum of slice durations per stall cause == the CPU's flat counters.
  const std::pair<const char*, cpu::StallCause> causes[] = {
      {"stall_ifetch", cpu::StallCause::kIfetch},
      {"stall_operand", cpu::StallCause::kOperand},
      {"stall_fu_busy", cpu::StallCause::kFuBusy},
      {"stall_lsu", cpu::StallCause::kLsu},
      {"stall_branch_penalty", cpu::StallCause::kBranchPenalty},
  };
  for (const auto& [name, cause] : causes) {
    const auto durs = field_on_lines(
        run.trace_json, "\"name\":\"" + std::string(name) + "\"", "dur");
    u64 sum = 0;
    for (i64 d : durs) sum += static_cast<u64>(d);
    EXPECT_EQ(sum, run.stats.stalls.get(cause)) << name;
  }
  // Mispredict instants match the predictor's count.
  EXPECT_EQ(count_lines_with(run.trace_json, "\"name\":\"mispredict\""),
            run.stats.mispredicts);
}

TEST(ChromeTrace, LsuMissesBecomeAsyncFillSlices) {
  const TracedRun& run = mb_run();
  // mb_decode streams macroblocks through a cold D$, so fills must occur.
  const u64 miss_events =
      run.lsu_load_misses + run.lsu_store_misses + run.lsu_prefetches;
  ASSERT_GT(miss_events, 0u);
  const u64 begins = count_lines_with(run.trace_json, "\"ph\":\"b\"");
  EXPECT_GT(begins, 0u);
  // MSHR merges coalesce into one fill, so slices never exceed miss events.
  EXPECT_LE(begins, miss_events);
  // Fill slices carry the line address label.
  EXPECT_GT(count_lines_with(run.trace_json, "_miss @0x"), 0u);
}

// ---- profiler ----

TEST(Profiler, TotalsReconcileExactlyWithCpuCounters) {
  const TracedRun& run = mb_run();
  const auto& t = run.totals;
  EXPECT_EQ(t.packets, run.stats.packets);
  EXPECT_EQ(t.instrs, run.stats.instrs);
  EXPECT_EQ(t.mispredicts, run.stats.mispredicts);
  for (u32 i = 0; i < cpu::kNumStallCauses; ++i) {
    EXPECT_EQ(t.stall[i], run.stats.stalls.counts[i]) << "stall cause " << i;
  }
  // Per-FU slot occupancy sums to the instruction count.
  u64 slots = 0;
  for (u64 s : t.fu_slots) slots += s;
  EXPECT_EQ(slots, t.instrs);
  // Cycle-attribution identity: issue + stalls + switch overhead == run
  // length (single thread: no switch overhead).
  EXPECT_EQ(t.switches, 0u);
  EXPECT_EQ(t.attributed_cycles(0), run.result.cycles);
}

TEST(Profiler, BypassHistogramCoversEveryDeliveryPath) {
  // Every operand read is classified onto exactly one delivery path, and the
  // report names every path that delivered at least one operand.
  const TracedRun& run = mb_run();
  EXPECT_GT(run.totals.bypass_total(), 0u);
  for (u32 i = 0; i < cpu::kNumBypassPaths; ++i) {
    if (run.totals.bypass[i] == 0) continue;
    EXPECT_NE(run.profile_report.find(cpu::bypass_path_name(
                  static_cast<cpu::BypassPath>(i))),
              std::string::npos);
  }
}

TEST(Profiler, HotPacketReportNamesTheHotLoop) {
  const TracedRun& run = mb_run();
  EXPECT_NE(run.profile_report.find("== cycle profile =="), std::string::npos);
  EXPECT_NE(run.profile_report.find("hot packets"), std::string::npos);
  EXPECT_NE(run.profile_report.find("pc=0x"), std::string::npos);
  // Hot rows are disasm-annotated (packets render with the ";;" terminator).
  EXPECT_NE(run.profile_report.find(";;"), std::string::npos);
}

// ---- stats json ----

TEST(StatsJson, CycleSchemaIsValidAndCarriesTheRunNumbers) {
  const TracedRun& run = mb_run();
  std::string err;
  ASSERT_TRUE(JsonChecker::valid(run.stats_json, &err)) << err;
  EXPECT_NE(run.stats_json.find("\"schema\": \"majc-stats-v1\""),
            std::string::npos);
  EXPECT_NE(run.stats_json.find("\"mode\": \"cycle\""), std::string::npos);
  EXPECT_NE(run.stats_json.find("\"cycles\": " +
                                std::to_string(run.result.cycles)),
            std::string::npos);
  EXPECT_NE(run.stats_json.find("\"packets\": " +
                                std::to_string(run.result.packets)),
            std::string::npos);
  EXPECT_NE(run.stats_json.find("\"stalls\""), std::string::npos);
  EXPECT_NE(run.stats_json.find("\"lsu\""), std::string::npos);
  EXPECT_NE(run.stats_json.find("\"dcache\""), std::string::npos);
  EXPECT_NE(run.stats_json.find("\"reason\": \"halted\""), std::string::npos);
}

TEST(StatsJson, FunctionalSchemaIsValid) {
  const auto spec = kernels::make_fir_spec();
  sim::FunctionalSim sim(masm::assemble_or_throw(spec.source));
  if (spec.setup) spec.setup(sim.memory(), sim.program().image());
  const auto res = sim.run(spec.max_packets);
  std::ostringstream os;
  trace::write_stats_json(os, sim, res);
  std::string err;
  ASSERT_TRUE(JsonChecker::valid(os.str(), &err)) << err;
  EXPECT_NE(os.str().find("\"mode\": \"functional\""), std::string::npos);
  EXPECT_NE(os.str().find("\"program_packets\""), std::string::npos);
}

TEST(StatsJson, ChipModeTracesBothCpusAndTheDte) {
  // A dual-CPU program plus a DTE descriptor: the chip trace grows a track
  // group per CPU and one for the DTE, and the chip stats dump covers both
  // CPUs and the DMA engine.
  const char* src = R"(
    getcpu g3
    addi g4, g3, 1
    halt
  )";
  const TimingConfig cfg;
  soc::Majc5200 chip(masm::assemble_or_throw(src), cfg);

  std::ostringstream trace_os;
  trace::ChromeTraceWriter writer(trace_os);
  std::vector<std::unique_ptr<trace::CpuTraceRecorder>> recs;
  for (u32 c = 0; c < soc::Majc5200::kNumCpus; ++c) {
    recs.push_back(std::make_unique<trace::CpuTraceRecorder>(
        writer, chip.program(), cfg, c));
    recs.back()->attach(chip.cpu(c));
  }
  trace::DteTraceRecorder dte_rec(writer);
  dte_rec.attach(chip.dte());

  const auto res = chip.run();
  ASSERT_TRUE(res.all_halted);
  // One DMA descriptor after the CPUs halt (the DTE only needs `now`).
  chip.dte().submit({0x100000, 0x180000, 4096}, res.cycles);
  writer.finish();
  const std::string text = trace_os.str();

  std::string err;
  ASSERT_TRUE(JsonChecker::valid(text, &err)) << err;
  EXPECT_EQ(count_lines_with(text, "\"name\":\"cpu0\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"name\":\"cpu1\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"name\":\"dte\""), 1u);
  EXPECT_EQ(count_lines_with(text, "\"cat\":\"dma\""), 1u);

  std::ostringstream stats_os;
  trace::write_stats_json(stats_os, chip, res);
  ASSERT_TRUE(JsonChecker::valid(stats_os.str(), &err)) << err;
  EXPECT_NE(stats_os.str().find("\"mode\": \"chip\""), std::string::npos);
  EXPECT_NE(stats_os.str().find("\"id\": 0"), std::string::npos);
  EXPECT_NE(stats_os.str().find("\"id\": 1"), std::string::npos);
  EXPECT_NE(stats_os.str().find("\"dte\""), std::string::npos);
  EXPECT_NE(stats_os.str().find("\"descriptors\": 1"), std::string::npos);
}

// ---- bench table json ----

TEST(BenchTable, JsonDumpMatchesTheRows) {
  // Every bench_* binary routes through Table; smoke the schema here so a
  // regression is caught by unit tests, not only by running the benches.
  const std::string path = ::testing::TempDir() + "bench_table.json";
  std::string flag = "--json=" + path;
  char prog[] = "bench_test";
  char* argv[] = {prog, flag.data()};
  {
    bench::Table t("unit-test table", 2, argv);
    t.row("alpha", "1 cycle", "2 cycles");
    t.row("beta", "3 MB/s", "4.5 MB/s", 4.5, "MB/s");
    t.note("a note line");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::string err;
  ASSERT_TRUE(JsonChecker::valid(text, &err)) << err << "\n" << text;
  EXPECT_NE(text.find("\"schema\": \"majc-bench-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"title\": \"unit-test table\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 4.5"), std::string::npos);
  EXPECT_NE(text.find("\"unit\": \"MB/s\""), std::string::npos);
  EXPECT_NE(text.find("\"a note line\""), std::string::npos);
}

} // namespace
} // namespace majc
