// Unit tests for the support library: bit ops, saturation, fixed point,
// RNG determinism, stats.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/bits.h"
#include "src/support/fixed_point.h"
#include "src/support/rng.h"
#include "src/support/saturate.h"
#include "src/support/stats.h"

namespace majc {
namespace {

TEST(Bits, ExtractDepositRoundTrip) {
  u32 w = 0;
  w = deposit(w, 23, 7, 0x55);
  w = deposit(w, 16, 7, 0x2A);
  EXPECT_EQ(bits(w, 23, 7), 0x55u);
  EXPECT_EQ(bits(w, 16, 7), 0x2Au);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x1FF, 9), -1);
  EXPECT_EQ(sign_extend(0x0FF, 9), 255);
  EXPECT_EQ(sign_extend(0x100, 9), -256);
  EXPECT_EQ(sign_extend64(0x7FFFFF, 23), -1);
  EXPECT_EQ(sign_extend64(0x3FFFFF, 23), 0x3FFFFF);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(255, 9));
  EXPECT_TRUE(fits_signed(-256, 9));
  EXPECT_FALSE(fits_signed(256, 9));
  EXPECT_FALSE(fits_signed(-257, 9));
}

TEST(Bits, LeadingZeros) {
  EXPECT_EQ(leading_zeros(0), 32u);
  EXPECT_EQ(leading_zeros(1), 31u);
  EXPECT_EQ(leading_zeros(0x80000000u), 0u);
  EXPECT_EQ(leading_zeros(0x00010000u), 15u);
}

TEST(Bits, PixelDistance) {
  EXPECT_EQ(pixel_distance(0x00000000u, 0x00000000u), 0u);
  EXPECT_EQ(pixel_distance(0xFF000000u, 0x00000000u), 255u);
  EXPECT_EQ(pixel_distance(0x01020304u, 0x04030201u), 3u + 1 + 1 + 3);
}

TEST(Bits, ByteShuffleSelectsAndZeroes) {
  const u32 hi = 0x00112233, lo = 0x44556677;
  // Selector nibbles 0..3 pick bytes of hi, 4..7 of lo, >=8 give zero.
  EXPECT_EQ(byte_shuffle(hi, lo, 0x0123), 0x00112233u);
  EXPECT_EQ(byte_shuffle(hi, lo, 0x4567), 0x44556677u);
  EXPECT_EQ(byte_shuffle(hi, lo, 0x7710), 0x77771100u);
  EXPECT_EQ(byte_shuffle(hi, lo, 0x8F00), 0x00000000u);
}

TEST(Bits, BitfieldExtractMsbFirst) {
  // 64-bit value 0xAB.....; pos counts from the MSB.
  EXPECT_EQ(bitfield_extract(0xAB000000u, 0, 0, 8), 0xABu);
  EXPECT_EQ(bitfield_extract(0x0000000Fu, 0xF0000000u, 28, 8), 0xFFu);
  EXPECT_EQ(bitfield_extract(0xFFFFFFFFu, 0xFFFFFFFFu, 10, 0), 0u);
}

class SatModes : public ::testing::TestWithParam<int> {};

TEST_P(SatModes, LaneBoundsRespected) {
  const auto mode = static_cast<SatMode>(GetParam());
  for (i64 v : {i64{-100000}, i64{-32769}, i64{-1}, i64{0}, i64{255},
                i64{256}, i64{32767}, i64{32768}, i64{70000}}) {
    const u16 r = saturate_lane(v, mode);
    switch (mode) {
      case SatMode::kWrap:
        EXPECT_EQ(r, static_cast<u16>(v));
        break;
      case SatMode::kSigned16:
        EXPECT_GE(static_cast<i16>(r), -32768);
        EXPECT_LE(static_cast<i16>(r),
                  32767);  // always true; bound checks below
        if (v >= -32768 && v <= 32767) {
          EXPECT_EQ(static_cast<i16>(r), v);
        }
        break;
      case SatMode::kUnsigned16:
        if (v >= 0 && v <= 65535) {
          EXPECT_EQ(r, v);
        } else if (v < 0) {
          EXPECT_EQ(r, 0u);
        } else {
          EXPECT_EQ(r, 65535u);
        }
        break;
      case SatMode::kByte:
        if (v < 0) {
          EXPECT_EQ(r, 0u);
        } else if (v > 255) {
          EXPECT_EQ(r, 255u);
        }
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SatModes, ::testing::Values(0, 1, 2, 3));

TEST(Saturate, Scalar32) {
  EXPECT_EQ(sat_add32(2000000000, 2000000000), 2147483647);
  EXPECT_EQ(sat_add32(-2000000000, -2000000000), -2147483647 - 1);
  EXPECT_EQ(sat_sub32(-2000000000, 2000000000), -2147483647 - 1);
  EXPECT_EQ(sat_add32(1, 2), 3);
}

TEST(FixedPoint, RoundTripS15) {
  for (double v : {-0.99, -0.5, 0.0, 0.25, 0.73, 0.999}) {
    EXPECT_NEAR(from_fixed(to_fixed(v, kFracS15), kFracS15), v, 1.0 / 32768);
  }
}

TEST(FixedPoint, MulS15) {
  const u16 half = to_fixed(0.5, kFracS15);
  const u16 q = fx_mul(half, half, kFracS15, SatMode::kSigned16);
  EXPECT_NEAR(from_fixed(q, kFracS15), 0.25, 1e-4);
}

TEST(FixedPoint, DivS213RoundsToNearest) {
  const u16 three = to_fixed(3.0, kFracS213);
  const u16 two = to_fixed(2.0, kFracS213);
  EXPECT_NEAR(from_fixed(fx_div_s213(three, two), kFracS213), 1.5, 1e-3);
  // Division by zero saturates toward the dividend's sign.
  EXPECT_EQ(fx_div_s213(three, 0), 0x7FFFu);
  EXPECT_EQ(fx_div_s213(to_fixed(-1.0, kFracS213), 0), 0x8000u);
}

TEST(FixedPoint, RsqrtS213) {
  const u16 four = to_fixed(3.9, kFracS213);
  EXPECT_NEAR(from_fixed(fx_rsqrt_s213(four), kFracS213), 1.0 / std::sqrt(3.9),
              1e-3);
  EXPECT_EQ(fx_rsqrt_s213(0), 0x7FFFu);
}

TEST(FixedPoint, MulS31Saturates) {
  const u16 neg1 = 0x8000;  // -1.0 in S.15
  EXPECT_EQ(fx_mul_s31(neg1, neg1), 0x7FFFFFFF);  // (-1)*(-1)<<1 clamps
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangesRespected) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const i32 v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.next_double(1.0, 2.0);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 2.0);
  }
}

TEST(Stats, HistogramMean) {
  Histogram h(5);
  h.add(1, 10);
  h.add(3, 10);
  EXPECT_EQ(h.total(), 20u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Stats, Counters) {
  CounterSet c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_NE(c.to_string().find("x"), std::string::npos);
}

} // namespace
} // namespace majc
