// Memory subsystem unit tests: cache tags/LRU/write-back, DRDRAM banking
// and bandwidth, crossbar arbitration, and LSU invariants.
#include <gtest/gtest.h>

#include "src/mem/memsys.h"
#include "src/support/rng.h"

namespace majc {
namespace {

using mem::Cache;

Cache::Config small_cache() {
  return {.bytes = 1024, .ways = 2, .line_bytes = 32, .name = "t"};
}

TEST(Cache, HitAfterFill) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11F, false).hit);   // same line
  EXPECT_FALSE(c.access(0x120, false).hit);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_cache());  // 16 sets, 2 ways; lines 0x000/0x200/0x400 share set 0
  c.access(0x000, false);
  c.access(0x200, false);
  c.access(0x000, false);          // touch: 0x200 becomes LRU
  c.access(0x400, false);          // evicts 0x200
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x200));
  EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, DirtyVictimReportsWriteback) {
  Cache c(small_cache());
  c.access(0x000, /*is_store=*/true);
  c.access(0x200, false);
  const auto res = c.access(0x400, false);  // evicts dirty 0x000
  EXPECT_TRUE(res.writeback);
  EXPECT_EQ(res.victim_line, 0x000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, InvalidateReturnsDirtiness) {
  Cache c(small_cache());
  c.access(0x40, true);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.probe(0x40));
  c.access(0x40, false);
  EXPECT_FALSE(c.invalidate(0x40));
}

TEST(Cache, NonAllocatingMissLeavesTagsAlone) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x80, false, /*allocate=*/false).hit);
  EXPECT_FALSE(c.probe(0x80));
}

TEST(Cache, BadConfigRejected) {
  EXPECT_THROW(Cache({.bytes = 100, .ways = 3, .line_bytes = 32}), Error);
}

TEST(Dram, PageHitsStreamAtChannelRate) {
  TimingConfig cfg;
  mem::Dram d(cfg);
  Cycle t = 0;
  // 64 sequential lines in one page after the first activation.
  for (u32 i = 0; i < 64; ++i) t = d.request(0x10000 + 32 * i, 32, 0);
  const double bpc = 64.0 * 32.0 / static_cast<double>(t);
  EXPECT_GT(bpc, 2.8);   // approaches 3.2 B/cycle = 1.6 GB/s
  EXPECT_LE(bpc, 3.3);
}

TEST(Dram, BankConflictsSerializeRowMisses) {
  TimingConfig cfg;
  mem::Dram a(cfg), b(cfg);
  // Alternating pages within one bank vs across two banks.
  Cycle t1 = 0, t2 = 0;
  for (u32 i = 0; i < 16; ++i) {
    t1 = a.request((i % 2) ? 0x20000 : 0x60000, 32, t1);  // same bank
    t2 = b.request((i % 2) ? 0x20000 : 0x20800, 32, t2);  // two banks
  }
  EXPECT_GT(t1, t2);
}

TEST(Crossbar, PortBandwidthBoundsTransfers) {
  TimingConfig cfg;
  mem::Crossbar x(cfg);
  // PCI at 0.528 B/cycle: 1 KB takes ~1939 cycles.
  const Cycle done = x.transfer(mem::Port::kPci, mem::Port::kMem, 1024, 0);
  EXPECT_NEAR(static_cast<double>(done), 1024 / 0.528, 64.0);
  // Independent ports overlap: a UPA transfer issued at 0 finishes long
  // before the PCI one.
  const Cycle upa = x.transfer(mem::Port::kNupa, mem::Port::kGpp, 1024, 0);
  EXPECT_LT(upa, done);
}

TEST(Crossbar, SharedPortSerializes) {
  TimingConfig cfg;
  mem::Crossbar x(cfg);
  const Cycle a = x.transfer(mem::Port::kCpu0, mem::Port::kMem, 4096, 0);
  const Cycle b = x.transfer(mem::Port::kCpu1, mem::Port::kMem, 4096, 0);
  EXPECT_GT(b, a);  // the kMem port is busy with the first transfer
}

TEST(Lsu, LoadBufferCapacityStalls) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  auto& lsu = ms.lsu(0);
  sim::MemAccess acc{sim::MemAccess::Kind::kLoad, 0x100000, 4, 0};
  // Six loads to distinct lines: the sixth waits for a buffer slot
  // (5 load buffers, paper §3.2).
  Cycle issue5 = 0, issue6 = 0;
  for (u32 i = 0; i < 6; ++i) {
    acc.addr = 0x100000 + 0x800 * i;  // distinct banks, all miss
    const auto r = lsu.issue(acc, 0);
    if (i == 4) issue5 = r.issue_at;
    if (i == 5) issue6 = r.issue_at;
  }
  EXPECT_EQ(issue5, 0u);
  EXPECT_GT(issue6, 0u);
  EXPECT_GT(lsu.counters().get("load_buffer_stalls"), 0u);
}

TEST(Lsu, MshrMergeJoinsInFlightFill) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  auto& lsu = ms.lsu(0);
  sim::MemAccess acc{sim::MemAccess::Kind::kLoad, 0x100000, 4, 0};
  const auto first = lsu.issue(acc, 0);
  acc.addr = 0x100004;  // same line
  const auto second = lsu.issue(acc, 1);
  EXPECT_EQ(lsu.counters().get("mshr_merges"), 1u);
  EXPECT_LE(second.data_ready, first.data_ready + cfg.load_to_use);
}

TEST(Lsu, StoreForwardingBeatsTheFill) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  auto& lsu = ms.lsu(0);
  sim::MemAccess st{sim::MemAccess::Kind::kStore, 0x140000, 4, 0};
  lsu.issue(st, 0);
  sim::MemAccess ld{sim::MemAccess::Kind::kLoad, 0x140000, 4, 0};
  const auto r = lsu.issue(ld, 1);
  EXPECT_EQ(r.data_ready, 2u);
  EXPECT_EQ(lsu.counters().get("store_forwards"), 1u);
}

TEST(Lsu, DrainCoversOutstandingWork) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  auto& lsu = ms.lsu(0);
  sim::MemAccess acc{sim::MemAccess::Kind::kLoad, 0x100000, 4, 0};
  const auto r = lsu.issue(acc, 0);
  EXPECT_GE(lsu.drain(1), r.data_ready);
  sim::MemAccess bar{sim::MemAccess::Kind::kMembar, 0, 0, 0};
  const auto b = lsu.issue(bar, 1);
  EXPECT_GE(b.issue_at, r.data_ready);
}

TEST(Lsu, PerfectModeAlwaysHits) {
  TimingConfig cfg;
  cfg.perfect_dcache = true;
  mem::MemorySystem ms(cfg);
  sim::MemAccess acc{sim::MemAccess::Kind::kLoad, 0x700000, 4, 0};
  const auto r = ms.lsu(0).issue(acc, 10);
  EXPECT_EQ(r.data_ready, 10 + cfg.load_to_use);
}

TEST(Lsu, NonCachedBypassesTags) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  sim::MemAccess acc{sim::MemAccess::Kind::kLoad, 0x100000, 4, 1};  // .nc
  ms.lsu(0).issue(acc, 0);
  EXPECT_FALSE(ms.dcache().probe(0x100000));
}

TEST(MemSystem, IfetchMissesThenHits) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  const Cycle cold = ms.ifetch(0, 0x1000, 16, 0);
  EXPECT_GT(cold, 0u);
  const Cycle warm = ms.ifetch(0, 0x1000, 16, cold);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(ms.icache(0).hits(), 1u);
}

TEST(MemSystem, IcachesArePerCpu) {
  TimingConfig cfg;
  mem::MemorySystem ms(cfg);
  ms.ifetch(0, 0x1000, 16, 0);
  EXPECT_EQ(ms.icache(1).hits() + ms.icache(1).misses(), 0u);
}

} // namespace
} // namespace majc
