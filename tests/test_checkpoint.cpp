// Checkpoint / restore tests: Writer/Reader primitives, header validation,
// and the contract that matters — a run saved mid-flight and restored into
// a fresh simulator finishes cycle-for-cycle identical to an unbroken run,
// in all three modes, including under fault injection.
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/soc/chip.h"
#include "src/support/checkpoint.h"

namespace majc {
namespace {

using masm::assemble_or_throw;

// ------------------------------------------------------- Writer / Reader

TEST(CkptIo, PrimitivesRoundTrip) {
  ckpt::Writer w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeefu);
  w.put_u64(0x0123456789abcdefull);
  w.put_bool(true);
  w.put_bool(false);
  w.put_f64(-0.1);
  w.put_string("majc");
  w.put_tag("TEST");
  const std::vector<u8> raw{1, 2, 3};
  w.put_bytes(raw);

  ckpt::Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_f64(), -0.1);  // bit-exact, == is correct
  EXPECT_EQ(r.get_string(), "majc");
  r.expect_tag("TEST");
  std::vector<u8> back(3);
  r.get_bytes(back);
  EXPECT_EQ(back, raw);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CkptIo, ShortReadThrows) {
  ckpt::Writer w;
  w.put_u16(7);
  ckpt::Reader r(w.bytes());
  EXPECT_THROW(r.get_u32(), Error);
}

TEST(CkptIo, TagMismatchThrows) {
  ckpt::Writer w;
  w.put_tag("AAAA");
  ckpt::Reader r(w.bytes());
  EXPECT_THROW(r.expect_tag("BBBB"), Error);
}

// ----------------------------------------------------------------- header

// Long enough that a mid-run split exercises caches, MSHRs and the branch
// predictor, short enough to keep the test fast.
constexpr const char* kLoopProg = R"(
    .data
  buf: .space 2048
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 512
    setlo g6, 1
  fill:
    stwi g6, g3, 0
    addi g6, g6, 7
    addi g3, g3, 4
    addi g5, g5, -1
    bnz g5, fill
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 512
    setlo g10, 0
  sum:
    ldwi g7, g3, 0
    add g10, g10, g7
    addi g3, g3, 4
    addi g5, g5, -1
    bnz g5, sum
    halt
)";

TEST(Ckpt, HeaderRejectsWrongMode) {
  sim::FunctionalSim fsim(assemble_or_throw(kLoopProg));
  const auto bytes = ckpt::save_checkpoint(fsim);
  EXPECT_EQ(ckpt::peek_mode(bytes), ckpt::Mode::kFunctional);

  cpu::CycleSim csim(assemble_or_throw(kLoopProg));
  EXPECT_THROW(ckpt::restore_checkpoint(csim, bytes), Error);
}

TEST(Ckpt, HeaderRejectsCorruptMagicAndVersion) {
  sim::FunctionalSim fsim(assemble_or_throw(kLoopProg));
  auto bytes = ckpt::save_checkpoint(fsim);
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(ckpt::peek_mode(bad_magic), Error);
  sim::FunctionalSim other(assemble_or_throw(kLoopProg));
  EXPECT_THROW(ckpt::restore_checkpoint(other, bad_magic), Error);

  auto bad_version = bytes;
  bad_version[8] ^= 0xff;  // version u32 follows the 8-byte magic
  EXPECT_THROW(ckpt::restore_checkpoint(other, bad_version), Error);
}

TEST(Ckpt, HeaderRejectsDifferentImage) {
  sim::FunctionalSim a(assemble_or_throw(kLoopProg));
  const auto bytes = ckpt::save_checkpoint(a);
  sim::FunctionalSim b(assemble_or_throw("halt\n"));
  EXPECT_THROW(ckpt::restore_checkpoint(b, bytes), Error);
}

TEST(Ckpt, HeaderRejectsDifferentTimingConfig) {
  cpu::CycleSim a(assemble_or_throw(kLoopProg));
  const auto bytes = ckpt::save_checkpoint(a);

  TimingConfig other;
  other.faults.fill_parity_rate = 0.25;  // any field counts
  cpu::CycleSim b(assemble_or_throw(kLoopProg), other);
  EXPECT_THROW(ckpt::restore_checkpoint(b, bytes), Error);
}

TEST(Ckpt, SavingTwiceIsByteIdentical) {
  cpu::CycleSim sim(assemble_or_throw(kLoopProg));
  sim.run(200);
  EXPECT_EQ(ckpt::save_checkpoint(sim), ckpt::save_checkpoint(sim));
}

// --------------------------------------------- split-run = unbroken run

TEST(Ckpt, FunctionalSplitRunMatchesUnbrokenRun) {
  sim::FunctionalSim golden(assemble_or_throw(kLoopProg));
  const auto gres = golden.run();
  ASSERT_EQ(gres.reason, TerminationReason::kHalted);

  sim::FunctionalSim first(assemble_or_throw(kLoopProg));
  first.run(300);  // per-call budget: stops mid-loop
  ASSERT_FALSE(first.state().halted);
  const auto bytes = ckpt::save_checkpoint(first);

  sim::FunctionalSim second(assemble_or_throw(kLoopProg));
  ckpt::restore_checkpoint(second, bytes);
  const auto res = second.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(second.packets_run(), golden.packets_run());
  EXPECT_EQ(second.instrs_run(), golden.instrs_run());
  EXPECT_EQ(ckpt::arch_digest(second), ckpt::arch_digest(golden));
}

TEST(Ckpt, CycleSplitRunMatchesUnbrokenRun) {
  cpu::CycleSim golden(assemble_or_throw(kLoopProg));
  const auto gres = golden.run();
  ASSERT_EQ(gres.reason, TerminationReason::kHalted);

  cpu::CycleSim first(assemble_or_throw(kLoopProg));
  const auto part = first.run(400);  // absolute packet cap: mid-run
  ASSERT_EQ(part.reason, TerminationReason::kPacketCap);
  const auto bytes = ckpt::save_checkpoint(first);

  cpu::CycleSim second(assemble_or_throw(kLoopProg));
  ckpt::restore_checkpoint(second, bytes);
  const auto res = second.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(res.cycles, gres.cycles);  // cycle-for-cycle identical
  EXPECT_EQ(res.packets, gres.packets);
  EXPECT_EQ(res.instrs, gres.instrs);
  EXPECT_EQ(ckpt::arch_digest(second), ckpt::arch_digest(golden));
}

TEST(Ckpt, CycleSplitRunUnderFaultInjectionStaysIdentical) {
  // Fault injection is part of the state (event indices live in the LSU /
  // crossbar / ECC counters), so a restored faulty run must replay the
  // exact same fault stream.
  TimingConfig cfg;
  cfg.faults.dram_correctable_rate = 0.2;
  cfg.faults.dram_uncorrectable_rate = 0.05;
  cfg.faults.mc_policy = MachineCheckPolicy::kPoison;
  cfg.faults.fill_parity_rate = 0.05;
  cfg.faults.xbar_delay_rate = 0.1;
  cfg.faults.xbar_drop_rate = 0.02;

  cpu::CycleSim golden(assemble_or_throw(kLoopProg), cfg);
  const auto gres = golden.run();
  ASSERT_EQ(gres.reason, TerminationReason::kHalted);

  cpu::CycleSim first(assemble_or_throw(kLoopProg), cfg);
  first.run(400);
  const auto bytes = ckpt::save_checkpoint(first);

  cpu::CycleSim second(assemble_or_throw(kLoopProg), cfg);
  ckpt::restore_checkpoint(second, bytes);
  const auto res = second.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(res.cycles, gres.cycles);
  EXPECT_EQ(second.ecc().corrected(), golden.ecc().corrected());
  EXPECT_EQ(second.ecc().poisoned_lines(), golden.ecc().poisoned_lines());
  EXPECT_EQ(second.memsys().xbar().delayed_grants(),
            golden.memsys().xbar().delayed_grants());
  EXPECT_EQ(ckpt::arch_digest(second), ckpt::arch_digest(golden));
}

TEST(Ckpt, ChipSplitRunMatchesUnbrokenRun) {
  // Dual-CPU program: CPU0 fills, CPU1 sums its own buffer; the checkpoint
  // must capture both cores plus the shared memory system mid-flight.
  constexpr const char* kDual = R"(
      .data
    buf0: .space 1024
    buf1: .space 1024
      .code
      getcpu g20
      bnz g20, cpu1
      sethi g3, %hi(buf0)
      orlo g3, %lo(buf0)
      bz g0, work
    cpu1:
      sethi g3, %hi(buf1)
      orlo g3, %lo(buf1)
    work:
      setlo g5, 256
      setlo g6, 1
    fill:
      stwi g6, g3, 0
      addi g6, g6, 5
      addi g3, g3, 4
      addi g5, g5, -1
      bnz g5, fill
      halt
  )";
  soc::Majc5200 golden(assemble_or_throw(kDual));
  const auto gres = golden.run();
  ASSERT_TRUE(gres.all_halted);

  soc::Majc5200 first(assemble_or_throw(kDual));
  first.run(300);
  const auto bytes = ckpt::save_checkpoint(first);

  soc::Majc5200 second(assemble_or_throw(kDual));
  ckpt::restore_checkpoint(second, bytes);
  const auto res = second.run();
  EXPECT_TRUE(res.all_halted);
  EXPECT_EQ(res.cycles, gres.cycles);
  EXPECT_EQ(res.packets[0], gres.packets[0]);
  EXPECT_EQ(res.packets[1], gres.packets[1]);
  EXPECT_EQ(ckpt::arch_digest(second), ckpt::arch_digest(golden));
}

TEST(Ckpt, RestoredTrapStateSurvives) {
  // Save while a guest handler is pending (in_trap set), restore, finish:
  // the trap unit state (tvec/tcause/in_trap) must travel with the
  // checkpoint.
  constexpr const char* kTrapProg = R"(
      sethi g20, %hi(handler)
      orlo g20, %lo(handler)
      settvec g20
      setlo g3, 4097
      ldwi g4, g3, 0
      setlo g9, 77
      halt
    handler:
      mftr g5, 0
      mftr g7, 2
      rett g7
  )";
  cpu::CycleSim golden(assemble_or_throw(kTrapProg));
  const auto gres = golden.run();
  ASSERT_EQ(gres.reason, TerminationReason::kHalted);

  cpu::CycleSim first(assemble_or_throw(kTrapProg));
  first.run(5);  // inside or just past trap delivery
  const auto bytes = ckpt::save_checkpoint(first);

  cpu::CycleSim second(assemble_or_throw(kTrapProg));
  ckpt::restore_checkpoint(second, bytes);
  const auto res = second.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(res.cycles, gres.cycles);
  EXPECT_EQ(second.cpu().state().read(5), golden.cpu().state().read(5));
  EXPECT_EQ(second.cpu().state().read(9), 77u);
  EXPECT_EQ(ckpt::arch_digest(second), ckpt::arch_digest(golden));
}

} // namespace
} // namespace majc
