// Adversarial protocol battery for majcd (src/serve/).
//
// Every abuse a local peer can throw at the daemon must produce a
// structured `error` frame (machine-readable code) or a clean disconnect —
// never a crash, a hang, a poisoned connection slot, or a corrupted reply
// to a *different* client. Each scenario ends with the proof that matters:
// a follow-up well-formed request on a fresh connection succeeds and the
// server's admission state is back to idle.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/kernels/table12.h"
#include "src/serve/client.h"
#include "src/serve/json_in.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"

using namespace majc;

namespace {

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/majcd-proto-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

/// A campaign big enough (16 kernels x 2 seeds, cycle mode: seconds of
/// guest time) that the test can act while it is still executing.
serve::CampaignRequest slow_request(u64 id) {
  serve::CampaignRequest req;
  req.id = id;
  for (const kernels::NamedKernel& nk : kernels::table12_kernels()) {
    req.kernels.push_back(nk.name);
  }
  req.mode = "cycle";
  req.seeds = 2;
  return req;
}

serve::CampaignRequest quick_request(u64 id) {
  serve::CampaignRequest req;
  req.id = id;
  req.kernels = {"fir"};
  req.mode = "functional";
  req.seeds = 1;
  return req;
}

class ServeProtocolTest : public ::testing::Test {
protected:
  void start(serve::ServerConfig cfg = {}) {
    cfg.socket_path = unique_socket_path();
    server_ = std::make_unique<serve::Server>(std::move(cfg));
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  bool connect(serve::Client* c) {
    std::string err;
    const bool ok = c->connect(server_->config().socket_path, &err);
    EXPECT_TRUE(ok) << err;
    return ok;
  }

  /// Expect the next frame to be a structured error with `code`.
  void expect_error(serve::Client* c, const char* code) {
    std::string payload;
    ASSERT_TRUE(c->recv(&payload));
    serve::JValue rsp;
    std::string perr;
    ASSERT_TRUE(serve::json_parse(payload, &rsp, &perr)) << perr;
    EXPECT_EQ(rsp.member_string("type", ""), "error");
    EXPECT_EQ(rsp.member_string("code", ""), code)
        << rsp.member_string("message", "");
  }

  /// The recovery proof shared by every scenario: a fresh connection gets a
  /// full campaign served, and admission is idle again.
  void expect_server_healthy() {
    serve::Client c;
    ASSERT_TRUE(connect(&c));
    std::string err;
    ASSERT_TRUE(serve::ping(c, 900, &err)) << err;
    // Wait for slot accounting to unwind first: a client can observe its
    // final campaign frame a beat before the serving thread releases the
    // slot, and with max_queue=0 a too-eager follow-up would bounce
    // `overloaded` spuriously.
    bool idle = false;
    for (int i = 0; i < 100 && !idle; ++i) {
      serve::ServeStats s;
      ASSERT_TRUE(serve::fetch_stats(c, 902, &s, &err)) << err;
      idle = s.active_campaigns == 0 && s.queued_campaigns == 0;
      if (!idle) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(idle) << "admission slots never returned to idle";
    serve::CampaignReply reply;
    ASSERT_TRUE(serve::run_campaign(c, quick_request(901), &reply, &err))
        << err;
    ASSERT_TRUE(reply.ok) << reply.error_code << ": " << reply.error_message;
  }

  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeProtocolTest, GarbageJsonGetsBadRequestAndConnectionSurvives) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  ASSERT_TRUE(c.send("this is not json {"));
  expect_error(&c, "bad-request");
  // Same connection still speaks protocol.
  std::string err;
  EXPECT_TRUE(serve::ping(c, 1, &err)) << err;
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, WrongSchemaAndUnknownTypeAreStructuredErrors) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  ASSERT_TRUE(c.send(R"({"schema":"majc-req-v9","type":"campaign"})"));
  expect_error(&c, "bad-request");
  ASSERT_TRUE(c.send(R"({"schema":"majc-req-v1","type":"launch-missiles"})"));
  expect_error(&c, "bad-request");
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, TruncatedFrameDisconnectsWithoutPoisoningServer) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  // Announce 100 bytes, deliver 10, vanish.
  const unsigned char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(c.fd(), header, 4, 0), 4);
  ASSERT_EQ(::send(c.fd(), "0123456789", 10, 0), 10);
  c.close();
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, OversizedFrameGetsErrorThenClose) {
  serve::ServerConfig cfg;
  cfg.max_request_bytes = 1024;
  start(cfg);
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  // A header announcing 1 MiB against a 1 KiB limit: the server must reply
  // `oversized` WITHOUT reading the payload, then close (the stream cannot
  // be resynchronized).
  const u32 huge = 1u << 20;
  ASSERT_EQ(::send(c.fd(), &huge, 4, 0), 4);
  expect_error(&c, "oversized");
  std::string payload;
  EXPECT_FALSE(c.recv(&payload));  // orderly close follows
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, MaximalLengthPrefixIsRejected) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  const u32 huge = 0xFFFFFFFFu;
  ASSERT_EQ(::send(c.fd(), &huge, 4, 0), 4);
  expect_error(&c, "oversized");
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, UnknownKernelAndBadParametersAreRecoverable) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  std::string err;

  serve::CampaignRequest req = quick_request(1);
  req.kernels = {"fir", "definitely_not_a_kernel"};
  serve::CampaignReply reply;
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error_code, "unknown-kernel");

  req = quick_request(2);
  req.mode = "warp-speed";
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  EXPECT_EQ(reply.error_code, "bad-request");

  req = quick_request(3);
  req.backend = "jit";
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  EXPECT_EQ(reply.error_code, "bad-request");

  req = quick_request(4);
  req.seeds = 0;  // empty matrix: same class of usage error majc_farm exits
                  // 2 on — the daemon's analogue is a structured rejection
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  EXPECT_EQ(reply.error_code, "bad-request");

  // All on ONE connection, which still works afterwards.
  ASSERT_TRUE(serve::run_campaign(c, quick_request(5), &reply, &err)) << err;
  EXPECT_TRUE(reply.ok) << reply.error_code;
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, AssemblySyntaxErrorIsStructured) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  serve::CampaignRequest req;
  req.id = 1;
  req.source_name = "broken";
  req.source_text = "frobnicate g1, g2\n";
  serve::CampaignReply reply;
  std::string err;
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error_code, "assembly-error");
  EXPECT_FALSE(reply.error_message.empty());
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, QuotaFloodIsCappedPerConnection) {
  serve::ServerConfig cfg;
  cfg.per_client_quota = 2;
  start(cfg);
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  std::string err;
  serve::CampaignReply reply;
  for (u64 i = 1; i <= 2; ++i) {
    ASSERT_TRUE(serve::run_campaign(c, quick_request(i), &reply, &err)) << err;
    EXPECT_TRUE(reply.ok) << reply.error_code;
  }
  // Third and later campaigns on this connection are over quota...
  for (u64 i = 3; i <= 5; ++i) {
    ASSERT_TRUE(serve::run_campaign(c, quick_request(i), &reply, &err)) << err;
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error_code, "quota-exceeded");
  }
  // ...but the quota is per connection, not per process: a fresh one works
  // (expect_server_healthy runs a campaign on a new connection).
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, AdmissionQueueFullIsOverloadedNotHang) {
  serve::ServerConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 0;  // no waiting: the second campaign must bounce
  start(cfg);

  serve::Client slow;
  ASSERT_TRUE(connect(&slow));
  // Drive the slow campaign manually so we can act between ack and result.
  ASSERT_TRUE(slow.send(serve::campaign_request_json(slow_request(1))));
  std::string payload;
  ASSERT_TRUE(slow.recv(&payload));
  serve::JValue rsp;
  std::string perr;
  ASSERT_TRUE(serve::json_parse(payload, &rsp, &perr)) << perr;
  ASSERT_EQ(rsp.member_string("type", ""), "ack");  // slot now held

  serve::Client bounced;
  ASSERT_TRUE(connect(&bounced));
  serve::CampaignReply reply;
  std::string err;
  ASSERT_TRUE(serve::run_campaign(bounced, quick_request(2), &reply, &err))
      << err;
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error_code, "overloaded");

  // The slow campaign is unharmed: drain its stream to the raw payload.
  u64 announced = 0;
  for (;;) {
    ASSERT_TRUE(slow.recv(&payload));
    ASSERT_TRUE(serve::json_parse(payload, &rsp, &perr)) << perr;
    const std::string type = rsp.member_string("type", "");
    ASSERT_TRUE(type == "job" || type == "campaign") << type;
    if (type == "campaign") {
      announced = rsp.member_u64("payload_bytes", 0);
      break;
    }
  }
  ASSERT_TRUE(slow.recv(&payload));
  EXPECT_EQ(payload.size(), announced);
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, DisconnectMidStreamReleasesSlot) {
  serve::ServerConfig cfg;
  cfg.max_concurrent = 1;
  start(cfg);
  {
    serve::Client c;
    ASSERT_TRUE(connect(&c));
    ASSERT_TRUE(c.send(serve::campaign_request_json(slow_request(1))));
    std::string payload;
    ASSERT_TRUE(c.recv(&payload));  // ack: the campaign is executing
    c.close();                      // vanish mid-campaign
  }
  // The server must notice the dead peer, finish/abort the campaign, and
  // release the (only) slot — expect_server_healthy would otherwise hang on
  // admission and fail by timeout.
  expect_server_healthy();
}

TEST_F(ServeProtocolTest, DrainWithInFlightCampaignDoesNotHang) {
  start();
  serve::Client c;
  ASSERT_TRUE(connect(&c));
  ASSERT_TRUE(c.send(serve::campaign_request_json(slow_request(1))));
  std::string payload;
  ASSERT_TRUE(c.recv(&payload));  // ack

  server_->begin_shutdown();

  // The in-flight campaign resolves quickly one of two ways: a `draining`
  // error (interrupted at a slice/job boundary) or — if it won the race —
  // its complete, well-formed stream. Either way the stream terminates and
  // stop() joins without hanging (the test TIMEOUT is the backstop).
  bool saw_draining = false;
  bool saw_campaign = false;
  while (c.recv(&payload)) {
    serve::JValue rsp;
    std::string perr;
    ASSERT_TRUE(serve::json_parse(payload, &rsp, &perr)) << perr;
    const std::string type = rsp.member_string("type", "");
    if (type == "error") {
      EXPECT_EQ(rsp.member_string("code", ""), "draining");
      saw_draining = true;
      break;
    }
    if (rsp.member_string("schema", "") != "majc-rsp-v1") {
      saw_campaign = true;  // the raw majc-farm-v1 payload
      break;
    }
  }
  EXPECT_TRUE(saw_draining || saw_campaign);

  // New connections are refused (accept loop is down) or at minimum no new
  // campaign is admitted; either way stop() must complete promptly.
  server_->stop();
  serve::Client after;
  std::string err;
  if (after.connect(server_->config().socket_path, &err)) {
    serve::CampaignReply reply;
    if (serve::run_campaign(after, quick_request(2), &reply, &err)) {
      EXPECT_FALSE(reply.ok);
    }
  }
  server_.reset();
}

TEST_F(ServeProtocolTest, ManyParallelClientsAllGetCorrectStreams) {
  serve::ServerConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue = 16;
  start(cfg);
  constexpr int kClients = 6;
  std::vector<std::string> campaigns(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client c;
      std::string err;
      if (!c.connect(server_->config().socket_path, &err)) {
        ++failures;
        return;
      }
      serve::CampaignReply reply;
      if (!serve::run_campaign(c, quick_request(static_cast<u64>(i) + 1),
                               &reply, &err) ||
          !reply.ok) {
        ++failures;
        return;
      }
      campaigns[i] = reply.campaign;
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Identical requests from six interleaved clients: identical bytes.
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(campaigns[i], campaigns[0]) << i;
  }
}

} // namespace
