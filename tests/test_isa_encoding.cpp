// ISA layer tests: opcode metadata invariants, instruction encode/decode
// round trips (property-swept over the whole opcode space), packet rules,
// and disassembler round trips through the assembler.
#include <gtest/gtest.h>

#include "src/isa/disasm.h"
#include "src/isa/encoding.h"
#include "src/masm/assembler.h"
#include "src/support/rng.h"

namespace majc {
namespace {

using isa::Form;
using isa::Instr;
using isa::Op;

TEST(OpcodeTable, MetadataInvariants) {
  for (u32 i = 0; i < isa::kNumOpcodes; ++i) {
    const auto op = static_cast<Op>(i);
    const auto& info = isa::op_info(op);
    EXPECT_FALSE(info.mnemonic.empty());
    EXPECT_NE(info.fu_mask, 0);
    EXPECT_GE(info.latency, 1);
    EXPECT_GE(info.issue_interval, 1);
    EXPECT_LE(info.issue_interval, info.latency);
    // Memory and control ops are FU0-only except nop.
    if (info.is_mem() && op != Op::kNop) {
      EXPECT_EQ(info.fu_mask, isa::kFu0) << info.mnemonic;
    }
    // Non-pipelined ops are the 6-cycle iterative family.
    if (info.issue_interval == info.latency && info.latency > 2) {
      EXPECT_EQ(info.fu_mask, isa::kFu0) << info.mnemonic;
    }
    // Mnemonics resolve back to the same opcode.
    Op back;
    ASSERT_TRUE(isa::op_from_name(info.mnemonic, back)) << info.mnemonic;
    EXPECT_EQ(back, op);
  }
}

TEST(OpcodeTable, UnknownMnemonicRejected) {
  Op op;
  EXPECT_FALSE(isa::op_from_name("bogus", op));
}

/// Build a random-but-valid instruction for an opcode.
Instr random_instr(Op op, SplitMix64& rng) {
  const auto& info = isa::op_info(op);
  Instr in;
  in.op = op;
  auto reg = [&](bool pair, bool group) -> isa::RegSpec {
    if (group) return static_cast<isa::RegSpec>(8 * rng.next_below(11));
    if (pair) return static_cast<isa::RegSpec>(2 * rng.next_below(47));
    return static_cast<isa::RegSpec>(rng.next_below(128));
  };
  switch (info.form) {
    case Form::kR:
      in.rd = reg(info.has(isa::kRdPair), info.has(isa::kRdGroup));
      in.rs1 = reg(info.has(isa::kRs1Pair), false);
      in.rs2 = reg(info.has(isa::kRs2Pair), false);
      if (info.has(isa::kHasSub)) {
        // Memory attribute 3 is reserved; SIMD uses all four modes.
        in.sub = static_cast<u8>(rng.next_below(info.is_mem() ? 3 : 4));
      }
      break;
    case Form::kI:
      in.rd = reg(info.has(isa::kRdPair), info.has(isa::kRdGroup));
      in.rs1 = reg(false, false);
      in.imm = rng.next_range(-256, 255);
      break;
    case Form::kL:
      in.rd = reg(false, false);
      in.imm = rng.next_range(-32768, 32767);
      break;
    case Form::kJ:
      in.imm = rng.next_range(-(1 << 22), (1 << 22) - 1);
      break;
    case Form::kN:
      if (info.writes_rd()) in.rd = reg(false, false);
      break;
  }
  return in;
}

TEST(Encoding, RoundTripsEveryOpcode) {
  SplitMix64 rng(99);
  for (u32 i = 0; i < isa::kNumOpcodes; ++i) {
    const auto op = static_cast<Op>(i);
    for (int trial = 0; trial < 50; ++trial) {
      const Instr in = random_instr(op, rng);
      const u32 word = isa::encode_instr(in);
      EXPECT_EQ(isa::decode_instr(word), in) << isa::op_info(op).mnemonic;
      // Header bits stay clear for slot packing.
      EXPECT_EQ(word >> 30, 0u);
    }
  }
}

TEST(Encoding, ImmediateOverflowRejected) {
  Instr in;
  in.op = Op::kAddi;
  in.imm = 300;  // > simm9
  EXPECT_THROW(isa::encode_instr(in), Error);
  in.imm = -257;
  EXPECT_THROW(isa::encode_instr(in), Error);
}

TEST(Encoding, PacketHeaderCarriesWidth) {
  for (u32 width = 1; width <= 4; ++width) {
    isa::Packet p;
    p.width = width;
    p.slot[0].op = Op::kNop;
    for (u32 i = 1; i < width; ++i) p.slot[i].op = Op::kAdd;
    const auto words = isa::encode_packet(p);
    ASSERT_EQ(words.size(), width);
    EXPECT_EQ(words[0] >> 30, width - 1);
    EXPECT_EQ(isa::decode_packet(words), p);
  }
}

TEST(Encoding, SlotFuRulesEnforced) {
  isa::Packet p;
  p.width = 2;
  p.slot[0].op = Op::kAdd;   // fine on FU0
  p.slot[1].op = Op::kLdw;   // memory op in slot 1: illegal
  EXPECT_THROW(isa::encode_packet(p), Error);

  p.slot[1].op = Op::kFmadd;  // FU1 compute: fine
  EXPECT_NO_THROW(isa::encode_packet(p));

  // FU1-3-only op in slot 0 is illegal.
  p.slot[0].op = Op::kPick;
  EXPECT_THROW(isa::encode_packet(p), Error);
}

TEST(Encoding, PairAlignmentEnforced) {
  isa::Packet p;
  p.width = 1;
  p.slot[0].op = Op::kLdl;
  p.slot[0].rd = 3;  // odd: invalid pair base
  EXPECT_THROW(isa::encode_packet(p), Error);
  p.slot[0].rd = 94;  // 94,95 within globals: fine
  EXPECT_NO_THROW(isa::encode_packet(p));
  p.slot[0].op = Op::kLdg;
  p.slot[0].rd = 92;  // group would cross the global/local boundary
  EXPECT_THROW(isa::encode_packet(p), Error);
}

TEST(Disasm, RoundTripsThroughAssembler) {
  // Assemble a program, disassemble every packet, reassemble the listing;
  // the code bytes must be identical.
  const char* src = R"(
    setlo g3, -42
    sethi g4, 0x1234
    orlo g4, 0x5678
    ldwi g5, g4, 8 | padd.s l0, g3, g4 | pmadds15.b l1, g3, g3
    stl g6, g4, g0 | fmadd l2, g5, g5 | dotp g7, g3, g3 | dadd l4, g6, g6
    pref g0, g4, g0
    getcpu g8
    nop | bext g9, g6, g3 | lzd g10, g9 | bshuf g11, g3, g4
    halt
  )";
  const masm::Image img = masm::assemble_or_throw(src);
  std::string listing;
  std::size_t w = 0;
  while (w < img.code.size()) {
    const auto p = isa::decode_packet(
        std::span<const u32>(img.code).subspan(w));
    listing += isa::disasm_packet(p) + "\n";
    w += p.width;
  }
  const masm::Image again = masm::assemble_or_throw(listing);
  EXPECT_EQ(img.code, again.code);
}

TEST(Disasm, FuzzRoundTrip) {
  // Random single-instruction packets survive disasm -> asm -> encode.
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    const auto op = static_cast<Op>(rng.next_below(isa::kNumOpcodes));
    const auto& info = isa::op_info(op);
    if (info.has(isa::kBranch) || info.has(isa::kCall)) continue;  // need labels
    Instr in = random_instr(op, rng);
    u32 fu = 0;
    while ((info.fu_mask & (1u << fu)) == 0) ++fu;
    isa::Packet p;
    p.width = fu + 1;
    for (u32 s = 0; s < fu; ++s) p.slot[s].op = Op::kNop;
    p.slot[fu] = in;
    std::vector<u32> words;
    try {
      words = isa::encode_packet(p);
    } catch (const Error&) {
      continue;  // random operands occasionally violate pair rules
    }
    const masm::Image img =
        masm::assemble_or_throw(isa::disasm_packet(p) + "\nhalt\n");
    ASSERT_GE(img.code.size(), words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
      EXPECT_EQ(img.code[i], words[i]) << isa::disasm_packet(p);
    }
  }
}

} // namespace
} // namespace majc
